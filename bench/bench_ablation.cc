// Ablations of the paper's design choices (DESIGN.md §6):
//
//   A1 — reliable vs plain disclosure. The paper reliably broadcasts
//        proposed values "to circumvent adversarial runs where a Byzantine
//        process may induce correct processes to deliver different input
//        values" (§5). Ablation: plain point-to-point disclosure, against
//        a raw equivocator. Expected: SAFE() starves on some processes and
//        liveness is lost in a large fraction of schedules.
//   A2 — the 3f+1 bound from the liveness side: WTS run (unsafely) at
//        n = 3f with a mute Byzantine never decides; at n = 3f+1 it always
//        does. Complements bench_resilience's safety-side violation.
//   A3 — GWTS decide-by-adoption (Alg 3 L39-43) on/off: without adoption,
//        proposers only decide on their own committed proposals; rounds
//        still end, but stragglers lag and runs stretch.
#include <memory>

#include "bench/table.h"
#include "harness/scenario.h"
#include "byz/strategies.h"
#include "la/gwts.h"
#include "la/spec.h"
#include "la/wts.h"
#include "lattice/set_elem.h"

using namespace bgla;
using lattice::Item;
using lattice::make_set;

namespace {

/// Raw (non-RB) disclosure equivocator for the A1 ablation.
class PlainEquivocator : public sim::Process {
 public:
  PlainEquivocator(sim::Network& net, ProcessId id, la::LaConfig cfg)
      : sim::Process(net, id), cfg_(cfg) {}

  void on_start() override {
    const auto m1 = std::make_shared<la::DisclosureMsg>(
        make_set({Item{id(), 301, 0}}));
    const auto m2 = std::make_shared<la::DisclosureMsg>(
        make_set({Item{id(), 302, 0}}));
    for (ProcessId to = 0; to < cfg_.n; ++to) {
      if (to == id()) continue;
      send(to, to < cfg_.n / 2 ? sim::MessagePtr(m1) : sim::MessagePtr(m2));
    }
  }
  void on_message(ProcessId, const sim::MessagePtr&) override {}

 private:
  la::LaConfig cfg_;
};

struct WtsOutcome {
  std::uint32_t decided = 0;
  bool safe = true;
};

WtsOutcome run_wts_custom(const la::LaConfig& cfg, std::uint64_t seed,
                          bool rb_equivocator) {
  sim::Network net(std::make_unique<sim::UniformDelay>(1, 20), seed, cfg.n);
  std::vector<std::unique_ptr<la::WtsProcess>> correct;
  const std::uint32_t correct_count = cfg.n - 1;
  for (ProcessId id = 0; id < correct_count; ++id) {
    correct.push_back(std::make_unique<la::WtsProcess>(
        net, id, cfg, make_set({Item{id, 100 + id, 0}})));
  }
  std::unique_ptr<sim::Process> byzp;
  if (rb_equivocator) {
    byzp = std::make_unique<byz::WtsEquivocator>(
        net, correct_count, cfg, make_set({Item{correct_count, 301, 0}}),
        make_set({Item{correct_count, 302, 0}}));
  } else {
    byzp = std::make_unique<PlainEquivocator>(net, correct_count, cfg);
  }
  net.run(2'000'000);

  WtsOutcome out;
  std::vector<la::LaView> views;
  for (const auto& p : correct) {
    if (p->decided()) ++out.decided;
    la::LaView v;
    v.id = p->id();
    v.proposal = p->proposal();
    if (p->decided()) v.decision = p->decision().value;
    v.svs = p->svs();
    views.push_back(std::move(v));
  }
  out.safe = la::check_la(views, {correct_count}, cfg.f).safe();
  return out;
}

}  // namespace

int main() {
  bench::banner(
      "A1: disclosure mechanism ablation — reliable broadcast vs plain "
      "broadcast, against an equivocator (n=4, f=1, 20 seeds)");
  {
    bench::Table table({"disclosure", "runs", "all-correct-decided runs",
                        "stuck runs", "Obs.1 violations"});
    for (bool reliable : {true, false}) {
      int full = 0, stuck = 0, unsafe = 0;
      constexpr int kRuns = 20;
      for (std::uint64_t seed = 1; seed <= kRuns; ++seed) {
        la::LaConfig cfg;
        cfg.n = 4;
        cfg.f = 1;
        cfg.reliable_disclosure = reliable;
        const auto out = run_wts_custom(cfg, seed, reliable);
        if (out.decided == 3) {
          ++full;
        } else {
          ++stuck;
        }
        if (!out.safe) ++unsafe;
      }
      table.row() << (reliable ? "reliable (paper)" : "plain (ablated)")
                  << kRuns << full << stuck << unsafe;
    }
    table.print();
    bench::note(
        "\nMeasured shape: with reliable broadcast every run completes "
        "and Observation 1\n(one consistent SvS value per process) holds. "
        "With plain disclosure the\nequivocator gets *different* values "
        "into different correct processes' SvS\n(Obs.1 violations), "
        "SAFE() starves, and no run completes — the §5 rationale for\n"
        "the reliable broadcast.");
  }

  bench::banner(
      "A2: resilience-bound ablation — WTS at n = 3f vs n = 3f+1 with a "
      "mute Byzantine");
  {
    bench::Table table({"n", "f", "3f+1?", "seeds", "runs all decided",
                        "runs stuck"});
    for (std::uint32_t f : {1u, 2u}) {
      for (std::uint32_t n : {3 * f, 3 * f + 1}) {
        int full = 0, stuck = 0;
        for (std::uint64_t seed = 1; seed <= 8; ++seed) {
          la::LaConfig cfg;
          cfg.n = n;
          cfg.f = f;
          cfg.unsafe_allow_undersized = true;
          sim::Network net(std::make_unique<sim::UniformDelay>(1, 20),
                           seed, n);
          std::vector<std::unique_ptr<la::WtsProcess>> correct;
          for (ProcessId id = 0; id < n - f; ++id) {
            correct.push_back(std::make_unique<la::WtsProcess>(
                net, id, cfg, make_set({Item{id, 100 + id, 0}})));
          }
          std::vector<std::unique_ptr<byz::MuteProcess>> mutes;
          for (ProcessId id = n - f; id < n; ++id) {
            mutes.push_back(std::make_unique<byz::MuteProcess>(net, id));
          }
          net.run(2'000'000);
          bool all = true;
          for (const auto& p : correct) all = all && p->decided();
          if (all) {
            ++full;
          } else {
            ++stuck;
          }
        }
        table.row() << n << f << (n >= 3 * f + 1) << 8 << full << stuck;
      }
    }
    table.print();
    bench::note(
        "\nExpected shape: at n = 3f nothing ever decides (the Byzantine "
        "quorum equals or\nexceeds the correct population); at n = 3f+1 "
        "every run completes — Theorem 1's\nbound from the liveness side.");
  }

  bench::banner(
      "A3: decide-by-adoption ablation — GWTS with Alg 3 L39-43 on/off "
      "(n=7, f=2, stale-nacker)");
  {
    bench::Table table({"adoption", "seeds", "all reached target",
                        "mean end time", "mean msgs/decision"});
    for (bool adoption : {true, false}) {
      bench::Agg time, rate;
      int ok_runs = 0;
      constexpr int kRuns = 6;
      for (std::uint64_t seed = 1; seed <= kRuns; ++seed) {
        la::LaConfig cfg;
        cfg.n = 7;
        cfg.f = 2;
        cfg.decide_by_adoption = adoption;
        sim::Network net(std::make_unique<sim::UniformDelay>(1, 20), seed,
                         cfg.n);
        std::vector<std::unique_ptr<la::GwtsProcess>> correct;
        for (ProcessId id = 0; id < 5; ++id) {
          correct.push_back(
              std::make_unique<la::GwtsProcess>(net, id, cfg));
        }
        std::vector<std::unique_ptr<byz::GwtsStaleNacker>> nackers;
        for (ProcessId id = 5; id < 7; ++id) {
          nackers.push_back(std::make_unique<byz::GwtsStaleNacker>(
              net, id, cfg, make_set({Item{id, 400 + id, 0}})));
        }
        for (auto& p : correct) {
          p->set_decide_hook([&](const la::GwtsProcess&,
                                 const la::DecisionRecord&) {
            for (auto& q : correct) {
              if (q->decisions().size() < 4) return;
            }
            net.request_stop();
          });
        }
        const auto rr = net.run(10'000'000);
        bool reached = true;
        std::uint64_t decs = 0;
        for (auto& p : correct) {
          reached = reached && p->decisions().size() >= 4;
          decs += p->decisions().size();
        }
        if (reached) ++ok_runs;
        time.add(static_cast<double>(rr.end_time));
        if (decs > 0) {
          rate.add(static_cast<double>(net.metrics().total_messages()) /
                   static_cast<double>(decs));
        }
      }
      table.row() << (adoption ? "on (paper)" : "off (ablated)") << kRuns
                  << ok_runs << time.mean() << rate.mean();
    }
    table.print();
    bench::note(
        "\nExpected shape: both variants reach the target (rounds still "
        "have legitimate\nends), but without adoption runs take longer "
        "and/or cost more messages per\ndecision — adoption is what keeps "
        "all correct proposers deciding in every round\n(Lemma 8).");
  }
  bench::banner(
      "A4: reliable-broadcast construction ablation — WTS over Bracha "
      "(authenticated channels) vs certificate RB (signatures), mute byz");
  {
    bench::Table table({"n", "f", "bracha msgs/proc", "certRB msgs/proc",
                        "ratio", "bracha bytes/proc", "certRB bytes/proc",
                        "both safe"});
    for (std::uint32_t n : {7u, 10u, 16u, 25u}) {
      const std::uint32_t f = 1;
      bench::Agg bm, cm, bb, cb;
      bool ok = true;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        for (bool cert : {false, true}) {
          la::LaConfig cfg;
          cfg.n = n;
          cfg.f = f;
          const crypto::SignatureAuthority auth(n, seed);
          cfg.rb_impl = cert ? la::LaConfig::RbImpl::kSignedCert
                             : la::LaConfig::RbImpl::kBracha;
          cfg.authority = &auth;
          sim::Network net(std::make_unique<sim::UniformDelay>(1, 10),
                           seed, n);
          std::vector<std::unique_ptr<la::WtsProcess>> procs;
          for (ProcessId id = 0; id + 1 < n; ++id) {
            procs.push_back(std::make_unique<la::WtsProcess>(
                net, id, cfg, make_set({Item{id, 100 + id, 0}})));
          }
          byz::MuteProcess mute(net, n - 1);
          net.run();
          std::uint64_t msgs = 0, bytes = 0;
          for (const auto& p : procs) {
            ok = ok && p->decided();
            msgs = std::max(msgs, net.metrics().messages_sent(p->id()));
            bytes = std::max(bytes, net.metrics().bytes_sent(p->id()));
          }
          (cert ? cm : bm).add(static_cast<double>(msgs));
          (cert ? cb : bb).add(static_cast<double>(bytes));
        }
      }
      table.row() << n << f << bm.mean() << cm.mean()
                  << bm.mean() / cm.mean() << bb.mean() << cb.mean() << ok;
    }
    table.print();
    bench::note(
        "\nMeasured shape: the certificate RB roughly halves the "
        "broadcast-layer traffic\n(one signed echo + one certificate "
        "forward per process vs echo+ready all-to-all),\nwhile paying in "
        "bytes (certificates carry a quorum of signatures). Totality\n"
        "still forces O(n^2) total messages either way.");
  }
  return 0;
}
