// T6 — the price of Byzantine tolerance: crash-stop GLA (Faleiro et al.,
// PODC 2012) vs GWTS vs GSbS on the same streaming workload.
//
// There is no explicit table in the paper for this, but it is the implicit
// comparison behind §5's "extension of [2] with a Byzantine quorum and
// additional checks": the Byzantine algorithm pays for the disclosure
// reliable broadcast and the reliably-broadcast acks. The signature
// variant recovers most of the message cost.
//
// Independent (n × seed) simulations fan out across a thread pool
// (--jobs N, default: hardware concurrency); results are aggregated in
// submission order, so every printed number is identical to a serial run.
// The run ends with a wall-clock/crypto summary and BENCH_baseline.json.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench/json.h"
#include "bench/table.h"
#include "harness/scenario.h"
#include "util/flags.h"
#include "util/thread_pool.h"

using namespace bgla;
using harness::Adversary;

int main(int argc, char** argv) {
  std::size_t jobs = util::ThreadPool::default_workers();
  std::string json_path = "BENCH_baseline.json";
  util::FlagSet flags("bench_baseline");
  flags.add_size("jobs", &jobs, "worker threads (default: cores)");
  flags.add_string("json", &json_path, "output JSON path");
  flags.parse_or_exit(argc, argv);

  bench::banner(
      "T6: crash-stop GLA (PODC'12) vs GWTS vs GSbS — messages per "
      "decision per proposer, same workload");

  const std::vector<std::uint32_t> ns = {4, 7, 10, 13};
  constexpr int kSeeds = 3;

  struct Quad {
    harness::FaleiroReport fr;
    harness::GwtsReport gr;
    harness::GwtsReport gcr;
    harness::GsbsReport sr;
  };

  util::ThreadPool pool(jobs);
  jobs = pool.workers();  // report the clamped count (e.g. --jobs 0 -> 1)
  const auto wall_start = std::chrono::steady_clock::now();
  const auto quads = util::parallel_for_indexed<Quad>(
      pool, ns.size() * kSeeds, [&ns](std::size_t i) {
        const std::uint32_t n = ns[i / kSeeds];
        const std::uint32_t f = (n - 1) / 3;
        const int seed = static_cast<int>(i % kSeeds) + 1;

        harness::FaleiroScenario fsc;
        fsc.n = n;
        fsc.f = (n - 1) / 2;
        fsc.submissions_per_proc = 3;
        fsc.seed = static_cast<std::uint64_t>(seed);

        harness::GwtsScenario gsc;
        gsc.n = n;
        gsc.f = f;
        gsc.adversary = Adversary::kNone;
        gsc.target_decisions = 3;
        gsc.submissions_per_proc = 3;
        gsc.seed = static_cast<std::uint64_t>(seed);

        harness::GsbsScenario ssc;
        ssc.n = n;
        ssc.f = f;
        ssc.adversary = Adversary::kNone;
        ssc.target_decisions = 3;
        ssc.submissions_per_proc = 3;
        ssc.seed = static_cast<std::uint64_t>(seed);

        Quad q;
        q.fr = harness::run_faleiro(fsc);
        q.gr = harness::run_gwts(gsc);
        gsc.signed_rb = true;
        q.gcr = harness::run_gwts(gsc);
        q.sr = harness::run_gsbs(ssc);
        return q;
      });

  bench::Table table({"n", "faleiro msgs/dec", "gwts msgs/dec",
                      "gwts+certRB msgs/dec", "gsbs msgs/dec",
                      "gwts/faleiro", "gsbs/faleiro", "all specs ok"});

  std::uint64_t total_events = 0;
  harness::CryptoReport crypto_totals;
  auto add_crypto = [&crypto_totals](const harness::CryptoReport& c) {
    crypto_totals.macs_computed += c.macs_computed;
    crypto_totals.verify_cache_hits += c.verify_cache_hits;
    crypto_totals.verify_cache_misses += c.verify_cache_misses;
    crypto_totals.verifies_skipped += c.verifies_skipped;
  };

  for (std::size_t ni = 0; ni < ns.size(); ++ni) {
    bench::Agg fa, gw, gwc, gs;
    bool ok = true;
    for (int seed = 0; seed < kSeeds; ++seed) {
      const Quad& q = quads[ni * kSeeds + seed];
      ok = ok && q.fr.spec.ok() && q.gr.spec.ok() && q.gcr.spec.ok() &&
           q.sr.spec.ok();
      fa.add(q.fr.msgs_per_decision_per_proposer);
      gw.add(q.gr.msgs_per_decision_per_proposer);
      gwc.add(q.gcr.msgs_per_decision_per_proposer);
      gs.add(q.sr.msgs_per_decision_per_proposer);
      total_events += q.fr.events + q.gr.events + q.gcr.events + q.sr.events;
      add_crypto(q.gr.crypto);
      add_crypto(q.gcr.crypto);
      add_crypto(q.sr.crypto);
    }
    table.row() << ns[ni] << fa.mean() << gw.mean() << gwc.mean()
                << gs.mean() << gw.mean() / fa.mean()
                << gs.mean() / fa.mean() << ok;
  }
  table.print();
  bench::note(
      "\nShape check: GWTS pays a growing (×n-ish) factor over the "
      "crash-stop baseline;\nswapping Bracha for the certificate RB "
      "roughly halves it; GSbS (signed acks +\nDECIDED certificates) "
      "compresses it to a near-constant factor — the §8\nmotivation. The "
      "baseline, of course, is only safe without Byzantine processes\n"
      "(see T7).");

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  const double events_per_sec =
      wall_seconds > 0 ? static_cast<double>(total_events) / wall_seconds
                       : 0.0;

  bench::banner("Run summary (wall clock + crypto work)");
  std::cout << "wall_seconds       " << wall_seconds << "\n"
            << "jobs               " << jobs << "\n"
            << "total_events       " << total_events << "\n"
            << "events_per_sec     " << events_per_sec << "\n"
            << "macs_computed      " << crypto_totals.macs_computed << "\n"
            << "verify_cache_hits  " << crypto_totals.verify_cache_hits
            << "\n"
            << "verify_cache_miss  " << crypto_totals.verify_cache_misses
            << "\n"
            << "verifies_skipped   " << crypto_totals.verifies_skipped
            << "\n";

  bench::Json crypto;
  crypto.set("macs_computed", crypto_totals.macs_computed)
      .set("verify_cache_hits", crypto_totals.verify_cache_hits)
      .set("verify_cache_misses", crypto_totals.verify_cache_misses)
      .set("verifies_skipped", crypto_totals.verifies_skipped);
  bench::Json out;
  bench::add_build_info(out.set("bench", "baseline"))
      .set("wall_seconds", wall_seconds)
      .set("jobs", jobs)
      .set("total_events", total_events)
      .set("events_per_sec", events_per_sec)
      .raw("crypto", crypto.str());
  if (!out.write(json_path)) {
    std::cerr << "warning: could not write " << json_path << "\n";
  }
  return 0;
}
