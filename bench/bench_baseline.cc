// T6 — the price of Byzantine tolerance: crash-stop GLA (Faleiro et al.,
// PODC 2012) vs GWTS vs GSbS on the same streaming workload.
//
// There is no explicit table in the paper for this, but it is the implicit
// comparison behind §5's "extension of [2] with a Byzantine quorum and
// additional checks": the Byzantine algorithm pays for the disclosure
// reliable broadcast and the reliably-broadcast acks. The signature
// variant recovers most of the message cost.
#include "bench/table.h"
#include "harness/scenario.h"

using namespace bgla;
using harness::Adversary;

int main() {
  bench::banner(
      "T6: crash-stop GLA (PODC'12) vs GWTS vs GSbS — messages per "
      "decision per proposer, same workload");

  bench::Table table({"n", "faleiro msgs/dec", "gwts msgs/dec",
                      "gwts+certRB msgs/dec", "gsbs msgs/dec",
                      "gwts/faleiro", "gsbs/faleiro", "all specs ok"});

  for (std::uint32_t n : {4u, 7u, 10u, 13u}) {
    const std::uint32_t f = (n - 1) / 3;
    bench::Agg fa, gw, gwc, gs;
    bool ok = true;
    for (int seed = 1; seed <= 3; ++seed) {
      harness::FaleiroScenario fsc;
      fsc.n = n;
      fsc.f = (n - 1) / 2;
      fsc.submissions_per_proc = 3;
      fsc.seed = static_cast<std::uint64_t>(seed);
      const auto fr = harness::run_faleiro(fsc);

      harness::GwtsScenario gsc;
      gsc.n = n;
      gsc.f = f;
      gsc.adversary = Adversary::kNone;
      gsc.target_decisions = 3;
      gsc.submissions_per_proc = 3;
      gsc.seed = static_cast<std::uint64_t>(seed);
      const auto gr = harness::run_gwts(gsc);

      gsc.signed_rb = true;
      const auto gcr = harness::run_gwts(gsc);
      gsc.signed_rb = false;

      harness::GsbsScenario ssc;
      ssc.n = n;
      ssc.f = f;
      ssc.adversary = Adversary::kNone;
      ssc.target_decisions = 3;
      ssc.submissions_per_proc = 3;
      ssc.seed = static_cast<std::uint64_t>(seed);
      const auto sr = harness::run_gsbs(ssc);

      ok = ok && fr.spec.ok() && gr.spec.ok() && gcr.spec.ok() &&
           sr.spec.ok();
      fa.add(fr.msgs_per_decision_per_proposer);
      gw.add(gr.msgs_per_decision_per_proposer);
      gwc.add(gcr.msgs_per_decision_per_proposer);
      gs.add(sr.msgs_per_decision_per_proposer);
    }
    table.row() << n << fa.mean() << gw.mean() << gwc.mean() << gs.mean()
                << gw.mean() / fa.mean() << gs.mean() / fa.mean() << ok;
  }
  table.print();
  bench::note(
      "\nShape check: GWTS pays a growing (×n-ish) factor over the "
      "crash-stop baseline;\nswapping Bracha for the certificate RB "
      "roughly halves it; GSbS (signed acks +\nDECIDED certificates) "
      "compresses it to a near-constant factor — the §8\nmotivation. The "
      "baseline, of course, is only safe without Byzantine processes\n"
      "(see T7).");
  return 0;
}
