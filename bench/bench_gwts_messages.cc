// T3 — GWTS per-decision message complexity (§6.4).
//
// Paper claim: each decision costs a proposer at most O(f·n²) messages —
// the round's disclosure broadcast is O(n²), each of ≤ f refinements is
// O(n), and every acceptor ack is itself reliably broadcast (O(n²)).
// Measured: messages per decision per proposer vs (n, f), and the
// normalised value msgs/(f·n²).
#include "bench/table.h"
#include "harness/scenario.h"

using namespace bgla;
using harness::Adversary;

int main() {
  bench::banner(
      "T3: GWTS messages per decision per proposer vs n, f "
      "(claim: O(f·n^2))");

  bench::Table table({"n", "f", "adversary", "msgs/decision", "per f*n^2",
                      "max_round_refines", "<=f", "spec_ok"});

  const std::vector<std::pair<std::uint32_t, std::uint32_t>> sizes = {
      {4, 1}, {7, 2}, {10, 3}, {13, 4}, {16, 5}};
  const std::vector<Adversary> adversaries = {Adversary::kNone,
                                              Adversary::kStaleNacker};
  constexpr int kSeeds = 3;

  for (const auto& [n, f] : sizes) {
    for (Adversary adv : adversaries) {
      bench::Agg rate, refines;
      bool ok = true;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        harness::GwtsScenario sc;
        sc.n = n;
        sc.f = f;
        sc.byz_count = f;
        sc.adversary = adv;
        sc.target_decisions = 4;
        sc.submissions_per_proc = 2;
        sc.seed = static_cast<std::uint64_t>(seed);
        const auto rep = harness::run_gwts(sc);
        ok = ok && rep.completed && rep.spec.ok();
        rate.add(rep.msgs_per_decision_per_proposer);
        refines.add(static_cast<double>(rep.max_round_refinements));
      }
      const double r = rate.mean();
      table.row() << n << f << harness::adversary_name(adv) << r
                  << r / (static_cast<double>(f) * n * n)
                  << static_cast<std::uint64_t>(refines.max())
                  << (refines.max() <= static_cast<double>(f)) << ok;
    }
  }
  table.print();
  bench::note(
      "\nShape check: msgs/decision grows superlinearly in n with the "
      "normalised column\nstaying bounded; per-round refinements never "
      "exceed f (Lemma 10).");
  bench::banner(
      "T3b: streaming inclusion latency — time from value injection to "
      "its first containing decision at the submitter");
  {
    bench::Table table({"n", "f", "submissions/proc", "spacing",
                        "mean_incl_lat", "max_incl_lat", "spec_ok"});
    for (const auto& [n, f] :
         std::vector<std::pair<std::uint32_t, std::uint32_t>>{{4, 1},
                                                              {7, 2},
                                                              {10, 3}}) {
      for (std::uint32_t spacing : {20u, 80u}) {
        bench::Agg mean_lat, max_lat;
        bool ok = true;
        for (int seed = 1; seed <= 3; ++seed) {
          harness::GwtsScenario sc;
          sc.n = n;
          sc.f = f;
          sc.byz_count = f;
          sc.adversary = Adversary::kMute;
          sc.target_decisions = 6;
          sc.submissions_per_proc = 4;
          sc.submission_spacing = spacing;
          sc.seed = static_cast<std::uint64_t>(seed);
          const auto rep = harness::run_gwts(sc);
          ok = ok && rep.completed && rep.spec.ok();
          mean_lat.add(rep.mean_inclusion_latency);
          max_lat.add(rep.max_inclusion_latency);
        }
        table.row() << n << f << 4 << spacing << mean_lat.mean()
                    << max_lat.max() << ok;
      }
    }
    table.print();
    bench::note(
        "\nShape check: inclusion latency is a small constant number of "
        "round turnovers\n(a value lands in the next batch and decides "
        "with that round), insensitive to\nthe offered spacing — the "
        "liveness/Inclusivity theorem (Thm 5) made quantitative.");
  }
  return 0;
}
