// Micro-benchmarks (google-benchmark) for the substrate: SHA-256, HMAC,
// the canonical codec, lattice joins/compares, Bracha handler throughput
// and one end-to-end WTS run. These are sanity/perf baselines, not paper
// tables — the T* binaries regenerate the paper's quantitative claims.
#include <benchmark/benchmark.h>

#include "bcast/bracha.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "harness/scenario.h"
#include "lattice/set_elem.h"

namespace {

using namespace bgla;

void BM_Sha256_1KiB(benchmark::State& state) {
  Bytes data(1024, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key(32, 0x11);
  const Bytes msg(256, 0x22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, msg));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_CodecRoundtrip(benchmark::State& state) {
  for (auto _ : state) {
    Encoder enc;
    for (std::uint64_t i = 0; i < 64; ++i) enc.put_varint(i * 977);
    Decoder dec(enc.bytes());
    std::uint64_t sum = 0;
    for (int i = 0; i < 64; ++i) sum += dec.get_varint();
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_CodecRoundtrip);

void BM_SetElemJoin(benchmark::State& state) {
  const auto size = static_cast<std::uint64_t>(state.range(0));
  std::set<lattice::Item> a, b;
  for (std::uint64_t i = 0; i < size; ++i) {
    a.insert(lattice::Item{i, 0, 0});
    b.insert(lattice::Item{i + size / 2, 0, 0});
  }
  const auto ea = lattice::make_set(a);
  const auto eb = lattice::make_set(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ea.join(eb));
  }
}
BENCHMARK(BM_SetElemJoin)->Arg(16)->Arg(128)->Arg(1024);

void BM_SetElemLeq(benchmark::State& state) {
  const auto size = static_cast<std::uint64_t>(state.range(0));
  std::set<lattice::Item> a;
  for (std::uint64_t i = 0; i < size; ++i) a.insert(lattice::Item{i, 0, 0});
  auto b = a;
  b.insert(lattice::Item{size + 1, 0, 0});
  const auto ea = lattice::make_set(a);
  const auto eb = lattice::make_set(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ea.leq(eb));
  }
}
BENCHMARK(BM_SetElemLeq)->Arg(16)->Arg(1024);

void BM_ElemDigest(benchmark::State& state) {
  std::set<lattice::Item> a;
  for (std::uint64_t i = 0; i < 64; ++i) a.insert(lattice::Item{i, i, 0});
  const auto e = lattice::make_set(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.digest());
  }
}
BENCHMARK(BM_ElemDigest);

void BM_WtsEndToEnd(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    harness::WtsScenario sc;
    sc.n = n;
    sc.f = (n - 1) / 3;
    sc.adversary = harness::Adversary::kNone;
    sc.seed = seed++;
    const auto rep = harness::run_wts(sc);
    benchmark::DoNotOptimize(rep.total_msgs);
  }
}
BENCHMARK(BM_WtsEndToEnd)->Arg(4)->Arg(10)->Arg(16);

void BM_RsmOpsEndToEnd(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    harness::RsmScenario sc;
    sc.n = 4;
    sc.f = 1;
    sc.num_clients = 2;
    sc.ops_per_client = 4;
    sc.seed = seed++;
    const auto rep = harness::run_rsm(sc);
    benchmark::DoNotOptimize(rep.ops_completed);
  }
}
BENCHMARK(BM_RsmOpsEndToEnd);

}  // namespace

BENCHMARK_MAIN();
