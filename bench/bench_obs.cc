// T-obs — cost of the observability layer on the §8 SbS workload.
//
// The design target is that a node with the obs hooks compiled in but no
// sinks attached (instrument == nullptr, i.e. tracing off) pays nothing
// beyond a pointer test, and that attaching the metrics registry alone
// stays within noise: every hot-path handle is a cached pointer to a
// relaxed atomic. This bench runs the same deterministic SbS simulations
// four ways — no instrument, registry only, registry + JSONL tracing,
// and registry + tracing + causal spans — interleaved round-robin so
// clock drift hits all four equally. Two acceptance gates: the
// registry-only (tracing-off) column must stay ≤2% of the uninstrumented
// baseline, and the spans-on column ≤5% marginal over the JSONL-traced
// config. A microbench section prices the primitives themselves.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/json.h"
#include "bench/table.h"
#include "harness/scenario.h"
#include "obs/instrument.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "util/flags.h"

using namespace bgla;
using harness::Adversary;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One full pass of the workload: deterministic SbS sims across seeds.
/// Returns total simulator events (same for every config — the protocol
/// schedule must not depend on observability).
std::uint64_t run_workload(obs::Instrument* instr, std::uint64_t* decides) {
  std::uint64_t events = 0;
  for (int seed = 1; seed <= 4; ++seed) {
    harness::SbsScenario sc;
    sc.n = 10;
    sc.f = 2;
    sc.byz_count = 2;
    sc.adversary = Adversary::kMute;
    sc.seed = static_cast<std::uint64_t>(seed);
    sc.instrument = instr;
    const harness::SbsReport rep = harness::run_sbs(sc);
    events += rep.events;
    if (decides != nullptr) *decides += rep.spec.ok() ? 1 : 0;
  }
  return events;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_obs.json";
  std::size_t rounds = 6;
  util::FlagSet flags("bench_obs");
  flags.add_string("json", &json_path, "output JSON path");
  flags.add_size("rounds", &rounds, "interleaved measurement rounds");
  flags.parse_or_exit(argc, argv);
  if (rounds == 0) rounds = 1;

  bench::banner(
      "T-obs: observability overhead on the SbS workload "
      "(n=10, f=2, mute adversary, 4 seeds per pass)");

  const std::string trace_path = "bench_obs.trace.jsonl";

  obs::Registry metrics_only_reg;
  obs::Instrument metrics_only(&metrics_only_reg, nullptr);

  obs::Registry traced_reg;
  obs::TraceWriter::Options topt;
  topt.path = trace_path;
  obs::TraceWriter trace(topt);
  obs::Instrument traced(&traced_reg, &trace);

  const std::string spans_path = "bench_obs.spans.trace.jsonl";
  obs::Registry spans_reg;
  obs::TraceWriter::Options spopt;
  spopt.path = spans_path;
  obs::TraceWriter spans_trace(spopt);
  obs::Instrument spanned(&spans_reg, &spans_trace);
  spanned.enable_spans(0);

  // Warm-up pass per config (page in code, size the registry maps).
  run_workload(nullptr, nullptr);
  run_workload(&metrics_only, nullptr);
  run_workload(&traced, nullptr);
  run_workload(&spanned, nullptr);

  double base_s = 0, metrics_s = 0, traced_s = 0, spans_s = 0;
  std::uint64_t events = 0;
  std::uint64_t decides = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    events = run_workload(nullptr, &decides);
    base_s += seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    run_workload(&metrics_only, nullptr);
    metrics_s += seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    run_workload(&traced, nullptr);
    traced_s += seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    run_workload(&spanned, nullptr);
    spans_s += seconds_since(t0);
  }
  trace.flush();
  spans_trace.flush();

  const double metrics_pct = (metrics_s / base_s - 1.0) * 100.0;
  const double traced_pct = (traced_s / base_s - 1.0) * 100.0;
  // Span cost is priced as the marginal overhead on top of JSONL tracing
  // (spans are extra ring events on an already-tracing node; nobody runs
  // spans without the trace file they land in).
  const double spans_pct = (spans_s / traced_s - 1.0) * 100.0;

  bench::Table table({"config", "seconds", "overhead %", "gate"});
  table.row() << "no instrument (baseline)" << base_s << 0.0 << "-";
  table.row() << "registry only (tracing off)" << metrics_s << metrics_pct
              << (metrics_pct <= 2.0 ? "<=2% OK" : ">2% FAIL");
  table.row() << "registry + JSONL trace" << traced_s << traced_pct << "-";
  table.row() << "registry + trace + spans" << spans_s << spans_pct
              << (spans_pct <= 5.0 ? "<=5% OK" : ">5% FAIL");
  table.print();
  bench::note(
      "\nThe tracing-off row is the primary gate: hooks resolve to cached "
      "relaxed\natomics, so metrics-on must sit inside run-to-run noise. "
      "The spans row\nprices causal span tracing (per-command trace "
      "minting + phase spans) as\nmarginal cost over the JSONL-traced "
      "config and must stay within 5%.");

  const std::uint64_t traced_events = trace.recorded();
  std::cout << "\ntrace events recorded " << traced_events << " (dropped "
            << trace.dropped() << ")\n"
            << "sim events per pass   " << events << "\n"
            << "sbs spec ok passes    " << decides << "/" << 4 * rounds
            << "\n";

  bench::banner("Primitive costs (single thread)");
  constexpr std::uint64_t kOps = 2'000'000;
  obs::Registry prim_reg;
  obs::Counter& c = prim_reg.counter("bgla_bench_counter_total");
  auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kOps; ++i) c.inc();
  const double counter_ns = seconds_since(t0) * 1e9 / kOps;

  obs::Histogram& h = prim_reg.histogram("bgla_bench_hist_us");
  t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kOps; ++i) h.observe(i & 0xffff);
  const double hist_ns = seconds_since(t0) * 1e9 / kOps;

  constexpr std::uint64_t kTraceOps = 200'000;
  double record_ns = 0;
  {
    obs::TraceWriter::Options popt;
    popt.path = "bench_obs.prim.trace.jsonl";
    popt.ring_capacity = 1 << 16;
    obs::TraceWriter pw(popt);
    t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kTraceOps; ++i) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kAck;
      ev.node = 1;
      pw.record(std::move(ev.with("from", i & 0xf)));
    }
    record_ns = seconds_since(t0) * 1e9 / kTraceOps;
    pw.flush();
    std::cout << "trace ring drops      " << pw.dropped() << "/" << kTraceOps
              << "\n";
  }
  std::remove("bench_obs.prim.trace.jsonl");

  std::cout << "counter.inc           " << counter_ns << " ns/op\n"
            << "histogram.observe     " << hist_ns << " ns/op\n"
            << "trace.record          " << record_ns << " ns/op\n";

  bench::Json out;
  bench::add_build_info(out.set("bench", "obs"))
      .set("rounds", static_cast<std::uint64_t>(rounds))
      .set("baseline_seconds", base_s)
      .set("metrics_only_seconds", metrics_s)
      .set("traced_seconds", traced_s)
      .set("tracing_off_overhead_pct", metrics_pct)
      .set("tracing_on_overhead_pct", traced_pct)
      .set("tracing_off_gate_pct", 2.0)
      .set("tracing_off_gate_ok", metrics_pct <= 2.0)
      .set("spans_on_seconds", spans_s)
      .set("spans_on_overhead_pct", spans_pct)
      .set("spans_on_gate_pct", 5.0)
      .set("spans_on_gate_ok", spans_pct <= 5.0)
      .set("span_events_recorded", spans_trace.recorded())
      .set("trace_events_recorded", traced_events)
      .set("trace_events_dropped", trace.dropped())
      .set("counter_inc_ns", counter_ns)
      .set("histogram_observe_ns", hist_ns)
      .set("trace_record_ns", record_ns);
  if (!out.write(json_path)) {
    std::cerr << "warning: could not write " << json_path << "\n";
  }
  std::remove(trace_path.c_str());
  std::remove(spans_path.c_str());
  return 0;
}
