// T8 — refinement bounds (Lemma 3, Lemma 10, Lemma 16).
//
// Paper claims: a correct WTS proposer refines its proposal at most f
// times; a correct GWTS proposer refines at most f times per round; a
// correct SbS proposer refines at most 2f times. Measured: the maximum
// refinement count observed across seeds under the nack-heavy adversary.
#include "bench/table.h"
#include "harness/scenario.h"

using namespace bgla;
using harness::Adversary;

int main() {
  bench::banner(
      "T8: maximum observed proposal refinements vs f "
      "(Lemma 3: ≤ f; Lemma 10: ≤ f per round; Lemma 16: ≤ 2f)");

  bench::Table table({"f", "n", "wts max", "<=f", "gwts max/round", "<=f",
                      "sbs max", "<=2f"});

  for (std::uint32_t f : {1u, 2u, 3u, 4u, 5u}) {
    const std::uint32_t n = 3 * f + 1;
    bench::Agg wts, gwts, sbs;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      harness::WtsScenario w;
      w.n = n;
      w.f = f;
      w.byz_count = f;
      w.adversary = Adversary::kStaleNacker;
      w.seed = seed;
      wts.add(static_cast<double>(harness::run_wts(w).max_refinements));

      harness::GwtsScenario g;
      g.n = n;
      g.f = f;
      g.byz_count = f;
      g.adversary = Adversary::kStaleNacker;
      g.target_decisions = 3;
      g.seed = seed;
      gwts.add(
          static_cast<double>(harness::run_gwts(g).max_round_refinements));

      harness::SbsScenario s;
      s.n = n;
      s.f = f;
      s.byz_count = f;
      // The double-signer hands different halves of the group different
      // values, so proposals genuinely diverge and nacks force refinement.
      s.adversary = Adversary::kEquivocator;
      s.seed = seed;
      sbs.add(static_cast<double>(harness::run_sbs(s).max_refinements));
    }
    table.row() << f << n << static_cast<std::uint64_t>(wts.max())
                << (wts.max() <= static_cast<double>(f))
                << static_cast<std::uint64_t>(gwts.max())
                << (gwts.max() <= static_cast<double>(f))
                << static_cast<std::uint64_t>(sbs.max())
                << (sbs.max() <= 2.0 * f);
  }
  table.print();
  bench::note(
      "\nShape check: observed maxima stay at or under the lemma bounds "
      "and grow with f.");
  return 0;
}
