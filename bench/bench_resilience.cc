// T7 / F2 — the resilience frontier (Theorem 1: 3f+1 is necessary).
//
// Three demonstrations:
//   (a) the crash-stop PODC'12 protocol (majority quorum, n = 3 = 3f)
//       loses Comparability against a single lying Byzantine acceptor
//       under an adversarial schedule — the constructive side of Thm 1;
//   (b) WTS at n = 3f+1 under the same attack shape (and every other
//       adversary in the library) keeps every property;
//   (c) the safety × liveness grid across adversaries and actual Byzantine
//       counts at n = 10, f = 3 (the F2 figure).
#include "bench/table.h"
#include "harness/scenario.h"

using namespace bgla;
using harness::Adversary;
using harness::Sched;

int main() {
  bench::banner(
      "T7a: crash-stop baseline at n = 3f under a Byzantine — "
      "Comparability violations (expected!)");
  {
    bench::Table table({"n", "quorum", "sched", "seed", "comparability",
                        "violated (expected)"});
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      harness::FaleiroScenario sc;
      sc.n = 3;
      sc.f = 1;
      sc.byz_lying_acker = true;
      sc.sched = Sched::kTargeted;
      sc.seed = seed;
      const auto rep = harness::run_faleiro(sc);
      table.row() << 3 << 2 << "targeted" << seed
                  << (rep.spec.comparability ? "held" : "VIOLATED")
                  << !rep.spec.comparability;
    }
    table.print();
  }

  bench::banner(
      "T7b: WTS at n = 3f+1 under the same attack shape — all properties "
      "hold");
  {
    bench::Table table(
        {"n", "f", "adversary", "sched", "seeds", "live", "safe"});
    for (Adversary adv :
         {Adversary::kLyingAcker, Adversary::kEquivocator,
          Adversary::kStaleNacker, Adversary::kMute,
          Adversary::kInvalidValue, Adversary::kFlooder}) {
      bool live = true, safe = true;
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        harness::WtsScenario sc;
        sc.n = 4;
        sc.f = 1;
        sc.adversary = adv;
        sc.sched = Sched::kTargeted;
        sc.seed = seed;
        const auto rep = harness::run_wts(sc);
        live = live && rep.completed && rep.spec.liveness;
        safe = safe && rep.spec.safe();
      }
      table.row() << 4 << 1 << harness::adversary_name(adv) << "targeted"
                  << 6 << live << safe;
    }
    table.print();
  }

  bench::banner(
      "F2: safety × liveness grid, WTS n = 10 f = 3, actual Byzantine "
      "count 0..f per adversary");
  {
    bench::Table table({"adversary", "byz=0", "byz=1", "byz=2", "byz=3"});
    for (Adversary adv :
         {Adversary::kMute, Adversary::kEquivocator,
          Adversary::kStaleNacker, Adversary::kLyingAcker,
          Adversary::kFlooder}) {
      std::vector<std::string> cells;
      for (std::uint32_t byz = 0; byz <= 3; ++byz) {
        bool live = true, safe = true;
        for (std::uint64_t seed = 1; seed <= 4; ++seed) {
          harness::WtsScenario sc;
          sc.n = 10;
          sc.f = 3;
          sc.byz_count = byz;
          sc.adversary = byz == 0 ? Adversary::kNone : adv;
          sc.seed = seed;
          const auto rep = harness::run_wts(sc);
          live = live && rep.completed && rep.spec.liveness;
          safe = safe && rep.spec.safe();
        }
        cells.push_back(std::string(safe ? "safe" : "UNSAFE") + "+" +
                        (live ? "live" : "STUCK"));
      }
      table.row() << harness::adversary_name(adv) << cells[0] << cells[1]
                  << cells[2] << cells[3];
    }
    table.print();
    bench::note(
        "\nShape check: the entire grid reads safe+live — WTS delivers "
        "both properties\nanywhere within f ≤ (n−1)/3, while the baseline "
        "above breaks at n = 3f with one\nByzantine. This is the Theorem 1 "
        "frontier made executable.");
  }
  return 0;
}
