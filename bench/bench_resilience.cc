// T7 / F2 — the resilience frontier (Theorem 1: 3f+1 is necessary).
//
// Three demonstrations:
//   (a) the crash-stop PODC'12 protocol (majority quorum, n = 3 = 3f)
//       loses Comparability against a single lying Byzantine acceptor
//       under an adversarial schedule — the constructive side of Thm 1;
//   (b) WTS at n = 3f+1 under the same attack shape (and every other
//       adversary in the library) keeps every property;
//   (c) the safety × liveness grid across adversaries and actual Byzantine
//       counts at n = 10, f = 3 (the F2 figure).
//
// A fourth section measures the crash-recovery machinery itself (the R1
// experiment): WAL persist cost per durable transition, reopen/replay
// cost with and without snapshot compaction, and state import cost. The
// run ends with BENCH_resilience.json (provenance + grid + recovery rows).
#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/json.h"
#include "bench/table.h"
#include "harness/scenario.h"
#include "la/gwts.h"
#include "la/recovery.h"
#include "lattice/set_elem.h"
#include "sim/network.h"
#include "store/replica_store.h"
#include "util/flags.h"

using namespace bgla;
using harness::Adversary;
using harness::Sched;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// A populated GWTS durable-state blob: 4 replicas stream a few values to
/// quiescence in-sim, then replica 0 exports. This is the record shape a
/// real deployment logs on every transition.
Bytes make_state_blob() {
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  sim::Network net(std::make_unique<sim::UniformDelay>(1, 10), 7, 4);
  std::vector<std::unique_ptr<la::GwtsProcess>> procs;
  for (ProcessId id = 0; id < 4; ++id) {
    procs.push_back(std::make_unique<la::GwtsProcess>(net, id, cfg));
    for (std::uint64_t v = 0; v < 4; ++v) {
      procs[id]->submit(
          lattice::make_set({lattice::Item{id, 100 * (id + 1) + v, 0}}));
    }
  }
  net.run(5'000'000);
  Encoder enc;
  procs[0]->export_state(enc);
  return enc.bytes();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_resilience.json";
  util::FlagSet flags("bench_resilience");
  flags.add_string("json", &json_path, "output JSON path");
  flags.parse_or_exit(argc, argv);
  const auto wall_start = std::chrono::steady_clock::now();
  std::uint64_t baseline_violations = 0;
  bool grid_all_safe = true, grid_all_live = true;

  bench::banner(
      "T7a: crash-stop baseline at n = 3f under a Byzantine — "
      "Comparability violations (expected!)");
  {
    bench::Table table({"n", "quorum", "sched", "seed", "comparability",
                        "violated (expected)"});
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      harness::FaleiroScenario sc;
      sc.n = 3;
      sc.f = 1;
      sc.byz_lying_acker = true;
      sc.sched = Sched::kTargeted;
      sc.seed = seed;
      const auto rep = harness::run_faleiro(sc);
      table.row() << 3 << 2 << "targeted" << seed
                  << (rep.spec.comparability ? "held" : "VIOLATED")
                  << !rep.spec.comparability;
      if (!rep.spec.comparability) ++baseline_violations;
    }
    table.print();
  }

  bench::banner(
      "T7b: WTS at n = 3f+1 under the same attack shape — all properties "
      "hold");
  {
    bench::Table table(
        {"n", "f", "adversary", "sched", "seeds", "live", "safe"});
    for (Adversary adv :
         {Adversary::kLyingAcker, Adversary::kEquivocator,
          Adversary::kStaleNacker, Adversary::kMute,
          Adversary::kInvalidValue, Adversary::kFlooder}) {
      bool live = true, safe = true;
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        harness::WtsScenario sc;
        sc.n = 4;
        sc.f = 1;
        sc.adversary = adv;
        sc.sched = Sched::kTargeted;
        sc.seed = seed;
        const auto rep = harness::run_wts(sc);
        live = live && rep.completed && rep.spec.liveness;
        safe = safe && rep.spec.safe();
      }
      table.row() << 4 << 1 << harness::adversary_name(adv) << "targeted"
                  << 6 << live << safe;
    }
    table.print();
  }

  bench::banner(
      "F2: safety × liveness grid, WTS n = 10 f = 3, actual Byzantine "
      "count 0..f per adversary");
  {
    bench::Table table({"adversary", "byz=0", "byz=1", "byz=2", "byz=3"});
    for (Adversary adv :
         {Adversary::kMute, Adversary::kEquivocator,
          Adversary::kStaleNacker, Adversary::kLyingAcker,
          Adversary::kFlooder}) {
      std::vector<std::string> cells;
      for (std::uint32_t byz = 0; byz <= 3; ++byz) {
        bool live = true, safe = true;
        for (std::uint64_t seed = 1; seed <= 4; ++seed) {
          harness::WtsScenario sc;
          sc.n = 10;
          sc.f = 3;
          sc.byz_count = byz;
          sc.adversary = byz == 0 ? Adversary::kNone : adv;
          sc.seed = seed;
          const auto rep = harness::run_wts(sc);
          live = live && rep.completed && rep.spec.liveness;
          safe = safe && rep.spec.safe();
        }
        cells.push_back(std::string(safe ? "safe" : "UNSAFE") + "+" +
                        (live ? "live" : "STUCK"));
        grid_all_safe = grid_all_safe && safe;
        grid_all_live = grid_all_live && live;
      }
      table.row() << harness::adversary_name(adv) << cells[0] << cells[1]
                  << cells[2] << cells[3];
    }
    table.print();
    bench::note(
        "\nShape check: the entire grid reads safe+live — WTS delivers "
        "both properties\nanywhere within f ≤ (n−1)/3, while the baseline "
        "above breaks at n = 3f with one\nByzantine. This is the Theorem 1 "
        "frontier made executable.");
  }

  bench::banner(
      "T-wan: per-region decide latency — 3x3-region WAN delay model vs "
      "loopback (GWTS n = 9 f = 2, sim ticks)");
  std::string wan_rows = "[";
  {
    // Region of id = id / 3, matching the nemesis/link-matrix convention.
    // Intra-region links stay fast; cross-region links carry a WAN-shaped
    // uniform latency. Every round needs n-f = 7 disclosures, so every
    // decision crosses the WAN and the per-region spread is the visible
    // price of geo-distribution.
    class RegionDelay final : public sim::DelayModel {
     public:
      RegionDelay(sim::Time wan_lo, sim::Time wan_hi)
          : wan_lo_(wan_lo), wan_hi_(wan_hi) {}
      sim::Time delay(ProcessId from, ProcessId to, sim::Time,
                      Rng& rng) override {
        return from / 3 == to / 3 ? rng.uniform(1, 3)
                                  : rng.uniform(wan_lo_, wan_hi_);
      }

     private:
      sim::Time wan_lo_, wan_hi_;
    };

    const auto pct = [](std::vector<double> v, double q) {
      if (v.empty()) return 0.0;
      std::sort(v.begin(), v.end());
      return v[std::min(v.size() - 1,
                        static_cast<std::size_t>(
                            q * static_cast<double>(v.size())))];
    };

    bench::Table table(
        {"scenario", "region", "decisions", "p50_ticks", "p99_ticks"});
    bool first = true;
    for (const bool wan : {false, true}) {
      la::LaConfig cfg;
      cfg.n = 9;
      cfg.f = 2;
      std::unique_ptr<sim::DelayModel> model;
      if (wan) {
        model = std::make_unique<RegionDelay>(25, 45);
      } else {
        model = std::make_unique<sim::UniformDelay>(1, 3);
      }
      sim::Network net(std::move(model), 11, 9);
      // Per-region decide latencies: each decision's latency is the gap
      // since the same process's previous decide (round duration), the
      // first one counted from the submissions at t = 0.
      std::vector<std::vector<double>> per_region(3);
      std::vector<sim::Time> last_decide(9, 0);
      std::vector<std::unique_ptr<la::GwtsProcess>> procs;
      for (ProcessId id = 0; id < 9; ++id) {
        procs.push_back(std::make_unique<la::GwtsProcess>(net, id, cfg));
        procs[id]->set_decide_hook(
            [&per_region, &last_decide, id](const la::GwtsProcess&,
                                            const la::DecisionRecord& d) {
              per_region[id / 3].push_back(
                  static_cast<double>(d.time - last_decide[id]));
              last_decide[id] = d.time;
            });
        for (std::uint64_t v = 0; v < 3; ++v) {
          procs[id]->submit(lattice::make_set(
              {lattice::Item{id, 10 * (id + 1) + v, 0}}));
        }
      }
      net.run(20'000'000);
      for (std::uint32_t r = 0; r < 3; ++r) {
        const double p50 = pct(per_region[r], 0.50);
        const double p99 = pct(per_region[r], 0.99);
        table.row() << (wan ? "wan-3x3" : "loopback") << r
                    << per_region[r].size() << p50 << p99;
        bench::Json row;
        row.set("scenario", wan ? "wan-3x3" : "loopback")
            .set("region", static_cast<std::uint64_t>(r))
            .set("decisions",
                 static_cast<std::uint64_t>(per_region[r].size()))
            .set("p50_ticks", p50)
            .set("p99_ticks", p99);
        if (!first) wan_rows += ",";
        wan_rows += row.str();
        first = false;
      }
    }
    table.print();
    bench::note(
        "\nShape check: the WAN rows sit roughly one cross-region RTT per "
        "round above the\nloopback rows and the three regions stay "
        "mutually close — the protocol's round\nstructure, not any one "
        "region's placement, sets the decide latency.");
  }
  wan_rows += "]";

  bench::banner(
      "R1: crash-recovery cost — WAL persist, reopen/replay (with and "
      "without compaction), state import");
  std::string recovery_rows = "[";
  {
    const Bytes blob = make_state_blob();
    bench::Table table({"transitions", "state_bytes", "persist_us/rec",
                        "reopen_ms", "reopen_nocompact_ms", "import_us"});
    bool first = true;
    for (const std::uint32_t transitions : {64u, 256u, 1024u}) {
      // Default store: WAL folds into the snapshot every 64 appends.
      const std::string dir_c = store::make_temp_dir("bgla-bench-rec-");
      store::ReplicaStore compacted(dir_c);
      // No-compaction store: replay cost scales with uptime instead.
      const std::string dir_n = store::make_temp_dir("bgla-bench-rec-");
      {
        store::ReplicaStore nocompact(dir_n, transitions + 1);
        const auto t0 = std::chrono::steady_clock::now();
        for (std::uint32_t i = 0; i < transitions; ++i) {
          compacted.persist(BytesView(blob));
          nocompact.persist(BytesView(blob));
        }
        const double persist_us =
            ms_since(t0) * 1000.0 / (2.0 * transitions);
        const auto t1 = std::chrono::steady_clock::now();
        store::ReplicaStore reopened(dir_c);
        const double reopen_ms = ms_since(t1);
        const auto t2 = std::chrono::steady_clock::now();
        store::ReplicaStore reopened_n(dir_n, transitions + 1);
        const double reopen_nocompact_ms = ms_since(t2);

        la::LaConfig cfg;
        cfg.n = 4;
        cfg.f = 1;
        sim::Network net(std::make_unique<sim::UniformDelay>(1, 10), 7, 4);
        la::GwtsProcess fresh(net, 0, cfg);
        const Bytes latest = reopened.wal_records().empty()
                                 ? reopened.snapshot()
                                 : reopened.wal_records().back();
        const auto t3 = std::chrono::steady_clock::now();
        Decoder dec{BytesView(latest)};
        fresh.import_state(dec);
        const double import_us = ms_since(t3) * 1000.0;

        table.row() << transitions << blob.size() << persist_us
                    << reopen_ms << reopen_nocompact_ms << import_us;
        bench::Json row;
        row.set("transitions", static_cast<std::uint64_t>(transitions))
            .set("state_bytes", static_cast<std::uint64_t>(blob.size()))
            .set("persist_us_per_record", persist_us)
            .set("reopen_ms", reopen_ms)
            .set("reopen_nocompact_ms", reopen_nocompact_ms)
            .set("import_us", import_us);
        if (!first) recovery_rows += ",";
        recovery_rows += row.str();
        first = false;
      }
    }
    table.print();
    bench::note(
        "\nShape check: with the default every-64-appends compaction the "
        "reopen cost stays\nflat as transitions grow (replay is O(state), "
        "not O(uptime)); the no-compaction\ncolumn shows the linear cost "
        "compaction removes. Import is a single decode of\nthe latest "
        "record.");
  }
  recovery_rows += "]";

  bench::Json out;
  bench::add_build_info(out.set("bench", "resilience"))
      .set("wall_seconds", ms_since(wall_start) / 1000.0)
      .set("baseline_comparability_violations", baseline_violations)
      .set("grid_all_safe", grid_all_safe)
      .set("grid_all_live", grid_all_live)
      .raw("wan", wan_rows)
      .raw("recovery", recovery_rows);
  if (!out.write(json_path)) {
    std::cerr << "warning: could not write " << json_path << "\n";
  }
  return 0;
}
