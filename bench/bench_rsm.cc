// T5 — the Byzantine-tolerant RSM (§7, Theorem 6).
//
// Paper claim: the GWTS + client transformation yields a wait-free
// linearizable RSM for commutative updates, resilient to f Byzantine
// replicas and any number of Byzantine clients. Measured: the six §7.1
// properties (checker verdict), operation latencies, and throughput, with
// and without Byzantine replicas/clients.
#include "bench/table.h"
#include "harness/scenario.h"

using namespace bgla;
using harness::Sched;

int main() {
  bench::banner(
      "T5: RSM — §7.1 properties, latency and throughput "
      "(k clients × m ops, alternating update/read)");

  bench::Table table({"n", "f", "byz_reps", "byz_client", "clients", "ops",
                      "props_ok", "linearizable", "upd_lat", "read_lat",
                      "ops/ktime", "msgs/op"});

  struct Cfg {
    std::uint32_t n, f, byz_reps;
    bool byz_client;
    std::uint32_t clients, ops;
  };
  const std::vector<Cfg> cfgs = {
      {4, 1, 0, false, 2, 6},  {4, 1, 1, false, 2, 6},
      {4, 1, 1, true, 2, 6},   {7, 2, 0, false, 2, 6},
      {7, 2, 2, false, 2, 6},  {7, 2, 2, true, 2, 6},
      {10, 3, 0, false, 4, 4}, {10, 3, 3, true, 4, 4},
  };

  for (const Cfg& c : cfgs) {
    bench::Agg upd, rd, thr, msgs;
    bool ok = true;
    bool lin = true;
    std::uint64_t ops_total = 0;
    for (int seed = 1; seed <= 5; ++seed) {
      harness::RsmScenario sc;
      sc.n = c.n;
      sc.f = c.f;
      sc.byz_replicas = c.byz_reps;
      sc.with_byz_client = c.byz_client;
      sc.num_clients = c.clients;
      sc.ops_per_client = c.ops;
      sc.seed = static_cast<std::uint64_t>(seed);
      const auto rep = harness::run_rsm(sc);
      ok = ok && rep.completed && rep.check.ok();
      lin = lin && rep.linearization.linearizable;
      upd.add(rep.mean_update_latency);
      rd.add(rep.mean_read_latency);
      thr.add(rep.ops_per_ktime);
      ops_total += rep.ops_completed;
      if (rep.ops_completed > 0) {
        msgs.add(static_cast<double>(rep.total_msgs) /
                 static_cast<double>(rep.ops_completed));
      }
    }
    table.row() << c.n << c.f << c.byz_reps << (c.byz_client ? "yes" : "no")
                << c.clients << ops_total / 5 << ok << lin << upd.mean()
                << rd.mean() << thr.mean() << msgs.mean();
  }
  table.print();
  bench::note(
      "\nShape check: all six §7.1 properties hold and an explicit "
      "linearization witness\nexists in every configuration "
      "(props_ok);\nreads cost more than updates (confirmation step); "
      "Byzantine replicas/clients\ndegrade latency only mildly and never "
      "correctness.");
  bench::banner(
      "T5b: contact-policy ablation — commands to f+1 replicas (paper "
      "minimum) vs all n");
  {
    bench::Table table({"n", "f", "policy", "upd_lat", "read_lat",
                        "msgs/op", "props_ok"});
    for (std::uint32_t n : {4u, 7u}) {
      const std::uint32_t f = (n - 1) / 3;
      for (bool all : {false, true}) {
        bench::Agg upd, rd, msgs;
        bool ok = true;
        for (int seed = 1; seed <= 5; ++seed) {
          harness::RsmScenario sc;
          sc.n = n;
          sc.f = f;
          sc.num_clients = 2;
          sc.ops_per_client = 6;
          sc.contact_all_replicas = all;
          sc.seed = static_cast<std::uint64_t>(seed);
          const auto rep = harness::run_rsm(sc);
          ok = ok && rep.completed && rep.check.ok();
          upd.add(rep.mean_update_latency);
          rd.add(rep.mean_read_latency);
          if (rep.ops_completed > 0) {
            msgs.add(static_cast<double>(rep.total_msgs) /
                     static_cast<double>(rep.ops_completed));
          }
        }
        table.row() << n << f << (all ? "all n" : "f+1 (paper)")
                    << upd.mean() << rd.mean() << msgs.mean() << ok;
      }
    }
    table.print();
    bench::note(
        "\nMeasured: the two policies are nearly identical — GWTS round "
        "turnover dominates\nend-to-end latency, so one correct replica "
        "proposing the command is as good as\nall of them. The paper's "
        "minimal f+1 contact rule costs essentially nothing.");
  }
  bench::banner(
      "T5c: client scaling — throughput and latency vs concurrent client "
      "count (n = 4, f = 1)");
  {
    bench::Table table({"clients", "ops_total", "upd_lat", "read_lat",
                        "ops/ktime", "props_ok"});
    for (std::uint32_t clients : {1u, 2u, 4u, 8u, 12u}) {
      bench::Agg upd, rd, thr;
      bool ok = true;
      std::uint64_t ops_total = 0;
      for (int seed = 1; seed <= 3; ++seed) {
        harness::RsmScenario sc;
        sc.n = 4;
        sc.f = 1;
        sc.num_clients = clients;
        sc.ops_per_client = 4;
        sc.seed = static_cast<std::uint64_t>(seed);
        const auto rep = harness::run_rsm(sc);
        ok = ok && rep.completed && rep.check.ok() &&
             rep.linearization.linearizable;
        upd.add(rep.mean_update_latency);
        rd.add(rep.mean_read_latency);
        thr.add(rep.ops_per_ktime);
        ops_total += rep.ops_completed;
      }
      table.row() << clients << ops_total / 3 << upd.mean() << rd.mean()
                  << thr.mean() << ok;
    }
    table.print();
    bench::note(
        "\nShape check: throughput rises with offered load (GWTS batches "
        "concurrent\ncommands into shared rounds — the amortisation "
        "batching exists for) while\nper-op latency grows only mildly; "
        "correctness and the linearization witness\nhold at every load.");
  }
  return 0;
}
