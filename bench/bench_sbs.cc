// T4 — the §8 signature trade-off: SbS vs WTS (one-shot) and GSbS vs GWTS
// (generalised).
//
// Paper claims: (a) SbS decides in ≤ 4f+5 delays with O(n) messages per
// process when f = O(1), vs WTS's O(n²); it pays with message *size*
// (proof-carrying proposals up to O(n²) bytes). (b) §8.2: GSbS brings the
// per-decision message complexity down from GWTS's O(f·n²) to O(f·n).
#include "bench/table.h"
#include "harness/scenario.h"

using namespace bgla;
using harness::Adversary;

int main() {
  bench::banner(
      "T4a: one-shot — SbS vs WTS, messages and bytes per process "
      "(f = 1, n sweep)");

  {
    bench::Table table({"n", "wts msgs/proc", "sbs msgs/proc", "msg ratio",
                        "wts bytes/proc", "sbs bytes/proc", "sbs depth",
                        "4f+5", "both specs ok"});
    for (std::uint32_t n : {4u, 7u, 10u, 16u, 25u, 31u}) {
      bench::Agg wmsgs, smsgs, wbytes, sbytes, sdepth;
      bool ok = true;
      for (int seed = 1; seed <= 5; ++seed) {
        harness::WtsScenario w;
        w.n = n;
        w.f = 1;
        w.byz_count = 1;
        w.adversary = Adversary::kMute;
        w.seed = static_cast<std::uint64_t>(seed);
        const auto wr = harness::run_wts(w);

        harness::SbsScenario s;
        s.n = n;
        s.f = 1;
        s.byz_count = 1;
        s.adversary = Adversary::kMute;
        s.seed = static_cast<std::uint64_t>(seed);
        const auto sr = harness::run_sbs(s);

        ok = ok && wr.spec.ok() && sr.spec.ok();
        wmsgs.add(static_cast<double>(wr.max_msgs_per_correct));
        smsgs.add(static_cast<double>(sr.max_msgs_per_correct));
        wbytes.add(static_cast<double>(wr.max_bytes_per_correct));
        sbytes.add(static_cast<double>(sr.max_bytes_per_correct));
        sdepth.add(static_cast<double>(sr.max_depth));
      }
      table.row() << n << wmsgs.mean() << smsgs.mean()
                  << wmsgs.mean() / smsgs.mean() << wbytes.mean()
                  << sbytes.mean()
                  << static_cast<std::uint64_t>(sdepth.max()) << 4 * 1 + 5
                  << ok;
    }
    table.print();
    bench::note(
        "\nShape check: the message ratio grows ~linearly in n (O(n²) vs "
        "O(n)), while SbS\npays in bytes per message (proof-carrying "
        "proposals) — the §8 trade-off.");
  }

  bench::banner("T4b: SbS delay bound vs f (Theorem 8: ≤ 4f+5)");
  {
    bench::Table table(
        {"n", "f", "adversary", "max_depth", "4f+5", "max_refines", "2f",
         "spec_ok"});
    for (std::uint32_t f : {1u, 2u, 3u, 4u}) {
      const std::uint32_t n = 3 * f + 1;
      for (Adversary adv :
           {Adversary::kMute, Adversary::kEquivocator,
            Adversary::kStaleNacker}) {
        bench::Agg depth, refines;
        bool ok = true;
        for (int seed = 1; seed <= 8; ++seed) {
          harness::SbsScenario sc;
          sc.n = n;
          sc.f = f;
          sc.byz_count = f;
          sc.adversary = adv;
          sc.seed = static_cast<std::uint64_t>(seed);
          const auto rep = harness::run_sbs(sc);
          ok = ok && rep.completed && rep.spec.ok();
          depth.add(static_cast<double>(rep.max_depth));
          refines.add(static_cast<double>(rep.max_refinements));
        }
        table.row() << n << f << harness::adversary_name(adv)
                    << static_cast<std::uint64_t>(depth.max()) << 4 * f + 5
                    << static_cast<std::uint64_t>(refines.max()) << 2 * f
                    << ok;
      }
    }
    table.print();
  }

  bench::banner(
      "T4c: generalised — GSbS vs GWTS, messages per decision per proposer "
      "(§8.2: O(f·n) vs O(f·n²))");
  {
    bench::Table table({"n", "f", "gwts msgs/dec", "gsbs msgs/dec", "ratio",
                        "both specs ok"});
    for (const auto& [n, f] :
         std::vector<std::pair<std::uint32_t, std::uint32_t>>{
             {4, 1}, {7, 2}, {10, 3}, {13, 4}}) {
      bench::Agg g, s;
      bool ok = true;
      for (int seed = 1; seed <= 3; ++seed) {
        harness::GwtsScenario gw;
        gw.n = n;
        gw.f = f;
        gw.byz_count = f;
        gw.adversary = Adversary::kMute;
        gw.target_decisions = 4;
        gw.seed = static_cast<std::uint64_t>(seed);
        const auto gr = harness::run_gwts(gw);

        harness::GsbsScenario gs;
        gs.n = n;
        gs.f = f;
        gs.byz_count = f;
        gs.adversary = Adversary::kMute;
        gs.target_decisions = 4;
        gs.seed = static_cast<std::uint64_t>(seed);
        const auto sr = harness::run_gsbs(gs);

        ok = ok && gr.spec.ok() && sr.spec.ok();
        g.add(gr.msgs_per_decision_per_proposer);
        s.add(sr.msgs_per_decision_per_proposer);
      }
      table.row() << n << f << g.mean() << s.mean() << g.mean() / s.mean()
                  << ok;
    }
    table.print();
    bench::note(
        "\nShape check: the GWTS/GSbS ratio grows ~linearly in n — one n "
        "factor removed,\nexactly the reliable-broadcast acks the "
        "signatures replace.");
  }
  return 0;
}
