// T4 — the §8 signature trade-off: SbS vs WTS (one-shot) and GSbS vs GWTS
// (generalised).
//
// Paper claims: (a) SbS decides in ≤ 4f+5 delays with O(n) messages per
// process when f = O(1), vs WTS's O(n²); it pays with message *size*
// (proof-carrying proposals up to O(n²) bytes). (b) §8.2: GSbS brings the
// per-decision message complexity down from GWTS's O(f·n²) to O(f·n).
//
// Independent (config × seed) simulations fan out across a thread pool
// (--jobs N, default: hardware concurrency); each sim owns its Network and
// SignatureAuthority, and results are aggregated in submission order, so
// every printed number is identical to a serial run. The run ends with a
// wall-clock/crypto summary and a machine-readable BENCH_sbs.json.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench/json.h"
#include "bench/table.h"
#include "harness/scenario.h"
#include "util/flags.h"
#include "util/thread_pool.h"

using namespace bgla;
using harness::Adversary;

namespace {

/// Totals across every simulation the bench ran.
struct BenchTotals {
  std::uint64_t events = 0;
  harness::CryptoReport crypto;

  void add(std::uint64_t ev, const harness::CryptoReport& c) {
    events += ev;
    crypto.macs_computed += c.macs_computed;
    crypto.verify_cache_hits += c.verify_cache_hits;
    crypto.verify_cache_misses += c.verify_cache_misses;
    crypto.verifies_skipped += c.verifies_skipped;
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t jobs = util::ThreadPool::default_workers();
  std::string json_path = "BENCH_sbs.json";
  util::FlagSet flags("bench_sbs");
  flags.add_size("jobs", &jobs, "worker threads (default: cores)");
  flags.add_string("json", &json_path, "output JSON path");
  flags.parse_or_exit(argc, argv);

  util::ThreadPool pool(jobs);
  jobs = pool.workers();  // report the clamped count (e.g. --jobs 0 -> 1)
  BenchTotals totals;
  const auto wall_start = std::chrono::steady_clock::now();

  bench::banner(
      "T4a: one-shot — SbS vs WTS, messages and bytes per process "
      "(f = 1, n sweep)");

  {
    const std::vector<std::uint32_t> ns = {4, 7, 10, 16, 25, 31};
    constexpr int kSeeds = 5;
    struct Pair {
      harness::WtsReport wr;
      harness::SbsReport sr;
    };
    const auto pairs = util::parallel_for_indexed<Pair>(
        pool, ns.size() * kSeeds, [&ns](std::size_t i) {
          const std::uint32_t n = ns[i / kSeeds];
          const int seed = static_cast<int>(i % kSeeds) + 1;
          harness::WtsScenario w;
          w.n = n;
          w.f = 1;
          w.byz_count = 1;
          w.adversary = Adversary::kMute;
          w.seed = static_cast<std::uint64_t>(seed);
          harness::SbsScenario s;
          s.n = n;
          s.f = 1;
          s.byz_count = 1;
          s.adversary = Adversary::kMute;
          s.seed = static_cast<std::uint64_t>(seed);
          return Pair{harness::run_wts(w), harness::run_sbs(s)};
        });

    bench::Table table({"n", "wts msgs/proc", "sbs msgs/proc", "msg ratio",
                        "wts bytes/proc", "sbs bytes/proc", "sbs depth",
                        "4f+5", "both specs ok"});
    for (std::size_t ni = 0; ni < ns.size(); ++ni) {
      bench::Agg wmsgs, smsgs, wbytes, sbytes, sdepth;
      bool ok = true;
      for (int seed = 0; seed < kSeeds; ++seed) {
        const Pair& p = pairs[ni * kSeeds + seed];
        ok = ok && p.wr.spec.ok() && p.sr.spec.ok();
        wmsgs.add(static_cast<double>(p.wr.max_msgs_per_correct));
        smsgs.add(static_cast<double>(p.sr.max_msgs_per_correct));
        wbytes.add(static_cast<double>(p.wr.max_bytes_per_correct));
        sbytes.add(static_cast<double>(p.sr.max_bytes_per_correct));
        sdepth.add(static_cast<double>(p.sr.max_depth));
        totals.add(p.wr.events, {});
        totals.add(p.sr.events, p.sr.crypto);
      }
      table.row() << ns[ni] << wmsgs.mean() << smsgs.mean()
                  << wmsgs.mean() / smsgs.mean() << wbytes.mean()
                  << sbytes.mean()
                  << static_cast<std::uint64_t>(sdepth.max()) << 4 * 1 + 5
                  << ok;
    }
    table.print();
    bench::note(
        "\nShape check: the message ratio grows ~linearly in n (O(n²) vs "
        "O(n)), while SbS\npays in bytes per message (proof-carrying "
        "proposals) — the §8 trade-off.");
  }

  bench::banner("T4b: SbS delay bound vs f (Theorem 8: ≤ 4f+5)");
  {
    const std::vector<std::uint32_t> fs = {1, 2, 3, 4};
    const std::vector<Adversary> advs = {
        Adversary::kMute, Adversary::kEquivocator, Adversary::kStaleNacker};
    constexpr int kSeeds = 8;
    const auto reps = util::parallel_for_indexed<harness::SbsReport>(
        pool, fs.size() * advs.size() * kSeeds, [&](std::size_t i) {
          const std::uint32_t f = fs[i / (advs.size() * kSeeds)];
          const Adversary adv = advs[(i / kSeeds) % advs.size()];
          const int seed = static_cast<int>(i % kSeeds) + 1;
          harness::SbsScenario sc;
          sc.n = 3 * f + 1;
          sc.f = f;
          sc.byz_count = f;
          sc.adversary = adv;
          sc.seed = static_cast<std::uint64_t>(seed);
          return harness::run_sbs(sc);
        });

    bench::Table table(
        {"n", "f", "adversary", "max_depth", "4f+5", "max_refines", "2f",
         "spec_ok"});
    std::size_t i = 0;
    for (std::uint32_t f : fs) {
      const std::uint32_t n = 3 * f + 1;
      for (Adversary adv : advs) {
        bench::Agg depth, refines;
        bool ok = true;
        for (int seed = 0; seed < kSeeds; ++seed, ++i) {
          const auto& rep = reps[i];
          ok = ok && rep.completed && rep.spec.ok();
          depth.add(static_cast<double>(rep.max_depth));
          refines.add(static_cast<double>(rep.max_refinements));
          totals.add(rep.events, rep.crypto);
        }
        table.row() << n << f << harness::adversary_name(adv)
                    << static_cast<std::uint64_t>(depth.max()) << 4 * f + 5
                    << static_cast<std::uint64_t>(refines.max()) << 2 * f
                    << ok;
      }
    }
    table.print();
  }

  bench::banner(
      "T4c: generalised — GSbS vs GWTS, messages per decision per proposer "
      "(§8.2: O(f·n) vs O(f·n²))");
  {
    const std::vector<std::pair<std::uint32_t, std::uint32_t>> sizes = {
        {4, 1}, {7, 2}, {10, 3}, {13, 4}};
    constexpr int kSeeds = 3;
    struct Pair {
      harness::GwtsReport gr;
      harness::GsbsReport sr;
    };
    const auto pairs = util::parallel_for_indexed<Pair>(
        pool, sizes.size() * kSeeds, [&sizes](std::size_t i) {
          const auto [n, f] = sizes[i / kSeeds];
          const int seed = static_cast<int>(i % kSeeds) + 1;
          harness::GwtsScenario gw;
          gw.n = n;
          gw.f = f;
          gw.byz_count = f;
          gw.adversary = Adversary::kMute;
          gw.target_decisions = 4;
          gw.seed = static_cast<std::uint64_t>(seed);
          harness::GsbsScenario gs;
          gs.n = n;
          gs.f = f;
          gs.byz_count = f;
          gs.adversary = Adversary::kMute;
          gs.target_decisions = 4;
          gs.seed = static_cast<std::uint64_t>(seed);
          return Pair{harness::run_gwts(gw), harness::run_gsbs(gs)};
        });

    bench::Table table({"n", "f", "gwts msgs/dec", "gsbs msgs/dec", "ratio",
                        "both specs ok"});
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      bench::Agg g, s;
      bool ok = true;
      for (int seed = 0; seed < kSeeds; ++seed) {
        const Pair& p = pairs[si * kSeeds + seed];
        ok = ok && p.gr.spec.ok() && p.sr.spec.ok();
        g.add(p.gr.msgs_per_decision_per_proposer);
        s.add(p.sr.msgs_per_decision_per_proposer);
        totals.add(p.gr.events, p.gr.crypto);
        totals.add(p.sr.events, p.sr.crypto);
      }
      table.row() << sizes[si].first << sizes[si].second << g.mean()
                  << s.mean() << g.mean() / s.mean() << ok;
    }
    table.print();
    bench::note(
        "\nShape check: the GWTS/GSbS ratio grows ~linearly in n — one n "
        "factor removed,\nexactly the reliable-broadcast acks the "
        "signatures replace.");
  }

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  const double events_per_sec =
      wall_seconds > 0 ? static_cast<double>(totals.events) / wall_seconds
                       : 0.0;

  bench::banner("Run summary (wall clock + crypto work)");
  std::cout << "wall_seconds       " << wall_seconds << "\n"
            << "jobs               " << jobs << "\n"
            << "total_events       " << totals.events << "\n"
            << "events_per_sec     " << events_per_sec << "\n"
            << "macs_computed      " << totals.crypto.macs_computed << "\n"
            << "verify_cache_hits  " << totals.crypto.verify_cache_hits
            << "\n"
            << "verify_cache_miss  " << totals.crypto.verify_cache_misses
            << "\n"
            << "verifies_skipped   " << totals.crypto.verifies_skipped
            << "\n";

  bench::Json crypto;
  crypto.set("macs_computed", totals.crypto.macs_computed)
      .set("verify_cache_hits", totals.crypto.verify_cache_hits)
      .set("verify_cache_misses", totals.crypto.verify_cache_misses)
      .set("verifies_skipped", totals.crypto.verifies_skipped);
  bench::Json out;
  bench::add_build_info(out.set("bench", "sbs"))
      .set("wall_seconds", wall_seconds)
      .set("jobs", jobs)
      .set("total_events", totals.events)
      .set("events_per_sec", events_per_sec)
      .raw("crypto", crypto.str());
  if (!out.write(json_path)) {
    std::cerr << "warning: could not write " << json_path << "\n";
  }
  return 0;
}
