// T-throughput — proposal batching across the generalized protocols.
//
// Claim under test: coalescing pending submissions into one lattice join
// per round (the PODC'12 "buffered values" scheme, here with explicit
// size/byte/time release policies) multiplies end-to-end command
// throughput, because a round's cost is (nearly) independent of how many
// values ride in its batch. Measured on the closed-loop harness: commands
// per 1000 sim ticks and p50/p99 submit→decide latency, for
// faleiro-la/gwts/gsbs × batch ∈ {1, 4, 16, 64} at n = 7, plus pipelined
// variants for the round-based protocols.
//
// Shard axis (T-shard): the same global command feed split across
// S ∈ {1, 2, 4} product-lattice GLA instances (src/shard/), at fixed
// protocol and batch size. Scaling on one core is algorithmic — per-shard
// frontiers of size C/S cut the quadratic join/encode cost to C²/S — so
// the measure is wall-clock commands/sec, not sim ticks.
//
// Machine artifact: BENCH_throughput.json. gate_ok asserts the headline
// acceptance: gwts n=7 at batch=64 sustains ≥ 3× the commands/sec of
// batch=1, S=4 sustains ≥ 2× the commands/sec of S=1 at the same batch,
// and every cell's la/spec safety verdict holds (per shard on the shard
// axis).
#include <iostream>
#include <string>
#include <vector>

#include "bench/json.h"
#include "bench/table.h"
#include "harness/sharded.h"
#include "harness/throughput.h"
#include "util/flags.h"

using namespace bgla;
using harness::ThroughputProtocol;

namespace {

struct Cell {
  ThroughputProtocol protocol;
  std::uint32_t batch;  // max_batch knob (values per round batch)
  bool pipeline;
};

struct CellResult {
  double cmds_per_ktick = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double mean_batch = 0.0;
  std::uint64_t backpressure = 0;
  bool spec_ok = true;
  bool completed = true;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_throughput.json";
  bool smoke = false;
  std::uint64_t seeds = 3;
  std::uint32_t n = 7;
  std::uint32_t commands = 96;
  util::FlagSet flags("bench_throughput");
  flags.add_string("json", &json_path, "output JSON path");
  flags.add_bool("smoke", &smoke,
                 "CI mode: 1 seed, short feeds, batch {1,64} only");
  flags.add_u64("seeds", &seeds, "seeds per cell");
  flags.add_u32("n", &n, "cluster size");
  flags.add_u32("commands", &commands, "commands per process");
  flags.parse_or_exit(argc, argv);
  if (smoke) {
    seeds = 1;
    commands = 16;
  }

  bench::banner(
      "T-throughput: ingress batching + pipelined rounds — commands/ktick "
      "and decide latency vs batch size (closed loop, n=" +
      std::to_string(n) + ")");

  const std::vector<std::uint32_t> batches =
      smoke ? std::vector<std::uint32_t>{1, 64}
            : std::vector<std::uint32_t>{1, 4, 16, 64};
  std::vector<Cell> cells;
  for (const ThroughputProtocol p :
       {ThroughputProtocol::kFaleiro, ThroughputProtocol::kGwts,
        ThroughputProtocol::kGsbs}) {
    for (const std::uint32_t b : batches) {
      cells.push_back({p, b, false});
      // Pipelining applies to the round-based protocols; measure it on the
      // largest batch, where the disclosure/init phase it hides is widest.
      if (p != ThroughputProtocol::kFaleiro && b == batches.back()) {
        cells.push_back({p, b, true});
      }
    }
  }

  bench::Table table({"protocol", "n", "f", "batch", "pipeline",
                      "cmds/ktick", "p50_lat", "p99_lat", "mean_batch",
                      "backpressure", "spec_ok"});
  std::vector<std::string> rows_json;
  bool all_spec_ok = true;
  bool all_completed = true;
  double gwts_batch1 = 0.0;
  double gwts_batch64 = 0.0;

  for (const Cell& c : cells) {
    const bool crash = c.protocol == ThroughputProtocol::kFaleiro;
    const std::uint32_t f = crash ? (n - 1) / 2 : (n - 1) / 3;
    bench::Agg thr, p50, p99, mb;
    CellResult res;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      harness::ThroughputScenario sc;
      sc.protocol = c.protocol;
      sc.n = n;
      sc.f = f;
      sc.batch.max_batch = c.batch;
      sc.batch.pipeline = c.pipeline;
      sc.commands_per_proc = commands;
      // Keep the offered load constant across batch sizes: the window
      // must cover the largest batch or big batches starve.
      sc.window = std::max<std::uint32_t>(commands, 64);
      sc.seed = seed;
      const harness::ThroughputReport rep = harness::run_throughput(sc);
      thr.add(rep.commands_per_ktick);
      p50.add(rep.p50_latency);
      p99.add(rep.p99_latency);
      mb.add(rep.mean_batch_size);
      res.backpressure += rep.backpressure_rejections;
      res.spec_ok = res.spec_ok && rep.spec.ok();
      res.completed = res.completed && rep.completed;
    }
    res.cmds_per_ktick = thr.mean();
    res.p50 = p50.mean();
    res.p99 = p99.mean();
    res.mean_batch = mb.mean();
    all_spec_ok = all_spec_ok && res.spec_ok;
    all_completed = all_completed && res.completed;

    const char* pname = harness::throughput_protocol_name(c.protocol);
    if (c.protocol == ThroughputProtocol::kGwts && !c.pipeline) {
      if (c.batch == 1) gwts_batch1 = res.cmds_per_ktick;
      if (c.batch == 64) gwts_batch64 = res.cmds_per_ktick;
    }

    table.row() << pname << n << f << c.batch
                << (c.pipeline ? "on" : "off") << res.cmds_per_ktick
                << res.p50 << res.p99 << res.mean_batch << res.backpressure
                << (res.spec_ok ? "yes" : "NO");

    bench::Json row;
    row.set("protocol", pname)
        .set("n", static_cast<std::uint64_t>(n))
        .set("f", static_cast<std::uint64_t>(f))
        .set("batch", static_cast<std::uint64_t>(c.batch))
        .set("pipeline", c.pipeline)
        .set("commands_per_ktick", res.cmds_per_ktick)
        .set("p50_latency", res.p50)
        .set("p99_latency", res.p99)
        .set("mean_batch_size", res.mean_batch)
        .set("backpressure_rejections", res.backpressure)
        .set("spec_ok", res.spec_ok)
        .set("completed", res.completed);
    rows_json.push_back(row.str());
  }

  table.print();

  // ---- shard axis: S instances, same global feed, same batch size ----
  const std::uint32_t shard_batch = 16;
  // The quadratic frontier cost must dominate per-event constants for the
  // algorithmic S× win to show; the full run uses a longer feed.
  const std::uint32_t shard_commands = smoke ? 24 : 224;
  const std::vector<std::uint32_t> shard_counts =
      smoke ? std::vector<std::uint32_t>{1, 4}
            : std::vector<std::uint32_t>{1, 2, 4};

  bench::banner("T-shard: product-lattice scale-out — wall-clock cmds/sec "
                "vs shard count (gwts, batch=" +
                std::to_string(shard_batch) +
                ", global feed fixed across S)");
  bench::Table stable({"shards", "cmds/sec", "wall_s", "cmds", "merged",
                       "spec_ok", "merge_ok"});
  std::vector<std::string> shard_rows_json;
  double shards1_rate = 0.0;
  double shards4_rate = 0.0;
  bool shard_cells_ok = true;

  for (const std::uint32_t S : shard_counts) {
    bench::Agg rate, wall;
    std::uint64_t cmds = 0, merged_weight = 0;
    bool ok = true, merge_ok = true;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      harness::ShardedScenario sc;
      sc.base.protocol = ThroughputProtocol::kGwts;
      sc.base.n = n;
      sc.base.f = (n - 1) / 3;
      sc.base.batch.max_batch = shard_batch;
      sc.base.commands_per_proc = shard_commands;
      sc.base.window = std::max<std::uint32_t>(shard_commands, 64);
      sc.base.seed = seed;
      sc.shards = S;
      const harness::ShardedReport rep = harness::run_sharded_throughput(sc);
      rate.add(rep.commands_per_sec);
      wall.add(rep.wall_seconds);
      cmds = rep.commands;
      merged_weight = rep.merged_weight;
      ok = ok && rep.completed && rep.all_spec_ok;
      merge_ok = merge_ok && rep.merge_complete && rep.merge_monotone;
    }
    shard_cells_ok = shard_cells_ok && ok && merge_ok;
    if (S == 1) shards1_rate = rate.mean();
    if (S == 4) shards4_rate = rate.mean();

    stable.row() << S << rate.mean() << wall.mean() << cmds << merged_weight
                 << (ok ? "yes" : "NO") << (merge_ok ? "yes" : "NO");

    bench::Json row;
    row.set("shards", static_cast<std::uint64_t>(S))
        .set("protocol", "gwts")
        .set("batch", static_cast<std::uint64_t>(shard_batch))
        .set("commands_per_proc",
             static_cast<std::uint64_t>(shard_commands))
        .set("commands_per_sec", rate.mean())
        .set("wall_seconds", wall.mean())
        .set("commands", cmds)
        .set("merged_weight", merged_weight)
        .set("spec_ok", ok)
        .set("merge_ok", merge_ok);
    shard_rows_json.push_back(row.str());
  }
  stable.print();

  // ---- bytes axis (T-bytes): per-command wire cost vs feed length ----
  //
  // Claim under test: full-state proposals/acks make the *per-command*
  // byte cost grow with history (each message carries the whole
  // accumulated set), while delta encoding against the receiver's acked
  // frontier keeps it flat. Measured on faleiro-la (no RB or digest
  // traffic to dilute the effect) at n=3, batch=64, with the same run
  // executed twice through the wire decorator: meter-only (full-state
  // bytes, the delta-off baseline) and delta-on.
  const std::vector<std::uint32_t> byte_feeds =
      smoke ? std::vector<std::uint32_t>{32, 320}
            : std::vector<std::uint32_t>{334, 3334, 16667};  // ~1k/10k/50k total
  bench::banner(
      "T-bytes: delta wire encoding — bytes/command vs feed length "
      "(faleiro-la, n=3, batch=64, meter-only vs delta-on)");
  bench::Table btable({"cmds_total", "B/cmd_full", "B/cmd_delta", "ratio",
                       "delta_msgs", "resets", "spec_ok"});
  std::vector<std::string> byte_rows_json;
  bool bytes_cells_ok = true;
  double delta_first = 0.0, delta_last = 0.0;
  double full_first = 0.0, full_last = 0.0;

  for (const std::uint32_t cpp : byte_feeds) {
    harness::ThroughputScenario sc;
    sc.protocol = ThroughputProtocol::kFaleiro;
    sc.n = 3;
    sc.f = 1;
    sc.batch.max_batch = 64;
    sc.commands_per_proc = cpp;
    sc.window = 256;
    sc.seed = 1;
    sc.wire = harness::ThroughputScenario::WireMode::kMeter;
    const harness::ThroughputReport off = harness::run_throughput(sc);
    sc.wire = harness::ThroughputScenario::WireMode::kDelta;
    const harness::ThroughputReport on = harness::run_throughput(sc);

    const bool ok = off.completed && off.spec.ok() && on.completed &&
                    on.spec.ok() && on.wire.resets_sent == 0;
    bytes_cells_ok = bytes_cells_ok && ok;
    const double ratio =
        on.bytes_per_command > 0.0 ? off.bytes_per_command / on.bytes_per_command
                                   : 0.0;
    if (cpp == byte_feeds.front()) {
      delta_first = on.bytes_per_command;
      full_first = off.bytes_per_command;
    }
    if (cpp == byte_feeds.back()) {
      delta_last = on.bytes_per_command;
      full_last = off.bytes_per_command;
    }

    btable.row() << 3 * cpp << off.bytes_per_command << on.bytes_per_command
                 << ratio << on.wire.msgs_delta << on.wire.resets_sent
                 << (ok ? "yes" : "NO");

    bench::Json row;
    row.set("commands_total", static_cast<std::uint64_t>(3 * cpp))
        .set("protocol", "faleiro-la")
        .set("bytes_per_command_full", off.bytes_per_command)
        .set("bytes_per_command_delta", on.bytes_per_command)
        .set("full_over_delta", ratio)
        .set("wire_bytes_full", off.wire.wire_bytes_passthrough)
        .set("wire_bytes_delta", on.wire.wire_bytes_delta)
        .set("delta_msgs", on.wire.msgs_delta)
        .set("resets", on.wire.resets_sent)
        .set("spec_ok", ok);
    byte_rows_json.push_back(row.str());
  }
  btable.print();

  // Delta-on must stay flat as the feed grows (≤1.5× from the shortest to
  // the longest feed); the full-state baseline must grow faster than the
  // delta curve, or the encoding isn't buying anything.
  const double delta_growth =
      delta_first > 0.0 ? delta_last / delta_first : 0.0;
  const double full_growth = full_first > 0.0 ? full_last / full_first : 0.0;
  const bool bytes_gate =
      bytes_cells_ok && delta_growth > 0.0 && delta_growth <= 1.5 &&
      (smoke || full_growth > delta_growth);

  const double shard_speedup =
      shards1_rate > 0.0 ? shards4_rate / shards1_rate : 0.0;

  const double speedup =
      gwts_batch1 > 0.0 ? gwts_batch64 / gwts_batch1 : 0.0;
  // The smoke feeds are too short for the asymptotic speedups; the smoke
  // gate only asserts safety + completion + merge correctness, the full
  // gate also the ≥3× batching and ≥2× sharding ratios. Per-shard spec
  // verdicts are never waived.
  const bool gate_ok = all_spec_ok && all_completed && shard_cells_ok &&
                       bytes_gate &&
                       (smoke || (speedup >= 3.0 && shard_speedup >= 2.0));
  bench::note("");
  std::ostringstream sp;
  sp << "gwts n=" << n << " batch=64 vs batch=1 speedup: " << speedup
     << "x (gate: >= 3x" << (smoke ? ", waived in --smoke" : "") << ")";
  bench::note(sp.str());
  std::ostringstream shp;
  shp << "gwts n=" << n << " shards=4 vs shards=1 wall-clock speedup: "
      << shard_speedup << "x (gate: >= 2x"
      << (smoke ? ", waived in --smoke" : "") << ")";
  bench::note(shp.str());
  std::ostringstream bp;
  bp << "faleiro-la delta bytes/command growth over the feed axis: "
     << delta_growth << "x (gate: <= 1.5x); full-state baseline: "
     << full_growth << "x"
     << (smoke ? " (separation waived in --smoke)" : "");
  bench::note(bp.str());
  bench::note(gate_ok ? "GATE ok" : "GATE FAILED");

  bench::Json out;
  bench::add_build_info(out);
  out.set("bench", "throughput")
      .set("smoke", smoke)
      .set("n", static_cast<std::uint64_t>(n))
      .set("commands_per_proc", static_cast<std::uint64_t>(commands))
      .set("seeds", seeds)
      .set("gwts_batch64_speedup", speedup)
      .set("shard_speedup_s4", shard_speedup)
      .set("delta_bytes_growth", delta_growth)
      .set("full_bytes_growth", full_growth)
      .set("all_spec_ok", all_spec_ok)
      .set("all_completed", all_completed)
      .set("shard_cells_ok", shard_cells_ok)
      .set("bytes_gate_ok", bytes_gate)
      .set("gate_ok", gate_ok);
  std::string rows = "[";
  for (std::size_t i = 0; i < rows_json.size(); ++i) {
    if (i > 0) rows += ",";
    rows += rows_json[i];
  }
  rows += "]";
  out.raw("rows", rows);
  std::string srows = "[";
  for (std::size_t i = 0; i < shard_rows_json.size(); ++i) {
    if (i > 0) srows += ",";
    srows += shard_rows_json[i];
  }
  srows += "]";
  out.raw("shard_rows", srows);
  std::string brows = "[";
  for (std::size_t i = 0; i < byte_rows_json.size(); ++i) {
    if (i > 0) brows += ",";
    brows += byte_rows_json[i];
  }
  brows += "]";
  out.raw("byte_rows", brows);
  if (!out.write(json_path)) {
    std::cerr << "warning: could not write " << json_path << "\n";
  }
  return gate_ok ? 0 : 1;
}
