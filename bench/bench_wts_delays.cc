// T1 — WTS decision latency in message delays (Theorem 3).
//
// Paper claim: every correct proposer decides within 2f+5 message delays.
// Measured: maximal causal message-delay depth at the decide event, over a
// sweep of system sizes, adversaries and schedules, aggregated over seeds.
// The 2f+5 constant charges the reliable broadcast 3 delays; Bracha's
// READY-amplification path can stretch an RB delivery to 3+f causal hops
// under adversarial schedules, so the implementable bound is 3f+5 (and
// exactly 2f+5 under the lock-step schedule). Both are reported.
#include "bench/table.h"
#include "byz/strategies.h"
#include "la/wts.h"
#include "lattice/set_elem.h"
#include "util/rng.h"
#include "harness/scenario.h"

using namespace bgla;
using harness::Adversary;
using harness::Sched;

int main() {
  bench::banner(
      "T1: WTS decision latency in message delays "
      "(Theorem 3: ≤ 2f+5 paper accounting / ≤ 3f+5 with Bracha "
      "amplification)");

  bench::Table table({"n", "f", "adversary", "sched", "seeds", "max_depth",
                      "p95_depth", "mean_depth", "2f+5", "3f+5", "within"});

  const std::vector<std::pair<std::uint32_t, std::uint32_t>> sizes = {
      {4, 1}, {7, 2}, {10, 3}, {13, 4}, {16, 5}, {19, 6}, {25, 8}, {31, 10}};
  const std::vector<Adversary> adversaries = {
      Adversary::kNone, Adversary::kEquivocator, Adversary::kStaleNacker};
  const std::vector<Sched> scheds = {Sched::kFixed, Sched::kUniform,
                                     Sched::kJitter};
  constexpr int kSeeds = 10;

  for (const auto& [n, f] : sizes) {
    for (Adversary adv : adversaries) {
      for (Sched sched : scheds) {
        // Keep the grid tractable: big sizes only on the uniform schedule
        // and the none/stale-nacker adversaries.
        if (n > 16 && (sched != Sched::kUniform ||
                       adv == Adversary::kEquivocator)) {
          continue;
        }
        bench::Agg depth_max, depth_mean;
        bool all_ok = true;
        for (int seed = 1; seed <= kSeeds; ++seed) {
          harness::WtsScenario sc;
          sc.n = n;
          sc.f = f;
          sc.byz_count = f;
          sc.adversary = adv;
          sc.sched = sched;
          sc.seed = static_cast<std::uint64_t>(seed);
          const auto rep = harness::run_wts(sc);
          all_ok = all_ok && rep.completed && rep.spec.ok();
          depth_max.add(static_cast<double>(rep.max_depth));
          depth_mean.add(rep.mean_depth);
        }
        const auto max_depth = static_cast<std::uint64_t>(depth_max.max());
        const std::uint64_t paper_bound = 2 * f + 5;
        const std::uint64_t impl_bound = 3 * f + 5;
        table.row() << n << f << harness::adversary_name(adv)
                    << harness::sched_name(sched) << kSeeds << max_depth
                    << depth_max.percentile(95) << depth_mean.mean()
                    << paper_bound << impl_bound
                    << (all_ok && max_depth <= impl_bound);
      }
    }
  }
  table.print();
  bench::note(
      "\nShape check: max_depth grows ~linearly in f and sits at or below "
      "the bound;\nthe lock-step (fixed) schedule matches the paper's 2f+5 "
      "accounting exactly.");

  bench::banner(
      "T1b: adversarial schedule search — randomly sampled targeted-delay "
      "link sets hunting the worst decision depth");
  {
    bench::Table table({"n", "f", "schedules_tried", "worst_depth",
                        "2f+5", "3f+5", "within 3f+5"});
    Rng rng(0xadbad5eedull);
    for (const auto& [n, f] :
         std::vector<std::pair<std::uint32_t, std::uint32_t>>{{4, 1},
                                                              {7, 2},
                                                              {10, 3}}) {
      std::uint64_t worst = 0;
      constexpr int kSchedules = 40;
      for (int trial = 0; trial < kSchedules; ++trial) {
        // Sample a random set of stretched ordered links.
        std::set<std::pair<ProcessId, ProcessId>> victims;
        const std::size_t count = 1 + rng.uniform(0, 2 * n);
        for (std::size_t i = 0; i < count; ++i) {
          const auto a = static_cast<ProcessId>(rng.uniform(0, n - 1));
          const auto b = static_cast<ProcessId>(rng.uniform(0, n - 1));
          if (a != b) victims.insert({a, b});
        }
        la::LaConfig cfg;
        cfg.n = n;
        cfg.f = f;
        sim::Network net(
            std::make_unique<sim::TargetedDelay>(victims, 1,
                                                 50 + rng.uniform(0, 400)),
            rng.next_u64(), n);
        std::vector<std::unique_ptr<la::WtsProcess>> correct;
        std::vector<std::unique_ptr<byz::WtsStaleNacker>> byzs;
        for (ProcessId id = 0; id < n - f; ++id) {
          correct.push_back(std::make_unique<la::WtsProcess>(
              net, id, cfg,
              lattice::make_set({lattice::Item{id, 100 + id, 0}})));
        }
        for (ProcessId id = n - f; id < n; ++id) {
          byzs.push_back(std::make_unique<byz::WtsStaleNacker>(
              net, id, cfg,
              lattice::make_set({lattice::Item{id, 400 + id, 0}})));
        }
        net.run(2'000'000);
        for (const auto& p : correct) {
          if (p->decided()) {
            worst = std::max(worst, p->decision().depth);
          }
        }
      }
      table.row() << n << f << kSchedules << worst << 2 * f + 5
                  << 3 * f + 5 << (worst <= 3 * f + 5);
    }
    table.print();
    bench::note(
        "\nShape check: even an active search over adversarial link-delay "
        "patterns never\npushes the decision depth past 3f+5 (and rarely "
        "past 2f+5) — the amplification\nslack is the whole gap.");
  }
  return 0;
}
