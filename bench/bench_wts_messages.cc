// T2 — WTS message complexity (§5.1.3).
//
// Paper claim: O(n²) messages per process, dominated by the Byzantine
// reliable broadcast of the disclosure phase; the deciding phase generates
// O(f·n). Measured: per-process message counts by layer vs n, plus the
// fitted growth exponent between successive sizes.
#include <cmath>

#include "bench/table.h"
#include "harness/scenario.h"

using namespace bgla;
using harness::Adversary;

int main() {
  bench::banner("T2: WTS messages per process vs n (claim: O(n^2))");

  bench::Table table({"n", "f", "msgs/proc(max)", "bytes/proc(max)",
                      "total_msgs", "msgs/n^2", "exp_vs_prev"});

  const std::vector<std::pair<std::uint32_t, std::uint32_t>> sizes = {
      {4, 1}, {7, 2}, {10, 3}, {13, 4}, {16, 5}, {19, 6}, {25, 8}, {31, 10}};
  constexpr int kSeeds = 5;

  double prev_msgs = 0;
  double prev_n = 0;
  for (const auto& [n, f] : sizes) {
    bench::Agg msgs, bytes, total;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      harness::WtsScenario sc;
      sc.n = n;
      sc.f = f;
      sc.byz_count = f;
      sc.adversary = Adversary::kStaleNacker;  // worst-case refinements
      sc.seed = static_cast<std::uint64_t>(seed);
      const auto rep = harness::run_wts(sc);
      msgs.add(static_cast<double>(rep.max_msgs_per_correct));
      bytes.add(static_cast<double>(rep.max_bytes_per_correct));
      total.add(static_cast<double>(rep.total_msgs));
    }
    const double m = msgs.mean();
    std::string exp = "-";
    if (prev_msgs > 0) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(2)
         << std::log(m / prev_msgs) / std::log(n / prev_n);
      exp = os.str();
    }
    table.row() << n << f << m << bytes.mean() << total.mean()
                << m / (static_cast<double>(n) * n) << exp;
    prev_msgs = m;
    prev_n = n;
  }
  table.print();
  bench::note(
      "\nShape check: msgs/n^2 settles to a near-constant and the fitted "
      "exponent\napproaches ~2 — the quadratic reliable-broadcast cost "
      "dominates, as §5.1.3 claims.");
  return 0;
}
