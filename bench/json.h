// Minimal JSON emitter for the machine-readable BENCH_*.json artifacts.
// Flat objects with string/number/bool fields plus one level of nesting
// (raw() splices a pre-rendered value); fields keep insertion order.
#pragma once

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace bgla::bench {

class Json {
 public:
  Json& set(const std::string& key, const std::string& v) {
    std::string out = "\"";
    for (char c : v) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    fields_.emplace_back(key, std::move(out));
    return *this;
  }
  Json& set(const std::string& key, const char* v) {
    return set(key, std::string(v));
  }
  Json& set(const std::string& key, bool v) {
    fields_.emplace_back(key, v ? "true" : "false");
    return *this;
  }
  Json& set(const std::string& key, double v) {
    std::ostringstream os;
    os << v;
    fields_.emplace_back(key, os.str());
    return *this;
  }
  Json& set(const std::string& key, std::uint64_t v) {
    fields_.emplace_back(key, std::to_string(v));
    return *this;
  }
  Json& set(const std::string& key, int v) {
    fields_.emplace_back(key, std::to_string(v));
    return *this;
  }
  /// Splices an already-rendered JSON value (nested object/array).
  Json& raw(const std::string& key, const std::string& rendered) {
    fields_.emplace_back(key, rendered);
    return *this;
  }

  std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + fields_[i].first + "\":" + fields_[i].second;
    }
    out += "}";
    return out;
  }

  /// Writes the object (plus trailing newline) to `path`; returns success.
  bool write(const std::string& path) const {
    std::ofstream f(path);
    if (!f) return false;
    f << str() << "\n";
    return static_cast<bool>(f);
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Stamps build provenance on a BENCH_*.json object so artifacts from
/// different checkouts stay distinguishable. BGLA_VERSION / BGLA_GIT_SHA
/// come from the build system (see bench/CMakeLists.txt); "unknown" when
/// built without them.
inline Json& add_build_info(Json& j) {
#ifdef BGLA_VERSION
  j.set("version", BGLA_VERSION);
#else
  j.set("version", "unknown");
#endif
#ifdef BGLA_GIT_SHA
  j.set("git_sha", BGLA_GIT_SHA);
#else
  j.set("git_sha", "unknown");
#endif
  return j;
}

}  // namespace bgla::bench
