// Tiny fixed-width table printer + seed-aggregation helpers shared by the
// experiment benches (T1..T8). Each bench binary prints the rows/series of
// one DESIGN.md experiment; EXPERIMENTS.md records the measured outputs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

namespace bgla::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  class Row {
   public:
    explicit Row(Table& t) : table_(t) {}
    Row& operator<<(const std::string& s) {
      cells_.push_back(s);
      return *this;
    }
    Row& operator<<(const char* s) { return *this << std::string(s); }
    Row& operator<<(bool b) { return *this << std::string(b ? "yes" : "NO"); }
    template <typename T>
    Row& operator<<(T v) {
      std::ostringstream os;
      if constexpr (std::is_floating_point_v<T>) {
        os << std::fixed << std::setprecision(1) << v;
      } else {
        os << v;
      }
      cells_.push_back(os.str());
      return *this;
    }
    ~Row() { table_.rows_.push_back(std::move(cells_)); }

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };

  Row row() { return Row(*this); }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& r : rows_) {
        if (c < r.size()) widths[c] = std::max(widths[c], r[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
           << (c < cells.size() ? cells[c] : "");
      }
      os << "\n";
    };
    line(headers_);
    std::string rule;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      rule += std::string(widths[c], '-') + "  ";
    }
    os << rule << "\n";
    for (const auto& r : rows_) line(r);
  }

 private:
  friend class Row;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

struct Agg {
  std::vector<double> xs;
  void add(double x) { xs.push_back(x); }
  double mean() const {
    if (xs.empty()) return 0;
    return std::accumulate(xs.begin(), xs.end(), 0.0) /
           static_cast<double>(xs.size());
  }
  double max() const {
    return xs.empty() ? 0 : *std::max_element(xs.begin(), xs.end());
  }
  double min() const {
    return xs.empty() ? 0 : *std::min_element(xs.begin(), xs.end());
  }
  /// Percentile via nearest-rank on a sorted copy (q in [0, 100]).
  double percentile(double q) const {
    if (xs.empty()) return 0;
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(
        q / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
  }
};

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

inline void note(const std::string& text) { std::cout << text << "\n"; }

}  // namespace bgla::bench
