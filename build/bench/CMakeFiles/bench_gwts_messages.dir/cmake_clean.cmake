file(REMOVE_RECURSE
  "CMakeFiles/bench_gwts_messages.dir/bench_gwts_messages.cc.o"
  "CMakeFiles/bench_gwts_messages.dir/bench_gwts_messages.cc.o.d"
  "bench_gwts_messages"
  "bench_gwts_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gwts_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
