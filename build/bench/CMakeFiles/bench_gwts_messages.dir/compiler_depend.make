# Empty compiler generated dependencies file for bench_gwts_messages.
# This may be replaced when dependencies are built.
