file(REMOVE_RECURSE
  "CMakeFiles/bench_refinements.dir/bench_refinements.cc.o"
  "CMakeFiles/bench_refinements.dir/bench_refinements.cc.o.d"
  "bench_refinements"
  "bench_refinements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refinements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
