# Empty compiler generated dependencies file for bench_refinements.
# This may be replaced when dependencies are built.
