file(REMOVE_RECURSE
  "CMakeFiles/bench_resilience.dir/bench_resilience.cc.o"
  "CMakeFiles/bench_resilience.dir/bench_resilience.cc.o.d"
  "bench_resilience"
  "bench_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
