file(REMOVE_RECURSE
  "CMakeFiles/bench_rsm.dir/bench_rsm.cc.o"
  "CMakeFiles/bench_rsm.dir/bench_rsm.cc.o.d"
  "bench_rsm"
  "bench_rsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
