# Empty compiler generated dependencies file for bench_rsm.
# This may be replaced when dependencies are built.
