file(REMOVE_RECURSE
  "CMakeFiles/bench_sbs.dir/bench_sbs.cc.o"
  "CMakeFiles/bench_sbs.dir/bench_sbs.cc.o.d"
  "bench_sbs"
  "bench_sbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
