# Empty compiler generated dependencies file for bench_sbs.
# This may be replaced when dependencies are built.
