file(REMOVE_RECURSE
  "CMakeFiles/bench_wts_delays.dir/bench_wts_delays.cc.o"
  "CMakeFiles/bench_wts_delays.dir/bench_wts_delays.cc.o.d"
  "bench_wts_delays"
  "bench_wts_delays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wts_delays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
