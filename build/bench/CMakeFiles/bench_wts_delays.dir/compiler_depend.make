# Empty compiler generated dependencies file for bench_wts_delays.
# This may be replaced when dependencies are built.
