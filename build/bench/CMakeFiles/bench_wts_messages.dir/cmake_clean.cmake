file(REMOVE_RECURSE
  "CMakeFiles/bench_wts_messages.dir/bench_wts_messages.cc.o"
  "CMakeFiles/bench_wts_messages.dir/bench_wts_messages.cc.o.d"
  "bench_wts_messages"
  "bench_wts_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wts_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
