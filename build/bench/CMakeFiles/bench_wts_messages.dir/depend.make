# Empty dependencies file for bench_wts_messages.
# This may be replaced when dependencies are built.
