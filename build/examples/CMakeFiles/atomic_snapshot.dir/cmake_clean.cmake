file(REMOVE_RECURSE
  "CMakeFiles/atomic_snapshot.dir/atomic_snapshot.cpp.o"
  "CMakeFiles/atomic_snapshot.dir/atomic_snapshot.cpp.o.d"
  "atomic_snapshot"
  "atomic_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomic_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
