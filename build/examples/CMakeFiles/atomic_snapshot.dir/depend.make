# Empty dependencies file for atomic_snapshot.
# This may be replaced when dependencies are built.
