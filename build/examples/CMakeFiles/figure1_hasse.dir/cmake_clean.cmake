file(REMOVE_RECURSE
  "CMakeFiles/figure1_hasse.dir/figure1_hasse.cpp.o"
  "CMakeFiles/figure1_hasse.dir/figure1_hasse.cpp.o.d"
  "figure1_hasse"
  "figure1_hasse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_hasse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
