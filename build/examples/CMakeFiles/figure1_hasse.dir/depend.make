# Empty dependencies file for figure1_hasse.
# This may be replaced when dependencies are built.
