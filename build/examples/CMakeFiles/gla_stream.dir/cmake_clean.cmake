file(REMOVE_RECURSE
  "CMakeFiles/gla_stream.dir/gla_stream.cpp.o"
  "CMakeFiles/gla_stream.dir/gla_stream.cpp.o.d"
  "gla_stream"
  "gla_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gla_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
