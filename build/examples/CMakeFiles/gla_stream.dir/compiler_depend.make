# Empty compiler generated dependencies file for gla_stream.
# This may be replaced when dependencies are built.
