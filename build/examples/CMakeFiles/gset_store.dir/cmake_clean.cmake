file(REMOVE_RECURSE
  "CMakeFiles/gset_store.dir/gset_store.cpp.o"
  "CMakeFiles/gset_store.dir/gset_store.cpp.o.d"
  "gset_store"
  "gset_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gset_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
