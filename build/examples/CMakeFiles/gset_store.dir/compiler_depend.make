# Empty compiler generated dependencies file for gset_store.
# This may be replaced when dependencies are built.
