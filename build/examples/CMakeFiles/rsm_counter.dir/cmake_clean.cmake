file(REMOVE_RECURSE
  "CMakeFiles/rsm_counter.dir/rsm_counter.cpp.o"
  "CMakeFiles/rsm_counter.dir/rsm_counter.cpp.o.d"
  "rsm_counter"
  "rsm_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsm_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
