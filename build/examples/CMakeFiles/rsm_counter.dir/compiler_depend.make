# Empty compiler generated dependencies file for rsm_counter.
# This may be replaced when dependencies are built.
