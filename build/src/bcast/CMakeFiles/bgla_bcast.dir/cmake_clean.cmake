file(REMOVE_RECURSE
  "CMakeFiles/bgla_bcast.dir/bracha.cc.o"
  "CMakeFiles/bgla_bcast.dir/bracha.cc.o.d"
  "CMakeFiles/bgla_bcast.dir/cert_rb.cc.o"
  "CMakeFiles/bgla_bcast.dir/cert_rb.cc.o.d"
  "libbgla_bcast.a"
  "libbgla_bcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgla_bcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
