file(REMOVE_RECURSE
  "libbgla_bcast.a"
)
