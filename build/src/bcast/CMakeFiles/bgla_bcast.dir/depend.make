# Empty dependencies file for bgla_bcast.
# This may be replaced when dependencies are built.
