file(REMOVE_RECURSE
  "CMakeFiles/bgla_byz.dir/strategies.cc.o"
  "CMakeFiles/bgla_byz.dir/strategies.cc.o.d"
  "libbgla_byz.a"
  "libbgla_byz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgla_byz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
