file(REMOVE_RECURSE
  "libbgla_byz.a"
)
