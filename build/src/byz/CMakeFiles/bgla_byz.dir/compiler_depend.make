# Empty compiler generated dependencies file for bgla_byz.
# This may be replaced when dependencies are built.
