file(REMOVE_RECURSE
  "CMakeFiles/bgla_crypto.dir/hmac.cc.o"
  "CMakeFiles/bgla_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/bgla_crypto.dir/sha256.cc.o"
  "CMakeFiles/bgla_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/bgla_crypto.dir/signature.cc.o"
  "CMakeFiles/bgla_crypto.dir/signature.cc.o.d"
  "libbgla_crypto.a"
  "libbgla_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgla_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
