file(REMOVE_RECURSE
  "libbgla_crypto.a"
)
