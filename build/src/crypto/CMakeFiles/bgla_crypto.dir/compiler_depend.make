# Empty compiler generated dependencies file for bgla_crypto.
# This may be replaced when dependencies are built.
