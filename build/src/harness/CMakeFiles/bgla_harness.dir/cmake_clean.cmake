file(REMOVE_RECURSE
  "CMakeFiles/bgla_harness.dir/scenario.cc.o"
  "CMakeFiles/bgla_harness.dir/scenario.cc.o.d"
  "libbgla_harness.a"
  "libbgla_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgla_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
