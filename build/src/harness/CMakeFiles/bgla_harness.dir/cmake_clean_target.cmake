file(REMOVE_RECURSE
  "libbgla_harness.a"
)
