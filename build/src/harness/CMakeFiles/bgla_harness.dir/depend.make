# Empty dependencies file for bgla_harness.
# This may be replaced when dependencies are built.
