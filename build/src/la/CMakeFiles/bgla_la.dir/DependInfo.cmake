
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/faleiro_la.cc" "src/la/CMakeFiles/bgla_la.dir/faleiro_la.cc.o" "gcc" "src/la/CMakeFiles/bgla_la.dir/faleiro_la.cc.o.d"
  "/root/repo/src/la/gsbs.cc" "src/la/CMakeFiles/bgla_la.dir/gsbs.cc.o" "gcc" "src/la/CMakeFiles/bgla_la.dir/gsbs.cc.o.d"
  "/root/repo/src/la/gsbs_msgs.cc" "src/la/CMakeFiles/bgla_la.dir/gsbs_msgs.cc.o" "gcc" "src/la/CMakeFiles/bgla_la.dir/gsbs_msgs.cc.o.d"
  "/root/repo/src/la/gwts.cc" "src/la/CMakeFiles/bgla_la.dir/gwts.cc.o" "gcc" "src/la/CMakeFiles/bgla_la.dir/gwts.cc.o.d"
  "/root/repo/src/la/sbs.cc" "src/la/CMakeFiles/bgla_la.dir/sbs.cc.o" "gcc" "src/la/CMakeFiles/bgla_la.dir/sbs.cc.o.d"
  "/root/repo/src/la/sbs_msgs.cc" "src/la/CMakeFiles/bgla_la.dir/sbs_msgs.cc.o" "gcc" "src/la/CMakeFiles/bgla_la.dir/sbs_msgs.cc.o.d"
  "/root/repo/src/la/signed_value.cc" "src/la/CMakeFiles/bgla_la.dir/signed_value.cc.o" "gcc" "src/la/CMakeFiles/bgla_la.dir/signed_value.cc.o.d"
  "/root/repo/src/la/spec.cc" "src/la/CMakeFiles/bgla_la.dir/spec.cc.o" "gcc" "src/la/CMakeFiles/bgla_la.dir/spec.cc.o.d"
  "/root/repo/src/la/wts.cc" "src/la/CMakeFiles/bgla_la.dir/wts.cc.o" "gcc" "src/la/CMakeFiles/bgla_la.dir/wts.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bcast/CMakeFiles/bgla_bcast.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/bgla_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bgla_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bgla_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bgla_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
