file(REMOVE_RECURSE
  "CMakeFiles/bgla_la.dir/faleiro_la.cc.o"
  "CMakeFiles/bgla_la.dir/faleiro_la.cc.o.d"
  "CMakeFiles/bgla_la.dir/gsbs.cc.o"
  "CMakeFiles/bgla_la.dir/gsbs.cc.o.d"
  "CMakeFiles/bgla_la.dir/gsbs_msgs.cc.o"
  "CMakeFiles/bgla_la.dir/gsbs_msgs.cc.o.d"
  "CMakeFiles/bgla_la.dir/gwts.cc.o"
  "CMakeFiles/bgla_la.dir/gwts.cc.o.d"
  "CMakeFiles/bgla_la.dir/sbs.cc.o"
  "CMakeFiles/bgla_la.dir/sbs.cc.o.d"
  "CMakeFiles/bgla_la.dir/sbs_msgs.cc.o"
  "CMakeFiles/bgla_la.dir/sbs_msgs.cc.o.d"
  "CMakeFiles/bgla_la.dir/signed_value.cc.o"
  "CMakeFiles/bgla_la.dir/signed_value.cc.o.d"
  "CMakeFiles/bgla_la.dir/spec.cc.o"
  "CMakeFiles/bgla_la.dir/spec.cc.o.d"
  "CMakeFiles/bgla_la.dir/wts.cc.o"
  "CMakeFiles/bgla_la.dir/wts.cc.o.d"
  "libbgla_la.a"
  "libbgla_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgla_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
