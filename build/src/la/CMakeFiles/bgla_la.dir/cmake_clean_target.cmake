file(REMOVE_RECURSE
  "libbgla_la.a"
)
