# Empty dependencies file for bgla_la.
# This may be replaced when dependencies are built.
