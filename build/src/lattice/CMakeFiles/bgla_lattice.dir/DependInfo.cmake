
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lattice/chain.cc" "src/lattice/CMakeFiles/bgla_lattice.dir/chain.cc.o" "gcc" "src/lattice/CMakeFiles/bgla_lattice.dir/chain.cc.o.d"
  "/root/repo/src/lattice/crdt.cc" "src/lattice/CMakeFiles/bgla_lattice.dir/crdt.cc.o" "gcc" "src/lattice/CMakeFiles/bgla_lattice.dir/crdt.cc.o.d"
  "/root/repo/src/lattice/elem.cc" "src/lattice/CMakeFiles/bgla_lattice.dir/elem.cc.o" "gcc" "src/lattice/CMakeFiles/bgla_lattice.dir/elem.cc.o.d"
  "/root/repo/src/lattice/maxint_elem.cc" "src/lattice/CMakeFiles/bgla_lattice.dir/maxint_elem.cc.o" "gcc" "src/lattice/CMakeFiles/bgla_lattice.dir/maxint_elem.cc.o.d"
  "/root/repo/src/lattice/set_elem.cc" "src/lattice/CMakeFiles/bgla_lattice.dir/set_elem.cc.o" "gcc" "src/lattice/CMakeFiles/bgla_lattice.dir/set_elem.cc.o.d"
  "/root/repo/src/lattice/vclock_elem.cc" "src/lattice/CMakeFiles/bgla_lattice.dir/vclock_elem.cc.o" "gcc" "src/lattice/CMakeFiles/bgla_lattice.dir/vclock_elem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bgla_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bgla_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
