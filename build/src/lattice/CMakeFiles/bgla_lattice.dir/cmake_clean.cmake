file(REMOVE_RECURSE
  "CMakeFiles/bgla_lattice.dir/chain.cc.o"
  "CMakeFiles/bgla_lattice.dir/chain.cc.o.d"
  "CMakeFiles/bgla_lattice.dir/crdt.cc.o"
  "CMakeFiles/bgla_lattice.dir/crdt.cc.o.d"
  "CMakeFiles/bgla_lattice.dir/elem.cc.o"
  "CMakeFiles/bgla_lattice.dir/elem.cc.o.d"
  "CMakeFiles/bgla_lattice.dir/maxint_elem.cc.o"
  "CMakeFiles/bgla_lattice.dir/maxint_elem.cc.o.d"
  "CMakeFiles/bgla_lattice.dir/set_elem.cc.o"
  "CMakeFiles/bgla_lattice.dir/set_elem.cc.o.d"
  "CMakeFiles/bgla_lattice.dir/vclock_elem.cc.o"
  "CMakeFiles/bgla_lattice.dir/vclock_elem.cc.o.d"
  "libbgla_lattice.a"
  "libbgla_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgla_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
