file(REMOVE_RECURSE
  "libbgla_lattice.a"
)
