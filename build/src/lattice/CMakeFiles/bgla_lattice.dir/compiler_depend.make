# Empty compiler generated dependencies file for bgla_lattice.
# This may be replaced when dependencies are built.
