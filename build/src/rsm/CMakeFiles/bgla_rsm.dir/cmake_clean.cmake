file(REMOVE_RECURSE
  "CMakeFiles/bgla_rsm.dir/client.cc.o"
  "CMakeFiles/bgla_rsm.dir/client.cc.o.d"
  "CMakeFiles/bgla_rsm.dir/history.cc.o"
  "CMakeFiles/bgla_rsm.dir/history.cc.o.d"
  "CMakeFiles/bgla_rsm.dir/linearize.cc.o"
  "CMakeFiles/bgla_rsm.dir/linearize.cc.o.d"
  "CMakeFiles/bgla_rsm.dir/replica.cc.o"
  "CMakeFiles/bgla_rsm.dir/replica.cc.o.d"
  "libbgla_rsm.a"
  "libbgla_rsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgla_rsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
