file(REMOVE_RECURSE
  "libbgla_rsm.a"
)
