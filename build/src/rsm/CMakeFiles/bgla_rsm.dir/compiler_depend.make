# Empty compiler generated dependencies file for bgla_rsm.
# This may be replaced when dependencies are built.
