file(REMOVE_RECURSE
  "CMakeFiles/bgla_sim.dir/message.cc.o"
  "CMakeFiles/bgla_sim.dir/message.cc.o.d"
  "CMakeFiles/bgla_sim.dir/network.cc.o"
  "CMakeFiles/bgla_sim.dir/network.cc.o.d"
  "libbgla_sim.a"
  "libbgla_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgla_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
