file(REMOVE_RECURSE
  "libbgla_sim.a"
)
