# Empty compiler generated dependencies file for bgla_sim.
# This may be replaced when dependencies are built.
