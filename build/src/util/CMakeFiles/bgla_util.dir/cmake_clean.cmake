file(REMOVE_RECURSE
  "CMakeFiles/bgla_util.dir/bytes.cc.o"
  "CMakeFiles/bgla_util.dir/bytes.cc.o.d"
  "CMakeFiles/bgla_util.dir/codec.cc.o"
  "CMakeFiles/bgla_util.dir/codec.cc.o.d"
  "libbgla_util.a"
  "libbgla_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgla_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
