file(REMOVE_RECURSE
  "libbgla_util.a"
)
