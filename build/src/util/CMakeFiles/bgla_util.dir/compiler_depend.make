# Empty compiler generated dependencies file for bgla_util.
# This may be replaced when dependencies are built.
