file(REMOVE_RECURSE
  "CMakeFiles/bracha_test.dir/bracha_test.cc.o"
  "CMakeFiles/bracha_test.dir/bracha_test.cc.o.d"
  "bracha_test"
  "bracha_test.pdb"
  "bracha_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bracha_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
