file(REMOVE_RECURSE
  "CMakeFiles/cert_rb_test.dir/cert_rb_test.cc.o"
  "CMakeFiles/cert_rb_test.dir/cert_rb_test.cc.o.d"
  "cert_rb_test"
  "cert_rb_test.pdb"
  "cert_rb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cert_rb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
