# Empty compiler generated dependencies file for cert_rb_test.
# This may be replaced when dependencies are built.
