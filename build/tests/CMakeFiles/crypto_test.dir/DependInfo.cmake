
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto_test.cc" "tests/CMakeFiles/crypto_test.dir/crypto_test.cc.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/bgla_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/bgla_la.dir/DependInfo.cmake"
  "/root/repo/build/src/byz/CMakeFiles/bgla_byz.dir/DependInfo.cmake"
  "/root/repo/build/src/bcast/CMakeFiles/bgla_bcast.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/bgla_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bgla_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bgla_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bgla_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rsm/CMakeFiles/bgla_rsm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
