file(REMOVE_RECURSE
  "CMakeFiles/datatypes_test.dir/datatypes_test.cc.o"
  "CMakeFiles/datatypes_test.dir/datatypes_test.cc.o.d"
  "datatypes_test"
  "datatypes_test.pdb"
  "datatypes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datatypes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
