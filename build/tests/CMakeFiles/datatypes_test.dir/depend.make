# Empty dependencies file for datatypes_test.
# This may be replaced when dependencies are built.
