file(REMOVE_RECURSE
  "CMakeFiles/faleiro_test.dir/faleiro_test.cc.o"
  "CMakeFiles/faleiro_test.dir/faleiro_test.cc.o.d"
  "faleiro_test"
  "faleiro_test.pdb"
  "faleiro_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faleiro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
