# Empty dependencies file for faleiro_test.
# This may be replaced when dependencies are built.
