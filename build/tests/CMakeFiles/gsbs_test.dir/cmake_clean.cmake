file(REMOVE_RECURSE
  "CMakeFiles/gsbs_test.dir/gsbs_test.cc.o"
  "CMakeFiles/gsbs_test.dir/gsbs_test.cc.o.d"
  "gsbs_test"
  "gsbs_test.pdb"
  "gsbs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
