# Empty compiler generated dependencies file for gsbs_test.
# This may be replaced when dependencies are built.
