file(REMOVE_RECURSE
  "CMakeFiles/gwts_test.dir/gwts_test.cc.o"
  "CMakeFiles/gwts_test.dir/gwts_test.cc.o.d"
  "gwts_test"
  "gwts_test.pdb"
  "gwts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gwts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
