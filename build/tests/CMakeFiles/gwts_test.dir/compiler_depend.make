# Empty compiler generated dependencies file for gwts_test.
# This may be replaced when dependencies are built.
