# Empty dependencies file for rsm_test.
# This may be replaced when dependencies are built.
