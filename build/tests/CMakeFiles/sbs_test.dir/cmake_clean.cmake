file(REMOVE_RECURSE
  "CMakeFiles/sbs_test.dir/sbs_test.cc.o"
  "CMakeFiles/sbs_test.dir/sbs_test.cc.o.d"
  "sbs_test"
  "sbs_test.pdb"
  "sbs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
