# Empty compiler generated dependencies file for sbs_test.
# This may be replaced when dependencies are built.
