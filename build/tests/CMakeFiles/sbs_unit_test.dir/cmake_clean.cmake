file(REMOVE_RECURSE
  "CMakeFiles/sbs_unit_test.dir/sbs_unit_test.cc.o"
  "CMakeFiles/sbs_unit_test.dir/sbs_unit_test.cc.o.d"
  "sbs_unit_test"
  "sbs_unit_test.pdb"
  "sbs_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbs_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
