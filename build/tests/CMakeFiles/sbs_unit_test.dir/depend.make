# Empty dependencies file for sbs_unit_test.
# This may be replaced when dependencies are built.
