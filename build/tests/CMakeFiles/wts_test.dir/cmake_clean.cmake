file(REMOVE_RECURSE
  "CMakeFiles/wts_test.dir/wts_test.cc.o"
  "CMakeFiles/wts_test.dir/wts_test.cc.o.d"
  "wts_test"
  "wts_test.pdb"
  "wts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
