# Empty compiler generated dependencies file for wts_test.
# This may be replaced when dependencies are built.
