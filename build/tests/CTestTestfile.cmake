# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/lattice_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/bracha_test[1]_include.cmake")
include("/root/repo/build/tests/wts_test[1]_include.cmake")
include("/root/repo/build/tests/gwts_test[1]_include.cmake")
include("/root/repo/build/tests/sbs_test[1]_include.cmake")
include("/root/repo/build/tests/gsbs_test[1]_include.cmake")
include("/root/repo/build/tests/faleiro_test[1]_include.cmake")
include("/root/repo/build/tests/spec_test[1]_include.cmake")
include("/root/repo/build/tests/rsm_test[1]_include.cmake")
include("/root/repo/build/tests/messages_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/chaos_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_unit_test[1]_include.cmake")
include("/root/repo/build/tests/datatypes_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/sbs_unit_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/cert_rb_test[1]_include.cmake")
include("/root/repo/build/tests/golden_test[1]_include.cmake")
