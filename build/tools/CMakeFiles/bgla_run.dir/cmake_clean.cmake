file(REMOVE_RECURSE
  "CMakeFiles/bgla_run.dir/bgla_run.cc.o"
  "CMakeFiles/bgla_run.dir/bgla_run.cc.o.d"
  "bgla_run"
  "bgla_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgla_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
