# Empty dependencies file for bgla_run.
# This may be replaced when dependencies are built.
