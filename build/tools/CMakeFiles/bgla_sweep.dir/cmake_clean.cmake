file(REMOVE_RECURSE
  "CMakeFiles/bgla_sweep.dir/bgla_sweep.cc.o"
  "CMakeFiles/bgla_sweep.dir/bgla_sweep.cc.o.d"
  "bgla_sweep"
  "bgla_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgla_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
