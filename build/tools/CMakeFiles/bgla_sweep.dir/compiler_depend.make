# Empty compiler generated dependencies file for bgla_sweep.
# This may be replaced when dependencies are built.
