// Atomic snapshots from Lattice Agreement — the problem LA was invented
// for (Attiya, Herlihy, Rachman; paper §1/§2: "implementing a snapshot
// object is equivalent to solving the Lattice Agreement problem") — here
// in the Byzantine model.
//
// Each process owns a single-writer register it updates over time; a scan
// must return a consistent global snapshot: one register value per
// process, such that all scans are totally ordered. We run GWTS on the
// vector-clock-flavoured set lattice whose items are (writer, seqno,
// value): a decision is a set of register writes, the snapshot keeps each
// writer's highest seqno, and Comparability of decisions makes all scans
// mutually consistent — even with a Byzantine process in the group.
//
//   $ ./examples/atomic_snapshot
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "byz/strategies.h"
#include "la/gwts.h"
#include "lattice/chain.h"
#include "lattice/set_elem.h"
#include "sim/network.h"

using namespace bgla;
using lattice::Elem;
using lattice::Item;
using lattice::make_set;

namespace {

/// Snapshot view: writer → (latest seqno, value).
std::map<ProcessId, std::pair<std::uint64_t, std::uint64_t>> snapshot_of(
    const Elem& decision) {
  std::map<ProcessId, std::pair<std::uint64_t, std::uint64_t>> snap;
  for (const Item& it : lattice::set_items(decision)) {
    auto& slot = snap[static_cast<ProcessId>(it.a)];
    if (it.b >= slot.first) slot = {it.b, it.c};
  }
  return snap;
}

std::string render(const std::map<ProcessId,
                                  std::pair<std::uint64_t,
                                            std::uint64_t>>& snap,
                   std::uint32_t writers) {
  std::string out = "[";
  for (ProcessId w = 0; w < writers; ++w) {
    const auto it = snap.find(w);
    out += (w == 0 ? "" : " ");
    out += "r" + std::to_string(w) + "=";
    out += it == snap.end() ? "-" : std::to_string(it->second.second);
  }
  out += "]";
  return out;
}

}  // namespace

int main() {
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;

  sim::Network net(std::make_unique<sim::UniformDelay>(1, 12), /*seed=*/6,
                   cfg.n);
  std::vector<std::unique_ptr<la::GwtsProcess>> procs;
  for (ProcessId id = 0; id < 3; ++id) {
    procs.push_back(std::make_unique<la::GwtsProcess>(net, id, cfg));
  }
  byz::MuteProcess byzantine(net, 3);

  // Narrate scans (= decisions) as they happen.
  std::vector<Elem> all_scans;
  for (auto& p : procs) {
    p->set_decide_hook([&](const la::GwtsProcess& gp,
                           const la::DecisionRecord& rec) {
      if (rec.value.weight() > 0) {
        std::cout << "t=" << std::setw(4) << rec.time << "  p" << gp.id()
                  << " scans  " << render(snapshot_of(rec.value), 3)
                  << "\n";
        all_scans.push_back(rec.value);
      }
      bool done = true;
      for (auto& q : procs) {
        done = done && q->decisions().size() >= 8;
      }
      if (done) net.request_stop();
    });
  }

  // Register writes over time: update(writer, seq, value).
  struct Write {
    ProcessId writer;
    std::uint64_t seq, value;
    sim::Time at;
  };
  const std::vector<Write> writes = {
      {0, 1, 11, 20},  {1, 1, 21, 35},  {2, 1, 31, 50},
      {0, 2, 12, 90},  {1, 2, 22, 120}, {2, 2, 32, 150},
      {0, 3, 13, 200},
  };
  for (const Write& w : writes) {
    net.inject(w.writer, w.writer,
               std::make_shared<la::SubmitMsg>(
                   make_set({Item{w.writer, w.seq, w.value}})),
               w.at);
  }

  net.run(10'000'000);

  std::cout << "\nall " << all_scans.size()
            << " scans across all processes are totally ordered: "
            << (lattice::is_chain(all_scans) ? "yes" : "NO") << "\n";
  std::cout << "final snapshot everywhere: "
            << render(snapshot_of(procs[0]->decisions().back().value), 3)
            << "\n";
  return lattice::is_chain(all_scans) ? 0 : 1;
}
