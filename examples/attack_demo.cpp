// Why Byzantine quorums + reliable disclosure matter (Theorem 1 made
// concrete): the same lying-acceptor attack is run against
//   (a) the crash-stop PODC'12 protocol at n = 3 (majority quorum 2), and
//   (b) WTS at n = 4 = 3f+1 (Byzantine quorum 3).
// Under an adversarial schedule that delays the two honest processes'
// traffic to each other, (a) decides two incomparable values — a real
// safety violation — while (b) keeps every property.
//
//   $ ./examples/attack_demo
#include <iostream>

#include "harness/scenario.h"

using namespace bgla;

int main() {
  std::cout << "attack: a Byzantine acceptor answers every proposal with "
               "an instant ack,\nwhile the schedule delays honest-to-"
               "honest links 200x.\n\n";

  // (a) crash-stop baseline, n = 3, quorum 2: the lying acker forms a
  // quorum with each proposer separately.
  harness::FaleiroScenario fsc;
  fsc.n = 3;
  fsc.f = 1;
  fsc.byz_lying_acker = true;
  fsc.sched = harness::Sched::kTargeted;
  fsc.seed = 1;
  const auto base = harness::run_faleiro(fsc);

  std::cout << "[crash-stop GLA, n=3, majority quorum]\n";
  std::cout << "  comparability: "
            << (base.spec.comparability ? "held" : "VIOLATED") << "\n";
  if (!base.spec.comparability) {
    std::cout << "  diagnostic:    " << base.spec.diagnostic << "\n";
  }

  // (b) WTS, n = 4 = 3f+1: quorums of size 3 intersect in a correct
  // process, and disclosure is reliably broadcast.
  harness::WtsScenario wsc;
  wsc.n = 4;
  wsc.f = 1;
  wsc.adversary = harness::Adversary::kLyingAcker;
  wsc.sched = harness::Sched::kTargeted;
  wsc.seed = 1;
  const auto wts = harness::run_wts(wsc);

  std::cout << "\n[WTS, n=4=3f+1, Byzantine quorum]\n";
  std::cout << "  liveness:      " << (wts.spec.liveness ? "held" : "LOST")
            << "\n";
  std::cout << "  comparability: "
            << (wts.spec.comparability ? "held" : "VIOLATED") << "\n";
  std::cout << "  inclusivity:   "
            << (wts.spec.inclusivity ? "held" : "VIOLATED") << "\n";
  std::cout << "  non-triviality:"
            << (wts.spec.non_triviality ? " held" : " VIOLATED") << "\n";

  const bool demo_ok = !base.spec.comparability && wts.spec.ok();
  std::cout << "\n"
            << (demo_ok
                    ? "=> exactly the Theorem 1 picture: below 3f+1 (or "
                      "without Byzantine\n   quorums) safety is forfeit; "
                      "at 3f+1, WTS holds."
                    : "=> UNEXPECTED: see diagnostics above.")
            << "\n";
  return demo_ok ? 0 : 1;
}
