// Figure 1 of the paper, regenerated: the Hasse diagram of the powerset
// of {1,2,3,4} under set union, and — highlighted — the chain selected by
// an actual Lattice Agreement run in which four processes propose the
// singletons {1}, {2}, {3}, {4} (f = 1, one process mute).
//
//   $ ./examples/figure1_hasse
#include <algorithm>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "la/wts.h"
#include "lattice/chain.h"
#include "lattice/set_elem.h"
#include "sim/network.h"

using namespace bgla;
using lattice::Elem;
using lattice::Item;
using lattice::make_set;

namespace {

std::string label(const std::set<int>& s) {
  std::string out = "{";
  bool first = true;
  for (int x : s) {
    if (!first) out += ",";
    first = false;
    out += std::to_string(x);
  }
  out += "}";
  return out;
}

std::set<int> to_small(const Elem& e) {
  std::set<int> out;
  for (const Item& it : lattice::set_items(e)) {
    out.insert(static_cast<int>(it.a));
  }
  return out;
}

}  // namespace

int main() {
  // ---- run Lattice Agreement over the powerset lattice of {1,2,3,4} ----
  // Scan seeds for a run whose decisions form a chain with at least two
  // distinct elements (decisions are often identical; distinct ones make
  // the figure's red chain visible).
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  // All four processes are correct here (the protocol still tolerates
  // f = 1): with the n−f = 3 disclosure threshold a fast proposer can
  // commit a 3-element subset while a slower one decides the full set —
  // which is precisely the non-trivial chain Figure 1 highlights.
  std::vector<Elem> decisions;
  for (std::uint64_t seed = 1; seed < 200; ++seed) {
    sim::Network net(std::make_unique<sim::JitterDelay>(3, 60, 0.2), seed,
                     cfg.n);
    std::vector<std::unique_ptr<la::WtsProcess>> procs;
    for (ProcessId id = 0; id < 4; ++id) {
      procs.push_back(std::make_unique<la::WtsProcess>(
          net, id, cfg, make_set({Item{id + 1ull, 0, 0}})));
    }
    net.run();

    decisions.clear();
    for (const auto& p : procs) decisions.push_back(p->decision().value);
    decisions = lattice::sort_chain(decisions);
    if (!(decisions.front() == decisions.back())) break;  // distinct chain
  }

  std::set<std::set<int>> chain;  // decided values, as small sets
  for (const Elem& d : decisions) chain.insert(to_small(d));

  // ---- render the Hasse diagram level by level (set cardinality) ----
  std::cout << "Hasse diagram of (2^{1,2,3,4}, ∪); decided chain marked "
               "with *  (paper Figure 1):\n\n";
  std::vector<int> base = {1, 2, 3, 4};
  for (int size = 4; size >= 0; --size) {
    std::vector<std::string> row;
    for (int mask = 0; mask < 16; ++mask) {
      if (__builtin_popcount(static_cast<unsigned>(mask)) != size) continue;
      std::set<int> s;
      for (int b = 0; b < 4; ++b) {
        if (mask & (1 << b)) s.insert(base[static_cast<std::size_t>(b)]);
      }
      row.push_back((chain.count(s) ? "*" : " ") + label(s));
    }
    std::sort(row.begin(), row.end(),
              [](const auto& a, const auto& b) { return a < b; });
    const std::size_t width = 76;
    std::size_t text = 0;
    for (const auto& cell : row) text += cell.size() + 2;
    const std::size_t pad = text < width ? (width - text) / 2 : 0;
    std::cout << std::string(pad, ' ');
    for (const auto& cell : row) std::cout << cell << "  ";
    std::cout << "\n\n";
  }

  std::cout << "decided chain (bottom to top):\n";
  for (const Elem& d : decisions) {
    std::cout << "  " << label(to_small(d)) << "\n";
  }

  const bool ok = lattice::is_chain(decisions);
  std::cout << "\nchain property: " << (ok ? "holds" : "VIOLATED") << "\n";
  std::cout << "reads along this chain see 'growing' consistent snapshots "
               "— e.g. someone who\nreads " << label(to_small(decisions[0]))
            << " can later read " << label(to_small(decisions.back()))
            << ", never a sibling set.\n";
  return ok ? 0 : 1;
}
