// Generalized Lattice Agreement as a stream (§6): values arrive at every
// process over time, GWTS batches them into rounds, and each process emits
// an ever-growing chain of decisions. One Byzantine "round rusher" tries
// to drag acceptors into rounds that never legitimately ended — the Safe_r
// gate holds it back.
//
//   $ ./examples/gla_stream
#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "byz/strategies.h"
#include "la/gwts.h"
#include "lattice/set_elem.h"
#include "sim/network.h"

using namespace bgla;
using lattice::Item;
using lattice::make_set;

int main() {
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;

  sim::Network net(std::make_unique<sim::UniformDelay>(1, 12), /*seed=*/3,
                   cfg.n);

  std::vector<std::unique_ptr<la::GwtsProcess>> correct;
  for (ProcessId id = 0; id < 3; ++id) {
    correct.push_back(std::make_unique<la::GwtsProcess>(net, id, cfg));
  }
  byz::GwtsRoundRusher rusher(net, 3, cfg, /*rounds_ahead=*/8,
                              make_set({Item{3, 666, 0}}));

  // Narrate decisions as they happen.
  for (auto& p : correct) {
    p->set_decide_hook([&](const la::GwtsProcess& gp,
                           const la::DecisionRecord& rec) {
      std::cout << "t=" << std::setw(5) << rec.time << "  p" << gp.id()
                << " decides round " << rec.round << ": |state|="
                << rec.value.weight() << "  " << rec.value.to_string()
                << "\n";
      bool all_done = true;
      for (auto& q : correct) {
        all_done = all_done && q->decisions().size() >= 5;
      }
      if (all_done) net.request_stop();
    });
  }

  // Stream of inputs: each process receives three values over time.
  for (ProcessId id = 0; id < 3; ++id) {
    for (std::uint64_t k = 1; k <= 3; ++k) {
      net.inject(id, id,
                 std::make_shared<la::SubmitMsg>(
                     make_set({Item{id, k, 0}})),
                 /*at=*/40 * k + 7 * id);
    }
  }

  net.run(10'000'000);

  std::cout << "\nfinal states:\n";
  for (auto& p : correct) {
    std::cout << "  p" << p->id() << ": " << p->decisions().size()
              << " decisions, last = "
              << p->decisions().back().value.to_string()
              << " (round " << p->round() << ", trusted Safe_r = "
              << p->safe_round() << ")\n";
  }
  std::cout << "\nthe rusher's premature rounds were never trusted ahead "
               "of legitimate ends;\nits value (3,666) may legitimately "
               "appear (Byzantine values are allowed in\ndecisions — that "
               "is the specification choice of this paper vs [7]).\n";
  return 0;
}
