// A replicated grow-only set store (second CRDT of the paper's intro):
// clients add elements and run membership reads against a 7-replica RSM
// tolerating f = 2 Byzantine replicas — here two fake-decider replicas
// are actually present. Shows the typed data-type layer (rsm/datatypes.h)
// over the raw command-set state machine.
//
//   $ ./examples/gset_store
#include <iostream>
#include <memory>
#include <vector>

#include "rsm/byz_rsm.h"
#include "rsm/client.h"
#include "rsm/datatypes.h"
#include "rsm/replica.h"
#include "sim/network.h"

using namespace bgla;

int main() {
  la::LaConfig cfg;
  cfg.n = 7;
  cfg.f = 2;

  constexpr std::uint32_t kClients = 2;
  sim::Network net(std::make_unique<sim::UniformDelay>(1, 10), /*seed=*/4,
                   cfg.n + kClients);

  std::vector<std::unique_ptr<rsm::Replica>> replicas;
  for (ProcessId id = 0; id < 5; ++id) {
    replicas.push_back(std::make_unique<rsm::Replica>(
        net, id, cfg, /*client_base=*/cfg.n, kClients));
  }
  // Two Byzantine replicas fabricate decisions and confirmations.
  rsm::FakeDeciderReplica byz1(net, 5, cfg.n, kClients);
  rsm::FakeDeciderReplica byz2(net, 6, cfg.n, kClients);

  // Typed workloads.
  const auto alice_script =
      rsm::GSetWorkload().add(42).read().add(7).read().script();
  const auto bob_script =
      rsm::GSetWorkload().add(1000).read().read().script();

  std::vector<std::unique_ptr<rsm::Client>> clients;
  clients.push_back(std::make_unique<rsm::Client>(net, cfg.n + 0, cfg.n,
                                                  cfg.f, alice_script));
  clients.push_back(std::make_unique<rsm::Client>(net, cfg.n + 1, cfg.n,
                                                  cfg.f, bob_script));

  for (auto& c : clients) {
    c->set_op_hook([&](const rsm::Client&, const rsm::OpRecord&) {
      for (auto& q : clients) {
        if (!q->done()) return;
      }
      net.request_stop();
    });
  }
  net.run(40'000'000);

  const char* names[] = {"alice", "bob"};
  std::vector<std::vector<rsm::OpRecord>> histories;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    std::cout << names[c] << ":\n";
    for (const auto& rec : clients[c]->history()) {
      if (rec.op.kind == rsm::Op::Kind::kUpdate) {
        std::cout << "  add(" << rec.op.operand << ")\n";
      } else {
        std::cout << "  read() = {";
        bool first = true;
        for (std::uint64_t v : rsm::GSetWorkload::elements_of(rec)) {
          std::cout << (first ? "" : ", ") << v;
          first = false;
        }
        std::cout << "}\n";
      }
    }
    histories.push_back(clients[c]->history());
  }

  const auto check = rsm::check_history(histories);
  std::cout << "\nmembership after completion: 42 ∈ store: "
            << (rsm::GSetWorkload::contains(
                    clients[0]->history().back(), 42)
                    ? "yes"
                    : "no")
            << ", 1000 ∈ store: "
            << (rsm::GSetWorkload::contains(
                    clients[0]->history().back(), 1000)
                    ? "yes"
                    : "no")
            << "\n";
  std::cout << "§7.1 properties: "
            << (check.ok() ? "all hold" : check.diagnostic) << "\n";
  return check.ok() ? 0 : 1;
}
