// Quickstart: one-shot Byzantine Lattice Agreement in ~40 lines.
//
// Four processes (tolerating f = 1 Byzantine) each propose a singleton
// set; the fourth process is an *equivocator* that tries to disclose two
// different values to different halves of the group. Run the WTS protocol
// and print every correct decision — they form a chain, every correct
// proposal is included, and the equivocator's values are either absorbed
// consistently or excluded entirely.
//
//   $ ./examples/quickstart
#include <iostream>
#include <memory>
#include <vector>

#include "byz/strategies.h"
#include "la/spec.h"
#include "la/wts.h"
#include "lattice/chain.h"
#include "lattice/set_elem.h"
#include "sim/network.h"

using namespace bgla;
using lattice::Item;
using lattice::make_set;

int main() {
  la::LaConfig cfg;
  cfg.n = 4;  // replicas
  cfg.f = 1;  // tolerated Byzantine processes (n >= 3f+1)

  sim::Network net(std::make_unique<sim::UniformDelay>(1, 20), /*seed=*/7,
                   cfg.n);

  // Three correct processes propose {10}, {20}, {30}.
  std::vector<std::unique_ptr<la::WtsProcess>> correct;
  for (ProcessId id = 0; id < 3; ++id) {
    correct.push_back(std::make_unique<la::WtsProcess>(
        net, id, cfg, make_set({Item{10 * (id + 1), 0, 0}})));
  }
  // The fourth is Byzantine: it sends {77} to half the group and {88} to
  // the rest. Reliable broadcast forces a single consistent outcome.
  byz::WtsEquivocator byzantine(net, 3, cfg, make_set({Item{77, 0, 0}}),
                                make_set({Item{88, 0, 0}}));

  net.run();

  std::vector<lattice::Elem> decisions;
  for (const auto& p : correct) {
    std::cout << "process " << p->id() << " proposed "
              << p->proposal().to_string() << "  decided "
              << p->decision().value.to_string() << "  ("
              << p->decision().depth << " message delays)\n";
    decisions.push_back(p->decision().value);
  }

  std::cout << "\ndecisions form a chain: "
            << (lattice::is_chain(decisions) ? "yes" : "NO") << "\n";
  std::cout << "every proposal included:  ";
  bool incl = true;
  for (const auto& p : correct) {
    incl = incl && p->proposal().leq(p->decision().value);
  }
  std::cout << (incl ? "yes" : "NO") << "\n";
  return 0;
}
