// The paper's motivating application (§1, §7): a dependable grow-only
// counter — a replicated state machine with commutative add(x) updates and
// linearizable reads — running on GWTS, with one Byzantine replica that
// fabricates decision messages and one Byzantine client that hammers the
// system with malformed requests.
//
// Two honest clients interleave add() and read(); the reads print as a
// non-decreasing counter, every completed add is visible to later reads,
// and the fabricated junk never surfaces.
//
//   $ ./examples/rsm_counter
#include <iostream>
#include <memory>
#include <vector>

#include "rsm/byz_rsm.h"
#include "rsm/client.h"
#include "rsm/history.h"
#include "rsm/replica.h"
#include "sim/network.h"

using namespace bgla;

int main() {
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;

  constexpr std::uint32_t kClients = 3;  // 2 honest + 1 Byzantine
  sim::Network net(std::make_unique<sim::UniformDelay>(1, 15), /*seed=*/11,
                   cfg.n + kClients);

  // Replicas 0..2 are correct; replica 3 fabricates decisions/confirms.
  std::vector<std::unique_ptr<rsm::Replica>> replicas;
  for (ProcessId id = 0; id < 3; ++id) {
    replicas.push_back(std::make_unique<rsm::Replica>(
        net, id, cfg, /*client_base=*/cfg.n, kClients));
  }
  rsm::FakeDeciderReplica byz_replica(net, 3, cfg.n, kClients);

  // Honest clients: add / read interleavings.
  using rsm::Op;
  std::vector<std::unique_ptr<rsm::Client>> clients;
  clients.push_back(std::make_unique<rsm::Client>(
      net, cfg.n + 0, cfg.n, cfg.f,
      std::vector<Op>{Op::update(5), Op::read(), Op::update(10),
                      Op::read()}));
  clients.push_back(std::make_unique<rsm::Client>(
      net, cfg.n + 1, cfg.n, cfg.f,
      std::vector<Op>{Op::update(100), Op::read(), Op::read()}));
  // Byzantine client: malformed traffic (Lemma 12 says: harmless).
  rsm::ByzClient byz_client(net, cfg.n + 2, cfg.n, /*num_commands=*/6);

  // Stop the (infinite-round) protocol once both honest clients finish.
  for (auto& c : clients) {
    c->set_op_hook([&](const rsm::Client&, const rsm::OpRecord&) {
      for (auto& q : clients) {
        if (!q->done()) return;
      }
      net.request_stop();
    });
  }
  net.run(20'000'000);

  std::vector<std::vector<rsm::OpRecord>> histories;
  for (const auto& c : clients) {
    std::cout << "client " << c->id() << ":\n";
    for (const auto& rec : c->history()) {
      if (rec.op.kind == Op::Kind::kUpdate) {
        std::cout << "  add(" << rec.op.operand << ")   t=["
                  << rec.invoke_time << "," << rec.complete_time << "]\n";
      } else {
        std::uint64_t honest = 0;
        for (const auto& it : lattice::set_items(rec.read_value)) {
          if (!rsm::is_nop(it) && it.a < cfg.n + 2) honest += it.c;
        }
        std::cout << "  read() = " << rsm::counter_value(rec.read_value)
                  << " (honest adds: " << honest << ")   t=["
                  << rec.invoke_time << "," << rec.complete_time << "]  ("
                  << rec.read_value.weight()
                  << " commands incl. nops)\n";
      }
    }
    histories.push_back(c->history());
  }

  std::cout << "\nnote: the Byzantine client's (admissible) commands are "
               "allowed into decisions\n— that is this paper's spec "
               "choice vs [7]; the honest-adds column shows the\n"
               "contribution of the two honest clients only.\n";

  const auto check =
      rsm::check_history(histories, byz_client.possible_commands());
  std::cout << "\n§7.1 properties: "
            << (check.ok() ? "all hold" : check.diagnostic) << "\n";
  return check.ok() ? 0 : 1;
}
