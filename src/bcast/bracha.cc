#include "bcast/bracha.h"

#include <sstream>

#include "util/check.h"

namespace bgla::bcast {

namespace {
void encode_key_and_inner(Encoder& enc, const RbKey& key,
                          const sim::MessagePtr& inner) {
  enc.put_u32(key.origin);
  enc.put_u64(key.tag);
  enc.put_bytes(inner->encoded());
}

std::string describe(const char* verb, const RbKey& key,
                     const sim::MessagePtr& inner) {
  std::ostringstream os;
  os << verb << "(origin=" << key.origin << ",tag=" << key.tag << ","
     << inner->to_string() << ")";
  return os.str();
}
}  // namespace

void RbSendMsg::encode_payload(Encoder& enc) const {
  encode_key_and_inner(enc, key, inner);
}
std::string RbSendMsg::to_string() const {
  return describe("RB_SEND", key, inner);
}

void RbEchoMsg::encode_payload(Encoder& enc) const {
  encode_key_and_inner(enc, key, inner);
}
std::string RbEchoMsg::to_string() const {
  return describe("RB_ECHO", key, inner);
}

void RbReadyMsg::encode_payload(Encoder& enc) const {
  encode_key_and_inner(enc, key, inner);
}
std::string RbReadyMsg::to_string() const {
  return describe("RB_READY", key, inner);
}

BrachaEndpoint::BrachaEndpoint(ProcessId self, std::uint32_t n,
                               std::uint32_t f, SendFn send,
                               DeliverFn deliver, bool allow_undersized)
    : self_(self),
      n_(n),
      f_(f),
      send_(std::move(send)),
      deliver_(std::move(deliver)) {
  BGLA_CHECK_MSG(allow_undersized || n_ >= 3 * f_ + 1,
                 "Bracha requires n >= 3f+1");
  BGLA_CHECK(send_ && deliver_);
}

void BrachaEndpoint::send_all(const sim::MessagePtr& msg) {
  for (ProcessId to = 0; to < n_; ++to) send_(to, msg);
}

void BrachaEndpoint::broadcast(std::uint64_t tag, sim::MessagePtr inner) {
  BGLA_CHECK_MSG(own_tags_.insert(tag).second,
                 "reliable broadcast tag reused: " << tag);
  const RbKey key{self_, tag};
  send_all(std::make_shared<RbSendMsg>(key, std::move(inner)));
}

bool BrachaEndpoint::handle(ProcessId from, const sim::MessagePtr& msg) {
  if (const auto* m = dynamic_cast<const RbSendMsg*>(msg.get())) {
    on_send(from, *m);
    return true;
  }
  if (const auto* m = dynamic_cast<const RbEchoMsg*>(msg.get())) {
    on_echo(from, *m);
    return true;
  }
  if (const auto* m = dynamic_cast<const RbReadyMsg*>(msg.get())) {
    on_ready(from, *m);
    return true;
  }
  return false;
}

void BrachaEndpoint::on_send(ProcessId from, const RbSendMsg& m) {
  // Authenticated channels: a SEND for origin o must come from o itself;
  // anything else is a (cost-free) forgery attempt and is dropped.
  if (from != m.key.origin || m.inner == nullptr) return;
  Instance& inst = instances_[m.key];
  if (inst.echoed) return;  // echo only the first SEND per instance
  inst.echoed = true;
  send_all(std::make_shared<RbEchoMsg>(m.key, m.inner));
}

void BrachaEndpoint::on_echo(ProcessId from, const RbEchoMsg& m) {
  if (m.inner == nullptr) return;
  Instance& inst = instances_[m.key];
  const crypto::Digest digest = m.inner->digest();
  inst.payloads.emplace(digest, m.inner);
  inst.echoes[digest].insert(from);
  maybe_ready(m.key, inst, digest);
}

void BrachaEndpoint::on_ready(ProcessId from, const RbReadyMsg& m) {
  if (m.inner == nullptr) return;
  Instance& inst = instances_[m.key];
  const crypto::Digest digest = m.inner->digest();
  inst.payloads.emplace(digest, m.inner);
  inst.readies[digest].insert(from);
  maybe_ready(m.key, inst, digest);  // f+1 READY amplification
  maybe_deliver(m.key, inst, digest);
}

void BrachaEndpoint::maybe_ready(const RbKey& key, Instance& inst,
                                 const crypto::Digest& digest) {
  if (inst.ready_sent) return;
  const bool echo_quorum_met = inst.echoes[digest].size() >= echo_quorum();
  const bool ready_amplified = inst.readies[digest].size() >= ready_amplify();
  if (!echo_quorum_met && !ready_amplified) return;
  inst.ready_sent = true;
  send_all(std::make_shared<RbReadyMsg>(key, inst.payloads.at(digest)));
}

void BrachaEndpoint::maybe_deliver(const RbKey& key, Instance& inst,
                                   const crypto::Digest& digest) {
  if (inst.delivered) return;
  if (inst.readies[digest].size() < deliver_quorum()) return;
  inst.delivered = true;
  deliver_(key.origin, key.tag, inst.payloads.at(digest));
}

}  // namespace bgla::bcast
