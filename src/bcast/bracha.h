// Bracha's Byzantine reliable broadcast [Bracha 87], the primitive the
// paper's Values Disclosure Phase and GWTS acks rely on ([12,13,14]).
//
// Guarantees with n ≥ 3f+1:
//   - Validity: if a correct origin r-broadcasts m, every correct process
//     eventually r-delivers m from it.
//   - No duplication / Integrity: at most one delivery per (origin, tag),
//     and only if the origin r-broadcast it (for correct origins).
//   - Agreement: no two correct processes r-deliver different messages for
//     the same (origin, tag) — this is what "prevents Byzantine processes
//     from sending different [values] to [different] processes".
//   - Totality: if any correct process r-delivers, all correct do.
//
// The `tag` distinguishes independent instances by the same origin (GWTS
// round numbers, ack sequence numbers) — the round-aware usage the paper's
// footnote 2 requires.
//
// Protocol: origin sends SEND(m) to all; on first SEND for (origin, tag)
// echo m; on ⌊(n+f)/2⌋+1 ECHOes of the same m, or f+1 READYs, send
// READY(m) (once); on 2f+1 READYs, deliver m.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "bcast/rb_iface.h"
#include "crypto/sha256.h"
#include "sim/message.h"
#include "util/ids.h"

namespace bgla::bcast {

// ---- Wire messages (Layer::kBroadcast, type ids 1..3) ----

struct RbKey {
  ProcessId origin = kNoProcess;
  std::uint64_t tag = 0;
  auto operator<=>(const RbKey&) const = default;
};

class RbSendMsg final : public sim::Message {
 public:
  RbSendMsg(RbKey key, sim::MessagePtr inner)
      : key(key), inner(std::move(inner)) {}

  std::uint32_t type_id() const override { return 1; }
  sim::Layer layer() const override { return sim::Layer::kBroadcast; }
  void encode_payload(Encoder& enc) const override;
  std::string to_string() const override;

  RbKey key;
  sim::MessagePtr inner;
};

class RbEchoMsg final : public sim::Message {
 public:
  RbEchoMsg(RbKey key, sim::MessagePtr inner)
      : key(key), inner(std::move(inner)) {}

  std::uint32_t type_id() const override { return 2; }
  sim::Layer layer() const override { return sim::Layer::kBroadcast; }
  void encode_payload(Encoder& enc) const override;
  std::string to_string() const override;

  RbKey key;
  sim::MessagePtr inner;
};

class RbReadyMsg final : public sim::Message {
 public:
  RbReadyMsg(RbKey key, sim::MessagePtr inner)
      : key(key), inner(std::move(inner)) {}

  std::uint32_t type_id() const override { return 3; }
  sim::Layer layer() const override { return sim::Layer::kBroadcast; }
  void encode_payload(Encoder& enc) const override;
  std::string to_string() const override;

  RbKey key;
  sim::MessagePtr inner;
};

// ---- Endpoint ----

/// Per-process reliable-broadcast endpoint. The owning process forwards
/// every incoming message to handle(); RB messages are consumed and
/// r-deliveries surface through the deliver callback.
class BrachaEndpoint final : public RbEndpoint {
 public:
  using SendFn = std::function<void(ProcessId to, sim::MessagePtr)>;
  using DeliverFn = std::function<void(ProcessId origin, std::uint64_t tag,
                                       const sim::MessagePtr& inner)>;

  /// `allow_undersized` permits n < 3f+1 for the Theorem 1 necessity
  /// experiments (deliveries may then simply never happen — which is the
  /// demonstrated liveness loss, not a malfunction).
  BrachaEndpoint(ProcessId self, std::uint32_t n, std::uint32_t f,
                 SendFn send, DeliverFn deliver,
                 bool allow_undersized = false);

  /// R-broadcasts `inner` as origin = self under `tag` (one instance per
  /// tag; re-broadcasting the same tag is a programming error).
  void broadcast(std::uint64_t tag, sim::MessagePtr inner) override;

  /// Returns true iff the message was an RB-layer message (consumed).
  bool handle(ProcessId from, const sim::MessagePtr& msg) override;

  std::uint32_t echo_quorum() const { return (n_ + f_) / 2 + 1; }
  std::uint32_t ready_amplify() const { return f_ + 1; }
  std::uint32_t deliver_quorum() const { return 2 * f_ + 1; }

 private:
  struct Instance {
    bool echoed = false;
    bool ready_sent = false;
    bool delivered = false;
    // per candidate digest: distinct echoers / readiers and the payload
    std::map<crypto::Digest, std::set<ProcessId>> echoes;
    std::map<crypto::Digest, std::set<ProcessId>> readies;
    std::map<crypto::Digest, sim::MessagePtr> payloads;
  };

  void on_send(ProcessId from, const RbSendMsg& m);
  void on_echo(ProcessId from, const RbEchoMsg& m);
  void on_ready(ProcessId from, const RbReadyMsg& m);
  void maybe_ready(const RbKey& key, Instance& inst,
                   const crypto::Digest& digest);
  void maybe_deliver(const RbKey& key, Instance& inst,
                     const crypto::Digest& digest);
  void send_all(const sim::MessagePtr& msg);

  ProcessId self_;
  std::uint32_t n_;
  std::uint32_t f_;
  SendFn send_;
  DeliverFn deliver_;
  std::map<RbKey, Instance> instances_;
  std::set<std::uint64_t> own_tags_;
};

}  // namespace bgla::bcast
