#include "bcast/cert_rb.h"

#include "util/check.h"

namespace bgla::bcast {

Bytes crb_echo_payload(const CrbKey& key, const crypto::Digest& digest) {
  Encoder enc;
  enc.put_u32(key.origin);
  enc.put_u64(key.tag);
  enc.put_bytes(BytesView(digest.data(), digest.size()));
  enc.put_string("crb-echo");
  return enc.take();
}

void CrbSendMsg::encode_payload(Encoder& enc) const {
  enc.put_u32(key.origin);
  enc.put_u64(key.tag);
  enc.put_bytes(inner->encoded());
}

std::string CrbSendMsg::to_string() const {
  std::ostringstream os;
  os << "CRB_SEND(origin=" << key.origin << ",tag=" << key.tag << ","
     << inner->to_string() << ")";
  return os.str();
}

void CrbEchoMsg::encode_payload(Encoder& enc) const {
  enc.put_u32(key.origin);
  enc.put_u64(key.tag);
  enc.put_bytes(BytesView(digest.data(), digest.size()));
  enc.put_u32(sig.signer);
  enc.put_bytes(BytesView(sig.mac.data(), sig.mac.size()));
}

std::string CrbEchoMsg::to_string() const {
  std::ostringstream os;
  os << "CRB_ECHO(origin=" << key.origin << ",tag=" << key.tag
     << ",by=" << sig.signer << ")";
  return os.str();
}

void CrbFinalMsg::encode_payload(Encoder& enc) const {
  enc.put_u32(key.origin);
  enc.put_u64(key.tag);
  enc.put_bytes(inner->encoded());
  enc.put_varint(cert.size());
  for (const crypto::Signature& s : cert) {
    enc.put_u32(s.signer);
    enc.put_bytes(BytesView(s.mac.data(), s.mac.size()));
  }
}

std::string CrbFinalMsg::to_string() const {
  std::ostringstream os;
  os << "CRB_FINAL(origin=" << key.origin << ",tag=" << key.tag << ",|cert|="
     << cert.size() << ")";
  return os.str();
}

bool CrbFinalMsg::well_formed(const crypto::SignatureAuthority& auth,
                              std::uint32_t quorum) const {
  if (inner == nullptr || cert.size() < quorum) return false;
  const Bytes payload = crb_echo_payload(key, inner->digest());
  std::set<ProcessId> signers;
  for (const crypto::Signature& s : cert) {
    if (!auth.verify(s, payload)) return false;
    if (!signers.insert(s.signer).second) return false;  // duplicate
  }
  return true;
}

CertRbEndpoint::CertRbEndpoint(ProcessId self, std::uint32_t n,
                               std::uint32_t f,
                               const crypto::SignatureAuthority& auth,
                               SendFn send, DeliverFn deliver,
                               bool allow_undersized)
    : self_(self),
      n_(n),
      f_(f),
      auth_(auth),
      signer_(auth.signer_for(self)),
      send_(std::move(send)),
      deliver_(std::move(deliver)) {
  BGLA_CHECK_MSG(allow_undersized || n_ >= 3 * f_ + 1,
                 "CertRb requires n >= 3f+1");
  BGLA_CHECK(send_ && deliver_);
}

void CertRbEndpoint::send_all(const sim::MessagePtr& msg) {
  for (ProcessId to = 0; to < n_; ++to) send_(to, msg);
}

void CertRbEndpoint::broadcast(std::uint64_t tag, sim::MessagePtr inner) {
  auto [it, inserted] = own_.emplace(tag, OriginInstance{});
  BGLA_CHECK_MSG(inserted, "CertRb tag reused: " << tag);
  it->second.payload = inner;
  it->second.digest = inner->digest();
  send_all(std::make_shared<CrbSendMsg>(CrbKey{self_, tag},
                                        std::move(inner)));
}

bool CertRbEndpoint::handle(ProcessId from, const sim::MessagePtr& msg) {
  if (const auto* m = dynamic_cast<const CrbSendMsg*>(msg.get())) {
    on_send(from, *m);
    return true;
  }
  if (const auto* m = dynamic_cast<const CrbEchoMsg*>(msg.get())) {
    on_echo(from, *m);
    return true;
  }
  if (dynamic_cast<const CrbFinalMsg*>(msg.get()) != nullptr) {
    on_final(msg);
    return true;
  }
  return false;
}

void CertRbEndpoint::on_send(ProcessId from, const CrbSendMsg& m) {
  // Authenticated channels: only the true origin's SENDs count.
  if (from != m.key.origin || m.inner == nullptr) return;
  ReceiverInstance& inst = received_[m.key];
  if (inst.echoed) return;  // echo only the FIRST send per instance
  inst.echoed = true;
  const crypto::Digest digest = m.inner->digest();
  const crypto::Signature sig =
      signer_.sign(crb_echo_payload(m.key, digest));
  send_(m.key.origin, std::make_shared<CrbEchoMsg>(m.key, digest, sig));
}

void CertRbEndpoint::on_echo(ProcessId from, const CrbEchoMsg& m) {
  if (m.key.origin != self_) return;  // echoes only matter to the origin
  const auto it = own_.find(m.key.tag);
  if (it == own_.end()) return;
  OriginInstance& inst = it->second;
  if (inst.finalized) return;
  if (m.digest != inst.digest) return;  // echo for something else
  if (m.sig.signer != from) return;
  if (!auth_.verify(m.sig, crb_echo_payload(m.key, m.digest))) return;
  if (!inst.echoers.insert(from).second) return;
  inst.cert.push_back(m.sig);
  if (inst.cert.size() < quorum()) return;
  inst.finalized = true;
  send_all(std::make_shared<CrbFinalMsg>(m.key, inst.payload, inst.cert));
}

void CertRbEndpoint::on_final(const sim::MessagePtr& msg) {
  const auto final =
      std::static_pointer_cast<const CrbFinalMsg>(msg);
  ReceiverInstance& inst = received_[final->key];
  if (inst.delivered) return;
  if (verified_finals_.count(final->digest()) == 0) {
    if (!final->well_formed(auth_, quorum())) return;
    verified_finals_.insert(final->digest());
  }
  inst.delivered = true;
  // Totality: propagate the self-verifying certificate once.
  if (!inst.forwarded) {
    inst.forwarded = true;
    send_all(msg);
  }
  deliver_(final->key.origin, final->key.tag, final->inner);
}

}  // namespace bgla::bcast
