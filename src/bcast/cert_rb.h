// Certificate-based reliable broadcast (signature-based, in the spirit of
// Srikanth–Toueg [13] / signed echo broadcast).
//
// Protocol per (origin, tag) instance:
//   1. origin → all:  CRB_SEND(m)
//   2. receiver → origin:  CRB_ECHO = Sign_receiver(key, digest(m))
//      (only for the FIRST send per instance — this is what makes two
//      different certificates for one instance impossible: any two
//      ⌊(n+f)/2⌋+1-quorums share a correct echoer, who signed only one
//      digest)
//   3. origin, on a quorum of valid echo signatures → all:
//      CRB_FINAL(m, certificate)
//   4. any process, on a well-formed CRB_FINAL: deliver m and forward the
//      FINAL to all once (totality: a correct deliverer propagates the
//      self-verifying certificate).
//
// Guarantees (n ≥ 3f+1, unforgeable signatures): validity, agreement,
// no-duplication, totality — the same interface contract as Bracha. Cost:
// totality still needs the certificate forwarded by every deliverer, so
// the total stays O(n²), but per process the broadcast layer drops from
// Bracha's ~2n (echo + ready all-to-all) to ~n+2 (one echo, one forward
// fan-out) — measured ≈1.6-1.7× fewer messages end-to-end under WTS
// (tests) — at the price of the stronger signature assumption (paper §8)
// and certificate-sized messages.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "bcast/rb_iface.h"
#include "crypto/signature.h"

namespace bgla::bcast {

struct CrbKey {
  ProcessId origin = kNoProcess;
  std::uint64_t tag = 0;
  auto operator<=>(const CrbKey&) const = default;
};

/// Canonical bytes an echoer signs: (origin, tag, payload digest).
Bytes crb_echo_payload(const CrbKey& key, const crypto::Digest& digest);

class CrbSendMsg final : public sim::Message {
 public:
  CrbSendMsg(CrbKey key, sim::MessagePtr inner)
      : key(key), inner(std::move(inner)) {}
  std::uint32_t type_id() const override { return 4; }
  sim::Layer layer() const override { return sim::Layer::kBroadcast; }
  void encode_payload(Encoder& enc) const override;
  std::string to_string() const override;

  CrbKey key;
  sim::MessagePtr inner;
};

class CrbEchoMsg final : public sim::Message {
 public:
  CrbEchoMsg(CrbKey key, crypto::Digest digest, crypto::Signature sig)
      : key(key), digest(digest), sig(sig) {}
  std::uint32_t type_id() const override { return 5; }
  sim::Layer layer() const override { return sim::Layer::kBroadcast; }
  void encode_payload(Encoder& enc) const override;
  std::string to_string() const override;

  CrbKey key;
  crypto::Digest digest;
  crypto::Signature sig;
};

class CrbFinalMsg final : public sim::Message {
 public:
  CrbFinalMsg(CrbKey key, sim::MessagePtr inner,
              std::vector<crypto::Signature> cert)
      : key(key), inner(std::move(inner)), cert(std::move(cert)) {}
  std::uint32_t type_id() const override { return 6; }
  sim::Layer layer() const override { return sim::Layer::kBroadcast; }
  void encode_payload(Encoder& enc) const override;
  std::string to_string() const override;

  /// Quorum of valid echo signatures by distinct signers over this
  /// payload's digest.
  bool well_formed(const crypto::SignatureAuthority& auth,
                   std::uint32_t quorum) const;

  CrbKey key;
  sim::MessagePtr inner;
  std::vector<crypto::Signature> cert;
};

class CertRbEndpoint final : public RbEndpoint {
 public:
  using SendFn = std::function<void(ProcessId to, sim::MessagePtr)>;
  using DeliverFn = std::function<void(ProcessId origin, std::uint64_t tag,
                                       const sim::MessagePtr& inner)>;

  CertRbEndpoint(ProcessId self, std::uint32_t n, std::uint32_t f,
                 const crypto::SignatureAuthority& auth, SendFn send,
                 DeliverFn deliver, bool allow_undersized = false);

  void broadcast(std::uint64_t tag, sim::MessagePtr inner) override;
  bool handle(ProcessId from, const sim::MessagePtr& msg) override;

  std::uint32_t quorum() const { return (n_ + f_) / 2 + 1; }

 private:
  struct OriginInstance {           // state for our own broadcasts
    sim::MessagePtr payload;
    crypto::Digest digest{};
    std::set<ProcessId> echoers;
    std::vector<crypto::Signature> cert;
    bool finalized = false;
  };
  struct ReceiverInstance {         // state per (origin, tag) received
    bool echoed = false;
    bool delivered = false;
    bool forwarded = false;
  };

  void on_send(ProcessId from, const CrbSendMsg& m);
  void on_echo(ProcessId from, const CrbEchoMsg& m);
  void on_final(const sim::MessagePtr& msg);
  void send_all(const sim::MessagePtr& msg);

  ProcessId self_;
  std::uint32_t n_;
  std::uint32_t f_;
  const crypto::SignatureAuthority& auth_;
  crypto::Signer signer_;
  SendFn send_;
  DeliverFn deliver_;
  std::map<std::uint64_t, OriginInstance> own_;       // by tag
  std::map<CrbKey, ReceiverInstance> received_;
  // Digests of FINALs whose certificate this endpoint already validated;
  // re-received copies (totality forwards each FINAL n times) skip the
  // quorum of signature checks. Sound: the digest covers payload + cert.
  std::set<crypto::Digest> verified_finals_;
};

}  // namespace bgla::bcast
