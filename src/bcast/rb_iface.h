// Abstract Byzantine reliable-broadcast endpoint.
//
// The paper's algorithms need the RB *properties* (validity, agreement,
// no-duplication, totality), not a specific construction: [12] (Bracha)
// and [13] (Srikanth–Toueg, signature-based) are both cited. Two
// implementations are provided:
//   - bcast::BrachaEndpoint      — authenticated channels only (§5's
//                                  minimal assumption), O(n²) messages.
//   - bcast::CertRbEndpoint      — signatures (the §8 assumption),
//                                  certificate-based, ~4n messages.
// WTS can run over either (LaConfig::rb_impl); bench_ablation A4 measures
// the difference.
#pragma once

#include <cstdint>

#include "sim/message.h"
#include "util/ids.h"

namespace bgla::bcast {

class RbEndpoint {
 public:
  virtual ~RbEndpoint() = default;

  /// R-broadcasts `inner` as origin = self under `tag`.
  virtual void broadcast(std::uint64_t tag, sim::MessagePtr inner) = 0;

  /// Returns true iff the message belonged to this RB layer (consumed).
  virtual bool handle(ProcessId from, const sim::MessagePtr& msg) = 0;
};

}  // namespace bgla::bcast
