#include "byz/strategies.h"

#include "lattice/set_elem.h"

namespace bgla::byz {

namespace {
bcast::BrachaEndpoint make_endpoint(sim::Process& owner, ProcessId id,
                                    const LaConfig& cfg,
                                    sim::Network& net) {
  (void)owner;
  return bcast::BrachaEndpoint(
      id, cfg.n, cfg.f,
      [&net, id](ProcessId to, sim::MessagePtr m) {
        net.send(id, to, std::move(m));
      },
      [](ProcessId, std::uint64_t, const sim::MessagePtr&) {});
}
}  // namespace

// ------------------------------------------------------- WtsEquivocator --

void WtsEquivocator::on_start() {
  const bcast::RbKey key{id(), /*tag=*/0};
  const auto m1 = std::make_shared<bcast::RbSendMsg>(
      key, std::make_shared<la::DisclosureMsg>(v1_));
  const auto m2 = std::make_shared<bcast::RbSendMsg>(
      key, std::make_shared<la::DisclosureMsg>(v2_));
  for (ProcessId to = 0; to < cfg_.n; ++to) {
    if (to == id()) continue;
    net().send(id(), to, to < cfg_.n / 2 ? m1 : m2);
  }
}

// -------------------------------------------------- WtsInvalidDiscloser --

WtsInvalidDiscloser::WtsInvalidDiscloser(sim::Network& net, ProcessId id,
                                         LaConfig cfg, Elem bad_value)
    : sim::Process(net, id),
      cfg_(cfg),
      rb_(make_endpoint(*this, id, cfg_, net)),
      bad_value_(std::move(bad_value)) {}

void WtsInvalidDiscloser::on_start() {
  rb_.broadcast(/*tag=*/0, std::make_shared<la::DisclosureMsg>(bad_value_));
}

void WtsInvalidDiscloser::on_message(ProcessId from,
                                     const sim::MessagePtr& msg) {
  rb_.handle(from, msg);  // participate in RB so its own value delivers
}

// ------------------------------------------------------- WtsStaleNacker --

WtsStaleNacker::WtsStaleNacker(sim::Network& net, ProcessId id,
                               LaConfig cfg, Elem own_value)
    : sim::Process(net, id),
      cfg_(cfg),
      rb_(make_endpoint(*this, id, cfg_, net)),
      own_value_(std::move(own_value)) {}

void WtsStaleNacker::on_start() {
  rb_.broadcast(/*tag=*/0, std::make_shared<la::DisclosureMsg>(own_value_));
}

void WtsStaleNacker::on_message(ProcessId from, const sim::MessagePtr& msg) {
  if (rb_.handle(from, msg)) return;
  if (const auto* m = dynamic_cast<const la::AckReqMsg*>(msg.get())) {
    // Always refuse; the nacked set is safe (it was disclosed), so the
    // proposer must process it — but at most one refinement results.
    send(from, std::make_shared<la::NackMsg>(own_value_, m->ts));
  }
}

// -------------------------------------------------------- WtsLyingAcker --

void WtsLyingAcker::on_message(ProcessId from, const sim::MessagePtr& msg) {
  if (const auto* m = dynamic_cast<const la::AckReqMsg*>(msg.get())) {
    send(from, std::make_shared<la::AckMsg>(m->proposal, m->ts));
  }
}

// ---------------------------------------------------- FaleiroLyingAcker --

void FaleiroLyingAcker::on_message(ProcessId from,
                                   const sim::MessagePtr& msg) {
  if (const auto* m = dynamic_cast<const la::FAckReqMsg*>(msg.get())) {
    send(from, std::make_shared<la::FAckMsg>(m->proposal, m->ts));
  }
}

// ------------------------------------------------------ GwtsRoundRusher --

GwtsRoundRusher::GwtsRoundRusher(sim::Network& net, ProcessId id,
                                 LaConfig cfg, std::uint32_t rounds_ahead,
                                 Elem value)
    : sim::Process(net, id),
      cfg_(cfg),
      rb_(make_endpoint(*this, id, cfg_, net)),
      rounds_ahead_(rounds_ahead),
      value_(std::move(value)) {}

void GwtsRoundRusher::on_start() {
  for (std::uint64_t r = 0; r < rounds_ahead_; ++r) {
    // Disclose a batch for round r (legal-looking) ...
    rb_.broadcast(r << 1, std::make_shared<la::GDisclosureMsg>(value_, r));
    // ... and immediately demand acks for it, pretending all earlier
    // rounds already ended.
    const auto req =
        std::make_shared<la::GAckReqMsg>(value_, /*ts=*/r + 1, r);
    for (ProcessId to = 0; to < cfg_.n; ++to) {
      if (to != id()) net().send(id(), to, req);
    }
    // Also publish a self-serving "ack" claiming its proposal accepted.
    rb_.broadcast((tag_counter_++ << 1) | 1,
                  std::make_shared<la::GAckMsg>(value_, id(), id(),
                                                r + 1, r));
  }
}

void GwtsRoundRusher::on_message(ProcessId from, const sim::MessagePtr& msg) {
  rb_.handle(from, msg);
}

// ------------------------------------------------------ GwtsStaleNacker --

GwtsStaleNacker::GwtsStaleNacker(sim::Network& net, ProcessId id,
                                 LaConfig cfg, Elem own_value)
    : sim::Process(net, id),
      cfg_(cfg),
      rb_(make_endpoint(*this, id, cfg_, net)),
      own_value_(std::move(own_value)) {}

void GwtsStaleNacker::on_start() {
  rb_.broadcast(/*tag=*/0,
                std::make_shared<la::GDisclosureMsg>(own_value_, 0));
}

void GwtsStaleNacker::on_message(ProcessId from, const sim::MessagePtr& msg) {
  if (rb_.handle(from, msg)) return;
  if (const auto* m = dynamic_cast<const la::GAckReqMsg*>(msg.get())) {
    send(from,
         std::make_shared<la::GNackMsg>(own_value_, m->ts, m->round));
  }
}

// --------------------------------------------------------------- Flooder --

Flooder::Flooder(sim::Network& net, ProcessId id, LaConfig cfg,
                 std::uint32_t burst, std::uint32_t max_total)
    : sim::Process(net, id), cfg_(cfg), burst_(burst),
      max_total_(max_total) {}

void Flooder::on_start() { spray(); }

void Flooder::on_message(ProcessId, const sim::MessagePtr&) { spray(); }

void Flooder::spray() {
  for (std::uint32_t i = 0; i < burst_ && sent_ < max_total_; ++i) {
    for (ProcessId to = 0; to < cfg_.n && sent_ < max_total_; ++to) {
      if (to == id()) continue;
      send(to, std::make_shared<JunkMsg>(nonce_++));
      ++sent_;
    }
  }
}

// ------------------------------------------------------ SbsDoubleSigner --

SbsDoubleSigner::SbsDoubleSigner(sim::Network& net, ProcessId id,
                                 la::LaConfig cfg,
                                 const crypto::SignatureAuthority& auth,
                                 la::Elem v1, la::Elem v2)
    : sim::Process(net, id),
      cfg_(cfg),
      auth_(auth),
      signer_(auth.signer_for(id)),
      v1_(std::move(v1)),
      v2_(std::move(v2)) {}

void SbsDoubleSigner::on_start() {
  const auto m1 = std::make_shared<la::SInitMsg>(
      la::make_signed_value(signer_, v1_));
  const auto m2 = std::make_shared<la::SInitMsg>(
      la::make_signed_value(signer_, v2_));
  for (ProcessId to = 0; to < cfg_.n; ++to) {
    if (to == id()) continue;
    send(to, to < cfg_.n / 2 ? sim::MessagePtr(m1) : sim::MessagePtr(m2));
  }
}

void SbsDoubleSigner::on_message(ProcessId from, const sim::MessagePtr& msg) {
  // Behave as an honest acceptor in the safetying phase so its conflicting
  // values actually reach conflict detection (maximally adversarial: it
  // wants one of its two values decided by only half the group).
  if (const auto* m = dynamic_cast<const la::SSafeReqMsg*>(msg.get())) {
    const auto conflicts = m->set.conflicts(auth_);
    const crypto::Signature sig = signer_.sign(
        la::SSafeAckMsg::signed_payload(m->set, conflicts, id()));
    send(from, std::make_shared<la::SSafeAckMsg>(m->set, conflicts, id(),
                                                 sig));
  }
}

// ----------------------------------------- GsbsPartitionEquivocator --

GsbsPartitionEquivocator::GsbsPartitionEquivocator(
    net::Transport& net, ProcessId id, la::LaConfig cfg,
    const crypto::SignatureAuthority& auth, std::uint64_t value_base,
    std::uint64_t max_rounds)
    : sim::Process(net, id),
      cfg_(cfg),
      auth_(auth),
      signer_(auth.signer_for(id)),
      value_base_(value_base),
      max_rounds_(max_rounds) {}

la::Elem GsbsPartitionEquivocator::value_for(ProcessId id,
                                             std::uint64_t value_base,
                                             std::uint64_t round,
                                             bool second) {
  return lattice::make_set(
      {lattice::Item{id, value_base + 2 * round + (second ? 1 : 0), 1}});
}

la::Elem GsbsPartitionEquivocator::disclosed_join(ProcessId id,
                                                  std::uint64_t value_base,
                                                  std::uint64_t max_rounds) {
  la::Elem acc;
  for (std::uint64_t r = 0; r < max_rounds; ++r) {
    acc = acc.join(value_for(id, value_base, r, false));
    acc = acc.join(value_for(id, value_base, r, true));
  }
  return acc;
}

void GsbsPartitionEquivocator::equivocate(std::uint64_t round) {
  if (round >= max_rounds_ || !done_rounds_.insert(round).second) return;
  const auto m1 = std::make_shared<la::GSInitMsg>(la::make_signed_batch(
      signer_, value_for(id(), value_base_, round, false), round));
  const auto m2 = std::make_shared<la::GSInitMsg>(la::make_signed_batch(
      signer_, value_for(id(), value_base_, round, true), round));
  for (ProcessId to = 0; to < cfg_.n; ++to) {
    if (to == id()) continue;
    send(to, to < cfg_.n / 2 ? sim::MessagePtr(m1) : sim::MessagePtr(m2));
  }
}

void GsbsPartitionEquivocator::on_start() { equivocate(0); }

void GsbsPartitionEquivocator::on_message(ProcessId from,
                                          const sim::MessagePtr& msg) {
  if (const auto* m = dynamic_cast<const la::GSSafeReqMsg*>(msg.get())) {
    equivocate(m->round);
    const auto conflicts = m->set.conflicts(auth_);
    const crypto::Signature sig = signer_.sign(la::GSSafeAckMsg::signed_payload(
        m->set, conflicts, id(), m->round));
    send(from, std::make_shared<la::GSSafeAckMsg>(m->set, conflicts, id(),
                                                  m->round, sig));
  } else if (const auto* m =
                 dynamic_cast<const la::GSAckReqMsg*>(msg.get())) {
    // Content-free yes: sign whatever was proposed, instantly. The quorum
    // arithmetic (⌊(n+f)/2⌋+1) already budgets f such signatures.
    equivocate(m->round);
    const crypto::Digest fp = m->proposal.fingerprint();
    const crypto::Signature sig = signer_.sign(
        la::GSAckMsg::signed_payload(fp, from, m->ts, m->round));
    send(from, std::make_shared<la::GSAckMsg>(fp, from, m->ts, m->round,
                                              sig));
  } else if (const auto* m =
                 dynamic_cast<const la::GSDecidedMsg*>(msg.get())) {
    equivocate(m->round + 1);  // chase the frontier into the next round
  }
}

// -------------------------------------------- GsbsStaleCertReplayer --

GsbsStaleCertReplayer::GsbsStaleCertReplayer(
    net::Transport& net, ProcessId id, la::LaConfig cfg,
    const crypto::SignatureAuthority& auth)
    : sim::Process(net, id),
      cfg_(cfg),
      auth_(auth),
      signer_(auth.signer_for(id)) {}

void GsbsStaleCertReplayer::on_message(ProcessId from,
                                       const sim::MessagePtr& msg) {
  if (const auto* m = dynamic_cast<const la::GSDecidedMsg*>(msg.get())) {
    // Hoard the OLDEST genuine certificate (a forged one would be
    // discarded by the victim's well_formed check before doing any harm —
    // replay is the attack, not forgery).
    if ((!stale_round_ || m->round < *stale_round_) &&
        m->well_formed(auth_, cfg_.quorum())) {
      stale_round_ = m->round;
      stale_cert_ = msg->encoded();
    }
  } else if (const auto* m =
                 dynamic_cast<const la::CatchupReqMsg*>(msg.get())) {
    // Race the honest repliers: an instant, duplicated answer carrying
    // the stalest certificate we own and a rock-bottom frontier. The
    // rejoiner must dedup us by sender and fold frontiers with max().
    for (int copy = 0; copy < 3; ++copy) {
      send(from, std::make_shared<la::CatchupRepMsg>(
                     m->round, /*frontier=*/0, la::Elem(), la::Elem(),
                     la::Elem(), stale_cert_));
    }
  } else if (const auto* m =
                 dynamic_cast<const la::GSSafeReqMsg*>(msg.get())) {
    // Honest-but-lazy acceptor: keep the cluster minting certificates.
    const auto conflicts = m->set.conflicts(auth_);
    const crypto::Signature sig = signer_.sign(la::GSSafeAckMsg::signed_payload(
        m->set, conflicts, id(), m->round));
    send(from, std::make_shared<la::GSSafeAckMsg>(m->set, conflicts, id(),
                                                  m->round, sig));
  } else if (const auto* m =
                 dynamic_cast<const la::GSAckReqMsg*>(msg.get())) {
    const crypto::Digest fp = m->proposal.fingerprint();
    const crypto::Signature sig = signer_.sign(
        la::GSAckMsg::signed_payload(fp, from, m->ts, m->round));
    send(from, std::make_shared<la::GSAckMsg>(fp, from, m->ts, m->round,
                                              sig));
  }
}

// ------------------------------------------------- SbsFakeConflictAcker --

SbsFakeConflictAcker::SbsFakeConflictAcker(
    sim::Network& net, ProcessId id, la::LaConfig cfg,
    const crypto::SignatureAuthority& auth)
    : sim::Process(net, id),
      cfg_(cfg),
      auth_(auth),
      signer_(auth.signer_for(id)) {}

void SbsFakeConflictAcker::on_message(ProcessId from,
                                      const sim::MessagePtr& msg) {
  if (const auto* m = dynamic_cast<const la::SSafeReqMsg*>(msg.get())) {
    // Claim every received value conflicts with itself paired against a
    // self-signed impostor (the pair cannot pass VerifyConfPair because
    // this process cannot forge the original signer's signature).
    std::vector<la::ConflictPair> fabricated;
    for (const auto& [k, sv] : m->set.entries()) {
      la::SignedValue fake = la::make_signed_value(signer_, sv.value);
      fabricated.emplace_back(sv, fake);
    }
    const crypto::Signature sig = signer_.sign(
        la::SSafeAckMsg::signed_payload(m->set, fabricated, id()));
    send(from, std::make_shared<la::SSafeAckMsg>(m->set, fabricated, id(),
                                                 sig));
  }
}

}  // namespace bgla::byz
