// Byzantine strategy library (fault injection).
//
// Each class is a full network participant that deviates from the protocol
// in a specific way. Tests pair every strategy with the paper mechanism
// that defeats it:
//
//   MuteProcess          — never sends; liveness must not depend on it
//                          (n−f disclosure threshold, Byzantine quorums).
//   WtsEquivocator       — sends different disclosure SENDs to different
//                          processes; Bracha agreement must prevent
//                          divergent SvS entries (Observation 1).
//   WtsInvalidDiscloser  — discloses a value ∉ E (or of the wrong lattice
//                          family); the L11/L18 admissibility check must
//                          filter it (Non-Triviality's B ⊆ E).
//   WtsStaleNacker       — acceptor that nacks every request with its own
//                          value; forces ≤ f refinements (Lemma 3), must
//                          not block decisions.
//   WtsLyingAcker        — acks every request instantly regardless of
//                          content; must not let unsafe values decide.
//   FaleiroLyingAcker    — the same attack against the crash-stop PODC'12
//                          baseline, where it DOES produce a Comparability
//                          violation (bench T7 / Theorem 1 intuition).
//   GwtsRoundRusher      — discloses many future rounds at once and sends
//                          future-round ack requests, trying to rush
//                          correct acceptors past un-ended rounds; the
//                          Safe_r gate (Alg 4 L17-19) must hold it back.
//   GwtsStaleNacker      — per-round nacker for the generalised protocol.
//   Flooder              — sprays junk messages; they must be ignored at
//                          no cost to safety or liveness.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "bcast/bracha.h"
#include "la/config.h"
#include "la/gsbs_msgs.h"
#include "la/messages.h"
#include "la/sbs_msgs.h"
#include "sim/network.h"

namespace bgla::byz {

using la::Elem;
using la::LaConfig;

/// Crashed-from-birth / silent participant.
class MuteProcess : public sim::Process {
 public:
  MuteProcess(sim::Network& net, ProcessId id) : sim::Process(net, id) {}
  void on_message(ProcessId, const sim::MessagePtr&) override {}
};

/// Disclosure equivocation: raw RB_SEND(v1) to the first half of the
/// group, RB_SEND(v2) to the rest, then silence.
class WtsEquivocator : public sim::Process {
 public:
  WtsEquivocator(sim::Network& net, ProcessId id, LaConfig cfg, Elem v1,
                 Elem v2)
      : sim::Process(net, id), cfg_(cfg), v1_(std::move(v1)),
        v2_(std::move(v2)) {}

  void on_start() override;
  void on_message(ProcessId, const sim::MessagePtr&) override {}

 private:
  LaConfig cfg_;
  Elem v1_, v2_;
};

/// Discloses an inadmissible value through an honest reliable broadcast.
class WtsInvalidDiscloser : public sim::Process {
 public:
  WtsInvalidDiscloser(sim::Network& net, ProcessId id, LaConfig cfg,
                      Elem bad_value);

  void on_start() override;
  void on_message(ProcessId from, const sim::MessagePtr& msg) override;

 private:
  LaConfig cfg_;
  bcast::BrachaEndpoint rb_;
  Elem bad_value_;
};

/// Honestly discloses `own_value`, then nacks every ack request with it,
/// forcing refinements (WTS flavour).
class WtsStaleNacker : public sim::Process {
 public:
  WtsStaleNacker(sim::Network& net, ProcessId id, LaConfig cfg,
                 Elem own_value);

  void on_start() override;
  void on_message(ProcessId from, const sim::MessagePtr& msg) override;

 private:
  LaConfig cfg_;
  bcast::BrachaEndpoint rb_;
  Elem own_value_;
};

/// Acks everything instantly (content-free "yes"-machine).
class WtsLyingAcker : public sim::Process {
 public:
  WtsLyingAcker(sim::Network& net, ProcessId id, LaConfig cfg)
      : sim::Process(net, id), cfg_(cfg) {}

  void on_message(ProcessId from, const sim::MessagePtr& msg) override;

 private:
  LaConfig cfg_;
};

/// The same yes-machine against the crash-stop baseline — drives the
/// Comparability violation of bench T7.
class FaleiroLyingAcker : public sim::Process {
 public:
  FaleiroLyingAcker(sim::Network& net, ProcessId id)
      : sim::Process(net, id) {}

  void on_message(ProcessId from, const sim::MessagePtr& msg) override;
};

/// GWTS round-rusher: discloses `rounds_ahead` future batches immediately
/// and sends ack requests for all of them, trying to drag acceptors past
/// rounds that never legitimately ended.
class GwtsRoundRusher : public sim::Process {
 public:
  GwtsRoundRusher(sim::Network& net, ProcessId id, LaConfig cfg,
                  std::uint32_t rounds_ahead, Elem value);

  void on_start() override;
  void on_message(ProcessId from, const sim::MessagePtr& msg) override;

 private:
  LaConfig cfg_;
  bcast::BrachaEndpoint rb_;
  std::uint32_t rounds_ahead_;
  Elem value_;
  std::uint64_t tag_counter_ = 1;
};

/// Per-round stale nacker for GWTS.
class GwtsStaleNacker : public sim::Process {
 public:
  GwtsStaleNacker(sim::Network& net, ProcessId id, LaConfig cfg,
                  Elem own_value);

  void on_start() override;
  void on_message(ProcessId from, const sim::MessagePtr& msg) override;

 private:
  LaConfig cfg_;
  bcast::BrachaEndpoint rb_;
  Elem own_value_;
};

/// Junk message used by the Flooder (unknown to every protocol).
class JunkMsg final : public sim::Message {
 public:
  explicit JunkMsg(std::uint64_t nonce) : nonce_(nonce) {}
  std::uint32_t type_id() const override { return 999; }
  sim::Layer layer() const override { return sim::Layer::kOther; }
  void encode_payload(Encoder& enc) const override { enc.put_u64(nonce_); }
  std::string to_string() const override { return "JUNK"; }

 private:
  std::uint64_t nonce_;
};

/// Sprays `burst` junk messages at every process on start and again on
/// every delivery (bounded by the event cap).
class Flooder : public sim::Process {
 public:
  Flooder(sim::Network& net, ProcessId id, LaConfig cfg,
          std::uint32_t burst, std::uint32_t max_total);

  void on_start() override;
  void on_message(ProcessId from, const sim::MessagePtr& msg) override;

 private:
  void spray();

  LaConfig cfg_;
  std::uint32_t burst_;
  std::uint32_t max_total_;
  std::uint32_t sent_ = 0;
  std::uint64_t nonce_ = 0;
};

/// SbS double-signer: signs two different values and sends one to each
/// half of the group during the Init phase (Lemma 13: at most one of the
/// two can ever acquire a proof of safety). Also answers safe requests
/// honestly so the run keeps moving.
class SbsDoubleSigner : public sim::Process {
 public:
  SbsDoubleSigner(sim::Network& net, ProcessId id, la::LaConfig cfg,
                  const crypto::SignatureAuthority& auth, la::Elem v1,
                  la::Elem v2);

  void on_start() override;
  void on_message(ProcessId from, const sim::MessagePtr& msg) override;

 private:
  la::LaConfig cfg_;
  const crypto::SignatureAuthority& auth_;
  crypto::Signer signer_;
  la::Elem v1_, v2_;
};

/// GSbS equivocate-under-partition: for every round it observes (up to
/// `max_rounds`) it signs TWO conflicting round-bound batches and sends
/// one to each half of the group — the WAN-partition attack where each
/// side of a region split sees a different "disclosure" from the same
/// signer. It otherwise plays a maximally helpful acceptor (honest
/// safe-acks, instant yes-acks), so its conflicting batches actually
/// reach conflict detection instead of being starved. Defense under test:
/// batches_conflict / remove_conflicts plus the ⌊(n+f)/2⌋+1 certificate
/// quorum (two certs for one round must share an honest acceptor).
///
/// Every value it ever sends is a deterministic function of
/// (id, value_base, round), so a driver in another OS process can
/// reconstruct the full byz-disclosed join offline (spec Non-Triviality:
/// decisions ≤ ⊕(submissions ∪ B)) without any side channel.
/// Default round cap for GsbsPartitionEquivocator. The cap is part of the
/// strategy's deterministic contract: a driver reconstructing the
/// byz-disclosed join in another OS process must use the same bound.
inline constexpr std::uint64_t kGsbsEquivocatorRounds = 8;

class GsbsPartitionEquivocator : public sim::Process {
 public:
  GsbsPartitionEquivocator(net::Transport& net, ProcessId id,
                           la::LaConfig cfg,
                           const crypto::SignatureAuthority& auth,
                           std::uint64_t value_base,
                           std::uint64_t max_rounds);

  void on_start() override;
  void on_message(ProcessId from, const sim::MessagePtr& msg) override;

  /// The k-th (k ∈ {0,1}) equivocated value for `round`.
  static la::Elem value_for(ProcessId id, std::uint64_t value_base,
                            std::uint64_t round, bool second);
  /// Join of every value the strategy can ever disclose — the offline
  /// reconstruction of B for the spec checker.
  static la::Elem disclosed_join(ProcessId id, std::uint64_t value_base,
                                 std::uint64_t max_rounds);

 private:
  void equivocate(std::uint64_t round);

  la::LaConfig cfg_;
  const crypto::SignatureAuthority& auth_;
  crypto::Signer signer_;
  std::uint64_t value_base_;
  std::uint64_t max_rounds_;
  std::set<std::uint64_t> done_rounds_;
};

/// GSbS stale-certificate replayer targeting the type-70/71 rejoin: it
/// remembers the OLDEST well-formed DECIDED certificate it ever saw and
/// answers every CatchupReq instantly — duplicated — with that stale cert
/// and a frontier of 0, racing ahead of honest repliers to drag the
/// rejoiner's round back in time. Defenses under test: per-sender reply
/// dedup, monotone max-folding of frontier/trusted_, and the fact that a
/// round-bound certificate can never testify above its own round.
/// It answers safe/ack requests like an honest-but-lazy acceptor so the
/// cluster keeps producing the certificates it wants to replay.
class GsbsStaleCertReplayer : public sim::Process {
 public:
  GsbsStaleCertReplayer(net::Transport& net, ProcessId id, la::LaConfig cfg,
                        const crypto::SignatureAuthority& auth);

  void on_message(ProcessId from, const sim::MessagePtr& msg) override;

  bool has_stale_cert() const { return stale_round_.has_value(); }
  std::uint64_t stale_round() const { return stale_round_.value_or(0); }

 private:
  la::LaConfig cfg_;
  const crypto::SignatureAuthority& auth_;
  crypto::Signer signer_;
  std::optional<std::uint64_t> stale_round_;
  Bytes stale_cert_;
};

/// SbS acceptor that reports fabricated conflicts in its safe_acks
/// (pairs it cannot actually sign); correct proposers must detect the
/// invalid pairs and blacklist it (Alg 8 L21-24).
class SbsFakeConflictAcker : public sim::Process {
 public:
  SbsFakeConflictAcker(sim::Network& net, ProcessId id, la::LaConfig cfg,
                       const crypto::SignatureAuthority& auth);

  void on_message(ProcessId from, const sim::MessagePtr& msg) override;

 private:
  la::LaConfig cfg_;
  const crypto::SignatureAuthority& auth_;
  crypto::Signer signer_;
};

}  // namespace bgla::byz
