#include "crypto/codec.h"

#include <algorithm>

#include "util/check.h"

namespace bgla::crypto {

Digest decode_digest(Decoder& dec) {
  const Bytes b = dec.get_bytes();
  Digest d{};
  BGLA_CHECK_MSG(b.size() == d.size(), "bad digest length " << b.size());
  std::copy(b.begin(), b.end(), d.begin());
  return d;
}

Signature decode_signature(Decoder& dec) {
  Signature sig;
  sig.signer = dec.get_u32();
  sig.mac = decode_digest(dec);
  return sig;
}

}  // namespace bgla::crypto
