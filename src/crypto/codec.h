// Decoders for the crypto primitives' canonical wire encodings (the
// encode side lives with each user: signatures are written as
// u32 signer || length-prefixed MAC, digests as length-prefixed bytes).
// Shared by the network codec (net/wire.cc) and the durable-state import
// paths. Throws CheckError on malformed input.
#pragma once

#include "crypto/signature.h"
#include "util/codec.h"

namespace bgla::crypto {

/// Reads a length-prefixed 32-byte digest.
Digest decode_digest(Decoder& dec);

/// Reads a signature: u32 signer || length-prefixed 32-byte MAC.
Signature decode_signature(Decoder& dec);

}  // namespace bgla::crypto
