#include "crypto/hmac.h"

#include <cstring>

namespace bgla::crypto {

Digest hmac_sha256(BytesView key, BytesView message) {
  constexpr std::size_t kBlock = 64;
  std::uint8_t key_block[kBlock] = {};
  if (key.size() > kBlock) {
    const Digest kd = Sha256::hash(key);
    std::memcpy(key_block, kd.data(), kd.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  std::uint8_t ipad[kBlock];
  std::uint8_t opad[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(BytesView(ipad, kBlock));
  inner.update(message);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(BytesView(opad, kBlock));
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

}  // namespace bgla::crypto
