// HMAC-SHA256 (RFC 2104), keyed MAC used by the simulated signature scheme.
#pragma once

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace bgla::crypto {

/// HMAC-SHA256(key, message).
Digest hmac_sha256(BytesView key, BytesView message);

}  // namespace bgla::crypto
