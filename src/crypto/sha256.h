// SHA-256 (FIPS 180-4).
//
// Used for message digests (Bracha echo matching, lattice-element and
// message fingerprints) and as the compression function of HMAC-SHA256.
// Tested against the published NIST vectors in tests/crypto_test.cc.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace bgla::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  /// Absorbs more input; may be called repeatedly.
  void update(BytesView data);

  /// Finalizes and returns the digest. The object must not be reused
  /// after finish() without calling reset().
  Digest finish();

  void reset();

  /// One-shot convenience.
  static Digest hash(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finished_ = false;
};

/// Digest as lowercase hex (for tests and traces).
std::string digest_hex(const Digest& d);

/// Lexicographic comparison helpers so Digest can key ordered containers.
struct DigestLess {
  bool operator()(const Digest& a, const Digest& b) const { return a < b; }
};

}  // namespace bgla::crypto
