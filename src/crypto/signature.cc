#include "crypto/signature.h"

#include "util/check.h"
#include "util/rng.h"

namespace bgla::crypto {

SignatureAuthority::SignatureAuthority(std::uint32_t num_processes,
                                       std::uint64_t seed,
                                       std::size_t cache_capacity)
    : cache_capacity_(cache_capacity) {
  Rng rng(seed ^ 0x5167c0de5167c0deull);
  keys_.reserve(num_processes);
  for (std::uint32_t i = 0; i < num_processes; ++i) {
    Bytes key(32);
    for (std::size_t b = 0; b < key.size(); b += 8) {
      const std::uint64_t word = rng.next_u64();
      for (std::size_t j = 0; j < 8; ++j)
        key[b + j] = static_cast<std::uint8_t>(word >> (8 * j));
    }
    keys_.push_back(std::move(key));
  }
}

Signer SignatureAuthority::signer_for(ProcessId id) const {
  BGLA_CHECK_MSG(id < keys_.size(), "signer_for: unknown process id");
  return Signer(this, id);
}

Signature SignatureAuthority::sign_as(ProcessId id, BytesView message) const {
  BGLA_CHECK_MSG(id < keys_.size(), "sign_as: unknown process id");
  Signature sig;
  sig.signer = id;
  sig.mac = hmac_sha256(keys_[id], message);
  ++counters_.macs_computed;
  if (cache_capacity_ > 0) {
    // A freshly produced MAC is by construction genuine — seed the verify
    // cache so the signer's own (and echoed) artifacts hit immediately.
    if (verified_.size() >= cache_capacity_) verified_.clear();
    verified_.emplace(std::make_pair(id, Sha256::hash(message)), sig.mac);
  }
  return sig;
}

bool SignatureAuthority::verify(const Signature& sig,
                                BytesView message) const {
  if (sig.signer >= keys_.size()) return false;
  if (cache_capacity_ == 0) {
    ++counters_.macs_computed;
    return hmac_sha256(keys_[sig.signer], message) == sig.mac;
  }
  return verify_with_digest(sig, Sha256::hash(message), message);
}

bool SignatureAuthority::verify_with_digest(const Signature& sig,
                                            const Digest& message_digest,
                                            BytesView message) const {
  if (sig.signer >= keys_.size()) return false;
  if (cache_capacity_ == 0) {
    ++counters_.macs_computed;
    return hmac_sha256(keys_[sig.signer], message) == sig.mac;
  }
  const auto key = std::make_pair(sig.signer, message_digest);
  const auto it = verified_.find(key);
  if (it != verified_.end()) {
    ++counters_.verify_cache_hits;
    // Cached MAC is the genuine one for this (signer, payload); anything
    // else — including a forgery replayed after a genuine verification —
    // is invalid without recomputation.
    return it->second == sig.mac;
  }
  ++counters_.verify_cache_misses;
  ++counters_.macs_computed;
  const Digest mac = hmac_sha256(keys_[sig.signer], message);
  if (mac != sig.mac) return false;  // never cache failures
  if (verified_.size() >= cache_capacity_) verified_.clear();
  verified_.emplace(key, mac);
  return true;
}

Signature Signer::sign(BytesView message) const {
  BGLA_CHECK_MSG(authority_ != nullptr, "Signer not initialized");
  return authority_->sign_as(id_, message);
}

}  // namespace bgla::crypto
