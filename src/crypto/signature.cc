#include "crypto/signature.h"

#include "util/check.h"
#include "util/rng.h"

namespace bgla::crypto {

SignatureAuthority::SignatureAuthority(std::uint32_t num_processes,
                                       std::uint64_t seed) {
  Rng rng(seed ^ 0x5167c0de5167c0deull);
  keys_.reserve(num_processes);
  for (std::uint32_t i = 0; i < num_processes; ++i) {
    Bytes key(32);
    for (std::size_t b = 0; b < key.size(); b += 8) {
      const std::uint64_t word = rng.next_u64();
      for (std::size_t j = 0; j < 8; ++j)
        key[b + j] = static_cast<std::uint8_t>(word >> (8 * j));
    }
    keys_.push_back(std::move(key));
  }
}

Signer SignatureAuthority::signer_for(ProcessId id) const {
  BGLA_CHECK_MSG(id < keys_.size(), "signer_for: unknown process id");
  return Signer(this, id);
}

Signature SignatureAuthority::sign_as(ProcessId id, BytesView message) const {
  BGLA_CHECK_MSG(id < keys_.size(), "sign_as: unknown process id");
  Signature sig;
  sig.signer = id;
  sig.mac = hmac_sha256(keys_[id], message);
  return sig;
}

bool SignatureAuthority::verify(const Signature& sig,
                                BytesView message) const {
  if (sig.signer >= keys_.size()) return false;
  return hmac_sha256(keys_[sig.signer], message) == sig.mac;
}

Signature Signer::sign(BytesView message) const {
  BGLA_CHECK_MSG(authority_ != nullptr, "Signer not initialized");
  return authority_->sign_as(id_, message);
}

}  // namespace bgla::crypto
