// Simulated digital signatures with simulation-enforced unforgeability.
//
// Paper §3/§8 assume a PKI where every process can sign messages and every
// other process can verify, and Byzantine processes cannot forge correct
// processes' signatures. We substitute HMAC-SHA256 under per-process secret
// keys held by a SignatureAuthority: processes receive a Signer capability
// bound to their own identity (so even Byzantine strategy code can only
// produce signatures as itself), and verification recomputes the MAC inside
// the authority. This preserves exactly the unforgeability assumption the
// §8 proofs rely on while remaining deterministic and dependency-free.
//
// Verification cache: the authority memoizes successful verifications
// keyed by (signer, SHA-256 of the payload) — the classic BFT MAC-cache
// optimisation (Castro & Liskov). A hit compares the stored MAC against
// the presented one; forged or tampered signatures therefore still fail
// even when the same (signer, payload) was verified before, because a
// different MAC never matches the cached genuine one, and a tampered
// payload hashes to a different cache key. The cache only ever stores
// MACs that passed a full HMAC recomputation, so it cannot be poisoned by
// Byzantine senders. Hit/miss/MAC counters are kept for the benches.
//
// Thread safety: one authority serves one (single-threaded) simulation.
// When independent simulations fan out across a thread pool, each owns
// its authority, so the mutable cache and counters are never contended.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "crypto/hmac.h"
#include "util/bytes.h"
#include "util/ids.h"

namespace bgla::crypto {

struct Signature {
  ProcessId signer = kNoProcess;
  Digest mac{};

  bool operator==(const Signature& other) const = default;
};

/// Counters for the crypto hot path (MACs actually computed vs. cache
/// hits); surfaced through the benches so speedups are measured.
struct CryptoCounters {
  std::uint64_t macs_computed = 0;     ///< HMAC evaluations (sign + verify)
  std::uint64_t verify_cache_hits = 0;
  std::uint64_t verify_cache_misses = 0;

  CryptoCounters& operator+=(const CryptoCounters& o) {
    macs_computed += o.macs_computed;
    verify_cache_hits += o.verify_cache_hits;
    verify_cache_misses += o.verify_cache_misses;
    return *this;
  }
};

class SignatureAuthority;

/// Per-process signing capability. Handed to a process at construction;
/// it can only produce signatures under its own identity.
class Signer {
 public:
  Signer() = default;

  ProcessId id() const { return id_; }
  Signature sign(BytesView message) const;

 private:
  friend class SignatureAuthority;
  Signer(const SignatureAuthority* authority, ProcessId id)
      : authority_(authority), id_(id) {}

  const SignatureAuthority* authority_ = nullptr;
  ProcessId id_ = kNoProcess;
};

/// Holds all secret keys; the only component able to create or check MACs.
class SignatureAuthority {
 public:
  /// `cache_capacity` bounds the verified-signature cache (entries); 0
  /// disables caching entirely (every verify recomputes the HMAC).
  SignatureAuthority(std::uint32_t num_processes, std::uint64_t seed,
                     std::size_t cache_capacity = kDefaultCacheCapacity);

  static constexpr std::size_t kDefaultCacheCapacity = 1 << 16;

  /// Creates the signing capability for process `id`.
  Signer signer_for(ProcessId id) const;

  /// True iff `sig` is a valid signature by `sig.signer` over `message`.
  bool verify(const Signature& sig, BytesView message) const;

  /// Same check, with the caller supplying SHA-256(message) — lets hot
  /// paths that already hold a memoized payload digest (e.g. Elem) skip
  /// even the cache-key hash on a hit.
  bool verify_with_digest(const Signature& sig, const Digest& message_digest,
                          BytesView message) const;

  std::uint32_t num_processes() const {
    return static_cast<std::uint32_t>(keys_.size());
  }

  const CryptoCounters& counters() const { return counters_; }
  void reset_counters() const { counters_ = CryptoCounters{}; }

 private:
  friend class Signer;
  Signature sign_as(ProcessId id, BytesView message) const;

  std::vector<Bytes> keys_;
  std::size_t cache_capacity_;
  // (signer, payload digest) -> genuine MAC, verified once by full HMAC.
  mutable std::map<std::pair<ProcessId, Digest>, Digest> verified_;
  mutable CryptoCounters counters_;
};

}  // namespace bgla::crypto
