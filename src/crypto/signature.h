// Simulated digital signatures with simulation-enforced unforgeability.
//
// Paper §3/§8 assume a PKI where every process can sign messages and every
// other process can verify, and Byzantine processes cannot forge correct
// processes' signatures. We substitute HMAC-SHA256 under per-process secret
// keys held by a SignatureAuthority: processes receive a Signer capability
// bound to their own identity (so even Byzantine strategy code can only
// produce signatures as itself), and verification recomputes the MAC inside
// the authority. This preserves exactly the unforgeability assumption the
// §8 proofs rely on while remaining deterministic and dependency-free.
#pragma once

#include <memory>
#include <vector>

#include "crypto/hmac.h"
#include "util/bytes.h"
#include "util/ids.h"

namespace bgla::crypto {

struct Signature {
  ProcessId signer = kNoProcess;
  Digest mac{};

  bool operator==(const Signature& other) const = default;
};

class SignatureAuthority;

/// Per-process signing capability. Handed to a process at construction;
/// it can only produce signatures under its own identity.
class Signer {
 public:
  Signer() = default;

  ProcessId id() const { return id_; }
  Signature sign(BytesView message) const;

 private:
  friend class SignatureAuthority;
  Signer(const SignatureAuthority* authority, ProcessId id)
      : authority_(authority), id_(id) {}

  const SignatureAuthority* authority_ = nullptr;
  ProcessId id_ = kNoProcess;
};

/// Holds all secret keys; the only component able to create or check MACs.
class SignatureAuthority {
 public:
  SignatureAuthority(std::uint32_t num_processes, std::uint64_t seed);

  /// Creates the signing capability for process `id`.
  Signer signer_for(ProcessId id) const;

  /// True iff `sig` is a valid signature by `sig.signer` over `message`.
  bool verify(const Signature& sig, BytesView message) const;

  std::uint32_t num_processes() const {
    return static_cast<std::uint32_t>(keys_.size());
  }

 private:
  friend class Signer;
  Signature sign_as(ProcessId id, BytesView message) const;

  std::vector<Bytes> keys_;
};

}  // namespace bgla::crypto
