#include "harness/scenario.h"

#include <algorithm>
#include <memory>

#include "byz/strategies.h"
#include "la/faleiro_la.h"
#include "la/gsbs.h"
#include "la/gwts.h"
#include "la/sbs.h"
#include "la/wts.h"
#include "lattice/set_elem.h"
#include "rsm/byz_rsm.h"
#include "rsm/replica.h"
#include "sim/trace.h"

#include <optional>

namespace bgla::harness {

using lattice::Elem;
using lattice::Item;
using lattice::make_set;

namespace {

/// Scenario-wide "E": items of the set lattice with b < 900 (b = 9999 is
/// the canonical inadmissible value the InvalidValue adversary injects).
bool scenario_admissible(const Elem& e) {
  return lattice::all_items(e, [](const Item& it) { return it.b < 900; });
}

Elem correct_proposal(ProcessId id) {
  return make_set({Item{id, 100 + id, 0}});
}

/// GWTS disclosure equivocator: raw round-0 SENDs with two different
/// batches (the generalised twin of WtsEquivocator).
class GwtsEquivocator : public sim::Process {
 public:
  GwtsEquivocator(sim::Network& net, ProcessId id, la::LaConfig cfg)
      : sim::Process(net, id), cfg_(cfg) {}

  void on_start() override {
    const bcast::RbKey key{id(), /*tag=*/0};
    const auto m1 = std::make_shared<bcast::RbSendMsg>(
        key, std::make_shared<la::GDisclosureMsg>(
                 make_set({Item{id(), 301, 0}}), 0));
    const auto m2 = std::make_shared<bcast::RbSendMsg>(
        key, std::make_shared<la::GDisclosureMsg>(
                 make_set({Item{id(), 302, 0}}), 0));
    for (ProcessId to = 0; to < cfg_.n; ++to) {
      if (to == id()) continue;
      net().send(id(), to, to < cfg_.n / 2 ? m1 : m2);
    }
  }
  void on_message(ProcessId, const sim::MessagePtr&) override {}

 private:
  la::LaConfig cfg_;
};

std::unique_ptr<sim::Process> make_wts_adversary(Adversary a,
                                                 sim::Network& net,
                                                 ProcessId id,
                                                 const la::LaConfig& cfg) {
  switch (a) {
    case Adversary::kNone:
    case Adversary::kMute:
      return std::make_unique<byz::MuteProcess>(net, id);
    case Adversary::kEquivocator:
      return std::make_unique<byz::WtsEquivocator>(
          net, id, cfg, make_set({Item{id, 301, 0}}),
          make_set({Item{id, 302, 0}}));
    case Adversary::kInvalidValue:
      return std::make_unique<byz::WtsInvalidDiscloser>(
          net, id, cfg, make_set({Item{id, 9999, 0}}));
    case Adversary::kStaleNacker:
      return std::make_unique<byz::WtsStaleNacker>(
          net, id, cfg, make_set({Item{id, 400 + id, 0}}));
    case Adversary::kLyingAcker:
      return std::make_unique<byz::WtsLyingAcker>(net, id, cfg);
    case Adversary::kRoundRusher:  // degenerate for one-shot WTS
      return std::make_unique<byz::WtsLyingAcker>(net, id, cfg);
    case Adversary::kFlooder:
      return std::make_unique<byz::Flooder>(net, id, cfg, /*burst=*/2,
                                            /*max_total=*/5000);
  }
  return std::make_unique<byz::MuteProcess>(net, id);
}

std::unique_ptr<sim::Process> make_gwts_adversary(Adversary a,
                                                  sim::Network& net,
                                                  ProcessId id,
                                                  const la::LaConfig& cfg) {
  switch (a) {
    case Adversary::kNone:
    case Adversary::kMute:
    case Adversary::kLyingAcker:
      return std::make_unique<byz::MuteProcess>(net, id);
    case Adversary::kEquivocator:
      return std::make_unique<GwtsEquivocator>(net, id, cfg);
    case Adversary::kInvalidValue:
      return std::make_unique<byz::WtsInvalidDiscloser>(
          net, id, cfg, make_set({Item{id, 9999, 0}}));
    case Adversary::kStaleNacker:
      return std::make_unique<byz::GwtsStaleNacker>(
          net, id, cfg, make_set({Item{id, 400 + id, 0}}));
    case Adversary::kRoundRusher:
      return std::make_unique<byz::GwtsRoundRusher>(
          net, id, cfg, /*rounds_ahead=*/6,
          make_set({Item{id, 410 + id, 0}}));
    case Adversary::kFlooder:
      return std::make_unique<byz::Flooder>(net, id, cfg, /*burst=*/2,
                                            /*max_total=*/5000);
  }
  return std::make_unique<byz::MuteProcess>(net, id);
}

}  // namespace

namespace {

/// Copies the run's crypto counters into the report and the network's
/// Metrics (so benches reading either see the same numbers).
CryptoReport gather_crypto(const crypto::SignatureAuthority& auth,
                           std::uint64_t verifies_skipped,
                           sim::Network& net) {
  const crypto::CryptoCounters& c = auth.counters();
  net.metrics().add_crypto(c);
  net.metrics().add_verifies_skipped(verifies_skipped);
  CryptoReport r;
  r.macs_computed = c.macs_computed;
  r.verify_cache_hits = c.verify_cache_hits;
  r.verify_cache_misses = c.verify_cache_misses;
  r.verifies_skipped = verifies_skipped;
  return r;
}

/// Owns the run's Tracer and, on destruction (end of the run function),
/// reports both suppression totals — the line-cap drops AND the
/// broadcast-layer drops — so a filtered trace never reads as complete.
struct TraceGuard {
  sim::Tracer tracer;
  TraceGuard(sim::Network& net, sim::Tracer::Options opt)
      : tracer(net, opt) {}
  ~TraceGuard() {
    std::clog << "[trace] " << tracer.lines() << " line(s), "
              << tracer.suppressed() << " suppressed past the line cap, "
              << tracer.suppressed_broadcast()
              << " broadcast-layer line(s) filtered (rerun with "
                 "--trace-broadcast to see them)\n";
  }
};

std::optional<TraceGuard> maybe_trace(sim::Network& net, bool trace,
                                      bool include_broadcast) {
  if (!trace) return std::nullopt;
  sim::Tracer::Options opt;
  opt.include_broadcast = include_broadcast;
  return std::make_optional<TraceGuard>(net, opt);
}
}  // namespace

const char* adversary_name(Adversary a) {
  switch (a) {
    case Adversary::kNone: return "none";
    case Adversary::kMute: return "mute";
    case Adversary::kEquivocator: return "equivocator";
    case Adversary::kInvalidValue: return "invalid-value";
    case Adversary::kStaleNacker: return "stale-nacker";
    case Adversary::kLyingAcker: return "lying-acker";
    case Adversary::kRoundRusher: return "round-rusher";
    case Adversary::kFlooder: return "flooder";
  }
  return "?";
}

const char* sched_name(Sched s) {
  switch (s) {
    case Sched::kFixed: return "fixed";
    case Sched::kUniform: return "uniform";
    case Sched::kTargeted: return "targeted";
    case Sched::kJitter: return "jitter";
  }
  return "?";
}

std::unique_ptr<sim::DelayModel> make_delay(Sched sched) {
  switch (sched) {
    case Sched::kFixed:
      return std::make_unique<sim::FixedDelay>(1);
    case Sched::kUniform:
      return std::make_unique<sim::UniformDelay>(1, 20);
    case Sched::kTargeted:
      return std::make_unique<sim::TargetedDelay>(
          std::set<std::pair<ProcessId, ProcessId>>{{0, 1}, {1, 0}},
          /*fast=*/1, /*stretch=*/200);
    case Sched::kJitter:
      return std::make_unique<sim::JitterDelay>(5, 500, 0.05);
  }
  return std::make_unique<sim::FixedDelay>(1);
}

// ------------------------------------------------------------------ WTS --

WtsReport run_wts(const WtsScenario& sc) {
  BGLA_CHECK(sc.byz_count <= sc.f || sc.adversary == Adversary::kNone);
  BGLA_CHECK(sc.mixed.size() <= sc.f);

  la::LaConfig cfg;
  cfg.n = sc.n;
  cfg.f = sc.f;
  cfg.is_admissible = scenario_admissible;
  cfg.validate();

  const std::uint32_t byz =
      !sc.mixed.empty()
          ? static_cast<std::uint32_t>(sc.mixed.size())
          : (sc.adversary == Adversary::kNone ? 0 : sc.byz_count);
  const std::uint32_t correct_count = sc.n - byz;

  sim::Network net(make_delay(sc.sched), sc.seed, sc.n);
  std::vector<std::unique_ptr<la::WtsProcess>> correct;
  std::vector<std::unique_ptr<sim::Process>> adversaries;
  correct.reserve(correct_count);

  for (ProcessId id = 0; id < correct_count; ++id) {
    correct.push_back(std::make_unique<la::WtsProcess>(
        net, id, cfg, correct_proposal(id)));
    correct.back()->set_instrument(sc.instrument);
  }
  for (ProcessId id = correct_count; id < sc.n; ++id) {
    const Adversary a = !sc.mixed.empty()
                            ? sc.mixed[id - correct_count]
                            : sc.adversary;
    adversaries.push_back(make_wts_adversary(a, net, id, cfg));
  }

  const auto tracer = maybe_trace(net, sc.trace, sc.trace_broadcast);
  (void)tracer;  // alive for the run; it observes via the network hook
  const sim::RunResult rr = net.run(sc.max_events);

  WtsReport rep;
  rep.end_time = rr.end_time;
  rep.events = rr.events;
  rep.total_msgs = net.metrics().total_messages();

  std::vector<la::LaView> views;
  std::set<ProcessId> byz_ids;
  for (ProcessId id = correct_count; id < sc.n; ++id) byz_ids.insert(id);

  double depth_sum = 0.0;
  std::uint64_t decided = 0;
  for (const auto& p : correct) {
    la::LaView v;
    v.id = p->id();
    v.proposal = p->proposal();
    if (p->decided()) {
      v.decision = p->decision().value;
      rep.max_depth = std::max(rep.max_depth, p->decision().depth);
      depth_sum += static_cast<double>(p->decision().depth);
      ++decided;
    }
    v.svs = p->svs();
    views.push_back(std::move(v));
    rep.max_refinements =
        std::max(rep.max_refinements, p->stats().refinements);
    rep.max_msgs_per_correct = std::max(
        rep.max_msgs_per_correct, net.metrics().messages_sent(p->id()));
    rep.max_bytes_per_correct = std::max(
        rep.max_bytes_per_correct, net.metrics().bytes_sent(p->id()));
  }
  rep.mean_depth =
      decided == 0 ? 0.0 : depth_sum / static_cast<double>(decided);
  rep.completed = rr.quiescent && decided == correct_count;
  rep.spec = la::check_la(views, byz_ids, sc.f, scenario_admissible);
  return rep;
}

// ----------------------------------------------------------------- GWTS --

GwtsReport run_gwts(const GwtsScenario& sc) {
  BGLA_CHECK(sc.byz_count <= sc.f || sc.adversary == Adversary::kNone);
  BGLA_CHECK(sc.mixed.size() <= sc.f);

  la::LaConfig cfg;
  cfg.n = sc.n;
  cfg.f = sc.f;
  cfg.batch = sc.batch;
  cfg.is_admissible = scenario_admissible;
  const crypto::SignatureAuthority rb_auth(sc.n, sc.seed ^ 0xcafe);
  if (sc.signed_rb) {
    cfg.rb_impl = la::LaConfig::RbImpl::kSignedCert;
    cfg.authority = &rb_auth;
  }
  cfg.validate();

  const std::uint32_t byz =
      !sc.mixed.empty()
          ? static_cast<std::uint32_t>(sc.mixed.size())
          : (sc.adversary == Adversary::kNone ? 0 : sc.byz_count);
  const std::uint32_t correct_count = sc.n - byz;

  sim::Network net(make_delay(sc.sched), sc.seed, sc.n);
  std::vector<std::unique_ptr<la::GwtsProcess>> correct;
  std::vector<std::unique_ptr<sim::Process>> adversaries;

  for (ProcessId id = 0; id < correct_count; ++id) {
    correct.push_back(std::make_unique<la::GwtsProcess>(net, id, cfg));
    correct.back()->set_instrument(sc.instrument);
  }
  for (ProcessId id = correct_count; id < sc.n; ++id) {
    const Adversary a = !sc.mixed.empty()
                            ? sc.mixed[id - correct_count]
                            : sc.adversary;
    adversaries.push_back(make_gwts_adversary(a, net, id, cfg));
  }

  // Stop once every correct process reached the decision target, received
  // all its injected values, and its latest decision covers them (the
  // stabilisation point that makes Inclusivity checkable on the prefix).
  auto all_done = [&]() {
    for (const auto& p : correct) {
      if (p->submitted().size() < sc.submissions_per_proc) return false;
      if (p->decisions().size() < sc.target_decisions) return false;
      Elem own = lattice::join_all(p->submitted());
      if (!own.leq(p->decisions().back().value)) return false;
    }
    return true;
  };
  for (const auto& p : correct) {
    p->set_decide_hook([&](const la::GwtsProcess&, const la::DecisionRecord&) {
      if (all_done()) net.request_stop();
    });
  }

  // Inject the input streams, remembering injection times for the
  // inclusion-latency measurement.
  std::vector<std::tuple<ProcessId, Elem, sim::Time>> injections;
  for (ProcessId id = 0; id < correct_count; ++id) {
    for (std::uint32_t k = 0; k < sc.submissions_per_proc; ++k) {
      const Elem v = make_set({Item{id, 100 + k, 1}});
      const sim::Time at = (k + 1) * sc.submission_spacing;
      injections.emplace_back(id, v, at);
      net.inject(id, id, std::make_shared<la::SubmitMsg>(v), at);
    }
  }

  const auto tracer = maybe_trace(net, sc.trace, sc.trace_broadcast);
  (void)tracer;  // alive for the run; it observes via the network hook
  const sim::RunResult rr = net.run(sc.max_events);

  GwtsReport rep;
  rep.end_time = rr.end_time;
  rep.events = rr.events;
  rep.total_msgs = net.metrics().total_messages();
  rep.completed = rr.stopped || all_done();
  if (sc.signed_rb) {
    rep.crypto = gather_crypto(rb_auth, /*verifies_skipped=*/0, net);
  }

  std::vector<la::GlaView> views;
  Elem byz_disclosed;
  std::set<ProcessId> byz_ids;
  for (ProcessId id = correct_count; id < sc.n; ++id) byz_ids.insert(id);

  double worst_rate = 0.0;
  for (const auto& p : correct) {
    la::GlaView v;
    v.id = p->id();
    v.submitted = p->submitted();
    for (const auto& d : p->decisions()) v.decisions.push_back(d.value);
    rep.total_decisions += p->decisions().size();
    rep.max_round_refinements =
        std::max(rep.max_round_refinements, p->stats().max_round_refinements);
    rep.max_msgs_per_correct = std::max(
        rep.max_msgs_per_correct, net.metrics().messages_sent(p->id()));
    if (!p->decisions().empty()) {
      const double rate =
          static_cast<double>(net.metrics().messages_sent(p->id())) /
          static_cast<double>(p->decisions().size());
      worst_rate = std::max(worst_rate, rate);
    }
    for (const auto& [origin, value] : p->disclosed_by()) {
      if (byz_ids.count(origin) > 0) byz_disclosed = byz_disclosed.join(value);
    }
    views.push_back(std::move(v));
  }
  rep.msgs_per_decision_per_proposer = worst_rate;
  // Inclusion latency: injection time → first containing decision at the
  // submitter.
  double lat_sum = 0.0;
  std::size_t lat_n = 0;
  for (const auto& [id, v, at] : injections) {
    for (const auto& d : correct[id]->decisions()) {
      if (d.time >= at && v.leq(d.value)) {
        const double lat = static_cast<double>(d.time - at);
        lat_sum += lat;
        rep.max_inclusion_latency = std::max(rep.max_inclusion_latency, lat);
        ++lat_n;
        break;
      }
    }
  }
  rep.mean_inclusion_latency = lat_n ? lat_sum / lat_n : 0.0;
  rep.spec = la::check_gla(views, byz_disclosed, sc.target_decisions);
  return rep;
}

// ------------------------------------------------------------------ SbS --

SbsReport run_sbs(const SbsScenario& sc) {
  BGLA_CHECK(sc.byz_count <= sc.f || sc.adversary == Adversary::kNone);

  la::LaConfig cfg;
  cfg.n = sc.n;
  cfg.f = sc.f;
  cfg.is_admissible = scenario_admissible;
  cfg.validate();

  const std::uint32_t byz =
      sc.adversary == Adversary::kNone ? 0 : sc.byz_count;
  const std::uint32_t correct_count = sc.n - byz;

  sim::Network net(make_delay(sc.sched), sc.seed, sc.n);
  const crypto::SignatureAuthority auth(sc.n, sc.seed ^ 0xabcdef);
  std::vector<std::unique_ptr<la::SbsProcess>> correct;
  std::vector<std::unique_ptr<sim::Process>> adversaries;

  for (ProcessId id = 0; id < correct_count; ++id) {
    correct.push_back(std::make_unique<la::SbsProcess>(
        net, id, cfg, auth, correct_proposal(id)));
    correct.back()->set_instrument(sc.instrument);
  }
  for (ProcessId id = correct_count; id < sc.n; ++id) {
    switch (sc.adversary) {
      case Adversary::kEquivocator:
        adversaries.push_back(std::make_unique<byz::SbsDoubleSigner>(
            net, id, cfg, auth, make_set({Item{id, 301, 0}}),
            make_set({Item{id, 302, 0}})));
        break;
      case Adversary::kStaleNacker:
        adversaries.push_back(std::make_unique<byz::SbsFakeConflictAcker>(
            net, id, cfg, auth));
        break;
      case Adversary::kFlooder:
        adversaries.push_back(std::make_unique<byz::Flooder>(
            net, id, cfg, /*burst=*/2, /*max_total=*/5000));
        break;
      default:
        adversaries.push_back(std::make_unique<byz::MuteProcess>(net, id));
        break;
    }
  }

  const auto tracer = maybe_trace(net, sc.trace, sc.trace_broadcast);
  (void)tracer;  // alive for the run; it observes via the network hook
  const sim::RunResult rr = net.run(sc.max_events);

  SbsReport rep;
  rep.end_time = rr.end_time;
  rep.events = rr.events;
  rep.total_msgs = net.metrics().total_messages();
  {
    std::uint64_t skipped = 0;
    for (const auto& p : correct) skipped += p->stats().verifies_skipped;
    rep.crypto = gather_crypto(auth, skipped, net);
  }

  std::vector<la::LaView> views;
  std::set<ProcessId> byz_ids;
  for (ProcessId id = correct_count; id < sc.n; ++id) byz_ids.insert(id);

  double depth_sum = 0.0;
  std::uint64_t decided = 0;
  for (const auto& p : correct) {
    la::LaView v;
    v.id = p->id();
    v.proposal = p->proposal();
    if (p->decided()) {
      v.decision = p->decision().value;
      rep.max_depth = std::max(rep.max_depth, p->decision().depth);
      depth_sum += static_cast<double>(p->decision().depth);
      ++decided;
    }
    // B attribution from proof-backed values (Lemma 13 guarantees the
    // per-signer consistency the checker verifies).
    v.svs = p->proposed_by();
    views.push_back(std::move(v));
    rep.max_refinements =
        std::max(rep.max_refinements, p->stats().refinements);
    rep.max_msgs_per_correct = std::max(
        rep.max_msgs_per_correct, net.metrics().messages_sent(p->id()));
    rep.max_bytes_per_correct = std::max(
        rep.max_bytes_per_correct, net.metrics().bytes_sent(p->id()));
  }
  rep.mean_depth =
      decided == 0 ? 0.0 : depth_sum / static_cast<double>(decided);
  rep.completed = rr.quiescent && decided == correct_count;
  rep.spec = la::check_la(views, byz_ids, sc.f, scenario_admissible);
  return rep;
}

// ----------------------------------------------------------------- GSbS --

namespace {

/// Per-round init double-signer for GSbS.
class GsbsDoubleSigner : public sim::Process {
 public:
  GsbsDoubleSigner(sim::Network& net, ProcessId id, la::LaConfig cfg,
                   const crypto::SignatureAuthority& auth,
                   std::uint32_t rounds)
      : sim::Process(net, id),
        cfg_(cfg),
        signer_(auth.signer_for(id)),
        rounds_(rounds) {}

  void on_start() override {
    for (std::uint64_t r = 0; r < rounds_; ++r) {
      const auto m1 = std::make_shared<la::GSInitMsg>(la::make_signed_batch(
          signer_, make_set({Item{id(), 301, r + 1}}), r));
      const auto m2 = std::make_shared<la::GSInitMsg>(la::make_signed_batch(
          signer_, make_set({Item{id(), 302, r + 1}}), r));
      for (ProcessId to = 0; to < cfg_.n; ++to) {
        if (to == id()) continue;
        send(to, to < cfg_.n / 2 ? sim::MessagePtr(m1)
                                 : sim::MessagePtr(m2));
      }
    }
  }
  void on_message(ProcessId, const sim::MessagePtr&) override {}

 private:
  la::LaConfig cfg_;
  crypto::Signer signer_;
  std::uint32_t rounds_;
};

}  // namespace

GsbsReport run_gsbs(const GsbsScenario& sc) {
  BGLA_CHECK(sc.byz_count <= sc.f || sc.adversary == Adversary::kNone);

  la::LaConfig cfg;
  cfg.n = sc.n;
  cfg.f = sc.f;
  cfg.batch = sc.batch;
  cfg.is_admissible = scenario_admissible;
  cfg.validate();

  const std::uint32_t byz =
      sc.adversary == Adversary::kNone ? 0 : sc.byz_count;
  const std::uint32_t correct_count = sc.n - byz;

  sim::Network net(make_delay(sc.sched), sc.seed, sc.n);
  const crypto::SignatureAuthority auth(sc.n, sc.seed ^ 0x5eed5eed);
  std::vector<std::unique_ptr<la::GsbsProcess>> correct;
  std::vector<std::unique_ptr<sim::Process>> adversaries;

  for (ProcessId id = 0; id < correct_count; ++id) {
    correct.push_back(
        std::make_unique<la::GsbsProcess>(net, id, cfg, auth));
    correct.back()->set_instrument(sc.instrument);
  }
  for (ProcessId id = correct_count; id < sc.n; ++id) {
    switch (sc.adversary) {
      case Adversary::kEquivocator:
        adversaries.push_back(std::make_unique<GsbsDoubleSigner>(
            net, id, cfg, auth, /*rounds=*/4));
        break;
      case Adversary::kFlooder:
        adversaries.push_back(std::make_unique<byz::Flooder>(
            net, id, cfg, /*burst=*/2, /*max_total=*/5000));
        break;
      default:
        adversaries.push_back(std::make_unique<byz::MuteProcess>(net, id));
        break;
    }
  }

  auto all_done = [&]() {
    for (const auto& p : correct) {
      if (p->submitted().size() < sc.submissions_per_proc) return false;
      if (p->decisions().size() < sc.target_decisions) return false;
      Elem own = lattice::join_all(p->submitted());
      if (!own.leq(p->decisions().back().value)) return false;
    }
    return true;
  };
  for (const auto& p : correct) {
    p->set_decide_hook([&](const la::GsbsProcess&,
                           const la::DecisionRecord&) {
      if (all_done()) net.request_stop();
    });
  }

  for (ProcessId id = 0; id < correct_count; ++id) {
    for (std::uint32_t k = 0; k < sc.submissions_per_proc; ++k) {
      net.inject(id, id,
                 std::make_shared<la::SubmitMsg>(
                     make_set({Item{id, 100 + k, 1}})),
                 (k + 1) * sc.submission_spacing);
    }
  }

  const auto tracer = maybe_trace(net, sc.trace, sc.trace_broadcast);
  (void)tracer;  // alive for the run; it observes via the network hook
  const sim::RunResult rr = net.run(sc.max_events);

  GsbsReport rep;
  rep.end_time = rr.end_time;
  rep.events = rr.events;
  rep.total_msgs = net.metrics().total_messages();
  rep.completed = rr.stopped || all_done();
  {
    std::uint64_t skipped = 0;
    for (const auto& p : correct) skipped += p->stats().verifies_skipped;
    rep.crypto = gather_crypto(auth, skipped, net);
  }

  std::vector<la::GlaView> views;
  Elem byz_disclosed;
  std::set<ProcessId> byz_ids;
  for (ProcessId id = correct_count; id < sc.n; ++id) byz_ids.insert(id);

  double worst_rate = 0.0;
  for (const auto& p : correct) {
    la::GlaView v;
    v.id = p->id();
    v.submitted = p->submitted();
    for (const auto& d : p->decisions()) v.decisions.push_back(d.value);
    rep.total_decisions += p->decisions().size();
    rep.max_round_refinements =
        std::max(rep.max_round_refinements, p->stats().max_round_refinements);
    rep.max_msgs_per_correct = std::max(
        rep.max_msgs_per_correct, net.metrics().messages_sent(p->id()));
    rep.max_bytes_per_correct = std::max(
        rep.max_bytes_per_correct, net.metrics().bytes_sent(p->id()));
    if (!p->decisions().empty()) {
      worst_rate = std::max(
          worst_rate,
          static_cast<double>(net.metrics().messages_sent(p->id())) /
              static_cast<double>(p->decisions().size()));
    }
    for (const auto& [origin, value] : p->proposed_by()) {
      if (byz_ids.count(origin) > 0) {
        byz_disclosed = byz_disclosed.join(value);
      }
    }
    views.push_back(std::move(v));
  }
  rep.msgs_per_decision_per_proposer = worst_rate;
  rep.spec = la::check_gla(views, byz_disclosed, sc.target_decisions);
  return rep;
}

// ------------------------------------------- crash-stop baseline (PODC) --

FaleiroReport run_faleiro(const FaleiroScenario& sc) {
  la::CrashConfig cfg;
  cfg.n = sc.n;
  cfg.f = sc.f;
  cfg.batch = sc.batch;
  cfg.validate();

  const std::uint32_t byz = sc.byz_lying_acker ? 1 : 0;
  const std::uint32_t live_count = sc.n - sc.crash_count - byz;
  BGLA_CHECK(live_count >= 1);

  sim::Network net(make_delay(sc.sched), sc.seed, sc.n);
  std::vector<std::unique_ptr<la::FaleiroProcess>> procs;  // live + crashing
  std::unique_ptr<sim::Process> lying;

  for (ProcessId id = 0; id < sc.n - byz; ++id) {
    procs.push_back(std::make_unique<la::FaleiroProcess>(
        net, id, cfg, correct_proposal(id)));
    procs.back()->set_instrument(sc.instrument);
    if (id >= live_count) {
      procs.back()->crash_at(/*t=*/150);  // mid-run crash
    }
  }
  if (byz > 0) {
    lying = std::make_unique<byz::FaleiroLyingAcker>(net, sc.n - 1);
  }

  for (ProcessId id = 0; id < live_count; ++id) {
    for (std::uint32_t k = 1; k < sc.submissions_per_proc; ++k) {
      net.inject(id, id,
                 std::make_shared<la::SubmitMsg>(
                     make_set({Item{id, 100 + k, 1}})),
                 k * sc.submission_spacing);
    }
  }

  const auto tracer = maybe_trace(net, sc.trace, sc.trace_broadcast);
  (void)tracer;  // alive for the run; it observes via the network hook
  const sim::RunResult rr = net.run(sc.max_events);

  FaleiroReport rep;
  rep.end_time = rr.end_time;
  rep.events = rr.events;
  rep.total_msgs = net.metrics().total_messages();
  rep.completed = rr.quiescent;

  std::vector<la::GlaView> views;
  Elem crashed_submissions;  // allowed extra contribution in the bound
  double worst_rate = 0.0;
  for (ProcessId id = 0; id < sc.n - byz; ++id) {
    const auto& p = procs[id];
    if (id >= live_count) {
      crashed_submissions =
          crashed_submissions.join(lattice::join_all(p->submitted()));
      continue;
    }
    la::GlaView v;
    v.id = p->id();
    v.submitted = p->submitted();
    for (const auto& d : p->decisions()) v.decisions.push_back(d.value);
    rep.total_decisions += p->decisions().size();
    rep.max_msgs_per_correct = std::max(
        rep.max_msgs_per_correct, net.metrics().messages_sent(p->id()));
    if (!p->decisions().empty()) {
      worst_rate = std::max(
          worst_rate,
          static_cast<double>(net.metrics().messages_sent(p->id())) /
              static_cast<double>(p->decisions().size()));
    }
    views.push_back(std::move(v));
  }
  rep.msgs_per_decision_per_proposer = worst_rate;
  rep.spec = la::check_gla(views, crashed_submissions, /*min_decisions=*/1);
  return rep;
}

// ------------------------------------------------------------------ RSM --

RsmReport run_rsm(const RsmScenario& sc) {
  BGLA_CHECK(sc.byz_replicas <= sc.f);

  la::LaConfig cfg;
  cfg.n = sc.n;
  cfg.f = sc.f;
  cfg.batch = sc.batch;
  cfg.validate();

  const std::uint32_t correct_replicas = sc.n - sc.byz_replicas;
  const std::uint32_t total_clients =
      sc.num_clients + (sc.with_byz_client ? 1 : 0);
  const ProcessId client_base = sc.n;

  sim::Network net(make_delay(sc.sched), sc.seed,
                   sc.n + total_clients);

  std::vector<std::unique_ptr<rsm::Replica>> replicas;
  std::vector<std::unique_ptr<sim::Process>> byz_procs;
  for (ProcessId id = 0; id < correct_replicas; ++id) {
    replicas.push_back(std::make_unique<rsm::Replica>(
        net, id, cfg, client_base, total_clients));
    replicas.back()->set_instrument(sc.instrument);
  }
  for (ProcessId id = correct_replicas; id < sc.n; ++id) {
    byz_procs.push_back(std::make_unique<rsm::FakeDeciderReplica>(
        net, id, client_base, total_clients));
  }

  // Alternating update/read scripts, one op pattern per client.
  std::vector<std::unique_ptr<rsm::Client>> clients;
  for (std::uint32_t c = 0; c < sc.num_clients; ++c) {
    std::vector<rsm::Op> script;
    for (std::uint32_t k = 0; k < sc.ops_per_client; ++k) {
      if (k % 2 == 0) {
        script.push_back(rsm::Op::update(10 * (c + 1) + k));
      } else {
        script.push_back(rsm::Op::read());
      }
    }
    clients.push_back(std::make_unique<rsm::Client>(
        net, client_base + c, sc.n, sc.f, std::move(script)));
    clients.back()->set_contact_all(sc.contact_all_replicas);
  }
  std::unique_ptr<rsm::ByzClient> byz_client;
  std::set<lattice::Item> allowed_extra;
  if (sc.with_byz_client) {
    byz_client = std::make_unique<rsm::ByzClient>(
        net, client_base + sc.num_clients, sc.n, /*num_commands=*/6);
    allowed_extra = byz_client->possible_commands();
  }

  auto all_done = [&]() {
    for (const auto& c : clients) {
      if (!c->done()) return false;
    }
    return true;
  };
  for (const auto& c : clients) {
    c->set_op_hook([&](const rsm::Client&, const rsm::OpRecord&) {
      if (all_done()) net.request_stop();
    });
  }

  const auto tracer = maybe_trace(net, sc.trace, sc.trace_broadcast);
  (void)tracer;  // alive for the run; it observes via the network hook
  const sim::RunResult rr = net.run(sc.max_events);

  RsmReport rep;
  rep.end_time = rr.end_time;
  rep.total_msgs = net.metrics().total_messages();
  rep.completed = all_done();

  double upd_sum = 0.0, read_sum = 0.0;
  std::uint64_t upd_n = 0, read_n = 0;
  for (const auto& c : clients) {
    rep.histories.push_back(c->history());
    rep.backpressure_retries += c->backpressure_retries();
    for (const auto& rec : c->history()) {
      if (!rec.completed) continue;
      ++rep.ops_completed;
      const double lat =
          static_cast<double>(rec.complete_time - rec.invoke_time);
      if (rec.op.kind == rsm::Op::Kind::kRead) {
        read_sum += lat;
        ++read_n;
      } else {
        upd_sum += lat;
        ++upd_n;
      }
    }
  }
  rep.mean_update_latency = upd_n ? upd_sum / upd_n : 0.0;
  rep.mean_read_latency = read_n ? read_sum / read_n : 0.0;
  rep.ops_per_ktime =
      rr.end_time
          ? 1000.0 * static_cast<double>(rep.ops_completed) /
                static_cast<double>(rr.end_time)
          : 0.0;
  rep.check = rsm::check_history(rep.histories, allowed_extra);
  rep.linearization = rsm::linearize(rep.histories, allowed_extra);
  return rep;
}

}  // namespace bgla::harness
