// Scenario harness: assembles networks, protocol processes and Byzantine
// strategies, runs them to completion, applies the executable specs and
// gathers the measurements the benches report. Tests, benches and examples
// all go through this layer so every number in EXPERIMENTS.md is produced
// by the same code path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "la/config.h"
#include "la/spec.h"
#include "rsm/history.h"
#include "rsm/linearize.h"
#include "sim/delay.h"
#include "sim/metrics.h"

namespace bgla::obs {
class Instrument;  // obs/instrument.h — optional metrics/trace sink
}

namespace bgla::harness {

/// Byzantine strategy selector (see byz/strategies.h for semantics).
enum class Adversary {
  kNone,
  kMute,
  kEquivocator,
  kInvalidValue,
  kStaleNacker,
  kLyingAcker,
  kRoundRusher,
  kFlooder,
};
const char* adversary_name(Adversary a);

/// Delay-model selector.
enum class Sched {
  kFixed,     ///< all links latency 1 (lock-step-looking)
  kUniform,   ///< uniform latency in [1, 20]
  kTargeted,  ///< adversarial: traffic among the first correct pair ×200
  kJitter,    ///< mostly fast with 5% long spikes (×500)
};
const char* sched_name(Sched s);

std::unique_ptr<sim::DelayModel> make_delay(Sched sched);

/// Crypto-work accounting for one run: HMAC computations and the two
/// cache layers that avoid them (the authority-level MAC cache and the
/// per-process verified-ack digest memo). All zero for protocols that use
/// no signatures.
struct CryptoReport {
  std::uint64_t macs_computed = 0;
  std::uint64_t verify_cache_hits = 0;
  std::uint64_t verify_cache_misses = 0;
  std::uint64_t verifies_skipped = 0;
};

// ------------------------------------------------------------------ WTS --

struct WtsScenario {
  std::uint32_t n = 4;
  std::uint32_t f = 1;          ///< protocol resilience parameter
  std::uint32_t byz_count = 1;  ///< actual adversaries instantiated (≤ f)
  Adversary adversary = Adversary::kNone;
  /// Optional heterogeneous adversary mix: when non-empty, overrides
  /// `adversary`/`byz_count` — entry i is the strategy of the i-th
  /// Byzantine process (size ≤ f).
  std::vector<Adversary> mixed;
  Sched sched = Sched::kUniform;
  std::uint64_t seed = 1;
  std::uint64_t max_events = 20'000'000;
  bool trace = false;            ///< print each delivery (sim::Tracer)
  bool trace_broadcast = false;  ///< include RB internals in the trace
  obs::Instrument* instrument = nullptr;  ///< hooks for correct processes
};

struct WtsReport {
  la::SpecResult spec;
  bool completed = false;  ///< run drained (or all correct decided)
  std::uint64_t max_depth = 0;       ///< max decision depth (≤ 2f+5 claim)
  double mean_depth = 0.0;
  std::uint64_t max_refinements = 0; ///< ≤ f claim (Lemma 3)
  std::uint64_t max_msgs_per_correct = 0;
  std::uint64_t max_bytes_per_correct = 0;
  std::uint64_t total_msgs = 0;
  std::uint64_t events = 0;  ///< deliveries performed
  sim::Time end_time = 0;
};

WtsReport run_wts(const WtsScenario& sc);

// ----------------------------------------------------------------- GWTS --

struct GwtsScenario {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  std::uint32_t byz_count = 1;
  Adversary adversary = Adversary::kNone;
  /// Optional heterogeneous adversary mix (see WtsScenario::mixed).
  std::vector<Adversary> mixed;
  /// Use the signature-based certificate RB instead of Bracha.
  bool signed_rb = false;
  Sched sched = Sched::kUniform;
  std::uint64_t seed = 1;
  std::uint32_t target_decisions = 5;    ///< per correct process
  std::uint32_t submissions_per_proc = 3;
  sim::Time submission_spacing = 40;     ///< injection interval
  /// Ingress batching/pipelining knobs (default = historical behaviour).
  la::BatchConfig batch;
  std::uint64_t max_events = 50'000'000;
  bool trace = false;
  bool trace_broadcast = false;
  obs::Instrument* instrument = nullptr;  ///< hooks for correct processes
};

struct GwtsReport {
  la::GlaSpecResult spec;
  bool completed = false;
  std::uint64_t total_decisions = 0;
  /// Time from a value's injection to the first decision containing it at
  /// its submitter (streaming inclusion latency).
  double mean_inclusion_latency = 0.0;
  double max_inclusion_latency = 0.0;
  double msgs_per_decision_per_proposer = 0.0;  ///< O(f·n²) claim (§6.4)
  std::uint64_t max_round_refinements = 0;      ///< ≤ f claim (Lemma 10)
  std::uint64_t max_msgs_per_correct = 0;
  std::uint64_t total_msgs = 0;
  std::uint64_t events = 0;
  CryptoReport crypto;  ///< non-zero only with signed_rb
  sim::Time end_time = 0;
};

GwtsReport run_gwts(const GwtsScenario& sc);

// ------------------------------------------------------------------ SbS --

struct SbsScenario {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  std::uint32_t byz_count = 1;
  /// kEquivocator maps to the double-signer, kStaleNacker to the
  /// fake-conflict acceptor; kMute/kFlooder as usual.
  Adversary adversary = Adversary::kNone;
  Sched sched = Sched::kUniform;
  std::uint64_t seed = 1;
  std::uint64_t max_events = 20'000'000;
  bool trace = false;
  bool trace_broadcast = false;
  obs::Instrument* instrument = nullptr;  ///< hooks for correct processes
};

struct SbsReport {
  la::SpecResult spec;
  bool completed = false;
  std::uint64_t max_depth = 0;        ///< ≤ 4f+5 claim (Theorem 8)
  double mean_depth = 0.0;
  std::uint64_t max_refinements = 0;  ///< ≤ 2f claim (Lemma 16)
  std::uint64_t max_msgs_per_correct = 0;
  std::uint64_t max_bytes_per_correct = 0;
  std::uint64_t total_msgs = 0;
  std::uint64_t events = 0;
  CryptoReport crypto;
  sim::Time end_time = 0;
};

SbsReport run_sbs(const SbsScenario& sc);

// ----------------------------------------------------------------- GSbS --

struct GsbsScenario {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  std::uint32_t byz_count = 1;
  /// kEquivocator maps to a per-round double-signer; others as usual.
  Adversary adversary = Adversary::kNone;
  Sched sched = Sched::kUniform;
  std::uint64_t seed = 1;
  std::uint32_t target_decisions = 5;
  std::uint32_t submissions_per_proc = 3;
  sim::Time submission_spacing = 40;
  /// Ingress batching/pipelining knobs (default = historical behaviour).
  la::BatchConfig batch;
  std::uint64_t max_events = 50'000'000;
  bool trace = false;
  bool trace_broadcast = false;
  obs::Instrument* instrument = nullptr;  ///< hooks for correct processes
};

struct GsbsReport {
  la::GlaSpecResult spec;
  bool completed = false;
  std::uint64_t total_decisions = 0;
  double msgs_per_decision_per_proposer = 0.0;  ///< O(f·n) claim (§8.2)
  std::uint64_t max_round_refinements = 0;
  std::uint64_t max_msgs_per_correct = 0;
  std::uint64_t max_bytes_per_correct = 0;
  std::uint64_t total_msgs = 0;
  std::uint64_t events = 0;
  CryptoReport crypto;
  sim::Time end_time = 0;
};

GsbsReport run_gsbs(const GsbsScenario& sc);

// ------------------------------------------- crash-stop baseline (PODC) --

struct FaleiroScenario {
  std::uint32_t n = 3;
  std::uint32_t f = 1;           ///< crash resilience parameter
  std::uint32_t crash_count = 0; ///< processes crashed mid-run
  bool byz_lying_acker = false;  ///< replace last process with a Byzantine
  Sched sched = Sched::kUniform;
  std::uint64_t seed = 1;
  std::uint32_t submissions_per_proc = 1;
  sim::Time submission_spacing = 40;
  /// Ingress batching knobs (default = historical behaviour).
  la::BatchConfig batch;
  std::uint64_t max_events = 20'000'000;
  bool trace = false;
  bool trace_broadcast = false;
  obs::Instrument* instrument = nullptr;  ///< hooks for correct processes
};

struct FaleiroReport {
  la::GlaSpecResult spec;
  bool completed = false;
  std::uint64_t total_decisions = 0;
  double msgs_per_decision_per_proposer = 0.0;
  std::uint64_t max_msgs_per_correct = 0;
  std::uint64_t total_msgs = 0;
  std::uint64_t events = 0;
  sim::Time end_time = 0;
};

FaleiroReport run_faleiro(const FaleiroScenario& sc);

// ------------------------------------------------------------------ RSM --

struct RsmScenario {
  std::uint32_t n = 4;             ///< replicas
  std::uint32_t f = 1;
  std::uint32_t byz_replicas = 0;  ///< fake-decider replicas (≤ f)
  std::uint32_t num_clients = 2;   ///< correct clients
  std::uint32_t ops_per_client = 4;  ///< alternating update/read script
  bool with_byz_client = false;
  bool contact_all_replicas = false;  ///< Alg 5 contact-policy ablation
  /// Replica-side ingress batching knobs (default = historical behaviour;
  /// a bounded queue makes replicas nack clients under overload).
  la::BatchConfig batch;
  Sched sched = Sched::kUniform;
  std::uint64_t seed = 1;
  std::uint64_t max_events = 80'000'000;
  bool trace = false;
  bool trace_broadcast = false;
  obs::Instrument* instrument = nullptr;  ///< hooks for correct processes
};

struct RsmReport {
  rsm::RsmCheckResult check;
  rsm::LinearizationResult linearization;  ///< explicit witness (Thm 6)
  bool completed = false;
  std::uint64_t ops_completed = 0;
  double mean_update_latency = 0.0;  ///< sim-time units
  double mean_read_latency = 0.0;
  double ops_per_ktime = 0.0;        ///< throughput: ops per 1000 ticks
  std::uint64_t total_msgs = 0;
  sim::Time end_time = 0;
  /// Total queue-full nack→resend cycles across correct clients.
  std::uint64_t backpressure_retries = 0;
  std::vector<std::vector<rsm::OpRecord>> histories;  ///< correct clients
};

RsmReport run_rsm(const RsmScenario& sc);

}  // namespace bgla::harness
