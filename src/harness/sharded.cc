#include "harness/sharded.h"

#include <chrono>
#include <set>

#include "shard/frontier.h"
#include "shard/shard_map.h"

namespace bgla::harness {

using lattice::Elem;
using lattice::Item;

ShardedReport run_sharded_throughput(const ShardedScenario& sc) {
  BGLA_CHECK_MSG(sc.shards >= 1, "sharded: need at least one shard");
  BGLA_CHECK_MSG(sc.base.feed_items.empty(),
                 "sharded: the harness owns the feed partition");

  const shard::ShardMap map(sc.shards);

  // The global feed — identical for every S, so cells of the shard axis
  // are comparable command-for-command. Matches run_throughput's generated
  // feed exactly (that is what makes S = 1 transcript-neutral).
  std::set<Item> global_feed;
  for (ProcessId id = 0; id < sc.base.n; ++id) {
    for (std::uint32_t k = 0; k < sc.base.commands_per_proc; ++k) {
      global_feed.insert(Item{id, 100 + k, 1});
    }
  }

  ShardedReport rep;
  rep.shards = sc.shards;
  rep.per_shard.reserve(sc.shards);

  const auto t0 = std::chrono::steady_clock::now();
  if (sc.shards == 1) {
    rep.per_shard.push_back(run_throughput(sc.base));
  } else {
    for (std::uint32_t s = 0; s < sc.shards; ++s) {
      ThroughputScenario shard_sc = sc.base;
      shard_sc.seed = sc.base.seed + s;
      shard_sc.feed_items.assign(sc.base.n, {});
      for (ProcessId id = 0; id < sc.base.n; ++id) {
        for (std::uint32_t k = 0; k < sc.base.commands_per_proc; ++k) {
          const Item it{id, 100 + k, 1};
          if (map.shard_of(it) == s) shard_sc.feed_items[id].push_back(it);
        }
      }
      rep.per_shard.push_back(run_throughput(shard_sc));
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  rep.wall_seconds = std::chrono::duration<double>(t1 - t0).count();

  rep.completed = true;
  rep.all_spec_ok = true;
  for (const ThroughputReport& r : rep.per_shard) {
    rep.commands += r.commands;
    if (!r.completed) rep.completed = false;
    if (!r.spec.ok()) rep.all_spec_ok = false;
  }
  rep.commands_per_sec =
      rep.wall_seconds <= 0.0
          ? 0.0
          : static_cast<double>(rep.commands) / rep.wall_seconds;

  // Merge the per-shard decided frontiers and check the two cross-shard
  // read guarantees end to end: monotonicity while merging, completeness
  // against the global feed afterwards.
  shard::FrontierMerger merger(sc.shards);
  rep.merge_monotone = true;
  for (std::uint32_t s = 0; s < sc.shards; ++s) {
    const Elem before = merger.merged();
    merger.update(s, rep.per_shard[s].decided_frontier);
    if (!before.leq(merger.merged())) rep.merge_monotone = false;
  }
  rep.merged_weight = merger.merged().weight();
  rep.merge_complete =
      rep.completed && merger.merged() == lattice::make_set(global_feed);
  return rep;
}

}  // namespace bgla::harness
