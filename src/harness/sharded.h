// Sharded throughput harness: the product-lattice scale-out experiment.
//
// Takes the closed-loop throughput scenario and a shard count S, splits
// the same global command feed across S independent GLA instances by
// ShardMap hash, runs each instance to completion and merges the decided
// frontiers through a FrontierMerger. Measures wall-clock commands/sec:
// with one core the win is algorithmic, not parallel — each message
// handler joins/encodes frontiers of size C/S instead of C, so the
// quadratic per-instance cost sums to C²/S instead of C².
//
// S = 1 runs the unmodified generated-feed path of run_throughput, so the
// neutral configuration reproduces historical seeded transcripts
// byte-identically; S > 1 uses the explicit feed override with the exact
// same global command set.
#pragma once

#include "harness/throughput.h"

namespace bgla::harness {

struct ShardedScenario {
  /// Per-shard sim parameters. commands_per_proc is the GLOBAL per-process
  /// feed length — shards divide it. feed_items must be empty (the harness
  /// owns the partition).
  ThroughputScenario base;
  std::uint32_t shards = 1;
};

struct ShardedReport {
  std::uint32_t shards = 1;
  std::vector<ThroughputReport> per_shard;
  bool completed = false;    ///< every shard drained its feed
  bool all_spec_ok = false;  ///< every per-shard la/spec checker green
  std::uint64_t commands = 0;
  double wall_seconds = 0.0;  ///< wall clock over all shard sims
  double commands_per_sec = 0.0;
  std::uint64_t merged_weight = 0;  ///< |merged frontier|
  /// Merged frontier equals the join of the whole global feed — nothing
  /// was lost in the split or the merge.
  bool merge_complete = false;
  /// The merged frontier only ever grew while shard decisions were fed in
  /// (the FrontierMerger monotone-read guarantee, checked explicitly).
  bool merge_monotone = false;
};

ShardedReport run_sharded_throughput(const ShardedScenario& sc);

}  // namespace bgla::harness
