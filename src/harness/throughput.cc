#include "harness/throughput.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "la/faleiro_la.h"
#include "la/gsbs.h"
#include "la/gwts.h"
#include "lattice/set_elem.h"
#include "sim/trace.h"

namespace bgla::harness {

using lattice::Elem;
using lattice::Item;
using lattice::make_set;

const char* throughput_protocol_name(ThroughputProtocol p) {
  switch (p) {
    case ThroughputProtocol::kFaleiro: return "faleiro-la";
    case ThroughputProtocol::kGwts: return "gwts";
    case ThroughputProtocol::kGsbs: return "gsbs";
  }
  return "?";
}

bool throughput_protocol_from_name(const std::string& name,
                                   ThroughputProtocol* out) {
  if (name == "faleiro-la") { *out = ThroughputProtocol::kFaleiro; return true; }
  if (name == "gwts") { *out = ThroughputProtocol::kGwts; return true; }
  if (name == "gsbs") { *out = ThroughputProtocol::kGsbs; return true; }
  return false;
}

namespace {

/// Protocol-agnostic view of one process for the closed loop.
struct ProcHandle {
  std::function<bool(const Elem&)> try_submit;
  std::function<const std::vector<Elem>&()> submitted;
  std::function<const std::vector<la::DecisionRecord>&()> decisions;
  std::function<const la::Batcher&()> batcher;
};

/// Per-process closed-loop state. Commands are retired strictly in feed
/// order: the batcher is FIFO and decided sets are monotone, so command k
/// is always covered no later than command k+1.
struct Feed {
  std::uint32_t next = 0;     ///< next feed index to submit
  std::uint32_t retired = 0;  ///< commands covered by a local decision
  std::vector<sim::Time> submit_time;
};

}  // namespace

ThroughputReport run_throughput(const ThroughputScenario& sc) {
  BGLA_CHECK_MSG(sc.window >= 1, "throughput: window must be >= 1");
  BGLA_CHECK_MSG(sc.commands_per_proc >= 1,
                 "throughput: need at least one command per process");
  BGLA_CHECK_MSG(sc.feed_items.empty() || sc.feed_items.size() == sc.n,
                 "throughput: explicit feed must cover every process");

  sim::Network net(make_delay(sc.sched), sc.seed, sc.n);
  const crypto::SignatureAuthority auth(sc.n, sc.seed ^ 0x5eed5eed);

  // Optional wire decorator. Constructed before the processes so they
  // attach to it instead of the raw network; under kNone the historical
  // direct path (and its seeded transcripts) is untouched.
  std::optional<net::DeltaTransport> delta;
  if (sc.wire != ThroughputScenario::WireMode::kNone) {
    net::DeltaTransport::Options dopts;
    dopts.enabled = sc.wire == ThroughputScenario::WireMode::kDelta;
    dopts.instrument = sc.instrument;
    delta.emplace(net, dopts);
  }
  net::Transport& wire_net = delta ? static_cast<net::Transport&>(*delta)
                                   : static_cast<net::Transport&>(net);

  // Owning storage (one vector per protocol; only one is populated).
  std::vector<std::unique_ptr<la::FaleiroProcess>> faleiro;
  std::vector<std::unique_ptr<la::GwtsProcess>> gwts;
  std::vector<std::unique_ptr<la::GsbsProcess>> gsbs;
  std::vector<ProcHandle> procs(sc.n);
  std::vector<Feed> feeds(sc.n);

  ThroughputReport rep;
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(sc.n) * sc.commands_per_proc);

  // Per-process feed: generated (the historical path — untouched so its
  // seeded transcripts stay byte-identical) or the explicit override a
  // sharded run partitions out of a global feed.
  const auto target = [&](ProcessId id) -> std::uint32_t {
    return sc.feed_items.empty()
               ? sc.commands_per_proc
               : static_cast<std::uint32_t>(sc.feed_items[id].size());
  };
  const auto feed_value = [&](ProcessId id, std::uint32_t k) {
    return sc.feed_items.empty() ? make_set({Item{id, 100 + k, 1}})
                                 : make_set({sc.feed_items[id][k]});
  };

  // Retire everything the new decision covers, then refill the window.
  // Runs inside the deciding process's decide hook, so try_submit is an
  // ordinary local step and the run stays deterministic per seed.
  const auto on_decide = [&](ProcessId id, const la::DecisionRecord& rec) {
    Feed& fd = feeds[id];
    while (fd.retired < fd.next &&
           feed_value(id, fd.retired).leq(rec.value)) {
      latencies.push_back(
          static_cast<double>(rec.time - fd.submit_time[fd.retired]));
      ++fd.retired;
    }
    while (fd.next - fd.retired < sc.window && fd.next < target(id)) {
      if (!procs[id].try_submit(feed_value(id, fd.next))) break;
      fd.submit_time.push_back(net.now());
      ++fd.next;
    }
    for (ProcessId p = 0; p < sc.n; ++p) {
      if (feeds[p].retired < target(p)) return;
    }
    net.request_stop();
  };

  la::LaConfig lcfg;
  lcfg.n = sc.n;
  lcfg.f = sc.f;
  lcfg.batch = sc.batch;
  la::CrashConfig ccfg;
  ccfg.n = sc.n;
  ccfg.f = sc.f;
  ccfg.batch = sc.batch;

  for (ProcessId id = 0; id < sc.n; ++id) {
    switch (sc.protocol) {
      case ThroughputProtocol::kFaleiro: {
        if (id == 0) ccfg.validate();
        auto p = std::make_unique<la::FaleiroProcess>(wire_net, id, ccfg);
        p->set_instrument(sc.instrument);
        p->set_decide_hook([&, id](const la::FaleiroProcess&,
                                   const la::DecisionRecord& rec) {
          on_decide(id, rec);
        });
        la::FaleiroProcess* raw = p.get();
        procs[id] = ProcHandle{
            [raw](const Elem& v) { return raw->try_submit(v); },
            [raw]() -> const std::vector<Elem>& { return raw->submitted(); },
            [raw]() -> const std::vector<la::DecisionRecord>& {
              return raw->decisions();
            },
            [raw]() -> const la::Batcher& { return raw->batcher(); }};
        faleiro.push_back(std::move(p));
        break;
      }
      case ThroughputProtocol::kGwts: {
        if (id == 0) lcfg.validate();
        auto p = std::make_unique<la::GwtsProcess>(wire_net, id, lcfg);
        p->set_instrument(sc.instrument);
        p->set_decide_hook([&, id](const la::GwtsProcess&,
                                   const la::DecisionRecord& rec) {
          on_decide(id, rec);
        });
        la::GwtsProcess* raw = p.get();
        procs[id] = ProcHandle{
            [raw](const Elem& v) { return raw->try_submit(v); },
            [raw]() -> const std::vector<Elem>& { return raw->submitted(); },
            [raw]() -> const std::vector<la::DecisionRecord>& {
              return raw->decisions();
            },
            [raw]() -> const la::Batcher& { return raw->batcher(); }};
        gwts.push_back(std::move(p));
        break;
      }
      case ThroughputProtocol::kGsbs: {
        if (id == 0) lcfg.validate();
        auto p = std::make_unique<la::GsbsProcess>(wire_net, id, lcfg, auth);
        p->set_instrument(sc.instrument);
        p->set_decide_hook([&, id](const la::GsbsProcess&,
                                   const la::DecisionRecord& rec) {
          on_decide(id, rec);
        });
        la::GsbsProcess* raw = p.get();
        procs[id] = ProcHandle{
            [raw](const Elem& v) { return raw->try_submit(v); },
            [raw]() -> const std::vector<Elem>& { return raw->submitted(); },
            [raw]() -> const std::vector<la::DecisionRecord>& {
              return raw->decisions();
            },
            [raw]() -> const la::Batcher& { return raw->batcher(); }};
        gsbs.push_back(std::move(p));
        break;
      }
    }
  }

  // Prime every window before the run; submit time 0.
  for (ProcessId id = 0; id < sc.n; ++id) {
    Feed& fd = feeds[id];
    while (fd.next < sc.window && fd.next < target(id)) {
      if (!procs[id].try_submit(feed_value(id, fd.next))) break;
      fd.submit_time.push_back(0);
      ++fd.next;
    }
  }

  std::optional<sim::Tracer> tracer;
  if (sc.trace) tracer.emplace(net);

  const sim::RunResult rr = net.run(sc.max_events);

  rep.end_time = rr.end_time;
  rep.total_msgs = net.metrics().total_messages();

  rep.completed = true;
  for (ProcessId id = 0; id < sc.n; ++id) {
    rep.commands += feeds[id].retired;
    if (feeds[id].retired < target(id)) rep.completed = false;
  }
  rep.commands_per_ktick =
      rr.end_time == 0 ? 0.0
                       : static_cast<double>(rep.commands) * 1000.0 /
                             static_cast<double>(rr.end_time);

  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&](double q) {
    if (latencies.empty()) return 0.0;
    const std::size_t i = std::min(
        latencies.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(latencies.size())));
    return latencies[i];
  };
  rep.p50_latency = pct(0.50);
  rep.p99_latency = pct(0.99);

  std::uint64_t batches = 0;
  std::uint64_t flushed = 0;
  std::vector<la::GlaView> views;
  for (ProcessId id = 0; id < sc.n; ++id) {
    const la::Batcher& b = procs[id].batcher();
    batches += b.stats().batches;
    flushed += b.stats().values_flushed;
    rep.backpressure_rejections += b.stats().rejected;
    la::GlaView v;
    v.id = id;
    v.submitted = procs[id].submitted();
    for (const auto& d : procs[id].decisions()) {
      v.decisions.push_back(d.value);
    }
    rep.total_decisions += procs[id].decisions().size();
    if (!v.decisions.empty()) {
      // Decided sets are monotone per process, so the last one is the max.
      rep.decided_frontier = rep.decided_frontier.join(v.decisions.back());
    }
    views.push_back(std::move(v));
  }
  rep.mean_batch_size =
      batches == 0 ? 0.0
                   : static_cast<double>(flushed) /
                         static_cast<double>(batches);

  // Every la/spec verdict must hold on batched runs exactly as on
  // unbatched ones — batching only changes WHEN values enter rounds. A
  // process the explicit feed gave nothing to may legitimately decide
  // nothing (hash skew in a lightly loaded shard), so liveness is only
  // demanded when every process had work.
  std::uint64_t min_dec = 1;
  for (ProcessId id = 0; id < sc.n; ++id) {
    if (target(id) == 0) min_dec = 0;
  }
  if (delta) {
    rep.wire = delta->stats();
    rep.bytes_per_command =
        rep.commands == 0 ? 0.0
                          : static_cast<double>(rep.wire.wire_bytes_total()) /
                                static_cast<double>(rep.commands);
    if (sc.instrument != nullptr) {
      sc.instrument->on_bytes_per_command(
          0, static_cast<std::uint64_t>(rep.bytes_per_command));
    }
  }

  rep.spec = la::check_gla(views, /*byz_disclosed=*/Elem(), min_dec);
  return rep;
}

}  // namespace bgla::harness
