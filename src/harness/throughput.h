// Closed-loop throughput harness: drives a generalized-LA cluster (Faleiro
// crash-stop, GWTS or GSbS) with a per-process command feed and a bounded
// in-flight window, the way an RSM client population would. Each process
// starts with `window` submitted commands; every decision that covers an
// outstanding command retires it (recording submit→decide latency) and
// tops the window back up, so the offered load tracks the cluster's actual
// decision rate — the right way to measure batching, since an open loop
// either starves the batcher or overflows it.
//
// Used by tools/bgla_load (sim mode) and bench/bench_throughput (the
// commands/sec vs batch-size × n study). Deterministic per seed: the feed
// is fixed up front and all top-ups happen inside decide hooks.
#pragma once

#include "harness/scenario.h"
#include "lattice/set_elem.h"
#include "net/delta_transport.h"

namespace bgla::harness {

enum class ThroughputProtocol { kFaleiro, kGwts, kGsbs };
const char* throughput_protocol_name(ThroughputProtocol p);
/// Returns true and sets `out` iff `name` is one of faleiro-la|gwts|gsbs.
bool throughput_protocol_from_name(const std::string& name,
                                   ThroughputProtocol* out);

struct ThroughputScenario {
  ThroughputProtocol protocol = ThroughputProtocol::kGwts;
  std::uint32_t n = 7;
  std::uint32_t f = 1;
  /// Ingress batching / pipelining under test.
  la::BatchConfig batch;
  /// Commands each process must get decided (feed length; < 700 so the
  /// scenario admissibility predicate holds).
  std::uint32_t commands_per_proc = 64;
  /// In-flight commands per process (closed-loop window).
  std::uint32_t window = 16;
  Sched sched = Sched::kUniform;
  std::uint64_t seed = 1;
  std::uint64_t max_events = 200'000'000;
  bool trace = false;
  obs::Instrument* instrument = nullptr;
  /// Wire-encoding mode. kNone keeps the historical direct-on-sim path
  /// (its seeded transcripts stay byte-identical). kMeter interposes
  /// net::DeltaTransport as a metering passthrough — the delta-off
  /// baseline of the byte-curve experiment. kDelta turns delta encoding
  /// on: every lattice-bearing message is reconstructed from wrapper
  /// bytes before delivery, so the run genuinely exercises the codec.
  enum class WireMode { kNone, kMeter, kDelta };
  WireMode wire = WireMode::kNone;
  /// Optional explicit feed (sharded runs): entry id is the ordered list
  /// of items process id submits, each as a singleton set. When non-empty
  /// (size must be n) it replaces the generated feed; commands_per_proc is
  /// ignored and a process with an empty list submits nothing. Kept empty
  /// by every pre-shard caller, so the generated path — and its seeded
  /// transcripts — is untouched.
  std::vector<std::vector<lattice::Item>> feed_items;
};

struct ThroughputReport {
  la::GlaSpecResult spec;       ///< full GLA safety checkers on the run
  bool completed = false;       ///< every feed drained and decided
  std::uint64_t commands = 0;   ///< commands decided at their submitter
  std::uint64_t total_decisions = 0;
  std::uint64_t total_msgs = 0;
  sim::Time end_time = 0;
  double commands_per_ktick = 0.0;  ///< throughput: commands / 1000 ticks
  double p50_latency = 0.0;     ///< submit→covering-decision, sim ticks
  double p99_latency = 0.0;
  double mean_batch_size = 0.0; ///< values per released batch, run-wide
  std::uint64_t backpressure_rejections = 0;  ///< try_submit refusals
  /// Join of every process's decided join — the run's decided frontier
  /// (what a shard contributes to a cross-shard FrontierMerger).
  lattice::Elem decided_frontier;
  /// Wire metering (zeroed under WireMode::kNone): per-message byte
  /// accounting from the DeltaTransport decorator.
  net::DeltaTransport::Stats wire;
  /// wire.wire_bytes_total() / commands — the byte-curve ordinate.
  double bytes_per_command = 0.0;
};

ThroughputReport run_throughput(const ThroughputScenario& sc);

}  // namespace bgla::harness
