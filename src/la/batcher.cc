#include "la/batcher.h"

#include <algorithm>

#include "util/codec.h"

namespace bgla::la {

std::uint64_t elem_encoded_bytes(const lattice::Elem& e) {
  Encoder enc;
  e.encode(enc);
  return enc.bytes().size();
}

bool Batcher::offer(const lattice::Elem& v, std::uint64_t now,
                    const obs::TraceContext& ctx, std::uint64_t wall_us) {
  if (cfg_.max_queue != 0 && queue_.size() >= cfg_.max_queue) {
    ++stats_.rejected;
    return false;
  }
  queue_.push_back(Pending{v, now, ctx, wall_us});
  ++stats_.offered;
  stats_.max_depth = std::max<std::uint64_t>(stats_.max_depth, queue_.size());
  return true;
}

void Batcher::requeue(const lattice::Elem& v) {
  if (v.is_bottom()) return;  // nothing to recover
  queue_.push_front(Pending{v, 0});
  ++stats_.offered;
  stats_.max_depth = std::max<std::uint64_t>(stats_.max_depth, queue_.size());
}

bool Batcher::release_ready(std::uint64_t now) const {
  if (queue_.empty()) return false;
  if (cfg_.flush_age == 0) return true;  // release on every round boundary
  if (cfg_.max_batch != 0 && queue_.size() >= cfg_.max_batch) return true;
  if (cfg_.max_bytes != 0) {
    std::uint64_t bytes = 0;
    for (const Pending& p : queue_) {
      bytes += elem_encoded_bytes(p.value);
      if (bytes >= cfg_.max_bytes) return true;
    }
  }
  const std::uint64_t oldest = queue_.front().enqueued_at;
  return now >= oldest && now - oldest >= cfg_.flush_age;
}

lattice::Elem Batcher::take(std::uint64_t now,
                            std::vector<Flushed>* flushed) {
  lattice::Elem batch;
  if (!release_ready(now)) return batch;

  std::uint64_t taken = 0;
  std::uint64_t bytes = 0;
  while (!queue_.empty()) {
    if (cfg_.max_batch != 0 && taken >= cfg_.max_batch) break;
    if (cfg_.max_bytes != 0 && taken > 0) {
      // A batch always carries >= 1 value, so a single value larger than
      // the budget still progresses instead of wedging the queue.
      if (bytes + elem_encoded_bytes(queue_.front().value) > cfg_.max_bytes) {
        break;
      }
    }
    bytes += elem_encoded_bytes(queue_.front().value);
    batch = batch.join(queue_.front().value);
    if (flushed != nullptr && queue_.front().ctx.valid()) {
      flushed->push_back(Flushed{queue_.front().ctx, queue_.front().wall_us});
    }
    queue_.pop_front();
    ++taken;
  }
  if (taken > 0) {
    ++stats_.batches;
    stats_.values_flushed += taken;
    stats_.last_batch_size = taken;
  }
  return batch;
}

lattice::Elem Batcher::drain_all() {
  lattice::Elem all = pending_join();
  queue_.clear();
  return all;
}

lattice::Elem Batcher::pending_join() const {
  lattice::Elem all;
  for (const Pending& p : queue_) all = all.join(p.value);
  return all;
}

}  // namespace bgla::la
