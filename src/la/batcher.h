// la::Batcher — bounded ingress queue between submit() and the round
// machinery of the generalized protocols (GWTS, GSbS, Faleiro LA).
//
// Submitted values queue individually; each round start calls take(),
// which coalesces pending values into one lattice element (a single join
// per round — the batching that makes an LA-based RSM competitive on
// throughput, cf. Zheng & Garg's generalized-LA RSM and the PODC'12
// "buffered values" scheme).
//
// Release policy (BatchConfig):
//   - size-triggered:  a batch carries at most max_batch values;
//   - byte-triggered:  a batch stops growing once its encoded size would
//                      exceed max_bytes (always carries >= 1 value);
//   - time-triggered:  Nagle-style hold — take() releases nothing until
//                      max_batch/max_bytes worth of values are queued OR
//                      the oldest value has waited flush_age time units;
//   - backpressure:    offer() rejects once max_queue values are pending
//                      (the caller surfaces the nack, e.g. the RSM
//                      replica's queue-full BusyMsg).
//
// The zero-initialized BatchConfig makes every trigger vacuous: offer()
// always accepts and take() joins everything pending — exactly the
// historical pending_batch_ accumulator, so default-config sim transcripts
// stay byte-identical per seed. The Batcher itself is deterministic: its
// behaviour depends only on the offer/take call sequence and the caller's
// transport clock, never on wall time.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "la/config.h"
#include "lattice/elem.h"
#include "obs/trace_ctx.h"

namespace bgla::la {

class Batcher {
 public:
  Batcher() = default;
  explicit Batcher(BatchConfig cfg) : cfg_(cfg) {}

  const BatchConfig& config() const { return cfg_; }

  /// Trace context + enqueue timestamp of one value released by take() —
  /// the protocol turns each into an "enqueue" span joining the command's
  /// trace to the round it rode in. Default-constructed (invalid) contexts
  /// are never reported, so untraced runs pay nothing.
  struct Flushed {
    obs::TraceContext ctx;
    std::uint64_t wall_us = 0;  ///< caller clock at offer() time
  };

  /// Queues one value. Returns false (and counts the rejection) iff the
  /// queue is full — the value is NOT retained and the caller owns the
  /// backpressure response. `now` is the caller's transport clock,
  /// recorded for the flush_age trigger. `ctx`/`wall_us` are the value's
  /// optional span context, echoed back by take().
  bool offer(const lattice::Elem& v, std::uint64_t now,
             const obs::TraceContext& ctx = {}, std::uint64_t wall_us = 0);

  /// Joins and removes the next batch per the release policy; bottom when
  /// nothing is pending or the hold timer has not fired. When `flushed` is
  /// non-null, the span contexts of the released values (those that carry
  /// one) are appended to it.
  lattice::Elem take(std::uint64_t now,
                     std::vector<Flushed>* flushed = nullptr);

  /// Re-queues a recovered value at the front, bypassing max_queue — used
  /// by rejoin paths, where dropping a pre-crash submission would violate
  /// inclusivity. Ages as if offered at time 0 so it flushes immediately.
  void requeue(const lattice::Elem& v);

  /// Join of everything pending (state export; diagnostics).
  lattice::Elem pending_join() const;

  /// Joins and removes EVERYTHING pending, ignoring the release policy —
  /// rejoin paths fold the queue into one recovered value.
  lattice::Elem drain_all();

  bool empty() const { return queue_.empty(); }
  std::size_t depth() const { return queue_.size(); }

  struct Stats {
    std::uint64_t offered = 0;       ///< values accepted
    std::uint64_t rejected = 0;      ///< offers refused (queue full)
    std::uint64_t batches = 0;       ///< non-empty batches taken
    std::uint64_t values_flushed = 0;
    std::uint64_t last_batch_size = 0;
    std::uint64_t max_depth = 0;     ///< high-water queue depth
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Pending {
    lattice::Elem value;
    std::uint64_t enqueued_at = 0;
    obs::TraceContext ctx;       ///< span context (invalid when untraced)
    std::uint64_t wall_us = 0;   ///< caller clock at offer(), for span dur
  };

  bool release_ready(std::uint64_t now) const;

  BatchConfig cfg_;
  std::deque<Pending> queue_;
  Stats stats_;
};

/// Encoded size of one element (bytes the value contributes to a
/// disclosure); encoding is memoized on the Elem, so this is cheap on the
/// hot path.
std::uint64_t elem_encoded_bytes(const lattice::Elem& e);

}  // namespace bgla::la
