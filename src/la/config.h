// Shared configuration for the lattice-agreement protocols.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "crypto/signature.h"
#include "lattice/elem.h"
#include "util/check.h"

namespace bgla::la {

/// Admissibility predicate: "value ∈ E" of §3.1 (E ⊆ V is the set of
/// values processes may propose). Checked on every disclosed value so a
/// Byzantine process cannot inject non-proposable lattice elements
/// (Algorithm 1 line 11 / Algorithm 3 line 18).
using Admissible = std::function<bool(const lattice::Elem&)>;

/// Ingress batching policy for the generalized protocols (GWTS, GSbS,
/// Faleiro LA) and the RSM replica built on them. Submitted values queue
/// in an la::Batcher; each round start takes one batch (a single lattice
/// join) from the queue.
///
/// The zero-initialized default is EXACTLY the historical behaviour —
/// every pending value joins into the next round's batch, unbounded queue,
/// no hold time, no pipelining — so per-seed sim transcripts are
/// byte-identical to pre-batching builds unless a knob is set.
struct BatchConfig {
  /// Values joined per batch; 0 = all pending (historical behaviour).
  std::uint32_t max_batch = 0;
  /// Ingress queue bound; 0 = unbounded. A full queue rejects the submit
  /// (backpressure: the RSM replica nacks the client with retry-after).
  std::uint32_t max_queue = 0;
  /// Encoded-byte budget per batch; 0 = unbounded. A batch always carries
  /// at least one value, so an oversized single value still progresses.
  std::uint64_t max_bytes = 0;
  /// Nagle-style hold: a batch is released only once max_batch values (or
  /// max_bytes) are queued OR the oldest value has waited this many
  /// transport time units. 0 = release on every round boundary.
  std::uint64_t flush_age = 0;
  /// Pipelined rounds (GWTS/GSbS): once round r reaches its proposing
  /// phase, pre-disclose round r+1's batch so the next disclosure phase
  /// overlaps the current deciding phase. Off by default (the pre-sent
  /// disclosure changes the per-seed transcript).
  bool pipeline = false;

  /// True iff every knob is at its neutral default.
  bool neutral() const {
    return max_batch == 0 && max_queue == 0 && max_bytes == 0 &&
           flush_age == 0 && !pipeline;
  }
};

struct LaConfig {
  std::uint32_t n = 0;  ///< processes running the protocol (ids 0..n-1)
  std::uint32_t f = 0;  ///< resilience bound: tolerated Byzantine count

  /// Ingress batching / pipelining policy (defaults = historical
  /// one-join-of-everything-pending behaviour).
  BatchConfig batch;

  /// Optional extra admissibility condition on top of the lattice-family
  /// check below; defaults to "any value of the right family".
  Admissible is_admissible;

  /// Lattice family the protocol instance runs on; disclosed values of a
  /// different family are rejected (a Byzantine payload of the wrong
  /// family must not poison joins).
  const char* expected_kind = "set";

  /// Reliable-broadcast construction used by the disclosure phase (and
  /// GWTS acks). kBracha needs only authenticated channels (the paper's
  /// minimal assumption); kSignedCert uses signatures (the §8 assumption)
  /// and costs ~4n messages per broadcast instead of ~2n². kSignedCert
  /// requires `authority`.
  enum class RbImpl { kBracha, kSignedCert };
  RbImpl rb_impl = RbImpl::kBracha;
  const crypto::SignatureAuthority* authority = nullptr;

  /// ---- ablation / experiment knobs (defaults = the paper's design) ----

  /// Disclose via Byzantine reliable broadcast (Alg 1 L9). Turning this
  /// off (plain point-to-point broadcast) is the bench_ablation study: an
  /// equivocator can then split the safe-value sets of correct processes
  /// and starve SAFE(), killing liveness.
  bool reliable_disclosure = true;

  /// GWTS decide-by-adoption (Alg 3 L39-43). Turning it off makes each
  /// proposer wait for a quorum on its *own* proposal; rounds still end
  /// but stragglers lag (bench_ablation measures the spread).
  bool decide_by_adoption = true;

  /// Allows n < 3f+1 for the Theorem 1 necessity experiments ONLY (the
  /// resilience bench shows WTS losing liveness at n = 3f). Never set in
  /// production configurations.
  bool unsafe_allow_undersized = false;

  /// Byzantine quorum used throughout the paper: ⌊(n+f)/2⌋+1.
  std::uint32_t quorum() const { return (n + f) / 2 + 1; }

  /// Disclosure-phase threshold: proceed after n−f disclosures (§5).
  std::uint32_t disclosure_threshold() const { return n - f; }

  bool kind_ok(const lattice::Elem& e) const {
    return e.is_bottom() ||
           std::string_view(e.model()->kind()) == expected_kind;
  }

  bool admissible(const lattice::Elem& e) const {
    if (!kind_ok(e)) return false;
    if (is_admissible) return is_admissible(e);
    return true;
  }

  void validate() const {
    BGLA_CHECK_MSG(n >= 1, "LaConfig: need at least one process");
    BGLA_CHECK_MSG(unsafe_allow_undersized || n >= 3 * f + 1,
                   "LaConfig: Byzantine LA requires n >= 3f+1 (Theorem 1)");
  }
};

/// Crash-stop configuration (Faleiro et al., PODC 2012 baseline): majority
/// quorum, f = tolerated crash count, requires n >= 2f+1.
struct CrashConfig {
  std::uint32_t n = 0;
  std::uint32_t f = 0;

  /// Ingress batching policy for the buffered-values scheme (defaults =
  /// historical join-everything-pending behaviour).
  BatchConfig batch;

  std::uint32_t quorum() const { return n / 2 + 1; }

  void validate() const {
    BGLA_CHECK_MSG(n >= 1, "CrashConfig: need at least one process");
    BGLA_CHECK_MSG(n >= 2 * f + 1,
                   "CrashConfig: crash-stop LA requires n >= 2f+1");
  }
};

}  // namespace bgla::la
