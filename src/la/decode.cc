#include "la/decode.h"

#include <utility>
#include <vector>

#include "crypto/codec.h"
#include "lattice/codec.h"
#include "util/check.h"

namespace bgla::la {

namespace {

using crypto::decode_signature;
using lattice::decode_elem;

void check_count(std::uint64_t count, const Decoder& dec) {
  BGLA_CHECK_MSG(count <= dec.remaining(),
                 "decoded count " << count << " exceeds remaining bytes");
}

template <typename T>
std::shared_ptr<const T> decode_blob(BytesView bytes,
                                     std::uint32_t expect_id,
                                     std::shared_ptr<const T> (*payload_fn)(
                                         Decoder&)) {
  Decoder dec{bytes};
  const std::uint64_t type_id = dec.get_varint();
  BGLA_CHECK_MSG(type_id == expect_id, "inner message of unexpected type "
                                           << type_id);
  std::shared_ptr<const T> msg = payload_fn(dec);
  BGLA_CHECK_MSG(dec.done(), "trailing bytes after message payload");
  return msg;
}

}  // namespace

SignedValue decode_signed_value(Decoder& dec) {
  SignedValue sv;
  sv.value = decode_elem(dec);
  sv.sig = decode_signature(dec);
  return sv;
}

SignedValueSet decode_signed_value_set(Decoder& dec) {
  const std::uint64_t count = dec.get_varint();
  check_count(count, dec);
  SignedValueSet set;
  for (std::uint64_t i = 0; i < count; ++i) {
    set.insert(decode_signed_value(dec));
  }
  return set;
}

SignedBatch decode_signed_batch(Decoder& dec) {
  SignedBatch sb;
  sb.value = decode_elem(dec);
  sb.round = dec.get_u64();
  sb.sig = decode_signature(dec);
  return sb;
}

SignedBatchSet decode_signed_batch_set(Decoder& dec) {
  const std::uint64_t count = dec.get_varint();
  check_count(count, dec);
  SignedBatchSet set;
  for (std::uint64_t i = 0; i < count; ++i) {
    set.insert(decode_signed_batch(dec));
  }
  return set;
}

SafeValueSet decode_safe_value_set(Decoder& dec) {
  const std::uint64_t num_acks = dec.get_varint();
  check_count(num_acks, dec);
  std::vector<SafeAckPtr> acks;
  acks.reserve(num_acks);
  for (std::uint64_t i = 0; i < num_acks; ++i) {
    acks.push_back(decode_safe_ack_blob(dec.get_bytes()));
  }
  const std::uint64_t count = dec.get_varint();
  check_count(count, dec);
  SafeValueSet set;
  for (std::uint64_t i = 0; i < count; ++i) {
    SafeValue sv;
    sv.v = decode_signed_value(dec);
    const std::uint64_t proof = dec.get_varint();
    check_count(proof, dec);
    for (std::uint64_t j = 0; j < proof; ++j) {
      const std::uint64_t idx = dec.get_varint();
      BGLA_CHECK_MSG(idx < acks.size(), "proof ack index out of range");
      sv.proof.push_back(acks[idx]);
    }
    set.insert(sv);
  }
  return set;
}

SafeBatchSet decode_safe_batch_set(Decoder& dec) {
  const std::uint64_t num_acks = dec.get_varint();
  check_count(num_acks, dec);
  std::vector<GSafeAckPtr> acks;
  acks.reserve(num_acks);
  for (std::uint64_t i = 0; i < num_acks; ++i) {
    acks.push_back(decode_g_safe_ack_blob(dec.get_bytes()));
  }
  const std::uint64_t count = dec.get_varint();
  check_count(count, dec);
  SafeBatchSet set;
  for (std::uint64_t i = 0; i < count; ++i) {
    SafeBatch sb;
    sb.b = decode_signed_batch(dec);
    const std::uint64_t proof = dec.get_varint();
    check_count(proof, dec);
    for (std::uint64_t j = 0; j < proof; ++j) {
      const std::uint64_t idx = dec.get_varint();
      BGLA_CHECK_MSG(idx < acks.size(), "proof ack index out of range");
      sb.proof.push_back(acks[idx]);
    }
    set.insert(sb);
  }
  return set;
}

std::shared_ptr<const SSafeAckMsg> decode_s_safe_ack_payload(Decoder& dec) {
  const Bytes payload = dec.get_bytes();
  Decoder in{payload};
  SignedValueSet rcvd = decode_signed_value_set(in);
  const std::uint64_t nconf = in.get_varint();
  check_count(nconf, in);
  std::vector<ConflictPair> conflicts;
  for (std::uint64_t i = 0; i < nconf; ++i) {
    SignedValue x = decode_signed_value(in);
    SignedValue y = decode_signed_value(in);
    conflicts.emplace_back(std::move(x), std::move(y));
  }
  const ProcessId acceptor = in.get_u32();
  BGLA_CHECK_MSG(in.done(), "trailing bytes in safe_ack payload");
  const crypto::Signature sig = decode_signature(dec);
  return std::make_shared<SSafeAckMsg>(std::move(rcvd), std::move(conflicts),
                                       acceptor, sig);
}

std::shared_ptr<const GSSafeAckMsg> decode_gs_safe_ack_payload(Decoder& dec) {
  const Bytes payload = dec.get_bytes();
  Decoder in{payload};
  SignedBatchSet rcvd = decode_signed_batch_set(in);
  const std::uint64_t nconf = in.get_varint();
  check_count(nconf, in);
  std::vector<std::pair<SignedBatch, SignedBatch>> conflicts;
  for (std::uint64_t i = 0; i < nconf; ++i) {
    SignedBatch x = decode_signed_batch(in);
    SignedBatch y = decode_signed_batch(in);
    conflicts.emplace_back(std::move(x), std::move(y));
  }
  const ProcessId acceptor = in.get_u32();
  const std::uint64_t round = in.get_u64();
  BGLA_CHECK_MSG(in.done(), "trailing bytes in g_safe_ack payload");
  const crypto::Signature sig = decode_signature(dec);
  return std::make_shared<GSSafeAckMsg>(std::move(rcvd), std::move(conflicts),
                                        acceptor, round, sig);
}

std::shared_ptr<const GSAckMsg> decode_gs_ack_payload(Decoder& dec) {
  const Bytes payload = dec.get_bytes();
  Decoder in{payload};
  const crypto::Digest fp = crypto::decode_digest(in);
  const ProcessId destination = in.get_u32();
  const std::uint64_t ts = in.get_u64();
  const std::uint64_t round = in.get_u64();
  BGLA_CHECK_MSG(in.done(), "trailing bytes in g_ack payload");
  const crypto::Signature sig = decode_signature(dec);
  return std::make_shared<GSAckMsg>(fp, destination, ts, round, sig);
}

std::shared_ptr<const GSDecidedMsg> decode_gs_decided_payload(Decoder& dec) {
  SafeBatchSet set = decode_safe_batch_set(dec);
  const ProcessId decider = dec.get_u32();
  const std::uint64_t ts = dec.get_u64();
  const std::uint64_t round = dec.get_u64();
  const std::uint64_t n = dec.get_varint();
  check_count(n, dec);
  std::vector<std::shared_ptr<const GSAckMsg>> acks;
  acks.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    acks.push_back(decode_gs_ack_blob(dec.get_bytes()));
  }
  return std::make_shared<GSDecidedMsg>(std::move(set), decider, ts, round,
                                        std::move(acks));
}

SafeAckPtr decode_safe_ack_blob(BytesView bytes) {
  return decode_blob<SSafeAckMsg>(bytes, 42, &decode_s_safe_ack_payload);
}

GSafeAckPtr decode_g_safe_ack_blob(BytesView bytes) {
  return decode_blob<GSSafeAckMsg>(bytes, 52, &decode_gs_safe_ack_payload);
}

std::shared_ptr<const GSAckMsg> decode_gs_ack_blob(BytesView bytes) {
  return decode_blob<GSAckMsg>(bytes, 54, &decode_gs_ack_payload);
}

std::shared_ptr<const GSDecidedMsg> decode_gs_decided_blob(BytesView bytes) {
  return decode_blob<GSDecidedMsg>(bytes, 56, &decode_gs_decided_payload);
}

}  // namespace bgla::la
