// Decoders for signed values/batches, their proof-carrying sets, and the
// signed ack/certificate messages whose bytes appear *inside* other
// structures (SafeValueSet proof pools, DECIDED certificates, exported
// replica state).
//
// These live in la/ — not in the network codec — because two independent
// consumers need them: net/wire.cc when parsing frames, and the protocol
// export/import hooks when reloading durable state from a replica's data
// directory. Keeping them here lets the store/recovery path decode without
// a dependency on the transport layer.
//
// Every function throws CheckError on malformed input; the callers at
// trust boundaries (net::decode_message, import_state) catch it and turn
// it into a rejected frame / loud recovery failure.
#pragma once

#include <memory>

#include "la/gsbs_msgs.h"
#include "la/sbs_msgs.h"
#include "la/signed_value.h"
#include "util/codec.h"

namespace bgla::la {

SignedValue decode_signed_value(Decoder& dec);
SignedValueSet decode_signed_value_set(Decoder& dec);
SignedBatch decode_signed_batch(Decoder& dec);
SignedBatchSet decode_signed_batch_set(Decoder& dec);

/// Proof-carrying sets: a pool of distinct acks encoded once, then
/// entries referencing pool indices (see the encode side).
SafeValueSet decode_safe_value_set(Decoder& dec);
SafeBatchSet decode_safe_batch_set(Decoder& dec);

// Payload decoders for the signed ack / certificate messages, with the
// decoder positioned just past the varint type id. The signed-payload
// blob must be consumed exactly (trailing bytes would make re-encoding
// diverge from the wire).
std::shared_ptr<const SSafeAckMsg> decode_s_safe_ack_payload(Decoder& dec);
std::shared_ptr<const GSSafeAckMsg> decode_gs_safe_ack_payload(Decoder& dec);
std::shared_ptr<const GSAckMsg> decode_gs_ack_payload(Decoder& dec);
std::shared_ptr<const GSDecidedMsg> decode_gs_decided_payload(Decoder& dec);

// Blob decoders: a full canonical message encoding
// (varint type id || payload), checked against the expected type id and
// required to consume the blob exactly. Unlike the network registry these
// never recurse into arbitrary message types, so nesting is structurally
// bounded: certificates contain only acks, acks contain only values.
SafeAckPtr decode_safe_ack_blob(BytesView bytes);
GSafeAckPtr decode_g_safe_ack_blob(BytesView bytes);
std::shared_ptr<const GSAckMsg> decode_gs_ack_blob(BytesView bytes);
std::shared_ptr<const GSDecidedMsg> decode_gs_decided_blob(BytesView bytes);

}  // namespace bgla::la
