#include "la/faleiro_la.h"

#include <algorithm>

#include "lattice/codec.h"

namespace bgla::la {

FaleiroProcess::FaleiroProcess(net::Transport& net, ProcessId id,
                               CrashConfig cfg, Elem initial)
    : sim::Process(net, id), cfg_(cfg), batcher_(cfg.batch) {
  cfg_.validate();
  if (!initial.is_bottom()) {
    submitted_.push_back(initial);
    batcher_.requeue(initial);  // constructor values bypass the bound
  }
}

void FaleiroProcess::submit(Elem value) { (void)try_submit(std::move(value)); }

bool FaleiroProcess::try_submit(Elem value, obs::TraceContext ctx) {
  if (obs_spans() && !ctx.valid()) ctx = obs_new_trace();
  const std::uint64_t wall = ctx.valid() ? obs_steady_us() : 0;
  if (!batcher_.offer(value, net().now(), ctx, wall)) {
    obs_backpressure();
    obs_child_span("backpressure", ctx, /*dur_us=*/0);
    return false;
  }
  obs_span("submit", ctx, /*parent=*/0, /*dur_us=*/0);
  submitted_.push_back(std::move(value));
  obs_submit(1);
  persist();
  maybe_begin_proposal();
  return true;
}

bool FaleiroProcess::crashed() const {
  return crash_time_.has_value() && net().now() >= *crash_time_;
}

void FaleiroProcess::on_start() {
  started_ = true;
  if (recovered_) {
    rejoin();
    return;
  }
  maybe_begin_proposal();
}

void FaleiroProcess::maybe_begin_proposal() {
  if (!started_ || state_ != State::kIdle || rejoining_ || crashed()) return;
  std::vector<Batcher::Flushed> flushed;
  const Elem b =
      batcher_.take(net().now(), obs_spans() ? &flushed : nullptr);
  if (b.is_bottom()) return;
  obs_batch_flush(batcher_.stats().last_batch_size, batcher_.depth());
  if (obs_spans()) {
    round_ctx_ = obs_new_trace();
    round_start_us_ = obs_steady_us();
    // The enqueue span joins each command's trace to the round that will
    // carry it (round index = the NEXT decision, i.e. decided_rounds_).
    for (const Batcher::Flushed& f : flushed) {
      const std::uint64_t waited =
          f.wall_us != 0 && round_start_us_ > f.wall_us
              ? round_start_us_ - f.wall_us
              : 0;
      obs_child_span("enqueue", f.ctx, waited, "round", decided_rounds_);
    }
  }
  proposed_set_ = proposed_set_.join(b);
  state_ = State::kProposing;
  ++ts_;
  ack_set_.clear();
  persist();  // ts_ must never be reused for a different proposal
  broadcast_proposal();
}

void FaleiroProcess::broadcast_proposal() {
  obs_propose(/*proposal=*/decided_rounds_, /*round=*/ts_);
  auto req = std::make_shared<FAckReqMsg>(proposed_set_, ts_);
  if (round_ctx_.valid()) {
    round_propose_us_ = obs_steady_us();
    req->set_trace_ctx(round_ctx_);  // before the first encode
  }
  send_to_group(cfg_.n, req);
}

void FaleiroProcess::on_message(ProcessId from, const sim::MessagePtr& msg) {
  if (crashed()) return;
  if (const auto* m = dynamic_cast<const SubmitMsg*>(msg.get())) {
    if (!try_submit(m->value, msg->trace_ctx()) && from != id()) {
      auto nack = std::make_shared<SubmitNackMsg>(
          m->value, /*retry_after=*/batcher_.depth(), id());
      if (msg->trace_ctx().valid()) nack->set_trace_ctx(msg->trace_ctx());
      send(from, nack);
    }
  } else if (const auto* m = dynamic_cast<const FAckReqMsg*>(msg.get())) {
    handle_ack_req(from, *m);
  } else if (const auto* m = dynamic_cast<const FAckMsg*>(msg.get())) {
    handle_ack(from, *m);
  } else if (const auto* m = dynamic_cast<const FNackMsg*>(msg.get())) {
    if (state_ == State::kProposing && m->ts == ts_) obs_nack(from);
    handle_nack(*m);
  } else if (const auto* m = dynamic_cast<const CatchupReqMsg*>(msg.get())) {
    handle_catchup_req(from, *m);
  } else if (const auto* m = dynamic_cast<const CatchupRepMsg*>(msg.get())) {
    handle_catchup_rep(from, *m);
  }
}

void FaleiroProcess::handle_ack_req(ProcessId from, const FAckReqMsg& m) {
  obs_child_span("ack", m.trace_ctx(), /*dur_us=*/0, "peer", from);
  if (accepted_set_.leq(m.proposal)) {
    accepted_set_ = m.proposal;
    persist();  // the ack below is a promise; it must survive a crash
    auto ack = std::make_shared<FAckMsg>(accepted_set_, m.ts);
    if (m.trace_ctx().valid()) ack->set_trace_ctx(m.trace_ctx());
    send(from, ack);
  } else {
    auto nack = std::make_shared<FNackMsg>(accepted_set_, m.ts);
    if (m.trace_ctx().valid()) nack->set_trace_ctx(m.trace_ctx());
    send(from, nack);
    accepted_set_ = accepted_set_.join(m.proposal);
    persist();
  }
}

void FaleiroProcess::handle_ack(ProcessId from, const FAckMsg& m) {
  if (state_ != State::kProposing || m.ts != ts_) return;
  obs_ack(from);
  ack_set_.insert(from);
  if (ack_set_.size() >= cfg_.quorum()) decide();
}

void FaleiroProcess::handle_nack(const FNackMsg& m) {
  if (state_ != State::kProposing || m.ts != ts_) return;
  const Elem merged = proposed_set_.join(m.accepted);
  if (merged != proposed_set_) {
    proposed_set_ = merged;
    ++ts_;
    ++stats_.refinements;
    ack_set_.clear();
    obs_refine(/*proposal=*/decided_rounds_, stats_.refinements);
    persist();
    broadcast_proposal();
  }
}

void FaleiroProcess::decide() {
  DecisionRecord rec;
  rec.value = proposed_set_;
  rec.time = net().now();
  rec.depth = net().current_depth();
  rec.round = decided_rounds_++;
  decisions_.push_back(rec);
  state_ = State::kIdle;
  obs_decide(/*proposal=*/rec.round, rec.round, stats_.refinements);
  if (round_ctx_.valid()) {
    const std::uint64_t now = obs_steady_us();
    obs_span("round", round_ctx_, /*parent=*/0, now - round_start_us_,
             "round", rec.round);
    obs_child_span("quorum", round_ctx_, now - round_propose_us_);
    round_ctx_ = obs::TraceContext{};
  }
  persist();
  if (decide_hook_) decide_hook_(*this, rec);
  maybe_begin_proposal();
}

// ------------------------------------------------------ crash recovery ----

void FaleiroProcess::export_state(Encoder& enc) const {
  put_state_header(enc, StateTag::kFaleiro);
  batcher_.pending_join().encode(enc);
  proposed_set_.encode(enc);
  accepted_set_.encode(enc);
  enc.put_u64(ts_);
  enc.put_u64(decided_rounds_);
  enc.put_varint(folded_submitted_);
  enc.put_varint(folded_decisions_);
  encode_elems(enc, submitted_);
  encode_decisions(enc, decisions_);
}

void FaleiroProcess::import_state(Decoder& dec) {
  BGLA_CHECK_MSG(!started_, "Faleiro: import_state after the run started");
  const std::uint32_t version = check_state_header(dec, StateTag::kFaleiro);
  const Elem pending = lattice::decode_elem(dec);
  if (!pending.is_bottom()) batcher_.requeue(pending);
  proposed_set_ = lattice::decode_elem(dec);
  accepted_set_ = lattice::decode_elem(dec);
  ts_ = dec.get_u64();
  decided_rounds_ = dec.get_u64();
  if (version >= 3) {
    folded_submitted_ = dec.get_varint();
    folded_decisions_ = dec.get_varint();
  }
  submitted_ = decode_elems(dec);
  decisions_ = decode_decisions(dec);
  recovered_ = true;
}

std::size_t FaleiroProcess::compact_decided_prefix(std::size_t keep_tail) {
  std::size_t folded = 0;
  // Decisions are monotone: the newest retained record is the join of
  // everything dropped before it, so the chain stays self-contained.
  if (decisions_.size() > keep_tail + 1) {
    const std::size_t drop = decisions_.size() - (keep_tail + 1);
    decisions_.erase(decisions_.begin(),
                     decisions_.begin() + static_cast<std::ptrdiff_t>(drop));
    folded_decisions_ += drop;
    folded += drop;
  }
  const Elem decided =
      decisions_.empty() ? Elem() : decisions_.back().value;
  if (!submitted_.empty() && !decided.is_bottom()) {
    std::size_t prefix = 0;
    Elem join;
    while (prefix < submitted_.size() && submitted_[prefix].leq(decided)) {
      join = join.join(submitted_[prefix]);
      ++prefix;
    }
    // Inclusivity survives the fold: each folded submission ≤ the join,
    // and the join ≤ the decided frontier.
    if (prefix > 1) {
      submitted_.erase(submitted_.begin(),
                       submitted_.begin() + static_cast<std::ptrdiff_t>(prefix));
      submitted_.insert(submitted_.begin(), std::move(join));
      folded_submitted_ += prefix - 1;
      folded += prefix - 1;
    }
  }
  return folded;
}

void FaleiroProcess::rejoin() {
  // Everything ever folded into a proposal is re-proposed: re-deciding an
  // already-decided join is harmless (decisions are monotone), while an
  // undecided in-flight value must not be lost. Bypasses the queue bound.
  batcher_.requeue(batcher_.drain_all().join(proposed_set_));
  state_ = State::kIdle;
  rejoining_ = true;
  obs_rejoin_start();
  catchup_replies_.clear();
  if (cfg_.n == 1) {
    finish_rejoin();
    return;
  }
  const auto req = std::make_shared<CatchupReqMsg>(decided_rounds_);
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    if (p != id()) send(p, req);
  }
}

void FaleiroProcess::finish_rejoin() {
  rejoining_ = false;
  obs_rejoin_done();
  persist();
  if (!crashed()) maybe_begin_proposal();
}

void FaleiroProcess::handle_catchup_req(ProcessId from,
                                        const CatchupReqMsg& m) {
  const Elem decided =
      decisions_.empty() ? Elem() : decisions_.back().value;
  send(from, std::make_shared<CatchupRepMsg>(m.round, decided_rounds_,
                                             accepted_set_, Elem(), decided,
                                             Bytes{}));
}

void FaleiroProcess::handle_catchup_rep(ProcessId from,
                                        const CatchupRepMsg& m) {
  if (!rejoining_) return;
  if (!catchup_replies_.insert(from).second) return;
  // Crash-trust adoption: responders are correct, so their accepted and
  // decided joins contain only values that were actually submitted.
  batcher_.requeue(m.accepted.join(m.decided));
  accepted_set_ = accepted_set_.join(m.accepted);
  const std::uint32_t needed = std::min(cfg_.f + 1, cfg_.n - 1);
  if (catchup_replies_.size() >= needed) finish_rejoin();
}

}  // namespace bgla::la
