#include "la/faleiro_la.h"

namespace bgla::la {

FaleiroProcess::FaleiroProcess(net::Transport& net, ProcessId id,
                               CrashConfig cfg, Elem initial)
    : sim::Process(net, id), cfg_(cfg), pending_(std::move(initial)) {
  cfg_.validate();
  if (!pending_.is_bottom()) submitted_.push_back(pending_);
}

void FaleiroProcess::submit(Elem value) {
  submitted_.push_back(value);
  pending_ = pending_.join(std::move(value));
  if (started_ && state_ == State::kIdle && !crashed()) {
    begin_proposal();
  }
}

bool FaleiroProcess::crashed() const {
  return crash_time_.has_value() && net().now() >= *crash_time_;
}

void FaleiroProcess::on_start() {
  started_ = true;
  if (!pending_.is_bottom()) begin_proposal();
}

void FaleiroProcess::begin_proposal() {
  proposed_set_ = proposed_set_.join(pending_);
  pending_ = Elem();
  state_ = State::kProposing;
  ++ts_;
  ack_set_.clear();
  broadcast_proposal();
}

void FaleiroProcess::broadcast_proposal() {
  send_to_group(cfg_.n, std::make_shared<FAckReqMsg>(proposed_set_, ts_));
}

void FaleiroProcess::on_message(ProcessId from, const sim::MessagePtr& msg) {
  if (crashed()) return;
  if (const auto* m = dynamic_cast<const SubmitMsg*>(msg.get())) {
    submit(m->value);
  } else if (const auto* m = dynamic_cast<const FAckReqMsg*>(msg.get())) {
    handle_ack_req(from, *m);
  } else if (const auto* m = dynamic_cast<const FAckMsg*>(msg.get())) {
    handle_ack(from, *m);
  } else if (const auto* m = dynamic_cast<const FNackMsg*>(msg.get())) {
    handle_nack(*m);
  }
}

void FaleiroProcess::handle_ack_req(ProcessId from, const FAckReqMsg& m) {
  if (accepted_set_.leq(m.proposal)) {
    accepted_set_ = m.proposal;
    send(from, std::make_shared<FAckMsg>(accepted_set_, m.ts));
  } else {
    send(from, std::make_shared<FNackMsg>(accepted_set_, m.ts));
    accepted_set_ = accepted_set_.join(m.proposal);
  }
}

void FaleiroProcess::handle_ack(ProcessId from, const FAckMsg& m) {
  if (state_ != State::kProposing || m.ts != ts_) return;
  ack_set_.insert(from);
  if (ack_set_.size() >= cfg_.quorum()) decide();
}

void FaleiroProcess::handle_nack(const FNackMsg& m) {
  if (state_ != State::kProposing || m.ts != ts_) return;
  const Elem merged = proposed_set_.join(m.accepted);
  if (merged != proposed_set_) {
    proposed_set_ = merged;
    ++ts_;
    ++stats_.refinements;
    ack_set_.clear();
    broadcast_proposal();
  }
}

void FaleiroProcess::decide() {
  DecisionRecord rec;
  rec.value = proposed_set_;
  rec.time = net().now();
  rec.depth = net().current_depth();
  rec.round = decided_rounds_++;
  decisions_.push_back(rec);
  state_ = State::kIdle;
  if (decide_hook_) decide_hook_(*this, rec);
  if (!pending_.is_bottom() && !crashed()) begin_proposal();
}

}  // namespace bgla::la
