// Crash-stop (Generalized) Lattice Agreement — Faleiro, Rajamani, Rajan,
// Ramalingam, Vaswani, "Generalized lattice agreement", PODC 2012.
//
// This is the titled paper's algorithm and the crash-fault baseline that
// the Byzantine WTS/GWTS deciding phase extends ("The Deciding Phase is an
// extension of the algorithm described in [2] with a Byzantine quorum and
// additional checks", §5). Proposer/acceptor ack-nack refinement with a
// majority quorum ⌊n/2⌋+1, plain (unauthenticated-content) broadcast, no
// disclosure phase and no SAFE() filtering — correct under crash faults
// with n ≥ 2f+1, and demonstrably NOT Byzantine tolerant (bench T7 shows a
// Comparability violation with a single Byzantine acceptor at n = 3).
//
// Generalized operation: submitted values are batched; each batch is
// proposed as soon as the previous proposal decided (the PODC'12 "buffered
// values" scheme).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "la/batcher.h"
#include "la/config.h"
#include "la/messages.h"
#include "la/record.h"
#include "la/recovery.h"
#include "sim/network.h"

namespace bgla::la {

class FaleiroProcess : public sim::Process {
 public:
  enum class State { kIdle, kProposing };

  FaleiroProcess(net::Transport& net, ProcessId id, CrashConfig cfg,
                 Elem initial = Elem());

  /// Buffers a value; proposed with the next batch. Also reachable via an
  /// injected SubmitMsg (harness / client feed). A full ingress queue
  /// (cfg.batch.max_queue) drops the value silently; try_submit() reports
  /// the rejection instead.
  void submit(Elem value);

  /// Like submit(), but returns false iff the ingress queue is full (the
  /// value is NOT retained; retry later). `ctx` is an optional span
  /// context carried in from the wire (RSM update path); when spans are
  /// enabled and none is given, a fresh root trace is minted here.
  bool try_submit(Elem value, obs::TraceContext ctx = {});

  const std::vector<Elem>& submitted() const { return submitted_; }
  const Batcher& batcher() const { return batcher_; }

  /// Crash-stop fault injection: the process ignores everything and sends
  /// nothing from simulation time `t` on.
  void crash_at(sim::Time t) { crash_time_ = t; }

  void on_start() override;
  void on_message(ProcessId from, const sim::MessagePtr& msg) override;

  // ---- observation interface ----
  State state() const { return state_; }
  bool crashed() const;
  const std::vector<DecisionRecord>& decisions() const { return decisions_; }
  const Elem& proposed_set() const { return proposed_set_; }
  const Elem& accepted_set() const { return accepted_set_; }
  const ProposerStats& stats() const { return stats_; }

  using DecideHook = std::function<void(const FaleiroProcess&,
                                        const DecisionRecord&)>;
  void set_decide_hook(DecideHook hook) { decide_hook_ = std::move(hook); }

  // ---- crash-recovery interface (see la/recovery.h) ----

  /// Serializes everything a restarted replica needs to rejoin.
  void export_state(Encoder& enc) const;
  /// Loads an export_state() blob into a freshly constructed process;
  /// must run before the transport starts. Throws CheckError on a
  /// malformed blob or a protocol/version mismatch.
  void import_state(Decoder& dec);
  /// Invoked after every transition that must survive a crash; the host
  /// appends export_state() to its WAL from inside the hook.
  void set_persist_hook(std::function<void()> hook) {
    persist_hook_ = std::move(hook);
  }
  bool recovered() const { return recovered_; }

  /// Decided-prefix compaction (see GwtsProcess::compact_decided_prefix):
  /// folds decided submissions into one join entry and drops superseded
  /// decision records, keeping `keep_tail` trailing records. Returns the
  /// number of records folded.
  std::size_t compact_decided_prefix(std::size_t keep_tail = 1);
  std::uint64_t folded_submitted() const { return folded_submitted_; }
  std::uint64_t folded_decisions() const { return folded_decisions_; }

 private:
  /// Starts a proposal iff idle and the batcher releases a batch (the
  /// PODC'12 buffered-values scheme: the next batch goes out as soon as
  /// the previous proposal decided).
  void maybe_begin_proposal();
  void broadcast_proposal();
  void handle_ack_req(ProcessId from, const FAckReqMsg& m);
  void handle_ack(ProcessId from, const FAckMsg& m);
  void handle_nack(const FNackMsg& m);
  void decide();
  void persist() {
    if (persist_hook_) persist_hook_();
  }
  void rejoin();
  void finish_rejoin();
  void handle_catchup_req(ProcessId from, const CatchupReqMsg& m);
  void handle_catchup_rep(ProcessId from, const CatchupRepMsg& m);

  CrashConfig cfg_;
  State state_ = State::kIdle;
  Batcher batcher_;
  std::vector<Elem> submitted_;
  Elem proposed_set_;
  Elem accepted_set_;
  std::uint64_t ts_ = 0;
  std::set<ProcessId> ack_set_;
  std::vector<DecisionRecord> decisions_;
  std::optional<sim::Time> crash_time_;
  ProposerStats stats_;
  std::uint64_t decided_rounds_ = 0;
  bool started_ = false;
  DecideHook decide_hook_;

  // Causal span state: each command owns a submit trace that rides the
  // batcher; the in-flight proposal owns a per-round trace.
  obs::TraceContext round_ctx_;
  std::uint64_t round_start_us_ = 0;
  std::uint64_t round_propose_us_ = 0;

  // Crash-recovery state.
  std::function<void()> persist_hook_;
  bool recovered_ = false;
  bool rejoining_ = false;
  std::set<ProcessId> catchup_replies_;
  // Decided-prefix compaction accounting (v3 state format).
  std::uint64_t folded_submitted_ = 0;
  std::uint64_t folded_decisions_ = 0;
};

}  // namespace bgla::la
