#include "la/gsbs.h"

#include <algorithm>

#include "la/decode.h"
#include "lattice/codec.h"

namespace bgla::la {

GsbsProcess::GsbsProcess(net::Transport& net, ProcessId id, LaConfig cfg,
                         const crypto::SignatureAuthority& auth)
    : sim::Process(net, id),
      cfg_(cfg),
      auth_(auth),
      signer_(auth.signer_for(id)),
      batcher_(cfg.batch) {
  cfg_.validate();
}

void GsbsProcess::submit(Elem value) { (void)try_submit(std::move(value)); }

bool GsbsProcess::try_submit(Elem value, obs::TraceContext ctx) {
  BGLA_CHECK_MSG(cfg_.admissible(value), "GSbS: submitted value ∉ E");
  if (obs_spans() && !ctx.valid()) ctx = obs_new_trace();
  const std::uint64_t wall = ctx.valid() ? obs_steady_us() : 0;
  if (!batcher_.offer(value, net().now(), ctx, wall)) {
    obs_backpressure();
    obs_child_span("backpressure", ctx, /*dur_us=*/0);
    return false;
  }
  obs_span("submit", ctx, /*parent=*/0, /*dur_us=*/0);
  submitted_.push_back(std::move(value));
  obs_submit(1);
  persist();
  maybe_preinit();  // pipelining: mid-round arrivals pre-send their init
  return true;
}

void GsbsProcess::on_start() {
  BGLA_CHECK(!started_);
  started_ = true;
  if (recovered_) {
    rejoin();
    return;
  }
  start_round();
}

void GsbsProcess::start_round() {
  if (in_round_) {
    ++round_;
  } else {
    in_round_ = true;
  }
  state_ = State::kInit;
  refinements_this_round_ = 0;
  ++stats_.rounds_joined;
  obs_round_advance(round_);
  if (obs_spans()) {
    round_ctx_ = obs_new_trace();
    round_start_us_ = obs_steady_us();
  }

  // A pipelined pre-init for this round already went out with its signed
  // batch; reuse it verbatim (the signature binds batch and round — a
  // fresh signature over a different batch would look like equivocation).
  SignedBatch own;
  bool already_sent = false;
  if (const auto it = presigned_.find(round_); it != presigned_.end()) {
    own = it->second;
    presigned_.erase(it);
    already_sent = true;
  } else {
    std::vector<Batcher::Flushed> flushed;
    Elem b = batcher_.take(net().now(), obs_spans() ? &flushed : nullptr);
    if (!b.is_bottom()) {
      obs_batch_flush(batcher_.stats().last_batch_size, batcher_.depth());
      for (const Batcher::Flushed& f : flushed) {
        const std::uint64_t waited =
            f.wall_us != 0 && round_start_us_ > f.wall_us
                ? round_start_us_ - f.wall_us
                : 0;
        obs_child_span("enqueue", f.ctx, waited, "round", round_);
      }
    }
    own = make_signed_batch(signer_, b, round_);
  }
  init_sets_[round_].insert(own);
  init_high_ = std::max(init_high_, round_);
  safe_ack_senders_.clear();
  safe_acks_.clear();
  // The signature above binds (batch, round_); round_ must be durable
  // before it leaves, or a restart could re-sign a different batch at the
  // same round — indistinguishable from equivocation to peers.
  persist();
  if (!already_sent) send_to_group(cfg_.n, std::make_shared<GSInitMsg>(own));

  maybe_start_safetying();  // n−f inits for this round may already be in
  drain_waiting();
}

void GsbsProcess::on_message(ProcessId from, const sim::MessagePtr& msg) {
  if (const auto* m = dynamic_cast<const GSInitMsg*>(msg.get())) {
    handle_init(*m);
  } else if (const auto* m = dynamic_cast<const GSSafeReqMsg*>(msg.get())) {
    handle_safe_req(from, *m);
  } else if (const auto* m = dynamic_cast<const GSSafeAckMsg*>(msg.get())) {
    handle_safe_ack(from, *m, msg);
  } else if (const auto* m = dynamic_cast<const GSAckReqMsg*>(msg.get())) {
    if (m->round > trusted_) {
      waiting_.emplace_back(from, msg);  // round not yet trusted
    } else {
      handle_ack_req(from, *m);
    }
  } else if (const auto* m = dynamic_cast<const GSAckMsg*>(msg.get())) {
    handle_ack(from, *m, msg);
  } else if (const auto* m = dynamic_cast<const GSNackMsg*>(msg.get())) {
    if (state_ == State::kProposing && m->ts == ts_ && m->round == round_) {
      obs_nack(from);
    }
    handle_nack(*m);
  } else if (dynamic_cast<const GSDecidedMsg*>(msg.get()) != nullptr) {
    handle_cert(msg);
  } else if (const auto* m = dynamic_cast<const SubmitMsg*>(msg.get())) {
    if (cfg_.admissible(m->value) &&
        !try_submit(m->value, msg->trace_ctx()) && from != id()) {
      auto nack = std::make_shared<SubmitNackMsg>(
          m->value, /*retry_after=*/batcher_.depth(), id());
      if (msg->trace_ctx().valid()) nack->set_trace_ctx(msg->trace_ctx());
      send(from, nack);
    }
  } else if (const auto* m = dynamic_cast<const CatchupReqMsg*>(msg.get())) {
    handle_catchup_req(from, *m);
  } else if (const auto* m = dynamic_cast<const CatchupRepMsg*>(msg.get())) {
    handle_catchup_rep(from, *m);
  }
}

void GsbsProcess::handle_init(const GSInitMsg& m) {
  if (!m.sb.verify(auth_)) return;
  if (!cfg_.admissible(m.sb.value)) return;
  auto& set = init_sets_[m.sb.round];
  set.insert(m.sb);
  set.remove_conflicts(auth_);
  if (m.sb.round == round_) maybe_start_safetying();
}

void GsbsProcess::maybe_start_safetying() {
  if (state_ != State::kInit || !started_ || rejoining_) return;
  const auto it = init_sets_.find(round_);
  if (it == init_sets_.end() ||
      it->second.size() < cfg_.disclosure_threshold()) {
    return;
  }
  my_safety_set_ = it->second;  // snapshot
  state_ = State::kSafetying;
  safe_ack_senders_.clear();
  safe_acks_.clear();
  send_to_group(cfg_.n,
                std::make_shared<GSSafeReqMsg>(my_safety_set_, round_));
}

void GsbsProcess::handle_safe_req(ProcessId from, const GSSafeReqMsg& m) {
  // Acceptor role; always active, any round.
  for (const auto& [k, sb] : m.set.entries()) {
    if (k.round != m.round || !sb.verify(auth_)) return;
  }
  SignedBatchSet& candidates = safe_candidates_[m.round];
  const SignedBatchSet combined = m.set.unioned(candidates);
  auto conflicts = combined.conflicts(auth_);
  const crypto::Signature sig = signer_.sign(
      GSSafeAckMsg::signed_payload(m.set, conflicts, id(), m.round));
  SignedBatchSet cleaned = combined;
  cleaned.remove_conflicts(auth_);
  candidates = candidates.unioned(cleaned);
  // The signed safe_ack below commits this conflict knowledge: the proof
  // of safety built on it assumes we keep remembering these batches across
  // a crash (else two conflicting batches could each gather clean acks).
  persist();
  send(from, std::make_shared<GSSafeAckMsg>(m.set, std::move(conflicts),
                                            id(), m.round, sig));
}

void GsbsProcess::handle_safe_ack(ProcessId from, const GSSafeAckMsg& m,
                                  const sim::MessagePtr& self) {
  if (state_ != State::kSafetying || m.round != round_) return;
  if (m.acceptor != from || !m.verify(auth_)) return;
  if (!m.rcvd.same_as(my_safety_set_)) return;
  for (const auto& [x, y] : m.conflicts) {
    if (!batches_conflict(x, y, auth_)) return;  // fabricated conflict
  }
  verified_acks_.insert(m.digest());
  if (safe_ack_senders_.insert(from).second) {
    safe_acks_.push_back(std::static_pointer_cast<const GSSafeAckMsg>(self));
  }
  maybe_start_proposing();
}

void GsbsProcess::maybe_start_proposing() {
  if (state_ != State::kSafetying) return;
  if (safe_acks_.size() < cfg_.quorum()) return;

  for (const auto& [k, sb] : my_safety_set_.entries()) {
    bool conflicted = false;
    for (const GSafeAckPtr& ack : safe_acks_) {
      if (ack->mentions_conflict(k)) {
        conflicted = true;
        break;
      }
    }
    if (!conflicted) proposed_.insert(SafeBatch{sb, safe_acks_});
  }
  state_ = State::kProposing;
  ack_senders_.clear();
  collected_acks_.clear();
  ++ts_;
  persist();
  broadcast_proposal();
  maybe_preinit();
  check_cert_adoption();  // a certificate for this round may already exist
}

void GsbsProcess::maybe_preinit() {
  // Pre-sending an init is safe: receivers just file it under
  // init_sets_[r+1] until they enter round r+1 — the overlap saves them a
  // round trip before reaching their n−f init threshold.
  if (!cfg_.batch.pipeline || state_ != State::kProposing || !started_ ||
      rejoining_) {
    return;
  }
  const std::uint64_t next = round_ + 1;
  if (presigned_.count(next) > 0) return;  // round already signed
  std::vector<Batcher::Flushed> flushed;
  const Elem b =
      batcher_.take(net().now(), obs_spans() ? &flushed : nullptr);
  if (b.is_bottom()) return;
  obs_batch_flush(batcher_.stats().last_batch_size, batcher_.depth());
  if (obs_spans()) {
    const std::uint64_t now = obs_steady_us();
    for (const Batcher::Flushed& f : flushed) {
      const std::uint64_t waited =
          f.wall_us != 0 && now > f.wall_us ? now - f.wall_us : 0;
      obs_child_span("enqueue", f.ctx, waited, "round", next);
    }
  }
  const SignedBatch own = make_signed_batch(signer_, b, next);
  presigned_[next] = own;
  init_high_ = std::max(init_high_, next);
  // init_high_ must be durable before the init leaves: a restart may
  // never re-sign at a round whose signature is already in the network.
  persist();
  send_to_group(cfg_.n, std::make_shared<GSInitMsg>(own));
}

void GsbsProcess::broadcast_proposal() {
  obs_propose(/*proposal=*/round_, round_);
  auto req = std::make_shared<GSAckReqMsg>(proposed_, ts_, round_);
  if (round_ctx_.valid()) {
    round_propose_us_ = obs_steady_us();
    req->set_trace_ctx(round_ctx_);  // before the first encode
  }
  send_to_group(cfg_.n, req);
}

bool GsbsProcess::all_safe(const SafeBatchSet& set, const LaConfig& cfg,
                           const crypto::SignatureAuthority& auth,
                           std::set<crypto::Digest>* verified_acks,
                           std::uint64_t* skipped) {
  for (const auto& [k, sb] : set.entries()) {
    if (!cfg.admissible(sb.b.value) || !sb.b.verify(auth)) return false;
    if (sb.proof.size() < cfg.quorum()) return false;
    std::set<ProcessId> senders;
    for (const GSafeAckPtr& ack : sb.proof) {
      if (ack == nullptr) return false;
      if (verified_acks != nullptr &&
          verified_acks->count(ack->digest()) > 0) {
        if (skipped != nullptr) ++*skipped;
      } else {
        if (!ack->verify(auth)) return false;
        if (verified_acks != nullptr) verified_acks->insert(ack->digest());
      }
      if (ack->round != k.round) return false;
      if (!senders.insert(ack->acceptor).second) return false;
      if (!ack->rcvd.contains(k)) return false;
      if (ack->mentions_conflict(k)) return false;
    }
  }
  return true;
}

void GsbsProcess::handle_ack_req(ProcessId from, const GSAckReqMsg& m) {
  if (!all_safe(m.proposal, cfg_, auth_, &verified_acks_,
                &stats_.verifies_skipped)) {
    return;
  }
  // The signed ack/nack replies are never stamped (their bytes feed the
  // DECIDED certificate); the acceptor-side span is the evidence instead.
  obs_child_span("ack", m.trace_ctx(), /*dur_us=*/0, "peer", from);
  if (accepted_.leq(m.proposal)) {
    accepted_ = m.proposal;
    const crypto::Digest fp = accepted_.fingerprint();
    const crypto::Signature sig = signer_.sign(
        GSAckMsg::signed_payload(fp, from, m.ts, m.round));
    persist();  // the signed ack below is a promise; it must survive a crash
    send(from, std::make_shared<GSAckMsg>(fp, from, m.ts, m.round, sig));
  } else {
    send(from, std::make_shared<GSNackMsg>(accepted_, m.ts, m.round));
    accepted_ = accepted_.unioned(m.proposal);
    persist();
  }
}

void GsbsProcess::handle_ack(ProcessId from, const GSAckMsg& m,
                             const sim::MessagePtr& self) {
  if (state_ != State::kProposing || m.ts != ts_ || m.round != round_) {
    return;
  }
  if (m.destination != id() || m.acceptor() != from) return;
  if (m.fp != proposed_.fingerprint()) return;
  if (!m.verify(auth_)) return;
  if (!ack_senders_.insert(from).second) return;
  obs_ack(from);
  collected_acks_.push_back(std::static_pointer_cast<const GSAckMsg>(self));
  if (collected_acks_.size() < cfg_.quorum()) return;

  // Assemble and publish the DECIDED certificate, then decide.
  const auto cert = std::make_shared<GSDecidedMsg>(
      proposed_, id(), ts_, round_, collected_acks_);
  send_to_group(cfg_.n, cert);
  // Local effect happens when our own copy arrives through handle_cert
  // (self-delivery is immediate); but decide now for depth fidelity.
  if (decided_.leq(proposed_)) decide_with(proposed_);
}

void GsbsProcess::handle_nack(const GSNackMsg& m) {
  if (state_ != State::kProposing || m.ts != ts_ || m.round != round_) {
    return;
  }
  if (!all_safe(m.accepted, cfg_, auth_, &verified_acks_,
                &stats_.verifies_skipped)) {
    return;
  }
  const SafeBatchSet merged = m.accepted.unioned(proposed_);
  if (merged.same_as(proposed_)) return;
  proposed_ = merged;
  ack_senders_.clear();
  collected_acks_.clear();
  ++ts_;
  ++stats_.refinements;
  ++refinements_this_round_;
  stats_.max_round_refinements =
      std::max(stats_.max_round_refinements, refinements_this_round_);
  obs_refine(/*proposal=*/round_, refinements_this_round_);
  persist();
  broadcast_proposal();
}

void GsbsProcess::handle_cert(const sim::MessagePtr& msg) {
  const auto cert = std::static_pointer_cast<const GSDecidedMsg>(msg);
  if (!cert->well_formed(auth_, cfg_.quorum())) return;
  if (!all_safe(cert->set, cfg_, auth_, &verified_acks_,
                &stats_.verifies_skipped)) {
    return;
  }
  certs_.emplace(cert->round, cert);

  // Round trust advances sequentially through certificates (§8.2: trust r
  // only having trusted r−1 and seen r−1 terminate).
  bool advanced = false;
  while (certs_.count(trusted_) > 0) {
    ++trusted_;
    advanced = true;
  }
  persist();  // trusted_ and the latest certificate are durable state
  if (advanced) drain_waiting();
  check_cert_adoption();
}

void GsbsProcess::check_cert_adoption() {
  if (state_ != State::kProposing) return;
  const auto it = certs_.find(round_);
  if (it == certs_.end()) return;
  const auto& cert = it->second;
  if (!decided_.leq(cert->set)) return;
  proposed_ = proposed_.unioned(cert->set);
  decide_with(cert->set);
}

void GsbsProcess::drain_waiting() {
  std::deque<std::pair<ProcessId, sim::MessagePtr>> still;
  while (!waiting_.empty()) {
    auto [from, msg] = waiting_.front();
    waiting_.pop_front();
    const auto* m = static_cast<const GSAckReqMsg*>(msg.get());
    if (m->round > trusted_) {
      still.emplace_back(from, msg);
    } else {
      handle_ack_req(from, *m);
    }
  }
  waiting_ = std::move(still);
}

void GsbsProcess::decide_with(const SafeBatchSet& set) {
  DecisionRecord rec;
  rec.value = set.join_values();
  rec.time = net().now();
  rec.depth = net().current_depth();
  rec.round = round_;
  decisions_.push_back(rec);
  decided_ = set;
  obs_decide(/*proposal=*/round_, round_, refinements_this_round_);
  if (round_ctx_.valid()) {
    const std::uint64_t now = obs_steady_us();
    obs_span("round", round_ctx_, /*parent=*/0, now - round_start_us_,
             "round", round_);
    obs_child_span("quorum", round_ctx_,
                   round_propose_us_ != 0 && now > round_propose_us_
                       ? now - round_propose_us_
                       : 0);
    round_ctx_ = obs::TraceContext{};
  }
  persist();
  if (decide_hook_) decide_hook_(*this, rec);
  start_round();
}

std::map<ProcessId, Elem> GsbsProcess::proposed_by() const {
  std::map<ProcessId, Elem> out;
  for (const auto& [k, sb] : proposed_.entries()) {
    auto& slot = out[k.signer];
    slot = slot.join(sb.b.value);
  }
  return out;
}

// ------------------------------------------------------ crash recovery ----

void GsbsProcess::export_state(Encoder& enc) const {
  put_state_header(enc, StateTag::kGsbs);
  enc.put_u8(static_cast<std::uint8_t>(state_));
  enc.put_u64(round_);
  enc.put_u64(ts_);
  enc.put_u64(trusted_);
  enc.put_bool(in_round_);
  batcher_.pending_join().encode(enc);
  enc.put_varint(folded_submitted_);
  enc.put_varint(folded_decisions_);
  encode_elems(enc, submitted_);
  my_safety_set_.encode(enc);
  proposed_.encode(enc);
  decided_.encode(enc);
  accepted_.encode(enc);
  // Acceptor conflict memory: the safe_acks we signed assume we keep
  // remembering the batches they were judged against (Lemma 13's analog
  // needs acceptors to report conflicts across separate safe_reqs).
  enc.put_varint(safe_candidates_.size());
  for (const auto& [r, set] : safe_candidates_) {
    enc.put_u64(r);
    set.encode(enc);
  }
  encode_decisions(enc, decisions_);
  const bool has_cert = !certs_.empty();
  enc.put_bool(has_cert);
  if (has_cert) {
    enc.put_bytes(BytesView(certs_.rbegin()->second->encoded()));
  }
  enc.put_u64(init_high_);
}

void GsbsProcess::import_state(Decoder& dec) {
  BGLA_CHECK_MSG(!started_, "GSbS: import_state after start");
  const std::uint32_t version = check_state_header(dec, StateTag::kGsbs);
  const std::uint8_t st = dec.get_u8();
  BGLA_CHECK_MSG(st <= static_cast<std::uint8_t>(State::kProposing),
                 "GSbS: bad persisted state " << static_cast<int>(st));
  state_ = static_cast<State>(st);
  round_ = dec.get_u64();
  ts_ = dec.get_u64();
  trusted_ = dec.get_u64();
  in_round_ = dec.get_bool();
  const Elem pending = lattice::decode_elem(dec);
  if (!pending.is_bottom()) batcher_.requeue(pending);
  if (version >= 3) {
    folded_submitted_ = dec.get_varint();
    folded_decisions_ = dec.get_varint();
  }
  submitted_ = decode_elems(dec);
  my_safety_set_ = decode_signed_batch_set(dec);
  proposed_ = decode_safe_batch_set(dec);
  decided_ = decode_safe_batch_set(dec);
  accepted_ = decode_safe_batch_set(dec);
  const std::uint64_t num_rounds = dec.get_varint();
  BGLA_CHECK_MSG(num_rounds <= dec.remaining(),
                 "GSbS: candidate round count exceeds remaining bytes");
  safe_candidates_.clear();
  for (std::uint64_t i = 0; i < num_rounds; ++i) {
    const std::uint64_t r = dec.get_u64();
    safe_candidates_[r] = decode_signed_batch_set(dec);
  }
  decisions_ = decode_decisions(dec);
  if (dec.get_bool()) {
    const Bytes blob = dec.get_bytes();
    const auto cert = decode_gs_decided_blob(BytesView(blob));
    BGLA_CHECK_MSG(cert->well_formed(auth_, cfg_.quorum()),
                   "GSbS: persisted certificate fails verification");
    certs_.emplace(cert->round, cert);
  }
  init_high_ = dec.get_u64();
  recovered_ = true;
}

std::size_t GsbsProcess::compact_decided_prefix(std::size_t keep_tail) {
  std::size_t folded = 0;
  // Decisions are monotone: the newest retained record is the join of
  // everything dropped before it, so the chain stays self-contained.
  if (decisions_.size() > keep_tail + 1) {
    const std::size_t drop = decisions_.size() - (keep_tail + 1);
    decisions_.erase(decisions_.begin(),
                     decisions_.begin() + static_cast<std::ptrdiff_t>(drop));
    folded_decisions_ += drop;
    folded += drop;
  }
  const Elem decided =
      decisions_.empty() ? Elem() : decisions_.back().value;
  if (!submitted_.empty() && !decided.is_bottom()) {
    std::size_t prefix = 0;
    Elem join;
    while (prefix < submitted_.size() && submitted_[prefix].leq(decided)) {
      join = join.join(submitted_[prefix]);
      ++prefix;
    }
    // Inclusivity survives the fold: each folded submission ≤ the join,
    // and the join ≤ the decided frontier.
    if (prefix > 1) {
      submitted_.erase(submitted_.begin(),
                       submitted_.begin() + static_cast<std::ptrdiff_t>(prefix));
      submitted_.insert(submitted_.begin(), std::move(join));
      folded_submitted_ += prefix - 1;
      folded += prefix - 1;
    }
  }
  return folded;
}

void GsbsProcess::rejoin() {
  // Re-batch everything this process ever submitted: join is idempotent,
  // so re-proposing already-decided values is harmless, while a batch that
  // died with the crashed round would otherwise be lost. The refold
  // bypasses the queue bound (dropping a pre-crash submission breaks
  // inclusivity).
  Elem refold = batcher_.drain_all();
  for (const Elem& v : submitted_) {
    refold = refold.join(v);
  }
  if (!refold.is_bottom()) batcher_.requeue(refold);
  state_ = State::kInit;
  rejoining_ = true;
  obs_rejoin_start();
  catchup_replies_.clear();
  catchup_frontier_ = round_;
  if (cfg_.n == 1) {
    finish_rejoin();
    return;
  }
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    if (p != id()) send(p, std::make_shared<CatchupReqMsg>(round_));
  }
}

void GsbsProcess::finish_rejoin() {
  rejoining_ = false;
  obs_rejoin_done();
  // SignedBatch signatures bind the round: re-signing a different batch at
  // a round we already used would look like equivocation. Jump strictly
  // above our own disk round and every peer-reported frontier so the next
  // start_round() signs at a never-used round.
  const std::uint64_t jump =
      std::max({round_, catchup_frontier_, trusted_, init_high_}) + 1;
  round_ = jump - 1;  // start_round() advances to `jump` (in_round_ holds)
  in_round_ = true;
  start_round();
}

void GsbsProcess::handle_catchup_req(ProcessId from, const CatchupReqMsg& m) {
  Bytes cert_blob;
  if (!certs_.empty()) cert_blob = certs_.rbegin()->second->encoded();
  send(from, std::make_shared<CatchupRepMsg>(
                 m.round, round_, accepted_.join_values(), Elem(),
                 decided_.join_values(), std::move(cert_blob)));
}

void GsbsProcess::handle_catchup_rep(ProcessId from, const CatchupRepMsg& m) {
  if (!rejoining_) return;
  if (!catchup_replies_.insert(from).second) return;
  catchup_frontier_ = std::max(catchup_frontier_, m.frontier);
  if (!m.cert.empty()) {
    try {
      const auto cert = decode_gs_decided_blob(BytesView(m.cert));
      if (cert->well_formed(auth_, cfg_.quorum()) &&
          all_safe(cert->set, cfg_, auth_, &verified_acks_,
                   &stats_.verifies_skipped)) {
        certs_.emplace(cert->round, cert);
        // Crash-recovery trust: the certificate is self-verifying, so it
        // justifies trusting every round up to it even though the
        // sequential cert chain died with the crash. Byzantine-hardened
        // state transfer is a ROADMAP item.
        trusted_ = std::max(trusted_, cert->round + 1);
        catchup_frontier_ = std::max(catchup_frontier_, cert->round + 1);
      }
    } catch (const CheckError&) {
      // Malformed certificate from a (possibly Byzantine) peer: ignore.
    }
  }
  const std::uint64_t threshold =
      std::min<std::uint64_t>(cfg_.f + 1, cfg_.n - 1);
  if (catchup_replies_.size() >= threshold) {
    finish_rejoin();
    drain_waiting();  // newly trusted rounds may unblock queued ack_reqs
  }
}

}  // namespace bgla::la
