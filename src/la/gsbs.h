// GSbS — generalised Safety by Signature (paper §8.2).
//
// Round-based Generalized Lattice Agreement without any reliable
// broadcast. Each round runs the SbS init/safetying/proposing pipeline on
// the round's batches, with two §8.2 substitutions for GWTS's reliably
// broadcast acks:
//   (1) acceptor acks are *signed* point-to-point messages, so a proposer
//       can prove to third parties that its proposal was accepted;
//   (2) before deciding, a proposer broadcasts a DECIDED certificate
//       carrying the ⌊(n+f)/2⌋+1 signed acks; a well-formed certificate
//       for round r is every process's evidence that r legitimately ended,
//       so acceptors advance their round trust through certificates
//       instead of reliably-broadcast ack quorums.
//
// Message complexity per decision per proposer: O(f·n) (§8.2), vs GWTS's
// O(f·n²) — bench T4/T6 measure exactly this gap.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "la/batcher.h"
#include "la/config.h"
#include "la/gsbs_msgs.h"
#include "la/messages.h"
#include "la/record.h"
#include "la/recovery.h"
#include "sim/network.h"

namespace bgla::la {

class GsbsProcess : public sim::Process {
 public:
  enum class State { kInit, kSafetying, kProposing };

  GsbsProcess(net::Transport& net, ProcessId id, LaConfig cfg,
              const crypto::SignatureAuthority& auth);

  /// "new value(v)": batched into the next round. A full ingress queue
  /// (cfg.batch.max_queue) drops the value silently; try_submit() reports
  /// the rejection instead.
  void submit(Elem value);

  /// Like submit(), but returns false iff the ingress queue is full (the
  /// value is NOT retained; retry later). `ctx` is an optional span
  /// context carried in from the wire (RSM update path); when spans are
  /// enabled and none is given, a fresh root trace is minted here.
  bool try_submit(Elem value, obs::TraceContext ctx = {});

  void on_start() override;
  void on_message(ProcessId from, const sim::MessagePtr& msg) override;

  // ---- observation interface ----
  State state() const { return state_; }
  std::uint64_t round() const { return round_; }
  std::uint64_t trusted_round() const { return trusted_; }
  const std::vector<DecisionRecord>& decisions() const { return decisions_; }
  const std::vector<Elem>& submitted() const { return submitted_; }
  const ProposerStats& stats() const { return stats_; }
  const Batcher& batcher() const { return batcher_; }

  /// Per-signer union of everything that made it into this process's
  /// proposals (proof-backed), for Non-Triviality attribution.
  std::map<ProcessId, Elem> proposed_by() const;

  using DecideHook = std::function<void(const GsbsProcess&,
                                        const DecisionRecord&)>;
  void set_decide_hook(DecideHook hook) { decide_hook_ = std::move(hook); }

  /// AllSafe over proof-carrying batches. When `verified_acks` is given,
  /// acks whose message digest is already in the set skip the signature
  /// check (the digest covers payload and signature; only verified acks
  /// are inserted); `skipped` counts the checks avoided.
  static bool all_safe(const SafeBatchSet& set, const LaConfig& cfg,
                       const crypto::SignatureAuthority& auth,
                       std::set<crypto::Digest>* verified_acks = nullptr,
                       std::uint64_t* skipped = nullptr);

  // ---- crash-recovery interface (see la/recovery.h) ----
  //
  // Persists the proof-carrying sets (through the canonical la/decode.h
  // encodings), the acceptor's per-round conflict memory, and the latest
  // DECIDED certificate. SignedBatch signatures bind the round number, so
  // a restarted process must never re-sign a different batch at a round it
  // already used — rejoin() therefore jumps to a fresh round strictly
  // above everything on disk and everything reported by catch-up peers,
  // and the self-verifying certificate advances round trust directly.
  void export_state(Encoder& enc) const;
  void import_state(Decoder& dec);
  void set_persist_hook(std::function<void()> hook) {
    persist_hook_ = std::move(hook);
  }
  bool recovered() const { return recovered_; }

  /// Decided-prefix compaction (see GwtsProcess::compact_decided_prefix):
  /// folds decided submissions into one join entry and drops superseded
  /// decision records, keeping `keep_tail` trailing records. Returns the
  /// number of records folded.
  std::size_t compact_decided_prefix(std::size_t keep_tail = 1);
  std::uint64_t folded_submitted() const { return folded_submitted_; }
  std::uint64_t folded_decisions() const { return folded_decisions_; }

 private:
  void start_round();
  void maybe_start_safetying();
  void handle_init(const GSInitMsg& m);
  void handle_safe_req(ProcessId from, const GSSafeReqMsg& m);
  void handle_safe_ack(ProcessId from, const GSSafeAckMsg& m,
                       const sim::MessagePtr& self);
  void maybe_start_proposing();
  /// Pipelining (cfg.batch.pipeline): once this round is proposing,
  /// pre-sign and pre-send the next round's init so its init phase
  /// overlaps the current deciding phase. The signature binds (batch,
  /// round), so the pre-signed batch is recorded and reused verbatim when
  /// the round actually starts.
  void maybe_preinit();
  void broadcast_proposal();
  void handle_ack_req(ProcessId from, const GSAckReqMsg& m);
  void handle_ack(ProcessId from, const GSAckMsg& m,
                  const sim::MessagePtr& self);
  void handle_nack(const GSNackMsg& m);
  void handle_cert(const sim::MessagePtr& msg);
  void check_cert_adoption();
  void drain_waiting();
  void decide_with(const SafeBatchSet& set);
  void persist() {
    if (persist_hook_) persist_hook_();
  }
  void rejoin();
  void finish_rejoin();
  void handle_catchup_req(ProcessId from, const CatchupReqMsg& m);
  void handle_catchup_rep(ProcessId from, const CatchupRepMsg& m);

  LaConfig cfg_;
  const crypto::SignatureAuthority& auth_;
  crypto::Signer signer_;

  State state_ = State::kInit;
  std::uint64_t round_ = 0;
  std::uint64_t ts_ = 0;
  bool in_round_ = false;
  bool started_ = false;

  Batcher batcher_;
  std::vector<Elem> submitted_;

  std::map<std::uint64_t, SignedBatchSet> init_sets_;  // per round
  SignedBatchSet my_safety_set_;                       // current round
  // Pipelined inits already signed+sent for future rounds; the round start
  // reuses the entry verbatim (re-signing a different batch at the same
  // round would look like equivocation).
  std::map<std::uint64_t, SignedBatch> presigned_;
  // Highest round this process ever signed an init at; a rejoin must jump
  // strictly above it.
  std::uint64_t init_high_ = 0;

  std::set<ProcessId> safe_ack_senders_;
  std::vector<GSafeAckPtr> safe_acks_;

  SafeBatchSet proposed_;
  SafeBatchSet decided_;
  std::set<ProcessId> ack_senders_;
  std::vector<std::shared_ptr<const GSAckMsg>> collected_acks_;

  // Acceptor role.
  std::map<std::uint64_t, SignedBatchSet> safe_candidates_;  // per round
  SafeBatchSet accepted_;
  std::uint64_t trusted_ = 0;
  std::map<std::uint64_t, std::shared_ptr<const GSDecidedMsg>> certs_;

  // Digests of safe_acks this process has already verified; proofs are
  // re-checked on every ack_req/nack/cert, so each ack is MAC-checked once.
  std::set<crypto::Digest> verified_acks_;

  std::deque<std::pair<ProcessId, sim::MessagePtr>> waiting_;
  std::vector<DecisionRecord> decisions_;
  ProposerStats stats_;
  std::uint64_t refinements_this_round_ = 0;
  DecideHook decide_hook_;

  // Causal span state: command traces ride the batcher; each round owns a
  // per-round trace (see gwts.h).
  obs::TraceContext round_ctx_;
  std::uint64_t round_start_us_ = 0;
  std::uint64_t round_propose_us_ = 0;

  // Crash-recovery state.
  std::function<void()> persist_hook_;
  bool recovered_ = false;
  bool rejoining_ = false;
  std::set<ProcessId> catchup_replies_;
  std::uint64_t catchup_frontier_ = 0;
  // Decided-prefix compaction accounting (v3 state format).
  std::uint64_t folded_submitted_ = 0;
  std::uint64_t folded_decisions_ = 0;
};

}  // namespace bgla::la
