#include "la/gsbs_msgs.h"

#include <set>
#include <sstream>

namespace bgla::la {

// ------------------------------------------------------------ SignedBatch --

Bytes SignedBatch::signed_payload(const Elem& value, std::uint64_t round) {
  Encoder enc;
  value.encode(enc);
  enc.put_u64(round);
  return enc.take();
}

void SignedBatch::encode(Encoder& enc) const {
  value.encode(enc);
  enc.put_u64(round);
  enc.put_u32(sig.signer);
  enc.put_bytes(BytesView(sig.mac.data(), sig.mac.size()));
}

std::string SignedBatch::to_string() const {
  std::ostringstream os;
  os << value.to_string() << "@p" << sig.signer << "/r" << round;
  return os.str();
}

bool SignedBatch::verify(const crypto::SignatureAuthority& auth) const {
  const Bytes& payload = payload_cache_.encoded(
      [this] { return signed_payload(value, round); });
  const crypto::Digest& digest = payload_cache_.digest(
      [this] { return signed_payload(value, round); });
  return auth.verify_with_digest(sig, digest, payload);
}

SignedBatch make_signed_batch(const crypto::Signer& signer, Elem value,
                              std::uint64_t round) {
  SignedBatch sb;
  sb.sig = signer.sign(SignedBatch::signed_payload(value, round));
  sb.value = std::move(value);
  sb.round = round;
  return sb;
}

bool batches_conflict(const SignedBatch& x, const SignedBatch& y,
                      const crypto::SignatureAuthority& auth) {
  return x.verify(auth) && y.verify(auth) && x.sender() == y.sender() &&
         x.round == y.round && !(x.value == y.value);
}

// --------------------------------------------------------- SignedBatchSet --

bool SignedBatchSet::insert(const SignedBatch& sb) {
  const bool inserted = entries_.emplace(sb.key(), sb).second;
  if (inserted) fp_cache_.reset();
  return inserted;
}

std::vector<std::pair<SignedBatch, SignedBatch>> SignedBatchSet::conflicts(
    const crypto::SignatureAuthority& auth) const {
  std::vector<std::pair<SignedBatch, SignedBatch>> out;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    auto jt = it;
    for (++jt; jt != entries_.end(); ++jt) {
      if (it->first.signer != jt->first.signer) break;
      if (batches_conflict(it->second, jt->second, auth)) {
        out.emplace_back(it->second, jt->second);
      }
    }
  }
  return out;
}

void SignedBatchSet::remove_conflicts(
    const crypto::SignatureAuthority& auth) {
  for (const auto& [x, y] : conflicts(auth)) {
    if (entries_.erase(x.key()) + entries_.erase(y.key()) > 0) {
      fp_cache_.reset();
    }
  }
}

SignedBatchSet SignedBatchSet::unioned(const SignedBatchSet& other) const {
  SignedBatchSet out = *this;
  for (const auto& [k, sb] : other.entries_) {
    if (out.entries_.emplace(k, sb).second) out.fp_cache_.reset();
  }
  return out;
}

crypto::Digest SignedBatchSet::fingerprint() const {
  if (fp_cache_.has_value()) return *fp_cache_;
  Encoder enc;
  enc.put_varint(entries_.size());
  for (const auto& [k, sb] : entries_) {
    enc.put_u32(k.signer);
    enc.put_u64(k.round);
    enc.put_bytes(BytesView(k.value_digest.data(), k.value_digest.size()));
  }
  fp_cache_ = crypto::Sha256::hash(enc.bytes());
  return *fp_cache_;
}

void SignedBatchSet::encode(Encoder& enc) const {
  enc.put_varint(entries_.size());
  for (const auto& [k, sb] : entries_) sb.encode(enc);
}

// ----------------------------------------------------------- SafeBatchSet --

bool SafeBatchSet::insert(const SafeBatch& sb) {
  const bool inserted = entries_.emplace(sb.b.key(), sb).second;
  if (inserted) fp_cache_.reset();
  return inserted;
}

bool SafeBatchSet::leq(const SafeBatchSet& o) const {
  for (const auto& [k, sb] : entries_) {
    if (o.entries_.count(k) == 0) return false;
  }
  return true;
}

SafeBatchSet SafeBatchSet::unioned(const SafeBatchSet& o) const {
  SafeBatchSet out = *this;
  for (const auto& [k, sb] : o.entries_) {
    if (out.entries_.emplace(k, sb).second) out.fp_cache_.reset();
  }
  return out;
}

Elem SafeBatchSet::join_values() const {
  Elem acc;
  for (const auto& [k, sb] : entries_) acc = acc.join(sb.b.value);
  return acc;
}

crypto::Digest SafeBatchSet::fingerprint() const {
  if (fp_cache_.has_value()) return *fp_cache_;
  Encoder enc;
  enc.put_varint(entries_.size());
  for (const auto& [k, sb] : entries_) {
    enc.put_u32(k.signer);
    enc.put_u64(k.round);
    enc.put_bytes(BytesView(k.value_digest.data(), k.value_digest.size()));
  }
  fp_cache_ = crypto::Sha256::hash(enc.bytes());
  return *fp_cache_;
}

void SafeBatchSet::encode(Encoder& enc) const {
  // Dedupe shared proof acks, same rationale as SafeValueSet::encode.
  std::vector<const GSSafeAckMsg*> distinct;
  std::map<const GSSafeAckMsg*, std::size_t> index;
  for (const auto& [k, sb] : entries_) {
    for (const GSafeAckPtr& ack : sb.proof) {
      if (index.emplace(ack.get(), distinct.size()).second) {
        distinct.push_back(ack.get());
      }
    }
  }
  enc.put_varint(distinct.size());
  for (const GSSafeAckMsg* ack : distinct) enc.put_bytes(ack->encoded());
  enc.put_varint(entries_.size());
  for (const auto& [k, sb] : entries_) {
    sb.b.encode(enc);
    enc.put_varint(sb.proof.size());
    for (const GSafeAckPtr& ack : sb.proof) {
      enc.put_varint(index.at(ack.get()));
    }
  }
}

// ------------------------------------------------------------ GSSafeAckMsg --

void GSSafeAckMsg::encode_payload(Encoder& enc) const {
  enc.put_bytes(payload_cache_.encoded(
      [this] { return signed_payload(rcvd, conflicts, acceptor, round); }));
  enc.put_u32(sig.signer);
  enc.put_bytes(BytesView(sig.mac.data(), sig.mac.size()));
}

Bytes GSSafeAckMsg::signed_payload(
    const SignedBatchSet& rcvd,
    const std::vector<std::pair<SignedBatch, SignedBatch>>& conflicts,
    ProcessId acceptor, std::uint64_t round) {
  Encoder enc;
  rcvd.encode(enc);
  enc.put_varint(conflicts.size());
  for (const auto& [x, y] : conflicts) {
    x.encode(enc);
    y.encode(enc);
  }
  enc.put_u32(acceptor);
  enc.put_u64(round);
  return enc.take();
}

bool GSSafeAckMsg::verify(const crypto::SignatureAuthority& auth) const {
  if (sig.signer != acceptor) return false;
  const auto fill = [this] {
    return signed_payload(rcvd, conflicts, acceptor, round);
  };
  return auth.verify_with_digest(sig, payload_cache_.digest(fill),
                                 payload_cache_.encoded(fill));
}

bool GSSafeAckMsg::mentions_conflict(const SignedBatch::Key& k) const {
  for (const auto& [x, y] : conflicts) {
    if (x.key() == k || y.key() == k) return true;
  }
  return false;
}

// --------------------------------------------------------------- GSAckMsg --

void GSAckMsg::encode_payload(Encoder& enc) const {
  enc.put_bytes(payload_cache_.encoded(
      [this] { return signed_payload(fp, destination, ts, round); }));
  enc.put_u32(sig.signer);
  enc.put_bytes(BytesView(sig.mac.data(), sig.mac.size()));
}

Bytes GSAckMsg::signed_payload(const crypto::Digest& fp,
                               ProcessId destination, std::uint64_t ts,
                               std::uint64_t round) {
  Encoder enc;
  enc.put_bytes(BytesView(fp.data(), fp.size()));
  enc.put_u32(destination);
  enc.put_u64(ts);
  enc.put_u64(round);
  return enc.take();
}

bool GSAckMsg::verify(const crypto::SignatureAuthority& auth) const {
  const auto fill = [this] {
    return signed_payload(fp, destination, ts, round);
  };
  return auth.verify_with_digest(sig, payload_cache_.digest(fill),
                                 payload_cache_.encoded(fill));
}

// ----------------------------------------------------------- GSDecidedMsg --

void GSDecidedMsg::encode_payload(Encoder& enc) const {
  set.encode(enc);
  enc.put_u32(decider);
  enc.put_u64(ts);
  enc.put_u64(round);
  enc.put_varint(acks.size());
  for (const auto& ack : acks) enc.put_bytes(ack->encoded());
}

bool GSDecidedMsg::well_formed(const crypto::SignatureAuthority& auth,
                               std::uint32_t quorum) const {
  if (acks.size() < quorum) return false;
  const crypto::Digest expect = set.fingerprint();
  std::set<ProcessId> signers;
  for (const auto& ack : acks) {
    if (ack == nullptr) return false;
    if (ack->fp != expect) return false;
    if (ack->destination != decider) return false;
    if (ack->ts != ts || ack->round != round) return false;
    if (!ack->verify(auth)) return false;
    if (!signers.insert(ack->acceptor()).second) return false;
  }
  return true;
}

}  // namespace bgla::la
