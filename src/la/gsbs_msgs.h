// Wire messages and proof-carrying data of GSbS, the generalised
// signature-based algorithm (paper §8.2, type ids 50..59).
//
// Differences from GWTS: no reliable broadcast anywhere. Disclosure runs
// through the SbS init/safetying machinery with *round-bound* signatures;
// acceptor acks are signed point-to-point messages; a round ends when some
// proposer assembles a DECIDED certificate (⌊(n+f)/2⌋+1 signed acks) and
// broadcasts it — the certificate is independently verifiable, replacing
// the "publicity" that GWTS got from reliably broadcasting acks.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "crypto/signature.h"
#include "lattice/elem.h"
#include "sim/message.h"
#include "util/ids.h"
#include "util/memo.h"

namespace bgla::la {

using lattice::Elem;

/// A batch signed for a specific round (the round is inside the signed
/// payload, so a batch signed for round r cannot be replayed in r' ≠ r).
struct SignedBatch {
  Elem value;
  std::uint64_t round = 0;
  crypto::Signature sig;

  static Bytes signed_payload(const Elem& value, std::uint64_t round);
  bool verify(const crypto::SignatureAuthority& auth) const;
  ProcessId sender() const { return sig.signer; }

  struct Key {
    ProcessId signer = kNoProcess;
    std::uint64_t round = 0;
    crypto::Digest value_digest{};
    auto operator<=>(const Key&) const = default;
  };
  Key key() const { return Key{sig.signer, round, value.digest()}; }

  void encode(Encoder& enc) const;
  std::string to_string() const;

 private:
  // Memoized signed payload (value encoding + round); dropped on copy.
  util::EncodingCache payload_cache_;
};

SignedBatch make_signed_batch(const crypto::Signer& signer, Elem value,
                              std::uint64_t round);

/// Conflict: same signer, same round, different batch.
bool batches_conflict(const SignedBatch& x, const SignedBatch& y,
                      const crypto::SignatureAuthority& auth);

/// Set of signed batches for one round, keyed by (signer, round, digest).
class SignedBatchSet {
 public:
  bool insert(const SignedBatch& sb);
  bool contains(const SignedBatch::Key& k) const {
    return entries_.count(k) > 0;
  }
  std::size_t size() const { return entries_.size(); }
  const std::map<SignedBatch::Key, SignedBatch>& entries() const {
    return entries_;
  }

  std::vector<std::pair<SignedBatch, SignedBatch>> conflicts(
      const crypto::SignatureAuthority& auth) const;
  void remove_conflicts(const crypto::SignatureAuthority& auth);
  SignedBatchSet unioned(const SignedBatchSet& other) const;

  crypto::Digest fingerprint() const;
  bool same_as(const SignedBatchSet& o) const {
    return fingerprint() == o.fingerprint();
  }
  void encode(Encoder& enc) const;

 private:
  std::map<SignedBatch::Key, SignedBatch> entries_;
  mutable std::optional<crypto::Digest> fp_cache_;
};

class GSSafeAckMsg;
using GSafeAckPtr = std::shared_ptr<const GSSafeAckMsg>;

/// A batch with its proof of safety for its round.
struct SafeBatch {
  SignedBatch b;
  std::vector<GSafeAckPtr> proof;
};

/// Cumulative proposal across rounds: proof-carrying batches keyed by
/// (signer, round, digest). Order/equality over the key set.
class SafeBatchSet {
 public:
  bool insert(const SafeBatch& sb);
  bool contains(const SignedBatch::Key& k) const {
    return entries_.count(k) > 0;
  }
  std::size_t size() const { return entries_.size(); }
  const std::map<SignedBatch::Key, SafeBatch>& entries() const {
    return entries_;
  }
  bool leq(const SafeBatchSet& o) const;
  bool same_as(const SafeBatchSet& o) const {
    return fingerprint() == o.fingerprint();
  }
  SafeBatchSet unioned(const SafeBatchSet& o) const;
  Elem join_values() const;
  crypto::Digest fingerprint() const;
  void encode(Encoder& enc) const;

 private:
  std::map<SignedBatch::Key, SafeBatch> entries_;
  mutable std::optional<crypto::Digest> fp_cache_;
};

// --------------------------------------------------------- wire messages --

/// <g_init, SignedBatch> — round-r disclosure, plain broadcast.
class GSInitMsg final : public sim::Message {
 public:
  explicit GSInitMsg(SignedBatch sb) : sb(std::move(sb)) {}
  std::uint32_t type_id() const override { return 50; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override { sb.encode(enc); }
  std::string to_string() const override {
    return "GS_INIT(" + sb.to_string() + ")";
  }
  SignedBatch sb;
};

/// <g_safe_req, set, round>.
class GSSafeReqMsg final : public sim::Message {
 public:
  GSSafeReqMsg(SignedBatchSet set, std::uint64_t round)
      : set(std::move(set)), round(round) {}
  std::uint32_t type_id() const override { return 51; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override {
    set.encode(enc);
    enc.put_u64(round);
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "GS_SAFE_REQ(r=" << round << ",|s|=" << set.size() << ")";
    return os.str();
  }
  SignedBatchSet set;
  std::uint64_t round;
};

/// Signed <g_safe_ack, rcvd, conflicts, acceptor, round>.
class GSSafeAckMsg final : public sim::Message {
 public:
  GSSafeAckMsg(SignedBatchSet rcvd,
               std::vector<std::pair<SignedBatch, SignedBatch>> conflicts,
               ProcessId acceptor, std::uint64_t round,
               crypto::Signature sig)
      : rcvd(std::move(rcvd)),
        conflicts(std::move(conflicts)),
        acceptor(acceptor),
        round(round),
        sig(sig) {}

  std::uint32_t type_id() const override { return 52; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override;
  std::string to_string() const override {
    std::ostringstream os;
    os << "GS_SAFE_ACK(r=" << round << ",acc=" << acceptor << ")";
    return os.str();
  }

  static Bytes signed_payload(
      const SignedBatchSet& rcvd,
      const std::vector<std::pair<SignedBatch, SignedBatch>>& conflicts,
      ProcessId acceptor, std::uint64_t round);
  bool verify(const crypto::SignatureAuthority& auth) const;
  bool mentions_conflict(const SignedBatch::Key& k) const;

  SignedBatchSet rcvd;
  std::vector<std::pair<SignedBatch, SignedBatch>> conflicts;
  ProcessId acceptor;
  std::uint64_t round;
  crypto::Signature sig;

 private:
  // Memoized signed payload — acks are re-verified inside every SafeBatch
  // proof they appear in, so the payload encoding is the hot part.
  util::EncodingCache payload_cache_;
};

/// <g_ack_req, proposal, ts, round>.
class GSAckReqMsg final : public sim::Message {
 public:
  GSAckReqMsg(SafeBatchSet proposal, std::uint64_t ts, std::uint64_t round)
      : proposal(std::move(proposal)), ts(ts), round(round) {}
  std::uint32_t type_id() const override { return 53; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override {
    proposal.encode(enc);
    enc.put_u64(ts);
    enc.put_u64(round);
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "GS_ACK_REQ(r=" << round << ",ts=" << ts << ")";
    return os.str();
  }
  SafeBatchSet proposal;
  std::uint64_t ts;
  std::uint64_t round;
};

/// Signed point-to-point ack: the acceptor signs (proposal fingerprint,
/// destination, ts, round) so the ack can serve in a DECIDED certificate.
class GSAckMsg final : public sim::Message {
 public:
  GSAckMsg(crypto::Digest fp, ProcessId destination, std::uint64_t ts,
           std::uint64_t round, crypto::Signature sig)
      : fp(fp), destination(destination), ts(ts), round(round), sig(sig) {}

  std::uint32_t type_id() const override { return 54; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override;
  std::string to_string() const override {
    std::ostringstream os;
    os << "GS_ACK(r=" << round << ",ts=" << ts << ")";
    return os.str();
  }

  static Bytes signed_payload(const crypto::Digest& fp,
                              ProcessId destination, std::uint64_t ts,
                              std::uint64_t round);
  bool verify(const crypto::SignatureAuthority& auth) const;
  ProcessId acceptor() const { return sig.signer; }

  crypto::Digest fp;
  ProcessId destination;
  std::uint64_t ts;
  std::uint64_t round;
  crypto::Signature sig;

 private:
  // Memoized signed payload; DECIDED certificates re-verify the same acks.
  util::EncodingCache payload_cache_;
};

/// <g_nack, accepted, ts, round>.
class GSNackMsg final : public sim::Message {
 public:
  GSNackMsg(SafeBatchSet accepted, std::uint64_t ts, std::uint64_t round)
      : accepted(std::move(accepted)), ts(ts), round(round) {}
  std::uint32_t type_id() const override { return 55; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override {
    accepted.encode(enc);
    enc.put_u64(ts);
    enc.put_u64(round);
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "GS_NACK(r=" << round << ",ts=" << ts << ")";
    return os.str();
  }
  SafeBatchSet accepted;
  std::uint64_t ts;
  std::uint64_t round;
};

/// Well-formed DECIDED certificate: the decided set plus ⌊(n+f)/2⌋+1
/// signed acks for it; ends round `round` for everyone who verifies it.
class GSDecidedMsg final : public sim::Message {
 public:
  GSDecidedMsg(SafeBatchSet set, ProcessId decider, std::uint64_t ts,
               std::uint64_t round,
               std::vector<std::shared_ptr<const GSAckMsg>> acks)
      : set(std::move(set)),
        decider(decider),
        ts(ts),
        round(round),
        acks(std::move(acks)) {}

  std::uint32_t type_id() const override { return 56; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override;
  std::string to_string() const override {
    std::ostringstream os;
    os << "GS_DECIDED(r=" << round << ",by=" << decider << ")";
    return os.str();
  }

  /// Certificate validity: quorum of distinct acceptors, every ack signed
  /// over this very set's fingerprint addressed to the decider at (ts, r).
  bool well_formed(const crypto::SignatureAuthority& auth,
                   std::uint32_t quorum) const;

  SafeBatchSet set;
  ProcessId decider;
  std::uint64_t ts;
  std::uint64_t round;
  std::vector<std::shared_ptr<const GSAckMsg>> acks;
};

}  // namespace bgla::la
