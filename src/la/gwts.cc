#include "la/gwts.h"

#include <algorithm>

#include "lattice/codec.h"

namespace bgla::la {

GwtsProcess::GwtsProcess(net::Transport& net, ProcessId id, LaConfig cfg)
    : sim::Process(net, id), cfg_(cfg), batcher_(cfg.batch) {
  cfg_.validate();
  auto rb_send = [this](ProcessId to, sim::MessagePtr m) {
    send(to, std::move(m));
  };
  auto rb_deliver = [this](ProcessId origin, std::uint64_t tag,
                           const sim::MessagePtr& inner) {
    on_rb_deliver(origin, tag, inner);
  };
  if (cfg_.rb_impl == LaConfig::RbImpl::kSignedCert) {
    BGLA_CHECK_MSG(cfg_.authority != nullptr,
                   "GWTS: kSignedCert RB needs a SignatureAuthority");
    rb_ = std::make_unique<bcast::CertRbEndpoint>(
        id, cfg_.n, cfg_.f, *cfg_.authority, rb_send, rb_deliver,
        cfg_.unsafe_allow_undersized);
  } else {
    rb_ = std::make_unique<bcast::BrachaEndpoint>(
        id, cfg_.n, cfg_.f, rb_send, rb_deliver,
        cfg_.unsafe_allow_undersized);
  }
}

void GwtsProcess::submit(Elem value) { (void)try_submit(std::move(value)); }

bool GwtsProcess::try_submit(Elem value, obs::TraceContext ctx) {
  BGLA_CHECK_MSG(cfg_.admissible(value), "GWTS: submitted value ∉ E");
  if (obs_spans() && !ctx.valid()) ctx = obs_new_trace();
  const std::uint64_t wall = ctx.valid() ? obs_steady_us() : 0;
  // Alg 3 L9-10: goes into the next round's batch (via the ingress queue).
  if (!batcher_.offer(value, net().now(), ctx, wall)) {
    obs_backpressure();
    obs_child_span("backpressure", ctx, /*dur_us=*/0);
    return false;
  }
  obs_span("submit", ctx, /*parent=*/0, /*dur_us=*/0);
  submitted_.push_back(std::move(value));
  obs_submit(1);
  persist();
  maybe_predisclose();  // pipelining: mid-round arrivals pre-disclose
  return true;
}

void GwtsProcess::on_start() {
  BGLA_CHECK(!started_);
  started_ = true;
  if (recovered_) {
    rejoin();
    return;
  }
  start_new_round();
}

void GwtsProcess::start_new_round(std::optional<std::uint64_t> jump_to) {
  // Alg 3 L12-16 (round_ starts at 0 on the first call, like r = -1 + 1).
  if (jump_to.has_value()) {
    round_ = *jump_to;
    in_round_ = true;
  } else if (in_round_) {
    ++round_;
  } else {
    in_round_ = true;
  }
  state_ = State::kDisclosing;
  refinements_this_round_ = 0;
  ++stats_.rounds_joined;
  obs_round_advance(round_);
  if (obs_spans()) {
    round_ctx_ = obs_new_trace();
    round_start_us_ = obs_steady_us();
  }

  // A pipelined pre-disclosure for this round already went out with its
  // batch; consume it instead of re-burning the single-use RB tag.
  Elem b;
  bool already_disclosed = false;
  if (const auto it = predisclosed_.find(round_); it != predisclosed_.end()) {
    b = it->second;
    predisclosed_.erase(it);
    already_disclosed = true;
  } else {
    std::vector<Batcher::Flushed> flushed;
    b = batcher_.take(net().now(), obs_spans() ? &flushed : nullptr);
    if (!b.is_bottom()) {
      obs_batch_flush(batcher_.stats().last_batch_size, batcher_.depth());
      for (const Batcher::Flushed& f : flushed) {
        const std::uint64_t waited =
            f.wall_us != 0 && round_start_us_ > f.wall_us
                ? round_start_us_ - f.wall_us
                : 0;
        obs_child_span("enqueue", f.ctx, waited, "round", round_);
      }
    }
  }
  batch_[round_] = b;
  proposed_set_ = proposed_set_.join(b);
  disclosed_high_ = std::max(disclosed_high_, round_);
  persist();  // the round number must be durable before its tag hits RB
  if (!already_disclosed) {
    rb_->broadcast(disclosure_tag(round_),
                   std::make_shared<GDisclosureMsg>(b, round_));
  }
  maybe_start_proposing();  // n−f disclosures may already have arrived
  drain_waiting();
}

void GwtsProcess::on_message(ProcessId from, const sim::MessagePtr& msg) {
  if (const auto* m = dynamic_cast<const CatchupReqMsg*>(msg.get())) {
    handle_catchup_req(from, *m);
    return;
  }
  if (const auto* m = dynamic_cast<const CatchupRepMsg*>(msg.get())) {
    handle_catchup_rep(from, *m);
    return;
  }
  if (rb_->handle(from, msg)) return;
  // Only nacks and ack_reqs travel point-to-point; acks and disclosures
  // must come through the reliable broadcast (anything else from a
  // Byzantine sender is dropped by try_process).
  waiting_.emplace_back(from, msg);
  drain_waiting();
}

void GwtsProcess::on_rb_deliver(ProcessId origin, std::uint64_t tag,
                                const sim::MessagePtr& inner) {
  if (const auto* d = dynamic_cast<const GDisclosureMsg*>(inner.get())) {
    on_disclosure(origin, tag, *d);
    return;
  }
  if (const auto* a = dynamic_cast<const GAckMsg*>(inner.get())) {
    // Alg 3 L36 / Alg 4 L14 require "delivered with RBcastDelivery";
    // we therefore enqueue RB-delivered acks through a trusted path: the
    // sender recorded is the RB origin, which authenticates the acceptor.
    if (a->acceptor != origin) return;  // forged acceptor field
    if (safe(a->accepted)) {
      record_ack(origin, *a);
    } else {
      waiting_.emplace_back(origin, inner);
    }
    drain_waiting();
    return;
  }
  // Unknown RB payload from a Byzantine origin: ignore.
}

void GwtsProcess::on_disclosure(ProcessId origin, std::uint64_t tag,
                                const GDisclosureMsg& m) {
  // One disclosure per (origin, round): the tag must be the canonical
  // disclosure tag of the claimed round (stops tag-space games).
  if (tag != disclosure_tag(m.round)) return;
  if (!cfg_.admissible(m.batch)) return;  // Alg 3 L18: ∀e ∈ Set, e ∈ E
  auto& per_round = svs_[m.round];
  if (per_round.count(origin) > 0) return;

  if (state_ == State::kDisclosing) {
    proposed_set_ = proposed_set_.join(m.batch);  // Alg 3 L19-20
  }
  per_round.emplace(origin, m.batch);  // Alg 3 L21-22
  svs_join_ = svs_join_.join(m.batch);

  maybe_start_proposing();
  drain_waiting();
}

void GwtsProcess::maybe_start_proposing() {
  // Alg 3 L24-27.
  if (state_ != State::kDisclosing || !started_ || rejoining_) return;
  const auto it = svs_.find(round_);
  if (it == svs_.end() ||
      it->second.size() < cfg_.disclosure_threshold()) {
    return;
  }
  state_ = State::kProposing;
  ++ts_;
  persist();
  broadcast_proposal();
  maybe_predisclose();
  // A committed proposal for this round may already be known
  // (decide-by-adoption, Alg 3 L39-43).
  check_quorumed_for_decision();
}

void GwtsProcess::maybe_predisclose() {
  // Disclosing early is safe: a disclosure only feeds the receivers'
  // SvS/W (both monotone) and their round-(r+1) counters; our own
  // proposed_set_ adopts the batch when round r+1 actually starts. What it
  // buys is overlap — peers entering r+1 count our disclosure toward n−f
  // without waiting a round trip.
  if (!cfg_.batch.pipeline || state_ != State::kProposing || !started_ ||
      rejoining_) {
    return;
  }
  const std::uint64_t next = round_ + 1;
  if (predisclosed_.count(next) > 0) return;  // tag already burned
  std::vector<Batcher::Flushed> flushed;
  const Elem b =
      batcher_.take(net().now(), obs_spans() ? &flushed : nullptr);
  if (b.is_bottom()) return;
  obs_batch_flush(batcher_.stats().last_batch_size, batcher_.depth());
  if (obs_spans()) {
    const std::uint64_t now = obs_steady_us();
    for (const Batcher::Flushed& f : flushed) {
      const std::uint64_t waited =
          f.wall_us != 0 && now > f.wall_us ? now - f.wall_us : 0;
      obs_child_span("enqueue", f.ctx, waited, "round", next);
    }
  }
  predisclosed_[next] = b;
  disclosed_high_ = std::max(disclosed_high_, next);
  persist();  // the burned tag and its batch must survive a crash
  rb_->broadcast(disclosure_tag(next),
                 std::make_shared<GDisclosureMsg>(b, next));
}

void GwtsProcess::broadcast_proposal() {
  obs_propose(/*proposal=*/round_, round_);
  auto req = std::make_shared<GAckReqMsg>(proposed_set_, ts_, round_);
  if (round_ctx_.valid()) {
    round_propose_us_ = obs_steady_us();
    req->set_trace_ctx(round_ctx_);  // before the first encode
  }
  send_to_group(cfg_.n, req);
}

void GwtsProcess::drain_waiting() {
  if (draining_) return;
  draining_ = true;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < waiting_.size();) {
      auto [from, msg] = waiting_[i];
      if (try_process(from, msg)) {
        waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(i));
        progress = true;
      } else {
        ++i;
      }
    }
  }
  draining_ = false;
}

bool GwtsProcess::try_process(ProcessId from, const sim::MessagePtr& msg) {
  if (const auto* m = dynamic_cast<const GAckReqMsg*>(msg.get())) {
    // Alg 4 L6: SAFEA(m) ∧ r ≤ Safe_r.
    if (m->round > safe_r_) return false;
    if (!safe(m->proposal)) return false;
    handle_ack_req(from, *m);
    return true;
  }
  if (const auto* m = dynamic_cast<const GNackMsg*>(msg.get())) {
    // Alg 3 L30: SAFE(m) ∧ state = proposing ∧ ts' = ts ∧ r' = r.
    if (m->round < round_ || (m->round == round_ && m->ts < ts_)) {
      return true;  // stale: drop
    }
    if (state_ != State::kProposing || m->ts != ts_ || m->round != round_) {
      return false;
    }
    if (!safe(m->accepted)) return false;
    obs_nack(from);
    handle_nack(*m);
    return true;
  }
  if (const auto* m = dynamic_cast<const SubmitMsg*>(msg.get())) {
    if (cfg_.admissible(m->value) &&
        !try_submit(m->value, msg->trace_ctx()) && from != id()) {
      auto nack = std::make_shared<SubmitNackMsg>(
          m->value, /*retry_after=*/batcher_.depth(), id());
      if (msg->trace_ctx().valid()) nack->set_trace_ctx(msg->trace_ctx());
      send(from, nack);
    }
    return true;
  }
  if (const auto* m = dynamic_cast<const GAckMsg*>(msg.get())) {
    // Reaches here only when queued from on_rb_deliver (origin == from)
    // while unsafe, or sent point-to-point by a Byzantine (dropped by the
    // acceptor-authenticity check).
    if (m->acceptor != from) return true;  // not RB-authenticated: drop
    if (!safe(m->accepted)) return false;
    record_ack(from, *m);
    return true;
  }
  return true;  // unknown: consume and ignore
}

void GwtsProcess::handle_ack_req(ProcessId from, const GAckReqMsg& m) {
  // Alg 4 L8-13. The RB-broadcast ack itself is never stamped (its bytes
  // feed signature/cert paths); the acceptor-side span is the cross-node
  // evidence instead.
  obs_child_span("ack", m.trace_ctx(), /*dur_us=*/0, "peer", from);
  if (accepted_set_.leq(m.proposal)) {
    accepted_set_ = m.proposal;
    const std::uint64_t tag = next_ack_tag();
    persist();  // tag consumption and the acceptance promise are durable
    rb_->broadcast(tag,
                  std::make_shared<GAckMsg>(accepted_set_, from, id(),
                                            m.ts, m.round));
  } else {
    auto nack = std::make_shared<GNackMsg>(accepted_set_, m.ts, m.round);
    if (m.trace_ctx().valid()) nack->set_trace_ctx(m.trace_ctx());
    send(from, nack);
    accepted_set_ = accepted_set_.join(m.proposal);
    persist();
  }
}

void GwtsProcess::handle_nack(const GNackMsg& m) {
  // Alg 3 L32-35.
  const Elem merged = proposed_set_.join(m.accepted);
  if (merged != proposed_set_) {
    proposed_set_ = merged;
    ++ts_;
    ++stats_.refinements;
    ++refinements_this_round_;
    stats_.max_round_refinements =
        std::max(stats_.max_round_refinements, refinements_this_round_);
    obs_refine(/*proposal=*/round_, refinements_this_round_);
    persist();
    broadcast_proposal();
  }
}

void GwtsProcess::record_ack(ProcessId origin, const GAckMsg& m) {
  // Alg 3 L37-38 / Alg 4 L15-16 (shared Ack_history).
  if (m.destination == id()) obs_ack(origin);
  AckKey key;
  key.value_digest = m.accepted.digest();
  key.destination = m.destination;
  key.ts = m.ts;
  key.round = m.round;

  AckEntry& entry = ack_history_[key];
  if (entry.value.is_bottom()) entry.value = m.accepted;
  entry.acceptors.insert(origin);
  if (!entry.quorumed && entry.acceptors.size() >= cfg_.quorum()) {
    entry.quorumed = true;
    quorumed_.insert(key);
    on_quorum(key, entry);
  }
}

void GwtsProcess::on_quorum(const AckKey&, const AckEntry&) {
  advance_safe_r();
  check_quorumed_for_decision();
}

void GwtsProcess::advance_safe_r() {
  // Alg 4 L17-19: round trust advances only through legitimate ends.
  for (const AckKey& key : quorumed_) ended_rounds_.insert(key.round);
  while (ended_rounds_.count(safe_r_) > 0) ++safe_r_;
}

void GwtsProcess::check_quorumed_for_decision() {
  // Alg 3 L39-43.
  if (state_ != State::kProposing) return;
  for (const AckKey& key : quorumed_) {
    if (key.round != round_) continue;
    // Ablation: without decide-by-adoption only quorums on requests this
    // process issued itself may trigger its decision.
    if (!cfg_.decide_by_adoption && key.destination != id()) continue;
    const AckEntry& entry = ack_history_.at(key);
    if (!decided_set_.leq(entry.value)) continue;
    decide(entry.value);
    return;  // decide() started a new round
  }
}

void GwtsProcess::decide(const Elem& value) {
  DecisionRecord rec;
  rec.value = value;
  rec.time = net().now();
  rec.depth = net().current_depth();
  rec.round = round_;
  decisions_.push_back(rec);
  decided_set_ = value;
  obs_decide(/*proposal=*/round_, round_, refinements_this_round_);
  if (round_ctx_.valid()) {
    const std::uint64_t now = obs_steady_us();
    obs_span("round", round_ctx_, /*parent=*/0, now - round_start_us_,
             "round", round_);
    obs_child_span("quorum", round_ctx_,
                   round_propose_us_ != 0 && now > round_propose_us_
                       ? now - round_propose_us_
                       : 0);
    round_ctx_ = obs::TraceContext{};
  }
  if (decide_hook_) decide_hook_(*this, rec);
  collect_garbage();
  start_new_round();
}

void GwtsProcess::collect_garbage() {
  // State from rounds well behind both our own round and the acceptor
  // trust frontier can never be consulted again:
  //  - per-round SvS maps only gate the Counter[r] >= n-f trigger and the
  //    one-disclosure-per-(origin, round) rule for rounds we might still
  //    be in; the cumulative W lives in svs_join_;
  //  - Ack_history entries for decided rounds only served Safe_r
  //    advancement, which ended_rounds_ now remembers compactly.
  // Keep a 2-round tail for stragglers mid-flight.
  if (round_ < 2) return;
  const std::uint64_t horizon = round_ - 2;
  for (auto it = svs_.begin();
       it != svs_.end() && it->first < horizon;) {
    for (const auto& [origin, value] : it->second) {
      auto& slot = collected_disclosed_[origin];
      slot = slot.join(value);
    }
    it = svs_.erase(it);
  }
  for (auto it = ack_history_.begin(); it != ack_history_.end();) {
    if (it->first.round < horizon) {
      it = ack_history_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = quorumed_.begin(); it != quorumed_.end();) {
    if (it->round < horizon) {
      it = quorumed_.erase(it);
    } else {
      ++it;
    }
  }
  // Drop buffered messages that can never matter again: nacks for rounds
  // we long left (the ts/round guard would discard them on processing
  // anyway) and acks for rounds whose decision and Safe_r effect are both
  // behind us. Buffered *ack requests* are NOT dropped: a slow-but-correct
  // proposer may still be working an old round, and answering it later is
  // part of the reliable-channel contract.
  for (std::size_t i = 0; i < waiting_.size();) {
    const auto& msg = waiting_[i].second;
    std::uint64_t r = 0;
    bool droppable = false;
    if (const auto* m = dynamic_cast<const GNackMsg*>(msg.get())) {
      r = m->round;
      droppable = true;
    } else if (const auto* m = dynamic_cast<const GAckMsg*>(msg.get())) {
      r = m->round;
      droppable = true;
    }
    if (droppable && r < horizon) {
      waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

std::size_t GwtsProcess::retained_state() const {
  std::size_t n = waiting_.size() + quorumed_.size();
  for (const auto& [round, per_origin] : svs_) n += per_origin.size();
  for (const auto& [key, entry] : ack_history_) {
    n += entry.acceptors.size();
  }
  return n;
}

std::map<ProcessId, Elem> GwtsProcess::disclosed_by() const {
  std::map<ProcessId, Elem> out = collected_disclosed_;
  for (const auto& [round, per_origin] : svs_) {
    for (const auto& [origin, value] : per_origin) {
      auto& slot = out[origin];
      slot = slot.join(value);
    }
  }
  return out;
}

bool GwtsProcess::confirmed(const Elem& value) const {
  // Algorithm 7 L4: the value appears ⌊(n+f)/2⌋+1 times in Ack_history
  // for a fixed (destination, ts, round).
  const crypto::Digest d = value.digest();
  for (const AckKey& key : quorumed_) {
    if (key.value_digest == d) return true;
  }
  return false;
}

// ------------------------------------------------------ crash recovery ----

void GwtsProcess::export_state(Encoder& enc) const {
  put_state_header(enc, StateTag::kGwts);
  export_core(enc);
}

void GwtsProcess::import_state(Decoder& dec) {
  const std::uint32_t version = check_state_header(dec, StateTag::kGwts);
  import_core(dec, version);
}

void GwtsProcess::export_core(Encoder& enc) const {
  enc.put_u64(round_);
  enc.put_u64(ts_);
  enc.put_u64(safe_r_);
  enc.put_u64(ack_tag_counter_);
  enc.put_bool(in_round_);
  proposed_set_.encode(enc);
  decided_set_.encode(enc);
  // Pending values are persisted as their join: a recovered replica
  // re-batches them as one unit (individual queue slots are scaffolding).
  batcher_.pending_join().encode(enc);
  svs_join_.encode(enc);
  accepted_set_.encode(enc);
  enc.put_varint(folded_submitted_);
  enc.put_varint(folded_decisions_);
  encode_elems(enc, submitted_);
  encode_decisions(enc, decisions_);
  encode_elem_map(enc, disclosed_by());
  enc.put_u64(disclosed_high_);
}

void GwtsProcess::import_core(Decoder& dec, std::uint32_t version) {
  BGLA_CHECK_MSG(!started_, "GWTS: import_state after the run started");
  round_ = dec.get_u64();
  ts_ = dec.get_u64();
  safe_r_ = dec.get_u64();
  ack_tag_counter_ = dec.get_u64();
  in_round_ = dec.get_bool();
  proposed_set_ = lattice::decode_elem(dec);
  decided_set_ = lattice::decode_elem(dec);
  const Elem pending = lattice::decode_elem(dec);
  if (!pending.is_bottom()) batcher_.requeue(pending);
  svs_join_ = lattice::decode_elem(dec);
  accepted_set_ = lattice::decode_elem(dec);
  if (version >= 3) {
    folded_submitted_ = dec.get_varint();
    folded_decisions_ = dec.get_varint();
  }
  submitted_ = decode_elems(dec);
  decisions_ = decode_decisions(dec);
  collected_disclosed_ = decode_elem_map(dec);
  disclosed_high_ = dec.get_u64();
  recovered_ = true;
}

std::size_t GwtsProcess::compact_decided_prefix(std::size_t keep_tail) {
  std::size_t folded = 0;
  // Decision chains are monotone (each record's value includes its
  // predecessor's), so the join of any prefix is the prefix's last
  // record: dropping all but the newest `keep_tail + 1` records loses
  // nothing the spec checkers look at — the oldest survivor anchors the
  // chain for everything folded beneath it.
  if (decisions_.size() > keep_tail + 1) {
    const std::size_t drop = decisions_.size() - (keep_tail + 1);
    decisions_.erase(decisions_.begin(),
                     decisions_.begin() + static_cast<std::ptrdiff_t>(drop));
    folded_decisions_ += drop;
    folded += drop;
  }
  // Submissions at or below the decided frontier collapse to their join:
  // inclusivity is preserved because each folded submission is ≤ the
  // join, and the join itself is ≤ decided_set_ (so it still checks as
  // decided). Later submissions stay individually visible.
  if (!submitted_.empty() && !decided_set_.is_bottom()) {
    std::size_t prefix = 0;
    Elem join;
    while (prefix < submitted_.size() &&
           submitted_[prefix].leq(decided_set_)) {
      join = join.join(submitted_[prefix]);
      ++prefix;
    }
    if (prefix > 1) {
      submitted_.erase(submitted_.begin(),
                       submitted_.begin() + static_cast<std::ptrdiff_t>(prefix));
      submitted_.insert(submitted_.begin(), std::move(join));
      folded_submitted_ += prefix - 1;
      folded += prefix - 1;
    }
  }
  return folded;
}

void GwtsProcess::rejoin() {
  // Fold every submission back into the pending batch: values decided
  // before the crash re-decide harmlessly (joins are monotone), while
  // in-flight ones must be re-disclosed — and in a *fresh* round, because
  // peers dedupe disclosures per (origin, round) and the RB dedupes per
  // (origin, tag), so the old round's tag is burned. The refold bypasses
  // the queue bound (dropping a pre-crash submission breaks inclusivity).
  Elem refold = batcher_.drain_all();
  for (const Elem& v : submitted_) {
    refold = refold.join(v);
  }
  if (!refold.is_bottom()) batcher_.requeue(refold);
  state_ = State::kDisclosing;
  rejoining_ = true;
  obs_rejoin_start();
  catchup_replies_.clear();
  catchup_frontier_ = round_;
  if (cfg_.n == 1) {
    finish_rejoin();
    return;
  }
  const auto req = std::make_shared<CatchupReqMsg>(round_);
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    if (p != id()) send(p, req);
  }
}

void GwtsProcess::finish_rejoin() {
  rejoining_ = false;
  obs_rejoin_done();
  // Crash-trust: a responder in round r has seen every round < r end, so
  // the largest reported frontier bounds the legitimately ended prefix.
  // (Byzantine-hardened state transfer — justifying the frontier with the
  // quorumed-ack evidence itself — is a ROADMAP open item.)
  safe_r_ = std::max(safe_r_, catchup_frontier_);
  // disclosed_high_ covers pipelined pre-disclosures: their tags are
  // burned even though the rounds never started here.
  start_new_round(
      std::max({round_, catchup_frontier_, disclosed_high_}) + 1);
}

void GwtsProcess::handle_catchup_req(ProcessId from, const CatchupReqMsg& m) {
  send(from, std::make_shared<CatchupRepMsg>(m.round, round_, accepted_set_,
                                             svs_join_, decided_set_,
                                             Bytes{}));
}

void GwtsProcess::handle_catchup_rep(ProcessId from, const CatchupRepMsg& m) {
  if (!rejoining_) return;
  if (!cfg_.admissible(m.disclosed) || !cfg_.admissible(m.accepted)) return;
  if (!catchup_replies_.insert(from).second) return;
  // Disclosed values feed SAFE() (cumulative W is monotone); accepted
  // values were disclosed somewhere, so adopting them into our proposal
  // keeps it safe while making our next decision cover theirs.
  svs_join_ = svs_join_.join(m.disclosed);
  accepted_set_ = accepted_set_.join(m.accepted);
  proposed_set_ = proposed_set_.join(m.accepted);
  catchup_frontier_ = std::max(catchup_frontier_, m.frontier);
  if (catchup_replies_.size() >= std::min(cfg_.f + 1, cfg_.n - 1)) {
    finish_rejoin();
  } else {
    drain_waiting();  // svs_join_ grew: buffered messages may now be safe
  }
}

}  // namespace bgla::la
