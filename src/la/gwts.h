// GWTS — Generalized Wait Till Safe (paper §6, Algorithms 3 and 4).
//
// Byzantine Generalized Lattice Agreement: an infinite sequence of decision
// rounds. Input values received during round r are batched into round r+1.
// Each round runs a disclosure phase (reliable broadcast of the batch,
// tagged with the round) and a deciding phase where acceptor acks are
// themselves reliably broadcast, making acceptances public so that:
//   - any proposer can adopt a committed Accepted_set for its round
//     (decide-by-adoption, Alg 3 L39-43), and
//   - acceptors advance their round trust Safe_r only when the previous
//     round had a legitimate end (Alg 4 L17-19), which stops Byzantine
//     round-rushing.
//
// Safety interpretation note: SAFE at round r checks the element against
// the *cumulative* disclosed values W_r = ⊕ ∪_{r' ≤ r} SvS[r'], the set
// the paper's Non-Triviality proof works with (§6.3.1); since W_r is
// monotone in r, the acceptor-side "∃r: element ⊆ SvS[r]" is equivalent to
// checking against the latest W.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include <memory>

#include "bcast/bracha.h"
#include "bcast/cert_rb.h"
#include "la/batcher.h"
#include "la/config.h"
#include "la/messages.h"
#include "la/record.h"
#include "la/recovery.h"
#include "sim/network.h"

namespace bgla::la {

class GwtsProcess : public sim::Process {
 public:
  enum class State { kDisclosing, kProposing };

  GwtsProcess(net::Transport& net, ProcessId id, LaConfig cfg);

  /// "upon event new value(v)" (Alg 3 L9-10): enqueue an input value; it
  /// will be disclosed in the next round's batch. May be called before the
  /// run starts or from any handler (e.g. the RSM replica receiving a
  /// client command). With a bounded ingress queue (cfg.batch.max_queue)
  /// a full queue drops the value silently — callers that must surface
  /// backpressure use try_submit().
  void submit(Elem value);

  /// Like submit(), but reports backpressure: returns false iff the
  /// ingress queue is full (the value is NOT retained; retry later).
  /// `ctx` is an optional span context carried in from the wire (RSM
  /// update path); when spans are enabled and none is given, a fresh root
  /// trace is minted here.
  bool try_submit(Elem value, obs::TraceContext ctx = {});

  void on_start() override;
  void on_message(ProcessId from, const sim::MessagePtr& msg) override;

  // ---- observation interface ----
  State state() const { return state_; }
  std::uint64_t round() const { return round_; }
  std::uint64_t safe_round() const { return safe_r_; }
  const std::vector<DecisionRecord>& decisions() const { return decisions_; }
  const std::vector<Elem>& submitted() const { return submitted_; }
  const Elem& decided_set() const { return decided_set_; }
  const Elem& proposed_set() const { return proposed_set_; }
  const ProposerStats& stats() const { return stats_; }
  const Batcher& batcher() const { return batcher_; }

  /// Decide hook: called at every decide event, before the next round
  /// starts. Used by the RSM replica and by run controllers.
  using DecideHook = std::function<void(const GwtsProcess&,
                                        const DecisionRecord&)>;
  void set_decide_hook(DecideHook hook) { decide_hook_ = std::move(hook); }

  /// Per-origin union of everything this process saw disclosed (across
  /// rounds) — lets checkers attribute the Byzantine contribution B.
  std::map<ProcessId, Elem> disclosed_by() const;

  /// Bounded-state accounting: retained per-round SvS maps + Ack_history
  /// entries + buffered messages (diagnostics; the GC test asserts this
  /// stays bounded across an unbounded run).
  std::size_t retained_state() const;

  /// Algorithm 7 plug-in support: true iff `value` appears with quorum
  /// support in Ack_history for some (destination, ts, round) — i.e. it
  /// was effectively decided in GWTS.
  bool confirmed(const Elem& value) const;

  // ---- crash-recovery interface (see la/recovery.h) ----

  /// Serializes the replica-critical state: round/timestamp counters
  /// (including the RB ack-tag counter, which must never reuse a tag),
  /// the monotone joins, submissions and decisions. Per-round scaffolding
  /// (SvS counters, Ack_history) is intentionally not persisted — a
  /// restarted process rebuilds its view through the catch-up exchange
  /// and jumps to a fresh round.
  virtual void export_state(Encoder& enc) const;
  /// Loads an export_state() blob into a freshly constructed process;
  /// must run before the transport starts. Throws CheckError on a
  /// malformed blob or a protocol/version mismatch.
  virtual void import_state(Decoder& dec);
  /// Invoked after every transition that must survive a crash; the host
  /// appends export_state() to its WAL from inside the hook.
  void set_persist_hook(std::function<void()> hook) {
    persist_hook_ = std::move(hook);
  }
  bool recovered() const { return recovered_; }

  /// Decided-prefix compaction: folds every submission at or below the
  /// current decided frontier into one join entry and drops all but the
  /// newest fully-superseded decision record (decision chains are
  /// monotone, so the newest record *is* the join of its prefix). Keeps
  /// at least `keep_tail` trailing decision records untouched for
  /// diagnostics. Safe at any quiescent point between messages; the next
  /// persist writes the smaller v3 blob. Returns the number of records
  /// folded by this call (submissions + decisions).
  std::size_t compact_decided_prefix(std::size_t keep_tail = 1);
  std::uint64_t folded_submitted() const { return folded_submitted_; }
  std::uint64_t folded_decisions() const { return folded_decisions_; }

 protected:
  void export_core(Encoder& enc) const;
  void import_core(Decoder& dec, std::uint32_t version);

 private:
  struct AckKey {
    crypto::Digest value_digest{};
    ProcessId destination = kNoProcess;
    std::uint64_t ts = 0;
    std::uint64_t round = 0;
    auto operator<=>(const AckKey&) const = default;
  };
  struct AckEntry {
    Elem value;
    std::set<ProcessId> acceptors;  // distinct RB origins
    bool quorumed = false;
  };

  bool safe(const Elem& e) const { return e.leq(svs_join_); }

  /// Starts the next round, or — on a post-restart rejoin — jumps straight
  /// to `jump_to` (a round this process never used before, so its RB
  /// disclosure tag is fresh).
  void start_new_round(std::optional<std::uint64_t> jump_to = std::nullopt);
  void on_rb_deliver(ProcessId origin, std::uint64_t tag,
                     const sim::MessagePtr& inner);
  void on_disclosure(ProcessId origin, std::uint64_t tag,
                     const GDisclosureMsg& m);
  void maybe_start_proposing();
  /// Pipelining (cfg.batch.pipeline): once this round is proposing,
  /// pre-disclose the next round's batch so its disclosure phase overlaps
  /// the current deciding phase. At most one pre-disclosure per round (the
  /// RB tag is single-use).
  void maybe_predisclose();
  void broadcast_proposal();
  void drain_waiting();
  bool try_process(ProcessId from, const sim::MessagePtr& msg);

  void handle_ack_req(ProcessId from, const GAckReqMsg& m);
  void handle_nack(const GNackMsg& m);
  void record_ack(ProcessId origin, const GAckMsg& m);
  void on_quorum(const AckKey& key, const AckEntry& entry);
  void check_quorumed_for_decision();
  void advance_safe_r();
  void decide(const Elem& value);
  void collect_garbage();
  void persist() {
    if (persist_hook_) persist_hook_();
  }
  void rejoin();
  void finish_rejoin();
  void handle_catchup_req(ProcessId from, const CatchupReqMsg& m);
  void handle_catchup_rep(ProcessId from, const CatchupRepMsg& m);

  static std::uint64_t disclosure_tag(std::uint64_t round) {
    return round << 1;  // even tags: disclosures; odd tags: acks
  }
  std::uint64_t next_ack_tag() { return (ack_tag_counter_++ << 1) | 1; }

  LaConfig cfg_;
  std::unique_ptr<bcast::RbEndpoint> rb_;

  // Proposer state.
  State state_ = State::kDisclosing;
  std::uint64_t round_ = 0;
  std::uint64_t ts_ = 0;
  Elem proposed_set_;
  Elem decided_set_;
  Batcher batcher_;                      // Batch[r+1..] ingress queue
  std::vector<Elem> submitted_;          // all values fed via submit()
  std::map<std::uint64_t, Elem> batch_;  // Batch[r] snapshots (diagnostics)
  // Pipelined disclosures already broadcast for future rounds; the round
  // start consumes the entry instead of re-burning the RB tag.
  std::map<std::uint64_t, Elem> predisclosed_;
  // Highest round this process ever disclosed at (>= round_ only while a
  // pre-disclosure is outstanding); a rejoin must jump above it so the
  // fresh disclosure never collides with a burned tag.
  std::uint64_t disclosed_high_ = 0;
  std::vector<DecisionRecord> decisions_;

  // Values disclosure: per round, per origin.
  std::map<std::uint64_t, std::map<ProcessId, Elem>> svs_;
  Elem svs_join_;  // cumulative W

  // Acceptor state.
  Elem accepted_set_;
  std::uint64_t safe_r_ = 0;
  std::uint64_t ack_tag_counter_ = 0;

  // Shared Ack_history (proposer L36-38 and acceptor L14-16 views).
  std::map<AckKey, AckEntry> ack_history_;
  std::set<AckKey> quorumed_;
  std::set<std::uint64_t> ended_rounds_;  // rounds with a known quorum
  // GC bookkeeping: per-origin union of *collected* disclosures so
  // disclosed_by() stays exact after pruning.
  std::map<ProcessId, Elem> collected_disclosed_;

  std::deque<std::pair<ProcessId, sim::MessagePtr>> waiting_;
  ProposerStats stats_;
  std::uint64_t refinements_this_round_ = 0;
  DecideHook decide_hook_;

  // Causal span state: each command owns a submit trace that rides the
  // batcher; each round owns a per-round trace (its "round" span carries
  // the round index, joining command traces via their enqueue spans).
  obs::TraceContext round_ctx_;
  std::uint64_t round_start_us_ = 0;
  std::uint64_t round_propose_us_ = 0;
  bool started_ = false;
  bool in_round_ = false;
  bool draining_ = false;

  // Crash-recovery state.
  std::function<void()> persist_hook_;
  bool recovered_ = false;
  // Decided-prefix compaction accounting (v3 state format): how many
  // submissions / decision records were folded into the heads of
  // submitted_ / decisions_. Survives export/import.
  std::uint64_t folded_submitted_ = 0;
  std::uint64_t folded_decisions_ = 0;
  bool rejoining_ = false;
  std::set<ProcessId> catchup_replies_;
  std::uint64_t catchup_frontier_ = 0;
};

}  // namespace bgla::la
