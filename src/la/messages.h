// Wire messages of the lattice-agreement protocols.
//
// Type-id ranges:
//   1..3    reliable broadcast (bcast/bracha.h)
//   10..19  WTS (Algorithms 1-2)
//   20..29  GWTS (Algorithms 3-4)
//   30..39  crash-stop Faleiro LA/GLA (PODC 2012 baseline)
//   40..49  SbS (Algorithms 8-10)
//   50..59  GSbS (§8.2)
//   60..69  RSM client/replica traffic (§7)
//   70..79  state transfer / catch-up (crash-recovery rejoin)
#pragma once

#include <sstream>

#include "lattice/elem.h"
#include "sim/message.h"
#include "util/ids.h"

namespace bgla::la {

using lattice::Elem;

// ---------------------------------------------------------------- WTS ----

/// Inner payload of the Values Disclosure reliable broadcast (Alg 1 L9).
class DisclosureMsg final : public sim::Message {
 public:
  explicit DisclosureMsg(Elem value) : value(std::move(value)) {}

  std::uint32_t type_id() const override { return 10; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override { value.encode(enc); }
  std::string to_string() const override {
    return "DISCLOSE(" + value.to_string() + ")";
  }

  Elem value;
};

/// <ack_req, Proposed_set, ts> (Alg 1 L19/L31).
class AckReqMsg final : public sim::Message {
 public:
  AckReqMsg(Elem proposal, std::uint64_t ts)
      : proposal(std::move(proposal)), ts(ts) {}

  std::uint32_t type_id() const override { return 11; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override {
    proposal.encode(enc);
    enc.put_u64(ts);
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "ACK_REQ(ts=" << ts << "," << proposal.to_string() << ")";
    return os.str();
  }

  Elem proposal;
  std::uint64_t ts;
};

/// <ack, Accepted_set, ts> (Alg 2 L9).
class AckMsg final : public sim::Message {
 public:
  AckMsg(Elem accepted, std::uint64_t ts)
      : accepted(std::move(accepted)), ts(ts) {}

  std::uint32_t type_id() const override { return 12; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override {
    accepted.encode(enc);
    enc.put_u64(ts);
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "ACK(ts=" << ts << "," << accepted.to_string() << ")";
    return os.str();
  }

  Elem accepted;
  std::uint64_t ts;
};

/// <nack, Accepted_set, ts> (Alg 2 L11).
class NackMsg final : public sim::Message {
 public:
  NackMsg(Elem accepted, std::uint64_t ts)
      : accepted(std::move(accepted)), ts(ts) {}

  std::uint32_t type_id() const override { return 13; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override {
    accepted.encode(enc);
    enc.put_u64(ts);
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "NACK(ts=" << ts << "," << accepted.to_string() << ")";
    return os.str();
  }

  Elem accepted;
  std::uint64_t ts;
};

// --------------------------------------------------------------- GWTS ----

/// Inner payload of the round-r disclosure broadcast (Alg 3 L16).
class GDisclosureMsg final : public sim::Message {
 public:
  GDisclosureMsg(Elem batch, std::uint64_t round)
      : batch(std::move(batch)), round(round) {}

  std::uint32_t type_id() const override { return 20; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override {
    batch.encode(enc);
    enc.put_u64(round);
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "G_DISCLOSE(r=" << round << "," << batch.to_string() << ")";
    return os.str();
  }

  Elem batch;
  std::uint64_t round;
};

/// <ack_req, Proposed_set, ts, r> (Alg 3 L27/L35).
class GAckReqMsg final : public sim::Message {
 public:
  GAckReqMsg(Elem proposal, std::uint64_t ts, std::uint64_t round)
      : proposal(std::move(proposal)), ts(ts), round(round) {}

  std::uint32_t type_id() const override { return 21; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override {
    proposal.encode(enc);
    enc.put_u64(ts);
    enc.put_u64(round);
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "G_ACK_REQ(r=" << round << ",ts=" << ts << ","
       << proposal.to_string() << ")";
    return os.str();
  }

  Elem proposal;
  std::uint64_t ts;
  std::uint64_t round;
};

/// <ack, Accepted_set, destination, sender, ts, r> — reliably broadcast by
/// acceptors so acceptances are public (Alg 4 L10).
class GAckMsg final : public sim::Message {
 public:
  GAckMsg(Elem accepted, ProcessId destination, ProcessId acceptor,
          std::uint64_t ts, std::uint64_t round)
      : accepted(std::move(accepted)),
        destination(destination),
        acceptor(acceptor),
        ts(ts),
        round(round) {}

  std::uint32_t type_id() const override { return 22; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override {
    accepted.encode(enc);
    enc.put_u32(destination);
    enc.put_u32(acceptor);
    enc.put_u64(ts);
    enc.put_u64(round);
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "G_ACK(r=" << round << ",ts=" << ts << ",dst=" << destination
       << ",acc=" << acceptor << "," << accepted.to_string() << ")";
    return os.str();
  }

  Elem accepted;
  ProcessId destination;
  ProcessId acceptor;
  std::uint64_t ts;
  std::uint64_t round;
};

/// <nack, Accepted_set, ts, r> (Alg 4 L12), point-to-point.
class GNackMsg final : public sim::Message {
 public:
  GNackMsg(Elem accepted, std::uint64_t ts, std::uint64_t round)
      : accepted(std::move(accepted)), ts(ts), round(round) {}

  std::uint32_t type_id() const override { return 23; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override {
    accepted.encode(enc);
    enc.put_u64(ts);
    enc.put_u64(round);
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "G_NACK(r=" << round << ",ts=" << ts << ","
       << accepted.to_string() << ")";
    return os.str();
  }

  Elem accepted;
  std::uint64_t ts;
  std::uint64_t round;
};

/// External input feed: "new value(v)" (Alg 3 L9) arriving as a message —
/// used by harnesses (network.inject) and by the RSM replica path.
class SubmitMsg final : public sim::Message {
 public:
  explicit SubmitMsg(Elem value) : value(std::move(value)) {}

  std::uint32_t type_id() const override { return 24; }
  sim::Layer layer() const override { return sim::Layer::kOther; }
  void encode_payload(Encoder& enc) const override { value.encode(enc); }
  std::string to_string() const override {
    return "SUBMIT(" + value.to_string() + ")";
  }

  Elem value;
};

/// Backpressure nack for a rejected submission: the replica's bounded
/// ingress queue (la::Batcher, cfg.batch.max_queue) was full, so the
/// value was dropped. `rejected` echoes the dropped value so the client
/// can retry exactly it; `retry_after` is an advisory hold, in transport
/// time units, scaled to the rejecting queue's depth.
class SubmitNackMsg final : public sim::Message {
 public:
  SubmitNackMsg(Elem rejected, std::uint64_t retry_after, ProcessId replica)
      : rejected(std::move(rejected)),
        retry_after(retry_after),
        replica(replica) {}

  std::uint32_t type_id() const override { return 25; }
  sim::Layer layer() const override { return sim::Layer::kOther; }
  void encode_payload(Encoder& enc) const override {
    rejected.encode(enc);
    enc.put_u64(retry_after);
    enc.put_u32(replica);
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "SUBMIT_NACK(rep=" << replica << ",retry_after=" << retry_after
       << ")";
    return os.str();
  }

  Elem rejected;
  std::uint64_t retry_after;
  ProcessId replica;
};

// ------------------------------------------- crash-stop baseline (PODC) ----

/// <propose, Proposed_set, ts> of Faleiro et al.'s crash-stop protocol.
class FAckReqMsg final : public sim::Message {
 public:
  FAckReqMsg(Elem proposal, std::uint64_t ts)
      : proposal(std::move(proposal)), ts(ts) {}

  std::uint32_t type_id() const override { return 30; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override {
    proposal.encode(enc);
    enc.put_u64(ts);
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "F_ACK_REQ(ts=" << ts << "," << proposal.to_string() << ")";
    return os.str();
  }

  Elem proposal;
  std::uint64_t ts;
};

class FAckMsg final : public sim::Message {
 public:
  FAckMsg(Elem accepted, std::uint64_t ts)
      : accepted(std::move(accepted)), ts(ts) {}

  std::uint32_t type_id() const override { return 31; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override {
    accepted.encode(enc);
    enc.put_u64(ts);
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "F_ACK(ts=" << ts << ")";
    return os.str();
  }

  Elem accepted;
  std::uint64_t ts;
};

class FNackMsg final : public sim::Message {
 public:
  FNackMsg(Elem accepted, std::uint64_t ts)
      : accepted(std::move(accepted)), ts(ts) {}

  std::uint32_t type_id() const override { return 32; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override {
    accepted.encode(enc);
    enc.put_u64(ts);
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "F_NACK(ts=" << ts << "," << accepted.to_string() << ")";
    return os.str();
  }

  Elem accepted;
  std::uint64_t ts;
};

// ------------------------------------------- state transfer / catch-up ----

/// Broadcast by a restarted replica after reloading its durable state:
/// "tell me what I missed since round `round`". Answered by protocols
/// that keep cross-round state (GWTS/GSbS/Faleiro/RSM).
class CatchupReqMsg final : public sim::Message {
 public:
  explicit CatchupReqMsg(std::uint64_t round) : round(round) {}

  std::uint32_t type_id() const override { return 70; }
  sim::Layer layer() const override { return sim::Layer::kOther; }
  void encode_payload(Encoder& enc) const override { enc.put_u64(round); }
  std::string to_string() const override {
    std::ostringstream os;
    os << "CATCHUP_REQ(r=" << round << ")";
    return os.str();
  }

  std::uint64_t round;
};

/// A peer's frontier summary. In the crash-stop protocols the requester
/// adopts joins once f+1 distinct peers have answered (at least one is
/// correct and non-stale); in GSbS the attached DECIDED certificate is
/// self-verifying, so one well-formed cert suffices to advance rounds.
class CatchupRepMsg final : public sim::Message {
 public:
  CatchupRepMsg(std::uint64_t round, std::uint64_t frontier, Elem accepted,
                Elem disclosed, Elem decided, Bytes cert)
      : round(round),
        frontier(frontier),
        accepted(std::move(accepted)),
        disclosed(std::move(disclosed)),
        decided(std::move(decided)),
        cert(std::move(cert)) {}

  std::uint32_t type_id() const override { return 71; }
  sim::Layer layer() const override { return sim::Layer::kOther; }
  void encode_payload(Encoder& enc) const override {
    enc.put_u64(round);
    enc.put_u64(frontier);
    accepted.encode(enc);
    disclosed.encode(enc);
    decided.encode(enc);
    enc.put_bytes(BytesView(cert));
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "CATCHUP_REP(r=" << round << ",frontier=" << frontier << ")";
    return os.str();
  }

  std::uint64_t round;     ///< the round the requester asked about
  std::uint64_t frontier;  ///< responder's current round / safe frontier
  Elem accepted;           ///< responder's accepted join
  Elem disclosed;          ///< responder's view of disclosed values
  Elem decided;            ///< responder's decided join
  Bytes cert;  ///< latest GSDecidedMsg encoding (GSbS only; else empty)
};

// ------------------------------------------------- delta wire encoding ----

/// Transport-level delta wrapper (net::DeltaTransport): carries one
/// protocol message of type `inner_type` re-encoded against the per-peer
/// chain state negotiated between the two transports — lattice elements
/// and proof sets inside `payload` are either full or "delta above the
/// last value sent on this stream". `epoch` names the sender's chain
/// generation (bumped on every reset) and `seq` orders messages within
/// one stream so the receiver applies deltas against the right baseline.
/// Protocols never see this type: the receiving transport reconstructs
/// the inner message byte-identically and delivers that instead.
class DeltaWrapMsg final : public sim::Message {
 public:
  DeltaWrapMsg(std::uint64_t epoch, std::uint64_t seq,
               std::uint32_t inner_type, Bytes payload)
      : epoch(epoch),
        seq(seq),
        inner_type(inner_type),
        payload(std::move(payload)) {}

  std::uint32_t type_id() const override { return 90; }
  sim::Layer layer() const override { return sim::Layer::kOther; }
  void encode_payload(Encoder& enc) const override {
    enc.put_u64(epoch);
    enc.put_u64(seq);
    enc.put_u32(inner_type);
    enc.put_bytes(BytesView(payload));
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "DELTA_WRAP(t=" << inner_type << ",epoch=" << epoch
       << ",seq=" << seq << ",|p|=" << payload.size() << ")";
    return os.str();
  }

  std::uint64_t epoch;        ///< sender chain generation
  std::uint64_t seq;          ///< position within the stream's chain
  std::uint32_t inner_type;   ///< wrapped message's type id
  Bytes payload;              ///< delta-transformed inner encoding
};

/// Receiver→sender chain reset (baseline unknown or failed validation):
/// "discard every delta baseline you hold for me and start a fresh epoch
/// above `epoch`". Also consumed by the transport layer only.
class DeltaResetMsg final : public sim::Message {
 public:
  explicit DeltaResetMsg(std::uint64_t epoch) : epoch(epoch) {}

  std::uint32_t type_id() const override { return 91; }
  sim::Layer layer() const override { return sim::Layer::kOther; }
  void encode_payload(Encoder& enc) const override { enc.put_u64(epoch); }
  std::string to_string() const override {
    std::ostringstream os;
    os << "DELTA_RESET(epoch=" << epoch << ")";
    return os.str();
  }

  std::uint64_t epoch;  ///< highest sender epoch the receiver has seen
};

}  // namespace bgla::la
