// Decision records and per-process protocol statistics, shared by every
// lattice-agreement implementation, the spec checkers, and the benches.
#pragma once

#include <cstdint>
#include <vector>

#include "lattice/elem.h"
#include "sim/delay.h"

namespace bgla::la {

struct DecisionRecord {
  lattice::Elem value;
  sim::Time time = 0;       ///< simulation time of the decide event
  std::uint64_t depth = 0;  ///< causal message-delay depth at decision
  std::uint64_t round = 0;  ///< GLA round (0 for one-shot LA)
};

struct ProposerStats {
  std::uint64_t refinements = 0;       ///< executions of the L31/L33 refine
  std::uint64_t max_round_refinements = 0;  ///< max refinements in one round
  std::uint64_t rounds_joined = 0;
  /// Signature checks skipped because the same ack (by message digest) was
  /// already verified by this process — the per-process layer of the
  /// verified-signature cache (the authority-level MAC cache is counted
  /// separately in crypto::CryptoCounters).
  std::uint64_t verifies_skipped = 0;
};

}  // namespace bgla::la
