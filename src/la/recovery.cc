#include "la/recovery.h"

#include "la/decode.h"
#include "lattice/codec.h"
#include "util/check.h"

namespace bgla::la {

namespace {

void check_count(std::uint64_t count, const Decoder& dec) {
  BGLA_CHECK_MSG(count <= dec.remaining(),
                 "decoded count " << count << " exceeds remaining bytes");
}

}  // namespace

void put_state_header(Encoder& enc, StateTag tag) {
  enc.put_u32(kStateFormatVersion);
  enc.put_u8(static_cast<std::uint8_t>(tag));
}

std::uint32_t check_state_header(Decoder& dec, StateTag tag) {
  const std::uint32_t version = dec.get_u32();
  BGLA_CHECK_MSG(version >= kMinStateFormatVersion &&
                     version <= kStateFormatVersion,
                 "unsupported state format version " << version);
  const std::uint8_t got = dec.get_u8();
  BGLA_CHECK_MSG(got == static_cast<std::uint8_t>(tag),
                 "state blob carries protocol tag "
                     << static_cast<int>(got) << ", expected "
                     << static_cast<int>(static_cast<std::uint8_t>(tag)));
  return version;
}

void encode_elems(Encoder& enc, const std::vector<Elem>& v) {
  enc.put_varint(v.size());
  for (const Elem& e : v) e.encode(enc);
}

std::vector<Elem> decode_elems(Decoder& dec) {
  const std::uint64_t count = dec.get_varint();
  check_count(count, dec);
  std::vector<Elem> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(lattice::decode_elem(dec));
  }
  return out;
}

void encode_elem_map(Encoder& enc, const std::map<ProcessId, Elem>& m) {
  enc.put_varint(m.size());
  for (const auto& [p, e] : m) {
    enc.put_u32(p);
    e.encode(enc);
  }
}

std::map<ProcessId, Elem> decode_elem_map(Decoder& dec) {
  const std::uint64_t count = dec.get_varint();
  check_count(count, dec);
  std::map<ProcessId, Elem> out;
  for (std::uint64_t i = 0; i < count; ++i) {
    const ProcessId p = dec.get_u32();
    out.emplace(p, lattice::decode_elem(dec));
  }
  return out;
}

void encode_decisions(Encoder& enc, const std::vector<DecisionRecord>& v) {
  enc.put_varint(v.size());
  for (const DecisionRecord& rec : v) {
    rec.value.encode(enc);
    enc.put_u64(rec.time);
    enc.put_u64(rec.depth);
    enc.put_u64(rec.round);
  }
}

std::vector<DecisionRecord> decode_decisions(Decoder& dec) {
  const std::uint64_t count = dec.get_varint();
  check_count(count, dec);
  std::vector<DecisionRecord> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    DecisionRecord rec;
    rec.value = lattice::decode_elem(dec);
    rec.time = dec.get_u64();
    rec.depth = dec.get_u64();
    rec.round = dec.get_u64();
    out.push_back(std::move(rec));
  }
  return out;
}

StateSummary summarize_state(BytesView blob) {
  Decoder dec{blob};
  const std::uint32_t version = dec.get_u32();
  BGLA_CHECK_MSG(version >= kMinStateFormatVersion &&
                     version <= kStateFormatVersion,
                 "unsupported state format version " << version);
  StateSummary out;
  out.tag = static_cast<StateTag>(dec.get_u8());
  const auto read_fold_counters = [&] {
    if (version >= 3) {
      out.folded_submitted = dec.get_varint();
      out.folded_decisions = dec.get_varint();
    }
  };
  switch (out.tag) {
    case StateTag::kWts: {
      dec.get_u8();   // state
      dec.get_u64();  // ts
      out.proposal = lattice::decode_elem(dec);
      lattice::decode_elem(dec);  // proposed_set
      lattice::decode_elem(dec);  // accepted_set
      lattice::decode_elem(dec);  // svs_join
      out.svs = decode_elem_map(dec);
      if (dec.get_bool()) out.decisions = decode_decisions(dec);
      break;
    }
    case StateTag::kSbs: {
      dec.get_u8();   // state
      dec.get_u64();  // ts
      out.proposal = lattice::decode_elem(dec);
      decode_signed_value_set(dec);  // safety_set
      decode_signed_value_set(dec);  // safe_candidates
      decode_safe_value_set(dec);    // proposed_set
      decode_safe_value_set(dec);    // accepted_set
      const std::uint64_t num_acks = dec.get_varint();
      check_count(num_acks, dec);
      for (std::uint64_t i = 0; i < num_acks; ++i) dec.get_bytes();
      const std::uint64_t nbyz = dec.get_varint();
      check_count(nbyz, dec);
      for (std::uint64_t i = 0; i < nbyz; ++i) dec.get_bool();
      if (dec.get_bool()) out.decisions = decode_decisions(dec);
      break;
    }
    case StateTag::kGwts:
    case StateTag::kReplica: {  // Replica wraps the GWTS core
      dec.get_u64();  // round
      dec.get_u64();  // ts
      dec.get_u64();  // safe_r
      dec.get_u64();  // ack_tag_counter
      dec.get_bool();              // in_round
      lattice::decode_elem(dec);   // proposed_set
      lattice::decode_elem(dec);   // decided_set
      lattice::decode_elem(dec);   // pending_batch
      lattice::decode_elem(dec);   // svs_join
      lattice::decode_elem(dec);   // accepted_set
      read_fold_counters();
      out.submitted = decode_elems(dec);
      out.decisions = decode_decisions(dec);
      out.svs = decode_elem_map(dec);
      break;
    }
    case StateTag::kFaleiro: {
      lattice::decode_elem(dec);  // pending
      lattice::decode_elem(dec);  // proposed_set
      lattice::decode_elem(dec);  // accepted_set
      dec.get_u64();              // ts
      dec.get_u64();              // decided_rounds
      read_fold_counters();
      out.submitted = decode_elems(dec);
      out.decisions = decode_decisions(dec);
      break;
    }
    case StateTag::kGsbs: {
      dec.get_u8();   // state
      dec.get_u64();  // round
      dec.get_u64();  // ts
      dec.get_u64();  // trusted
      dec.get_bool();             // in_round
      lattice::decode_elem(dec);  // pending_batch
      read_fold_counters();
      out.submitted = decode_elems(dec);
      decode_signed_batch_set(dec);  // my_safety_set
      decode_safe_batch_set(dec);    // proposed
      decode_safe_batch_set(dec);    // decided
      decode_safe_batch_set(dec);    // accepted
      const std::uint64_t num_rounds = dec.get_varint();
      check_count(num_rounds, dec);
      for (std::uint64_t i = 0; i < num_rounds; ++i) {
        dec.get_u64();
        decode_signed_batch_set(dec);
      }
      out.decisions = decode_decisions(dec);
      break;
    }
    default:
      BGLA_CHECK_MSG(false, "state blob carries unknown protocol tag "
                                << static_cast<int>(out.tag));
  }
  return out;
}

}  // namespace bgla::la
