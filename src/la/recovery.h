// Durable-state format shared by the protocol export/import hooks.
//
// Crash-recovery path: a host (tools/bgla_node) wires a persist hook that
// encodes export_state() into a store::ReplicaStore WAL record after every
// durable transition. On restart the host reloads snapshot+WAL, calls
// import_state() on a freshly constructed process *before* the transport
// starts, and the process rejoins the cluster through the type-70/71
// catch-up exchange (la/messages.h) from on_start().
//
// Every exported blob starts with a (version, protocol tag) header so a
// data directory written by a different protocol or schema version fails
// loudly at import instead of silently misparsing.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "la/record.h"
#include "lattice/elem.h"
#include "util/codec.h"
#include "util/ids.h"

namespace bgla::la {

using lattice::Elem;

// v2: ingress-batcher pending queue persisted as its join in the old
// pending-batch slot; GWTS/GSbS blobs gained a trailing pipelining
// watermark (highest round disclosed/signed ahead).
// v3: decided-prefix compaction — the generalized protocols
// (GWTS/Replica, Faleiro, GSbS) write two fold counters (submissions and
// decision records absorbed into their surviving neighbors) immediately
// before the submitted list. The vectors themselves are already folded:
// the oldest retained decision record is the join of everything dropped
// before it (decision chains are monotone), and the oldest retained
// submission is the join of the folded submissions — so v3 blobs shrink
// while every spec invariant still checks against the stored vectors
// alone. v2 blobs are read as fold counters = 0.
inline constexpr std::uint32_t kStateFormatVersion = 3;
inline constexpr std::uint32_t kMinStateFormatVersion = 2;

/// One tag per protocol with durable state; pointing a replica at a data
/// directory written by a different protocol is a config error that must
/// be loud.
enum class StateTag : std::uint8_t {
  kWts = 1,
  kGwts = 2,
  kFaleiro = 3,
  kSbs = 4,
  kGsbs = 5,
  kReplica = 6,
};

void put_state_header(Encoder& enc, StateTag tag);

/// Throws CheckError on an unsupported version or a protocol-tag
/// mismatch; returns the blob's format version (importers branch on it
/// for fields added after v2).
std::uint32_t check_state_header(Decoder& dec, StateTag tag);

void encode_elems(Encoder& enc, const std::vector<Elem>& v);
std::vector<Elem> decode_elems(Decoder& dec);

void encode_elem_map(Encoder& enc, const std::map<ProcessId, Elem>& m);
std::map<ProcessId, Elem> decode_elem_map(Decoder& dec);

void encode_decisions(Encoder& enc, const std::vector<DecisionRecord>& v);
std::vector<DecisionRecord> decode_decisions(Decoder& dec);

/// The protocol-agnostic slice of a durable state blob that the spec
/// checkers need: what the process submitted/proposed, what it decided,
/// and (where the protocol tracks it) its per-origin disclosure view.
/// Lets an offline tool (tools/bgla_nemesis) turn surviving data
/// directories into la::LaView / la::GlaView records without
/// constructing protocol objects.
struct StateSummary {
  StateTag tag{};
  Elem proposal;                          ///< one-shot protocols: pro_i
  std::vector<Elem> submitted;            ///< generalized protocols
  std::vector<DecisionRecord> decisions;  ///< one-shot: zero or one
  std::map<ProcessId, Elem> svs;          ///< WTS/GWTS disclosure view
  /// v3 decided-prefix compaction accounting: how many submissions /
  /// decision records were folded into the heads of the vectors above
  /// (0 for v2 blobs and uncompacted replicas).
  std::uint64_t folded_submitted = 0;
  std::uint64_t folded_decisions = 0;
};

/// Structurally decodes any export_state() blob (no signature checks).
/// Throws CheckError on malformed input — same loudness contract as the
/// import hooks.
StateSummary summarize_state(BytesView blob);

}  // namespace bgla::la
