#include "la/sbs.h"

#include "la/decode.h"
#include "lattice/codec.h"

namespace bgla::la {

SbsProcess::SbsProcess(net::Transport& net, ProcessId id, LaConfig cfg,
                       const crypto::SignatureAuthority& auth,
                       Elem proposal)
    : sim::Process(net, id),
      cfg_(cfg),
      auth_(auth),
      signer_(auth.signer_for(id)),
      initial_proposal_(std::move(proposal)),
      byz_(cfg.n, false) {
  cfg_.validate();
  BGLA_CHECK_MSG(!initial_proposal_.is_bottom() &&
                     cfg_.admissible(initial_proposal_),
                 "SbS: initial proposal must be an admissible value");
}

void SbsProcess::on_start() {
  if (recovered_) {
    rejoin();
    return;
  }
  // Alg 8 L9-12: sign and broadcast the proposed value.
  const SignedValue payload = make_signed_value(signer_, initial_proposal_);
  safety_set_.insert(payload);
  persist();
  send_to_group(cfg_.n, std::make_shared<SInitMsg>(payload));
}

void SbsProcess::on_message(ProcessId from, const sim::MessagePtr& msg) {
  if (const auto* m = dynamic_cast<const SInitMsg*>(msg.get())) {
    handle_init(from, *m);
  } else if (const auto* m = dynamic_cast<const SSafeReqMsg*>(msg.get())) {
    handle_safe_req(from, *m);
  } else if (const auto* m = dynamic_cast<const SSafeAckMsg*>(msg.get())) {
    handle_safe_ack(from, *m, msg);
  } else if (const auto* m = dynamic_cast<const SAckReqMsg*>(msg.get())) {
    handle_ack_req(from, *m);
  } else if (const auto* m = dynamic_cast<const SAckMsg*>(msg.get())) {
    handle_ack(from, *m);
  } else if (const auto* m = dynamic_cast<const SNackMsg*>(msg.get())) {
    handle_nack(from, *m);
  }
}

void SbsProcess::handle_init(ProcessId, const SInitMsg& m) {
  // Alg 8 L13-15.
  if (state_ != State::kInit) return;
  if (!m.sv.verify(auth_)) return;
  if (!cfg_.admissible(m.sv.value)) return;  // value ∈ E
  safety_set_.insert(m.sv);
  safety_set_.remove_conflicts(auth_);
  persist();
  maybe_start_safetying();
}

void SbsProcess::maybe_start_safetying() {
  // Alg 8 L17-19.
  if (state_ != State::kInit) return;
  if (safety_set_.size() < cfg_.disclosure_threshold()) return;
  state_ = State::kSafetying;
  persist();
  send_to_group(cfg_.n, std::make_shared<SSafeReqMsg>(safety_set_));
}

void SbsProcess::handle_safe_req(ProcessId from, const SSafeReqMsg& m) {
  // Alg 9 L3-6 (acceptor role, always active).
  for (const auto& [k, sv] : m.set.entries()) {
    if (!sv.verify(auth_)) return;  // drop requests with bogus signatures
  }
  const SignedValueSet combined = m.set.unioned(safe_candidates_);
  std::vector<ConflictPair> conflicts = combined.conflicts(auth_);
  const crypto::Signature sig = signer_.sign(
      SSafeAckMsg::signed_payload(m.set, conflicts, id()));
  SignedValueSet cleaned = combined;
  cleaned.remove_conflicts(auth_);
  safe_candidates_ = safe_candidates_.unioned(cleaned);
  persist();  // the signed safe_ack below commits this conflict knowledge
  send(from, std::make_shared<SSafeAckMsg>(m.set, std::move(conflicts),
                                           id(), sig));
}

void SbsProcess::handle_safe_ack(ProcessId from, const SSafeAckMsg& m,
                                 const sim::MessagePtr& self) {
  // Alg 8 L20-24.
  if (state_ != State::kSafetying) return;
  bool valid = m.verify(auth_) && m.acceptor == from &&
               m.rcvd.same_as(safety_set_);
  if (valid) {
    for (const auto& [x, y] : m.conflicts) {
      if (!verify_conflict_pair(x, y, auth_)) {
        valid = false;
        break;
      }
    }
  }
  if (!valid) {
    byz_[from] = true;
    return;
  }
  verified_acks_.insert(m.digest());
  if (safe_ack_senders_.insert(from).second) {
    safe_acks_.push_back(
        std::static_pointer_cast<const SSafeAckMsg>(self));
    persist();
  }
  maybe_start_proposing();
}

void SbsProcess::maybe_start_proposing() {
  // Alg 8 L26-32.
  if (state_ != State::kSafetying) return;
  if (safe_acks_.size() < cfg_.quorum()) return;

  for (const auto& [k, sv] : safety_set_.entries()) {
    bool conflicted = false;
    for (const SafeAckPtr& ack : safe_acks_) {
      if (ack->mentions_conflict(k)) {
        conflicted = true;
        break;
      }
    }
    if (!conflicted) {
      proposed_set_.insert(SafeValue{sv, safe_acks_});
    }
  }
  state_ = State::kProposing;
  ack_set_.clear();
  ++ts_;
  if (obs_spans() && !span_ctx_.valid()) {
    span_ctx_ = obs_new_trace();
    span_start_us_ = obs_steady_us();
    obs_span("submit", span_ctx_, /*parent=*/0, /*dur_us=*/0);
  }
  persist();
  broadcast_proposal();
}

void SbsProcess::broadcast_proposal() {
  obs_propose(/*proposal=*/0, /*round=*/ts_);
  auto req = std::make_shared<SAckReqMsg>(proposed_set_, ts_);
  if (span_ctx_.valid()) {
    span_propose_us_ = obs_steady_us();
    req->set_trace_ctx(span_ctx_);  // before the first encode
  }
  send_to_group(cfg_.n, req);
}

bool SbsProcess::all_safe(const SafeValueSet& set, const LaConfig& cfg,
                          const crypto::SignatureAuthority& auth,
                          std::set<crypto::Digest>* verified_acks,
                          std::uint64_t* skipped) {
  // Alg 10 L13-20 (AllSafe).
  for (const auto& [k, sv] : set.entries()) {
    if (!cfg.admissible(sv.v.value) || !sv.v.verify(auth)) return false;
    if (sv.proof.size() < cfg.quorum()) return false;
    std::set<ProcessId> senders;
    for (const SafeAckPtr& ack : sv.proof) {
      if (ack == nullptr) return false;
      if (verified_acks != nullptr &&
          verified_acks->count(ack->digest()) > 0) {
        if (skipped != nullptr) ++*skipped;
      } else {
        if (!ack->verify(auth)) return false;
        if (verified_acks != nullptr) verified_acks->insert(ack->digest());
      }
      if (!senders.insert(ack->acceptor).second) return false;  // dup
      if (!ack->rcvd.contains(k)) return false;  // v ∉ echoed proposal
      if (ack->mentions_conflict(k)) return false;
    }
  }
  return true;
}

void SbsProcess::handle_ack_req(ProcessId from, const SAckReqMsg& m) {
  // Alg 9 L7-14 (acceptor role).
  if (!all_safe(m.proposal, cfg_, auth_, &verified_acks_,
                &stats_.verifies_skipped)) {
    return;
  }
  obs_child_span("ack", m.trace_ctx(), /*dur_us=*/0, "peer", from);
  if (accepted_set_.leq(m.proposal)) {
    accepted_set_ = m.proposal;
    persist();  // the ack below is a promise; it must survive a crash
    auto ack = std::make_shared<SAckMsg>(accepted_set_, m.ts);
    if (m.trace_ctx().valid()) ack->set_trace_ctx(m.trace_ctx());
    send(from, ack);
  } else {
    auto nack = std::make_shared<SNackMsg>(accepted_set_, m.ts);
    if (m.trace_ctx().valid()) nack->set_trace_ctx(m.trace_ctx());
    send(from, nack);
    accepted_set_ = accepted_set_.unioned(m.proposal);
    persist();
  }
}

void SbsProcess::handle_ack(ProcessId from, const SAckMsg& m) {
  // Alg 8 L33-38.
  if (state_ != State::kProposing || m.ts != ts_) return;
  if (m.accepted.same_as(proposed_set_) && !byz_[from]) {
    obs_ack(from);
    ack_set_.insert(from);
    if (ack_set_.size() >= cfg_.quorum()) decide();
  } else {
    byz_[from] = true;
  }
}

void SbsProcess::handle_nack(ProcessId from, const SNackMsg& m) {
  // Alg 8 L39-47.
  if (state_ != State::kProposing || m.ts != ts_) return;
  obs_nack(from);
  const SafeValueSet merged = m.accepted.unioned(proposed_set_);
  if (!merged.same_as(proposed_set_) && !byz_[from] &&
      all_safe(m.accepted, cfg_, auth_, &verified_acks_,
               &stats_.verifies_skipped)) {
    proposed_set_ = merged;
    ack_set_.clear();
    ++ts_;
    ++stats_.refinements;
    obs_refine(/*proposal=*/0, stats_.refinements);
    persist();
    broadcast_proposal();
  } else {
    byz_[from] = true;
  }
}

void SbsProcess::decide() {
  // Alg 8 L48-51.
  BGLA_CHECK(state_ == State::kProposing);
  state_ = State::kDecided;
  DecisionRecord rec;
  rec.value = proposed_set_.join_values();
  rec.time = net().now();
  rec.depth = net().current_depth();
  decision_ = rec;
  obs_decide(/*proposal=*/0, /*round=*/0, stats_.refinements);
  if (span_ctx_.valid()) {
    const std::uint64_t now = obs_steady_us();
    obs_child_span("round", span_ctx_, now - span_start_us_, "round", 0);
    obs_child_span("quorum", span_ctx_, now - span_propose_us_);
  }
  persist();
}

std::map<ProcessId, Elem> SbsProcess::proposed_by() const {
  std::map<ProcessId, Elem> out;
  for (const auto& [k, sv] : proposed_set_.entries()) {
    auto& slot = out[k.signer];
    slot = slot.join(sv.v.value);
  }
  return out;
}

const DecisionRecord& SbsProcess::decision() const {
  BGLA_CHECK_MSG(decision_.has_value(), "SbS process has not decided");
  return *decision_;
}

// ------------------------------------------------------ crash recovery ----

void SbsProcess::export_state(Encoder& enc) const {
  put_state_header(enc, StateTag::kSbs);
  enc.put_u8(static_cast<std::uint8_t>(state_));
  enc.put_u64(ts_);
  initial_proposal_.encode(enc);
  safety_set_.encode(enc);
  safe_candidates_.encode(enc);
  proposed_set_.encode(enc);
  accepted_set_.encode(enc);
  enc.put_varint(safe_acks_.size());
  for (const SafeAckPtr& ack : safe_acks_) {
    enc.put_bytes(BytesView(ack->encoded()));
  }
  enc.put_varint(byz_.size());
  for (const bool b : byz_) enc.put_bool(b);
  enc.put_bool(decision_.has_value());
  if (decision_.has_value()) {
    std::vector<DecisionRecord> one{*decision_};
    encode_decisions(enc, one);
  }
}

void SbsProcess::import_state(Decoder& dec) {
  check_state_header(dec, StateTag::kSbs);
  const std::uint8_t st = dec.get_u8();
  BGLA_CHECK_MSG(st <= static_cast<std::uint8_t>(State::kDecided),
                 "SbS: bad persisted state " << static_cast<int>(st));
  state_ = static_cast<State>(st);
  ts_ = dec.get_u64();
  initial_proposal_ = lattice::decode_elem(dec);
  safety_set_ = decode_signed_value_set(dec);
  safe_candidates_ = decode_signed_value_set(dec);
  proposed_set_ = decode_safe_value_set(dec);
  accepted_set_ = decode_safe_value_set(dec);
  const std::uint64_t num_acks = dec.get_varint();
  BGLA_CHECK_MSG(num_acks <= dec.remaining(),
                 "SbS: ack count exceeds remaining bytes");
  safe_acks_.clear();
  safe_ack_senders_.clear();
  for (std::uint64_t i = 0; i < num_acks; ++i) {
    SafeAckPtr ack = decode_safe_ack_blob(dec.get_bytes());
    BGLA_CHECK_MSG(ack->verify(auth_),
                   "SbS: persisted safe_ack fails verification");
    safe_ack_senders_.insert(ack->acceptor);
    safe_acks_.push_back(std::move(ack));
  }
  const std::uint64_t nbyz = dec.get_varint();
  BGLA_CHECK_MSG(nbyz == cfg_.n, "SbS: byz vector size mismatch");
  for (std::uint32_t i = 0; i < cfg_.n; ++i) byz_[i] = dec.get_bool();
  if (dec.get_bool()) {
    const std::vector<DecisionRecord> one = decode_decisions(dec);
    BGLA_CHECK_MSG(one.size() == 1, "SbS: malformed decision record");
    decision_ = one.front();
  }
  recovered_ = true;
}

void SbsProcess::rejoin() {
  obs_rejoin_start();
  switch (state_) {
    case State::kInit: {
      // Byte-identical re-init (the HMAC signature is deterministic), so
      // peers that already hold our value just re-insert it.
      const SignedValue payload =
          make_signed_value(signer_, initial_proposal_);
      safety_set_.insert(payload);
      send_to_group(cfg_.n, std::make_shared<SInitMsg>(payload));
      maybe_start_safetying();
      break;
    }
    case State::kSafetying:
      // Re-request safe_acks for the persisted safety set; acceptors
      // answer idempotently. Acks already persisted keep counting.
      send_to_group(cfg_.n, std::make_shared<SSafeReqMsg>(safety_set_));
      maybe_start_proposing();
      break;
    case State::kProposing:
      ++ts_;
      ack_set_.clear();
      persist();
      broadcast_proposal();
      break;
    case State::kDecided:
      break;  // acceptor role continues from the persisted sets
  }
  obs_rejoin_done();
}

}  // namespace bgla::la
