// SbS — Safety by Signature (paper §8, Algorithms 8, 9 and 10).
//
// One-shot Byzantine Lattice Agreement with linear message complexity
// (O(n) per process when f = O(1)), trading message count for message
// size (proposals carry proofs of safety, up to O(n²) bytes).
//
// Three phases per proposer:
//   Init      — broadcast the signed proposed value; collect n−f signed
//               values, removing conflicting pairs.
//   Safetying — ship the collected set to acceptors; an acceptor answers
//               with a signed safe_ack echoing the set and reporting every
//               conflict it knows; ⌊(n+f)/2⌋+1 clean safe_acks form a
//               per-value proof of safety (Definition 7 / Lemma 13: at
//               most one value per signer can ever become safe).
//   Proposing — the WTS deciding phase, except every value carries its
//               proof and both roles refuse values without valid proofs;
//               misbehaving peers are blacklisted via byz[].
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "la/config.h"
#include "la/record.h"
#include "la/recovery.h"
#include "la/sbs_msgs.h"
#include "obs/trace_ctx.h"
#include "sim/network.h"

namespace bgla::la {

class SbsProcess : public sim::Process {
 public:
  enum class State { kInit, kSafetying, kProposing, kDecided };

  SbsProcess(net::Transport& net, ProcessId id, LaConfig cfg,
             const crypto::SignatureAuthority& auth, Elem proposal);

  void on_start() override;
  void on_message(ProcessId from, const sim::MessagePtr& msg) override;

  // ---- observation interface ----
  State state() const { return state_; }
  bool decided() const { return decision_.has_value(); }
  const DecisionRecord& decision() const;
  const Elem& proposal() const { return initial_proposal_; }
  const ProposerStats& stats() const { return stats_; }
  const SignedValueSet& safety_set() const { return safety_set_; }
  bool marked_byz(ProcessId p) const { return byz_.at(p); }

  /// Per-signer decomposition of the current Proposed_set — each entry
  /// carries a proof of safety, so by Lemma 13 at most one value per
  /// signer can ever appear here across the whole system. Feeds the
  /// Non-Triviality checker's B attribution.
  std::map<ProcessId, Elem> proposed_by() const;

  /// AllSafe (Alg 10 L13-20) as a reusable predicate. When `verified_acks`
  /// is given, acks whose message digest is already in the set skip the
  /// signature check (sound: the digest covers payload and signature, and
  /// only acks that passed verification are inserted); `skipped` counts
  /// the checks avoided.
  static bool all_safe(const SafeValueSet& set, const LaConfig& cfg,
                       const crypto::SignatureAuthority& auth,
                       std::set<crypto::Digest>* verified_acks = nullptr,
                       std::uint64_t* skipped = nullptr);

  // ---- crash-recovery interface (see la/recovery.h) ----
  //
  // Proof-carrying sets round-trip through the same canonical encodings
  // the wire uses (la/decode.h), so persisted proofs re-verify on import.
  // On rejoin the process replays its current phase's outbound message:
  // every SbS handler is an idempotent responder, and a re-sent proposal
  // gets a fresh timestamp so stale acks cannot count.
  void export_state(Encoder& enc) const;
  void import_state(Decoder& dec);
  void set_persist_hook(std::function<void()> hook) {
    persist_hook_ = std::move(hook);
  }
  bool recovered() const { return recovered_; }

 private:
  void handle_init(ProcessId from, const SInitMsg& m);
  void maybe_start_safetying();
  void handle_safe_req(ProcessId from, const SSafeReqMsg& m);
  void handle_safe_ack(ProcessId from, const SSafeAckMsg& m,
                       const sim::MessagePtr& self);
  void maybe_start_proposing();
  void handle_ack_req(ProcessId from, const SAckReqMsg& m);
  void handle_ack(ProcessId from, const SAckMsg& m);
  void handle_nack(ProcessId from, const SNackMsg& m);
  void broadcast_proposal();
  void decide();
  void persist() {
    if (persist_hook_) persist_hook_();
  }
  void rejoin();

  LaConfig cfg_;
  const crypto::SignatureAuthority& auth_;
  crypto::Signer signer_;

  Elem initial_proposal_;
  State state_ = State::kInit;

  // Init phase.
  SignedValueSet safety_set_;

  // Safetying phase.
  std::set<ProcessId> safe_ack_senders_;
  std::vector<SafeAckPtr> safe_acks_;

  // Proposing phase (proposer role).
  SafeValueSet proposed_set_;
  std::uint64_t ts_ = 0;
  std::set<ProcessId> ack_set_;
  std::vector<bool> byz_;

  // Acceptor role.
  SignedValueSet safe_candidates_;
  SafeValueSet accepted_set_;

  // Digests of safe_acks this process has already verified; proofs are
  // re-checked on every ack_req/nack, so each ack is MAC-checked once.
  std::set<crypto::Digest> verified_acks_;

  std::optional<DecisionRecord> decision_;
  ProposerStats stats_;

  // Causal span state (one-shot protocol: command trace == round trace).
  obs::TraceContext span_ctx_;
  std::uint64_t span_start_us_ = 0;
  std::uint64_t span_propose_us_ = 0;

  // Crash-recovery state.
  std::function<void()> persist_hook_;
  bool recovered_ = false;
};

}  // namespace bgla::la
