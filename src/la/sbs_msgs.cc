#include "la/sbs_msgs.h"

namespace bgla::la {

void SSafeAckMsg::encode_payload(Encoder& enc) const {
  enc.put_bytes(payload_cache_.encoded(
      [this] { return signed_payload(rcvd, conflicts, acceptor); }));
  enc.put_u32(sig.signer);
  enc.put_bytes(BytesView(sig.mac.data(), sig.mac.size()));
}

std::string SSafeAckMsg::to_string() const {
  std::ostringstream os;
  os << "S_SAFE_ACK(acc=" << acceptor << ",rcvd=" << rcvd.size()
     << ",conflicts=" << conflicts.size() << ")";
  return os.str();
}

Bytes SSafeAckMsg::signed_payload(
    const SignedValueSet& rcvd, const std::vector<ConflictPair>& conflicts,
    ProcessId acceptor) {
  Encoder enc;
  rcvd.encode(enc);
  enc.put_varint(conflicts.size());
  for (const auto& [x, y] : conflicts) {
    x.encode(enc);
    y.encode(enc);
  }
  enc.put_u32(acceptor);
  return enc.take();
}

bool SSafeAckMsg::verify(const crypto::SignatureAuthority& auth) const {
  if (sig.signer != acceptor) return false;
  const auto fill = [this] {
    return signed_payload(rcvd, conflicts, acceptor);
  };
  return auth.verify_with_digest(sig, payload_cache_.digest(fill),
                                 payload_cache_.encoded(fill));
}

bool SSafeAckMsg::mentions_conflict(const SignedValue::Key& k) const {
  for (const auto& [x, y] : conflicts) {
    if (x.key() == k || y.key() == k) return true;
  }
  return false;
}

}  // namespace bgla::la
