// Wire messages of the signature-based algorithms (§8, type ids 40..49,
// and the generalised variant §8.2, ids 50..59).
#pragma once

#include <sstream>
#include <vector>

#include "la/signed_value.h"
#include "sim/message.h"
#include "util/memo.h"

namespace bgla::la {

/// <init_phase, payload> (Alg 8 L12): a signed proposed value.
class SInitMsg final : public sim::Message {
 public:
  explicit SInitMsg(SignedValue sv) : sv(std::move(sv)) {}

  std::uint32_t type_id() const override { return 40; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override { sv.encode(enc); }
  std::string to_string() const override {
    return "S_INIT(" + sv.to_string() + ")";
  }

  SignedValue sv;
};

/// <safe_req, Safety_set> (Alg 8 L19).
class SSafeReqMsg final : public sim::Message {
 public:
  explicit SSafeReqMsg(SignedValueSet set) : set(std::move(set)) {}

  std::uint32_t type_id() const override { return 41; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override { set.encode(enc); }
  std::string to_string() const override {
    return "S_SAFE_REQ(" + set.to_string() + ")";
  }

  SignedValueSet set;
};

/// Signed <safe_ack, Rcvd_set, Conflicts> (Alg 9 L5). The acceptor signs
/// (rcvd, conflicts, acceptor), making the ack usable by third parties as
/// part of a proof of safety.
class SSafeAckMsg final : public sim::Message {
 public:
  SSafeAckMsg(SignedValueSet rcvd, std::vector<ConflictPair> conflicts,
              ProcessId acceptor, crypto::Signature sig)
      : rcvd(std::move(rcvd)),
        conflicts(std::move(conflicts)),
        acceptor(acceptor),
        sig(sig) {}

  std::uint32_t type_id() const override { return 42; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override;
  std::string to_string() const override;

  /// Canonical bytes the acceptor signs.
  static Bytes signed_payload(const SignedValueSet& rcvd,
                              const std::vector<ConflictPair>& conflicts,
                              ProcessId acceptor);

  bool verify(const crypto::SignatureAuthority& auth) const;

  /// True iff this ack mentions the key in any conflict pair.
  bool mentions_conflict(const SignedValue::Key& k) const;

  SignedValueSet rcvd;
  std::vector<ConflictPair> conflicts;
  ProcessId acceptor;
  crypto::Signature sig;

 private:
  // Memoized signed payload — acks are re-verified inside every SafeValue
  // proof they appear in, so the payload encoding is the hot part.
  util::EncodingCache payload_cache_;
};

/// <ack_req, Proposed_set, ts> (Alg 8 L32) — proposal with safety proofs.
class SAckReqMsg final : public sim::Message {
 public:
  SAckReqMsg(SafeValueSet proposal, std::uint64_t ts)
      : proposal(std::move(proposal)), ts(ts) {}

  std::uint32_t type_id() const override { return 43; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override {
    proposal.encode(enc);
    enc.put_u64(ts);
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "S_ACK_REQ(ts=" << ts << "," << proposal.to_string() << ")";
    return os.str();
  }

  SafeValueSet proposal;
  std::uint64_t ts;
};

/// <ack, Accepted_set, x> (Alg 9 L11).
class SAckMsg final : public sim::Message {
 public:
  SAckMsg(SafeValueSet accepted, std::uint64_t ts)
      : accepted(std::move(accepted)), ts(ts) {}

  std::uint32_t type_id() const override { return 44; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override {
    accepted.encode(enc);
    enc.put_u64(ts);
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "S_ACK(ts=" << ts << ")";
    return os.str();
  }

  SafeValueSet accepted;
  std::uint64_t ts;
};

/// <nack, Accepted_set, x> (Alg 9 L13).
class SNackMsg final : public sim::Message {
 public:
  SNackMsg(SafeValueSet accepted, std::uint64_t ts)
      : accepted(std::move(accepted)), ts(ts) {}

  std::uint32_t type_id() const override { return 45; }
  sim::Layer layer() const override { return sim::Layer::kAgreement; }
  void encode_payload(Encoder& enc) const override {
    accepted.encode(enc);
    enc.put_u64(ts);
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "S_NACK(ts=" << ts << "," << accepted.to_string() << ")";
    return os.str();
  }

  SafeValueSet accepted;
  std::uint64_t ts;
};

}  // namespace bgla::la
