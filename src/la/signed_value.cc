#include "la/signed_value.h"

#include <algorithm>
#include <sstream>

#include "la/sbs_msgs.h"
#include "util/check.h"

namespace bgla::la {

void SignedValue::encode(Encoder& enc) const {
  value.encode(enc);
  enc.put_u32(sig.signer);
  enc.put_bytes(BytesView(sig.mac.data(), sig.mac.size()));
}

std::string SignedValue::to_string() const {
  std::ostringstream os;
  os << value.to_string() << "@p" << sig.signer;
  return os.str();
}

SignedValue make_signed_value(const crypto::Signer& signer, Elem value) {
  SignedValue sv;
  sv.sig = signer.sign(value.encoded());
  sv.value = std::move(value);
  return sv;
}

bool verify_conflict_pair(const SignedValue& x, const SignedValue& y,
                          const crypto::SignatureAuthority& auth) {
  // Alg 10 L11-12.
  return x.verify(auth) && y.verify(auth) &&
         x.sender() == y.sender() && !(x.value == y.value);
}

// ------------------------------------------------------ SignedValueSet --

bool SignedValueSet::insert(const SignedValue& sv) {
  const bool inserted = entries_.emplace(sv.key(), sv).second;
  if (inserted) fp_cache_.reset();
  return inserted;
}

std::vector<ConflictPair> SignedValueSet::conflicts(
    const crypto::SignatureAuthority& auth) const {
  std::vector<ConflictPair> out;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    auto jt = it;
    for (++jt; jt != entries_.end(); ++jt) {
      if (it->first.signer != jt->first.signer) break;  // keys sorted
      if (verify_conflict_pair(it->second, jt->second, auth)) {
        out.emplace_back(it->second, jt->second);
      }
    }
  }
  return out;
}

void SignedValueSet::remove_conflicts(
    const crypto::SignatureAuthority& auth) {
  for (const auto& [x, y] : conflicts(auth)) {
    if (entries_.erase(x.key()) + entries_.erase(y.key()) > 0) {
      fp_cache_.reset();
    }
  }
}

SignedValueSet SignedValueSet::unioned(const SignedValueSet& other) const {
  SignedValueSet out = *this;
  for (const auto& [k, sv] : other.entries_) {
    if (out.entries_.emplace(k, sv).second) out.fp_cache_.reset();
  }
  return out;
}

Elem SignedValueSet::join_values() const {
  Elem acc;
  for (const auto& [k, sv] : entries_) acc = acc.join(sv.value);
  return acc;
}

crypto::Digest SignedValueSet::fingerprint() const {
  if (fp_cache_.has_value()) return *fp_cache_;
  Encoder enc;
  enc.put_varint(entries_.size());
  for (const auto& [k, sv] : entries_) {
    enc.put_u32(k.signer);
    enc.put_bytes(BytesView(k.value_digest.data(), k.value_digest.size()));
  }
  fp_cache_ = crypto::Sha256::hash(enc.bytes());
  return *fp_cache_;
}

void SignedValueSet::encode(Encoder& enc) const {
  enc.put_varint(entries_.size());
  for (const auto& [k, sv] : entries_) sv.encode(enc);
}

std::string SignedValueSet::to_string() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [k, sv] : entries_) {
    if (!first) os << ",";
    first = false;
    os << sv.to_string();
  }
  os << "}";
  return os.str();
}

// --------------------------------------------------------- SafeValueSet --

void SafeValue::encode(Encoder& enc) const {
  v.encode(enc);
  enc.put_varint(proof.size());
  for (const SafeAckPtr& ack : proof) {
    const crypto::Digest d = ack->digest();
    enc.put_bytes(BytesView(d.data(), d.size()));
  }
}

bool SafeValueSet::insert(const SafeValue& sv) {
  const bool inserted = entries_.emplace(sv.v.key(), sv).second;
  if (inserted) fp_cache_.reset();
  return inserted;
}

bool SafeValueSet::leq(const SafeValueSet& other) const {
  for (const auto& [k, sv] : entries_) {
    if (other.entries_.count(k) == 0) return false;
  }
  return true;
}

bool SafeValueSet::same_as(const SafeValueSet& other) const {
  return fingerprint() == other.fingerprint();
}

SafeValueSet SafeValueSet::unioned(const SafeValueSet& other) const {
  SafeValueSet out = *this;
  for (const auto& [k, sv] : other.entries_) {
    if (out.entries_.emplace(k, sv).second) out.fp_cache_.reset();
  }
  return out;
}

Elem SafeValueSet::join_values() const {
  Elem acc;
  for (const auto& [k, sv] : entries_) acc = acc.join(sv.v.value);
  return acc;
}

crypto::Digest SafeValueSet::fingerprint() const {
  if (fp_cache_.has_value()) return *fp_cache_;
  Encoder enc;
  enc.put_varint(entries_.size());
  for (const auto& [k, sv] : entries_) {
    enc.put_u32(k.signer);
    enc.put_bytes(BytesView(k.value_digest.data(), k.value_digest.size()));
  }
  fp_cache_ = crypto::Sha256::hash(enc.bytes());
  return *fp_cache_;
}

void SafeValueSet::encode(Encoder& enc) const {
  // Proof bundles are shared across values (Alg 8 attaches the same
  // Safe_acks set to every value); encode each distinct ack once so the
  // byte size reflects the paper's O(n²) message-size trade-off rather
  // than an O(n³) blow-up.
  std::vector<const SSafeAckMsg*> distinct;
  std::map<const SSafeAckMsg*, std::size_t> index;
  for (const auto& [k, sv] : entries_) {
    for (const SafeAckPtr& ack : sv.proof) {
      if (index.emplace(ack.get(), distinct.size()).second) {
        distinct.push_back(ack.get());
      }
    }
  }
  enc.put_varint(distinct.size());
  for (const SSafeAckMsg* ack : distinct) {
    enc.put_bytes(ack->encoded());
  }
  enc.put_varint(entries_.size());
  for (const auto& [k, sv] : entries_) {
    sv.v.encode(enc);
    enc.put_varint(sv.proof.size());
    for (const SafeAckPtr& ack : sv.proof) {
      enc.put_varint(index.at(ack.get()));
    }
  }
}

std::string SafeValueSet::to_string() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [k, sv] : entries_) {
    if (!first) os << ",";
    first = false;
    os << sv.v.to_string() << "+" << sv.proof.size() << "acks";
  }
  os << "}";
  return os.str();
}

}  // namespace bgla::la
