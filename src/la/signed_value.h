// Signed lattice values and proof-carrying value sets for the §8
// signature-based algorithms (SbS / GSbS).
//
// A SignedValue is a lattice element signed by its proposer. A SafeValue
// pairs a SignedValue with its *proof of safety*: ⌊(n+f)/2⌋+1 signed
// safe_ack messages from distinct acceptors, none of which reports the
// value in a conflict (Definition 7). Proposals and accepted sets in the
// proposing phase are sets of SafeValues.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/signature.h"
#include "lattice/elem.h"
#include "sim/message.h"
#include "util/ids.h"

namespace bgla::la {

using lattice::Elem;

struct SignedValue {
  Elem value;
  crypto::Signature sig;  // by sig.signer over value.encoded()

  ProcessId sender() const { return sig.signer; }

  bool verify(const crypto::SignatureAuthority& auth) const {
    // The signed payload is the value's canonical encoding, whose SHA-256
    // is exactly value.digest() — both memoized, so a cached verification
    // involves no hashing at all.
    return auth.verify_with_digest(sig, value.digest(), value.encoded());
  }

  /// Identity: (signer, value digest). Two SignedValues with the same key
  /// carry the same value from the same signer.
  struct Key {
    ProcessId signer = kNoProcess;
    crypto::Digest value_digest{};
    auto operator<=>(const Key&) const = default;
  };
  Key key() const { return Key{sig.signer, value.digest()}; }

  void encode(Encoder& enc) const;
  std::string to_string() const;
};

/// Makes a SignedValue under the caller's signing capability.
SignedValue make_signed_value(const crypto::Signer& signer, Elem value);

/// VerifyConfPair (Alg 10 L11-12): both signatures valid, same signer,
/// different values.
bool verify_conflict_pair(const SignedValue& x, const SignedValue& y,
                          const crypto::SignatureAuthority& auth);

using ConflictPair = std::pair<SignedValue, SignedValue>;

/// An ordered set of SignedValues keyed by (signer, value digest).
/// fingerprint() is memoized and invalidated on every mutation.
class SignedValueSet {
 public:
  bool insert(const SignedValue& sv);  // false if already present
  bool contains(const SignedValue::Key& k) const {
    return entries_.count(k) > 0;
  }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::map<SignedValue::Key, SignedValue>& entries() const {
    return entries_;
  }

  /// All conflicting pairs (same signer, different value) in this set —
  /// ReturnConflicts over one set (Alg 10 L1-5).
  std::vector<ConflictPair> conflicts(
      const crypto::SignatureAuthority& auth) const;

  /// Removes every value involved in a conflict — RemoveConflicts
  /// (Alg 10 L6-10).
  void remove_conflicts(const crypto::SignatureAuthority& auth);

  /// Union (used for Safety_set ∪ SafeCandidates style expressions).
  SignedValueSet unioned(const SignedValueSet& other) const;

  /// Join of the contained lattice values.
  Elem join_values() const;

  /// Fingerprint over the sorted key set (set equality / echo matching).
  crypto::Digest fingerprint() const;
  bool same_as(const SignedValueSet& other) const {
    return fingerprint() == other.fingerprint();
  }

  void encode(Encoder& enc) const;
  std::string to_string() const;

 private:
  std::map<SignedValue::Key, SignedValue> entries_;
  mutable std::optional<crypto::Digest> fp_cache_;
};

// Forward declaration — full type in sbs_msgs.h.
class SSafeAckMsg;
using SafeAckPtr = std::shared_ptr<const SSafeAckMsg>;

/// A value with its attached proof of safety (<v, Safe_acks> of Alg 8).
struct SafeValue {
  SignedValue v;
  std::vector<SafeAckPtr> proof;

  void encode(Encoder& enc) const;
};

/// Set of proof-carrying values, keyed like SignedValueSet. Order (≤) and
/// equality are over the key set (proofs are evidence, not identity).
class SafeValueSet {
 public:
  bool insert(const SafeValue& sv);
  bool contains(const SignedValue::Key& k) const {
    return entries_.count(k) > 0;
  }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::map<SignedValue::Key, SafeValue>& entries() const {
    return entries_;
  }

  /// Subset on keys — the "Accepted_set ≤ Rcvd_set" order of Alg 9.
  bool leq(const SafeValueSet& other) const;
  bool same_as(const SafeValueSet& other) const;

  /// Union; on duplicate keys the existing proof is kept.
  SafeValueSet unioned(const SafeValueSet& other) const;

  Elem join_values() const;
  crypto::Digest fingerprint() const;

  void encode(Encoder& enc) const;
  std::string to_string() const;

 private:
  std::map<SignedValue::Key, SafeValue> entries_;
  mutable std::optional<crypto::Digest> fp_cache_;
};

}  // namespace bgla::la
