#include "la/spec.h"

#include <sstream>

#include "lattice/chain.h"

namespace bgla::la {

namespace {
void append_diag(std::string& diag, const std::string& line) {
  if (!diag.empty()) diag += "; ";
  diag += line;
}
}  // namespace

SpecResult check_la(const std::vector<LaView>& correct_views,
                    const std::set<ProcessId>& byz_ids, std::uint32_t f,
                    const std::function<bool(const Elem&)>& admissible) {
  SpecResult res;

  // Liveness: every correct process decided.
  for (const LaView& v : correct_views) {
    if (!v.decision.has_value()) {
      res.liveness = false;
      std::ostringstream os;
      os << "liveness: p" << v.id << " did not decide";
      append_diag(res.diagnostic, os.str());
    }
  }

  // Comparability: all decisions pairwise comparable.
  std::vector<Elem> decisions;
  for (const LaView& v : correct_views) {
    if (v.decision.has_value()) decisions.push_back(*v.decision);
  }
  const auto [i, j] = lattice::find_incomparable(decisions);
  if (i >= 0) {
    res.comparability = false;
    std::ostringstream os;
    os << "comparability: decisions " << decisions[i].to_string() << " and "
       << decisions[j].to_string() << " are incomparable";
    append_diag(res.diagnostic, os.str());
  }

  // Inclusivity: pro_i ≤ dec_i.
  for (const LaView& v : correct_views) {
    if (!v.decision.has_value() || v.proposal.is_bottom()) continue;
    if (!v.proposal.leq(*v.decision)) {
      res.inclusivity = false;
      std::ostringstream os;
      os << "inclusivity: p" << v.id << " proposal "
         << v.proposal.to_string() << " not in decision "
         << v.decision->to_string();
      append_diag(res.diagnostic, os.str());
    }
  }

  // Non-Triviality: dec_i ≤ ⊕(X ∪ B), B the Byzantine disclosures
  // gathered from the correct processes' SvS, with |B| ≤ f and B ⊆ E.
  Elem x_join;
  for (const LaView& v : correct_views) x_join = x_join.join(v.proposal);

  std::map<ProcessId, Elem> byz_values;  // at most one per Byzantine
  for (const LaView& v : correct_views) {
    for (const auto& [origin, value] : v.svs) {
      if (byz_ids.count(origin) == 0) continue;
      auto [it, inserted] = byz_values.emplace(origin, value);
      if (!inserted && !(it->second == value)) {
        // Two correct processes attribute different values to the same
        // Byzantine — reliable broadcast was supposed to prevent this.
        res.non_triviality = false;
        std::ostringstream os;
        os << "non-triviality: inconsistent disclosed value for Byzantine p"
           << origin;
        append_diag(res.diagnostic, os.str());
      }
    }
  }
  if (byz_values.size() > f) {
    res.non_triviality = false;
    std::ostringstream os;
    os << "non-triviality: |B| = " << byz_values.size() << " > f = " << f;
    append_diag(res.diagnostic, os.str());
  }
  Elem bound = x_join;
  for (const auto& [origin, value] : byz_values) {
    if (admissible && !admissible(value)) {
      res.non_triviality = false;
      std::ostringstream os;
      os << "non-triviality: inadmissible Byzantine value from p" << origin;
      append_diag(res.diagnostic, os.str());
      continue;
    }
    bound = bound.join(value);
  }
  for (const LaView& v : correct_views) {
    if (!v.decision.has_value()) continue;
    if (!v.decision->leq(bound)) {
      res.non_triviality = false;
      std::ostringstream os;
      os << "non-triviality: decision of p" << v.id << " = "
         << v.decision->to_string() << " exceeds ⊕(X ∪ B) = "
         << bound.to_string();
      append_diag(res.diagnostic, os.str());
    }
  }

  return res;
}

GlaSpecResult check_gla(const std::vector<GlaView>& correct_views,
                        const Elem& byz_disclosed,
                        std::size_t min_decisions) {
  GlaSpecResult res;

  // Liveness (finite-prefix form).
  for (const GlaView& v : correct_views) {
    if (v.decisions.size() < min_decisions) {
      res.liveness = false;
      std::ostringstream os;
      os << "liveness: p" << v.id << " made " << v.decisions.size()
         << " decisions (< " << min_decisions << ")";
      append_diag(res.diagnostic, os.str());
    }
  }

  // Local Stability.
  for (const GlaView& v : correct_views) {
    if (!lattice::is_non_decreasing(v.decisions)) {
      res.local_stability = false;
      std::ostringstream os;
      os << "local stability: p" << v.id << " decision sequence decreases";
      append_diag(res.diagnostic, os.str());
    }
  }

  // Comparability across all decisions of all processes.
  std::vector<Elem> all;
  for (const GlaView& v : correct_views)
    all.insert(all.end(), v.decisions.begin(), v.decisions.end());
  const auto [i, j] = lattice::find_incomparable(all);
  if (i >= 0) {
    res.comparability = false;
    std::ostringstream os;
    os << "comparability: decisions " << all[i].to_string() << " and "
       << all[j].to_string() << " are incomparable";
    append_diag(res.diagnostic, os.str());
  }

  // Inclusivity: every submitted value reached its submitter's final
  // decision (the harness guarantees the run went long enough).
  for (const GlaView& v : correct_views) {
    if (v.decisions.empty()) continue;
    const Elem& final_dec = v.decisions.back();
    for (const Elem& sub : v.submitted) {
      if (!sub.leq(final_dec)) {
        res.inclusivity = false;
        std::ostringstream os;
        os << "inclusivity: p" << v.id << " submitted "
           << sub.to_string() << " missing from final decision";
        append_diag(res.diagnostic, os.str());
      }
    }
  }

  // Non-Triviality: everything decided was submitted by a correct process
  // or disclosed by a Byzantine one.
  Elem bound = byz_disclosed;
  for (const GlaView& v : correct_views)
    for (const Elem& sub : v.submitted) bound = bound.join(sub);
  for (const GlaView& v : correct_views) {
    if (v.decisions.empty()) continue;
    if (!v.decisions.back().leq(bound)) {
      res.non_triviality = false;
      std::ostringstream os;
      os << "non-triviality: p" << v.id
         << " decided values outside ⊕(Prop ∪ B)";
      append_diag(res.diagnostic, os.str());
    }
  }

  return res;
}

}  // namespace bgla::la
