// Executable specifications of Byzantine Lattice Agreement (§3.1) and its
// generalised version (§6.1). Tests and benches record per-process views
// of finished runs and feed them to these checkers; a reported violation
// carries a human-readable diagnostic.
//
// The checkers are algorithm-agnostic: they take plain views, so the same
// code validates WTS, SbS, GWTS, GSbS and the crash-stop baseline (whose
// violations under Byzantine faults are exactly what bench T7 demonstrates).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "lattice/elem.h"
#include "util/ids.h"

namespace bgla::la {

using lattice::Elem;

// ------------------------------------------------------------- one-shot --

/// A correct process's view of a finished one-shot LA run.
struct LaView {
  ProcessId id = kNoProcess;
  Elem proposal;                 ///< pro_i (⊥ if pure acceptor)
  std::optional<Elem> decision;  ///< dec_i, if the process decided
  /// Disclosed values this process attributes to each origin (its SvS);
  /// used to bound the Byzantine contribution B in Non-Triviality.
  std::map<ProcessId, Elem> svs;
};

struct SpecResult {
  bool liveness = true;
  bool stability = true;
  bool comparability = true;
  bool inclusivity = true;
  bool non_triviality = true;
  std::string diagnostic;

  bool ok() const {
    return liveness && stability && comparability && inclusivity &&
           non_triviality;
  }
  /// Safety-only verdict (for runs deliberately cut short).
  bool safe() const {
    return stability && comparability && inclusivity && non_triviality;
  }
};

/// Checks the §3.1 properties over the views of the correct processes.
/// `byz_ids` identifies Byzantine processes (so their SvS entries form B;
/// the checker also verifies |B| ≤ f and B admissible via `admissible`).
SpecResult check_la(const std::vector<LaView>& correct_views,
                    const std::set<ProcessId>& byz_ids, std::uint32_t f,
                    const std::function<bool(const Elem&)>& admissible = {});

// ----------------------------------------------------------- generalised --

/// A correct process's view of a finished GLA run prefix.
struct GlaView {
  ProcessId id = kNoProcess;
  /// Values received via "new value(v)" *before the stabilisation point*
  /// (the harness must keep the run going long enough after the last
  /// submission for Inclusivity to be checkable on a finite prefix).
  std::vector<Elem> submitted;
  /// The decision sequence Dec_i.
  std::vector<Elem> decisions;
};

struct GlaSpecResult {
  bool liveness = true;        ///< every correct process reached min_decisions
  bool local_stability = true; ///< Dec_i non-decreasing
  bool comparability = true;   ///< all decisions of all processes comparable
  bool inclusivity = true;     ///< every submitted value in own final decision
  bool non_triviality = true;  ///< ⊕decisions ≤ ⊕(submissions ∪ B)
  std::string diagnostic;

  bool ok() const {
    return liveness && local_stability && comparability && inclusivity &&
           non_triviality;
  }
  bool safe() const {
    return local_stability && comparability && non_triviality;
  }
};

/// `byz_disclosed` is the union of values the Byzantine processes managed
/// to get disclosed (as observed in any correct process's SvS).
GlaSpecResult check_gla(const std::vector<GlaView>& correct_views,
                        const Elem& byz_disclosed,
                        std::size_t min_decisions);

}  // namespace bgla::la
