#include "la/wts.h"

#include "lattice/codec.h"

namespace bgla::la {

WtsProcess::WtsProcess(net::Transport& net, ProcessId id, LaConfig cfg,
                       Elem proposal)
    : sim::Process(net, id),
      cfg_(cfg),
      initial_proposal_(std::move(proposal)) {
  cfg_.validate();
  auto rb_send = [this](ProcessId to, sim::MessagePtr m) {
    send(to, std::move(m));
  };
  auto rb_deliver = [this](ProcessId origin, std::uint64_t tag,
                           const sim::MessagePtr& inner) {
    on_rb_deliver(origin, tag, inner);
  };
  if (cfg_.rb_impl == LaConfig::RbImpl::kSignedCert) {
    BGLA_CHECK_MSG(cfg_.authority != nullptr,
                   "WTS: kSignedCert RB needs a SignatureAuthority");
    rb_ = std::make_unique<bcast::CertRbEndpoint>(
        id, cfg_.n, cfg_.f, *cfg_.authority, rb_send, rb_deliver,
        cfg_.unsafe_allow_undersized);
  } else {
    rb_ = std::make_unique<bcast::BrachaEndpoint>(
        id, cfg_.n, cfg_.f, rb_send, rb_deliver,
        cfg_.unsafe_allow_undersized);
  }
  if (!initial_proposal_.is_bottom()) {
    BGLA_CHECK_MSG(cfg_.admissible(initial_proposal_),
                   "WTS: initial proposal not admissible (pro_i ∉ E)");
  }
}

void WtsProcess::on_start() {
  if (recovered_) {
    rejoin();
    return;
  }
  // Alg 1 L7-9: disclose the proposed value via reliable broadcast — or,
  // in the ablated configuration, by plain point-to-point broadcast
  // (which an equivocator can exploit; see bench_ablation).
  if (!initial_proposal_.is_bottom()) {
    proposed_set_ = proposed_set_.join(initial_proposal_);
    if (cfg_.reliable_disclosure) {
      rb_->broadcast(/*tag=*/0,
                    std::make_shared<DisclosureMsg>(initial_proposal_));
    } else {
      send_to_group(cfg_.n,
                    std::make_shared<DisclosureMsg>(initial_proposal_));
    }
  }
}

void WtsProcess::on_message(ProcessId from, const sim::MessagePtr& msg) {
  if (cfg_.reliable_disclosure) {
    if (rb_->handle(from, msg)) return;
  } else if (const auto* d =
                 dynamic_cast<const DisclosureMsg*>(msg.get())) {
    // Ablated path: treat the raw disclosure like an RB delivery keyed by
    // the (authenticated) sender.
    on_rb_deliver(from, /*tag=*/0,
                  std::make_shared<DisclosureMsg>(d->value));
    return;
  }
  // Alg 1 L20-21 / Alg 2 L3-4: buffer, then process what is processable.
  waiting_.emplace_back(from, msg);
  drain_waiting();
}

void WtsProcess::on_rb_deliver(ProcessId origin, std::uint64_t tag,
                               const sim::MessagePtr& inner) {
  // Only the tag-0 instance of each origin is a disclosure; this pins
  // Observation 1 (at most one SvS value per process).
  if (tag != 0) return;
  const auto* m = dynamic_cast<const DisclosureMsg*>(inner.get());
  if (m == nullptr) return;
  if (!cfg_.admissible(m->value)) return;  // Alg 1 L11: value ∈ E
  if (svs_.count(origin) > 0) return;      // RB no-duplication safeguard

  if (state_ == State::kDisclosing) {
    proposed_set_ = proposed_set_.join(m->value);  // Alg 1 L13
  }
  svs_.emplace(origin, m->value);  // Alg 1 L14
  svs_join_ = svs_join_.join(m->value);
  persist();

  maybe_start_proposing();  // Alg 1 L17 guard
  drain_waiting();          // SvS grew: some waiting messages may be safe
}

void WtsProcess::maybe_start_proposing() {
  if (state_ != State::kDisclosing) return;
  if (svs_.size() < cfg_.disclosure_threshold()) return;
  state_ = State::kProposing;  // Alg 1 L18
  if (obs_spans() && !span_ctx_.valid()) {
    span_ctx_ = obs_new_trace();
    span_start_us_ = obs_steady_us();
    obs_span("submit", span_ctx_, /*parent=*/0, /*dur_us=*/0);
  }
  persist();
  broadcast_proposal();        // Alg 1 L19
}

void WtsProcess::broadcast_proposal() {
  obs_propose(/*proposal=*/0, /*round=*/ts_);
  auto req = std::make_shared<AckReqMsg>(proposed_set_, ts_);
  if (span_ctx_.valid()) {
    span_propose_us_ = obs_steady_us();
    req->set_trace_ctx(span_ctx_);  // before the first encode
  }
  send_to_group(cfg_.n, req);
}

void WtsProcess::drain_waiting() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < waiting_.size();) {
      auto [from, msg] = waiting_[i];
      if (try_process(from, msg)) {
        waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(i));
        progress = true;
      } else {
        ++i;
      }
    }
  }
}

bool WtsProcess::try_process(ProcessId from, const sim::MessagePtr& msg) {
  if (const auto* m = dynamic_cast<const AckReqMsg*>(msg.get())) {
    if (!safe(m->proposal)) return false;  // Alg 2 L5: SAFE(m)
    handle_ack_req(from, *m);
    return true;
  }
  if (const auto* m = dynamic_cast<const AckMsg*>(msg.get())) {
    if (state_ == State::kDecided) return true;  // no longer relevant
    if (m->ts < ts_) return true;                // stale: drop
    if (state_ != State::kProposing || m->ts != ts_) return false;
    if (!safe(m->accepted)) return false;  // Alg 1 L22: SAFE(m)
    handle_ack(from, *m);
    return true;
  }
  if (const auto* m = dynamic_cast<const NackMsg*>(msg.get())) {
    if (state_ == State::kDecided) return true;
    if (m->ts < ts_) return true;  // stale: drop
    if (state_ != State::kProposing || m->ts != ts_) return false;
    if (!safe(m->accepted)) return false;  // Alg 1 L25: SAFE(m)
    handle_nack(from, *m);
    return true;
  }
  return true;  // unknown message type: consume and ignore
}

void WtsProcess::handle_ack_req(ProcessId from, const AckReqMsg& m) {
  // Alg 2 L7-12 (acceptor role). The ack/nack echoes the request's span
  // context so the proposer-side trace owns the acceptor's evidence.
  obs_child_span("ack", m.trace_ctx(), /*dur_us=*/0, "peer", from);
  if (accepted_set_.leq(m.proposal)) {
    accepted_set_ = m.proposal;
    persist();  // the ack below is a promise; it must survive a crash
    auto ack = std::make_shared<AckMsg>(accepted_set_, m.ts);
    if (m.trace_ctx().valid()) ack->set_trace_ctx(m.trace_ctx());
    send(from, ack);
  } else {
    auto nack = std::make_shared<NackMsg>(accepted_set_, m.ts);
    if (m.trace_ctx().valid()) nack->set_trace_ctx(m.trace_ctx());
    send(from, nack);
    accepted_set_ = accepted_set_.join(m.proposal);
    persist();
  }
}

void WtsProcess::handle_ack(ProcessId from, const AckMsg&) {
  // Alg 1 L22-24.
  obs_ack(from);
  ack_set_.insert(from);
  if (ack_set_.size() >= cfg_.quorum()) decide();  // Alg 1 L32 guard
}

void WtsProcess::handle_nack(ProcessId from, const NackMsg& m) {
  // Alg 1 L25-31.
  obs_nack(from);
  const Elem merged = proposed_set_.join(m.accepted);
  if (merged != proposed_set_) {
    proposed_set_ = merged;
    ack_set_.clear();
    ++ts_;
    ++stats_.refinements;
    obs_refine(/*proposal=*/0, stats_.refinements);
    persist();
    broadcast_proposal();
  }
}

void WtsProcess::decide() {
  // Alg 1 L32-35.
  BGLA_CHECK(state_ == State::kProposing);
  state_ = State::kDecided;
  DecisionRecord rec;
  rec.value = proposed_set_;
  rec.time = net().now();
  rec.depth = net().current_depth();
  decision_ = rec;
  obs_decide(/*proposal=*/0, /*round=*/0, stats_.refinements);
  if (span_ctx_.valid()) {
    const std::uint64_t now = obs_steady_us();
    obs_child_span("round", span_ctx_, now - span_start_us_, "round", 0);
    obs_child_span("quorum", span_ctx_, now - span_propose_us_);
  }
  persist();
  if (decide_hook_) decide_hook_(*this);
}

const DecisionRecord& WtsProcess::decision() const {
  BGLA_CHECK_MSG(decision_.has_value(), "WTS process has not decided");
  return *decision_;
}

// ------------------------------------------------------ crash recovery ----

void WtsProcess::export_state(Encoder& enc) const {
  put_state_header(enc, StateTag::kWts);
  enc.put_u8(static_cast<std::uint8_t>(state_));
  enc.put_u64(ts_);
  initial_proposal_.encode(enc);
  proposed_set_.encode(enc);
  accepted_set_.encode(enc);
  svs_join_.encode(enc);
  encode_elem_map(enc, svs_);
  enc.put_bool(decision_.has_value());
  if (decision_.has_value()) {
    std::vector<DecisionRecord> one{*decision_};
    encode_decisions(enc, one);
  }
}

void WtsProcess::import_state(Decoder& dec) {
  check_state_header(dec, StateTag::kWts);
  const std::uint8_t st = dec.get_u8();
  BGLA_CHECK_MSG(st <= static_cast<std::uint8_t>(State::kDecided),
                 "WTS: bad persisted state " << static_cast<int>(st));
  state_ = static_cast<State>(st);
  ts_ = dec.get_u64();
  initial_proposal_ = lattice::decode_elem(dec);
  proposed_set_ = lattice::decode_elem(dec);
  accepted_set_ = lattice::decode_elem(dec);
  svs_join_ = lattice::decode_elem(dec);
  svs_ = decode_elem_map(dec);
  if (dec.get_bool()) {
    const std::vector<DecisionRecord> one = decode_decisions(dec);
    BGLA_CHECK_MSG(one.size() == 1, "WTS: malformed decision record");
    decision_ = one.front();
  }
  recovered_ = true;
}

void WtsProcess::rejoin() {
  obs_rejoin_start();
  switch (state_) {
    case State::kDisclosing:
      // Re-broadcast the disclosure under its (only) tag: the bytes are
      // identical to the pre-crash broadcast, so this is idempotent at
      // peers that delivered it and completes delivery at those that
      // did not.
      if (!initial_proposal_.is_bottom()) {
        if (cfg_.reliable_disclosure) {
          rb_->broadcast(/*tag=*/0,
                         std::make_shared<DisclosureMsg>(initial_proposal_));
        } else {
          send_to_group(cfg_.n,
                        std::make_shared<DisclosureMsg>(initial_proposal_));
        }
      }
      maybe_start_proposing();  // the persisted SvS may already suffice
      break;
    case State::kProposing:
      // Fresh timestamp so stale pre-crash acks cannot count toward the
      // new proposal's quorum.
      ++ts_;
      ack_set_.clear();
      persist();
      broadcast_proposal();
      break;
    case State::kDecided:
      break;  // acceptor role continues from the persisted sets
  }
  obs_rejoin_done();
}

}  // namespace bgla::la
