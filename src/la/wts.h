// WTS — Wait Till Safe (paper §5, Algorithms 1 and 2).
//
// One-shot Byzantine Lattice Agreement. Each process plays both roles of
// the paper (proposer and acceptor share the SvS, as §5 allows).
//
// Phases:
//   1. Values Disclosure — the proposer reliably broadcasts its input; all
//      delivered admissible values enter the Safe-values Set (SvS), keyed
//      by origin (Observation 1: at most one value per process, enforced
//      by accepting only the tag-0 instance of each origin's broadcast).
//   2. Deciding — Byzantine-quorum ack/nack refinement over safe messages;
//      messages whose lattice element is not yet ≤ ⊕SvS wait in
//      Waiting_msgs and are re-examined whenever SvS grows.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include <memory>

#include "bcast/bracha.h"
#include "bcast/cert_rb.h"
#include "la/config.h"
#include "la/messages.h"
#include "la/record.h"
#include "la/recovery.h"
#include "obs/trace_ctx.h"
#include "sim/network.h"

namespace bgla::la {

class WtsProcess : public sim::Process {
 public:
  enum class State { kDisclosing, kProposing, kDecided };

  /// `proposal` is this process's input value pro_i (must be admissible);
  /// pass ⊥ for a process that only acts as an acceptor.
  WtsProcess(net::Transport& net, ProcessId id, LaConfig cfg, Elem proposal);

  void on_start() override;
  void on_message(ProcessId from, const sim::MessagePtr& msg) override;

  // ---- observation interface (tests, checkers, benches) ----
  State state() const { return state_; }
  bool decided() const { return decision_.has_value(); }
  const DecisionRecord& decision() const;
  const Elem& proposal() const { return initial_proposal_; }
  const Elem& proposed_set() const { return proposed_set_; }
  const Elem& accepted_set() const { return accepted_set_; }
  const ProposerStats& stats() const { return stats_; }

  /// Join of all values disclosed so far (⊕SvS).
  const Elem& svs_join() const { return svs_join_; }
  /// SvS keyed by origin (Observation 1: at most one entry per process).
  const std::map<ProcessId, Elem>& svs() const { return svs_; }
  std::uint32_t svs_size() const {
    return static_cast<std::uint32_t>(svs_.size());
  }

  /// Invoked at the decide event (before returning from the handler).
  using DecideHook = std::function<void(const WtsProcess&)>;
  void set_decide_hook(DecideHook hook) { decide_hook_ = std::move(hook); }

  // ---- crash-recovery interface (see la/recovery.h) ----
  //
  // WTS recovery is best-effort: the reliable-broadcast endpoint's
  // partial echo/ready state is not persisted, so a restarted process
  // re-broadcasts its (byte-identical, hence non-equivocating) disclosure
  // and relies on RB totality plus the persisted SvS for the rest. The
  // round-based protocols (GWTS/GSbS) are the ones driven by the restart
  // harness; WTS is one-shot.
  void export_state(Encoder& enc) const;
  void import_state(Decoder& dec);
  void set_persist_hook(std::function<void()> hook) {
    persist_hook_ = std::move(hook);
  }
  bool recovered() const { return recovered_; }

 private:
  // SAFE(m) of Algorithm 1 L36-40: the element is covered by ⊕SvS.
  bool safe(const Elem& e) const { return e.leq(svs_join_); }

  void on_rb_deliver(ProcessId origin, std::uint64_t tag,
                     const sim::MessagePtr& inner);
  void maybe_start_proposing();
  void broadcast_proposal();
  void drain_waiting();

  /// Returns true iff the message was processed (false: keep waiting).
  bool try_process(ProcessId from, const sim::MessagePtr& msg);

  void handle_ack_req(ProcessId from, const AckReqMsg& m);
  void handle_ack(ProcessId from, const AckMsg& m);
  void handle_nack(ProcessId from, const NackMsg& m);
  void decide();
  void persist() {
    if (persist_hook_) persist_hook_();
  }
  void rejoin();

  LaConfig cfg_;
  std::unique_ptr<bcast::RbEndpoint> rb_;

  Elem initial_proposal_;
  Elem proposed_set_;
  State state_ = State::kDisclosing;
  std::uint64_t ts_ = 0;
  std::set<ProcessId> ack_set_;

  // Acceptor role.
  Elem accepted_set_;

  // Values Disclosure.
  std::map<ProcessId, Elem> svs_;
  Elem svs_join_;

  std::vector<std::pair<ProcessId, sim::MessagePtr>> waiting_;
  std::optional<DecisionRecord> decision_;
  ProposerStats stats_;
  DecideHook decide_hook_;

  // Causal span state (one-shot protocol: the command trace and the round
  // trace are the same trace). Invalid/zero unless spans are enabled.
  obs::TraceContext span_ctx_;
  std::uint64_t span_start_us_ = 0;    ///< proposing began (round span)
  std::uint64_t span_propose_us_ = 0;  ///< last broadcast (quorum span)

  // Crash-recovery state.
  std::function<void()> persist_hook_;
  bool recovered_ = false;
};

}  // namespace bgla::la
