#include "lattice/chain.h"

#include <algorithm>

#include "util/check.h"

namespace bgla::lattice {

std::pair<int, int> find_incomparable(const std::vector<Elem>& elems) {
  for (std::size_t i = 0; i < elems.size(); ++i) {
    for (std::size_t j = i + 1; j < elems.size(); ++j) {
      if (!comparable(elems[i], elems[j]))
        return {static_cast<int>(i), static_cast<int>(j)};
    }
  }
  return {-1, -1};
}

bool is_chain(const std::vector<Elem>& elems) {
  return find_incomparable(elems).first < 0;
}

std::vector<Elem> sort_chain(std::vector<Elem> elems) {
  BGLA_CHECK_MSG(is_chain(elems), "sort_chain: elements not a chain");
  std::sort(elems.begin(), elems.end(),
            [](const Elem& a, const Elem& b) {
              return a.leq(b) && !(a == b);
            });
  return elems;
}

bool is_non_decreasing(const std::vector<Elem>& seq) {
  for (std::size_t i = 1; i < seq.size(); ++i) {
    if (!seq[i - 1].leq(seq[i])) return false;
  }
  return true;
}

}  // namespace bgla::lattice
