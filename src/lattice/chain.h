// Chain utilities over lattice elements — used by the executable
// specifications (Comparability checks) and by Figure-1 style renderings.
#pragma once

#include <vector>

#include "lattice/elem.h"

namespace bgla::lattice {

/// True iff every pair of elements is comparable (forms a chain).
bool is_chain(const std::vector<Elem>& elems);

/// Returns the elements sorted by the lattice order; requires is_chain.
std::vector<Elem> sort_chain(std::vector<Elem> elems);

/// True iff the sequence is non-decreasing in the lattice order
/// (GLA Local Stability).
bool is_non_decreasing(const std::vector<Elem>& seq);

/// Returns a pair of indices (i, j) of an incomparable pair, or (-1, -1)
/// if the elements form a chain. For diagnostics in checkers.
std::pair<int, int> find_incomparable(const std::vector<Elem>& elems);

}  // namespace bgla::lattice
