#include "lattice/codec.h"

#include <map>
#include <set>

#include "lattice/maxint_elem.h"
#include "lattice/set_elem.h"
#include "lattice/vclock_elem.h"
#include "util/check.h"

namespace bgla::lattice {

namespace {

// Bound on decoded container sizes: a hostile length prefix must not make
// the decoder attempt a huge allocation before the underrun check fires.
// (Every container entry costs >= 2 bytes on the wire, so anything larger
// than the remaining buffer is malformed anyway.)
void check_count(std::uint64_t count, const Decoder& dec) {
  BGLA_CHECK_MSG(count <= dec.remaining(),
                 "decoded count " << count << " exceeds remaining bytes");
}

Elem decode_set(Decoder& dec) {
  const std::uint64_t count = dec.get_varint();
  check_count(count, dec);
  std::set<Item> items;
  for (std::uint64_t i = 0; i < count; ++i) {
    Item it;
    it.a = dec.get_u64();
    it.b = dec.get_u64();
    it.c = dec.get_u64();
    items.insert(it);
  }
  return make_set(std::move(items));
}

Elem decode_vclock(Decoder& dec) {
  const std::uint64_t count = dec.get_varint();
  check_count(count, dec);
  std::map<ProcessId, std::uint64_t> clock;
  for (std::uint64_t i = 0; i < count; ++i) {
    const ProcessId id = dec.get_u32();
    clock[id] = dec.get_u64();
  }
  return make_vclock(std::move(clock));
}

}  // namespace

Elem decode_elem(Decoder& dec) {
  const std::uint8_t tag = dec.get_u8();
  if (tag == 0) return Elem();  // bottom
  BGLA_CHECK_MSG(tag == 1, "bad Elem tag " << static_cast<int>(tag));
  const std::string kind = dec.get_string();
  if (kind == "set") return decode_set(dec);
  if (kind == "maxint") return make_maxint(dec.get_u64());
  if (kind == "vclock") return decode_vclock(dec);
  BGLA_CHECK_MSG(false, "unknown lattice family on the wire: " << kind);
}

}  // namespace bgla::lattice
