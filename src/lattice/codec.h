// Decoding of canonically encoded lattice elements (the inverse of
// Elem::encode, for the real-network wire path).
//
// The simulator ships shared_ptr<const Message> in-memory and never needs
// to parse bytes; the socket transport does. Every registered lattice
// family (set, maxint, vclock) decodes here; an unknown family or a
// malformed payload throws CheckError, which the frame decoder turns into
// a rejected frame (a Byzantine peer must not be able to crash a correct
// process with garbage bytes).
#pragma once

#include "lattice/elem.h"
#include "util/codec.h"

namespace bgla::lattice {

/// Decodes one Elem from the decoder position. Throws CheckError on
/// malformed input or an unregistered lattice family.
Elem decode_elem(Decoder& dec);

}  // namespace bgla::lattice
