// Compile-time lattice genericity (C++20 concepts).
//
// The runtime-polymorphic `Elem` is what the protocols use (messages must
// be heterogeneous-safe against Byzantine payloads). For user code that
// knows its lattice statically, this header provides the concept and
// generic algorithms so the same laws apply to plain value types with
// zero type-erasure overhead — and `Elem` itself models the concept, so
// the two layers interoperate.
#pragma once

#include <concepts>
#include <vector>

namespace bgla::lattice {

/// A join semilattice value type: join (⊕), lattice order (≤), equality.
/// Laws (checked by tests, not expressible in the concept): join is
/// idempotent, commutative, associative; a.leq(b) ⟺ a.join(b) == b.
template <typename T>
concept JoinSemilattice = requires(const T& a, const T& b) {
  { a.join(b) } -> std::convertible_to<T>;
  { a.leq(b) } -> std::convertible_to<bool>;
  { a == b } -> std::convertible_to<bool>;
};

/// ⊕ over a range; `unit` is the fold seed (typically a bottom).
template <JoinSemilattice T, typename Range>
T join_fold(T unit, const Range& range) {
  for (const auto& v : range) unit = unit.join(v);
  return unit;
}

/// a and b comparable in the lattice order.
template <JoinSemilattice T>
bool comparable_v(const T& a, const T& b) {
  return a.leq(b) || b.leq(a);
}

/// All values pairwise comparable.
template <JoinSemilattice T>
bool is_chain_v(const std::vector<T>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    for (std::size_t j = i + 1; j < values.size(); ++j) {
      if (!comparable_v(values[i], values[j])) return false;
    }
  }
  return true;
}

/// Non-decreasing in the lattice order (GLA Local Stability, statically).
template <JoinSemilattice T>
bool is_non_decreasing_v(const std::vector<T>& seq) {
  for (std::size_t i = 1; i < seq.size(); ++i) {
    if (!seq[i - 1].leq(seq[i])) return false;
  }
  return true;
}

/// Law checks usable from property tests on any model of the concept.
template <JoinSemilattice T>
bool satisfies_semilattice_laws(const T& a, const T& b, const T& c) {
  if (!(a.join(a) == a)) return false;                          // idempotent
  if (!(a.join(b) == b.join(a))) return false;                  // commutative
  if (!(a.join(b).join(c) == a.join(b.join(c)))) return false;  // associative
  if (a.leq(b) != (a.join(b) == b)) return false;  // order/join connection
  return true;
}

}  // namespace bgla::lattice
