#include "lattice/crdt.h"

#include "util/check.h"

namespace bgla::lattice {

std::uint64_t GCounter::value() const {
  std::uint64_t sum = 0;
  for (const auto& [id, v] : clock_) sum += v;
  return sum;
}

void GCounter::merge(const Elem& peer_state) {
  if (peer_state.is_bottom()) return;
  for (const auto& [id, v] : peer_state.as<VClockElem>().clock()) {
    auto& slot = clock_[id];
    slot = std::max(slot, v);
  }
}

Elem GCounter::as_set_lattice() const {
  std::set<Item> items;
  for (const auto& [id, v] : clock_) {
    for (std::uint64_t k = 1; k <= v; ++k)
      items.insert(Item{id, k, 0});
  }
  return make_set(std::move(items));
}

Elem GSet::state() const {
  std::set<Item> items;
  for (std::uint64_t v : values_) items.insert(Item{v, 0, 0});
  return make_set(std::move(items));
}

void GSet::merge(const Elem& peer_state) {
  for (const Item& it : set_items(peer_state)) values_.insert(it.a);
}

}  // namespace bgla::lattice
