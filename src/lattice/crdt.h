// State-based CRDTs whose state spaces are the join semilattices above —
// the §3.1 isomorphism ("any join semilattice is isomorphic to a lattice of
// sets under union") made executable, and the data types the paper's intro
// motivates (a dependable counter with commutative add, a grow-only set).
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "lattice/elem.h"
#include "lattice/set_elem.h"
#include "lattice/vclock_elem.h"
#include "util/ids.h"

namespace bgla::lattice {

/// Grow-only counter. State lattice = vector clocks under pointwise max.
class GCounter {
 public:
  explicit GCounter(ProcessId self) : self_(self) {}

  /// Commutative update: add `amount` (the intro's add(x) operation).
  void add(std::uint64_t amount) { clock_[self_] += amount; }

  /// Current counter value (sum of components).
  std::uint64_t value() const;

  /// State as a vclock-lattice element.
  Elem state() const { return make_vclock(clock_); }

  /// Merge a peer's state (join).
  void merge(const Elem& peer_state);

  /// The §3.1 isomorphism: image of the state in the set lattice. Component
  /// (p, k) maps to the set of items {(p, 1), ..., (p, k)}, so pointwise max
  /// becomes set union and the orders coincide.
  Elem as_set_lattice() const;

 private:
  ProcessId self_;
  std::map<ProcessId, std::uint64_t> clock_;
};

/// Grow-only set of 64-bit values. State lattice = the set lattice itself.
class GSet {
 public:
  void add(std::uint64_t v) { values_.insert(v); }
  bool contains(std::uint64_t v) const { return values_.count(v) > 0; }
  std::size_t size() const { return values_.size(); }

  Elem state() const;
  void merge(const Elem& peer_state);

  const std::set<std::uint64_t>& values() const { return values_; }

 private:
  std::set<std::uint64_t> values_;
};

}  // namespace bgla::lattice
