#include "lattice/delta.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>

#include "lattice/maxint_elem.h"
#include "lattice/set_elem.h"
#include "lattice/vclock_elem.h"

namespace bgla::lattice {

bool diff_above(const Elem& base, const Elem& cur, Elem* out) {
  if (base.is_bottom()) {
    *out = cur;
    return true;
  }
  if (cur.is_bottom()) return false;  // base nonempty, cur empty: not ≤
  const ElemModel* bm = base.model();
  const ElemModel* cm = cur.model();
  if (std::strcmp(bm->kind(), cm->kind()) != 0) return false;
  if (!bm->leq(*cm)) return false;
  if (const auto* cs = dynamic_cast<const SetElem*>(cm)) {
    const auto* bs = static_cast<const SetElem*>(bm);
    std::set<Item> extra;
    std::set_difference(cs->items().begin(), cs->items().end(),
                        bs->items().begin(), bs->items().end(),
                        std::inserter(extra, extra.begin()));
    *out = make_set(std::move(extra));
    return true;
  }
  if (dynamic_cast<const MaxIntElem*>(cm) != nullptr) {
    *out = cur;  // a single varint: nothing to shrink
    return true;
  }
  if (const auto* cv = dynamic_cast<const VClockElem*>(cm)) {
    const auto* bv = static_cast<const VClockElem*>(bm);
    std::map<ProcessId, std::uint64_t> grown;
    for (const auto& [id, ticks] : cv->clock()) {
      const auto it = bv->clock().find(id);
      if (it == bv->clock().end() || it->second < ticks) grown[id] = ticks;
    }
    *out = make_vclock(std::move(grown));
    return true;
  }
  return false;  // unknown family: caller sends full state
}

}  // namespace bgla::lattice
