// Delta-state extraction for join-semilattice elements.
//
// Zheng & Garg's RSM construction (and GLA generally) only ever *joins*
// received values, so a sender that knows the receiver already holds
// `base` may ship any d with base ⊕ d = cur instead of the full `cur`.
// diff_above computes the smallest such d per family:
//   set:    cur \ base          (the new items only)
//   vclock: entries with cur[k] > base[k]
//   maxint: cur                 (already O(1) on the wire)
//
// The contract is exactness: diff_above succeeds only when base ≤ cur and
// the families match, and then base.join(diff) == cur *structurally* —
// the reconstructed element re-encodes byte-identically to the original
// (canonical encodings are order-normalized). Callers fall back to full
// encoding whenever diff_above returns false; correctness never depends
// on a delta being available.
#pragma once

#include "lattice/elem.h"

namespace bgla::lattice {

/// Computes `*out` with base.join(*out) == cur. Returns false (out
/// untouched) iff the delta is inexpressible: family mismatch, unknown
/// family, or !(base ≤ cur). A bottom base always succeeds with out=cur;
/// equal inputs succeed with an empty (but non-bottom) delta.
bool diff_above(const Elem& base, const Elem& cur, Elem* out);

}  // namespace bgla::lattice
