#include "lattice/elem.h"

#include <cstring>

#include "util/check.h"

namespace bgla::lattice {

namespace {
void check_same_kind(const ElemModel& a, const ElemModel& b) {
  BGLA_CHECK_MSG(std::strcmp(a.kind(), b.kind()) == 0,
                 "lattice family mismatch: " << a.kind() << " vs "
                                             << b.kind());
}
}  // namespace

bool Elem::leq(const Elem& other) const {
  if (is_bottom()) return true;
  if (other.is_bottom()) return false;
  // Elements of different lattice families are incomparable — not an
  // error: a Byzantine process may ship arbitrary payloads, and protocol
  // safety checks must classify them as "not ≤" rather than crash.
  if (std::strcmp(impl_->kind(), other.impl_->kind()) != 0) return false;
  return impl_->leq(*other.impl_);
}

Elem Elem::join(const Elem& other) const {
  if (is_bottom()) return other;
  if (other.is_bottom()) return *this;
  check_same_kind(*impl_, *other.impl_);
  // Absorption fast path: when one operand already dominates, reuse its
  // shared model (and cached encoding/digest) instead of materialising an
  // equal copy — the common case in join_all accumulation loops.
  if (other.impl_->leq(*impl_)) return *this;
  if (impl_->leq(*other.impl_)) return other;
  return Elem(impl_->join(*other.impl_));
}

bool Elem::operator==(const Elem& other) const {
  if (is_bottom() || other.is_bottom())
    return is_bottom() && other.is_bottom();
  if (std::strcmp(impl_->kind(), other.impl_->kind()) != 0) return false;
  return impl_->leq(*other.impl_) && other.impl_->leq(*impl_);
}

namespace {
Bytes encode_model(const ElemModel& m) {
  Encoder enc;
  enc.put_u8(1);
  enc.put_string(m.kind());
  m.encode(enc);
  return enc.take();
}

const Bytes& bottom_encoding() {
  static const Bytes kBottom{0};  // bottom tag
  return kBottom;
}

const crypto::Digest& bottom_digest() {
  static const crypto::Digest kDigest =
      crypto::Sha256::hash(bottom_encoding());
  return kDigest;
}
}  // namespace

void Elem::encode(Encoder& enc) const {
  if (is_bottom()) {
    enc.put_u8(0);  // bottom tag
    return;
  }
  enc.put_raw(impl_->enc_cache_.encoded([this] {
    return encode_model(*impl_);
  }));
}

Bytes Elem::encoded() const {
  if (is_bottom()) return bottom_encoding();
  return impl_->enc_cache_.encoded([this] { return encode_model(*impl_); });
}

crypto::Digest Elem::digest() const {
  if (is_bottom()) return bottom_digest();
  return impl_->enc_cache_.digest([this] { return encode_model(*impl_); });
}

std::string Elem::to_string() const {
  return is_bottom() ? "⊥" : impl_->to_string();
}

bool comparable(const Elem& a, const Elem& b) {
  return a.leq(b) || b.leq(a);
}

}  // namespace bgla::lattice
