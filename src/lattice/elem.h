// Type-erased join-semilattice elements.
//
// The paper's protocols are lattice-generic ("works on any possible
// lattice"); we make that executable by having every protocol operate on
// `Elem`, an immutable, shared, type-erased lattice value exposing exactly
// the operations the algorithms use: join (⊕), leq (≤), equality, a
// canonical binary encoding (for digests/signatures) and printing.
//
// A default-constructed Elem is the universal bottom ⊥: ⊥ ≤ x and
// ⊥ ⊕ x = x for every x of any lattice family. This models the protocols'
// empty initial Accepted_set/Proposed_set without every family needing an
// explicit bottom object.
//
// Joining elements of different lattice families is a programming error and
// throws CheckError.
#pragma once

#include <memory>
#include <string>

#include "crypto/sha256.h"
#include "util/check.h"
#include "util/codec.h"
#include "util/memo.h"

namespace bgla::lattice {

/// Interface implemented by each concrete lattice family.
class ElemModel {
 public:
  virtual ~ElemModel() = default;

  /// Identifies the lattice family; leq/join are only defined within one
  /// family (checked at runtime).
  virtual const char* kind() const = 0;

  /// this ≤ other (other is guaranteed to be of the same kind).
  virtual bool leq(const ElemModel& other) const = 0;

  /// this ⊕ other (least upper bound; same-kind guaranteed).
  virtual std::shared_ptr<const ElemModel> join(
      const ElemModel& other) const = 0;

  /// Canonical deterministic encoding (containers in sorted order).
  virtual void encode(Encoder& enc) const = 0;

  virtual std::string to_string() const = 0;

  /// A size measure used only for diagnostics and refinement-bound
  /// accounting (e.g. the number of base values in a set-lattice element).
  virtual std::size_t weight() const = 0;

 private:
  friend class Elem;
  // Lazily filled canonical-encoding/digest cache. Models are immutable
  // and shared, so the first Elem::encoded()/digest() call pays for the
  // encoding + SHA-256 and every later call (from any Elem sharing this
  // model) is a lookup.
  util::EncodingCache enc_cache_;
};

class Elem {
 public:
  /// The universal bottom ⊥.
  Elem() = default;

  explicit Elem(std::shared_ptr<const ElemModel> impl)
      : impl_(std::move(impl)) {}

  bool is_bottom() const { return impl_ == nullptr; }

  /// this ≤ other.
  bool leq(const Elem& other) const;

  /// Least upper bound.
  Elem join(const Elem& other) const;

  /// Structural equality (leq in both directions).
  bool operator==(const Elem& other) const;
  bool operator!=(const Elem& other) const { return !(*this == other); }

  /// Canonical encoding; ⊥ encodes as a distinguished tag.
  void encode(Encoder& enc) const;
  Bytes encoded() const;

  /// SHA-256 of the canonical encoding — usable as a container key.
  crypto::Digest digest() const;

  std::string to_string() const;
  std::size_t weight() const { return impl_ ? impl_->weight() : 0; }

  /// Access to the concrete model (nullptr for ⊥).
  const ElemModel* model() const { return impl_.get(); }

  /// Downcast helper; throws CheckError on kind mismatch or ⊥.
  template <typename T>
  const T& as() const;

 private:
  std::shared_ptr<const ElemModel> impl_;
};

/// true iff a ≤ b or b ≤ a.
bool comparable(const Elem& a, const Elem& b);

/// Join of a range of Elems (⊥ for an empty range).
template <typename Range>
Elem join_all(const Range& range) {
  Elem acc;
  for (const auto& e : range) acc = acc.join(e);
  return acc;
}

/// Orders Elems by digest — a deterministic total order usable as a
/// container key (NOT the lattice order).
struct ElemDigestLess {
  bool operator()(const Elem& a, const Elem& b) const {
    return a.digest() < b.digest();
  }
};

template <typename T>
const T& Elem::as() const {
  const T* p = dynamic_cast<const T*>(impl_.get());
  BGLA_CHECK_MSG(p != nullptr, "Elem::as: wrong lattice family or bottom");
  return *p;
}

}  // namespace bgla::lattice
