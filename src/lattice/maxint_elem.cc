#include "lattice/maxint_elem.h"

#include <sstream>

namespace bgla::lattice {

bool MaxIntElem::leq(const ElemModel& other) const {
  return value_ <= static_cast<const MaxIntElem&>(other).value_;
}

std::shared_ptr<const ElemModel> MaxIntElem::join(
    const ElemModel& other) const {
  const auto& o = static_cast<const MaxIntElem&>(other);
  return std::make_shared<MaxIntElem>(std::max(value_, o.value_));
}

void MaxIntElem::encode(Encoder& enc) const { enc.put_u64(value_); }

std::string MaxIntElem::to_string() const {
  std::ostringstream os;
  os << "max:" << value_;
  return os.str();
}

Elem make_maxint(std::uint64_t value) {
  return Elem(std::make_shared<MaxIntElem>(value));
}

std::uint64_t maxint_value(const Elem& e) {
  if (e.is_bottom()) return 0;
  return e.as<MaxIntElem>().value();
}

}  // namespace bgla::lattice
