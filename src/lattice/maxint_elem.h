// The max-integer lattice: natural numbers under max. A minimal totally
// ordered lattice, used to exercise the protocols on a non-set family.
#pragma once

#include <cstdint>

#include "lattice/elem.h"

namespace bgla::lattice {

class MaxIntElem final : public ElemModel {
 public:
  explicit MaxIntElem(std::uint64_t value) : value_(value) {}

  const char* kind() const override { return "maxint"; }
  bool leq(const ElemModel& other) const override;
  std::shared_ptr<const ElemModel> join(const ElemModel& other) const override;
  void encode(Encoder& enc) const override;
  std::string to_string() const override;
  std::size_t weight() const override { return 1; }

  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_;
};

Elem make_maxint(std::uint64_t value);

/// Value of a max-int Elem (⊥ reads as 0).
std::uint64_t maxint_value(const Elem& e);

}  // namespace bgla::lattice
