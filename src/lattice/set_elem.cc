#include "lattice/set_elem.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace bgla::lattice {

std::string Item::to_string() const {
  std::ostringstream os;
  os << "(" << a;
  if (b != 0 || c != 0) os << "," << b;
  if (c != 0) os << "," << c;
  os << ")";
  return os.str();
}

bool SetElem::leq(const ElemModel& other) const {
  const auto& o = static_cast<const SetElem&>(other);
  if (items_.size() > o.items_.size()) return false;
  // A small set against a much larger one (the common shape on the hot
  // path: singleton-command ⊆ decided-frontier checks) is far cheaper as
  // k·log n lookups than as the linear merge-walk of std::includes.
  if (items_.size() * 16 < o.items_.size()) {
    for (const Item& it : items_) {
      if (o.items_.count(it) == 0) return false;
    }
    return true;
  }
  return std::includes(o.items_.begin(), o.items_.end(), items_.begin(),
                       items_.end());
}

std::shared_ptr<const ElemModel> SetElem::join(const ElemModel& other) const {
  const auto& o = static_cast<const SetElem&>(other);
  std::set<Item> merged = items_;
  merged.insert(o.items_.begin(), o.items_.end());
  return std::make_shared<SetElem>(std::move(merged));
}

void SetElem::encode(Encoder& enc) const {
  enc.put_varint(items_.size());
  for (const Item& it : items_) {  // std::set iterates sorted => canonical
    enc.put_u64(it.a);
    enc.put_u64(it.b);
    enc.put_u64(it.c);
  }
}

std::string SetElem::to_string() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const Item& it : items_) {
    if (!first) os << ",";
    first = false;
    os << it.to_string();
  }
  os << "}";
  return os.str();
}

Elem make_set(std::set<Item> items) {
  return Elem(std::make_shared<SetElem>(std::move(items)));
}

Elem make_set(std::initializer_list<Item> items) {
  return Elem(std::make_shared<SetElem>(items));
}

Elem make_singleton(std::uint64_t value) {
  return make_set({Item{value, 0, 0}});
}

Elem make_singleton(Item item) { return make_set({item}); }

const std::set<Item>& set_items(const Elem& e) {
  static const std::set<Item> kEmpty;
  if (e.is_bottom()) return kEmpty;
  return e.as<SetElem>().items();
}

}  // namespace bgla::lattice
