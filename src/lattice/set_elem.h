// The set lattice: finite sets of Items under union — the paper's WLOG
// representation of any join semilattice (§3.1) and the lattice the RSM
// runs on (power set of update commands, §7).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <set>
#include <string>

#include "lattice/elem.h"

namespace bgla::lattice {

/// A base value of the set lattice. Three 64-bit fields cover every use in
/// this repository:
///   - plain test values:          {a = value}
///   - disclosed proposals:        {a = proposer id, b = value}
///   - RSM commands:               {a = client id, b = sequence number,
///                                  c = operand (or nop marker)}
struct Item {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;

  auto operator<=>(const Item&) const = default;

  std::string to_string() const;
};

class SetElem final : public ElemModel {
 public:
  SetElem() = default;
  explicit SetElem(std::set<Item> items) : items_(std::move(items)) {}
  SetElem(std::initializer_list<Item> items) : items_(items) {}

  const char* kind() const override { return "set"; }
  bool leq(const ElemModel& other) const override;
  std::shared_ptr<const ElemModel> join(const ElemModel& other) const override;
  void encode(Encoder& enc) const override;
  std::string to_string() const override;
  std::size_t weight() const override { return items_.size(); }

  const std::set<Item>& items() const { return items_; }
  bool contains(const Item& item) const { return items_.count(item) > 0; }

 private:
  std::set<Item> items_;
};

/// Factory helpers.
Elem make_set(std::set<Item> items);
Elem make_set(std::initializer_list<Item> items);

/// Singleton {Item{value}} — convenient for tests/examples.
Elem make_singleton(std::uint64_t value);
Elem make_singleton(Item item);

/// The set of items of a set-lattice Elem (⊥ reads as the empty set).
const std::set<Item>& set_items(const Elem& e);

/// True iff every item of `e` (set lattice, or ⊥) satisfies `pred` —
/// used for the "value ∈ E" admissibility checks of Algorithms 1/3.
template <typename Pred>
bool all_items(const Elem& e, Pred pred) {
  for (const Item& it : set_items(e))
    if (!pred(it)) return false;
  return true;
}

}  // namespace bgla::lattice
