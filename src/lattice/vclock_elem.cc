#include "lattice/vclock_elem.h"

#include <sstream>

namespace bgla::lattice {

bool VClockElem::leq(const ElemModel& other) const {
  const auto& o = static_cast<const VClockElem&>(other);
  for (const auto& [id, v] : clock_) {
    if (v == 0) continue;
    if (o.at(id) < v) return false;
  }
  return true;
}

std::shared_ptr<const ElemModel> VClockElem::join(
    const ElemModel& other) const {
  const auto& o = static_cast<const VClockElem&>(other);
  std::map<ProcessId, std::uint64_t> merged = clock_;
  for (const auto& [id, v] : o.clock_) {
    auto& slot = merged[id];
    slot = std::max(slot, v);
  }
  return std::make_shared<VClockElem>(std::move(merged));
}

void VClockElem::encode(Encoder& enc) const {
  // Canonical: sorted by id (std::map order), zero entries skipped.
  std::size_t nonzero = 0;
  for (const auto& [id, v] : clock_)
    if (v != 0) ++nonzero;
  enc.put_varint(nonzero);
  for (const auto& [id, v] : clock_) {
    if (v == 0) continue;
    enc.put_u32(id);
    enc.put_u64(v);
  }
}

std::string VClockElem::to_string() const {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const auto& [id, v] : clock_) {
    if (v == 0) continue;
    if (!first) os << ",";
    first = false;
    os << id << ":" << v;
  }
  os << "]";
  return os.str();
}

std::size_t VClockElem::weight() const {
  std::size_t n = 0;
  for (const auto& [id, v] : clock_)
    if (v != 0) ++n;
  return n;
}

std::uint64_t VClockElem::at(ProcessId id) const {
  const auto it = clock_.find(id);
  return it == clock_.end() ? 0 : it->second;
}

Elem make_vclock(std::map<ProcessId, std::uint64_t> clock) {
  return Elem(std::make_shared<VClockElem>(std::move(clock)));
}

std::uint64_t vclock_sum(const Elem& e) {
  if (e.is_bottom()) return 0;
  std::uint64_t sum = 0;
  for (const auto& [id, v] : e.as<VClockElem>().clock()) sum += v;
  return sum;
}

}  // namespace bgla::lattice
