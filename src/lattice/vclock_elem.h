// The vector-clock lattice: maps process id → counter under pointwise max.
// Isomorphic to the G-Counter CRDT state lattice; exercises a partially
// ordered non-set family with unbounded chains.
#pragma once

#include <cstdint>
#include <map>

#include "lattice/elem.h"
#include "util/ids.h"

namespace bgla::lattice {

class VClockElem final : public ElemModel {
 public:
  VClockElem() = default;
  explicit VClockElem(std::map<ProcessId, std::uint64_t> clock)
      : clock_(std::move(clock)) {}

  const char* kind() const override { return "vclock"; }
  bool leq(const ElemModel& other) const override;
  std::shared_ptr<const ElemModel> join(const ElemModel& other) const override;
  void encode(Encoder& enc) const override;
  std::string to_string() const override;
  std::size_t weight() const override;

  const std::map<ProcessId, std::uint64_t>& clock() const { return clock_; }
  std::uint64_t at(ProcessId id) const;

 private:
  std::map<ProcessId, std::uint64_t> clock_;  // zero entries omitted
};

Elem make_vclock(std::map<ProcessId, std::uint64_t> clock);

/// Sum of all components — the G-Counter read value.
std::uint64_t vclock_sum(const Elem& e);

}  // namespace bgla::lattice
