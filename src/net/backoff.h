// Capped exponential backoff with deterministic jitter, for redial and
// retry loops. A fixed retry period synchronizes every dialer in a
// cluster: after a node is killed, all n−1 peers hammer its address in
// lockstep, and on restart they all reconnect in the same instant.
// Exponential growth bounds the hammering; jitter breaks the lockstep.
//
// The jitter stream is a seeded xorshift64, so a given (params, seed)
// always produces the same schedule — tests assert exact delays.
#pragma once

#include <algorithm>
#include <cstdint>

namespace bgla::net {

class Backoff {
 public:
  struct Params {
    std::uint32_t initial_ms = 50;  // first delay (pre-jitter)
    std::uint32_t max_ms = 2000;    // cap on the pre-jitter delay
    double factor = 2.0;            // growth per attempt
    double jitter = 0.2;            // delay drawn from [d·(1−j), d·(1+j)]
    std::uint64_t seed = 1;         // jitter stream; never 0
  };

  explicit Backoff(Params p) : p_(p), base_ms_(p.initial_ms) {
    if (p_.seed == 0) p_.seed = 1;
    rng_ = p_.seed;
  }

  /// Next delay in the schedule, advancing the exponential state.
  /// Always returns at least 1ms so callers can sleep unconditionally.
  std::uint32_t next_ms() {
    const double u = next_unit();  // in [0, 1)
    const double jittered =
        static_cast<double>(base_ms_) * (1.0 + p_.jitter * (2.0 * u - 1.0));
    base_ms_ = static_cast<std::uint32_t>(
        std::min<double>(p_.max_ms, static_cast<double>(base_ms_) * p_.factor));
    base_ms_ = std::max(base_ms_, 1u);
    ++attempts_;
    return std::max(1u, static_cast<std::uint32_t>(jittered));
  }

  /// Back to the initial delay — call after a successful attempt. The
  /// jitter stream is NOT rewound, so schedules stay distinct across
  /// connect/disconnect cycles.
  void reset() {
    base_ms_ = std::max(p_.initial_ms, 1u);
    attempts_ = 0;
  }

  /// Attempts since construction or the last reset().
  std::uint32_t attempts() const { return attempts_; }

  /// Pre-jitter delay the next next_ms() call will draw around.
  std::uint32_t current_base_ms() const { return base_ms_; }

 private:
  double next_unit() {
    std::uint64_t x = rng_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rng_ = x;
    return static_cast<double>(x >> 11) / 9007199254740992.0;  // 2^53
  }

  Params p_;
  std::uint32_t base_ms_;
  std::uint32_t attempts_ = 0;
  std::uint64_t rng_;
};

}  // namespace bgla::net
