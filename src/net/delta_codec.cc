#include "net/delta_codec.h"

#include <cstring>
#include <utility>

#include "la/decode.h"
#include "lattice/codec.h"
#include "lattice/delta.h"
#include "util/check.h"

namespace bgla::net {

namespace {

using lattice::Elem;

// Matches net/wire.cc's nesting bound for arbitrary inner messages.
constexpr int kMaxDepth = 8;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= v & 0xff;
    h *= kFnvPrime;
    v >>= 8;
  }
  return h;
}

enum class SlotKind : std::uint8_t {
  kNone,      // not delta-eligible: splice through untouched
  kElem,      // `nslots` lattice::Elem values, then an opaque tail
  kSvSet,     // one la::SignedValueSet, then an opaque tail
  kSafeVSet,  // one la::SafeValueSet
  kSbSet,     // one la::SignedBatchSet
  kSafeBSet,  // one la::SafeBatchSet
  kInner,     // one length-prefixed inner message, then an opaque tail
};

struct Shape {
  // Scalar fields preceding the slot, in wire order: 'k' = u32 that keys
  // the stream (RB origin, shard id), 'v' = varint spliced through.
  const char* pre;
  SlotKind kind;
  int nslots;
};

// One entry per delta-eligible wire type; the field order ports
// net/wire.cc's decode_payload. Everything after the last slot is an
// opaque tail (scalars, certificates, signature lists, trace-context
// tails) and is spliced through verbatim. Signed-blob types (42, 52, 54,
// 56, 40, 50, 5) are deliberately absent: their bytes are pinned under
// signatures and embedded in proofs, so they always pass through whole.
Shape shape_of(std::uint32_t type_id) {
  switch (type_id) {
    case 1:   // RbSendMsg    {origin, tag, inner}
    case 2:   // RbEchoMsg
    case 3:   // RbReadyMsg
    case 4:   // CrbSendMsg
    case 6:   // CrbFinalMsg  {origin, tag, inner, cert tail}
      return {"kv", SlotKind::kInner, 0};
    case 80:  // ShardEnvelopeMsg {shard, inner}
      return {"k", SlotKind::kInner, 0};
    case 10:  // DisclosureMsg {elem}
    case 11:  // AckReqMsg     {elem, ts}
    case 12:  // AckMsg
    case 13:  // NackMsg
    case 20:  // GDisclosureMsg {elem, round}
    case 21:  // GAckReqMsg     {elem, ts, round}
    case 22:  // GAckMsg        {elem, dest, acceptor, ts, round}
    case 23:  // GNackMsg
    case 24:  // SubmitMsg      {elem}
    case 25:  // SubmitNackMsg  {elem, retry_after, queue_cap}
    case 30:  // FAckReqMsg     {elem, ts}
    case 31:  // FAckMsg
    case 32:  // FNackMsg
    case 61:  // DecideMsg      {elem, replica}
    case 62:  // ConfReqMsg     {elem}
    case 63:  // ConfRepMsg     {elem, replica}
      return {"", SlotKind::kElem, 1};
    case 71:  // CatchupRepMsg {round, frontier, accepted, disclosed,
              //                decided, cert tail}
      return {"vv", SlotKind::kElem, 3};
    case 41:  // SSafeReqMsg  {signed value set}
      return {"", SlotKind::kSvSet, 1};
    case 43:  // SAckReqMsg   {safe value set, ts}
    case 44:  // SAckMsg
    case 45:  // SNackMsg
      return {"", SlotKind::kSafeVSet, 1};
    case 51:  // GSSafeReqMsg {signed batch set, round}
      return {"", SlotKind::kSbSet, 1};
    case 53:  // GSAckReqMsg  {safe batch set, ts, round}
    case 55:  // GSNackMsg
      return {"", SlotKind::kSafeBSet, 1};
    default:
      return {"", SlotKind::kNone, 0};
  }
}

// ---- per-kind set plumbing (uniform entries()/contains/insert API) ----

la::SignedValueSet decode_set(Decoder& dec, const la::SignedValueSet*) {
  return la::decode_signed_value_set(dec);
}
la::SafeValueSet decode_set(Decoder& dec, const la::SafeValueSet*) {
  return la::decode_safe_value_set(dec);
}
la::SignedBatchSet decode_set(Decoder& dec, const la::SignedBatchSet*) {
  return la::decode_signed_batch_set(dec);
}
la::SafeBatchSet decode_set(Decoder& dec, const la::SafeBatchSet*) {
  return la::decode_safe_batch_set(dec);
}

template <typename V>
bool entry_equal(const V& a, const V& b) {
  Encoder ea;
  a.encode(ea);
  Encoder eb;
  b.encode(eb);
  return ea.bytes() == eb.bytes();
}

// SafeBatch has no single-entry codec (the set encoder pools its proof
// blobs); compare the batch and each proof message's canonical bytes.
bool entry_equal(const la::SafeBatch& a, const la::SafeBatch& b) {
  if (!entry_equal(a.b, b.b) || a.proof.size() != b.proof.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.proof.size(); ++i) {
    if (a.proof[i]->encoded() != b.proof[i]->encoded()) return false;
  }
  return true;
}

/// Sender: rewrites one set slot. The delta carries every entry that is
/// new or whose bytes changed since the baseline; reconstruction prefers
/// delta entries on key collision, so changed proofs replace stale ones
/// and the rebuilt set is byte-exact. Falls back to full whenever a
/// baseline key vanished (non-monotone sequence).
template <typename Set>
void encode_set_slot(Decoder& dec, Encoder& out, Set& base) {
  Set cur = decode_set(dec, static_cast<const Set*>(nullptr));
  bool monotone = true;
  for (const auto& [key, value] : base.entries()) {
    if (!cur.contains(key)) {
      monotone = false;
      break;
    }
  }
  if (monotone) {
    Set delta;
    for (const auto& [key, value] : cur.entries()) {
      const auto it = base.entries().find(key);
      if (it == base.entries().end() || !entry_equal(it->second, value)) {
        delta.insert(value);
      }
    }
    out.put_u8(1);
    out.put_varint(cur.size());
    delta.encode(out);
  } else {
    out.put_u8(0);
    cur.encode(out);
  }
  base = std::move(cur);
}

template <typename Set>
void decode_set_slot(Decoder& dec, Encoder& out, Set& base) {
  const std::uint8_t tag = dec.get_u8();
  Set cur;
  if (tag == 0) {
    cur = decode_set(dec, static_cast<const Set*>(nullptr));
  } else {
    BGLA_CHECK_MSG(tag == 1, "bad delta set tag " << static_cast<int>(tag));
    const std::uint64_t expected = dec.get_varint();
    Set delta = decode_set(dec, static_cast<const Set*>(nullptr));
    cur = delta.unioned(base);  // delta wins key collisions
    BGLA_CHECK_MSG(cur.size() == expected,
                   "delta set size mismatch: got " << cur.size()
                                                   << ", expected "
                                                   << expected);
  }
  cur.encode(out);
  base = std::move(cur);
}

void encode_elem_slot(Decoder& dec, Encoder& out, Elem& base) {
  Elem cur = lattice::decode_elem(dec);
  Elem delta;
  if (lattice::diff_above(base, cur, &delta)) {
    out.put_u8(1);
    out.put_varint(cur.weight());
    delta.encode(out);
  } else {
    out.put_u8(0);
    cur.encode(out);
  }
  base = std::move(cur);
}

void decode_elem_slot(Decoder& dec, Encoder& out, Elem& base) {
  const std::uint8_t tag = dec.get_u8();
  Elem cur;
  if (tag == 0) {
    cur = lattice::decode_elem(dec);
  } else {
    BGLA_CHECK_MSG(tag == 1, "bad delta elem tag " << static_cast<int>(tag));
    const std::uint64_t expected = dec.get_varint();
    Elem delta = lattice::decode_elem(dec);
    cur = base.join(delta);  // throws on family mismatch
    BGLA_CHECK_MSG(cur.weight() == expected,
                   "delta weight mismatch: got " << cur.weight()
                                                 << ", expected "
                                                 << expected);
  }
  cur.encode(out);
  base = std::move(cur);
}

// ---- the shared walk ----

struct EncCtx {
  std::map<std::uint64_t, SendChain>* chains = nullptr;
  std::uint64_t key = kFnvOffset;
  SendChain* chain = nullptr;
  bool any_slot = false;
};

struct DecCtx {
  RecvChain* chain = nullptr;
  std::uint64_t key = kFnvOffset;
  bool any_slot = false;
};

ChainSlots& resolve_enc(EncCtx& ctx) {
  if (ctx.chain == nullptr) ctx.chain = &(*ctx.chains)[ctx.key];
  ctx.any_slot = true;
  return ctx.chain->slots;
}

/// Stream-key alias: the RB relay types (SEND/ECHO/READY, CrbSEND/FINAL)
/// map to one family value so all relays of one origin's broadcast share
/// a chain — an echo of a value the send already shipped deltas to empty.
std::uint32_t key_alias(std::uint32_t type) {
  switch (type) {
    case 2:
    case 3:
      return 1;
    case 6:
      return 4;
    default:
      return type;
  }
}

template <typename Ctx>
bool walk_pre(std::uint32_t type, Decoder& dec, Encoder& out, Ctx& ctx,
              const Shape& shape) {
  ctx.key = fnv_mix(ctx.key, key_alias(type));
  for (const char* p = shape.pre; *p != '\0'; ++p) {
    if (*p == 'k') {
      const std::uint32_t v = dec.get_u32();
      ctx.key = fnv_mix(ctx.key, v);
      out.put_u32(v);
    } else {
      out.put_varint(dec.get_varint());
    }
  }
  return shape.kind != SlotKind::kNone;
}

void transform_encode(std::uint32_t type, Decoder& dec, Encoder& out,
                      EncCtx& ctx, int depth) {
  BGLA_CHECK_MSG(depth <= kMaxDepth, "message nesting too deep");
  const Shape shape = shape_of(type);
  if (!walk_pre(type, dec, out, ctx, shape)) {
    out.put_raw(dec.rest());
    dec.skip_rest();
    return;
  }
  switch (shape.kind) {
    case SlotKind::kInner: {
      const Bytes raw = dec.get_bytes();
      Decoder idec{raw};
      const std::uint64_t itype = idec.get_varint();
      BGLA_CHECK_MSG(itype <= 0xffffffffull, "type id out of range");
      Encoder iout;
      iout.put_u32(static_cast<std::uint32_t>(itype));
      transform_encode(static_cast<std::uint32_t>(itype), idec, iout, ctx,
                       depth + 1);
      out.put_bytes(iout.bytes());
      break;
    }
    case SlotKind::kElem: {
      ChainSlots& slots = resolve_enc(ctx);
      if (slots.elems.size() < static_cast<std::size_t>(shape.nslots)) {
        slots.elems.resize(shape.nslots);
      }
      for (int i = 0; i < shape.nslots; ++i) {
        encode_elem_slot(dec, out, slots.elems[i]);
      }
      break;
    }
    case SlotKind::kSvSet:
      encode_set_slot(dec, out, resolve_enc(ctx).sv);
      break;
    case SlotKind::kSafeVSet:
      encode_set_slot(dec, out, resolve_enc(ctx).safev);
      break;
    case SlotKind::kSbSet:
      encode_set_slot(dec, out, resolve_enc(ctx).sb);
      break;
    case SlotKind::kSafeBSet:
      encode_set_slot(dec, out, resolve_enc(ctx).safeb);
      break;
    case SlotKind::kNone:
      break;  // unreachable: walk_pre returned false
  }
  out.put_raw(dec.rest());
  dec.skip_rest();
}

void transform_decode(std::uint32_t type, Decoder& dec, Encoder& out,
                      DecCtx& ctx, int depth) {
  BGLA_CHECK_MSG(depth <= kMaxDepth, "message nesting too deep");
  const Shape shape = shape_of(type);
  if (!walk_pre(type, dec, out, ctx, shape)) {
    out.put_raw(dec.rest());
    dec.skip_rest();
    return;
  }
  switch (shape.kind) {
    case SlotKind::kInner: {
      const Bytes raw = dec.get_bytes();
      Decoder idec{raw};
      const std::uint64_t itype = idec.get_varint();
      BGLA_CHECK_MSG(itype <= 0xffffffffull, "type id out of range");
      Encoder iout;
      iout.put_u32(static_cast<std::uint32_t>(itype));
      transform_decode(static_cast<std::uint32_t>(itype), idec, iout, ctx,
                       depth + 1);
      out.put_bytes(iout.bytes());
      break;
    }
    case SlotKind::kElem: {
      ctx.any_slot = true;
      ChainSlots& slots = ctx.chain->slots;
      if (slots.elems.size() < static_cast<std::size_t>(shape.nslots)) {
        slots.elems.resize(shape.nslots);
      }
      for (int i = 0; i < shape.nslots; ++i) {
        decode_elem_slot(dec, out, slots.elems[i]);
      }
      break;
    }
    case SlotKind::kSvSet:
      ctx.any_slot = true;
      decode_set_slot(dec, out, ctx.chain->slots.sv);
      break;
    case SlotKind::kSafeVSet:
      ctx.any_slot = true;
      decode_set_slot(dec, out, ctx.chain->slots.safev);
      break;
    case SlotKind::kSbSet:
      ctx.any_slot = true;
      decode_set_slot(dec, out, ctx.chain->slots.sb);
      break;
    case SlotKind::kSafeBSet:
      ctx.any_slot = true;
      decode_set_slot(dec, out, ctx.chain->slots.safeb);
      break;
    case SlotKind::kNone:
      break;  // unreachable
  }
  out.put_raw(dec.rest());
  dec.skip_rest();
}

}  // namespace

bool delta_eligible(std::uint32_t type_id) {
  return shape_of(type_id).kind != SlotKind::kNone;
}

bool encode_delta(const sim::Message& msg,
                  std::map<std::uint64_t, SendChain>& chains,
                  std::uint64_t* stream, std::uint64_t* seq, Bytes* out) {
  if (!delta_eligible(msg.type_id())) return false;
  const Bytes& encoded = msg.encoded();
  Decoder dec{encoded};
  const std::uint64_t type = dec.get_varint();
  Encoder enc;
  EncCtx ctx;
  ctx.chains = &chains;
  transform_encode(static_cast<std::uint32_t>(type), dec, enc, ctx, 0);
  if (!ctx.any_slot) {
    // A recursive wrapper around a non-lattice inner: the chain map was
    // never touched, so passing the original through is side-effect free.
    return false;
  }
  *stream = ctx.key;
  *seq = ctx.chain->next_seq++;
  *out = enc.take();
  return true;
}

bool peek_stream(std::uint32_t inner_type, BytesView payload,
                 std::uint64_t* stream) {
  std::uint64_t key = kFnvOffset;
  std::uint32_t type = inner_type;
  Bytes owned;  // keeps nested inner bytes alive across descents
  Decoder dec{payload};
  for (int depth = 0; depth <= kMaxDepth; ++depth) {
    const Shape shape = shape_of(type);
    key = fnv_mix(key, key_alias(type));
    if (shape.kind == SlotKind::kNone) return false;
    for (const char* p = shape.pre; *p != '\0'; ++p) {
      if (*p == 'k') {
        key = fnv_mix(key, dec.get_u32());
      } else {
        dec.get_varint();
      }
    }
    if (shape.kind != SlotKind::kInner) {
      *stream = key;
      return true;
    }
    owned = dec.get_bytes();
    dec = Decoder{owned};
    const std::uint64_t itype = dec.get_varint();
    BGLA_CHECK_MSG(itype <= 0xffffffffull, "type id out of range");
    type = static_cast<std::uint32_t>(itype);
  }
  BGLA_CHECK_MSG(false, "message nesting too deep");
}

Bytes decode_delta(std::uint32_t inner_type, BytesView payload,
                   RecvChain& chain) {
  Decoder dec{payload};
  Encoder out;
  DecCtx ctx;
  ctx.chain = &chain;
  transform_decode(inner_type, dec, out, ctx, 0);
  BGLA_CHECK_MSG(ctx.any_slot, "delta wrapper around a non-lattice message");
  return out.take();
}

}  // namespace bgla::net
