// Delta re-encoding of protocol messages against per-stream chain state.
//
// A message's canonical payload interleaves scalars, lattice elements and
// proof sets in a fixed, type-determined order (net/wire.cc's decoders are
// the authority). The codec walks that order with a small shape table and
// rewrites every lattice-valued slot as a DeltaElem:
//
//   u8 0 | full canonical encoding          (baseline unknown/unusable)
//   u8 1 | varint expected_weight | delta   (join against the chain value)
//
// where the baseline is the value the *sender* last shipped on the same
// stream — so reconstruction is exact (base ⊕ delta rebuilds the sender's
// value byte-for-byte) and never depends on the receiver's protocol
// state. Proof sets (SbS/GSbS signed/safe value and batch sets) delta at
// entry granularity: only entries whose key is new since the baseline are
// shipped, and the receiver unions them back. expected_weight/expected
// size give an O(1) desync check; a mismatch rejects the message and
// forces a chain reset (net/delta_transport.h).
//
// A stream identifies one monotone value sequence between a peer pair:
// FNV-1a over the descent path (outer type id, reliable-broadcast origin,
// shard id, inner type id). Keying RB traffic by origin means a SEND and
// the n ECHO/READY relays of the same disclosure share one chain, so the
// relays' deltas are empty. The stream id is derived independently on
// both ends from message *structure* only — every key component precedes
// the first lattice slot in every eligible shape — so it never rides the
// wire.
//
// Exclusions: signed-blob messages (SbS/GSbS ack payloads 42/52/54/56,
// DECIDED certs) pin exact bytes under signatures and pass through
// untouched, as do elem-free types. Unknown lattice families and
// non-monotone slot sequences fall back to tag-0 full encoding per slot;
// correctness never depends on a delta being expressible.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "la/gsbs_msgs.h"
#include "la/messages.h"
#include "la/signed_value.h"
#include "lattice/elem.h"
#include "sim/message.h"
#include "util/bytes.h"
#include "util/codec.h"

namespace bgla::net {

/// Baseline values for one stream's lattice slots. A stream's shape is
/// fixed (same descent path ⇒ same message type), so exactly one of the
/// representations is in use; the others stay empty.
struct ChainSlots {
  std::vector<lattice::Elem> elems;
  la::SignedValueSet sv;
  la::SafeValueSet safev;
  la::SignedBatchSet sb;
  la::SafeBatchSet safeb;
};

struct SendChain {
  std::uint64_t next_seq = 1;
  ChainSlots slots;
};

struct RecvChain {
  std::uint64_t next_seq = 1;
  ChainSlots slots;
  /// Out-of-order wrappers parked until their seq comes up.
  std::map<std::uint64_t, std::shared_ptr<const la::DeltaWrapMsg>> held;
};

/// True iff `type_id`'s shape contains at least one delta-able slot at
/// the top level (recursive wrappers report true; whether an actual
/// message qualifies still depends on its inner type — see encode_delta).
bool delta_eligible(std::uint32_t type_id);

/// Sender side: rewrites `msg`'s canonical encoding into a delta payload
/// against `chains` (per-stream baselines for one destination peer),
/// updating the touched chain's baselines. Returns false — chains
/// untouched — iff the walk reaches no lattice slot (ineligible type, or
/// a wrapper around an ineligible inner); the caller passes the original
/// message through. On success *stream/*seq identify the chain position
/// and *out holds the transformed payload (scalars and opaque tails are
/// spliced through byte-identically, trace-context tail included).
bool encode_delta(const sim::Message& msg,
                  std::map<std::uint64_t, SendChain>& chains,
                  std::uint64_t* stream, std::uint64_t* seq, Bytes* out);

/// Receiver side, step 1: derives the stream id of a wrapper from its
/// structural prefix without touching chain state. Throws CheckError on
/// garbage; returns false iff the walk proves there is no lattice slot
/// (such a wrapper is malformed — senders never produce one).
bool peek_stream(std::uint32_t inner_type, BytesView payload,
                 std::uint64_t* stream);

/// Receiver side, step 2: reconstructs the inner message's canonical
/// payload from a delta payload, resolving tag-1 slots against `chain`
/// and advancing its baselines. Throws CheckError on malformed input or
/// a failed expected-weight/size check (callers treat that as chain
/// desync and reset). The result, prefixed with varint(inner_type), is
/// exactly what the sender's Message::encoded() held.
Bytes decode_delta(std::uint32_t inner_type, BytesView payload,
                   RecvChain& chain);

}  // namespace bgla::net
