#include "net/delta_transport.h"

#include <utility>

#include "net/wire.h"
#include "util/check.h"

namespace bgla::net {

/// Inner-facing endpoint standing in for one protocol endpoint: receives
/// everything the inner transport delivers to `id` and hands it to the
/// decorator for unwrapping.
class DeltaTransport::Proxy final : public Endpoint {
 public:
  Proxy(DeltaTransport& parent, Transport& inner, ProcessId id)
      : Endpoint(inner, id), parent_(parent) {}

  void on_start() override {
    std::lock_guard<std::recursive_mutex> lock(parent_.mu_);
    const auto it = parent_.outer_.find(id());
    if (it != parent_.outer_.end()) it->second->on_start();
  }

  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    parent_.on_inner_message(from, id(), msg);
  }

 private:
  DeltaTransport& parent_;
};

DeltaTransport::DeltaTransport(Transport& inner)
    : DeltaTransport(inner, Options()) {}

DeltaTransport::DeltaTransport(Transport& inner, Options opts)
    : inner_(inner), opts_(opts) {}

DeltaTransport::~DeltaTransport() = default;

ProcessId DeltaTransport::attach(Endpoint& e) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const ProcessId id = e.id();
  BGLA_CHECK_MSG(outer_.count(id) == 0,
                 "endpoint id " << id << " already attached");
  // Registered before the proxy attaches: the inner transport may start
  // delivering (socket dispatch) as soon as the proxy exists.
  outer_[id] = &e;
  proxies_[id] = std::make_unique<Proxy>(*this, inner_, id);
  return id;
}

void DeltaTransport::detach(ProcessId id) {
  std::unique_ptr<Proxy> doomed;
  {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    outer_.erase(id);
    const auto it = proxies_.find(id);
    if (it != proxies_.end()) {
      doomed = std::move(it->second);
      proxies_.erase(it);
    }
  }
  // Proxy dtor detaches from the inner transport outside our lock.
}

void DeltaTransport::meter(ProcessId from, std::size_t bytes, bool delta) {
  if (delta) {
    ++stats_.msgs_delta;
    stats_.wire_bytes_delta += bytes;
  } else {
    ++stats_.msgs_passthrough;
    stats_.wire_bytes_passthrough += bytes;
  }
  if (opts_.instrument != nullptr) {
    opts_.instrument->on_wire_bytes(from, bytes, delta);
  }
}

void DeltaTransport::send(ProcessId from, ProcessId to, sim::MessagePtr msg) {
  if (msg == nullptr || from == to) {
    // Self-sends are local steps, not wire traffic: never wrapped or
    // metered, exactly as they cost nothing on a real link.
    inner_.send(from, to, std::move(msg));
    return;
  }
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!opts_.enabled || msg->type_id() == 90 || msg->type_id() == 91) {
    meter(from, msg->encoded().size(), false);
    inner_.send(from, to, std::move(msg));
    return;
  }
  PeerOut& out = out_[{from, to}];
  std::uint64_t stream = 0;
  std::uint64_t seq = 0;
  Bytes payload;
  if (!encode_delta(*msg, out.chains, &stream, &seq, &payload)) {
    meter(from, msg->encoded().size(), false);
    inner_.send(from, to, std::move(msg));
    return;
  }
  auto w = std::make_shared<la::DeltaWrapMsg>(out.epoch, seq, msg->type_id(),
                                              std::move(payload));
  w->set_trace_ctx(msg->trace_ctx());
  stats_.logical_bytes += msg->encoded().size();
  meter(from, w->encoded().size(), true);
  inner_.send(from, to, std::move(w));
}

void DeltaTransport::on_inner_message(ProcessId from, ProcessId self,
                                      const sim::MessagePtr& msg) {
  if (msg == nullptr) return;
  if (msg->type_id() == 90) {
    auto w = std::dynamic_pointer_cast<const la::DeltaWrapMsg>(msg);
    if (w != nullptr) {
      std::lock_guard<std::recursive_mutex> lock(mu_);
      on_wrapper(from, self, std::move(w));
      return;
    }
  } else if (msg->type_id() == 91) {
    auto r = std::dynamic_pointer_cast<const la::DeltaResetMsg>(msg);
    if (r != nullptr) {
      std::lock_guard<std::recursive_mutex> lock(mu_);
      PeerOut& out = out_[{self, from}];
      out.epoch = std::max(out.epoch, r->epoch) + 1;
      out.chains.clear();
      ++stats_.resets_received;
      return;
    }
  }
  deliver(from, self, msg);
}

void DeltaTransport::deliver(ProcessId from, ProcessId self,
                             const sim::MessagePtr& msg) {
  Endpoint* target = nullptr;
  {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    const auto it = outer_.find(self);
    if (it != outer_.end()) target = it->second;
  }
  if (target != nullptr) target->on_message(from, msg);
}

void DeltaTransport::fail_reset(ProcessId self, ProcessId from, PeerIn& in) {
  in.poisoned = true;
  in.chains.clear();
  in.held_total = 0;
  ++stats_.resets_sent;
  inner_.send(self, from, std::make_shared<la::DeltaResetMsg>(in.epoch));
}

void DeltaTransport::on_wrapper(ProcessId from, ProcessId self,
                                std::shared_ptr<const la::DeltaWrapMsg> w) {
  PeerIn& in = in_[{self, from}];
  if (w->epoch < in.epoch || (w->epoch == in.epoch && in.poisoned)) return;
  if (w->epoch > in.epoch) {
    in = PeerIn{};
    in.epoch = w->epoch;
  }
  std::uint64_t stream = 0;
  bool found = false;
  try {
    found = peek_stream(w->inner_type, BytesView(w->payload), &stream);
  } catch (const CheckError&) {
    found = false;
  }
  if (!found) {
    ++stats_.reconstruct_failures;
    fail_reset(self, from, in);
    return;
  }
  RecvChain& chain = in.chains[stream];
  if (w->seq < chain.next_seq) return;  // duplicate delivery
  if (w->seq > chain.next_seq) {
    if (in.held_total >= opts_.holdback_cap) {
      ++stats_.holdback_overflows;
      fail_reset(self, from, in);
      return;
    }
    chain.held[w->seq] = std::move(w);
    ++in.held_total;
    stats_.held_peak = std::max<std::uint64_t>(stats_.held_peak,
                                               in.held_total);
    return;
  }
  process_ready(from, self, in, chain, std::move(w));
}

void DeltaTransport::process_ready(
    ProcessId from, ProcessId self, PeerIn& in, RecvChain& chain,
    std::shared_ptr<const la::DeltaWrapMsg> w) {
  while (true) {
    sim::MessagePtr rebuilt;
    try {
      const Bytes payload =
          decode_delta(w->inner_type, BytesView(w->payload), chain);
      Encoder enc;
      enc.put_u32(w->inner_type);
      enc.put_raw(BytesView(payload));
      rebuilt = decode_message(enc.bytes());
    } catch (const CheckError&) {
      rebuilt = nullptr;
    }
    if (rebuilt == nullptr) {
      ++stats_.reconstruct_failures;
      fail_reset(self, from, in);
      return;
    }
    ++chain.next_seq;
    // Delivery happens under the (recursive) transport lock: handler
    // re-entry into send() is expected and safe, and inner transports
    // serialize deliveries per endpoint anyway.
    deliver(from, self, rebuilt);
    const auto it = chain.held.find(chain.next_seq);
    if (it == chain.held.end()) return;
    w = std::move(it->second);
    chain.held.erase(it);
    --in.held_total;
  }
}

void DeltaTransport::reset_peer(ProcessId peer) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (auto& [key, out] : out_) {
    if (key.second == peer) {
      ++out.epoch;
      out.chains.clear();
    }
  }
  for (auto& [key, in] : in_) {
    if (key.second == peer) in = PeerIn{};  // epoch 0: accept any restart
  }
}

DeltaTransport::Stats DeltaTransport::stats() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return stats_;
}

}  // namespace bgla::net
