// DeltaTransport — a Transport decorator that delta-encodes lattice
// traffic between peers (net/delta_codec.h) without the protocols ever
// noticing.
//
// Attachment interposes a proxy endpoint per protocol endpoint: sends are
// rewritten into DeltaWrapMsg (type 90) when the message carries lattice
// state, and incoming wrappers are reconstructed back into the original
// message — byte-identically, from the wrapper bytes, never from shared
// in-memory pointers — before delivery. Everything else (signed blobs,
// elem-free traffic, self-sends) passes through untouched. Works over
// both sim::Network (where it also forces real serialization, so the
// deterministic suites genuinely exercise the codec) and SocketTransport.
//
// Chain discipline: per (sender, receiver, stream) the wrapper carries a
// sequence number; the receiver applies deltas strictly in order, parking
// out-of-order arrivals in a capped holdback buffer. Desync — a failed
// expected-weight check, undecodable wrapper, or holdback overflow — is
// handled by the automatic full-state fallback protocol: the receiver
// clears its chains and sends DeltaResetMsg (type 91); the sender bumps
// its epoch and starts every stream from a full encoding again. A peer
// restart (socket HELLO incarnation bump) must call reset_peer(), which
// does the same preemptively — the fresh-peer / post-rejoin / dedup-reset
// cases named in the design note. Wrappers from a stale epoch are
// discarded; that only drops messages a crash already put in doubt, and
// the protocols' catch-up exchange (type 70/71) re-elicits the state.
//
// With Options.enabled=false the decorator is a pure pass-through that
// still meters per-message wire bytes — the delta-off baseline of the
// bench_throughput byte-curve experiment uses exactly this.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "la/messages.h"
#include "net/delta_codec.h"
#include "net/transport.h"
#include "obs/instrument.h"

namespace bgla::net {

class DeltaTransport final : public Transport {
 public:
  struct Options {
    /// false: meter-only passthrough (no wrapping, no chain state).
    bool enabled = true;
    /// Max parked out-of-order wrappers per sending peer before the
    /// receiver declares desync and resets the chains.
    std::size_t holdback_cap = 4096;
    /// Optional metrics sink (bgla_wire_* counters).
    obs::Instrument* instrument = nullptr;
  };

  struct Stats {
    std::uint64_t msgs_delta = 0;         ///< sends wrapped as deltas
    std::uint64_t msgs_passthrough = 0;   ///< sends forwarded untouched
    std::uint64_t wire_bytes_delta = 0;   ///< encoded wrapper bytes
    std::uint64_t wire_bytes_passthrough = 0;
    /// What the wrapped messages would have cost un-delta'd (their full
    /// canonical encodings) — the savings denominator.
    std::uint64_t logical_bytes = 0;
    std::uint64_t resets_sent = 0;
    std::uint64_t resets_received = 0;
    std::uint64_t holdback_overflows = 0;
    std::uint64_t reconstruct_failures = 0;
    std::uint64_t held_peak = 0;

    std::uint64_t wire_bytes_total() const {
      return wire_bytes_delta + wire_bytes_passthrough;
    }
  };

  explicit DeltaTransport(Transport& inner);
  DeltaTransport(Transport& inner, Options opts);
  ~DeltaTransport() override;

  ProcessId attach(Endpoint& e) override;
  void detach(ProcessId id) override;
  void send(ProcessId from, ProcessId to, sim::MessagePtr msg) override;
  Time now() const override { return inner_.now(); }
  std::uint64_t current_depth() const override {
    return inner_.current_depth();
  }
  void request_stop() override { inner_.request_stop(); }

  /// Peer restarted (transport-level dedup reset, e.g. a socket HELLO
  /// with a bumped incarnation): drop every baseline negotiated with it.
  void reset_peer(ProcessId peer);

  Stats stats() const;
  bool enabled() const { return opts_.enabled; }

 private:
  class Proxy;

  struct PeerOut {
    std::uint64_t epoch = 1;
    std::map<std::uint64_t, SendChain> chains;
  };
  struct PeerIn {
    std::uint64_t epoch = 0;
    bool poisoned = false;  // drop wrappers until a fresh epoch arrives
    std::size_t held_total = 0;
    std::map<std::uint64_t, RecvChain> chains;
  };
  using PairKey = std::pair<ProcessId, ProcessId>;  // (self, peer)

  void on_inner_message(ProcessId from, ProcessId self,
                        const sim::MessagePtr& msg);
  void on_wrapper(ProcessId from, ProcessId self,
                  std::shared_ptr<const la::DeltaWrapMsg> w);
  void process_ready(ProcessId from, ProcessId self, PeerIn& in,
                     RecvChain& chain,
                     std::shared_ptr<const la::DeltaWrapMsg> w);
  void fail_reset(ProcessId self, ProcessId from, PeerIn& in);
  void deliver(ProcessId from, ProcessId self, const sim::MessagePtr& msg);
  void meter(ProcessId from, std::size_t bytes, bool delta);

  Transport& inner_;
  Options opts_;
  mutable std::recursive_mutex mu_;
  Stats stats_;
  std::map<ProcessId, Endpoint*> outer_;
  std::map<ProcessId, std::unique_ptr<Proxy>> proxies_;
  std::map<PairKey, PeerOut> out_;  // keyed (sender self, destination)
  std::map<PairKey, PeerIn> in_;    // keyed (receiver self, source)
};

}  // namespace bgla::net
