#include "net/link_policy.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace bgla::net {

namespace {

std::uint64_t xorshift(std::uint64_t* state) {
  std::uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *state = x;
}

double unit_double(std::uint64_t* state) {
  return static_cast<double>(xorshift(state) >> 11) / 9007199254740992.0;
}

bool parse_u32(const std::string& s, std::uint32_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v > 0xffffffffull) return false;
  *out = static_cast<std::uint32_t>(v);
  return true;
}

bool parse_prob(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || v < 0.0 || v > 1.0) return false;
  *out = v;
  return true;
}

}  // namespace

bool parse_link_policy(const std::string& spec, LinkPolicy* out) {
  LinkPolicy p;
  if (spec == "off" || spec == "none" || spec.empty()) {
    *out = p;
    return true;
  }
  std::istringstream ss(spec);
  std::string field;
  while (std::getline(ss, field, ',')) {
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = field.substr(0, eq);
    const std::string val = field.substr(eq + 1);
    if (key == "lat" || key == "latency") {
      if (!parse_u32(val, &p.latency_ms)) return false;
    } else if (key == "jitter") {
      if (!parse_u32(val, &p.jitter_ms)) return false;
    } else if (key == "loss") {
      if (!parse_prob(val, &p.loss_rate)) return false;
    } else if (key == "bw" || key == "bandwidth") {
      if (!parse_u32(val, &p.bandwidth_kbps)) return false;
    } else if (key == "reorder") {
      if (!parse_u32(val, &p.reorder_window)) return false;
    } else if (key == "reorder_rate") {
      if (!parse_prob(val, &p.reorder_rate)) return false;
    } else {
      return false;
    }
  }
  // A reorder probability without a window (or vice versa) is a spec
  // mistake the caller should hear about, not a silent no-op.
  if ((p.reorder_rate > 0.0) != (p.reorder_window > 0)) return false;
  *out = p;
  return true;
}

std::string link_policy_to_string(const LinkPolicy& p) {
  if (p.neutral()) return "off";
  std::ostringstream os;
  const char* sep = "";
  const auto emit = [&](const std::string& kv) {
    os << sep << kv;
    sep = ",";
  };
  if (p.latency_ms != 0) emit("lat=" + std::to_string(p.latency_ms));
  if (p.jitter_ms != 0) emit("jitter=" + std::to_string(p.jitter_ms));
  if (p.loss_rate != 0.0) {
    std::ostringstream lv;
    lv << "loss=" << p.loss_rate;
    emit(lv.str());
  }
  if (p.bandwidth_kbps != 0) emit("bw=" + std::to_string(p.bandwidth_kbps));
  if (p.reorder_window != 0) {
    emit("reorder=" + std::to_string(p.reorder_window));
  }
  if (p.reorder_rate != 0.0) {
    std::ostringstream rv;
    rv << "reorder_rate=" << p.reorder_rate;
    emit(rv.str());
  }
  return os.str();
}

LinkPolicy LinkMatrix::policy_for(ProcessId from, ProcessId to) const {
  LinkPolicy p;
  for (const Rule& r : rules) {
    if ((r.any_from || r.from == from) && (r.any_to || r.to == to)) {
      p = r.policy;
    }
  }
  return p;
}

bool parse_link_matrix(const std::string& text, LinkMatrix* out,
                       std::string* err) {
  LinkMatrix m;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string from_tok, to_tok, spec;
    if (!(ls >> from_tok)) continue;  // blank / comment-only line
    std::string trailing;
    if (!(ls >> to_tok >> spec) || (ls >> trailing)) {
      if (err != nullptr) {
        *err = "line " + std::to_string(lineno) +
               ": expected '<from> <to> <spec>'";
      }
      return false;
    }
    LinkMatrix::Rule r;
    if (from_tok == "*") {
      r.any_from = true;
    } else if (!parse_u32(from_tok, &r.from)) {
      if (err != nullptr) {
        *err = "line " + std::to_string(lineno) + ": bad from id '" +
               from_tok + "'";
      }
      return false;
    }
    if (to_tok == "*") {
      r.any_to = true;
    } else if (!parse_u32(to_tok, &r.to)) {
      if (err != nullptr) {
        *err = "line " + std::to_string(lineno) + ": bad to id '" + to_tok +
               "'";
      }
      return false;
    }
    if (!parse_link_policy(spec, &r.policy)) {
      if (err != nullptr) {
        *err = "line " + std::to_string(lineno) + ": bad link spec '" +
               spec + "'";
      }
      return false;
    }
    m.rules.push_back(std::move(r));
  }
  *out = std::move(m);
  return true;
}

bool load_link_matrix(const std::string& path, LinkMatrix* out,
                      std::string* err) {
  std::ifstream in(path);
  if (!in) {
    if (err != nullptr) *err = "cannot open '" + path + "'";
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_link_matrix(text.str(), out, err);
}

// -------------------------------------------------------------- shaper --

LinkShaper::LinkShaper(LinkPolicy base, std::uint64_t seed)
    : base_(base), cur_(base), rng_(seed == 0 ? 1 : seed) {}

LinkShaper::Decision LinkShaper::shape(std::size_t frame_bytes,
                                       std::uint64_t now_us,
                                       bool reorderable) {
  std::lock_guard<std::mutex> lk(mu_);
  Decision d;
  if (cur_.loss_rate > 0.0 && unit_double(&rng_) < cur_.loss_rate) {
    d.drop = true;
    ++drops_;
    return d;
  }
  if (reorderable && cur_.reorder_window > 0 && cur_.reorder_rate > 0.0 &&
      unit_double(&rng_) < cur_.reorder_rate) {
    d.hold = true;
    ++holds_;
    return d;
  }
  std::uint64_t delay_us =
      static_cast<std::uint64_t>(cur_.latency_ms) * 1000;
  if (cur_.jitter_ms > 0) {
    delay_us += xorshift(&rng_) %
                (static_cast<std::uint64_t>(cur_.jitter_ms) * 1000 + 1);
  }
  if (cur_.bandwidth_kbps > 0) {
    // Serialization onto the virtual wire: bits / (kbit/s) = ms. The
    // busy-until clock makes back-to-back frames queue behind each other
    // even when each is individually small.
    const std::uint64_t ser_us =
        static_cast<std::uint64_t>(frame_bytes) * 8 * 1000 /
        cur_.bandwidth_kbps;
    const std::uint64_t start = std::max(busy_until_us_, now_us);
    busy_until_us_ = start + ser_us;
    delay_us += (start - now_us) + ser_us;
  }
  if (delay_us > 0) {
    ++delayed_frames_;
    delay_us_total_ += delay_us;
    d.delay_us = delay_us;
  }
  return d;
}

void LinkShaper::set_policy(const LinkPolicy& p) {
  std::lock_guard<std::mutex> lk(mu_);
  cur_ = p;
}

LinkPolicy LinkShaper::policy() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cur_;
}

LinkPolicy LinkShaper::base() const {
  std::lock_guard<std::mutex> lk(mu_);
  return base_;
}

void LinkShaper::heal() {
  std::lock_guard<std::mutex> lk(mu_);
  cur_ = base_;
}

std::uint64_t LinkShaper::drops() const {
  std::lock_guard<std::mutex> lk(mu_);
  return drops_;
}
std::uint64_t LinkShaper::holds() const {
  std::lock_guard<std::mutex> lk(mu_);
  return holds_;
}
std::uint64_t LinkShaper::delayed_frames() const {
  std::lock_guard<std::mutex> lk(mu_);
  return delayed_frames_;
}
std::uint64_t LinkShaper::delay_us_total() const {
  std::lock_guard<std::mutex> lk(mu_);
  return delay_us_total_;
}

// ------------------------------------------------------- reorder buffer --

bool ReorderBuffer::hold(Bytes frame) {
  if (held_.size() >= window_) return false;
  held_.push_back(std::move(frame));
  return true;
}

std::vector<Bytes> ReorderBuffer::drain() {
  std::vector<Bytes> out(held_.begin(), held_.end());
  held_.clear();
  return out;
}

}  // namespace bgla::net
