// Per-link network shaping for net::SocketTransport.
//
// A LinkPolicy describes one DIRECTED link (self -> peer): base latency,
// uniform jitter, an independent per-frame loss probability, a bandwidth
// cap that serializes frames onto a virtual wire, and a bounded reorder
// window. Policies are loadable from a link-matrix file (one "<from> <to>
// <spec>" rule per line, '*' wildcards, later rules win), so a loopback
// cluster can emulate a multi-region WAN deployment deterministically:
// every stream of shaping decisions is driven by a seeded xorshift
// generator, never by wall-clock entropy or the OS scheduler.
//
// The shaping seam is LinkShaper::shape(): the transport asks it, per
// outgoing frame, for a Decision {drop, hold, delay_us} and then executes
// that decision in the writer thread (sleep + skip/write). Each link keeps
// a BASE policy (the deployment's configured WAN matrix) and a CURRENT
// policy (mutated at runtime by the chaos driver); heal() restores base,
// not a neutral link — a WAN brownout heals back to being a WAN link.
//
// ReorderBuffer is the holdback queue behind the reorder window: a held
// frame is written only after at least one later frame hit the wire, which
// is genuine wire reordering (the receive-side dedup layer tolerates it —
// delivery order is already unspecified in the §3 link model).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/ids.h"

namespace bgla::net {

struct LinkPolicy {
  std::uint32_t latency_ms = 0;      // base one-way latency per frame
  std::uint32_t jitter_ms = 0;       // extra uniform [0, jitter_ms]
  double loss_rate = 0.0;            // P(drop) per frame
  std::uint32_t bandwidth_kbps = 0;  // serialization cap; 0 = unlimited
  std::uint32_t reorder_window = 0;  // max frames held back at once
  double reorder_rate = 0.0;         // P(hold) per frame (needs window > 0)

  bool neutral() const {
    return latency_ms == 0 && jitter_ms == 0 && loss_rate == 0.0 &&
           bandwidth_kbps == 0 && reorder_window == 0 &&
           reorder_rate == 0.0;
  }
  bool operator==(const LinkPolicy&) const = default;
};

/// Parses "lat=25,jitter=10,loss=0.02,bw=256,reorder=4,reorder_rate=0.1"
/// (any subset, any order; unset fields stay at their neutral defaults).
/// "off" / "none" parse as the neutral policy. Returns false on garbage.
bool parse_link_policy(const std::string& spec, LinkPolicy* out);

/// Round-trips a policy back into parse_link_policy() syntax (logging).
std::string link_policy_to_string(const LinkPolicy& p);

/// Ordered rule list from a link-matrix file. Lines:
///   <from> <to> <spec>     # '*' matches any id; later rules override
/// Blank lines and '#' comments are skipped.
struct LinkMatrix {
  struct Rule {
    bool any_from = false;
    ProcessId from = kNoProcess;
    bool any_to = false;
    ProcessId to = kNoProcess;
    LinkPolicy policy;
  };
  std::vector<Rule> rules;

  /// Policy of the directed link from -> to (last matching rule; neutral
  /// when nothing matches).
  LinkPolicy policy_for(ProcessId from, ProcessId to) const;
  bool empty() const { return rules.empty(); }
};

/// Parses a link-matrix file; on failure returns false and sets *err.
bool load_link_matrix(const std::string& path, LinkMatrix* out,
                      std::string* err);

/// Parses link-matrix rules from an in-memory string (same grammar).
bool parse_link_matrix(const std::string& text, LinkMatrix* out,
                       std::string* err);

/// Deterministic per-link decision stream. Thread-safe: the transport
/// consults one shaper from its sender thread (DATA/HELLO) and its
/// inbound threads (ACKs) concurrently.
class LinkShaper {
 public:
  struct Decision {
    bool drop = false;          // frame vanishes (retransmission recovers)
    bool hold = false;          // absorb into the reorder holdback instead
    std::uint64_t delay_us = 0; // sleep before the write
  };

  LinkShaper(LinkPolicy base, std::uint64_t seed);

  /// One decision per frame. `now_us` drives the bandwidth virtual clock
  /// (monotone per caller; the transport passes its now()). `reorderable`
  /// marks frames eligible for holdback (DATA only — holding a HELLO or
  /// an ACK would just stall the connection preamble).
  Decision shape(std::size_t frame_bytes, std::uint64_t now_us,
                 bool reorderable);

  void set_policy(const LinkPolicy& p);
  LinkPolicy policy() const;
  LinkPolicy base() const;
  /// Restores the base policy (the configured matrix, not a neutral link).
  void heal();

  // Shaping counters (exported via the transport's per-peer obs).
  std::uint64_t drops() const;
  std::uint64_t holds() const;
  std::uint64_t delayed_frames() const;
  std::uint64_t delay_us_total() const;

 private:
  mutable std::mutex mu_;
  LinkPolicy base_;
  LinkPolicy cur_;
  std::uint64_t rng_;
  std::uint64_t busy_until_us_ = 0;  // bandwidth serialization clock
  std::uint64_t drops_ = 0;
  std::uint64_t holds_ = 0;
  std::uint64_t delayed_frames_ = 0;
  std::uint64_t delay_us_total_ = 0;
};

/// Bounded FIFO of held frame bodies (the reorder window). Single-threaded
/// by contract: only the owning sender thread touches it.
class ReorderBuffer {
 public:
  explicit ReorderBuffer(std::uint32_t window) : window_(window) {}

  /// Absorbs a frame; false = buffer full (caller must write it instead).
  bool hold(Bytes frame);

  /// Hands back every held frame in held order and clears the buffer —
  /// called after a later frame hit the wire (that is the reordering), on
  /// every retransmit tick, and on reconnect, so no frame starves.
  std::vector<Bytes> drain();

  std::size_t size() const { return held_.size(); }
  std::uint32_t window() const { return window_; }
  void set_window(std::uint32_t w) { window_ = w; }

 private:
  std::uint32_t window_;
  std::deque<Bytes> held_;
};

}  // namespace bgla::net
