// Shard-carrying wire envelope (type id 80).
//
// A sharded node (tools/bgla_node --shards=S) runs S independent protocol
// stacks behind one transport identity. Peer-to-peer protocol traffic is
// wrapped in this envelope so the receiving Router can demultiplex the
// frame to the right shard's stack; client-facing traffic (submit /
// update / decide / confirmation) stays unwrapped — clients are
// shard-oblivious and the Router translates for them (src/shard/router.h).
//
// The envelope is part of bgla_net, not bgla_shard, because the wire
// codec must decode it (wire.cc case 80) and src/shard/ layers on top of
// src/net/ — defining it here keeps the dependency graph acyclic.
#pragma once

#include <memory>
#include <sstream>
#include <utility>

#include "sim/message.h"

namespace bgla::net {

/// `varint(80) || u32(shard) || bytes(inner->encoded())`. The inner
/// message may be any registered type (protocols nest RB envelopes etc.
/// inside); wire.cc bounds the recursion with its usual depth limit.
class ShardEnvelopeMsg final : public sim::Message {
 public:
  ShardEnvelopeMsg(std::uint32_t shard, sim::MessagePtr inner)
      : shard(shard), inner(std::move(inner)) {}

  std::uint32_t type_id() const override { return 80; }
  /// Accounted under the wrapped message's layer: the envelope is framing,
  /// not traffic of its own.
  sim::Layer layer() const override { return inner->layer(); }
  void encode_payload(Encoder& enc) const override {
    enc.put_u32(shard);
    enc.put_bytes(BytesView(inner->encoded()));
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "SHARD(" << shard << "," << inner->to_string() << ")";
    return os.str();
  }

  std::uint32_t shard;
  sim::MessagePtr inner;
};

}  // namespace bgla::net
