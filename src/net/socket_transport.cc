#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "net/backoff.h"
#include "net/wire.h"
#include "util/check.h"
#include "util/codec.h"

namespace bgla::net {

namespace {

constexpr std::uint8_t kHello = 0;
constexpr std::uint8_t kData = 1;
constexpr std::uint8_t kAck = 2;

// Hard bound on a frame body; anything larger is a corrupt/hostile length
// prefix, not a protocol message.
constexpr std::uint32_t kMaxFrame = 1u << 24;

struct ParsedFrame {
  std::uint8_t kind = 0;
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  std::uint64_t seq = 0;
  Bytes payload;
};

}  // namespace

SocketTransport::SocketTransport(SocketConfig cfg)
    : cfg_(std::move(cfg)),
      authority_(cfg_.num_processes, cfg_.auth_seed),
      signer_(authority_.signer_for(cfg_.self)),
      epoch_(std::chrono::steady_clock::now()) {
  BGLA_CHECK_MSG(cfg_.self < cfg_.num_processes,
                 "self id " << cfg_.self << " outside key space");
  bool self_listed = false;
  for (const PeerAddr& p : cfg_.peers) {
    BGLA_CHECK_MSG(p.id < cfg_.num_processes,
                   "peer id " << p.id << " outside key space");
    if (p.id == cfg_.self) {
      self_listed = true;
    } else {
      auto ob = std::make_unique<Outbox>();
      LinkPolicy base = cfg_.link_matrix.policy_for(cfg_.self, p.id);
      base.loss_rate = std::max(base.loss_rate, cfg_.loss_rate);
      const std::uint64_t seed =
          cfg_.loss_seed ^ (0x9e3779b97f4a7c15ull * (p.id + 1)) ^
          (0x517cc1b727220a95ull * (cfg_.self + 1));
      ob->shaper = std::make_unique<LinkShaper>(base, seed);
      ob->holdback.set_window(base.reorder_window);
      outboxes_.emplace(p.id, std::move(ob));
    }
  }
  BGLA_CHECK_MSG(self_listed, "self id missing from peer list");
}

SocketTransport::~SocketTransport() { stop(); }

const PeerAddr& SocketTransport::peer(ProcessId id) const {
  for (const PeerAddr& p : cfg_.peers) {
    if (p.id == id) return p;
  }
  BGLA_CHECK_MSG(false, "unknown peer id " << id);
}

ProcessId SocketTransport::attach(Endpoint& e) {
  BGLA_CHECK_MSG(endpoint_ == nullptr,
                 "socket transport hosts exactly one endpoint");
  endpoint_ = &e;
  return cfg_.self;
}

void SocketTransport::detach(ProcessId id) {
  BGLA_CHECK(id == cfg_.self);
  endpoint_ = nullptr;
}

Time SocketTransport::now() const {
  return static_cast<Time>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void SocketTransport::request_stop() { stop_flag_.store(true); }

void SocketTransport::set_instrument(obs::Instrument* instrument) {
  BGLA_CHECK_MSG(!started_, "set_instrument after start");
  instr_ = instrument;
}

void SocketTransport::set_observability(obs::Registry* registry,
                                        obs::TraceWriter* trace) {
  BGLA_CHECK_MSG(!started_, "set_observability after start");
  trace_ = trace;
  if (registry == nullptr) return;
  obs_frames_dropped_ = &registry->counter("bgla_net_frames_dropped_total");
  obs_reconnects_ = &registry->counter("bgla_net_reconnects_total");
  for (const auto& [id, ob] : outboxes_) {
    const std::string peer_label =
        "{peer=\"" + std::to_string(id) + "\"}";
    PeerObs po;
    po.frames_sent =
        &registry->counter("bgla_net_frames_sent_total" + peer_label);
    po.frames_recv =
        &registry->counter("bgla_net_frames_recv_total" + peer_label);
    po.retransmits =
        &registry->counter("bgla_net_frames_retransmitted_total" +
                           peer_label);
    po.dups =
        &registry->counter("bgla_net_dups_suppressed_total" + peer_label);
    po.rtt_us = &registry->histogram("bgla_net_frame_rtt_us" + peer_label);
    po.backoff_attempts = &registry->gauge(
        "bgla_net_reconnect_backoff_attempts_total" + peer_label);
    po.shaped_drops =
        &registry->counter("bgla_net_shaped_drops_total" + peer_label);
    po.shaped_delay_us =
        &registry->counter("bgla_net_shaped_delay_us_total" + peer_label);
    po.reorder_held =
        &registry->counter("bgla_net_reorder_held_total" + peer_label);
    peer_obs_.emplace(id, po);
  }
}

void SocketTransport::set_block_outgoing(ProcessId to, bool blocked) {
  BGLA_CHECK_MSG(to < 64, "block mask covers process ids < 64");
  if (blocked) {
    block_out_mask_.fetch_or(1ull << to);
  } else {
    block_out_mask_.fetch_and(~(1ull << to));
  }
}

void SocketTransport::set_block_incoming(ProcessId from, bool blocked) {
  BGLA_CHECK_MSG(from < 64, "block mask covers process ids < 64");
  if (blocked) {
    block_in_mask_.fetch_or(1ull << from);
  } else {
    block_in_mask_.fetch_and(~(1ull << from));
  }
}

bool SocketTransport::blocked_out(ProcessId to) const {
  return ((block_out_mask_.load(std::memory_order_relaxed) >> to) & 1) != 0;
}

void SocketTransport::set_link_policy(ProcessId to, const LinkPolicy& p) {
  auto it = outboxes_.find(to);
  BGLA_CHECK_MSG(it != outboxes_.end(), "set_link_policy: unknown peer "
                                            << to);
  it->second->shaper->set_policy(p);
}

void SocketTransport::set_all_links(const LinkPolicy& p) {
  for (auto& [id, ob] : outboxes_) ob->shaper->set_policy(p);
}

void SocketTransport::heal_links() {
  for (auto& [id, ob] : outboxes_) ob->shaper->heal();
}

LinkPolicy SocketTransport::link_policy(ProcessId to) const {
  auto it = outboxes_.find(to);
  BGLA_CHECK_MSG(it != outboxes_.end(), "link_policy: unknown peer " << to);
  return it->second->shaper->policy();
}

void SocketTransport::set_loss_rate(double rate) {
  for (auto& [id, ob] : outboxes_) {
    LinkPolicy p = ob->shaper->policy();
    p.loss_rate = rate;
    ob->shaper->set_policy(p);
  }
}

void SocketTransport::set_send_delay_ms(std::uint32_t ms) {
  for (auto& [id, ob] : outboxes_) {
    LinkPolicy p = ob->shaper->policy();
    p.latency_ms = ms;
    ob->shaper->set_policy(p);
  }
}

Bytes SocketTransport::build_frame(std::uint8_t kind, ProcessId to,
                                   std::uint64_t seq,
                                   BytesView payload) const {
  Encoder core;
  core.put_u8(kind);
  core.put_u32(cfg_.self);
  core.put_u32(to);
  core.put_u64(seq);
  core.put_bytes(payload);
  crypto::Signature sig;
  {
    std::lock_guard<std::mutex> lk(crypto_mu_);
    sig = signer_.sign(core.bytes());
  }
  Encoder body;
  body.put_bytes(core.bytes());
  body.put_u32(sig.signer);
  body.put_bytes(BytesView(sig.mac.data(), sig.mac.size()));
  return body.take();
}

void SocketTransport::send(ProcessId from, ProcessId to,
                           sim::MessagePtr msg) {
  BGLA_CHECK(msg != nullptr);
  BGLA_CHECK_MSG(from == cfg_.self,
                 "socket transport sends only as its own identity");
  if (to == cfg_.self) {  // local step, no network hop
    enqueue_delivery(cfg_.self, std::move(msg));
    return;
  }
  auto it = outboxes_.find(to);
  BGLA_CHECK_MSG(it != outboxes_.end(), "send to unknown peer " << to);
  Outbox& ob = *it->second;
  {
    auto po = peer_obs_.find(to);
    if (po != peer_obs_.end()) po->second.frames_sent->inc();
  }
  {
    std::lock_guard<std::mutex> lk(ob.mu);
    const std::uint64_t seq = ob.next_seq++;
    ob.unacked.emplace(
        seq, UnackedFrame{build_frame(kData, to, seq, msg->encoded()),
                          now()});
  }
  if (ob.wake_pipe[1] >= 0) {
    const char b = 1;
    [[maybe_unused]] ssize_t r = ::write(ob.wake_pipe[1], &b, 1);
  }
}

void SocketTransport::enqueue_delivery(ProcessId from, sim::MessagePtr msg) {
  {
    std::lock_guard<std::mutex> lk(inbox_mu_);
    inbox_.push_back(Delivery{from, std::move(msg)});
  }
  inbox_cv_.notify_one();
}

// ------------------------------------------------------------- sockets --

void SocketTransport::bind_and_listen() {
  BGLA_CHECK(listen_fd_ < 0);
  const PeerAddr& self = peer(cfg_.self);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  BGLA_CHECK_MSG(listen_fd_ >= 0, "socket(): " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(self.port);
  BGLA_CHECK_MSG(::inet_pton(AF_INET, self.host.c_str(), &addr.sin_addr) == 1,
                 "bad listen host " << self.host);
  BGLA_CHECK_MSG(
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0,
      "bind(" << self.host << ":" << self.port
              << "): " << std::strerror(errno));
  BGLA_CHECK_MSG(::listen(listen_fd_, 64) == 0,
                 "listen(): " << std::strerror(errno));
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  BGLA_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                           &len) == 0);
  listen_port_ = ntohs(bound.sin_port);
}

void SocketTransport::set_peer_port(ProcessId id, std::uint16_t port) {
  BGLA_CHECK_MSG(!started_, "set_peer_port after start");
  for (PeerAddr& p : cfg_.peers) {
    if (p.id == id) {
      p.port = port;
      return;
    }
  }
  BGLA_CHECK_MSG(false, "unknown peer id " << id);
}

int SocketTransport::dial(const PeerAddr& addr, Backoff& backoff,
                          obs::Gauge* attempts_gauge) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) return -1;
  while (running_.load()) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0 &&
        ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      backoff.reset();  // healthy peer: next redial starts cheap again
      return fd;
    }
    if (fd >= 0) ::close(fd);
    if (attempts_gauge != nullptr) attempts_gauge->add(1);
    // Sleep the backoff delay in short slices so stop() stays responsive
    // even at the 2s cap.
    std::uint32_t left = backoff.next_ms();
    while (left > 0 && running_.load()) {
      const std::uint32_t slice = std::min(left, 50u);
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      left -= slice;
    }
  }
  return -1;
}

bool SocketTransport::shaped_sleep(std::uint64_t delay_us) {
  // Shaped delays sleep in short slices so stop() stays responsive even
  // under second-scale WAN policies.
  while (delay_us > 0 && running_.load()) {
    const std::uint64_t slice = std::min<std::uint64_t>(delay_us, 50000);
    std::this_thread::sleep_for(std::chrono::microseconds(slice));
    delay_us -= slice;
  }
  return running_.load();
}

SocketTransport::WriteStatus SocketTransport::write_frame(int fd,
                                                          const Bytes& body,
                                                          ProcessId to,
                                                          bool reorderable) {
  auto ob_it = outboxes_.find(to);
  LinkShaper* shaper =
      ob_it == outboxes_.end() ? nullptr : ob_it->second->shaper.get();
  if (shaper != nullptr) {
    const LinkShaper::Decision d =
        shaper->shape(body.size() + 4, now(), reorderable);
    if (d.drop) {
      frames_dropped_.fetch_add(1);
      auto po = peer_obs_.find(to);
      if (po != peer_obs_.end()) po->second.shaped_drops->inc();
      return WriteStatus::kShapedDrop;
    }
    if (d.hold) return WriteStatus::kHeld;
    if (d.delay_us > 0) {
      auto po = peer_obs_.find(to);
      if (po != peer_obs_.end()) po->second.shaped_delay_us->inc(d.delay_us);
      if (!shaped_sleep(d.delay_us)) return WriteStatus::kError;  // stopping
    }
  }
  return write_raw(fd, body) ? WriteStatus::kOk : WriteStatus::kError;
}

bool SocketTransport::write_raw(int fd, const Bytes& body) {
  std::uint8_t hdr[4] = {
      static_cast<std::uint8_t>(body.size() >> 24),
      static_cast<std::uint8_t>(body.size() >> 16),
      static_cast<std::uint8_t>(body.size() >> 8),
      static_cast<std::uint8_t>(body.size()),
  };
  Bytes buf(hdr, hdr + 4);
  buf.insert(buf.end(), body.begin(), body.end());
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n =
        ::send(fd, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool SocketTransport::send_shaped_data(int fd, Outbox& ob, ProcessId to,
                                       const Bytes& body, bool* wrote) {
  WriteStatus st = write_frame(fd, body, to, /*reorderable=*/true);
  if (st == WriteStatus::kHeld) {
    ob.holdback.set_window(ob.shaper->policy().reorder_window);
    if (ob.holdback.hold(body)) {
      auto po = peer_obs_.find(to);
      if (po != peer_obs_.end()) po->second.reorder_held->inc();
      return true;  // absorbed; a later write (or tick) drains it
    }
    // Window full: the frame goes out now, after everything already held
    // was decided before it — still a reordering, just a bounded one.
    st = write_frame(fd, body, to, /*reorderable=*/false);
  }
  if (st == WriteStatus::kOk) *wrote = true;
  return st != WriteStatus::kError;
}

bool SocketTransport::flush_holdback(int fd, Outbox& ob, ProcessId to) {
  for (Bytes& body : ob.holdback.drain()) {
    const WriteStatus st = write_frame(fd, body, to, /*reorderable=*/false);
    if (st == WriteStatus::kError) return false;
  }
  return true;
}

std::optional<Bytes> SocketTransport::read_frame(int fd) {
  const auto recv_all = [&](std::uint8_t* out, std::size_t want) -> bool {
    std::size_t off = 0;
    while (off < want) {
      pollfd pfd{fd, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, 200);
      if (!running_.load()) return false;
      if (pr < 0 && errno != EINTR) return false;
      if (pr <= 0) continue;
      const ssize_t n = ::recv(fd, out + off, want - off, 0);
      if (n == 0) return false;  // peer closed
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  };

  std::uint8_t hdr[4];
  if (!recv_all(hdr, 4)) return std::nullopt;
  const std::uint32_t len = (static_cast<std::uint32_t>(hdr[0]) << 24) |
                            (static_cast<std::uint32_t>(hdr[1]) << 16) |
                            (static_cast<std::uint32_t>(hdr[2]) << 8) |
                            static_cast<std::uint32_t>(hdr[3]);
  if (len == 0 || len > kMaxFrame) return std::nullopt;
  Bytes body(len);
  if (!recv_all(body.data(), len)) return std::nullopt;
  return body;
}

// Parses and authenticates a frame body; nullopt = drop it.
static std::optional<ParsedFrame> parse_frame_body(
    const Bytes& body, const crypto::SignatureAuthority& auth,
    std::mutex& crypto_mu, ProcessId self) {
  try {
    Decoder dec{BytesView(body)};
    const Bytes core = dec.get_bytes();
    crypto::Signature sig;
    sig.signer = dec.get_u32();
    const Bytes mac = dec.get_bytes();
    if (mac.size() != sig.mac.size() || !dec.done()) return std::nullopt;
    std::copy(mac.begin(), mac.end(), sig.mac.begin());

    ParsedFrame f;
    Decoder c{BytesView(core)};
    f.kind = c.get_u8();
    f.from = c.get_u32();
    f.to = c.get_u32();
    f.seq = c.get_u64();
    f.payload = c.get_bytes();
    if (!c.done()) return std::nullopt;
    if (f.kind > kAck) return std::nullopt;
    if (f.to != self || f.from == self) return std::nullopt;
    if (sig.signer != f.from) return std::nullopt;
    {
      std::lock_guard<std::mutex> lk(crypto_mu);
      if (!auth.verify(sig, BytesView(core))) return std::nullopt;
    }
    return f;
  } catch (const CheckError&) {
    return std::nullopt;
  }
}

// --------------------------------------------------------------- loops --

void SocketTransport::accept_loop() {
  while (running_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 200);
    if (pr <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lk(inbound_mu_);
      inbound_fds_.push_back(fd);
    }
    pool_->submit([this, fd] {
      try {
        inbound_loop(fd);
      } catch (...) {
      }
    });
  }
}

void SocketTransport::inbound_loop(int fd) {
  ProcessId from = kNoProcess;

  while (running_.load()) {
    std::optional<Bytes> body = read_frame(fd);
    if (!body) break;
    std::optional<ParsedFrame> f =
        parse_frame_body(*body, authority_, crypto_mu_, cfg_.self);
    if (!f) continue;  // unauthenticated / malformed: drop
    if (from == kNoProcess) {
      // Connection preamble: the dialer identifies itself with a signed
      // HELLO; everything before that is ignored. The HELLO's seq field
      // carries the dialer's incarnation: a higher value means the peer
      // restarted and its sequence numbers begin again at 0, so the old
      // dedup watermark would silently swallow every new frame.
      if (f->kind == kHello) {
        from = f->from;
        bool restarted = false;
        {
          std::lock_guard<std::mutex> lk(inbound_mu_);
          DedupState& d = dedup_[from];
          if (f->seq > d.incarnation) {
            const bool first_contact = d.incarnation == 0;
            d.incarnation = f->seq;
            d.contiguous = 0;
            d.seen.clear();
            restarted = !first_contact;
          }
        }
        if (restarted && peer_reset_hook_) peer_reset_hook_(from);
      }
      continue;
    }
    if (f->from != from || f->kind != kData) continue;
    if (((block_in_mask_.load(std::memory_order_relaxed) >> from) & 1) != 0) {
      continue;  // chaos: inbound direction blocked — no delivery, no ack
    }

    bool fresh = false;
    {
      std::lock_guard<std::mutex> lk(inbound_mu_);
      DedupState& d = dedup_[from];
      if (f->seq >= d.contiguous && d.seen.count(f->seq) == 0) {
        fresh = true;
        d.seen.insert(f->seq);
        while (d.seen.count(d.contiguous) > 0) {
          d.seen.erase(d.contiguous);
          ++d.contiguous;
        }
      }
    }
    if (fresh) {
      auto po = peer_obs_.find(from);
      if (po != peer_obs_.end()) po->second.frames_recv->inc();
      sim::MessagePtr msg = decode_message(BytesView(f->payload));
      if (msg != nullptr) enqueue_delivery(from, std::move(msg));
      // Undecodable payload from an authenticated peer: Byzantine or
      // corrupt — dropped, but still acked so it is not retransmitted.
    } else {
      dups_suppressed_.fetch_add(1);
      auto po = peer_obs_.find(from);
      if (po != peer_obs_.end()) po->second.dups->inc();
    }
    if (((block_out_mask_.load(std::memory_order_relaxed) >> from) & 1) !=
        0) {
      continue;  // chaos: outbound direction blocked — swallow the ack too
    }
    // The ACK travels the self -> from link, so it shares that link's
    // shaper (loss, latency, bandwidth) with our DATA stream to the same
    // peer; a shaped-away ACK is recovered by the peer's retransmit.
    const Bytes ack = build_frame(kAck, from, f->seq, {});
    if (write_frame(fd, ack, from, /*reorderable=*/false) ==
        WriteStatus::kError) {
      break;
    }
  }

  {
    std::lock_guard<std::mutex> lk(inbound_mu_);
    inbound_fds_.erase(
        std::remove(inbound_fds_.begin(), inbound_fds_.end(), fd),
        inbound_fds_.end());
  }
  ::close(fd);
}

void SocketTransport::sender_loop(ProcessId to) {
  Outbox& ob = *outboxes_.at(to);
  const PeerAddr addr = peer(to);
  const auto po_it = peer_obs_.find(to);
  PeerObs* po = po_it == peer_obs_.end() ? nullptr : &po_it->second;
  int fd = -1;
  bool connected_before = false;
  Backoff backoff(Backoff::Params{
      .initial_ms = cfg_.connect_retry_ms,
      .max_ms = cfg_.connect_retry_max_ms,
      .factor = cfg_.connect_retry_factor,
      .jitter = cfg_.connect_retry_jitter,
      .seed = cfg_.loss_seed ^ (0xbf58476d1ce4e5b9ull * (to + 1)) ^
              (0x94d049bb133111ebull * (cfg_.self + 1)),
  });

  const auto drop_connection = [&] {
    {
      std::lock_guard<std::mutex> lk(ob.mu);
      ob.fd = -1;
    }
    // Held frames are still in unacked; they go out on reconnect.
    ob.holdback.drain();
    ::close(fd);
    fd = -1;
  };

  while (running_.load()) {
    if (fd < 0) {
      // A blocked direction also blocks dialing: otherwise a partition
      // injected while the connection happened to be down would be healed
      // by the reconnect race (the old global-knob bug).
      if (blocked_out(to)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      fd = dial(addr, backoff, po == nullptr ? nullptr : po->backoff_attempts);
      if (fd < 0) break;  // stopping
      if (connected_before && obs_reconnects_ != nullptr) {
        obs_reconnects_->inc();
      }
      connected_before = true;
      // The HELLO's seq field carries our incarnation (see SocketConfig).
      // It is shaped like every other frame on the link: a lossy link can
      // eat it, and then THIS side tears the connection down and redials —
      // a reconnect never slips frames past the link policy.
      const WriteStatus hs = write_frame(
          fd, build_frame(kHello, to, cfg_.incarnation, {}), to,
          /*reorderable=*/false);
      if (hs != WriteStatus::kOk) {
        ::close(fd);
        fd = -1;
        if (hs == WriteStatus::kShapedDrop) {
          shaped_sleep(std::uint64_t{cfg_.retransmit_every_ms} * 1000);
        }
        continue;
      }
      // Fresh connection: everything unacknowledged goes out again
      // (unless the chaos driver has this direction blocked — then the
      // frames stay queued and a later retransmit tick sends them).
      // Bodies are copied out so shaped writes (which may sleep for the
      // link latency) never happen under the outbox lock.
      std::vector<Bytes> resend;
      std::uint64_t resent = 0;
      {
        std::lock_guard<std::mutex> lk(ob.mu);
        ob.fd = fd;
        if (!blocked_out(to)) {
          for (const auto& [seq, frame] : ob.unacked) {
            resend.push_back(frame.body);
            if (seq < ob.next_unsent) ++resent;
          }
        }
        ob.next_unsent = ob.next_seq;
      }
      bool ok = true;
      bool wrote = false;
      for (const Bytes& body : resend) {
        if (!send_shaped_data(fd, ob, to, body, &wrote)) {
          ok = false;
          break;
        }
      }
      if (ok && wrote) ok = flush_holdback(fd, ob, to);
      if (!ok) {
        drop_connection();
        continue;
      }
      if (po != nullptr && resent > 0) po->retransmits->inc(resent);
    }

    pollfd fds[2] = {{fd, POLLIN, 0}, {ob.wake_pipe[0], POLLIN, 0}};
    const int pr =
        ::poll(fds, 2, static_cast<int>(cfg_.retransmit_every_ms));
    if (!running_.load()) break;
    if (pr < 0 && errno != EINTR) break;

    bool dead = false;
    if (pr > 0 && (fds[1].revents & POLLIN) != 0) {
      std::uint8_t buf[256];
      while (::read(ob.wake_pipe[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (pr > 0 && (fds[0].revents & POLLIN) != 0) {
      std::optional<Bytes> body = read_frame(fd);
      if (!body) {
        dead = true;
      } else {
        std::optional<ParsedFrame> f =
            parse_frame_body(*body, authority_, crypto_mu_, cfg_.self);
        if (f && f->kind == kAck && f->from == to) {
          std::lock_guard<std::mutex> lk(ob.mu);
          const auto acked = ob.unacked.find(f->seq);
          if (acked != ob.unacked.end()) {
            if (po != nullptr) {
              po->rtt_us->observe(now() - acked->second.enqueued_us);
            }
            ob.unacked.erase(acked);
          }
        }
      }
    } else if (pr > 0 && (fds[0].revents & (POLLHUP | POLLERR)) != 0) {
      dead = true;
    }

    if (!dead && !blocked_out(to)) {
      std::uint64_t resent = 0;
      std::vector<Bytes> to_write;
      {
        std::lock_guard<std::mutex> lk(ob.mu);
        // Timeout tick: retransmit everything unacknowledged. Wake: flush
        // only frames that never hit the wire. Bodies are copied out so
        // shaped writes never sleep under the outbox lock (send() callers
        // would stall for the link latency otherwise).
        auto it = (pr == 0) ? ob.unacked.begin()
                            : ob.unacked.lower_bound(ob.next_unsent);
        for (; it != ob.unacked.end(); ++it) {
          to_write.push_back(it->second.body);
          if (it->first < ob.next_unsent) ++resent;
        }
        ob.next_unsent = ob.next_seq;
      }
      bool wrote = false;
      for (const Bytes& body : to_write) {
        if (!send_shaped_data(fd, ob, to, body, &wrote)) {
          dead = true;
          break;
        }
      }
      // The holdback drains once a later frame hit the wire (that IS the
      // reordering) and on every retransmit tick, so no frame starves.
      if (!dead && (wrote || pr == 0) && !flush_holdback(fd, ob, to)) {
        dead = true;
      }
      if (resent > 0) {
        if (po != nullptr) po->retransmits->inc(resent);
        if (trace_ != nullptr) {
          obs::TraceEvent ev;
          ev.kind = obs::EventKind::kRetransmit;
          ev.node = cfg_.self;
          trace_->record(std::move(
              ev.with("peer", to).with("frames", resent)));
        }
        if (instr_ != nullptr && instr_->spans_enabled()) {
          const obs::TraceContext t = instr_->new_trace();
          instr_->on_span(cfg_.self, "retransmit", t.trace_id, t.span_id,
                          /*parent=*/0, /*dur_us=*/0, "peer", to);
        }
      }
    }
    if (dead) drop_connection();
  }

  if (fd >= 0) drop_connection();
}

void SocketTransport::dispatch_loop() {
  {
    std::lock_guard<std::mutex> lk(dispatch_mu_);
    if (endpoint_ != nullptr) endpoint_->on_start();
  }
  while (running_.load()) {
    Delivery d;
    {
      std::unique_lock<std::mutex> lk(inbox_mu_);
      inbox_cv_.wait_for(lk, std::chrono::milliseconds(100),
                         [&] { return !inbox_.empty() || !running_.load(); });
      if (inbox_.empty()) continue;
      d = std::move(inbox_.front());
      inbox_.pop_front();
    }
    std::lock_guard<std::mutex> lk(dispatch_mu_);
    if (endpoint_ == nullptr) continue;
    try {
      endpoint_->on_message(d.from, d.msg);
    } catch (const CheckError&) {
      // A handler invariant tripped by hostile input must not take the
      // whole node down; the offending delivery is dropped.
    }
  }
}

// ------------------------------------------------------------ lifecycle --

void SocketTransport::start() {
  BGLA_CHECK_MSG(!started_, "start() called twice");
  BGLA_CHECK_MSG(listen_fd_ >= 0, "start() before bind_and_listen()");
  BGLA_CHECK_MSG(endpoint_ != nullptr, "start() with no endpoint attached");
  started_ = true;
  running_.store(true);

  for (auto& [id, ob] : outboxes_) {
    BGLA_CHECK(::pipe(ob->wake_pipe) == 0);
    ::fcntl(ob->wake_pipe[0], F_SETFL, O_NONBLOCK);
    ::fcntl(ob->wake_pipe[1], F_SETFL, O_NONBLOCK);
  }

  // One worker per long-lived loop: acceptor + dispatcher + a sender per
  // peer + a reader per inbound connection (bounded by the peer count;
  // slack covers reconnect overlap, where a dying reader's worker is
  // briefly still draining).
  const std::size_t peers = cfg_.peers.size() - 1;
  pool_ = std::make_unique<util::ThreadPool>(2 + 2 * peers + 4);
  pool_->submit([this] {
    try {
      accept_loop();
    } catch (...) {
    }
  });
  pool_->submit([this] {
    try {
      dispatch_loop();
    } catch (...) {
    }
  });
  for (auto& [id, ob] : outboxes_) {
    const ProcessId to = id;
    pool_->submit([this, to] {
      try {
        sender_loop(to);
      } catch (...) {
      }
    });
  }
}

void SocketTransport::stop() {
  if (stopped_ || !started_) {
    // Never started: nothing to join; just release the listen socket.
    if (!stopped_ && listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    stopped_ = true;
    return;
  }
  stopped_ = true;
  running_.store(false);
  inbox_cv_.notify_all();
  for (auto& [id, ob] : outboxes_) {
    const char b = 1;
    [[maybe_unused]] ssize_t r = ::write(ob->wake_pipe[1], &b, 1);
    std::lock_guard<std::mutex> lk(ob->mu);
    if (ob->fd >= 0) ::shutdown(ob->fd, SHUT_RDWR);
  }
  {
    std::lock_guard<std::mutex> lk(inbound_mu_);
    for (int fd : inbound_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  pool_->wait_idle();
  pool_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& [id, ob] : outboxes_) {
    for (int& p : ob->wake_pipe) {
      if (p >= 0) ::close(p);
      p = -1;
    }
  }
}

}  // namespace bgla::net
