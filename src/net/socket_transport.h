// Real-socket implementation of net::Transport: the paper's §3 reliable
// authenticated point-to-point links between OS processes (or between
// threads of one process in the loopback tests), over TCP.
//
// Wire format, per frame:
//   4-byte big-endian length || body
//   body  = put_bytes(core) || u32 signer || put_bytes(hmac)
//   core  = u8 kind (HELLO=0 | DATA=1 | ACK=2) || u32 from || u32 to
//           || u64 seq || put_bytes(payload)
// The HMAC (crypto::SignatureAuthority key material, shared via the
// deployment seed) covers `core`, so every frame is sender-authenticated:
// a peer that cannot sign as process p cannot make us deliver a message
// "from p". DATA payloads are Message::encoded() bytes, reconstructed by
// net::decode_message; undecodable payloads are dropped, never fatal.
//
// Perfect-link layer: TCP already gives in-order lossless bytes per
// connection, but connections themselves die (peer crash, injected loss).
// So DATA frames carry app-level sequence numbers per (sender, receiver)
// pair: the sender retransmits every unacknowledged frame until the
// receiver's ACK arrives, and the receiver deduplicates by sequence number
// (contiguous watermark + sparse seen-set) before dispatching. Message
// loss and duplication are therefore tolerated; delivery order is NOT
// guaranteed — exactly the asynchronous reliable-link model the protocols
// assume.
//
// Link shaping: every outgoing directed link (self -> peer) carries a
// LinkPolicy (latency, jitter, loss, bandwidth cap, reorder window; see
// net/link_policy.h) with deterministic seeded decision streams. The base
// matrix comes from SocketConfig::link_matrix (a WAN emulation loaded from
// a link-matrix file); the chaos driver mutates the CURRENT policy per
// link at runtime and heal_links() restores the base matrix. Shaping
// covers EVERY write on the link — DATA, ACK and the HELLO/reconnect
// preamble — so an injected partition or loss burst cannot be pierced by
// a lucky reconnect race (a shaped-away HELLO closes the socket and
// redials under backoff).
//
// Topology: every ordered pair (a, b) uses one TCP connection, dialed by
// a. The dialer sends a signed HELLO, then its DATA frames; the acceptor
// answers ACKs on the same connection. Binding port 0 picks an ephemeral
// port (read it back with port(), publish it with set_peer_port) so
// parallel test runs never collide.
//
// Threading (all long-lived loops run on a util::ThreadPool sized for
// them): one acceptor, one sender per outgoing connection (multiplexing
// new sends, the retransmit timer and ACK reads via poll on a wake pipe),
// one reader per inbound connection, and ONE dispatch thread that
// serializes every Endpoint::on_message call. Handler code is thus
// single-threaded, same as in-sim; external threads (tests, drivers) must
// hold dispatch_lock() while reading endpoint state.
//
// Determinism boundary: now() is wall-clock microseconds and
// current_depth() is always 0 — causal-depth accounting is a simulator
// concept. Spec checkers that need depth run in-sim; over sockets the
// same checkers validate decision values only.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "crypto/signature.h"
#include "net/link_policy.h"
#include "net/transport.h"
#include "sim/message.h"
#include "util/bytes.h"
#include "util/ids.h"
#include "util/thread_pool.h"

namespace bgla::net {

struct PeerAddr {
  ProcessId id = kNoProcess;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral (fill in via set_peer_port)
};

struct SocketConfig {
  ProcessId self = kNoProcess;
  std::vector<PeerAddr> peers;  // every endpoint in the system, incl. self
  // Frame-authentication key material: every node of one deployment uses
  // the same (num_processes, auth_seed), which deterministically derives
  // identical per-process HMAC keys across OS processes. The transport
  // owns its authority instance (internally locked — SignatureAuthority
  // itself is single-threaded by contract); protocol-level authorities
  // are separate instances from the same seed.
  std::uint32_t num_processes = 0;
  std::uint64_t auth_seed = 42;
  std::uint32_t retransmit_every_ms = 50;  // unacked-frame resend period
  // (Re)dial schedule: capped exponential backoff with jitter, starting
  // at connect_retry_ms and growing by connect_retry_factor up to
  // connect_retry_max_ms; deterministic given loss_seed (see Backoff).
  std::uint32_t connect_retry_ms = 50;
  std::uint32_t connect_retry_max_ms = 2000;
  double connect_retry_factor = 2.0;
  double connect_retry_jitter = 0.2;
  // Uniform loss shorthand: folded into every outgoing link's base policy
  // (max with any matrix-specified loss). Prefer link_matrix for new code.
  double loss_rate = 0.0;
  std::uint64_t loss_seed = 1;  // deterministic loss + jitter streams
  // Per-link base policies (self -> peer); the WAN emulation. Links not
  // matched by any rule stay neutral. heal_links() restores this matrix.
  LinkMatrix link_matrix;
  // Monotone per-node restart counter, carried in the HELLO frame. A
  // receiver seeing a higher incarnation from a peer resets that peer's
  // dedup state: the restarted sender's sequence numbers begin again at
  // 0, and stale watermarks would silently suppress every new frame.
  std::uint64_t incarnation = 0;
};

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(SocketConfig cfg);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // -- Transport interface (send is thread-safe; callable from handlers
  //    and from external driver threads alike).
  ProcessId attach(Endpoint& e) override;
  void detach(ProcessId id) override;
  void send(ProcessId from, ProcessId to, sim::MessagePtr msg) override;
  Time now() const override;
  std::uint64_t current_depth() const override { return 0; }
  void request_stop() override;

  // -- Lifecycle. bind_and_listen() → [set_peer_port()…] → start() → stop().
  /// Binds the listening socket for this node (its configured port; 0
  /// picks an ephemeral one). port() is valid afterwards.
  void bind_and_listen();
  std::uint16_t port() const { return listen_port_; }

  /// Updates a peer's dial port — for clusters that bind ephemeral ports
  /// first and exchange them before start().
  void set_peer_port(ProcessId id, std::uint16_t port);

  /// Spawns the network threads, dials every peer and runs the attached
  /// endpoint's on_start() on the dispatch thread.
  void start();

  /// Shuts down sockets and joins all threads. Idempotent. After stop()
  /// endpoint state can be read without dispatch_lock().
  void stop();

  bool stop_requested() const { return stop_flag_.load(); }

  /// Serializes against the dispatch thread: hold this while reading
  /// endpoint state from outside message handlers.
  std::unique_lock<std::mutex> dispatch_lock() {
    return std::unique_lock<std::mutex>(dispatch_mu_);
  }

  /// Frames dropped by link shaping (loss policies; testing aid).
  std::uint64_t frames_dropped() const { return frames_dropped_.load(); }
  /// Duplicate DATA frames suppressed by receive-side dedup.
  std::uint64_t dups_suppressed() const { return dups_suppressed_.load(); }

  /// Attaches the observability sinks (both optional; call before start()).
  /// With a registry the transport records per-peer send/recv/retransmit/
  /// dedup counters, frame-RTT histograms and reconnect-backoff attempt
  /// gauges; with a trace writer each retransmit tick emits one event.
  void set_observability(obs::Registry* registry, obs::TraceWriter* trace);

  /// Attaches a span instrument (optional; call before start()). When span
  /// tracing is enabled on it, each retransmit tick additionally emits a
  /// "retransmit" span on a fresh trace (retransmits have no causal parent
  /// on the command path — they are transport-level repair work).
  void set_instrument(obs::Instrument* instrument);

  // -- Peer-restart notification. Invoked from a connection reader thread
  //    whenever a peer's HELLO carries a higher incarnation than any seen
  //    before — the peer restarted and lost its in-memory wire state, so
  //    the old dedup watermark was just reset. Layered stateful codecs
  //    (net::DeltaTransport) hook this to re-baseline that peer. Set
  //    before start(); called without transport locks held.
  void set_peer_reset_hook(std::function<void(ProcessId)> hook) {
    peer_reset_hook_ = std::move(hook);
  }

  // -- Runtime chaos knobs (thread-safe; used by the nemesis driver).
  //    Blocking a peer silences every frame in that direction — including
  //    HELLO, so a blocked link cannot be pierced by a reconnect race —
  //    while the perfect-link retransmission machinery heals once
  //    unblocked: these model asymmetric partitions, not crashes.
  void set_block_outgoing(ProcessId to, bool blocked);
  void set_block_incoming(ProcessId from, bool blocked);

  // -- Per-link shaping (thread-safe). set_link_policy mutates the CURRENT
  //    policy of one outgoing link; set_all_links every link; heal_links
  //    restores the configured base matrix (not neutral). Legacy wrappers
  //    set_loss_rate / set_send_delay_ms rewrite that one field across all
  //    links' current policies, preserving the old global-knob semantics.
  void set_link_policy(ProcessId to, const LinkPolicy& p);
  void set_all_links(const LinkPolicy& p);
  void heal_links();
  LinkPolicy link_policy(ProcessId to) const;
  void set_loss_rate(double rate);
  void set_send_delay_ms(std::uint32_t ms);

 private:
  struct UnackedFrame {
    Bytes body;
    std::uint64_t enqueued_us = 0;  // now() at send(); RTT is measured
                                    // enqueue -> ACK, spanning retransmits
  };
  struct Outbox {  // per destination peer (one dialed connection)
    std::mutex mu;
    std::map<std::uint64_t, UnackedFrame> unacked;  // seq -> DATA frame
    std::uint64_t next_seq = 0;
    std::uint64_t next_unsent = 0;  // frames >= this never hit the wire yet
    int fd = -1;           // current outgoing socket (sender thread's own)
    int wake_pipe[2] = {-1, -1};  // send()/stop() poke the sender thread
    // Shaping state for this directed link. The shaper is internally
    // locked (consulted by the sender thread for DATA/HELLO and by
    // inbound threads for ACKs); the holdback buffer is the sender
    // thread's alone.
    std::unique_ptr<LinkShaper> shaper;
    ReorderBuffer holdback{0};
  };
  struct DedupState {  // per sender
    std::uint64_t contiguous = 0;  // every seq < contiguous was delivered
    std::set<std::uint64_t> seen;  // delivered seqs >= contiguous
    std::uint64_t incarnation = 0;  // highest HELLO incarnation seen
  };
  struct Delivery {
    ProcessId from = kNoProcess;
    sim::MessagePtr msg;
  };
  struct PeerObs {  // cached registry handles, resolved once per peer
    obs::Counter* frames_sent = nullptr;
    obs::Counter* frames_recv = nullptr;
    obs::Counter* retransmits = nullptr;
    obs::Counter* dups = nullptr;
    obs::Histogram* rtt_us = nullptr;
    obs::Gauge* backoff_attempts = nullptr;
    obs::Counter* shaped_drops = nullptr;
    obs::Counter* shaped_delay_us = nullptr;
    obs::Counter* reorder_held = nullptr;
  };

  enum class WriteStatus {
    kOk,          // frame hit the wire
    kShapedDrop,  // link shaping ate it (connection stays healthy)
    kHeld,        // reorder window absorbed it (caller owns the holdback)
    kError,       // socket write failed — connection is dead
  };

  const PeerAddr& peer(ProcessId id) const;
  Bytes build_frame(std::uint8_t kind, ProcessId to, std::uint64_t seq,
                    BytesView payload) const;
  /// Shapes (per the self->to link policy) and writes one frame. Every
  /// write on a link goes through here — HELLO and ACK included — with
  /// `reorderable` true only for DATA frames from the sender thread.
  WriteStatus write_frame(int fd, const Bytes& body, ProcessId to,
                          bool reorderable);
  bool write_raw(int fd, const Bytes& body);
  /// True while the given delay elapses; false if stopped meanwhile.
  bool shaped_sleep(std::uint64_t delay_us);
  /// Writes every frame currently in the holdback buffer (sender thread
  /// only). Returns false when the connection died mid-drain.
  bool flush_holdback(int fd, Outbox& ob, ProcessId to);
  /// DATA write with reorder-holdback handling (sender thread only).
  /// Returns false only on a dead connection; *wrote reports whether a
  /// frame actually hit the wire (drain trigger for the holdback).
  bool send_shaped_data(int fd, Outbox& ob, ProcessId to, const Bytes& body,
                        bool* wrote);
  bool blocked_out(ProcessId to) const;
  std::optional<Bytes> read_frame(int fd);
  int dial(const PeerAddr& addr, class Backoff& backoff,
           obs::Gauge* attempts_gauge);

  void enqueue_delivery(ProcessId from, sim::MessagePtr msg);
  void accept_loop();
  void inbound_loop(int fd);
  void sender_loop(ProcessId to);
  void dispatch_loop();

  SocketConfig cfg_;
  crypto::SignatureAuthority authority_;  // frame HMACs only
  crypto::Signer signer_;
  mutable std::mutex crypto_mu_;  // authority_ is single-threaded by contract
  std::chrono::steady_clock::time_point epoch_;

  Endpoint* endpoint_ = nullptr;

  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;

  std::map<ProcessId, std::unique_ptr<Outbox>> outboxes_;

  std::mutex inbound_mu_;
  std::vector<int> inbound_fds_;
  std::map<ProcessId, DedupState> dedup_;  // guarded by inbound_mu_

  std::mutex inbox_mu_;
  std::condition_variable inbox_cv_;
  std::deque<Delivery> inbox_;

  std::mutex dispatch_mu_;  // serializes on_message vs. external readers

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_flag_{false};
  std::atomic<std::uint64_t> frames_dropped_{0};
  std::atomic<std::uint64_t> dups_suppressed_{0};

  // Observability (optional; peer_obs_ is immutable after
  // set_observability, its handles are internally atomic).
  obs::TraceWriter* trace_ = nullptr;
  obs::Instrument* instr_ = nullptr;
  std::map<ProcessId, PeerObs> peer_obs_;
  obs::Counter* obs_frames_dropped_ = nullptr;
  obs::Counter* obs_reconnects_ = nullptr;
  std::function<void(ProcessId)> peer_reset_hook_;  // set before start()

  // Chaos knobs (peer-id bitmasks; ids are bounded by the 64-process
  // deployments the tools drive — enforced in the setters). Loss and
  // delay live in the per-link shapers inside each Outbox.
  std::atomic<std::uint64_t> block_out_mask_{0};
  std::atomic<std::uint64_t> block_in_mask_{0};

  std::unique_ptr<util::ThreadPool> pool_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace bgla::net
