// Transport abstraction: the paper's §3 "asynchronous authenticated
// reliable point-to-point links", decoupled from how they are realised.
//
// Two implementations exist:
//   - sim::Network        — the deterministic discrete-event simulator
//                           (the correctness oracle; all spec tests run
//                           here first).
//   - net::SocketTransport — real sockets between OS processes (or between
//                           threads of one process in the loopback tests),
//                           with perfect-link retransmission/dedup and
//                           HMAC sender authentication layered on top.
//
// Every protocol endpoint (WTS/GWTS, SbS/GSbS, Faleiro LA, RSM replicas
// and clients) is written against this interface, so the same protocol
// object runs unchanged in-sim or as a standalone networked process.
//
// Semantics both implementations provide:
//   - send(from, to, msg) never loses the message between correct
//     endpoints (reliability), and the `from` stamped on delivery is the
//     true sender (authenticated channels — a Byzantine process cannot
//     impersonate another).
//   - Delivery may be arbitrarily delayed and reordered (asynchrony).
//   - A self-send is a local step: delivered without a network hop.
//   - on_message handlers of one endpoint never run concurrently.
//
// now() is simulation time in-sim and wall-clock microseconds on a real
// transport; current_depth() is the causal message-delay depth in-sim and
// always 0 on a real transport (depth accounting is a simulator concept —
// this is the determinism boundary documented in docs/ARCHITECTURE.md).
#pragma once

#include <chrono>

#include "obs/instrument.h"
#include "sim/message.h"
#include "util/check.h"
#include "util/ids.h"

namespace bgla::net {

/// Time in transport units (ticks in-sim, microseconds on sockets).
using Time = std::uint64_t;

class Endpoint;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers an endpoint and returns the id it is reachable under.
  /// Implementations check the id against their own notion of identity
  /// (attachment order in-sim, the configured self id on sockets).
  virtual ProcessId attach(Endpoint& e) = 0;
  virtual void detach(ProcessId id) = 0;

  /// Sends msg from -> to under the sender's authenticated identity.
  virtual void send(ProcessId from, ProcessId to, sim::MessagePtr msg) = 0;

  virtual Time now() const = 0;

  /// Causal message-delay depth of the delivery being handled (always 0
  /// outside handlers and on real transports).
  virtual std::uint64_t current_depth() const = 0;

  /// Requests the event loop (sim) / dispatch loop (sockets) to stop.
  virtual void request_stop() = 0;
};

/// Base class for every protocol participant: protocol processes,
/// Byzantine strategies, RSM clients. Transport-agnostic — the same
/// endpoint runs under sim::Network or net::SocketTransport.
class Endpoint {
 public:
  Endpoint(Transport& transport, ProcessId id)
      : transport_(&transport), id_(id) {
    const ProcessId assigned = transport_->attach(*this);
    BGLA_CHECK_MSG(assigned == id,
                   "endpoint id mismatch: transport assigned "
                       << assigned << ", got " << id);
  }
  virtual ~Endpoint() { transport_->detach(id_); }

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  ProcessId id() const { return id_; }

  /// Attaches the shared observability hook (metrics registry + optional
  /// trace writer). May be null (the default): every obs_* helper below
  /// is then a single-branch no-op, which is what keeps tracing-off
  /// overhead near zero. One Instrument can serve many endpoints — the
  /// node id travels with each call.
  void set_instrument(obs::Instrument* instrument) { obs_ = instrument; }

  /// Called once when the run starts (time 0, depth 0).
  virtual void on_start() {}

  /// Called for every delivered message; `from` is the authenticated
  /// sender identity stamped by the transport.
  virtual void on_message(ProcessId from, const sim::MessagePtr& msg) = 0;

 protected:
  /// The transport this endpoint is attached to (historically named net()
  /// when endpoints were bound to the simulator directly).
  Transport& net() { return *transport_; }
  const Transport& net() const { return *transport_; }

  /// Point-to-point send under this endpoint's own identity.
  void send(ProcessId to, sim::MessagePtr msg) {
    if (obs_ != nullptr && to != id_) obs_->on_send(id_);
    transport_->send(id_, to, std::move(msg));
  }

  /// Best-effort broadcast: point-to-point send to every process in
  /// [0, count); includes self (depth-neutral, not metered).
  void send_to_group(std::uint32_t count, const sim::MessagePtr& msg) {
    if (obs_ != nullptr && count > 0) {
      obs_->on_send(id_, id_ < count ? count - 1 : count);
    }
    for (ProcessId to = 0; to < count; ++to) transport_->send(id_, to, msg);
  }

  // ---- observability helpers (no-ops without an attached Instrument;
  // protocols call these at their transition points) ----

  obs::Instrument* obs() { return obs_; }

  void obs_propose(std::uint64_t proposal, std::uint64_t round) {
    if (obs_ != nullptr) {
      if (obs_active_since_us_ == 0) obs_active_since_us_ = obs_steady_us();
      obs_->on_propose(id_, proposal, round);
    }
  }
  void obs_submit(std::uint64_t count) {
    if (obs_ != nullptr) obs_->on_submit(id_, count);
  }
  void obs_ack(ProcessId from) {
    if (obs_ != nullptr) obs_->on_ack(id_, from);
  }
  void obs_nack(ProcessId from) {
    if (obs_ != nullptr) obs_->on_nack(id_, from);
  }
  void obs_refine(std::uint64_t proposal, std::uint64_t refinements) {
    if (obs_ != nullptr) obs_->on_refine(id_, proposal, refinements);
  }
  void obs_round_advance(std::uint64_t round) {
    if (obs_ != nullptr) obs_->on_round_advance(id_, round);
  }
  /// Decide latency is measured from the first obs_propose of the current
  /// proposal (the stamp resets here, so round-based protocols measure
  /// per-decision, not since process start).
  void obs_decide(std::uint64_t proposal, std::uint64_t round,
                  std::uint64_t refinements) {
    if (obs_ != nullptr) {
      const std::uint64_t now = obs_steady_us();
      const std::uint64_t latency =
          obs_active_since_us_ == 0 ? 0 : now - obs_active_since_us_;
      obs_active_since_us_ = 0;
      obs_->on_decide(id_, proposal, round, refinements, latency);
    }
  }
  /// One ingress batch released into a round: its value count and the
  /// queue depth left behind.
  void obs_batch_flush(std::uint64_t batch_size, std::uint64_t queue_depth) {
    if (obs_ != nullptr) obs_->on_batch_flush(id_, batch_size, queue_depth);
  }
  /// A submit was refused because the ingress queue is full.
  void obs_backpressure() {
    if (obs_ != nullptr) obs_->on_backpressure(id_);
  }
  void obs_rejoin_start() {
    if (obs_ != nullptr) {
      obs_rejoin_since_us_ = obs_steady_us();
      obs_->on_rejoin_start(id_);
    }
  }
  void obs_rejoin_done() {
    if (obs_ != nullptr) {
      const std::uint64_t now = obs_steady_us();
      const std::uint64_t latency =
          obs_rejoin_since_us_ == 0 ? 0 : now - obs_rejoin_since_us_;
      obs_rejoin_since_us_ = 0;
      obs_->on_rejoin_done(id_, latency);
    }
  }

  // ---- causal span helpers (schema v2; no-ops unless the attached
  // Instrument ran enable_spans — the sim/golden paths never do, so
  // messages there are never stamped and transcripts stay byte-identical).

  /// True iff span emission is live on this endpoint.
  bool obs_spans() const {
    return obs_ != nullptr && obs_->spans_enabled();
  }
  /// Fresh root trace context (zero context when spans are off).
  obs::TraceContext obs_new_trace() {
    return obs_spans() ? obs_->new_trace() : obs::TraceContext{};
  }
  std::uint64_t obs_new_span_id() {
    return obs_spans() ? obs_->new_span_id() : 0;
  }
  /// Emits the span identified by `ctx` itself (span id = ctx.span_id).
  void obs_span(const char* phase, const obs::TraceContext& ctx,
                std::uint64_t parent, std::uint64_t dur_us,
                const char* extra_key = nullptr,
                std::uint64_t extra_val = 0) {
    if (obs_spans() && ctx.valid()) {
      obs_->on_span(id_, phase, ctx.trace_id, ctx.span_id, parent, dur_us,
                    extra_key, extra_val);
    }
  }
  /// Emits a fresh child span under `parent` (same trace, new span id).
  void obs_child_span(const char* phase, const obs::TraceContext& parent,
                      std::uint64_t dur_us,
                      const char* extra_key = nullptr,
                      std::uint64_t extra_val = 0) {
    if (obs_spans() && parent.valid()) {
      obs_->on_span(id_, phase, parent.trace_id, obs_->new_span_id(),
                    parent.span_id, dur_us, extra_key, extra_val);
    }
  }

  static std::uint64_t obs_steady_us() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  Transport* transport_;
  ProcessId id_;
  obs::Instrument* obs_ = nullptr;
  std::uint64_t obs_active_since_us_ = 0;
  std::uint64_t obs_rejoin_since_us_ = 0;
};

}  // namespace bgla::net
