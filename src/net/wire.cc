#include "net/wire.h"

#include <memory>
#include <utility>
#include <vector>

#include "bcast/bracha.h"
#include "bcast/cert_rb.h"
#include "la/gsbs_msgs.h"
#include "la/messages.h"
#include "la/sbs_msgs.h"
#include "la/signed_value.h"
#include "lattice/codec.h"
#include "rsm/msgs.h"
#include "util/check.h"
#include "util/codec.h"

namespace bgla::net {

namespace {

using la::ConflictPair;
using la::SafeBatch;
using la::SafeBatchSet;
using la::SafeValue;
using la::SafeValueSet;
using la::SignedBatch;
using la::SignedBatchSet;
using la::SignedValue;
using la::SignedValueSet;
using lattice::Elem;
using lattice::decode_elem;
using sim::MessagePtr;

// Nesting bound for messages that embed encoded messages (RB inner
// payloads, SafeValueSet proof acks, DECIDED certificates). Real traffic
// nests at most two levels (RB around a protocol message); garbage that
// nests deeper is rejected before it can exhaust the stack.
constexpr int kMaxDepth = 8;

MessagePtr decode_at(BytesView bytes, int depth);

crypto::Digest get_digest(Decoder& dec) {
  const Bytes b = dec.get_bytes();
  crypto::Digest d{};
  BGLA_CHECK_MSG(b.size() == d.size(), "bad digest length " << b.size());
  std::copy(b.begin(), b.end(), d.begin());
  return d;
}

crypto::Signature get_signature(Decoder& dec) {
  crypto::Signature sig;
  sig.signer = dec.get_u32();
  sig.mac = get_digest(dec);
  return sig;
}

void check_count(std::uint64_t count, const Decoder& dec) {
  BGLA_CHECK_MSG(count <= dec.remaining(),
                 "decoded count " << count << " exceeds remaining bytes");
}

/// Decodes a length-prefixed encoded message and downcasts it; throws on
/// parse failure or type mismatch.
template <typename T>
std::shared_ptr<const T> get_inner(Decoder& dec, int depth) {
  const Bytes raw = dec.get_bytes();
  MessagePtr msg = decode_at(raw, depth + 1);
  BGLA_CHECK_MSG(msg != nullptr, "undecodable inner message");
  auto typed = std::dynamic_pointer_cast<const T>(msg);
  BGLA_CHECK_MSG(typed != nullptr, "inner message of unexpected type "
                                       << msg->type_id());
  return typed;
}

SignedValue get_signed_value(Decoder& dec) {
  SignedValue sv;
  sv.value = decode_elem(dec);
  sv.sig = get_signature(dec);
  return sv;
}

SignedValueSet get_signed_value_set(Decoder& dec) {
  const std::uint64_t count = dec.get_varint();
  check_count(count, dec);
  SignedValueSet set;
  for (std::uint64_t i = 0; i < count; ++i) set.insert(get_signed_value(dec));
  return set;
}

SignedBatch get_signed_batch(Decoder& dec) {
  SignedBatch sb;
  sb.value = decode_elem(dec);
  sb.round = dec.get_u64();
  sb.sig = get_signature(dec);
  return sb;
}

SignedBatchSet get_signed_batch_set(Decoder& dec) {
  const std::uint64_t count = dec.get_varint();
  check_count(count, dec);
  SignedBatchSet set;
  for (std::uint64_t i = 0; i < count; ++i) set.insert(get_signed_batch(dec));
  return set;
}

// SafeValueSet / SafeBatchSet wire layout (see the encode side): a pool of
// distinct proof acks encoded once, then entries referencing acks by index.
SafeValueSet get_safe_value_set(Decoder& dec, int depth) {
  const std::uint64_t num_acks = dec.get_varint();
  check_count(num_acks, dec);
  std::vector<la::SafeAckPtr> acks;
  acks.reserve(num_acks);
  for (std::uint64_t i = 0; i < num_acks; ++i) {
    acks.push_back(get_inner<la::SSafeAckMsg>(dec, depth));
  }
  const std::uint64_t count = dec.get_varint();
  check_count(count, dec);
  SafeValueSet set;
  for (std::uint64_t i = 0; i < count; ++i) {
    SafeValue sv;
    sv.v = get_signed_value(dec);
    const std::uint64_t proof = dec.get_varint();
    check_count(proof, dec);
    for (std::uint64_t j = 0; j < proof; ++j) {
      const std::uint64_t idx = dec.get_varint();
      BGLA_CHECK_MSG(idx < acks.size(), "proof ack index out of range");
      sv.proof.push_back(acks[idx]);
    }
    set.insert(sv);
  }
  return set;
}

SafeBatchSet get_safe_batch_set(Decoder& dec, int depth) {
  const std::uint64_t num_acks = dec.get_varint();
  check_count(num_acks, dec);
  std::vector<la::GSafeAckPtr> acks;
  acks.reserve(num_acks);
  for (std::uint64_t i = 0; i < num_acks; ++i) {
    acks.push_back(get_inner<la::GSSafeAckMsg>(dec, depth));
  }
  const std::uint64_t count = dec.get_varint();
  check_count(count, dec);
  SafeBatchSet set;
  for (std::uint64_t i = 0; i < count; ++i) {
    SafeBatch sb;
    sb.b = get_signed_batch(dec);
    const std::uint64_t proof = dec.get_varint();
    check_count(proof, dec);
    for (std::uint64_t j = 0; j < proof; ++j) {
      const std::uint64_t idx = dec.get_varint();
      BGLA_CHECK_MSG(idx < acks.size(), "proof ack index out of range");
      sb.proof.push_back(acks[idx]);
    }
    set.insert(sb);
  }
  return set;
}

// SSafeAckMsg / GSAckMsg / GSSafeAckMsg carry their signed payload as a
// length-prefixed blob; the fields live inside it and must consume it
// exactly (trailing bytes would make re-encoding diverge from the wire).
MessagePtr decode_s_safe_ack(Decoder& dec) {
  const Bytes payload = dec.get_bytes();
  Decoder in{payload};
  SignedValueSet rcvd = get_signed_value_set(in);
  const std::uint64_t nconf = in.get_varint();
  check_count(nconf, in);
  std::vector<ConflictPair> conflicts;
  for (std::uint64_t i = 0; i < nconf; ++i) {
    SignedValue x = get_signed_value(in);
    SignedValue y = get_signed_value(in);
    conflicts.emplace_back(std::move(x), std::move(y));
  }
  const ProcessId acceptor = in.get_u32();
  BGLA_CHECK_MSG(in.done(), "trailing bytes in safe_ack payload");
  const crypto::Signature sig = get_signature(dec);
  return std::make_shared<la::SSafeAckMsg>(std::move(rcvd),
                                           std::move(conflicts), acceptor,
                                           sig);
}

MessagePtr decode_gs_safe_ack(Decoder& dec) {
  const Bytes payload = dec.get_bytes();
  Decoder in{payload};
  SignedBatchSet rcvd = get_signed_batch_set(in);
  const std::uint64_t nconf = in.get_varint();
  check_count(nconf, in);
  std::vector<std::pair<SignedBatch, SignedBatch>> conflicts;
  for (std::uint64_t i = 0; i < nconf; ++i) {
    SignedBatch x = get_signed_batch(in);
    SignedBatch y = get_signed_batch(in);
    conflicts.emplace_back(std::move(x), std::move(y));
  }
  const ProcessId acceptor = in.get_u32();
  const std::uint64_t round = in.get_u64();
  BGLA_CHECK_MSG(in.done(), "trailing bytes in g_safe_ack payload");
  const crypto::Signature sig = get_signature(dec);
  return std::make_shared<la::GSSafeAckMsg>(std::move(rcvd),
                                            std::move(conflicts), acceptor,
                                            round, sig);
}

MessagePtr decode_gs_ack(Decoder& dec) {
  const Bytes payload = dec.get_bytes();
  Decoder in{payload};
  const crypto::Digest fp = get_digest(in);
  const ProcessId destination = in.get_u32();
  const std::uint64_t ts = in.get_u64();
  const std::uint64_t round = in.get_u64();
  BGLA_CHECK_MSG(in.done(), "trailing bytes in g_ack payload");
  const crypto::Signature sig = get_signature(dec);
  return std::make_shared<la::GSAckMsg>(fp, destination, ts, round, sig);
}

MessagePtr decode_payload(std::uint32_t type_id, Decoder& dec, int depth) {
  switch (type_id) {
    // ---- reliable broadcast (Bracha) ----
    case 1: {
      bcast::RbKey key{dec.get_u32(), dec.get_u64()};
      return std::make_shared<bcast::RbSendMsg>(
          key, get_inner<sim::Message>(dec, depth));
    }
    case 2: {
      bcast::RbKey key{dec.get_u32(), dec.get_u64()};
      return std::make_shared<bcast::RbEchoMsg>(
          key, get_inner<sim::Message>(dec, depth));
    }
    case 3: {
      bcast::RbKey key{dec.get_u32(), dec.get_u64()};
      return std::make_shared<bcast::RbReadyMsg>(
          key, get_inner<sim::Message>(dec, depth));
    }
    // ---- certificate-based reliable broadcast ----
    case 4: {
      bcast::CrbKey key{dec.get_u32(), dec.get_u64()};
      return std::make_shared<bcast::CrbSendMsg>(
          key, get_inner<sim::Message>(dec, depth));
    }
    case 5: {
      bcast::CrbKey key{dec.get_u32(), dec.get_u64()};
      const crypto::Digest digest = get_digest(dec);
      const crypto::Signature sig = get_signature(dec);
      return std::make_shared<bcast::CrbEchoMsg>(key, digest, sig);
    }
    case 6: {
      bcast::CrbKey key{dec.get_u32(), dec.get_u64()};
      auto inner = get_inner<sim::Message>(dec, depth);
      const std::uint64_t n = dec.get_varint();
      check_count(n, dec);
      std::vector<crypto::Signature> cert;
      cert.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) cert.push_back(get_signature(dec));
      return std::make_shared<bcast::CrbFinalMsg>(key, std::move(inner),
                                                  std::move(cert));
    }
    // ---- WTS ----
    case 10:
      return std::make_shared<la::DisclosureMsg>(decode_elem(dec));
    case 11: {
      Elem e = decode_elem(dec);
      return std::make_shared<la::AckReqMsg>(std::move(e), dec.get_u64());
    }
    case 12: {
      Elem e = decode_elem(dec);
      return std::make_shared<la::AckMsg>(std::move(e), dec.get_u64());
    }
    case 13: {
      Elem e = decode_elem(dec);
      return std::make_shared<la::NackMsg>(std::move(e), dec.get_u64());
    }
    // ---- GWTS ----
    case 20: {
      Elem e = decode_elem(dec);
      return std::make_shared<la::GDisclosureMsg>(std::move(e), dec.get_u64());
    }
    case 21: {
      Elem e = decode_elem(dec);
      const std::uint64_t ts = dec.get_u64();
      return std::make_shared<la::GAckReqMsg>(std::move(e), ts, dec.get_u64());
    }
    case 22: {
      Elem e = decode_elem(dec);
      const ProcessId destination = dec.get_u32();
      const ProcessId acceptor = dec.get_u32();
      const std::uint64_t ts = dec.get_u64();
      return std::make_shared<la::GAckMsg>(std::move(e), destination, acceptor,
                                           ts, dec.get_u64());
    }
    case 23: {
      Elem e = decode_elem(dec);
      const std::uint64_t ts = dec.get_u64();
      return std::make_shared<la::GNackMsg>(std::move(e), ts, dec.get_u64());
    }
    case 24:
      return std::make_shared<la::SubmitMsg>(decode_elem(dec));
    // ---- crash-stop Faleiro baseline ----
    case 30: {
      Elem e = decode_elem(dec);
      return std::make_shared<la::FAckReqMsg>(std::move(e), dec.get_u64());
    }
    case 31: {
      Elem e = decode_elem(dec);
      return std::make_shared<la::FAckMsg>(std::move(e), dec.get_u64());
    }
    case 32: {
      Elem e = decode_elem(dec);
      return std::make_shared<la::FNackMsg>(std::move(e), dec.get_u64());
    }
    // ---- SbS ----
    case 40:
      return std::make_shared<la::SInitMsg>(get_signed_value(dec));
    case 41:
      return std::make_shared<la::SSafeReqMsg>(get_signed_value_set(dec));
    case 42:
      return decode_s_safe_ack(dec);
    case 43: {
      SafeValueSet s = get_safe_value_set(dec, depth);
      return std::make_shared<la::SAckReqMsg>(std::move(s), dec.get_u64());
    }
    case 44: {
      SafeValueSet s = get_safe_value_set(dec, depth);
      return std::make_shared<la::SAckMsg>(std::move(s), dec.get_u64());
    }
    case 45: {
      SafeValueSet s = get_safe_value_set(dec, depth);
      return std::make_shared<la::SNackMsg>(std::move(s), dec.get_u64());
    }
    // ---- GSbS ----
    case 50:
      return std::make_shared<la::GSInitMsg>(get_signed_batch(dec));
    case 51: {
      SignedBatchSet s = get_signed_batch_set(dec);
      return std::make_shared<la::GSSafeReqMsg>(std::move(s), dec.get_u64());
    }
    case 52:
      return decode_gs_safe_ack(dec);
    case 53: {
      SafeBatchSet s = get_safe_batch_set(dec, depth);
      const std::uint64_t ts = dec.get_u64();
      return std::make_shared<la::GSAckReqMsg>(std::move(s), ts,
                                               dec.get_u64());
    }
    case 54:
      return decode_gs_ack(dec);
    case 55: {
      SafeBatchSet s = get_safe_batch_set(dec, depth);
      const std::uint64_t ts = dec.get_u64();
      return std::make_shared<la::GSNackMsg>(std::move(s), ts, dec.get_u64());
    }
    case 56: {
      SafeBatchSet s = get_safe_batch_set(dec, depth);
      const ProcessId decider = dec.get_u32();
      const std::uint64_t ts = dec.get_u64();
      const std::uint64_t round = dec.get_u64();
      const std::uint64_t n = dec.get_varint();
      check_count(n, dec);
      std::vector<std::shared_ptr<const la::GSAckMsg>> acks;
      acks.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        acks.push_back(get_inner<la::GSAckMsg>(dec, depth));
      }
      return std::make_shared<la::GSDecidedMsg>(std::move(s), decider, ts,
                                                round, std::move(acks));
    }
    // ---- RSM ----
    case 60: {
      lattice::Item cmd;
      cmd.a = dec.get_u64();
      cmd.b = dec.get_u64();
      cmd.c = dec.get_u64();
      return std::make_shared<rsm::UpdateMsg>(cmd);
    }
    case 61: {
      Elem e = decode_elem(dec);
      return std::make_shared<rsm::DecideMsg>(std::move(e), dec.get_u32());
    }
    case 62:
      return std::make_shared<rsm::ConfReqMsg>(decode_elem(dec));
    case 63: {
      Elem e = decode_elem(dec);
      return std::make_shared<rsm::ConfRepMsg>(std::move(e), dec.get_u32());
    }
    default:
      BGLA_CHECK_MSG(false, "unknown message type id " << type_id);
  }
}

MessagePtr decode_at(BytesView bytes, int depth) {
  BGLA_CHECK_MSG(depth <= kMaxDepth, "message nesting too deep");
  Decoder dec{bytes};
  const std::uint64_t type_id = dec.get_varint();
  BGLA_CHECK_MSG(type_id <= 0xffffffffull, "type id out of range");
  MessagePtr msg =
      decode_payload(static_cast<std::uint32_t>(type_id), dec, depth);
  BGLA_CHECK_MSG(dec.done(), "trailing bytes after message payload");
  return msg;
}

}  // namespace

MessagePtr decode_message(BytesView bytes) {
  try {
    return decode_at(bytes, 0);
  } catch (const CheckError&) {
    return nullptr;
  }
}

}  // namespace bgla::net
