#include "net/wire.h"

#include "net/shard_envelope.h"

#include <memory>
#include <utility>
#include <vector>

#include "bcast/bracha.h"
#include "bcast/cert_rb.h"
#include "crypto/codec.h"
#include "la/decode.h"
#include "la/gsbs_msgs.h"
#include "la/messages.h"
#include "la/sbs_msgs.h"
#include "la/signed_value.h"
#include "lattice/codec.h"
#include "obs/trace_ctx.h"
#include "rsm/msgs.h"
#include "util/check.h"
#include "util/codec.h"

namespace bgla::net {

namespace {

using crypto::decode_digest;
using crypto::decode_signature;
using la::SafeBatchSet;
using la::SafeValueSet;
using la::SignedBatchSet;
using lattice::Elem;
using lattice::decode_elem;
using sim::MessagePtr;

// Nesting bound for messages that embed encoded messages of *arbitrary*
// type (RB inner payloads). Real traffic nests at most two levels (RB
// around a protocol message); garbage that nests deeper is rejected
// before it can exhaust the stack. The signed-ack blobs inside proof sets
// and certificates don't need this: their decoders (la/decode.h) pin the
// inner type, so nesting is structurally bounded.
constexpr int kMaxDepth = 8;

MessagePtr decode_at(BytesView bytes, int depth);

void check_count(std::uint64_t count, const Decoder& dec) {
  BGLA_CHECK_MSG(count <= dec.remaining(),
                 "decoded count " << count << " exceeds remaining bytes");
}

/// Decodes a length-prefixed encoded message and downcasts it; throws on
/// parse failure or type mismatch.
template <typename T>
std::shared_ptr<const T> get_inner(Decoder& dec, int depth) {
  const Bytes raw = dec.get_bytes();
  MessagePtr msg = decode_at(raw, depth + 1);
  BGLA_CHECK_MSG(msg != nullptr, "undecodable inner message");
  auto typed = std::dynamic_pointer_cast<const T>(msg);
  BGLA_CHECK_MSG(typed != nullptr, "inner message of unexpected type "
                                       << msg->type_id());
  return typed;
}

MessagePtr decode_payload(std::uint32_t type_id, Decoder& dec, int depth) {
  switch (type_id) {
    // ---- reliable broadcast (Bracha) ----
    case 1: {
      bcast::RbKey key{dec.get_u32(), dec.get_u64()};
      return std::make_shared<bcast::RbSendMsg>(
          key, get_inner<sim::Message>(dec, depth));
    }
    case 2: {
      bcast::RbKey key{dec.get_u32(), dec.get_u64()};
      return std::make_shared<bcast::RbEchoMsg>(
          key, get_inner<sim::Message>(dec, depth));
    }
    case 3: {
      bcast::RbKey key{dec.get_u32(), dec.get_u64()};
      return std::make_shared<bcast::RbReadyMsg>(
          key, get_inner<sim::Message>(dec, depth));
    }
    // ---- certificate-based reliable broadcast ----
    case 4: {
      bcast::CrbKey key{dec.get_u32(), dec.get_u64()};
      return std::make_shared<bcast::CrbSendMsg>(
          key, get_inner<sim::Message>(dec, depth));
    }
    case 5: {
      bcast::CrbKey key{dec.get_u32(), dec.get_u64()};
      const crypto::Digest digest = decode_digest(dec);
      const crypto::Signature sig = decode_signature(dec);
      return std::make_shared<bcast::CrbEchoMsg>(key, digest, sig);
    }
    case 6: {
      bcast::CrbKey key{dec.get_u32(), dec.get_u64()};
      auto inner = get_inner<sim::Message>(dec, depth);
      const std::uint64_t n = dec.get_varint();
      check_count(n, dec);
      std::vector<crypto::Signature> cert;
      cert.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        cert.push_back(decode_signature(dec));
      }
      return std::make_shared<bcast::CrbFinalMsg>(key, std::move(inner),
                                                  std::move(cert));
    }
    // ---- WTS ----
    case 10:
      return std::make_shared<la::DisclosureMsg>(decode_elem(dec));
    case 11: {
      Elem e = decode_elem(dec);
      return std::make_shared<la::AckReqMsg>(std::move(e), dec.get_u64());
    }
    case 12: {
      Elem e = decode_elem(dec);
      return std::make_shared<la::AckMsg>(std::move(e), dec.get_u64());
    }
    case 13: {
      Elem e = decode_elem(dec);
      return std::make_shared<la::NackMsg>(std::move(e), dec.get_u64());
    }
    // ---- GWTS ----
    case 20: {
      Elem e = decode_elem(dec);
      return std::make_shared<la::GDisclosureMsg>(std::move(e), dec.get_u64());
    }
    case 21: {
      Elem e = decode_elem(dec);
      const std::uint64_t ts = dec.get_u64();
      return std::make_shared<la::GAckReqMsg>(std::move(e), ts, dec.get_u64());
    }
    case 22: {
      Elem e = decode_elem(dec);
      const ProcessId destination = dec.get_u32();
      const ProcessId acceptor = dec.get_u32();
      const std::uint64_t ts = dec.get_u64();
      return std::make_shared<la::GAckMsg>(std::move(e), destination, acceptor,
                                           ts, dec.get_u64());
    }
    case 23: {
      Elem e = decode_elem(dec);
      const std::uint64_t ts = dec.get_u64();
      return std::make_shared<la::GNackMsg>(std::move(e), ts, dec.get_u64());
    }
    case 24:
      return std::make_shared<la::SubmitMsg>(decode_elem(dec));
    case 25: {
      Elem rejected = decode_elem(dec);
      const std::uint64_t retry_after = dec.get_u64();
      return std::make_shared<la::SubmitNackMsg>(std::move(rejected),
                                                 retry_after, dec.get_u32());
    }
    // ---- crash-stop Faleiro baseline ----
    case 30: {
      Elem e = decode_elem(dec);
      return std::make_shared<la::FAckReqMsg>(std::move(e), dec.get_u64());
    }
    case 31: {
      Elem e = decode_elem(dec);
      return std::make_shared<la::FAckMsg>(std::move(e), dec.get_u64());
    }
    case 32: {
      Elem e = decode_elem(dec);
      return std::make_shared<la::FNackMsg>(std::move(e), dec.get_u64());
    }
    // ---- SbS ----
    case 40:
      return std::make_shared<la::SInitMsg>(la::decode_signed_value(dec));
    case 41:
      return std::make_shared<la::SSafeReqMsg>(
          la::decode_signed_value_set(dec));
    case 42:
      return la::decode_s_safe_ack_payload(dec);
    case 43: {
      SafeValueSet s = la::decode_safe_value_set(dec);
      return std::make_shared<la::SAckReqMsg>(std::move(s), dec.get_u64());
    }
    case 44: {
      SafeValueSet s = la::decode_safe_value_set(dec);
      return std::make_shared<la::SAckMsg>(std::move(s), dec.get_u64());
    }
    case 45: {
      SafeValueSet s = la::decode_safe_value_set(dec);
      return std::make_shared<la::SNackMsg>(std::move(s), dec.get_u64());
    }
    // ---- GSbS ----
    case 50:
      return std::make_shared<la::GSInitMsg>(la::decode_signed_batch(dec));
    case 51: {
      SignedBatchSet s = la::decode_signed_batch_set(dec);
      return std::make_shared<la::GSSafeReqMsg>(std::move(s), dec.get_u64());
    }
    case 52:
      return la::decode_gs_safe_ack_payload(dec);
    case 53: {
      SafeBatchSet s = la::decode_safe_batch_set(dec);
      const std::uint64_t ts = dec.get_u64();
      return std::make_shared<la::GSAckReqMsg>(std::move(s), ts,
                                               dec.get_u64());
    }
    case 54:
      return la::decode_gs_ack_payload(dec);
    case 55: {
      SafeBatchSet s = la::decode_safe_batch_set(dec);
      const std::uint64_t ts = dec.get_u64();
      return std::make_shared<la::GSNackMsg>(std::move(s), ts, dec.get_u64());
    }
    case 56:
      return la::decode_gs_decided_payload(dec);
    // ---- RSM ----
    case 60: {
      lattice::Item cmd;
      cmd.a = dec.get_u64();
      cmd.b = dec.get_u64();
      cmd.c = dec.get_u64();
      return std::make_shared<rsm::UpdateMsg>(cmd);
    }
    case 61: {
      Elem e = decode_elem(dec);
      return std::make_shared<rsm::DecideMsg>(std::move(e), dec.get_u32());
    }
    case 64: {
      const std::uint64_t count = dec.get_varint();
      BGLA_CHECK_MSG(count <= dec.remaining(),
                     "batch update count exceeds remaining bytes");
      std::vector<lattice::Item> cmds;
      cmds.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        lattice::Item cmd;
        cmd.a = dec.get_u64();
        cmd.b = dec.get_u64();
        cmd.c = dec.get_u64();
        cmds.push_back(cmd);
      }
      return std::make_shared<rsm::BatchUpdateMsg>(std::move(cmds));
    }
    case 62:
      return std::make_shared<rsm::ConfReqMsg>(decode_elem(dec));
    case 63: {
      Elem e = decode_elem(dec);
      return std::make_shared<rsm::ConfRepMsg>(std::move(e), dec.get_u32());
    }
    // ---- shard routing ----
    case 80: {
      const std::uint32_t shard = dec.get_u32();
      return std::make_shared<ShardEnvelopeMsg>(
          shard, get_inner<sim::Message>(dec, depth));
    }
    // ---- transport delta encoding ----
    case 90: {
      const std::uint64_t epoch = dec.get_u64();
      const std::uint64_t seq = dec.get_u64();
      const std::uint32_t inner_type = dec.get_u32();
      return std::make_shared<la::DeltaWrapMsg>(epoch, seq, inner_type,
                                                dec.get_bytes());
    }
    case 91:
      return std::make_shared<la::DeltaResetMsg>(dec.get_u64());
    // ---- state-transfer / catch-up ----
    case 70:
      return std::make_shared<la::CatchupReqMsg>(dec.get_u64());
    case 71: {
      const std::uint64_t round = dec.get_u64();
      const std::uint64_t frontier = dec.get_u64();
      Elem accepted = decode_elem(dec);
      Elem disclosed = decode_elem(dec);
      Elem decided = decode_elem(dec);
      Bytes cert = dec.get_bytes();
      if (!cert.empty()) {
        // Validate eagerly so a garbage certificate is rejected at the
        // trust boundary, like any other malformed frame.
        (void)la::decode_gs_decided_blob(cert);
      }
      return std::make_shared<la::CatchupRepMsg>(
          round, frontier, std::move(accepted), std::move(disclosed),
          std::move(decided), std::move(cert));
    }
    default:
      BGLA_CHECK_MSG(false, "unknown message type id " << type_id);
  }
}

/// Message types that may carry a trace-context tail (obs/trace_ctx.h).
/// Signed-blob and certificate types (SbS/GSbS safe-acks, signed acks,
/// DECIDED certs) and the RB wrappers are deliberately excluded: their
/// encoded() bytes are embedded verbatim in proofs and persisted state
/// whose pinned decoders (la/decode.h) reject trailing bytes — a hostile
/// tail on one of those must be dropped here, never allowed to poison a
/// proof set or a WAL blob.
bool trace_ctx_allowed(std::uint32_t type_id) {
  switch (type_id) {
    case 11:  // AckReqMsg
    case 12:  // AckMsg
    case 13:  // NackMsg
    case 21:  // GAckReqMsg
    case 23:  // GNackMsg
    case 24:  // SubmitMsg
    case 25:  // SubmitNackMsg
    case 30:  // FAckReqMsg
    case 31:  // FAckMsg
    case 32:  // FNackMsg
    case 43:  // SAckReqMsg
    case 44:  // SAckMsg
    case 45:  // SNackMsg
    case 53:  // GSAckReqMsg
    case 60:  // UpdateMsg
    case 61:  // DecideMsg
    case 64:  // BatchUpdateMsg
    case 80:  // ShardEnvelopeMsg
    case 90:  // DeltaWrapMsg — its payload is an opaque length-prefixed
              // blob (never embedded in proofs), so a tail is safe; the
              // wrapped message's own tail rides *inside* the payload.
      return true;
    default:
      return false;
  }
}

MessagePtr decode_at(BytesView bytes, int depth) {
  BGLA_CHECK_MSG(depth <= kMaxDepth, "message nesting too deep");
  Decoder dec{bytes};
  const std::uint64_t type_id = dec.get_varint();
  BGLA_CHECK_MSG(type_id <= 0xffffffffull, "type id out of range");
  MessagePtr msg =
      decode_payload(static_cast<std::uint32_t>(type_id), dec, depth);
  if (trace_ctx_allowed(static_cast<std::uint32_t>(type_id))) {
    // Stamped before the message is published, so a later re-encode
    // reproduces the input bytes (round-trip contract) tail included.
    msg->set_trace_ctx(obs::decode_trace_ctx_tail(dec));
  }
  BGLA_CHECK_MSG(dec.done(), "trailing bytes after message payload");
  return msg;
}

}  // namespace

MessagePtr decode_message(BytesView bytes) {
  try {
    return decode_at(bytes, 0);
  } catch (const CheckError&) {
    return nullptr;
  }
}

}  // namespace bgla::net
