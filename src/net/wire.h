// Wire decoding of protocol messages — the inverse of Message::encoded().
//
// The simulator passes shared_ptr<const Message> by reference and never
// parses bytes; the socket transport receives byte frames from untrusted
// peers and must reconstruct typed messages. Every message type in the
// repository's type-id registry (bcast 1..6, WTS 10..13, GWTS 20..25,
// Faleiro 30..32, SbS 40..45, GSbS 50..56, RSM 60..64, catch-up 70..71,
// shard envelope 80) decodes here.
//
// Robustness contract: decode_message never throws and never crashes on
// arbitrary bytes — truncated frames, unknown type ids, over-long length
// prefixes, unsorted sets and over-deep nesting all return nullptr. A
// Byzantine peer can at worst make a frame be dropped.
//
// Round-trip contract: for canonical input bytes (anything produced by
// Message::encoded()), decode_message(bytes)->encoded() == bytes. This is
// what keeps signatures and Bracha digests valid across the wire:
// re-encoding a decoded message reproduces the exact signed/hashed bytes.
// Non-canonical but parseable input (e.g. set entries out of order)
// re-encodes canonically, so its digest changes and signature checks fail
// — such forgeries are rejected by protocol logic, not by the decoder.
#pragma once

#include "sim/message.h"
#include "util/bytes.h"

namespace bgla::net {

/// Decodes one message from `varint(type_id) || payload` bytes.
/// Returns nullptr on malformed input, unknown type id, or trailing bytes.
sim::MessagePtr decode_message(BytesView bytes);

}  // namespace bgla::net
