#include "obs/exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "util/check.h"

namespace bgla::obs {

MetricsHttpServer::MetricsHttpServer(const Registry* registry,
                                     std::uint16_t port)
    : reg_(registry) {
  BGLA_CHECK(reg_ != nullptr);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  BGLA_CHECK_MSG(listen_fd_ >= 0, "metrics server: socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  BGLA_CHECK_MSG(
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0,
      "metrics server: cannot bind 127.0.0.1:" << port << " — "
                                               << std::strerror(errno));
  BGLA_CHECK_MSG(::listen(listen_fd_, 8) == 0,
                 "metrics server: listen() failed");
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  server_ = std::thread([this] { serve_loop(); });
}

MetricsHttpServer::~MetricsHttpServer() {
  stop_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (server_.joinable()) server_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void MetricsHttpServer::serve_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 200);
    if (pr <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // One request per connection: read the request line, route on path.
    // The request bytes race the accept, so wait (bounded) for them — a
    // nonblocking read here would misroute every slow client to "/".
    char buf[1024];
    pollfd cfd{fd, POLLIN, 0};
    ssize_t r = -1;
    if (::poll(&cfd, 1, 500) > 0) {
      r = ::recv(fd, buf, sizeof(buf) - 1, 0);
    }
    std::string path = "/";
    if (r > 0) {
      buf[r] = '\0';
      const std::string req(buf);
      if (req.rfind("GET ", 0) == 0) {
        const std::size_t end = req.find_first_of(" \r\n", 4);
        if (end != std::string::npos) path = req.substr(4, end - 4);
        const std::size_t q = path.find('?');
        if (q != std::string::npos) path.resize(q);
      }
    }
    const char* status = "200 OK";
    const char* ctype = "text/plain; version=0.0.4";
    std::string body;
    if (path == "/" || path == "/metrics") {
      body = reg_->snapshot().to_prometheus();
    } else if (path == "/healthz") {
      ctype = "text/plain";
      body = health_ ? health_() : std::string("ok\n");
      if (body.empty()) {
        status = "503 Service Unavailable";
        body = "unhealthy\n";
      }
    } else if (path == "/spans") {
      ctype = "application/x-ndjson";
      if (flight_ != nullptr) {
        body = flight_->dump();
      } else {
        status = "404 Not Found";
        body = "span tracing is off (run with --trace-spans)\n";
        ctype = "text/plain";
      }
    } else {
      status = "404 Not Found";
      ctype = "text/plain";
      body = "unknown path (try /metrics, /healthz, /spans)\n";
    }
    std::ostringstream resp;
    resp << "HTTP/1.1 " << status << "\r\n"
         << "Content-Type: " << ctype << "\r\n"
         << "Content-Length: " << body.size() << "\r\n"
         << "Connection: close\r\n\r\n"
         << body;
    const std::string out = resp.str();
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t w = ::send(fd, out.data() + off, out.size() - off,
                               MSG_NOSIGNAL);
      if (w <= 0) break;
      off += static_cast<std::size_t>(w);
    }
    ::close(fd);
  }
}

}  // namespace bgla::obs
