// Prometheus text exposition over a loopback health port.
//
// MetricsHttpServer answers HTTP GETs on 127.0.0.1:<port> (one accept
// thread, one request per connection — an introspection endpoint, not a
// web server). Port 0 binds an ephemeral port; port() reports the bound
// one. Routes:
//   /         and /metrics — registry snapshot, Prometheus text format
//   /healthz  — liveness summary from the health callback (503 when the
//               callback reports unhealthy by returning an empty string)
//   /spans    — the flight-recorder ring of the most recent span events,
//               one schema-v2 JSONL line each (requires a recorder)
// Unknown paths answer 404.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "obs/flight_recorder.h"
#include "obs/registry.h"

namespace bgla::obs {

class MetricsHttpServer {
 public:
  /// Binds and starts serving immediately. Throws CheckError if the port
  /// cannot be bound.
  MetricsHttpServer(const Registry* registry, std::uint16_t port);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  std::uint16_t port() const { return port_; }

  /// Health callback for /healthz: return a human-readable status body for
  /// 200, or an empty string for 503. Called on the server thread — must
  /// be thread-safe. Both setters race benignly only before first use;
  /// call them right after construction, like the rest of the wiring.
  void set_health(std::function<std::string()> health) {
    health_ = std::move(health);
  }

  /// Flight recorder for /spans (not owned; must outlive the server).
  void set_flight_recorder(const FlightRecorder* flight) {
    flight_ = flight;
  }

 private:
  void serve_loop();

  const Registry* reg_;
  std::function<std::string()> health_;
  const FlightRecorder* flight_ = nullptr;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread server_;
};

}  // namespace bgla::obs
