// Prometheus text exposition over a loopback health port.
//
// MetricsHttpServer answers every HTTP GET on 127.0.0.1:<port> with the
// current registry snapshot in text format (one accept thread, one
// request per connection — a scrape endpoint, not a web server). Port 0
// binds an ephemeral port; port() reports the bound one.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/registry.h"

namespace bgla::obs {

class MetricsHttpServer {
 public:
  /// Binds and starts serving immediately. Throws CheckError if the port
  /// cannot be bound.
  MetricsHttpServer(const Registry* registry, std::uint16_t port);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  std::uint16_t port() const { return port_; }

 private:
  void serve_loop();

  const Registry* reg_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread server_;
};

}  // namespace bgla::obs
