// Bounded in-memory ring of the most recent span lines (already rendered
// to JSONL), powering the live `/spans` introspection endpoint of
// bgla_node. Oldest lines fall off the front; the ring never blocks a
// protocol thread beyond one short mutex hold.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <string>

namespace bgla::obs {

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 512) : cap_(capacity) {}

  void add(std::string line) {
    std::lock_guard<std::mutex> lk(mu_);
    if (lines_.size() >= cap_) lines_.pop_front();
    lines_.push_back(std::move(line));
  }

  /// All buffered lines, oldest first, newline-terminated JSONL.
  std::string dump() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::string out;
    for (const std::string& l : lines_) {
      out += l;
      out += '\n';
    }
    return out;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return lines_.size();
  }

 private:
  std::size_t cap_;
  mutable std::mutex mu_;
  std::deque<std::string> lines_;
};

}  // namespace bgla::obs
