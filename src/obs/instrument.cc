#include "obs/instrument.h"

#include <cstring>
#include <sstream>

namespace bgla::obs {

Instrument::Instrument(Registry* registry, TraceWriter* trace)
    : reg_(registry), trace_(trace) {
  if (reg_ == nullptr) return;
  sends_ = &reg_->counter("bgla_proto_msgs_sent_total");
  wire_bytes_delta_ =
      &reg_->counter("bgla_wire_bytes_total{encoding=\"delta\"}");
  wire_bytes_full_ = &reg_->counter("bgla_wire_bytes_total{encoding=\"full\"}");
  wire_msgs_delta_ =
      &reg_->counter("bgla_wire_msgs_total{encoding=\"delta\"}");
  wire_msgs_full_ = &reg_->counter("bgla_wire_msgs_total{encoding=\"full\"}");
  bytes_per_command_ = &reg_->gauge("bgla_bytes_per_command");
  proposals_ = &reg_->counter("bgla_proto_proposals_total");
  submits_ = &reg_->counter("bgla_proto_submitted_values_total");
  acks_ = &reg_->counter("bgla_proto_acks_total");
  nacks_ = &reg_->counter("bgla_proto_nacks_total");
  refinements_ = &reg_->counter("bgla_proto_refinements_total");
  round_advances_ = &reg_->counter("bgla_proto_round_advances_total");
  decides_ = &reg_->counter("bgla_proto_decides_total");
  rejoins_ = &reg_->counter("bgla_proto_rejoins_total");
  backpressure_ = &reg_->counter("bgla_proto_backpressure_total");
  batch_queue_depth_ = &reg_->gauge("bgla_proto_batch_queue_depth");
  batch_size_ = &reg_->histogram("bgla_proto_batch_size");
  decide_latency_us_ = &reg_->histogram("bgla_proto_decide_latency_us");
  persist_latency_us_ = &reg_->histogram("bgla_store_persist_latency_us");
  rejoin_latency_us_ = &reg_->histogram("bgla_proto_rejoin_latency_us");
}

void Instrument::on_send(ProcessId node, std::uint64_t count) {
  (void)node;
  if (sends_ != nullptr) sends_->inc(count);
}

void Instrument::on_wire_bytes(ProcessId node, std::uint64_t bytes,
                               bool delta) {
  (void)node;
  if (delta) {
    if (wire_bytes_delta_ != nullptr) wire_bytes_delta_->inc(bytes);
    if (wire_msgs_delta_ != nullptr) wire_msgs_delta_->inc();
  } else {
    if (wire_bytes_full_ != nullptr) wire_bytes_full_->inc(bytes);
    if (wire_msgs_full_ != nullptr) wire_msgs_full_->inc();
  }
}

void Instrument::on_bytes_per_command(ProcessId node, std::uint64_t value) {
  (void)node;
  if (bytes_per_command_ != nullptr) {
    bytes_per_command_->set(static_cast<std::int64_t>(value));
  }
}

void Instrument::on_propose(ProcessId node, std::uint64_t proposal,
                            std::uint64_t round) {
  if (proposals_ != nullptr) proposals_->inc();
  if (trace_ != nullptr) {
    TraceEvent ev;
    ev.kind = EventKind::kPropose;
    ev.node = node;
    trace_->record(
        std::move(ev.with("proposal", proposal).with("round", round)));
  }
}

void Instrument::on_submit(ProcessId node, std::uint64_t count) {
  if (submits_ != nullptr) submits_->inc(count);
  if (trace_ != nullptr) {
    TraceEvent ev;
    ev.kind = EventKind::kSubmit;
    ev.node = node;
    trace_->record(std::move(ev.with("count", count)));
  }
}

void Instrument::on_ack(ProcessId node, ProcessId from) {
  if (acks_ != nullptr) acks_->inc();
  if (trace_ != nullptr) {
    TraceEvent ev;
    ev.kind = EventKind::kAck;
    ev.node = node;
    trace_->record(std::move(ev.with("from", from)));
  }
}

void Instrument::on_nack(ProcessId node, ProcessId from) {
  if (nacks_ != nullptr) nacks_->inc();
  if (trace_ != nullptr) {
    TraceEvent ev;
    ev.kind = EventKind::kNack;
    ev.node = node;
    trace_->record(std::move(ev.with("from", from)));
  }
}

void Instrument::on_refine(ProcessId node, std::uint64_t proposal,
                           std::uint64_t refinements) {
  if (refinements_ != nullptr) refinements_->inc();
  if (trace_ != nullptr) {
    TraceEvent ev;
    ev.kind = EventKind::kRefine;
    ev.node = node;
    trace_->record(std::move(
        ev.with("proposal", proposal).with("refinements", refinements)));
  }
}

void Instrument::on_round_advance(ProcessId node, std::uint64_t round) {
  if (round_advances_ != nullptr) round_advances_->inc();
  if (trace_ != nullptr) {
    TraceEvent ev;
    ev.kind = EventKind::kRoundAdvance;
    ev.node = node;
    trace_->record(std::move(ev.with("round", round)));
  }
}

void Instrument::on_decide(ProcessId node, std::uint64_t proposal,
                           std::uint64_t round, std::uint64_t refinements,
                           std::uint64_t latency_us) {
  if (decides_ != nullptr) decides_->inc();
  if (decide_latency_us_ != nullptr) decide_latency_us_->observe(latency_us);
  if (trace_ != nullptr) {
    TraceEvent ev;
    ev.kind = EventKind::kDecide;
    ev.node = node;
    trace_->record(std::move(ev.with("proposal", proposal)
                                 .with("round", round)
                                 .with("refinements", refinements)
                                 .with("latency_us", latency_us)));
  }
}

void Instrument::on_persist(ProcessId node, std::uint64_t bytes,
                            std::uint64_t latency_us) {
  if (persist_latency_us_ != nullptr) {
    persist_latency_us_->observe(latency_us);
  }
  if (trace_ != nullptr) {
    TraceEvent ev;
    ev.kind = EventKind::kPersist;
    ev.node = node;
    trace_->record(
        std::move(ev.with("bytes", bytes).with("latency_us", latency_us)));
  }
}

void Instrument::on_rejoin_start(ProcessId node) {
  if (trace_ != nullptr) {
    TraceEvent ev;
    ev.kind = EventKind::kRejoinStart;
    ev.node = node;
    trace_->record(std::move(ev));
  }
}

void Instrument::on_rejoin_done(ProcessId node, std::uint64_t latency_us) {
  if (rejoins_ != nullptr) rejoins_->inc();
  if (rejoin_latency_us_ != nullptr) rejoin_latency_us_->observe(latency_us);
  if (trace_ != nullptr) {
    TraceEvent ev;
    ev.kind = EventKind::kRejoinDone;
    ev.node = node;
    trace_->record(std::move(ev.with("latency_us", latency_us)));
  }
}

void Instrument::on_batch_flush(ProcessId node, std::uint64_t batch_size,
                                std::uint64_t queue_depth) {
  if (batch_size_ != nullptr) batch_size_->observe(batch_size);
  if (batch_queue_depth_ != nullptr) {
    batch_queue_depth_->set(static_cast<std::int64_t>(queue_depth));
  }
  if (trace_ != nullptr) {
    TraceEvent ev;
    ev.kind = EventKind::kBatchFlush;
    ev.node = node;
    trace_->record(std::move(
        ev.with("batch_size", batch_size).with("queue_depth", queue_depth)));
  }
}

void Instrument::on_backpressure(ProcessId node) {
  (void)node;
  if (backpressure_ != nullptr) backpressure_->inc();
}

void Instrument::enable_spans(ProcessId node) {
  spans_enabled_ = true;
  span_id_base_ = (static_cast<std::uint64_t>(node) + 1) << 32;
  if (reg_ != nullptr && num_phase_hists_ == 0) {
    // The full phase vocabulary (docs/OBSERVABILITY.md); resolving here
    // keeps on_span off the registry lock.
    static const char* const kPhases[] = {
        "submit", "route",  "enqueue", "backpressure", "round",
        "ack",    "quorum", "apply",   "retransmit",
    };
    for (const char* phase : kPhases) {
      phase_hists_[num_phase_hists_].name = phase;
      phase_hists_[num_phase_hists_].hist =
          &reg_->histogram(std::string("bgla_span_dur_us{phase=\"") +
                           phase + "\"}");
      ++num_phase_hists_;
    }
  }
}

TraceContext Instrument::new_trace() {
  const std::uint64_t id = new_span_id();
  return TraceContext{id, id};
}

std::uint64_t Instrument::new_span_id() {
  // Node-unique and nonzero: the node seeds the high half and the counter
  // starts at 1 (trace id 0 means "absent" on the wire).
  return span_id_base_ |
         (span_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
}

void Instrument::on_span(ProcessId node, const char* phase,
                         std::uint64_t trace, std::uint64_t span,
                         std::uint64_t parent, std::uint64_t dur_us,
                         const char* extra_key, std::uint64_t extra_val) {
  if (!spans_enabled_) return;
  if (reg_ != nullptr) {
    Histogram* hist = nullptr;
    for (std::size_t i = 0; i < num_phase_hists_; ++i) {
      // Pointer comparison first: call sites pass the same literals the
      // vocabulary table holds, so the strcmp is a cold fallback.
      if (phase_hists_[i].name == phase ||
          std::strcmp(phase_hists_[i].name, phase) == 0) {
        hist = phase_hists_[i].hist;
        break;
      }
    }
    if (hist == nullptr) {
      hist = &reg_->histogram(std::string("bgla_span_dur_us{phase=\"") +
                              phase + "\"}");
    }
    hist->observe(dur_us);
  }
  TraceEvent ev;
  ev.kind = EventKind::kSpan;
  ev.node = node;
  ev.with("trace", trace)
      .with("span", span)
      .with("parent", parent)
      .with("phase", std::string(phase))
      .with("dur_us", dur_us);
  if (extra_key != nullptr) ev.with(extra_key, extra_val);
  if (flight_ != nullptr) {
    flight_->add(TraceWriter::to_jsonl(ev, /*inc=*/0, /*seq=*/0,
                                       wall_time_us(), /*steady_us=*/0));
  }
  if (trace_ != nullptr) trace_->record(std::move(ev));
}

void publish_crypto(Registry& reg, std::uint64_t macs_computed,
                    std::uint64_t verify_cache_hits,
                    std::uint64_t verify_cache_misses) {
  reg.gauge("bgla_crypto_macs_computed_total")
      .set(static_cast<std::int64_t>(macs_computed));
  reg.gauge("bgla_crypto_verify_cache_hits_total")
      .set(static_cast<std::int64_t>(verify_cache_hits));
  reg.gauge("bgla_crypto_verify_cache_misses_total")
      .set(static_cast<std::int64_t>(verify_cache_misses));
}

void publish_backoff_retries(Registry& reg, ProcessId peer,
                             std::uint64_t attempts) {
  std::ostringstream name;
  name << "bgla_net_reconnect_backoff_attempts_total{peer=\"" << peer
       << "\"}";
  reg.gauge(name.str()).set(static_cast<std::int64_t>(attempts));
}

}  // namespace bgla::obs
