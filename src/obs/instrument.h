// obs::Instrument — the shared instrumentation hook between the protocol
// stack and the observability layer (registry + trace writer).
//
// One Instrument serves a whole process: in bgla_node it carries that
// node's Registry and optional TraceWriter; in the simulator one shared
// Instrument can serve all in-process endpoints (the node id travels with
// every call). Either pointer may be null — every hook degrades to a no-op
// branch, which is what keeps tracing-off overhead near zero.
//
// Counter handles are resolved once at construction, so protocol hot paths
// never take the registry lock.
#pragma once

#include <cstdint>
#include <string>

#include "obs/registry.h"
#include "obs/trace.h"
#include "util/ids.h"

namespace bgla::obs {

class Instrument {
 public:
  Instrument(Registry* registry, TraceWriter* trace);

  Registry* registry() const { return reg_; }
  TraceWriter* trace() const { return trace_; }

  /// Raw trace emission (no metric side); no-op without a writer.
  void event(TraceEvent ev) {
    if (trace_ != nullptr) trace_->record(std::move(ev));
  }

  // Protocol transitions. Counter + (where listed in the schema) one trace
  // event each. All are safe to call with either sink missing.
  void on_send(ProcessId node, std::uint64_t count = 1);
  void on_propose(ProcessId node, std::uint64_t proposal,
                  std::uint64_t round);
  void on_submit(ProcessId node, std::uint64_t count);
  void on_ack(ProcessId node, ProcessId from);
  void on_nack(ProcessId node, ProcessId from);
  void on_refine(ProcessId node, std::uint64_t proposal,
                 std::uint64_t refinements);
  void on_round_advance(ProcessId node, std::uint64_t round);
  void on_decide(ProcessId node, std::uint64_t proposal, std::uint64_t round,
                 std::uint64_t refinements, std::uint64_t latency_us);
  void on_persist(ProcessId node, std::uint64_t bytes,
                  std::uint64_t latency_us);
  void on_rejoin_start(ProcessId node);
  void on_rejoin_done(ProcessId node, std::uint64_t latency_us);
  void on_batch_flush(ProcessId node, std::uint64_t batch_size,
                      std::uint64_t queue_depth);
  void on_backpressure(ProcessId node);

 private:
  Registry* reg_;
  TraceWriter* trace_;

  // Cached handles (null iff reg_ is null).
  Counter* sends_ = nullptr;
  Counter* proposals_ = nullptr;
  Counter* submits_ = nullptr;
  Counter* acks_ = nullptr;
  Counter* nacks_ = nullptr;
  Counter* refinements_ = nullptr;
  Counter* round_advances_ = nullptr;
  Counter* decides_ = nullptr;
  Counter* rejoins_ = nullptr;
  Counter* backpressure_ = nullptr;
  Gauge* batch_queue_depth_ = nullptr;
  Histogram* batch_size_ = nullptr;
  Histogram* decide_latency_us_ = nullptr;
  Histogram* persist_latency_us_ = nullptr;
  Histogram* rejoin_latency_us_ = nullptr;
};

/// Publishes the crypto authority's cache counters (PR 1) under the
/// registry names one scrape expects.
void publish_crypto(Registry& reg, std::uint64_t macs_computed,
                    std::uint64_t verify_cache_hits,
                    std::uint64_t verify_cache_misses);

/// Publishes reconnect-backoff retry totals (PR 3) for one peer.
void publish_backoff_retries(Registry& reg, ProcessId peer,
                             std::uint64_t attempts);

}  // namespace bgla::obs
