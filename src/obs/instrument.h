// obs::Instrument — the shared instrumentation hook between the protocol
// stack and the observability layer (registry + trace writer).
//
// One Instrument serves a whole process: in bgla_node it carries that
// node's Registry and optional TraceWriter; in the simulator one shared
// Instrument can serve all in-process endpoints (the node id travels with
// every call). Either pointer may be null — every hook degrades to a no-op
// branch, which is what keeps tracing-off overhead near zero.
//
// Counter handles are resolved once at construction, so protocol hot paths
// never take the registry lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/trace_ctx.h"
#include "util/ids.h"

namespace bgla::obs {

class Instrument {
 public:
  Instrument(Registry* registry, TraceWriter* trace);

  Registry* registry() const { return reg_; }
  TraceWriter* trace() const { return trace_; }

  /// Raw trace emission (no metric side); no-op without a writer.
  void event(TraceEvent ev) {
    if (trace_ != nullptr) trace_->record(std::move(ev));
  }

  // Protocol transitions. Counter + (where listed in the schema) one trace
  // event each. All are safe to call with either sink missing.
  void on_send(ProcessId node, std::uint64_t count = 1);
  /// One message put on the wire by the delta transport: its encoded
  /// size and whether it went out delta-wrapped or as a full encoding.
  /// Feeds bgla_wire_bytes_total / bgla_wire_msgs_total{delta|full}.
  void on_wire_bytes(ProcessId node, std::uint64_t bytes, bool delta);
  /// Running per-command wire cost (total wire bytes / decided
  /// commands), published as the bgla_bytes_per_command gauge.
  void on_bytes_per_command(ProcessId node, std::uint64_t value);
  void on_propose(ProcessId node, std::uint64_t proposal,
                  std::uint64_t round);
  void on_submit(ProcessId node, std::uint64_t count);
  void on_ack(ProcessId node, ProcessId from);
  void on_nack(ProcessId node, ProcessId from);
  void on_refine(ProcessId node, std::uint64_t proposal,
                 std::uint64_t refinements);
  void on_round_advance(ProcessId node, std::uint64_t round);
  void on_decide(ProcessId node, std::uint64_t proposal, std::uint64_t round,
                 std::uint64_t refinements, std::uint64_t latency_us);
  void on_persist(ProcessId node, std::uint64_t bytes,
                  std::uint64_t latency_us);
  void on_rejoin_start(ProcessId node);
  void on_rejoin_done(ProcessId node, std::uint64_t latency_us);
  void on_batch_flush(ProcessId node, std::uint64_t batch_size,
                      std::uint64_t queue_depth);
  void on_backpressure(ProcessId node);

  // ---- causal command spans (trace schema v2) ----
  //
  // Span emission is opt-in (enable_spans) on top of the event tracing
  // above, so simulator/golden paths never see span traffic or trace-
  // context tails. Ids are node-unique and nonzero:
  // (node+1) << 32 | counter.

  /// Turns span emission on for this process. Call before the transport
  /// starts; `node` seeds the id space.
  void enable_spans(ProcessId node);
  bool spans_enabled() const { return spans_enabled_; }

  /// Fresh root context: trace id == span id == a new unique id.
  TraceContext new_trace();
  std::uint64_t new_span_id();

  /// Optional live ring of rendered span lines (the /spans endpoint).
  void set_flight_recorder(FlightRecorder* fr) { flight_ = fr; }

  /// Emits one phase span: a trace event (kind "span"), an observation in
  /// the per-phase bgla_span_dur_us{phase=...} histogram, and a flight-
  /// recorder line. No-op unless enable_spans() ran.
  void on_span(ProcessId node, const char* phase, std::uint64_t trace,
               std::uint64_t span, std::uint64_t parent,
               std::uint64_t dur_us, const char* extra_key = nullptr,
               std::uint64_t extra_val = 0);

 private:
  Registry* reg_;
  TraceWriter* trace_;

  // Span state.
  bool spans_enabled_ = false;
  std::uint64_t span_id_base_ = 0;
  std::atomic<std::uint64_t> span_seq_{0};
  FlightRecorder* flight_ = nullptr;
  // Per-phase duration histograms, resolved once in enable_spans() so
  // on_span never takes the registry lock (read-only afterwards, so the
  // scan is thread-safe). An unknown phase falls back to the registry.
  struct PhaseHandle {
    const char* name = nullptr;
    Histogram* hist = nullptr;
  };
  static constexpr std::size_t kMaxPhaseHandles = 12;
  PhaseHandle phase_hists_[kMaxPhaseHandles];
  std::size_t num_phase_hists_ = 0;

  // Cached handles (null iff reg_ is null).
  Counter* sends_ = nullptr;
  Counter* wire_bytes_delta_ = nullptr;
  Counter* wire_bytes_full_ = nullptr;
  Counter* wire_msgs_delta_ = nullptr;
  Counter* wire_msgs_full_ = nullptr;
  Gauge* bytes_per_command_ = nullptr;
  Counter* proposals_ = nullptr;
  Counter* submits_ = nullptr;
  Counter* acks_ = nullptr;
  Counter* nacks_ = nullptr;
  Counter* refinements_ = nullptr;
  Counter* round_advances_ = nullptr;
  Counter* decides_ = nullptr;
  Counter* rejoins_ = nullptr;
  Counter* backpressure_ = nullptr;
  Gauge* batch_queue_depth_ = nullptr;
  Histogram* batch_size_ = nullptr;
  Histogram* decide_latency_us_ = nullptr;
  Histogram* persist_latency_us_ = nullptr;
  Histogram* rejoin_latency_us_ = nullptr;
};

/// Publishes the crypto authority's cache counters (PR 1) under the
/// registry names one scrape expects.
void publish_crypto(Registry& reg, std::uint64_t macs_computed,
                    std::uint64_t verify_cache_hits,
                    std::uint64_t verify_cache_misses);

/// Publishes reconnect-backoff retry totals (PR 3) for one peer.
void publish_backoff_retries(Registry& reg, ProcessId peer,
                             std::uint64_t attempts);

}  // namespace bgla::obs
