#include "obs/jsonl.h"

#include <cctype>

namespace bgla::obs {

namespace {

void skip_ws(const std::string& s, std::size_t* i) {
  while (*i < s.size() && std::isspace(static_cast<unsigned char>(s[*i]))) {
    ++*i;
  }
}

bool parse_string(const std::string& s, std::size_t* i, std::string* out,
                  std::string* err) {
  if (*i >= s.size() || s[*i] != '"') {
    *err = "expected '\"'";
    return false;
  }
  ++*i;
  out->clear();
  while (*i < s.size()) {
    const char c = s[*i];
    if (c == '"') {
      ++*i;
      return true;
    }
    if (c == '\\') {
      ++*i;
      if (*i >= s.size()) break;
      const char e = s[*i];
      if (e == '"' || e == '\\' || e == '/') {
        out->push_back(e);
      } else if (e == 'n') {
        out->push_back('\n');
      } else if (e == 't') {
        out->push_back('\t');
      } else {
        // Escapes the writer never emits; keep the raw char.
        out->push_back(e);
      }
      ++*i;
      continue;
    }
    out->push_back(c);
    ++*i;
  }
  *err = "unterminated string";
  return false;
}

}  // namespace

bool parse_flat_json(const std::string& line, FlatJson* out,
                     std::string* err) {
  out->clear();
  err->clear();
  std::size_t i = 0;
  skip_ws(line, &i);
  if (i >= line.size() || line[i] != '{') {
    *err = "expected '{'";
    return false;
  }
  ++i;
  skip_ws(line, &i);
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    for (;;) {
      skip_ws(line, &i);
      std::string key;
      if (!parse_string(line, &i, &key, err)) return false;
      skip_ws(line, &i);
      if (i >= line.size() || line[i] != ':') {
        *err = "expected ':' after key \"" + key + "\"";
        return false;
      }
      ++i;
      skip_ws(line, &i);
      JsonField f;
      if (i < line.size() && line[i] == '"') {
        f.is_str = true;
        if (!parse_string(line, &i, &f.str, err)) return false;
      } else if (i < line.size() &&
                 std::isdigit(static_cast<unsigned char>(line[i]))) {
        std::uint64_t v = 0;
        while (i < line.size() &&
               std::isdigit(static_cast<unsigned char>(line[i]))) {
          v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
          ++i;
        }
        f.u64 = v;
      } else {
        *err = "value of \"" + key + "\" is not a string or unsigned int";
        return false;
      }
      (*out)[key] = std::move(f);
      skip_ws(line, &i);
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      *err = "expected ',' or '}'";
      return false;
    }
  }
  skip_ws(line, &i);
  if (i != line.size()) {
    *err = "trailing content after object";
    return false;
  }
  return true;
}

}  // namespace bgla::obs
