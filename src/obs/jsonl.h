// Minimal flat-JSON-object parser for trace lines.
//
// The trace schema (obs/trace.h) only ever emits one-level objects whose
// values are unsigned integers or plain strings, so the analyzer and the
// schema tests don't need a JSON library: parse_flat_json handles exactly
// that shape (and rejects nesting), keeping bgla_trace dependency-free.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace bgla::obs {

struct JsonField {
  bool is_str = false;
  std::uint64_t u64 = 0;  // valid iff !is_str
  std::string str;        // valid iff is_str
};

using FlatJson = std::map<std::string, JsonField>;

/// Parses one `{"k":1,"s":"x",...}` line. Returns false (and sets *err)
/// on malformed input, nesting, or non-(uint|string) values.
bool parse_flat_json(const std::string& line, FlatJson* out,
                     std::string* err);

}  // namespace bgla::obs
