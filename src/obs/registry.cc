#include "obs/registry.h"

#include <algorithm>
#include <sstream>

namespace bgla::obs {

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  counter_storage_.emplace_back();
  Counter* c = &counter_storage_.back();
  counters_.emplace(name, c);
  return *c;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  gauge_storage_.emplace_back();
  Gauge* g = &gauge_storage_.back();
  gauges_.emplace(name, g);
  return *g;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  histogram_storage_.emplace_back();
  Histogram* h = &histogram_storage_.back();
  histograms_.emplace(name, h);
  return *h;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.buckets.resize(Histogram::kBuckets);
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      hs.buckets[b] = h->buckets_[b].load(std::memory_order_relaxed);
      total += hs.buckets[b];
    }
    // Consistency under concurrent observe(): the count derives from the
    // buckets just read (observe() bumps the bucket before the count, so
    // the bucket sum is always a count some instant actually had), never
    // from a separate count_ read that can run ahead of the bucket loads
    // and make quantile() walk off the end of the distribution.
    hs.count = total;
    // The sum has no per-bucket decomposition to derive from; a short
    // stable-read loop filters the common torn case of reading mid-burst.
    std::uint64_t sum = h->sum();
    for (int retry = 0; retry < 3; ++retry) {
      const std::uint64_t again = h->sum();
      if (again == sum) break;
      sum = again;
    }
    hs.sum = sum;
    s.histograms[name] = std::move(hs);
  }
  return s;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the target observation (1-based, ceil so q=1 is the max).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] >= rank) {
      const double lo =
          b == 0 ? 0.0
                 : static_cast<double>(Histogram::bucket_upper(b - 1)) + 1.0;
      const double hi = static_cast<double>(Histogram::bucket_upper(b));
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(buckets[b]);
      return lo + (hi - lo) * frac;
    }
    seen += buckets[b];
  }
  return static_cast<double>(Histogram::bucket_upper(buckets.size() - 1));
}

void HistogramSnapshot::merge(const HistogramSnapshot& o) {
  if (buckets.size() < o.buckets.size()) buckets.resize(o.buckets.size());
  for (std::size_t b = 0; b < o.buckets.size(); ++b) {
    buckets[b] += o.buckets[b];
  }
  count += o.count;
  sum += o.sum;
}

void Snapshot::merge(const Snapshot& o) {
  for (const auto& [name, v] : o.counters) counters[name] += v;
  for (const auto& [name, v] : o.gauges) {
    auto it = gauges.find(name);
    if (it == gauges.end()) {
      gauges[name] = v;
    } else {
      it->second = std::max(it->second, v);
    }
  }
  for (const auto& [name, h] : o.histograms) {
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms[name] = h;
    } else {
      it->second.merge(h);
    }
  }
}

namespace {

/// Splits "name{label="x"}" into base name and label part; Prometheus
/// suffixes (_count/_sum) must go on the base name, before the labels.
void split_labels(const std::string& name, std::string* base,
                  std::string* labels) {
  const auto brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
  } else {
    *base = name.substr(0, brace);
    *labels = name.substr(brace);
  }
}

std::string with_extra_label(const std::string& labels,
                             const std::string& extra) {
  if (labels.empty()) return "{" + extra + "}";
  return labels.substr(0, labels.size() - 1) + "," + extra + "}";
}

/// JSON string escaping for metric names (labels embed '"').
std::string jesc(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void append_number(std::ostringstream& os, double v) {
  if (v == static_cast<double>(static_cast<std::uint64_t>(v)) &&
      v >= 0.0 && v < 1e18) {
    os << static_cast<std::uint64_t>(v);
  } else {
    os << v;
  }
}

/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; anything else
/// (a peer host in a label-less name, a typo) becomes '_' so one bad
/// registration cannot make a scraper reject the whole payload.
std::string sanitize_metric_name(const std::string& base) {
  std::string out;
  out.reserve(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    const char c = base[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    c == '_' || c == ':' ||
                    (i > 0 && c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

/// Escapes one label value per the text exposition format: backslash,
/// double quote and newline are the three characters that break a scrape.
std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Re-renders a `{k="v",...}` label block with sanitized label names and
/// escaped label values. A block that doesn't parse as k="v" pairs is
/// dropped entirely (better a label-less sample than a rejected scrape).
std::string sanitize_labels(const std::string& labels) {
  if (labels.empty()) return labels;
  std::string out = "{";
  bool first = true;
  std::size_t i = 1;  // past '{'
  while (i < labels.size() && labels[i] != '}') {
    if (labels[i] == ',') {
      ++i;
      continue;
    }
    std::string name;
    while (i < labels.size() && labels[i] != '=' && labels[i] != '}') {
      name += labels[i++];
    }
    if (i >= labels.size() || labels[i] != '=') return "";  // malformed
    ++i;  // '='
    if (i >= labels.size() || labels[i] != '"') return "";
    ++i;  // opening quote
    std::string value;
    while (i < labels.size() && labels[i] != '"') {
      // Unescape nothing: registry label values are raw; escaping happens
      // on the way out below.
      value += labels[i++];
    }
    if (i >= labels.size()) return "";
    ++i;  // closing quote
    std::string safe_name;
    for (std::size_t j = 0; j < name.size(); ++j) {
      const char c = name[j];
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      c == '_' || (j > 0 && c >= '0' && c <= '9');
      safe_name += ok ? c : '_';
    }
    if (safe_name.empty()) safe_name = "_";
    if (!first) out += ",";
    first = false;
    out += safe_name + "=\"" + escape_label_value(value) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string Snapshot::to_prometheus() const {
  std::ostringstream os;
  // One HELP/TYPE pair per metric family: labeled series of one family
  // share the pair, and a family that appears as several registry entries
  // (e.g. per-peer counters) must not repeat it — duplicated headers make
  // strict scrapers reject the payload.
  std::map<std::string, bool> family_emitted;
  auto header = [&](const std::string& base, const char* type) {
    bool& emitted = family_emitted[base];
    if (emitted) return;
    emitted = true;
    os << "# HELP " << base << " bgla metric " << base << "\n";
    os << "# TYPE " << base << " " << type << "\n";
  };
  for (const auto& [name, v] : counters) {
    std::string base, labels;
    split_labels(name, &base, &labels);
    base = sanitize_metric_name(base);
    header(base, "counter");
    os << base << sanitize_labels(labels) << " " << v << "\n";
  }
  for (const auto& [name, v] : gauges) {
    std::string base, labels;
    split_labels(name, &base, &labels);
    base = sanitize_metric_name(base);
    header(base, "gauge");
    os << base << sanitize_labels(labels) << " " << v << "\n";
  }
  for (const auto& [name, h] : histograms) {
    std::string base, labels;
    split_labels(name, &base, &labels);
    base = sanitize_metric_name(base);
    labels = sanitize_labels(labels);
    header(base, "summary");
    os << base << "_count" << labels << " " << h.count << "\n";
    os << base << "_sum" << labels << " " << h.sum << "\n";
    for (const double q : {0.5, 0.9, 0.99}) {
      std::ostringstream qs;
      qs << "quantile=\"" << q << "\"";
      os << base << with_extra_label(labels, qs.str()) << " ";
      append_number(os, h.quantile(q));
      os << "\n";
    }
  }
  return os.str();
}

std::string Snapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) os << ",";
    first = false;
    os << "\"" << jesc(name) << "\":" << v;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) os << ",";
    first = false;
    os << "\"" << jesc(name) << "\":" << v;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) os << ",";
    first = false;
    os << "\"" << jesc(name) << "\":{\"count\":" << h.count
       << ",\"sum\":" << h.sum << ",\"mean\":" << h.mean()
       << ",\"p50\":" << h.quantile(0.5) << ",\"p90\":" << h.quantile(0.9)
       << ",\"p99\":" << h.quantile(0.99)
       << ",\"max\":" << h.quantile(1.0) << "}";
  }
  os << "}}";
  return os.str();
}

}  // namespace bgla::obs
