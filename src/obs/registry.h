// Thread-safe metrics registry: counters, gauges and log-bucketed latency
// histograms with quantile readout.
//
// This is the one sink every layer feeds — sim::Metrics publishes its
// per-layer totals here, net::SocketTransport its per-peer frame counters
// and RTT histograms, store::ReplicaStore its persist/replay latencies and
// the protocols their proposal/ack/decide accounting (via obs::Instrument).
// One scrape (Prometheus text format) or one snapshot JSON therefore sees
// the whole node.
//
// Design:
//   - registry.counter("name") returns a stable Counter& (deque storage;
//     references never invalidate). Lookup takes a mutex; hot paths resolve
//     their handles once and then touch only relaxed atomics.
//   - Histograms are log-bucketed: observation v lands in bucket
//     bit_width(v) (bucket b covers [2^(b-1), 2^b)), so the full uint64
//     range needs only 65 buckets and recording is a single atomic add.
//     Quantiles interpolate linearly inside the winning bucket — exact
//     enough for latency reporting (within a factor-2 bucket), and
//     mergeable across nodes by plain bucket addition.
//   - Snapshot is a plain-data copy (maps of values), mergeable and
//     renderable as Prometheus text or JSON without holding any lock.
//
// Metric names follow Prometheus conventions (bgla_<layer>_<what>_<unit>);
// per-peer/per-node breakdowns use a {key="value"} label suffix embedded
// in the name — the registry treats the whole string as the key.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace bgla::obs {

class Counter {
 public:
  void inc(std::uint64_t d = 1) {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log-bucketed histogram: bucket b holds observations in [2^(b-1), 2^b),
/// bucket 0 holds the value 0. 65 buckets cover all of uint64.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  static std::size_t bucket_of(std::uint64_t v) {
    std::size_t b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b;  // bit width: 0 for v=0, 64 for the top bit
  }

  /// Inclusive upper bound of bucket b (the largest value it can hold).
  static std::uint64_t bucket_upper(std::size_t b) {
    if (b == 0) return 0;
    if (b >= 64) return ~0ull;
    return (1ull << b) - 1;
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Plain-data copy of a histogram, mergeable and quantile-readable.
struct HistogramSnapshot {
  std::vector<std::uint64_t> buckets;  // kBuckets entries
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  /// Quantile estimate (q in [0,1]) with linear interpolation inside the
  /// winning log bucket; exact for q=1 up to bucket granularity.
  double quantile(double q) const;
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  void merge(const HistogramSnapshot& o);
};

/// Point-in-time copy of a whole registry. Mergeable across nodes (counter
/// and bucket addition; gauges keep the maximum, which is the useful
/// convention for high-water gauges merged across a cluster).
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  void merge(const Snapshot& o);

  /// Prometheus text exposition (one line per sample; histograms emit
  /// _count, _sum and quantile gauges).
  std::string to_prometheus() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":
  /// {name:{count,sum,mean,p50,p90,p99,max}}}.
  std::string to_json() const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the metric with this name, creating it on first use. The
  /// reference stays valid for the registry's lifetime. Thread-safe;
  /// resolve once and cache the handle on hot paths.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::deque<Counter> counter_storage_;
  std::deque<Gauge> gauge_storage_;
  std::deque<Histogram> histogram_storage_;
  std::map<std::string, Counter*> counters_;
  std::map<std::string, Gauge*> gauges_;
  std::map<std::string, Histogram*> histograms_;
};

}  // namespace bgla::obs
