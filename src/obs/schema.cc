#include "obs/schema.h"

#include <sstream>

namespace bgla::obs {

namespace {

constexpr FieldSpec kProposeFields[] = {{"proposal", false},
                                        {"round", false}};
constexpr FieldSpec kSubmitFields[] = {{"count", false}};
constexpr FieldSpec kAckFields[] = {{"from", false}};
constexpr FieldSpec kNackFields[] = {{"from", false}};
constexpr FieldSpec kRefineFields[] = {{"proposal", false},
                                       {"refinements", false}};
constexpr FieldSpec kRoundAdvanceFields[] = {{"round", false}};
constexpr FieldSpec kDecideFields[] = {{"proposal", false},
                                       {"round", false},
                                       {"refinements", false},
                                       {"latency_us", false}};
constexpr FieldSpec kPersistFields[] = {{"bytes", false},
                                        {"latency_us", false}};
constexpr FieldSpec kRetransmitFields[] = {{"peer", false},
                                           {"frames", false}};
constexpr FieldSpec kRejoinDoneFields[] = {{"latency_us", false}};
constexpr FieldSpec kDeliverFields[] = {{"from", false}};
constexpr FieldSpec kNodeStartFields[] = {{"protocol", true},
                                          {"n", false},
                                          {"f", false}};
constexpr FieldSpec kNodeFinalFields[] = {{"decided", false},
                                          {"msgs_sent", false},
                                          {"refinements", false}};
constexpr FieldSpec kFaultFields[] = {{"fault", true}};
constexpr FieldSpec kBatchFlushFields[] = {{"batch_size", false},
                                           {"queue_depth", false}};
constexpr FieldSpec kSpanFields[] = {{"trace", false},
                                     {"span", false},
                                     {"parent", false},
                                     {"phase", true},
                                     {"dur_us", false}};

constexpr KindSpec kKindSpecs[kNumEventKinds] = {
    /*propose*/ {kProposeFields, 2},
    /*submit*/ {kSubmitFields, 1},
    /*ack*/ {kAckFields, 1},
    /*nack*/ {kNackFields, 1},
    /*refine*/ {kRefineFields, 2},
    /*round_advance*/ {kRoundAdvanceFields, 1},
    /*decide*/ {kDecideFields, 4},
    /*persist*/ {kPersistFields, 2},
    /*retransmit*/ {kRetransmitFields, 2},
    /*rejoin_start*/ {nullptr, 0},
    /*rejoin_done*/ {kRejoinDoneFields, 1},
    /*deliver*/ {kDeliverFields, 1},
    /*node_start*/ {kNodeStartFields, 3},
    /*node_final*/ {kNodeFinalFields, 3},
    /*fault*/ {kFaultFields, 1},
    /*batch_flush*/ {kBatchFlushFields, 2},
    /*span*/ {kSpanFields, 5},
};

constexpr const char* kEnvelopeU64[] = {"node", "inc", "seq", "wall_us",
                                        "steady_us"};

}  // namespace

const KindSpec& kind_spec(std::size_t kind_index) {
  static constexpr KindSpec kEmpty{nullptr, 0};
  return kind_index < kNumEventKinds ? kKindSpecs[kind_index] : kEmpty;
}

bool validate_trace_line(const FlatJson& obj, std::string* err) {
  auto require = [&](const char* key, bool is_str) {
    auto it = obj.find(key);
    if (it == obj.end()) {
      *err = std::string("missing required field \"") + key + "\"";
      return false;
    }
    if (it->second.is_str != is_str) {
      *err = std::string("field \"") + key + "\" has the wrong type";
      return false;
    }
    return true;
  };

  auto v = obj.find("v");
  if (v == obj.end() || v->second.is_str) {
    *err = "missing schema version \"v\"";
    return false;
  }
  if (v->second.u64 == 0 || v->second.u64 > kTraceSchemaVersion) {
    std::ostringstream os;
    os << "unsupported schema version " << v->second.u64 << " (want <= "
       << kTraceSchemaVersion << ")";
    *err = os.str();
    return false;
  }
  auto kind = obj.find("kind");
  if (kind == obj.end() || !kind->second.is_str) {
    *err = "missing event \"kind\"";
    return false;
  }
  const std::size_t ki = kind_index_from_name(kind->second.str);
  if (ki >= kNumEventKinds) {
    *err = "unknown event kind \"" + kind->second.str + "\"";
    return false;
  }
  for (const char* key : kEnvelopeU64) {
    if (!require(key, false)) return false;
  }
  const KindSpec& spec = kKindSpecs[ki];
  for (std::size_t i = 0; i < spec.num_fields; ++i) {
    if (!require(spec.fields[i].key, spec.fields[i].is_str)) {
      *err += " (kind \"" + kind->second.str + "\")";
      return false;
    }
  }
  return true;
}

bool validate_trace_jsonl(const std::string& line, std::size_t line_no,
                          FlatJson* out, std::string* err) {
  std::string reason;
  if (!parse_flat_json(line, out, &reason) ||
      !validate_trace_line(*out, &reason)) {
    std::ostringstream os;
    os << "line " << line_no << ": " << reason;
    *err = os.str();
    return false;
  }
  return true;
}

}  // namespace bgla::obs
