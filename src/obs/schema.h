// Versioned trace schema: the authoritative per-kind field requirements.
//
// Every JSONL line must carry the envelope
//   v (must equal kTraceSchemaVersion), kind (known name), node, inc, seq,
//   wall_us, steady_us
// plus the required fields of its kind listed in kKindFields below. Extra
// fields are allowed (forward compatibility); missing or mistyped required
// fields are schema violations. bgla_trace validates every line and the
// round-trip test validates every emitter against this table.
#pragma once

#include <cstddef>
#include <string>

#include "obs/jsonl.h"
#include "obs/trace.h"

namespace bgla::obs {

struct FieldSpec {
  const char* key;
  bool is_str;  // required type: string vs unsigned int
};

/// Required fields (beyond the envelope) for one event kind.
struct KindSpec {
  const FieldSpec* fields;
  std::size_t num_fields;
};

/// Indexed by EventKind value.
const KindSpec& kind_spec(std::size_t kind_index);

/// Validates one parsed line against the schema. Returns true if valid;
/// otherwise sets *err to a human-readable reason.
bool validate_trace_line(const FlatJson& obj, std::string* err);

/// Convenience: parse + validate. line_no is only used in *err.
bool validate_trace_jsonl(const std::string& line, std::size_t line_no,
                          FlatJson* out, std::string* err);

}  // namespace bgla::obs
