#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "obs/registry.h"
#include "util/check.h"

namespace bgla::obs {

namespace {

const char* const kKindNames[kNumEventKinds] = {
    "propose",       "submit",      "ack",         "nack",
    "refine",        "round_advance", "decide",    "persist",
    "retransmit",    "rejoin_start", "rejoin_done", "deliver",
    "node_start",    "node_final",  "fault",       "batch_flush",
    "span",
};

}  // namespace

const char* kind_name(EventKind k) {
  const std::size_t i = static_cast<std::size_t>(k);
  return i < kNumEventKinds ? kKindNames[i] : "?";
}

std::size_t kind_index_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kNumEventKinds; ++i) {
    if (name == kKindNames[i]) return i;
  }
  return kNumEventKinds;
}

std::uint64_t wall_time_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string TraceWriter::to_jsonl(const TraceEvent& ev, std::uint64_t inc,
                                  std::uint64_t seq, std::uint64_t wall_us,
                                  std::uint64_t steady_us) {
  std::ostringstream os;
  os << "{\"v\":" << kTraceSchemaVersion << ",\"kind\":\""
     << kind_name(ev.kind) << "\",\"node\":" << ev.node
     << ",\"inc\":" << inc << ",\"seq\":" << seq
     << ",\"wall_us\":" << wall_us << ",\"steady_us\":" << steady_us;
  for (std::size_t i = 0; i < ev.num_fields; ++i) {
    const TraceEvent::Field& f = ev.fields[i];
    os << ",\"" << f.key << "\":";
    if (f.is_str) {
      os << "\"";
      for (char c : f.str) {
        if (c == '"' || c == '\\') os << '\\';
        if (static_cast<unsigned char>(c) < 0x20) continue;  // control: drop
        os << c;
      }
      os << "\"";
    } else {
      os << f.u64;
    }
  }
  os << "}";
  return os.str();
}

TraceWriter::TraceWriter(Options opt)
    : opt_(std::move(opt)), epoch_(std::chrono::steady_clock::now()) {
  BGLA_CHECK_MSG(!opt_.path.empty(), "TraceWriter needs an output path");
  BGLA_CHECK_MSG(opt_.ring_capacity > 0, "TraceWriter ring must be > 0");
  ring_.reserve(opt_.ring_capacity);
  writer_ = std::thread([this] { writer_loop(); });
}

TraceWriter::~TraceWriter() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (writer_.joinable()) writer_.join();
}

void TraceWriter::record(TraceEvent ev) {
  const std::uint64_t wall = wall_time_us();
  const std::uint64_t steady = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (ring_.size() >= opt_.ring_capacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      if (opt_.dropped_counter != nullptr) opt_.dropped_counter->inc();
      return;
    }
    Stamped s;
    s.ev = std::move(ev);
    s.seq = next_seq_++;
    s.wall_us = wall;
    s.steady_us = steady;
    ring_.push_back(std::move(s));
    recorded_.fetch_add(1, std::memory_order_relaxed);
  }
  // No per-event wakeup: with a mostly-idle writer, notify_one here costs
  // a futex wake plus a single-event drain-and-fflush cycle (~5µs per
  // event, the dominant tracing cost). The writer self-wakes on a short
  // cadence and drains whole batches; flush()/~TraceWriter still notify.
}

void TraceWriter::flush() {
  std::unique_lock<std::mutex> lk(mu_);
  const std::uint64_t target = next_seq_;
  cv_.notify_all();
  flush_cv_.wait(lk, [&] { return flushed_seq_ >= target || stop_; });
}

void TraceWriter::writer_loop() {
  if (opt_.rollover) {
    // Roll a pre-existing file aside rather than truncating it; failures
    // (no such file, read-only dir) degrade to the plain open below.
    const std::string rolled = opt_.path + ".1";
    std::remove(rolled.c_str());
    std::rename(opt_.path.c_str(), rolled.c_str());
  }
  std::FILE* f = std::fopen(opt_.path.c_str(), "w");
  // An unopenable path degrades to dropping everything (still counted);
  // tracing must never take the node down.
  std::vector<Stamped> batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      // Timed wait instead of a per-record signal: events accumulate for
      // up to ~2ms and drain as one batch with one fflush. flush() and
      // the destructor notify for immediate wakeup.
      cv_.wait_for(lk, std::chrono::milliseconds(2),
                   [&] { return !ring_.empty() || stop_; });
      batch.swap(ring_);
      if (batch.empty() && stop_) break;
      if (batch.empty()) continue;  // timer tick with nothing to do
    }
    std::uint64_t last_seq = 0;
    for (const Stamped& s : batch) {
      last_seq = s.seq + 1;
      if (f == nullptr) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        if (opt_.dropped_counter != nullptr) opt_.dropped_counter->inc();
        continue;
      }
      const std::string line = to_jsonl(s.ev, opt_.incarnation, s.seq,
                                        s.wall_us, s.steady_us);
      std::fwrite(line.data(), 1, line.size(), f);
      std::fputc('\n', f);
    }
    if (f != nullptr) std::fflush(f);
    batch.clear();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (last_seq > flushed_seq_) flushed_seq_ = last_seq;
    }
    flush_cv_.notify_all();
  }
  if (f != nullptr) std::fclose(f);
  {
    std::lock_guard<std::mutex> lk(mu_);
    flushed_seq_ = next_seq_;
  }
  flush_cv_.notify_all();
}

}  // namespace bgla::obs
