// Structured JSONL event tracing: one schema-versioned event per protocol
// transition (propose/ack/refine/round-advance/decide/persist/retransmit/
// rejoin/...), each stamped with node id, incarnation, a per-writer
// monotonic sequence number and wall + steady timestamps.
//
// The writer is built so tracing-off overhead is near zero: callers hold a
// TraceWriter* that is simply nullptr when tracing is disabled (one branch
// per call site). With tracing on, record() formats nothing — it pushes a
// small fixed-size Event into a bounded ring and a background thread does
// the JSONL serialization and file I/O. When the ring is full the event is
// dropped and counted (dropped()), never blocking protocol code.
//
// Schema (version 1) — every line is one flat JSON object:
//   {"v":1,"kind":"decide","node":3,"inc":2,"seq":17,
//    "wall_us":1722890000123456,"steady_us":482913,
//    "round":4,"refinements":1,"latency_us":1834}
// Field names beyond the six required ones are per-kind (see obs/schema.h
// for the authoritative per-kind requirements used by the validator and
// the bgla_trace analyzer).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/ids.h"

namespace bgla::obs {

/// Every event kind the system emits. Keep in sync with kind_name() /
/// kind_from_name() and the per-kind field table in obs/schema.cc.
enum class EventKind : std::uint8_t {
  kPropose = 0,      // proposer (re)broadcasts a proposal / joins a round
  kSubmit,           // a value entered a generalized protocol's batch
  kAck,              // acceptor answered positively
  kNack,             // acceptor answered with a refinement trigger
  kRefine,           // proposer executed a refine step
  kRoundAdvance,     // generalized protocol moved to a new round
  kDecide,           // a decision was reached
  kPersist,          // durable state written
  kRetransmit,       // transport resent unacked frames to a peer
  kRejoinStart,      // restarted replica began the catch-up exchange
  kRejoinDone,       // catch-up finished; replica active again
  kDeliver,          // simulator delivery (bgla_run --trace-file)
  kNodeStart,        // process came up (tools)
  kNodeFinal,        // process final report: totals for the analyzer
  kFault,            // nemesis fault timeline (kill/restart/partition/...)
  kBatchFlush,       // ingress batcher released a batch into a round
  kSpan,             // causal phase span of one traced command (schema v2)
};
inline constexpr std::size_t kNumEventKinds =
    static_cast<std::size_t>(EventKind::kSpan) + 1;

const char* kind_name(EventKind k);
/// Returns kNumEventKinds for an unknown name.
std::size_t kind_index_from_name(const std::string& name);

/// One trace event: the required envelope plus up to kMaxFields typed
/// key/value details. Values are either u64 or a short string; keys are
/// static strings (the call sites use literals).
struct TraceEvent {
  static constexpr std::size_t kMaxFields = 6;

  EventKind kind = EventKind::kDeliver;
  ProcessId node = kNoProcess;

  struct Field {
    const char* key = nullptr;
    std::uint64_t u64 = 0;
    std::string str;  // used iff is_str
    bool is_str = false;
  };
  Field fields[kMaxFields];
  std::size_t num_fields = 0;

  TraceEvent& with(const char* key, std::uint64_t v) {
    if (num_fields < kMaxFields) {
      fields[num_fields].key = key;
      fields[num_fields].u64 = v;
      fields[num_fields].is_str = false;
      ++num_fields;
    }
    return *this;
  }
  TraceEvent& with(const char* key, std::string v) {
    if (num_fields < kMaxFields) {
      fields[num_fields].key = key;
      fields[num_fields].str = std::move(v);
      fields[num_fields].is_str = true;
      ++num_fields;
    }
    return *this;
  }
};

// Version 2 adds the "span" kind (trace/span/parent/phase/dur_us); the
// validator accepts every version from 1 up to this one.
inline constexpr std::uint32_t kTraceSchemaVersion = 2;

class Counter;  // obs/registry.h

class TraceWriter {
 public:
  struct Options {
    std::string path;
    std::size_t ring_capacity = 1 << 14;  // events buffered before drop
    std::uint64_t incarnation = 0;        // stamped on every event
    /// Optional registry counter (bgla_trace_dropped_total) bumped for
    /// every event the ring or an unopenable file swallowed.
    Counter* dropped_counter = nullptr;
    /// Roll a pre-existing file at `path` aside (to `path + ".1"`)
    /// instead of truncating it, so a restart that re-uses the path never
    /// destroys the previous run's lines.
    bool rollover = false;
  };

  explicit TraceWriter(Options opt);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Enqueues one event (timestamps and seq are assigned here). Never
  /// blocks: a full ring drops the event and bumps dropped().
  void record(TraceEvent ev);

  /// Events dropped because the ring was full.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  /// Blocks until everything recorded so far is on disk.
  void flush();

  const std::string& path() const { return opt_.path; }

  /// Renders one event to its JSONL line (exposed for tests and for
  /// single-threaded writers like the nemesis fault log).
  static std::string to_jsonl(const TraceEvent& ev, std::uint64_t inc,
                              std::uint64_t seq, std::uint64_t wall_us,
                              std::uint64_t steady_us);

 private:
  struct Stamped {
    TraceEvent ev;
    std::uint64_t seq = 0;
    std::uint64_t wall_us = 0;
    std::uint64_t steady_us = 0;
  };

  void writer_loop();

  Options opt_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Stamped> ring_;   // bounded queue guarded by mu_
  bool stop_ = false;
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> recorded_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t flushed_seq_ = 0;  // all seq < this are on disk
  std::condition_variable flush_cv_;
  std::chrono::steady_clock::time_point epoch_;
  std::thread writer_;
};

/// Microseconds since the Unix epoch (wall clock; comparable across the
/// processes of one machine, which is what the trace analyzer merges).
std::uint64_t wall_time_us();

}  // namespace bgla::obs
