// Causal trace context — the per-command identity that rides wire
// messages as an optional tail (see net/wire.cc for the allowlist of
// message types that may carry one).
//
// Encoding: absent entirely (zero bytes) when trace_id == 0, else
// `varint(trace_id) || varint(span_id)` appended after the message
// payload. Because the tail is part of Message::encoded(), digests and
// signatures computed over a stamped message cover the context too —
// a context must therefore be stamped BEFORE the first encoded()/digest()
// call and never changed afterwards (sim/message.h enforces the memoized
// fill-once discipline).
#pragma once

#include <cstdint>

#include "util/check.h"
#include "util/codec.h"

namespace bgla::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;  // 0 = no context attached
  std::uint64_t span_id = 0;   // emitting span (the parent on the far side)

  bool valid() const { return trace_id != 0; }
};

inline void encode_trace_ctx(Encoder& enc, const TraceContext& ctx) {
  if (!ctx.valid()) return;
  enc.put_u64(ctx.trace_id);
  enc.put_u64(ctx.span_id);
}

/// Decodes an optional context tail: zero context if the decoder is
/// already exhausted, else exactly two varints. Throws CheckError on a
/// tail with a zero trace id (reserved for "absent").
inline TraceContext decode_trace_ctx_tail(Decoder& dec) {
  if (dec.done()) return {};
  TraceContext ctx;
  ctx.trace_id = dec.get_u64();
  ctx.span_id = dec.get_u64();
  BGLA_CHECK_MSG(ctx.trace_id != 0, "trace context with zero trace id");
  return ctx;
}

}  // namespace bgla::obs
