// Byzantine participants specific to the RSM layer (§7 / Lemma 12).
#pragma once

#include "rsm/msgs.h"
#include "sim/network.h"
#include "util/rng.h"

namespace bgla::rsm {

/// A replica that never runs GWTS but answers clients with fabricated
/// decisions (claiming their command decided, plus junk commands) and
/// confirms everything. The Alg 6 confirmation step must prevent clients
/// from ever *returning* one of these fabrications.
class FakeDeciderReplica : public sim::Process {
 public:
  FakeDeciderReplica(sim::Network& net, ProcessId id,
                     ProcessId client_base, std::uint32_t num_clients)
      : sim::Process(net, id),
        client_base_(client_base),
        num_clients_(num_clients) {}

  void on_message(ProcessId, const sim::MessagePtr& msg) override {
    if (const auto* m = dynamic_cast<const UpdateMsg*>(msg.get())) {
      // Fabricate a decision: the client's command plus a junk command
      // nobody issued.
      const Elem fake = lattice::make_set(
          {m->cmd, Item{/*client=*/7777, ++junk_seq_, 42}});
      for (std::uint32_t c = 0; c < num_clients_; ++c) {
        send(client_base_ + c, std::make_shared<DecideMsg>(fake, id()));
      }
      return;
    }
    if (const auto* m = dynamic_cast<const ConfReqMsg*>(msg.get())) {
      // "Confirm" anything — a lone Byzantine confirmation is below the
      // f+1 threshold unless a correct replica agrees.
      for (std::uint32_t c = 0; c < num_clients_; ++c) {
        send(client_base_ + c,
             std::make_shared<ConfRepMsg>(m->accepted, id()));
      }
    }
  }

 private:
  ProcessId client_base_;
  std::uint32_t num_clients_;
  std::uint64_t junk_seq_ = 0;
};

/// A Byzantine client (Lemma 12): fires commands at a single replica
/// without waiting, duplicates sequence numbers, and sends confirmation
/// requests for sets nobody decided. Its (admissible) commands may appear
/// in correct clients' reads — which the §3.1 specification allows.
class ByzClient : public sim::Process {
 public:
  ByzClient(sim::Network& net, ProcessId id, std::uint32_t num_replicas,
            std::uint32_t num_commands)
      : sim::Process(net, id),
        num_replicas_(num_replicas),
        num_commands_(num_commands) {}

  void on_start() override {
    for (std::uint32_t k = 0; k < num_commands_; ++k) {
      const Item cmd{id(), k % 3 + 1, 500 + k};  // duplicated seqnos
      send(k % num_replicas_, std::make_shared<UpdateMsg>(cmd));
      send(k % num_replicas_,
           std::make_shared<ConfReqMsg>(lattice::make_set({cmd})));
    }
  }

  void on_message(ProcessId, const sim::MessagePtr&) override {}

  /// Commands this client may have gotten into the RSM (for the checker's
  /// allowed_extra set).
  std::set<Item> possible_commands() const {
    std::set<Item> out;
    for (std::uint32_t k = 0; k < num_commands_; ++k) {
      out.insert(Item{id(), k % 3 + 1, 500 + k});
    }
    return out;
  }

 private:
  std::uint32_t num_replicas_;
  std::uint32_t num_commands_;
};

}  // namespace bgla::rsm
