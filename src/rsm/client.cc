#include "rsm/client.h"

#include "la/messages.h"
#include "lattice/set_elem.h"
#include "util/check.h"

namespace bgla::rsm {

Client::Client(net::Transport& net, ProcessId id, std::uint32_t num_replicas,
               std::uint32_t f, std::vector<Op> script)
    : sim::Process(net, id),
      num_replicas_(num_replicas),
      f_(f),
      script_(std::move(script)) {
  BGLA_CHECK(num_replicas_ >= 3 * f_ + 1);
}

void Client::on_start() { start_next_op(); }

void Client::append_ops(std::vector<Op> ops) {
  const bool was_done = done();
  for (Op& op : ops) script_.push_back(op);
  if (was_done) start_next_op();
}

void Client::start_next_op() {
  if (active_ || next_op_ >= script_.size()) return;
  const Op op = script_[next_op_];

  OpRecord rec;
  rec.op = op;
  rec.invoke_time = net().now();
  rec.invoke_depth = net().current_depth();
  const std::uint64_t operand =
      op.kind == Op::Kind::kRead ? kNopOperand : op.operand;
  rec.cmd = Item{id(), ++seq_, operand};
  history_.push_back(rec);

  active_ = true;
  current_cmd_ = rec.cmd;
  dec_senders_.clear();
  confirming_ = false;
  candidates_.clear();
  conf_replies_.clear();

  // Alg 5 L3 / Alg 6 L3: new value({cmd}) at f+1 replicas. The offset
  // rotates the chosen replicas per op; any f+1 distinct replicas contain
  // at least one correct one.
  const auto msg = std::make_shared<UpdateMsg>(current_cmd_);
  if (contact_all_) {
    for (std::uint32_t r = 0; r < num_replicas_; ++r) send(r, msg);
  } else {
    const std::uint32_t base =
        static_cast<std::uint32_t>((seq_ * (f_ + 1)) % num_replicas_);
    for (std::uint32_t k = 0; k <= f_; ++k) {
      send((base + k) % num_replicas_, msg);
    }
  }
}

void Client::on_message(ProcessId from, const sim::MessagePtr& msg) {
  if (const auto* m = dynamic_cast<const DecideMsg*>(msg.get())) {
    handle_decide(from, *m);
  } else if (const auto* m = dynamic_cast<const ConfRepMsg*>(msg.get())) {
    handle_conf_rep(from, *m);
  } else if (const auto* m = dynamic_cast<const la::SubmitNackMsg*>(
                 msg.get())) {
    // Backpressure: the replica's ingress queue was full when our command
    // arrived. Resend to that replica — its queue drains by one whole
    // batch per round, so the retry lands eventually.
    if (!active_ || from >= num_replicas_) return;
    const auto& items = lattice::set_items(m->rejected);
    if (items.count(current_cmd_) == 0) return;  // not our in-flight cmd
    ++backpressure_retries_;
    ++history_.back().retries;
    send(from, std::make_shared<UpdateMsg>(current_cmd_));
  }
}

void Client::handle_decide(ProcessId from, const DecideMsg& m) {
  if (!active_) return;
  if (from >= num_replicas_) return;  // only replicas may decide
  // Alg 5 L5 / Alg 6 L4: only decisions containing our command count.
  const auto& items = lattice::set_items(m.accepted);
  if (items.count(current_cmd_) == 0) return;
  dec_senders_.insert(from);

  const bool is_read =
      script_[next_op_].kind == Op::Kind::kRead;

  if (!is_read) {
    // Alg 5 L4: update completes at f+1 decision reports.
    if (dec_senders_.size() >= f_ + 1) complete_current(Elem());
    return;
  }

  // Read path: collect candidate decision sets; once f+1 decisions are in
  // (Alg 6 L6-8), confirm each candidate — including candidates arriving
  // later, since up to f of the early ones may be fabrications.
  candidates_.emplace(m.accepted.digest(), m.accepted);
  if (!confirming_ && dec_senders_.size() >= f_ + 1) {
    confirming_ = true;
    for (const auto& [digest, set] : candidates_) request_confirmation(set);
  } else if (confirming_) {
    request_confirmation(m.accepted);
  }
}

void Client::request_confirmation(const Elem& set) {
  const auto req = std::make_shared<ConfReqMsg>(set);
  for (std::uint32_t r = 0; r < num_replicas_; ++r) send(r, req);
}

void Client::handle_conf_rep(ProcessId from, const ConfRepMsg& m) {
  if (!active_ || !confirming_) return;
  if (from >= num_replicas_) return;
  const crypto::Digest d = m.accepted.digest();
  if (candidates_.count(d) == 0) return;  // unsolicited: ignore
  auto& repliers = conf_replies_[d];
  repliers.insert(from);
  // Alg 6 L11-12: first set confirmed by f+1 replicas is executed.
  if (repliers.size() >= f_ + 1) complete_current(candidates_.at(d));
}

void Client::complete_current(const Elem& read_value) {
  OpRecord& rec = history_.back();
  rec.completed = true;
  rec.complete_time = net().now();
  rec.complete_depth = net().current_depth();
  rec.read_value = read_value;
  active_ = false;
  ++next_op_;
  if (op_hook_) op_hook_(*this, rec);
  start_next_op();
}

}  // namespace bgla::rsm
