// RSM client (§7.2, Algorithms 5 and 6).
//
// A client executes a script of operations sequentially:
//   Update(x) — submit command (client, seq, x) to f+1 replicas; complete
//               when f+1 distinct replicas report a decision containing it.
//   Read()    — submit a nop command the same way; once f+1 decisions
//               containing the nop arrive, ask all replicas to confirm the
//               candidate decision sets; return (execute) the first set
//               confirmed by f+1 replicas — at least one of them correct,
//               so the set was genuinely decided in GWTS.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "rsm/msgs.h"
#include "sim/network.h"

namespace bgla::rsm {

struct Op {
  enum class Kind { kUpdate, kRead };
  Kind kind = Kind::kUpdate;
  std::uint64_t operand = 0;  // update amount; unused for reads

  static Op update(std::uint64_t amount) {
    return Op{Kind::kUpdate, amount};
  }
  static Op read() { return Op{Kind::kRead, 0}; }
};

struct OpRecord {
  Op op;
  Item cmd;  // the unique command this op submitted (nop for reads)
  sim::Time invoke_time = 0;
  sim::Time complete_time = 0;
  std::uint64_t invoke_depth = 0;
  std::uint64_t complete_depth = 0;
  std::uint64_t retries = 0;  // backpressure nacks this op absorbed
  bool completed = false;
  Elem read_value;  // reads only: the executed (confirmed) command set
};

class Client : public sim::Process {
 public:
  Client(net::Transport& net, ProcessId id, std::uint32_t num_replicas,
         std::uint32_t f, std::vector<Op> script);

  /// Contact all replicas per command instead of the minimal f+1 (Alg 5
  /// note: f+1 suffices for correctness; contacting all trades messages
  /// for latency — measured in bench_rsm's contact-policy section).
  void set_contact_all(bool v) { contact_all_ = v; }

  void on_start() override;
  void on_message(ProcessId from, const sim::MessagePtr& msg) override;

  bool done() const { return next_op_ >= script_.size() && !active_; }

  /// Appends operations to the script. Callable from an op hook — the
  /// observed-remove set uses this to issue removes derived from a
  /// completed read. If the client had finished, it resumes.
  void append_ops(std::vector<Op> ops);
  const std::vector<OpRecord>& history() const { return history_; }

  /// Called whenever an operation completes (run controllers).
  using OpHook = std::function<void(const Client&, const OpRecord&)>;
  void set_op_hook(OpHook hook) { op_hook_ = std::move(hook); }

  /// Times a replica nacked this client's in-flight command because its
  /// ingress queue was full (each nack triggers one resend).
  std::uint64_t backpressure_retries() const { return backpressure_retries_; }

 private:
  void start_next_op();
  void handle_decide(ProcessId from, const DecideMsg& m);
  void handle_conf_rep(ProcessId from, const ConfRepMsg& m);
  void request_confirmation(const Elem& set);
  void complete_current(const Elem& read_value);

  std::uint32_t num_replicas_;
  std::uint32_t f_;
  bool contact_all_ = false;
  std::vector<Op> script_;
  std::size_t next_op_ = 0;
  bool active_ = false;
  std::uint64_t seq_ = 0;

  // In-flight op state (Alg 5/6).
  Item current_cmd_{};
  std::set<ProcessId> dec_senders_;
  bool confirming_ = false;
  std::map<crypto::Digest, Elem> candidates_;
  std::map<crypto::Digest, std::set<ProcessId>> conf_replies_;

  std::vector<OpRecord> history_;
  OpHook op_hook_;
  std::uint64_t backpressure_retries_ = 0;
};

}  // namespace bgla::rsm
