// Typed views over the commutative-update RSM: the grow-only counter and
// grow-only set the paper's introduction motivates, expressed as script
// builders (operations to hand to rsm::Client) plus interpreters for the
// command sets that reads return.
//
// The state of the RSM is a set of commands; these helpers give it data-
// type-level meaning:
//   counter —  add(x) commands; value = Σ operands
//   g-set   —  add(v) commands; value = { operands }
#pragma once

#include <set>

#include "rsm/client.h"
#include "rsm/history.h"

namespace bgla::rsm {

/// Script builder for a grow-only counter client.
class CounterWorkload {
 public:
  CounterWorkload& add(std::uint64_t amount) {
    ops_.push_back(Op::update(amount));
    return *this;
  }
  CounterWorkload& read() {
    ops_.push_back(Op::read());
    return *this;
  }
  std::vector<Op> script() const { return ops_; }

  /// Counter value of a completed read (Σ non-nop operands).
  static std::uint64_t value_of(const OpRecord& read_record) {
    return counter_value(read_record.read_value);
  }

 private:
  std::vector<Op> ops_;
};

/// Script builder for a grow-only set client. Element values are encoded
/// in the command operand.
class GSetWorkload {
 public:
  GSetWorkload& add(std::uint64_t element) {
    ops_.push_back(Op::update(element));
    return *this;
  }
  GSetWorkload& read() {
    ops_.push_back(Op::read());
    return *this;
  }
  std::vector<Op> script() const { return ops_; }

  /// The set of elements a completed read observed.
  static std::set<std::uint64_t> elements_of(const OpRecord& read_record) {
    std::set<std::uint64_t> out;
    for (const Item& it : lattice::set_items(read_record.read_value)) {
      if (!is_nop(it)) out.insert(it.c);
    }
    return out;
  }

  static bool contains(const OpRecord& read_record, std::uint64_t element) {
    return elements_of(read_record).count(element) > 0;
  }

 private:
  std::vector<Op> ops_;
};

/// Observed-remove set (OR-Set) over the commutative RSM.
///
/// add(v) is one command whose identity (client, seq) doubles as the
/// element's unique *tag*. remove(v) is only issued against tags observed
/// in a completed read, one remove command per observed tag — removes of
/// distinct tags commute with everything, so the command universe remains
/// a join semilattice and the unmodified RSM carries it. An element is
/// present iff some add-tag of it has no matching remove. (Concurrent
/// add wins over remove that did not observe it — standard OR-Set.)
class ORSetWorkload {
 public:
  /// Operand layout: bit 62 set ⇒ remove command referencing the tag
  /// (adder_client:20 bits | adder_seq:32 bits); otherwise the operand is
  /// the added element value (must stay below 2^61).
  static constexpr std::uint64_t kRemoveFlag = 1ull << 62;

  ORSetWorkload& add(std::uint64_t element) {
    ops_.push_back(Op::update(element));
    return *this;
  }
  ORSetWorkload& read() {
    ops_.push_back(Op::read());
    return *this;
  }
  std::vector<Op> script() const { return ops_; }

  static std::uint64_t pack_remove(ClientId adder, std::uint64_t seq) {
    return kRemoveFlag | (static_cast<std::uint64_t>(adder) << 32) |
           (seq & 0xffffffffull);
  }
  static bool is_remove(const Item& cmd) {
    return !is_nop(cmd) && (cmd.c & kRemoveFlag) != 0;
  }
  static std::pair<ClientId, std::uint64_t> removed_tag(const Item& cmd) {
    return {static_cast<ClientId>((cmd.c >> 32) & 0x3fffffffull),
            cmd.c & 0xffffffffull};
  }

  /// Remove operations for every currently-observed tag of `element` in a
  /// completed read — feed to Client::append_ops.
  static std::vector<Op> removes_for(const OpRecord& read_record,
                                     std::uint64_t element) {
    std::vector<Op> out;
    for (const Item& it : lattice::set_items(read_record.read_value)) {
      if (is_nop(it) || is_remove(it)) continue;
      if (it.c == element) {
        out.push_back(Op::update(pack_remove(
            static_cast<ClientId>(it.a), it.b)));
      }
    }
    return out;
  }

  /// Elements present in a read value: adds whose tag has no remove.
  static std::set<std::uint64_t> elements_of(const OpRecord& read_record) {
    std::set<std::pair<ClientId, std::uint64_t>> removed;
    for (const Item& it : lattice::set_items(read_record.read_value)) {
      if (is_remove(it)) removed.insert(removed_tag(it));
    }
    std::set<std::uint64_t> out;
    for (const Item& it : lattice::set_items(read_record.read_value)) {
      if (is_nop(it) || is_remove(it)) continue;
      if (removed.count({static_cast<ClientId>(it.a), it.b}) == 0) {
        out.insert(it.c);
      }
    }
    return out;
  }

  static bool contains(const OpRecord& read_record, std::uint64_t element) {
    return elements_of(read_record).count(element) > 0;
  }

 private:
  std::vector<Op> ops_;
};

}  // namespace bgla::rsm
