#include "rsm/history.h"

#include <sstream>

#include "lattice/chain.h"

namespace bgla::rsm {

namespace {
void append_diag(std::string& diag, const std::string& line) {
  if (!diag.empty()) diag += "; ";
  diag += line;
}

std::string cmd_str(const Item& cmd) { return cmd.to_string(); }
}  // namespace

std::uint64_t counter_value(const lattice::Elem& read_value) {
  std::uint64_t sum = 0;
  for (const Item& it : lattice::set_items(read_value)) {
    if (!is_nop(it)) sum += it.c;
  }
  return sum;
}

RsmCheckResult check_history(
    const std::vector<std::vector<OpRecord>>& histories,
    const std::set<Item>& allowed_extra) {
  RsmCheckResult res;

  std::vector<const OpRecord*> all;
  std::set<Item> issued;
  for (const auto& h : histories) {
    for (const auto& rec : h) {
      all.push_back(&rec);
      issued.insert(rec.cmd);
    }
  }

  // Liveness.
  for (const OpRecord* r : all) {
    if (!r->completed) {
      res.liveness = false;
      std::ostringstream os;
      os << "liveness: op " << cmd_str(r->cmd) << " did not complete";
      append_diag(res.diagnostic, os.str());
    }
  }

  std::vector<const OpRecord*> reads;
  std::vector<const OpRecord*> updates;
  for (const OpRecord* r : all) {
    if (!r->completed) continue;
    if (r->op.kind == Op::Kind::kRead) {
      reads.push_back(r);
    } else {
      updates.push_back(r);
    }
  }

  // Read Validity: every command in a read value was issued by a correct
  // client or is explicitly allowed (Byzantine-client commands).
  for (const OpRecord* r : reads) {
    for (const Item& it : lattice::set_items(r->read_value)) {
      if (issued.count(it) == 0 && allowed_extra.count(it) == 0) {
        res.read_validity = false;
        std::ostringstream os;
        os << "validity: read returned unissued command " << cmd_str(it);
        append_diag(res.diagnostic, os.str());
      }
    }
  }

  // Read Consistency.
  std::vector<lattice::Elem> values;
  for (const OpRecord* r : reads) values.push_back(r->read_value);
  const auto [ci, cj] = lattice::find_incomparable(values);
  if (ci >= 0) {
    res.read_consistency = false;
    append_diag(res.diagnostic, "consistency: incomparable read values");
  }

  // Read Monotonicity.
  for (const OpRecord* r1 : reads) {
    for (const OpRecord* r2 : reads) {
      if (r1->complete_time < r2->invoke_time &&
          !r1->read_value.leq(r2->read_value)) {
        res.read_monotonicity = false;
        std::ostringstream os;
        os << "monotonicity: read " << cmd_str(r1->cmd)
           << " completed before " << cmd_str(r2->cmd)
           << " started but returned a larger value";
        append_diag(res.diagnostic, os.str());
      }
    }
  }

  // Update Stability: u1 completes before u2 is triggered ⇒ every read
  // containing u2's command also contains u1's.
  for (const OpRecord* u1 : updates) {
    for (const OpRecord* u2 : updates) {
      if (!(u1->complete_time < u2->invoke_time)) continue;
      for (const OpRecord* r : reads) {
        const auto& items = lattice::set_items(r->read_value);
        if (items.count(u2->cmd) > 0 && items.count(u1->cmd) == 0) {
          res.update_stability = false;
          std::ostringstream os;
          os << "stability: read sees " << cmd_str(u2->cmd)
             << " without earlier " << cmd_str(u1->cmd);
          append_diag(res.diagnostic, os.str());
        }
      }
    }
  }

  // Update Visibility: u completes before r is triggered ⇒ r sees u.
  for (const OpRecord* u : updates) {
    for (const OpRecord* r : reads) {
      if (u->complete_time < r->invoke_time &&
          lattice::set_items(r->read_value).count(u->cmd) == 0) {
        res.update_visibility = false;
        std::ostringstream os;
        os << "visibility: read " << cmd_str(r->cmd) << " misses completed "
           << cmd_str(u->cmd);
        append_diag(res.diagnostic, os.str());
      }
    }
  }

  return res;
}

}  // namespace bgla::rsm
