// Executable specification of the §7.1 RSM properties over recorded
// operation histories.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "rsm/client.h"

namespace bgla::rsm {

struct RsmCheckResult {
  bool liveness = true;           ///< every operation completed
  bool read_validity = true;      ///< reads return issued commands only
  bool read_consistency = true;   ///< read values pairwise comparable
  bool read_monotonicity = true;  ///< reads ordered in time grow
  bool update_stability = true;   ///< earlier updates visible with later
  bool update_visibility = true;  ///< completed updates visible to reads
  std::string diagnostic;

  bool ok() const {
    return liveness && read_validity && read_consistency &&
           read_monotonicity && update_stability && update_visibility;
  }
  bool safe() const {
    return read_validity && read_consistency && read_monotonicity &&
           update_stability && update_visibility;
  }
};

/// `histories` are the per-client operation records of the *correct*
/// clients. `allowed_extra` are commands that may legitimately appear in
/// read values beyond the correct clients' own (e.g. a Byzantine client's
/// admissible commands, which the paper explicitly allows into decisions).
RsmCheckResult check_history(
    const std::vector<std::vector<OpRecord>>& histories,
    const std::set<Item>& allowed_extra = {});

/// Counter view of a read value: sum of operands of non-nop commands.
std::uint64_t counter_value(const lattice::Elem& read_value);

}  // namespace bgla::rsm
