#include "rsm/linearize.h"

#include <algorithm>
#include <sstream>

#include "lattice/chain.h"

namespace bgla::rsm {

namespace {

struct FlatOp {
  LinearizationResult::OpRef ref;
  const OpRecord* rec = nullptr;
  std::size_t slot = 0;  // chain position before/at which the op lands
};

}  // namespace

LinearizationResult linearize(
    const std::vector<std::vector<OpRecord>>& histories,
    const std::set<Item>& allowed_extra) {
  LinearizationResult res;

  std::vector<FlatOp> ops;
  std::set<Item> issued;
  for (std::size_t c = 0; c < histories.size(); ++c) {
    for (std::size_t i = 0; i < histories[c].size(); ++i) {
      const OpRecord& rec = histories[c][i];
      if (!rec.completed) {
        // A trailing incomplete op imposes no constraint; a *followed*
        // incomplete op would mean the client violated well-formedness.
        if (i + 1 < histories[c].size()) {
          res.diagnostic = "non-trailing incomplete operation";
          return res;
        }
        continue;
      }
      ops.push_back(FlatOp{{c, i}, &rec, 0});
      issued.insert(rec.cmd);
    }
  }

  // Distinct read values must form a chain; sort them ascending.
  std::vector<lattice::Elem> values;
  for (const FlatOp& op : ops) {
    if (op.rec->op.kind == Op::Kind::kRead) {
      values.push_back(op.rec->read_value);
    }
  }
  if (lattice::find_incomparable(values).first >= 0) {
    res.diagnostic = "read values are not a chain";
    return res;
  }
  std::sort(values.begin(), values.end(),
            [](const lattice::Elem& a, const lattice::Elem& b) {
              return a.leq(b) && !(a == b);
            });
  values.erase(std::unique(values.begin(), values.end(),
                           [](const lattice::Elem& a,
                              const lattice::Elem& b) { return a == b; }),
               values.end());

  // Every command inside a read value must be attributable.
  for (const lattice::Elem& v : values) {
    for (const Item& it : lattice::set_items(v)) {
      if (issued.count(it) == 0 && allowed_extra.count(it) == 0) {
        std::ostringstream os;
        os << "read value contains unattributed command "
           << it.to_string();
        res.diagnostic = os.str();
        return res;
      }
    }
  }

  // Slot assignment. Reads: position of their value in the chain
  // (slot 2k+1). Updates: before the first read value containing them
  // (slot 2k), or after every read (last slot) if never observed.
  const std::size_t last_slot = 2 * values.size();
  for (FlatOp& op : ops) {
    if (op.rec->op.kind == Op::Kind::kRead) {
      const auto it = std::find(values.begin(), values.end(),
                                op.rec->read_value);
      op.slot = 2 * static_cast<std::size_t>(it - values.begin()) + 1;
    } else {
      op.slot = last_slot;
      for (std::size_t k = 0; k < values.size(); ++k) {
        if (lattice::set_items(values[k]).count(op.rec->cmd) > 0) {
          op.slot = 2 * k;
          break;
        }
      }
    }
  }

  // Witness order: by (slot, invocation time, client) — same-slot ops
  // commute, so the tiebreak is free and chosen to satisfy real time.
  std::stable_sort(ops.begin(), ops.end(),
                   [](const FlatOp& a, const FlatOp& b) {
                     if (a.slot != b.slot) return a.slot < b.slot;
                     if (a.rec->invoke_time != b.rec->invoke_time) {
                       return a.rec->invoke_time < b.rec->invoke_time;
                     }
                     return a.ref.client < b.ref.client;
                   });

  // Real-time validity: no later-ordered op may have completed before an
  // earlier-ordered op was invoked.
  for (std::size_t i = 0; i < ops.size(); ++i) {
    for (std::size_t j = i + 1; j < ops.size(); ++j) {
      if (ops[j].rec->complete_time < ops[i].rec->invoke_time) {
        std::ostringstream os;
        os << "real-time violation: " << ops[j].rec->cmd.to_string()
           << " (completed t=" << ops[j].rec->complete_time
           << ") must precede " << ops[i].rec->cmd.to_string()
           << " (invoked t=" << ops[i].rec->invoke_time
           << ") but the only sequentially-correct orders place it after";
        res.diagnostic = os.str();
        return res;
      }
    }
  }

  res.linearizable = true;
  for (const FlatOp& op : ops) res.order.push_back(op.ref);
  return res;
}

}  // namespace bgla::rsm
