// Explicit linearizability checking for the commutative-update RSM.
//
// The §7.1 properties are necessary conditions; this module goes further
// and constructs an explicit *witness*: a total order of all completed
// operations that (a) respects real time (op1 completed before op2 was
// invoked ⇒ op1 ordered first) and (b) is sequentially correct (every
// read returns exactly the set of commands ordered before it). For
// commutative updates such a witness exists iff the history is
// linearizable, so a successful construction is a proof, and a failed
// one pinpoints the offending pair.
//
// Construction: read values form a chain V_0 ⊂ V_1 ⊂ … (checked); each
// update is slotted before the first read value containing its command
// (updates no read ever saw go last); within a slot operations are
// ordered by invocation time (legal: same-slot operations commute).
// Real-time validity of the resulting order is then verified pairwise.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "rsm/client.h"

namespace bgla::rsm {

struct LinearizationResult {
  bool linearizable = false;
  std::string diagnostic;

  /// The witness: indices into the flattened operation list, in
  /// linearization order (valid only when linearizable).
  struct OpRef {
    std::size_t client = 0;  // index into the histories vector
    std::size_t index = 0;   // index into that client's history
  };
  std::vector<OpRef> order;
};

/// `histories` are correct clients' op records (completed ops only are
/// considered; incomplete ops make the history non-linearizable unless
/// they are trailing). `allowed_extra` are commands (e.g. a Byzantine
/// client's) that may appear in read values without a corresponding
/// recorded update; they carry no real-time constraints.
LinearizationResult linearize(
    const std::vector<std::vector<OpRecord>>& histories,
    const std::set<Item>& allowed_extra = {});

}  // namespace bgla::rsm
