// RSM wire messages (§7, type ids 60..79).
#pragma once

#include <sstream>
#include <vector>

#include "lattice/set_elem.h"
#include "sim/message.h"
#include "util/ids.h"

namespace bgla::rsm {

using lattice::Elem;
using lattice::Item;

/// Commands are Items: a = client id, b = per-client sequence number,
/// c = operand. The (a, b) pair makes every command unique, as §7 assumes.
/// Reads use the distinguished nop operand.
inline constexpr std::uint64_t kNopOperand = 0xffffffffffffffffull;

inline bool is_nop(const Item& cmd) { return cmd.c == kNopOperand; }

/// Client → replica: submit command cmd to the RSM (Alg 5 L3 /Alg 6 L3).
class UpdateMsg final : public sim::Message {
 public:
  explicit UpdateMsg(Item cmd) : cmd(cmd) {}

  std::uint32_t type_id() const override { return 60; }
  sim::Layer layer() const override { return sim::Layer::kRsm; }
  void encode_payload(Encoder& enc) const override {
    enc.put_u64(cmd.a);
    enc.put_u64(cmd.b);
    enc.put_u64(cmd.c);
  }
  std::string to_string() const override {
    return "RSM_UPDATE(" + cmd.to_string() + ")";
  }

  Item cmd;
};

/// Replica → client: <decide, Accepted_set, replica>.
class DecideMsg final : public sim::Message {
 public:
  DecideMsg(Elem accepted, ProcessId replica)
      : accepted(std::move(accepted)), replica(replica) {}

  std::uint32_t type_id() const override { return 61; }
  sim::Layer layer() const override { return sim::Layer::kRsm; }
  void encode_payload(Encoder& enc) const override {
    accepted.encode(enc);
    enc.put_u32(replica);
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "RSM_DECIDE(rep=" << replica << ",|s|=" << accepted.weight() << ")";
    return os.str();
  }

  Elem accepted;
  ProcessId replica;
};

/// Client → replica: <CnfReq, Accepted_set> (Alg 6 L8).
class ConfReqMsg final : public sim::Message {
 public:
  explicit ConfReqMsg(Elem accepted) : accepted(std::move(accepted)) {}

  std::uint32_t type_id() const override { return 62; }
  sim::Layer layer() const override { return sim::Layer::kRsm; }
  void encode_payload(Encoder& enc) const override { accepted.encode(enc); }
  std::string to_string() const override { return "RSM_CONF_REQ"; }

  Elem accepted;
};

/// Client → replica: several commands in one frame. Semantically identical
/// to one UpdateMsg per command; the load generator's open-loop mode uses
/// it to amortize frame overhead when driving the ingress batcher hard.
class BatchUpdateMsg final : public sim::Message {
 public:
  explicit BatchUpdateMsg(std::vector<Item> cmds) : cmds(std::move(cmds)) {}

  std::uint32_t type_id() const override { return 64; }
  sim::Layer layer() const override { return sim::Layer::kRsm; }
  void encode_payload(Encoder& enc) const override {
    enc.put_varint(cmds.size());
    for (const Item& c : cmds) {
      enc.put_u64(c.a);
      enc.put_u64(c.b);
      enc.put_u64(c.c);
    }
  }
  std::string to_string() const override {
    std::ostringstream os;
    os << "RSM_BATCH_UPDATE(|cmds|=" << cmds.size() << ")";
    return os.str();
  }

  std::vector<Item> cmds;
};

/// Replica → client: <CnfRep, Accepted_set, replica> (Alg 7 L5).
class ConfRepMsg final : public sim::Message {
 public:
  ConfRepMsg(Elem accepted, ProcessId replica)
      : accepted(std::move(accepted)), replica(replica) {}

  std::uint32_t type_id() const override { return 63; }
  sim::Layer layer() const override { return sim::Layer::kRsm; }
  void encode_payload(Encoder& enc) const override {
    accepted.encode(enc);
    enc.put_u32(replica);
  }
  std::string to_string() const override { return "RSM_CONF_REP"; }

  Elem accepted;
  ProcessId replica;
};

}  // namespace bgla::rsm
