#include "rsm/replica.h"

namespace bgla::rsm {

Replica::Replica(net::Transport& net, ProcessId id, la::LaConfig cfg,
                 ProcessId client_base, std::uint32_t num_clients)
    : la::GwtsProcess(net, id, cfg),
      client_base_(client_base),
      num_clients_(num_clients) {
  set_decide_hook([this](const la::GwtsProcess&,
                         const la::DecisionRecord& rec) {
    push_decision(rec);
    flush_confirmations();
  });
}

void Replica::on_message(ProcessId from, const sim::MessagePtr& msg) {
  if (const auto* m = dynamic_cast<const UpdateMsg*>(msg.get())) {
    handle_update(from, m->cmd, msg->trace_ctx());
    return;
  }
  if (const auto* m = dynamic_cast<const BatchUpdateMsg*>(msg.get())) {
    for (const Item& cmd : m->cmds) {
      handle_update(from, cmd, msg->trace_ctx());
    }
    return;
  }
  if (const auto* m = dynamic_cast<const ConfReqMsg*>(msg.get())) {
    handle_conf_req(from, *m);
    return;
  }
  la::GwtsProcess::on_message(from, msg);
  // Quorum knowledge may have advanced: pending confirmations may now be
  // answerable (Alg 7 L4 is an "upon" guard over Ack_history).
  flush_confirmations();
}

void Replica::handle_update(ProcessId from, const Item& cmd,
                            obs::TraceContext ctx) {
  // Deduplicate by (client, seq) — a Byzantine client hammering the same
  // command only gets it proposed once.
  const auto [it, fresh] = seen_cmds_.emplace(cmd.a, cmd.b);
  if (!fresh) return;
  // Mint the trace here (not inside try_submit) so the apply span below
  // joins the same trace as the submit span.
  if (obs_spans() && !ctx.valid()) ctx = obs_new_trace();
  const Elem value = lattice::make_set({cmd});
  if (!try_submit(value, ctx)) {
    // Full ingress queue: backpressure. The command is un-marked so the
    // client's retry goes through once the queue drains. (try_submit only
    // persists on success, so the durable dedup set stays consistent.)
    seen_cmds_.erase(it);
    if (from != id()) {
      auto nack = std::make_shared<la::SubmitNackMsg>(
          value, /*retry_after=*/batcher().depth(), id());
      if (ctx.valid()) nack->set_trace_ctx(ctx);
      send(from, nack);
    }
  } else if (ctx.valid()) {
    pending_apply_.push_back(PendingApply{value, ctx, obs_steady_us()});
  }
}

void Replica::handle_conf_req(ProcessId from, const ConfReqMsg& m) {
  pending_conf_.emplace_back(from, m.accepted);  // Alg 7 L2-3
  flush_confirmations();
}

void Replica::flush_confirmations() {
  // Alg 7 L4-6.
  for (std::size_t i = 0; i < pending_conf_.size();) {
    const auto& [client, set] = pending_conf_[i];
    if (confirmed(set)) {
      send(client, std::make_shared<ConfRepMsg>(set, id()));
      pending_conf_.erase(pending_conf_.begin() +
                          static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void Replica::push_decision(const la::DecisionRecord& rec) {
  const auto msg = std::make_shared<DecideMsg>(rec.value, id());
  if (!pending_apply_.empty()) {
    // Every command this decision covers completes its trace with an
    // "apply" span (submit wall → decide wall); the decide push carries
    // the first covered command's context back to the client.
    const std::uint64_t now = obs_steady_us();
    bool stamped = false;
    for (std::size_t i = 0; i < pending_apply_.size();) {
      const PendingApply& e = pending_apply_[i];
      if (e.value.leq(rec.value)) {
        obs_child_span("apply", e.ctx,
                       now > e.wall_us ? now - e.wall_us : 0);
        if (!stamped) {
          msg->set_trace_ctx(e.ctx);  // before the first encode
          stamped = true;
        }
        pending_apply_.erase(pending_apply_.begin() +
                             static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  for (std::uint32_t c = 0; c < num_clients_; ++c) {
    send(client_base_ + c, msg);
  }
}

// ------------------------------------------------------ crash recovery ----

void Replica::export_state(Encoder& enc) const {
  la::put_state_header(enc, la::StateTag::kReplica);
  export_core(enc);
  enc.put_varint(seen_cmds_.size());
  for (const auto& [a, b] : seen_cmds_) {
    enc.put_u64(a);
    enc.put_u64(b);
  }
}

void Replica::import_state(Decoder& dec) {
  const std::uint32_t version =
      la::check_state_header(dec, la::StateTag::kReplica);
  import_core(dec, version);
  const std::uint64_t count = dec.get_varint();
  BGLA_CHECK_MSG(count <= dec.remaining(),
                 "Replica: command count exceeds remaining bytes");
  seen_cmds_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t a = dec.get_u64();
    const std::uint64_t b = dec.get_u64();
    seen_cmds_.emplace(a, b);
  }
}

}  // namespace bgla::rsm
