// RSM replica (§7.2): a GWTS proposer/acceptor that
//   - feeds client commands into GWTS batches ("new value({cmd})"),
//   - pushes <decide, Accepted_set, replica> to every client on each GWTS
//     decision, and
//   - implements the Algorithm 7 confirmation plug-in: a confirmation
//     request is answered once the requested set appears with quorum
//     support in the GWTS Ack_history (i.e. was effectively decided).
#pragma once

#include <vector>

#include "la/gwts.h"
#include "rsm/msgs.h"

namespace bgla::rsm {

class Replica : public la::GwtsProcess {
 public:
  /// Clients occupy process ids [client_base, client_base + num_clients).
  Replica(net::Transport& net, ProcessId id, la::LaConfig cfg,
          ProcessId client_base, std::uint32_t num_clients);

  void on_message(ProcessId from, const sim::MessagePtr& msg) override;

  /// Current local state (the last decided command set).
  const Elem& state() const { return decided_set(); }

  // ---- crash-recovery interface (see la/recovery.h) ----
  //
  // Wraps the GWTS core state and adds the command dedup set, so a
  // restarted replica neither re-proposes a command twice nor drops one
  // that was submitted but undecided at the crash. Pending confirmation
  // requests are not persisted: clients retry them (Alg 7's guard is an
  // "upon" over Ack_history, so a retried request is answered normally).
  void export_state(Encoder& enc) const override;
  void import_state(Decoder& dec) override;

 private:
  /// Feeds one client command into the GWTS ingress batcher. Dedup by
  /// (client, seq) happens first, so a nacked command is NOT marked seen
  /// and a client retry is proposed normally once the queue drains. A full
  /// queue answers with la::SubmitNackMsg carrying the queue depth as an
  /// advisory retry hint.
  void handle_update(ProcessId from, const Item& cmd,
                     obs::TraceContext ctx = {});
  void handle_conf_req(ProcessId from, const ConfReqMsg& m);
  void flush_confirmations();
  void push_decision(const la::DecisionRecord& rec);

  ProcessId client_base_;
  std::uint32_t num_clients_;
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen_cmds_;
  std::vector<std::pair<ProcessId, Elem>> pending_conf_;

  /// Commands in flight between submit and decide, tracked only when span
  /// tracing is on: each decision emits an "apply" span (submit wall time
  /// → decide wall time) for every command it covers.
  struct PendingApply {
    Elem value;
    obs::TraceContext ctx;
    std::uint64_t wall_us = 0;
  };
  std::vector<PendingApply> pending_apply_;
};

}  // namespace bgla::rsm
