#include "shard/frontier.h"

#include "util/check.h"

namespace bgla::shard {

using lattice::Elem;

FrontierMerger::FrontierMerger(std::uint32_t num_shards)
    : per_shard_(num_shards) {
  BGLA_CHECK_MSG(num_shards >= 1, "FrontierMerger: need at least one shard");
}

bool FrontierMerger::update(std::uint32_t shard, const Elem& decided) {
  BGLA_CHECK_MSG(shard < per_shard_.size(),
                 "FrontierMerger: shard " << shard << " out of range");
  ++updates_;
  if (decided.leq(per_shard_[shard])) return false;  // stale or duplicate
  per_shard_[shard] = per_shard_[shard].join(decided);
  const Elem grown = merged_.join(per_shard_[shard]);
  if (grown == merged_) return false;
  merged_ = grown;
  ++advances_;
  return true;
}

const Elem& FrontierMerger::shard_frontier(std::uint32_t shard) const {
  BGLA_CHECK_MSG(shard < per_shard_.size(),
                 "FrontierMerger: shard " << shard << " out of range");
  return per_shard_[shard];
}

}  // namespace bgla::shard
