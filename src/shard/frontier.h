// Cross-shard read frontier: the join of per-shard decided values.
//
// Each shard's GLA decides a monotone chain of per-shard frontiers; the
// merger keeps the latest frontier per shard and their join. Because it
// only ever joins, the merged frontier is monotone: a reader that was
// served frontier F is later served only F' ≥ F (the monotone read
// guarantee cross-shard reads need). By the product-lattice argument
// (shard_map.h) every merged frontier is a decided value of the product
// lattice, so serving reads from it is as safe as serving from a single
// global instance's decided set.
#pragma once

#include <cstdint>
#include <vector>

#include "lattice/elem.h"

namespace bgla::shard {

class FrontierMerger {
 public:
  explicit FrontierMerger(std::uint32_t num_shards);

  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(per_shard_.size());
  }

  /// Joins `decided` into shard s's frontier. Returns true iff the merged
  /// frontier grew (callers re-check pending reads exactly then).
  bool update(std::uint32_t shard, const lattice::Elem& decided);

  /// The join of all per-shard frontiers; never shrinks.
  const lattice::Elem& merged() const { return merged_; }

  const lattice::Elem& shard_frontier(std::uint32_t shard) const;

  /// A read for `e` can be served iff e ≤ merged().
  bool covers(const lattice::Elem& e) const { return e.leq(merged_); }

  std::uint64_t updates() const { return updates_; }
  /// Updates that actually grew the merged frontier.
  std::uint64_t advances() const { return advances_; }

 private:
  std::vector<lattice::Elem> per_shard_;
  lattice::Elem merged_;
  std::uint64_t updates_ = 0;
  std::uint64_t advances_ = 0;
};

}  // namespace bgla::shard
