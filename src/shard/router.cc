#include "shard/router.h"

#include <string>

#include "la/messages.h"
#include "util/check.h"

namespace bgla::shard {

using lattice::Elem;
using lattice::Item;
using sim::MessagePtr;

// ----------------------------------------------------------- ShardChannel --

ProcessId ShardChannel::attach(net::Endpoint& e) {
  BGLA_CHECK_MSG(endpoint_ == nullptr,
                 "ShardChannel: shard " << shard_ << " already has a stack");
  endpoint_ = &e;
  return router_->id();
}

void ShardChannel::detach(ProcessId id) {
  BGLA_CHECK_MSG(id == router_->id(), "ShardChannel: detach of foreign id");
  endpoint_ = nullptr;
}

void ShardChannel::send(ProcessId from, ProcessId to, MessagePtr msg) {
  BGLA_CHECK_MSG(from == router_->id(),
                 "ShardChannel: send under foreign identity " << from);
  router_->route_outgoing(shard_, to, std::move(msg));
}

net::Time ShardChannel::now() const { return router_->underlying().now(); }

std::uint64_t ShardChannel::current_depth() const {
  return router_->underlying().current_depth();
}

void ShardChannel::request_stop() { router_->underlying().request_stop(); }

// ----------------------------------------------------------------- Router --

Router::Router(net::Transport& transport, ProcessId id, Config cfg)
    : net::Endpoint(transport, id),
      cfg_(cfg),
      map_(cfg.num_shards),
      frontier_(cfg.num_shards) {
  BGLA_CHECK_MSG(cfg_.num_replicas >= 1, "Router: need num_replicas >= 1");
  channels_.reserve(cfg_.num_shards);
  for (std::uint32_t s = 0; s < cfg_.num_shards; ++s) {
    channels_.push_back(std::make_unique<ShardChannel>(*this, s));
  }
  if (cfg_.registry != nullptr) {
    obs::Registry& reg = *cfg_.registry;
    m_unknown_shard_ =
        &reg.counter("bgla_shard_router_unknown_shard_rejected_total");
    m_unroutable_ = &reg.counter("bgla_shard_router_unroutable_dropped_total");
    m_reads_served_ = &reg.counter("bgla_shard_router_reads_served_total");
    m_reads_pending_ = &reg.gauge("bgla_shard_router_reads_pending");
    for (std::uint32_t s = 0; s < cfg_.num_shards; ++s) {
      const std::string label = "{shard=\"" + std::to_string(s) + "\"}";
      m_shard_in_.push_back(
          &reg.counter("bgla_shard_router_deliveries_total" + label));
      m_shard_out_.push_back(
          &reg.counter("bgla_shard_router_enveloped_sends_total" + label));
      m_shard_frontier_.push_back(
          &reg.gauge("bgla_shard_frontier_weight" + label));
    }
  }
}

net::Transport& Router::shard_transport(std::uint32_t shard) {
  BGLA_CHECK_MSG(shard < channels_.size(),
                 "Router: shard " << shard << " out of range");
  return *channels_[shard];
}

void Router::on_start() {
  for (auto& ch : channels_) {
    if (ch->endpoint_ != nullptr) ch->endpoint_->on_start();
  }
}

void Router::route_outgoing(std::uint32_t shard, ProcessId to,
                            MessagePtr msg) {
  if (to < cfg_.num_replicas) {
    // Peer replica (or self): protocol traffic travels enveloped so the
    // receiving Router can demultiplex it.
    if (!m_shard_out_.empty()) m_shard_out_[shard]->inc();
    underlying().send(id(), to,
                      std::make_shared<net::ShardEnvelopeMsg>(shard, msg));
    return;
  }
  // Client-bound: translate so the client keeps speaking single-RSM.
  if (const auto* d = dynamic_cast<const rsm::DecideMsg*>(msg.get())) {
    if (frontier_.update(shard, d->accepted)) flush_pending_reads();
    if (!m_shard_frontier_.empty()) {
      m_shard_frontier_[shard]->set(static_cast<std::int64_t>(
          frontier_.shard_frontier(shard).weight()));
    }
    underlying().send(
        id(), to,
        std::make_shared<rsm::DecideMsg>(frontier_.merged(), d->replica));
    return;
  }
  // Backpressure nacks (and anything else client-bound) pass through
  // untranslated: the nacked value is the per-shard sub-value the client
  // actually needs to resend.
  underlying().send(id(), to, std::move(msg));
}

void Router::deliver_to_shard(std::uint32_t shard, ProcessId from,
                              const MessagePtr& msg) {
  ShardChannel& ch = *channels_[shard];
  if (ch.endpoint_ == nullptr) return;  // stack not (yet) mounted
  if (!m_shard_in_.empty()) m_shard_in_[shard]->inc();
  ch.endpoint_->on_message(from, msg);
}

void Router::on_message(ProcessId from, const MessagePtr& msg) {
  if (const auto env =
          std::dynamic_pointer_cast<const net::ShardEnvelopeMsg>(msg)) {
    if (env->shard >= cfg_.num_shards) {
      ++rejected_unknown_shard_;
      if (m_unknown_shard_ != nullptr) m_unknown_shard_->inc();
      return;
    }
    deliver_to_shard(env->shard, from, env->inner);
    return;
  }
  if (const auto* u = dynamic_cast<const rsm::UpdateMsg*>(msg.get())) {
    const std::uint32_t s = map_.shard_of(u->cmd);
    obs_child_span("route", msg->trace_ctx(), /*dur_us=*/0, "shard", s);
    deliver_to_shard(s, from, msg);
    return;
  }
  if (const auto* b = dynamic_cast<const rsm::BatchUpdateMsg*>(msg.get())) {
    std::vector<std::vector<Item>> parts(cfg_.num_shards);
    for (const Item& cmd : b->cmds) parts[map_.shard_of(cmd)].push_back(cmd);
    for (std::uint32_t s = 0; s < cfg_.num_shards; ++s) {
      if (parts[s].empty()) continue;
      obs_child_span("route", msg->trace_ctx(), /*dur_us=*/0, "shard", s);
      auto part = std::make_shared<rsm::BatchUpdateMsg>(std::move(parts[s]));
      if (msg->trace_ctx().valid()) part->set_trace_ctx(msg->trace_ctx());
      deliver_to_shard(s, from, part);
    }
    return;
  }
  if (const auto* sub = dynamic_cast<const la::SubmitMsg*>(msg.get())) {
    const std::vector<Elem> parts = map_.split(sub->value);
    for (std::uint32_t s = 0; s < cfg_.num_shards; ++s) {
      if (parts[s].is_bottom()) continue;
      obs_child_span("route", msg->trace_ctx(), /*dur_us=*/0, "shard", s);
      auto part = std::make_shared<la::SubmitMsg>(parts[s]);
      if (msg->trace_ctx().valid()) part->set_trace_ctx(msg->trace_ctx());
      deliver_to_shard(s, from, part);
    }
    return;
  }
  if (const auto* c = dynamic_cast<const rsm::ConfReqMsg*>(msg.get())) {
    handle_conf_req(from, *c);
    return;
  }
  // Unwrapped protocol traffic has no shard to belong to — e.g. a frame
  // from a non-sharded node. Refuse rather than guess.
  ++dropped_unroutable_;
  if (m_unroutable_ != nullptr) m_unroutable_->inc();
}

void Router::handle_conf_req(ProcessId from, const rsm::ConfReqMsg& m) {
  if (frontier_.covers(m.accepted)) {
    serve_read(from, m.accepted);
    return;
  }
  pending_reads_.emplace_back(from, m.accepted);
  if (m_reads_pending_ != nullptr) {
    m_reads_pending_->set(static_cast<std::int64_t>(pending_reads_.size()));
  }
}

void Router::serve_read(ProcessId to, const Elem& accepted) {
  ++reads_served_;
  if (m_reads_served_ != nullptr) m_reads_served_->inc();
  // Echo the requested set (the client matches replies to candidates by
  // digest, Alg 6 L11); this node vouches for it because the merged
  // frontier — monotone, and decided in the product lattice — covers it.
  underlying().send(id(), to, std::make_shared<rsm::ConfRepMsg>(accepted, id()));
}

void Router::flush_pending_reads() {
  std::vector<std::pair<ProcessId, Elem>> still_pending;
  for (auto& [reader, accepted] : pending_reads_) {
    if (frontier_.covers(accepted)) {
      serve_read(reader, accepted);
    } else {
      still_pending.emplace_back(reader, std::move(accepted));
    }
  }
  pending_reads_ = std::move(still_pending);
  if (m_reads_pending_ != nullptr) {
    m_reads_pending_->set(static_cast<std::int64_t>(pending_reads_.size()));
  }
}

}  // namespace bgla::shard
