// Router: one transport identity, S protocol stacks.
//
// A sharded node keeps a single authenticated transport endpoint (its
// process id) and multiplexes S independent replica stacks behind it.
// Each stack is attached to a ShardChannel — a virtual net::Transport
// that wraps replica-bound traffic in a ShardEnvelopeMsg (type 80, the
// shard id in the wire header) and hands it to the real transport, so
// peers' Routers can demultiplex to the right shard.
//
// Clients stay shard-oblivious; the Router translates at the boundary:
//   - inbound UpdateMsg/BatchUpdateMsg route by ShardMap command hash,
//     SubmitMsg values are split item-by-item across shards;
//   - outbound DecideMsg from a shard replica feeds the FrontierMerger
//     and is rewritten to carry the merged cross-shard frontier, so a
//     client sees exactly the single-RSM protocol it already speaks;
//   - ConfReqMsg (the Alg 6/7 read-confirmation) is answered at the
//     Router from the merged frontier — immediately if the requested set
//     is already covered, else parked until some shard's decision grows
//     the frontier over it. Merged frontiers only grow, so confirmed
//     reads are monotone.
//
// Envelopes with an out-of-range shard id and frames that are neither
// envelopes nor client traffic are counted and dropped — the same
// drop-don't-crash posture as the wire decoder.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "net/shard_envelope.h"
#include "net/transport.h"
#include "obs/registry.h"
#include "rsm/msgs.h"
#include "shard/frontier.h"
#include "shard/shard_map.h"

namespace bgla::shard {

class Router;

/// The virtual transport one shard's stack runs on. attach() hands back
/// the Router's own process id — the stack believes it IS the node — and
/// send() defers to the Router's routing rules.
class ShardChannel final : public net::Transport {
 public:
  ShardChannel(Router& router, std::uint32_t shard)
      : router_(&router), shard_(shard) {}

  ProcessId attach(net::Endpoint& e) override;
  void detach(ProcessId id) override;
  void send(ProcessId from, ProcessId to, sim::MessagePtr msg) override;
  net::Time now() const override;
  std::uint64_t current_depth() const override;
  void request_stop() override;

 private:
  friend class Router;
  Router* router_;
  std::uint32_t shard_;
  net::Endpoint* endpoint_ = nullptr;
};

class Router final : public net::Endpoint {
 public:
  struct Config {
    std::uint32_t num_shards = 1;
    /// Cluster size n: ids < n are replica nodes (peer traffic, enveloped),
    /// ids >= n are clients (translated, never enveloped).
    std::uint32_t num_replicas = 0;
    /// Optional metrics sink for per-shard counters (may be null).
    obs::Registry* registry = nullptr;
  };

  Router(net::Transport& transport, ProcessId id, Config cfg);

  /// The transport shard s's protocol stack must be constructed on (with
  /// this Router's process id).
  net::Transport& shard_transport(std::uint32_t shard);

  const ShardMap& map() const { return map_; }
  const FrontierMerger& frontier() const { return frontier_; }

  void on_start() override;
  void on_message(ProcessId from, const sim::MessagePtr& msg) override;

  // ---- drop/serve accounting (mirrored into the registry if present) ----
  std::uint64_t rejected_unknown_shard() const {
    return rejected_unknown_shard_;
  }
  std::uint64_t dropped_unroutable() const { return dropped_unroutable_; }
  std::uint64_t reads_served() const { return reads_served_; }
  std::uint64_t reads_pending() const { return pending_reads_.size(); }

 private:
  friend class ShardChannel;

  net::Transport& underlying() { return net(); }
  const net::Transport& underlying() const { return net(); }

  /// Outbound leg: a shard stack sent `msg` to `to`.
  void route_outgoing(std::uint32_t shard, ProcessId to, sim::MessagePtr msg);
  void deliver_to_shard(std::uint32_t shard, ProcessId from,
                        const sim::MessagePtr& msg);
  void handle_conf_req(ProcessId from, const rsm::ConfReqMsg& m);
  void serve_read(ProcessId to, const lattice::Elem& accepted);
  void flush_pending_reads();

  Config cfg_;
  ShardMap map_;
  FrontierMerger frontier_;
  std::vector<std::unique_ptr<ShardChannel>> channels_;
  /// Parked (reader, requested set) confirmations awaiting frontier growth.
  std::vector<std::pair<ProcessId, lattice::Elem>> pending_reads_;
  std::uint64_t rejected_unknown_shard_ = 0;
  std::uint64_t dropped_unroutable_ = 0;
  std::uint64_t reads_served_ = 0;

  // Registry handles resolved once at construction (null without registry).
  obs::Counter* m_unknown_shard_ = nullptr;
  obs::Counter* m_unroutable_ = nullptr;
  obs::Counter* m_reads_served_ = nullptr;
  obs::Gauge* m_reads_pending_ = nullptr;
  std::vector<obs::Counter*> m_shard_in_;    ///< deliveries into shard s
  std::vector<obs::Counter*> m_shard_out_;   ///< enveloped sends from s
  std::vector<obs::Gauge*> m_shard_frontier_;  ///< per-shard frontier weight
};

}  // namespace bgla::shard
