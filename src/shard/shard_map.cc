#include "shard/shard_map.h"

#include <set>
#include <utility>

#include "util/check.h"
#include "util/hash.h"

namespace bgla::shard {

using lattice::Elem;
using lattice::Item;

ShardMap::ShardMap(std::uint32_t num_shards) : num_shards_(num_shards) {
  BGLA_CHECK_MSG(num_shards >= 1, "ShardMap: need at least one shard");
}

std::uint32_t ShardMap::shard_of(const Item& cmd) const {
  if (num_shards_ == 1) return 0;
  std::uint64_t h = util::fnv1a64_u64(cmd.a);
  h = util::fnv1a64_u64(cmd.b, h);
  h = util::fnv1a64_u64(cmd.c, h);
  // FNV-1a's low-order bits disperse poorly when most input bytes are
  // constant (our items' high bytes are usually zero) — h % S would leave
  // shards empty. Xor-folding the top half in is the FNV-recommended
  // remedy for small output ranges.
  h ^= h >> 32;
  return static_cast<std::uint32_t>(h % num_shards_);
}

std::vector<Elem> ShardMap::split(const Elem& e) const {
  std::vector<Elem> parts(num_shards_);
  if (e.is_bottom()) return parts;
  if (num_shards_ == 1) {
    parts[0] = e;
    return parts;
  }
  std::vector<std::set<Item>> buckets(num_shards_);
  for (const Item& it : lattice::set_items(e)) {
    buckets[shard_of(it)].insert(it);
  }
  for (std::uint32_t s = 0; s < num_shards_; ++s) {
    if (!buckets[s].empty()) {
      parts[s] = lattice::make_set(std::move(buckets[s]));
    }
  }
  return parts;
}

}  // namespace bgla::shard
