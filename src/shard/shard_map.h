// Static S-way partition of the command space.
//
// The sharded RSM runs S independent GLA instances side by side; commands
// are assigned to instances by a deterministic hash of the command item.
// Zheng & Garg's product-lattice construction (arXiv:1810.05871) is what
// makes this sound: the product of S set lattices is itself a lattice, a
// decision of the product is the tuple of per-component decisions, and
// the join of per-shard decided frontiers is a decided value of the
// product — so per-shard agreement plus a FrontierMerger read path gives
// the same guarantees as one global instance.
//
// Routing uses the FNV-1a helper from util/hash.h, never std::hash: the
// partition must agree across every replica of a deployment and across
// platforms replaying golden transcripts.
#pragma once

#include <cstdint>
#include <vector>

#include "lattice/set_elem.h"

namespace bgla::shard {

class ShardMap {
 public:
  /// num_shards >= 1; shard ids are [0, num_shards).
  explicit ShardMap(std::uint32_t num_shards);

  std::uint32_t num_shards() const { return num_shards_; }

  /// Shard owning this command: FNV-1a over the item's (a, b, c) fields in
  /// little-endian byte order, mod S. Stable across platforms and runs.
  std::uint32_t shard_of(const lattice::Item& cmd) const;

  /// Splits a set-lattice element (or ⊥) into its per-shard components;
  /// entry s is ⊥ when no item routes to shard s. The join of the parts
  /// is the input — splitting loses nothing.
  std::vector<lattice::Elem> split(const lattice::Elem& e) const;

 private:
  std::uint32_t num_shards_;
};

}  // namespace bgla::shard
