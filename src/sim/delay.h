// Link-delay models for the asynchronous network.
//
// The paper's model (§3): reliable authenticated links, messages never
// lost, delays unbounded. A DelayModel picks the in-flight latency of each
// message; adversarial models stretch chosen links to exercise asynchrony
// (they may not drop — reliability is enforced by the network layer).
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <utility>

#include "util/ids.h"
#include "util/rng.h"

namespace bgla::sim {

using Time = std::uint64_t;

class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Latency (>= 1) of a message from `from` to `to` sent at `now`.
  virtual Time delay(ProcessId from, ProcessId to, Time now, Rng& rng) = 0;
};

/// Every message takes exactly `latency` ticks (synchronous-looking runs,
/// useful for unit tests and depth calibration).
class FixedDelay final : public DelayModel {
 public:
  explicit FixedDelay(Time latency = 1) : latency_(latency) {}
  Time delay(ProcessId, ProcessId, Time, Rng&) override { return latency_; }

 private:
  Time latency_;
};

/// Uniform random latency in [lo, hi].
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(Time lo, Time hi) : lo_(lo), hi_(hi) {}
  Time delay(ProcessId, ProcessId, Time, Rng& rng) override {
    return rng.uniform(lo_, hi_);
  }

 private:
  Time lo_, hi_;
};

/// Adversarial: messages between designated "victim" ordered pairs are
/// stretched by `stretch`; everything else is fast. Models the Theorem 1
/// style schedule that delays traffic among chosen correct processes.
class TargetedDelay final : public DelayModel {
 public:
  TargetedDelay(std::set<std::pair<ProcessId, ProcessId>> victims,
                Time fast, Time stretch)
      : victims_(std::move(victims)), fast_(fast), stretch_(stretch) {}

  Time delay(ProcessId from, ProcessId to, Time, Rng&) override {
    return victims_.count({from, to}) > 0 ? stretch_ : fast_;
  }

 private:
  std::set<std::pair<ProcessId, ProcessId>> victims_;
  Time fast_, stretch_;
};

/// Heavy-tailed-ish random latency: mostly fast, occasionally stretched by
/// a large factor. Stresses SAFE() buffering and round gating.
class JitterDelay final : public DelayModel {
 public:
  JitterDelay(Time base, Time spike, double spike_prob)
      : base_(base), spike_(spike), spike_prob_(spike_prob) {}

  Time delay(ProcessId, ProcessId, Time, Rng& rng) override {
    return rng.chance(spike_prob_) ? spike_ : 1 + rng.uniform(0, base_);
  }

 private:
  Time base_, spike_;
  double spike_prob_;
};

/// Transient partition: until `heal_time`, traffic crossing the cut
/// between group A = {id < split} and group B = {id >= split} is held
/// back so it arrives only after the partition heals (reliable links —
/// messages are delayed, never dropped, exactly the §3 model's
/// "unbounded delay" made concrete). Within a side, latency is `fast`.
class PartitionDelay final : public DelayModel {
 public:
  PartitionDelay(ProcessId split, Time heal_time, Time fast = 1)
      : split_(split), heal_time_(heal_time), fast_(fast) {}

  Time delay(ProcessId from, ProcessId to, Time now, Rng& rng) override {
    const bool crosses = (from < split_) != (to < split_);
    if (!crosses || now >= heal_time_) {
      return fast_ + rng.uniform(0, 2);
    }
    // Deliver shortly after the heal.
    return (heal_time_ - now) + 1 + rng.uniform(0, 2);
  }

 private:
  ProcessId split_;
  Time heal_time_;
  Time fast_;
};

/// Repeating partition churn: the cut between {id < split} and the rest
/// opens for `open_for` ticks at the start of every `period`, then heals
/// for the remainder. Stresses round-based protocols across repeated
/// asynchrony episodes.
class ChurnDelay final : public DelayModel {
 public:
  ChurnDelay(ProcessId split, Time period, Time open_for, Time fast = 1)
      : split_(split), period_(period), open_for_(open_for), fast_(fast) {}

  Time delay(ProcessId from, ProcessId to, Time now, Rng& rng) override {
    const bool crosses = (from < split_) != (to < split_);
    const Time phase = now % period_;
    if (!crosses || phase >= open_for_) {
      return fast_ + rng.uniform(0, 2);
    }
    return (open_for_ - phase) + 1 + rng.uniform(0, 2);
  }

 private:
  ProcessId split_;
  Time period_;
  Time open_for_;
  Time fast_;
};

}  // namespace bgla::sim
