#include "sim/message.h"

namespace bgla::sim {

const char* layer_name(Layer layer) {
  switch (layer) {
    case Layer::kBroadcast:
      return "broadcast";
    case Layer::kAgreement:
      return "agreement";
    case Layer::kRsm:
      return "rsm";
    case Layer::kOther:
      return "other";
  }
  return "?";
}

Bytes Message::encoded() const {
  Encoder enc;
  enc.put_u32(type_id());
  encode_payload(enc);
  return enc.take();
}

crypto::Digest Message::digest() const {
  return crypto::Sha256::hash(encoded());
}

}  // namespace bgla::sim
