#include "sim/message.h"

namespace bgla::sim {

const char* layer_name(Layer layer) {
  switch (layer) {
    case Layer::kBroadcast:
      return "broadcast";
    case Layer::kAgreement:
      return "agreement";
    case Layer::kRsm:
      return "rsm";
    case Layer::kOther:
      return "other";
  }
  return "?";
}

const Bytes& Message::encoded() const {
  return enc_cache_.encoded([this] {
    Encoder enc;
    enc.put_u32(type_id());
    encode_payload(enc);
    obs::encode_trace_ctx(enc, trace_ctx_);
    return enc.take();
  });
}

const crypto::Digest& Message::digest() const {
  return enc_cache_.digest([this] {
    Encoder enc;
    enc.put_u32(type_id());
    encode_payload(enc);
    obs::encode_trace_ctx(enc, trace_ctx_);
    return enc.take();
  });
}

}  // namespace bgla::sim
