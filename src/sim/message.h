// Base class for all protocol messages.
//
// Messages are immutable and shared; the network delivers
// shared_ptr<const Message>. Every message has a canonical encoding (used
// for digests and signatures) and a layer tag for per-layer metrics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "crypto/sha256.h"
#include "obs/trace_ctx.h"
#include "util/codec.h"
#include "util/memo.h"

namespace bgla::sim {

/// Protocol layer, for message accounting (DESIGN.md T2/T3/T4/T6).
enum class Layer : std::uint8_t {
  kBroadcast = 0,  // reliable-broadcast internals (SEND/ECHO/READY)
  kAgreement = 1,  // lattice-agreement messages (ack_req/ack/nack/...)
  kRsm = 2,        // RSM client/replica traffic
  kOther = 3,
};

/// Number of Layer values; per-layer accounting arrays derive their size
/// from this so adding a layer can't silently truncate accounting.
inline constexpr std::size_t kNumLayers =
    static_cast<std::size_t>(Layer::kOther) + 1;

const char* layer_name(Layer layer);

class Message {
 public:
  virtual ~Message() = default;

  /// Globally unique message-type tag (see *_msgs.h headers for ranges).
  virtual std::uint32_t type_id() const = 0;

  virtual Layer layer() const = 0;

  /// Canonical payload encoding; the digest prepends type_id so distinct
  /// message types never collide.
  virtual void encode_payload(Encoder& enc) const = 0;

  virtual std::string to_string() const = 0;

  /// Canonical bytes: varint(type_id) || payload. Memoized — messages are
  /// immutable, so the encoding is computed once per object.
  const Bytes& encoded() const;

  /// SHA-256 over encoded() — the identity used by Bracha echo-matching
  /// and by the §8 signature schemes. Memoized alongside encoded().
  const crypto::Digest& digest() const;

  /// Optional causal trace context, carried as an encoded tail (see
  /// obs/trace_ctx.h). Must be stamped before the first encoded()/digest()
  /// call — senders stamp right after construction, the wire decoder
  /// stamps before publishing the message — and never changed after.
  void set_trace_ctx(const obs::TraceContext& ctx) const {
    trace_ctx_ = ctx;
  }
  const obs::TraceContext& trace_ctx() const { return trace_ctx_; }

 private:
  util::EncodingCache enc_cache_;
  // Mutable + const setter: messages travel as shared_ptr<const Message>
  // and the context is sender/decoder metadata, not message state.
  mutable obs::TraceContext trace_ctx_;
};

using MessagePtr = std::shared_ptr<const Message>;

}  // namespace bgla::sim
