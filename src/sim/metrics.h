// Per-run metrics: message counts and bytes by (process, layer), event
// totals, and the causal message-delay depth accounting used to check the
// paper's delay theorems (Thm 3: ≤ 2f+5; Thm 8: ≤ 4f+5).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "crypto/signature.h"
#include "obs/instrument.h"
#include "obs/registry.h"
#include "sim/message.h"
#include "util/ids.h"

namespace bgla::sim {

struct LayerCounters {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class Metrics {
 public:
  explicit Metrics(std::uint32_t expected_processes)
      : per_process_(expected_processes) {}

  void record_send(ProcessId from, Layer layer, std::size_t bytes) {
    if (from >= per_process_.size()) per_process_.resize(from + 1);
    auto& c = per_process_[from][static_cast<std::size_t>(layer)];
    ++c.messages;
    c.bytes += bytes;
    ++total_messages_;
  }

  std::uint64_t total_messages() const { return total_messages_; }

  std::uint64_t messages_sent(ProcessId p) const {
    std::uint64_t sum = 0;
    for (const auto& c : per_process_.at(p)) sum += c.messages;
    return sum;
  }

  std::uint64_t messages_sent(ProcessId p, Layer layer) const {
    return per_process_.at(p)[static_cast<std::size_t>(layer)].messages;
  }

  std::uint64_t bytes_sent(ProcessId p) const {
    std::uint64_t sum = 0;
    for (const auto& c : per_process_.at(p)) sum += c.bytes;
    return sum;
  }

  /// Max over processes of messages_sent — the paper's "per process"
  /// message-complexity measure.
  std::uint64_t max_messages_per_process() const {
    std::uint64_t best = 0;
    for (ProcessId p = 0; p < per_process_.size(); ++p)
      best = std::max(best, messages_sent(p));
    return best;
  }

  std::uint32_t num_processes() const {
    return static_cast<std::uint32_t>(per_process_.size());
  }

  // ---- crypto-work accounting (filled in by the harness after a run,
  // from the run's SignatureAuthority and the per-process verified-ack
  // memo stats; zero for protocols that use no signatures) ----

  void add_crypto(const crypto::CryptoCounters& c) { crypto_ += c; }
  void add_verifies_skipped(std::uint64_t k) { verifies_skipped_ += k; }
  const crypto::CryptoCounters& crypto_counters() const { return crypto_; }
  std::uint64_t verifies_skipped() const { return verifies_skipped_; }

  /// Adapter to the unified registry: publishes per-layer totals, the
  /// per-process message-complexity measure and the crypto counters under
  /// the same names the real-network stack uses, so sim runs and TCP runs
  /// read through one scrape. record_send stays on plain counters — the
  /// hot path pays nothing for the registry.
  void publish(obs::Registry& reg) const {
    for (std::size_t l = 0; l < kNumLayers; ++l) {
      std::uint64_t msgs = 0;
      std::uint64_t bytes = 0;
      for (const auto& per_layer : per_process_) {
        msgs += per_layer[l].messages;
        bytes += per_layer[l].bytes;
      }
      const std::string suffix =
          std::string("{layer=\"") + layer_name(static_cast<Layer>(l)) +
          "\"}";
      reg.gauge("bgla_sim_messages_total" + suffix)
          .set(static_cast<std::int64_t>(msgs));
      reg.gauge("bgla_sim_bytes_total" + suffix)
          .set(static_cast<std::int64_t>(bytes));
    }
    reg.gauge("bgla_sim_max_messages_per_process")
        .set(static_cast<std::int64_t>(max_messages_per_process()));
    obs::publish_crypto(reg, crypto_.macs_computed,
                        crypto_.verify_cache_hits,
                        crypto_.verify_cache_misses);
    reg.gauge("bgla_crypto_verifies_skipped_total")
        .set(static_cast<std::int64_t>(verifies_skipped_));
  }

 private:
  std::vector<std::array<LayerCounters, kNumLayers>> per_process_;
  std::uint64_t total_messages_ = 0;
  crypto::CryptoCounters crypto_;
  std::uint64_t verifies_skipped_ = 0;
};

}  // namespace bgla::sim
