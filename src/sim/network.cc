#include "sim/network.h"

namespace bgla::sim {

Network::Network(std::unique_ptr<DelayModel> delay, std::uint64_t seed,
                 std::uint32_t expected_processes)
    : delay_(std::move(delay)),
      rng_(seed),
      metrics_(expected_processes) {
  BGLA_CHECK(delay_ != nullptr);
}

ProcessId Network::attach(Process& p) {
  const ProcessId id = static_cast<ProcessId>(processes_.size());
  processes_.push_back(&p);
  return id;
}

void Network::detach(ProcessId id) {
  BGLA_CHECK(id < processes_.size());
  processes_[id] = nullptr;
}

void Network::send(ProcessId from, ProcessId to, MessagePtr msg) {
  BGLA_CHECK_MSG(to < processes_.size(), "send to unknown process " << to);
  BGLA_CHECK(msg != nullptr);

  Event ev;
  ev.from = from;
  ev.to = to;
  if (from == to) {
    // Local step: no network hop, depth-neutral, not metered, delivered at
    // the current instant (still through the queue for determinism).
    ev.time = now_;
    ev.depth = current_depth_;
  } else {
    metrics_.record_send(from, msg->layer(), msg->encoded().size());
    ev.time = now_ + std::max<Time>(1, delay_->delay(from, to, now_, rng_));
    ev.depth = current_depth_ + 1;
  }
  ev.msg = std::move(msg);
  enqueue(std::move(ev));
}

void Network::inject(ProcessId from, ProcessId to, MessagePtr msg, Time at) {
  BGLA_CHECK_MSG(to < processes_.size(), "inject to unknown process " << to);
  Event ev;
  ev.from = from;
  ev.to = to;
  ev.time = at;
  ev.depth = 0;
  ev.msg = std::move(msg);
  enqueue(std::move(ev));
}

void Network::enqueue(Event ev) {
  ev.seq = next_seq_++;
  queue_.push(std::move(ev));
}

RunResult Network::run(std::uint64_t max_events) {
  RunResult result;

  if (!started_) {
    started_ = true;
    // on_start hooks run at time 0, depth 0, in id order.
    for (ProcessId id = 0; id < processes_.size(); ++id) {
      if (processes_[id] == nullptr) continue;
      executing_ = id;
      current_depth_ = 0;
      processes_[id]->on_start();
    }
    executing_ = kNoProcess;
  }

  while (!queue_.empty() && !stop_ && result.events < max_events) {
    Event ev = queue_.top();
    queue_.pop();
    BGLA_CHECK(ev.time >= now_);
    now_ = ev.time;
    ++result.events;

    Process* target = processes_[ev.to];
    if (target == nullptr) continue;  // detached during the run

    if (observer_) observer_(now_, ev.from, ev.to, ev.depth, ev.msg);

    executing_ = ev.to;
    current_depth_ = ev.depth;
    target->on_message(ev.from, ev.msg);
    executing_ = kNoProcess;
    current_depth_ = 0;
  }

  result.quiescent = queue_.empty();
  result.stopped = stop_;
  result.end_time = now_;
  return result;
}

}  // namespace bgla::sim
