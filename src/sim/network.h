// Deterministic discrete-event network + process base class.
//
// Models the paper's §3 system: asynchronous authenticated reliable
// point-to-point links over a complete graph. Messages are never lost;
// per-message latency comes from a pluggable DelayModel (adversarial
// schedules included). Delivery order is deterministic: events are ordered
// by (time, sequence number), and all randomness is seeded.
//
// Causal message-delay depth: every in-flight message carries
//   depth = (depth of the message being handled when it was sent) + 1,
// with self-deliveries depth-neutral (a message to yourself is a local
// step, not a network delay). The depth observed when a protocol decides is
// exactly the "number of message delays" of Theorems 3 and 8 — maximal over
// the causal chain that produced the decision, independent of the schedule.
#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "net/transport.h"
#include "sim/delay.h"
#include "sim/message.h"
#include "sim/metrics.h"
#include "util/check.h"
#include "util/ids.h"
#include "util/rng.h"

namespace bgla::sim {

class Network;

/// Base class for every simulated participant (protocol processes,
/// Byzantine strategies, RSM clients). Endpoints are transport-agnostic:
/// the same class runs under the simulator or net::SocketTransport.
using Process = net::Endpoint;

struct RunResult {
  bool quiescent = false;   // event queue drained
  bool stopped = false;     // a process requested stop
  std::uint64_t events = 0; // deliveries performed
  Time end_time = 0;
};

class Network final : public net::Transport {
 public:
  Network(std::unique_ptr<DelayModel> delay, std::uint64_t seed,
          std::uint32_t expected_processes);

  /// Registration (done by Process's constructor/destructor). Ids are
  /// assigned in attachment order.
  ProcessId attach(Process& p) override;
  void detach(ProcessId id) override;

  std::uint32_t num_attached() const {
    return static_cast<std::uint32_t>(processes_.size());
  }

  /// Sends msg from -> to. `from` must be the currently executing process
  /// (authenticated channels); enforced for deliveries.
  void send(ProcessId from, ProcessId to, MessagePtr msg) override;

  /// Schedules an external event (e.g. an RSM client operation arriving
  /// from outside the replica group) at absolute time `at`, depth 0.
  void inject(ProcessId from, ProcessId to, MessagePtr msg, Time at);

  /// Runs the event loop until quiescence, stop request, or `max_events`.
  RunResult run(std::uint64_t max_events = 50'000'000);

  void request_stop() override { stop_ = true; }

  Time now() const override { return now_; }

  /// Depth of the message currently being handled (0 outside handlers).
  std::uint64_t current_depth() const override { return current_depth_; }

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  Rng& rng() { return rng_; }

  /// Optional per-delivery observer (tracing, failure injection in tests).
  using Observer =
      std::function<void(Time, ProcessId from, ProcessId to, std::uint64_t depth,
                         const MessagePtr&)>;
  void set_observer(Observer obs) { observer_ = std::move(obs); }

 private:
  struct Event {
    Time time = 0;
    std::uint64_t seq = 0;
    ProcessId from = kNoProcess;
    ProcessId to = kNoProcess;
    MessagePtr msg;
    std::uint64_t depth = 0;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void enqueue(Event ev);

  std::unique_ptr<DelayModel> delay_;
  Rng rng_;
  Metrics metrics_;
  std::vector<Process*> processes_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::uint64_t next_seq_ = 0;
  Time now_ = 0;
  std::uint64_t current_depth_ = 0;
  ProcessId executing_ = kNoProcess;
  bool stop_ = false;
  bool started_ = false;
  Observer observer_;
};

}  // namespace bgla::sim
