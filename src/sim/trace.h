// Human-readable message tracing.
//
// Installs itself as the network's delivery observer and renders each
// delivery as one line:
//
//   t=   142 d=5   p1 -> p3   ACK_REQ(ts=2,{(100),(101)})
//
// Used by the bgla_run CLI (--trace) and by debugging sessions; the layer
// filter keeps reliable-broadcast internals out of the way unless asked.
#pragma once

#include <iomanip>
#include <iostream>

#include "sim/network.h"

namespace bgla::sim {

class Tracer {
 public:
  struct Options {
    /// Include Layer::kBroadcast internals (SEND/ECHO/READY) — noisy.
    bool include_broadcast = false;
    /// Stop printing after this many lines (the run continues).
    std::uint64_t max_lines = 10'000;
    std::ostream* out = &std::clog;
  };

  Tracer(Network& net, Options options) : options_(options) {
    net.set_observer([this](Time t, ProcessId from, ProcessId to,
                            std::uint64_t depth, const MessagePtr& msg) {
      observe(t, from, to, depth, msg);
    });
  }

  explicit Tracer(Network& net) : Tracer(net, Options()) {}

  std::uint64_t lines() const { return lines_; }
  /// Lines dropped because max_lines was reached.
  std::uint64_t suppressed() const { return suppressed_; }
  /// Broadcast-layer lines dropped by the layer filter — counted
  /// separately so a filtered run doesn't report "nothing suppressed"
  /// while broadcast traffic was being dropped.
  std::uint64_t suppressed_broadcast() const {
    return suppressed_broadcast_;
  }

 private:
  void observe(Time t, ProcessId from, ProcessId to, std::uint64_t depth,
               const MessagePtr& msg) {
    if (!options_.include_broadcast &&
        msg->layer() == Layer::kBroadcast) {
      ++suppressed_broadcast_;
      return;
    }
    if (lines_ >= options_.max_lines) {
      ++suppressed_;
      return;
    }
    ++lines_;
    auto& os = *options_.out;
    os << "t=" << std::setw(6) << t << " d=" << std::setw(2) << depth
       << "  p" << from << " -> p" << to << "  " << msg->to_string()
       << "\n";
  }

  Options options_;
  std::uint64_t lines_ = 0;
  std::uint64_t suppressed_ = 0;
  std::uint64_t suppressed_broadcast_ = 0;
};

}  // namespace bgla::sim
