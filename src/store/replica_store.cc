#include "store/replica_store.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>

#include "util/check.h"
#include "util/codec.h"

namespace bgla::store {

namespace {

std::string join(const std::string& dir, const char* name) {
  return dir + "/" + name;
}

void ensure_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0) return;
  BGLA_CHECK_MSG(errno == EEXIST,
                 "mkdir(" << dir << "): " << std::strerror(errno));
}

}  // namespace

ReplicaStore::ReplicaStore(std::string dir, std::uint32_t compact_every)
    : dir_(std::move(dir)), compact_every_(compact_every) {
  BGLA_CHECK_MSG(compact_every_ > 0, "compact_every must be positive");
  ensure_dir(dir_);

  // Incarnation: read, bump, persist — before anything else, so even a
  // recovery that aborts later has already burned the number.
  const std::string meta = join(dir_, "meta");
  SnapshotRead mr = read_snapshot(meta);
  if (mr.found && mr.valid) {
    try {
      Decoder dec{BytesView(mr.payload)};
      incarnation_ = dec.get_u64();
      BGLA_CHECK(dec.done());
    } catch (const CheckError&) {
      notes_.push_back("meta " + meta + ": undecodable payload; reset");
      incarnation_ = 0;
    }
  } else if (mr.found) {
    notes_.push_back(mr.detail);
    clean_ = false;
  }
  ++incarnation_;
  {
    Encoder enc;
    enc.put_u64(incarnation_);
    write_snapshot(meta, BytesView(enc.bytes()));
  }

  SnapshotRead sr = read_snapshot(join(dir_, "snapshot.bin"));
  if (sr.found && sr.valid) {
    snapshot_ = std::move(sr.payload);
    found_ = true;
  } else if (sr.found) {
    notes_.push_back(sr.detail);
    clean_ = false;
  }

  WalRecovery wr = recover_wal(join(dir_, "wal.log"));
  if (!wr.detail.empty()) notes_.push_back(wr.detail);
  if (wr.quarantined) clean_ = false;
  if (!wr.records.empty()) found_ = true;
  wal_records_ = std::move(wr.records);

  wal_.open(join(dir_, "wal.log"));
}

bool ReplicaStore::persist(BytesView state) {
  std::lock_guard<std::mutex> lk(mu_);
  ++appends_since_compact_;
  const bool over_bytes =
      max_wal_bytes_ != 0 &&
      wal_bytes_since_compact_ + state.size() > max_wal_bytes_;
  if (appends_since_compact_ >= compact_every_ || over_bytes) {
    write_snapshot(join(dir_, "snapshot.bin"), state);
    wal_.reset_to_empty();
    appends_since_compact_ = 0;
    wal_bytes_since_compact_ = 0;
    return true;
  }
  wal_.append(state);
  wal_bytes_since_compact_ += state.size();
  return false;
}

void ReplicaStore::compact(BytesView state) {
  std::lock_guard<std::mutex> lk(mu_);
  write_snapshot(join(dir_, "snapshot.bin"), state);
  wal_.reset_to_empty();
  appends_since_compact_ = 0;
  wal_bytes_since_compact_ = 0;
}

void ReplicaStore::set_max_wal_bytes(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  max_wal_bytes_ = bytes;
}

bool ReplicaStore::due_for_compact(std::size_t next_record_bytes) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (appends_since_compact_ + 1 >= compact_every_) return true;
  return max_wal_bytes_ != 0 &&
         wal_bytes_since_compact_ + next_record_bytes > max_wal_bytes_;
}

Bytes ReplicaStore::peek_latest_state(const std::string& dir,
                                      std::vector<std::string>* notes) {
  WalRecovery wr = recover_wal(join(dir, "wal.log"));
  if (notes != nullptr && !wr.detail.empty()) notes->push_back(wr.detail);
  if (!wr.records.empty()) return wr.records.back();
  SnapshotRead sr = read_snapshot(join(dir, "snapshot.bin"));
  if (notes != nullptr && sr.found && !sr.valid) {
    notes->push_back(sr.detail);
  }
  if (sr.found && sr.valid) return sr.payload;
  return {};
}

}  // namespace bgla::store
