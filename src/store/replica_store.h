// Per-replica durable state directory: snapshot + WAL + incarnation.
//
// Layout under one data dir (one replica each):
//   meta          snapshot-format file holding the incarnation counter
//   snapshot.bin  latest full-state checkpoint (atomic replace)
//   wal.log       full-state records appended since that checkpoint
//
// The protocols in this repository keep *join-monotone* state: every
// durable transition (submit, accept, decide) only grows it. The store
// therefore logs one full export per transition and replays by importing
// records in order — the last intact record wins, and a truncated torn
// tail costs at most the newest transitions, which the rejoin exchange
// re-elicits from peers. Every `compact_every` appends the WAL is folded
// into the snapshot and reset, so disk use tracks state size, not uptime.
//
// The incarnation counter bumps on every open. The transport embeds it in
// its connection HELLOs so peers can tell a restarted sender (reset its
// dedup watermark — the new process restarts sequence numbers at 0) from
// a mere reconnect of the old one (keep the watermark).
//
// Corruption policy is inherited from wal.h / snapshot.h: torn tails are
// truncated silently-but-reported, anything else is quarantined loudly.
// clean() is false iff something was quarantined; callers decide whether
// to proceed on the surviving prefix or abort.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "store/snapshot.h"
#include "store/wal.h"
#include "util/bytes.h"

namespace bgla::store {

class ReplicaStore {
 public:
  /// Opens (creating) the data dir, bumps + persists the incarnation,
  /// reads the snapshot and recovers the WAL. Throws CheckError on I/O
  /// failure; content corruption is reported, never thrown.
  explicit ReplicaStore(std::string dir, std::uint32_t compact_every = 64);

  ReplicaStore(const ReplicaStore&) = delete;
  ReplicaStore& operator=(const ReplicaStore&) = delete;

  // ---- recovered state (fixed at construction) ----
  /// True iff any prior state survived on disk.
  bool found() const { return found_; }
  const Bytes& snapshot() const { return snapshot_; }
  const std::vector<Bytes>& wal_records() const { return wal_records_; }
  /// Repair log: torn-tail truncations and quarantine reports.
  const std::vector<std::string>& notes() const { return notes_; }
  /// False iff recovery quarantined corrupt data (loud failure).
  bool clean() const { return clean_; }
  std::uint64_t incarnation() const { return incarnation_; }
  const std::string& dir() const { return dir_; }

  // ---- persistence (thread-safe; called from the persist hook) ----
  /// Logs one full-state record; every `compact_every` appends — or once
  /// the WAL accumulates `max_wal_bytes` of payload, when set — it folds
  /// the state into the snapshot and resets the WAL. Returns true iff
  /// this call folded.
  bool persist(BytesView state);
  /// Forces the fold immediately.
  void compact(BytesView state);

  /// Byte-based fold policy (0 = disabled, the default): fold as soon as
  /// WAL payload since the last fold exceeds this, regardless of the
  /// append counter. Lets hosts bound disk growth by state size — the
  /// lever the decided-prefix compaction path uses.
  void set_max_wal_bytes(std::uint64_t bytes);
  /// True iff the *next* persist of a `next_record_bytes` record would
  /// fold. Hosts that shrink state before snapshotting (decided-prefix
  /// compaction) check this, fold the process state, and call compact()
  /// with the smaller blob instead of persist().
  bool due_for_compact(std::size_t next_record_bytes) const;

  /// Reads a data dir without opening it for writing (no incarnation
  /// bump, no repairs beyond WAL recovery): the latest intact full-state
  /// record, or empty if none. Used by the nemesis checker pass.
  static Bytes peek_latest_state(const std::string& dir,
                                 std::vector<std::string>* notes = nullptr);

 private:
  std::string dir_;
  std::uint32_t compact_every_;
  std::uint64_t incarnation_ = 0;
  Bytes snapshot_;
  std::vector<Bytes> wal_records_;
  std::vector<std::string> notes_;
  bool clean_ = true;
  bool found_ = false;

  mutable std::mutex mu_;
  WalWriter wal_;
  std::uint32_t appends_since_compact_ = 0;
  std::uint64_t max_wal_bytes_ = 0;  // 0: count-only policy
  std::uint64_t wal_bytes_since_compact_ = 0;
};

}  // namespace bgla::store
