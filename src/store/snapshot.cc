#include "store/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "crypto/sha256.h"
#include "util/check.h"

namespace bgla::store {

namespace {

constexpr char kMagic[8] = {'B', 'G', 'L', 'A', 'S', 'N', 'P', '1'};
constexpr std::size_t kMagicLen = 8;
constexpr std::size_t kHeaderLen = kMagicLen + 4 + 8;

std::string quarantine(const std::string& path) {
  std::string qpath = path + ".quarantine";
  for (int k = 1; ::access(qpath.c_str(), F_OK) == 0; ++k) {
    qpath = path + ".quarantine." + std::to_string(k);
  }
  BGLA_CHECK_MSG(std::rename(path.c_str(), qpath.c_str()) == 0,
                 "rename(" << path << "): " << std::strerror(errno));
  return qpath;
}

}  // namespace

void write_snapshot(const std::string& path, BytesView payload) {
  Bytes file(kHeaderLen + payload.size());
  std::memcpy(file.data(), kMagic, kMagicLen);
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  file[kMagicLen + 0] = static_cast<std::uint8_t>(len >> 24);
  file[kMagicLen + 1] = static_cast<std::uint8_t>(len >> 16);
  file[kMagicLen + 2] = static_cast<std::uint8_t>(len >> 8);
  file[kMagicLen + 3] = static_cast<std::uint8_t>(len);
  const crypto::Digest d = crypto::Sha256::hash(payload);
  std::memcpy(file.data() + kMagicLen + 4, d.data(), 8);
  std::memcpy(file.data() + kHeaderLen, payload.data(), payload.size());

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  BGLA_CHECK_MSG(fd >= 0, "open(" << tmp << "): " << std::strerror(errno));
  std::size_t off = 0;
  while (off < file.size()) {
    const ssize_t n = ::write(fd, file.data() + off, file.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      BGLA_CHECK_MSG(false, "write(" << tmp << "): " << std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  ::fsync(fd);
  ::close(fd);
  BGLA_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                 "rename(" << tmp << " -> " << path
                           << "): " << std::strerror(errno));
}

SnapshotRead read_snapshot(const std::string& path) {
  SnapshotRead out;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    BGLA_CHECK_MSG(errno == ENOENT,
                   "open(" << path << "): " << std::strerror(errno));
    return out;
  }
  out.found = true;
  Bytes data;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      BGLA_CHECK_MSG(false,
                     "read(" << path << "): " << std::strerror(errno));
    }
    data.insert(data.end(), buf, buf + n);
  }
  ::close(fd);

  const auto reject = [&](const std::string& why) {
    const std::string q = quarantine(path);
    std::ostringstream os;
    os << "snapshot " << path << ": " << why << "; moved to " << q;
    out.detail = os.str();
    return out;
  };

  if (data.size() < kHeaderLen ||
      std::memcmp(data.data(), kMagic, kMagicLen) != 0) {
    return reject("bad magic or truncated header");
  }
  const std::uint32_t len =
      (static_cast<std::uint32_t>(data[kMagicLen]) << 24) |
      (static_cast<std::uint32_t>(data[kMagicLen + 1]) << 16) |
      (static_cast<std::uint32_t>(data[kMagicLen + 2]) << 8) |
      static_cast<std::uint32_t>(data[kMagicLen + 3]);
  if (data.size() - kHeaderLen != len) {
    return reject("length field does not match file size");
  }
  const crypto::Digest d =
      crypto::Sha256::hash(BytesView(data.data() + kHeaderLen, len));
  if (std::memcmp(d.data(), data.data() + kMagicLen + 4, 8) != 0) {
    return reject("checksum mismatch");
  }
  out.valid = true;
  out.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(kHeaderLen),
                     data.end());
  return out;
}

}  // namespace bgla::store
