// Atomic, checksummed snapshot files (the checkpoint half of the store:
// a snapshot folds a WAL prefix into one full-state record).
//
// Layout: 8-byte magic "BGLASNP1" || u32 big-endian payload length ||
// 8-byte checksum (first 8 bytes of SHA-256(payload)) || payload.
//
// Writes are crash-atomic: the bytes go to `<path>.tmp`, are fsynced,
// and the tmp file is renamed over the target — a reader sees either the
// old snapshot or the new one, never a mix. A snapshot that fails its
// checksum (or magic, or length) on read is moved to `<path>.quarantine`
// and reported; callers then fall back to the WAL alone.
#pragma once

#include <string>

#include "util/bytes.h"

namespace bgla::store {

struct SnapshotRead {
  bool found = false;   ///< a snapshot file existed
  bool valid = false;   ///< ...and passed magic + length + checksum
  Bytes payload;
  std::string detail;   ///< set when found && !valid (quarantine report)
};

/// Atomically replaces the snapshot at `path`. Throws CheckError on I/O
/// failure.
void write_snapshot(const std::string& path, BytesView payload);

/// Reads and verifies the snapshot; a corrupt file is quarantined in
/// place (renamed aside) and reported via `detail`. Throws CheckError
/// only on I/O errors.
SnapshotRead read_snapshot(const std::string& path);

}  // namespace bgla::store
