#include "store/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "crypto/sha256.h"
#include "util/check.h"

namespace bgla::store {

namespace {

constexpr char kMagic[8] = {'B', 'G', 'L', 'A', 'W', 'A', 'L', '1'};
constexpr std::size_t kMagicLen = 8;
constexpr std::size_t kHeaderLen = 4 + 8;  // u32 length + 8-byte checksum

void checksum8(BytesView payload, std::uint8_t out[8]) {
  const crypto::Digest d = crypto::Sha256::hash(payload);
  std::memcpy(out, d.data(), 8);
}

Bytes read_whole_file(const std::string& path, bool* exists) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    BGLA_CHECK_MSG(errno == ENOENT,
                   "wal open(" << path << "): " << std::strerror(errno));
    *exists = false;
    return {};
  }
  *exists = true;
  Bytes data;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      BGLA_CHECK_MSG(false,
                     "wal read(" << path << "): " << std::strerror(errno));
    }
    data.insert(data.end(), buf, buf + n);
  }
  ::close(fd);
  return data;
}

void write_whole_file(const std::string& path, BytesView data) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  BGLA_CHECK_MSG(fd >= 0,
                 "open(" << path << "): " << std::strerror(errno));
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      BGLA_CHECK_MSG(false,
                     "write(" << path << "): " << std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  ::fsync(fd);
  ::close(fd);
}

void truncate_file(const std::string& path, std::uint64_t size) {
  BGLA_CHECK_MSG(::truncate(path.c_str(), static_cast<off_t>(size)) == 0,
                 "truncate(" << path << "): " << std::strerror(errno));
}

/// Moves the byte suffix [from, end) of `path` into a fresh quarantine
/// file next to it and truncates the original. Returns the quarantine
/// path.
std::string quarantine_suffix(const std::string& path, const Bytes& data,
                              std::size_t from) {
  // Never clobber evidence from an earlier incident.
  std::string qpath = path + ".quarantine";
  for (int k = 1; ::access(qpath.c_str(), F_OK) == 0; ++k) {
    qpath = path + ".quarantine." + std::to_string(k);
  }
  write_whole_file(
      qpath, BytesView(data.data() + from, data.size() - from));
  truncate_file(path, from);
  return qpath;
}

}  // namespace

WalRecovery recover_wal(const std::string& path) {
  WalRecovery out;
  bool exists = false;
  const Bytes data = read_whole_file(path, &exists);
  if (!exists || data.empty()) return out;  // no log yet: clean and empty

  if (data.size() < kMagicLen ||
      std::memcmp(data.data(), kMagic, kMagicLen) != 0) {
    const std::string q = quarantine_suffix(path, data, 0);
    out.quarantined = true;
    out.truncated_bytes = data.size();
    out.detail = "wal " + path + ": bad magic; whole file moved to " + q;
    return out;
  }

  std::size_t pos = kMagicLen;
  while (pos < data.size()) {
    if (data.size() - pos < kHeaderLen) break;  // torn mid-header
    const std::uint32_t len = (static_cast<std::uint32_t>(data[pos]) << 24) |
                              (static_cast<std::uint32_t>(data[pos + 1]) << 16) |
                              (static_cast<std::uint32_t>(data[pos + 2]) << 8) |
                              static_cast<std::uint32_t>(data[pos + 3]);
    if (len > kMaxWalRecord) {
      // Length bomb: a complete header asking for an absurd payload.
      const std::string q = quarantine_suffix(path, data, pos);
      out.quarantined = true;
      out.truncated_bytes = data.size() - pos;
      std::ostringstream os;
      os << "wal " << path << ": record at offset " << pos
         << " claims length " << len << " > " << kMaxWalRecord
         << "; suffix moved to " << q;
      out.detail = os.str();
      return out;
    }
    if (data.size() - pos - kHeaderLen < len) break;  // torn mid-payload
    const std::uint8_t* payload = data.data() + pos + kHeaderLen;
    std::uint8_t want[8];
    checksum8(BytesView(payload, len), want);
    if (std::memcmp(want, data.data() + pos + 4, 8) != 0) {
      const std::string q = quarantine_suffix(path, data, pos);
      out.quarantined = true;
      out.truncated_bytes = data.size() - pos;
      std::ostringstream os;
      os << "wal " << path << ": checksum mismatch at offset " << pos
         << "; suffix moved to " << q;
      out.detail = os.str();
      return out;
    }
    out.records.emplace_back(payload, payload + len);
    pos += kHeaderLen + len;
  }

  if (pos < data.size()) {
    // Torn tail: normal crash debris — truncate and report.
    out.torn_tail = true;
    out.truncated_bytes = data.size() - pos;
    truncate_file(path, pos);
    std::ostringstream os;
    os << "wal " << path << ": torn tail of " << out.truncated_bytes
       << " byte(s) truncated at offset " << pos;
    out.detail = os.str();
  }
  return out;
}

WalWriter::~WalWriter() { close(); }

void WalWriter::open(const std::string& path) {
  BGLA_CHECK(fd_ < 0);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  BGLA_CHECK_MSG(fd_ >= 0,
                 "wal open(" << path << "): " << std::strerror(errno));
  path_ = path;
  struct stat st{};
  BGLA_CHECK(::fstat(fd_, &st) == 0);
  if (st.st_size == 0) {
    [[maybe_unused]] ssize_t r = ::write(fd_, kMagic, kMagicLen);
    BGLA_CHECK_MSG(r == static_cast<ssize_t>(kMagicLen),
                   "wal magic write failed: " << std::strerror(errno));
  }
}

void WalWriter::append(BytesView payload, bool sync) {
  BGLA_CHECK(fd_ >= 0);
  BGLA_CHECK_MSG(payload.size() <= kMaxWalRecord,
                 "wal record too large: " << payload.size());
  Bytes rec(kHeaderLen + payload.size());
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  rec[0] = static_cast<std::uint8_t>(len >> 24);
  rec[1] = static_cast<std::uint8_t>(len >> 16);
  rec[2] = static_cast<std::uint8_t>(len >> 8);
  rec[3] = static_cast<std::uint8_t>(len);
  checksum8(payload, rec.data() + 4);
  std::memcpy(rec.data() + kHeaderLen, payload.data(), payload.size());
  std::size_t off = 0;
  while (off < rec.size()) {
    const ssize_t n = ::write(fd_, rec.data() + off, rec.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      BGLA_CHECK_MSG(false,
                     "wal append(" << path_
                                   << "): " << std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  if (sync) ::fsync(fd_);
}

void WalWriter::reset_to_empty() {
  BGLA_CHECK(fd_ >= 0);
  BGLA_CHECK_MSG(::ftruncate(fd_, 0) == 0,
                 "wal truncate(" << path_ << "): " << std::strerror(errno));
  [[maybe_unused]] ssize_t r = ::write(fd_, kMagic, kMagicLen);
  BGLA_CHECK_MSG(r == static_cast<ssize_t>(kMagicLen),
                 "wal magic rewrite failed: " << std::strerror(errno));
  ::fsync(fd_);
}

void WalWriter::close() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

std::string make_temp_dir(const std::string& prefix) {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = (base != nullptr && *base != '\0') ? base : "/tmp";
  if (tmpl.back() != '/') tmpl += '/';
  tmpl += prefix + "XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  BGLA_CHECK_MSG(::mkdtemp(buf.data()) != nullptr,
                 "mkdtemp(" << tmpl << "): " << std::strerror(errno));
  return std::string(buf.data());
}

}  // namespace bgla::store
