// Append-only, checksummed write-ahead log for replica-critical state.
//
// File layout: an 8-byte magic ("BGLAWAL1"), then records back to back:
//   u32 big-endian payload length || 8-byte checksum || payload
// The checksum is the first 8 bytes of SHA-256(payload) — strong enough to
// catch torn writes and bit rot, cheap enough to pay on every append.
//
// Corruption policy (the contract every caller and fuzz test relies on):
//   - A *torn tail* — the file ends mid-header or mid-payload, the normal
//     result of a crash during append — is truncated away. Every complete,
//     checksummed record before it is recovered; the loss is reported in
//     WalRecovery::truncated_bytes, never silent.
//   - A *corrupt record* — complete on disk but failing its checksum, or
//     carrying an absurd length (a record-length bomb) — poisons everything
//     after it: the suffix from the bad record on is moved to
//     `<path>.quarantine` for post-mortem, the good prefix is kept, and
//     WalRecovery::quarantined + detail report the loud failure.
//   - A wrong or missing magic on a non-empty file quarantines the whole
//     file.
// Recovery never throws on file *content* (only on I/O failures like an
// unwritable directory) and never crashes: arbitrary bytes in the log must
// yield clean errors, not UB.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace bgla::store {

/// Records larger than this are treated as corruption (length bomb), not
/// as data — no legitimate replica state record approaches it.
constexpr std::uint32_t kMaxWalRecord = 1u << 26;

struct WalRecovery {
  std::vector<Bytes> records;  ///< every intact record, in append order
  bool torn_tail = false;      ///< an incomplete tail was truncated
  bool quarantined = false;    ///< a corrupt suffix was moved aside
  std::uint64_t truncated_bytes = 0;  ///< bytes dropped from the tail
  std::string detail;          ///< human-readable account of any repair

  /// True iff nothing needed quarantining (torn tails are normal
  /// crash debris and do not fail recovery).
  bool clean() const { return !quarantined; }
};

/// Scans `path`, applies the corruption policy above (truncating /
/// quarantining in place), and returns the surviving records. A missing
/// file is an empty, clean log. Throws CheckError only on I/O errors.
WalRecovery recover_wal(const std::string& path);

/// Appender. Open an existing log only after recover_wal() has repaired
/// it — the writer trusts the file to end on a record boundary.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens (creating if needed) the log and seeks to its end. Throws
  /// CheckError on I/O failure.
  void open(const std::string& path);
  bool is_open() const { return fd_ >= 0; }

  /// Appends one record and flushes it to the OS; with `sync`, also
  /// fsyncs so the record survives power loss, not just process death.
  void append(BytesView payload, bool sync = false);

  /// Truncates the log to empty (after its contents were folded into a
  /// snapshot).
  void reset_to_empty();

  void close();

 private:
  int fd_ = -1;
  std::string path_;
};

/// Creates a unique temporary directory ("<prefix>XXXXXX" under $TMPDIR
/// or /tmp) — shared by tests, benches and the nemesis driver.
std::string make_temp_dir(const std::string& prefix);

}  // namespace bgla::store
