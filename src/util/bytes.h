// Byte-buffer alias and hex helpers shared by codec, crypto and digests.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bgla {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Lowercase hex encoding of a byte span.
std::string to_hex(BytesView data);

/// Parses lowercase/uppercase hex; throws CheckError on odd length or
/// non-hex characters.
Bytes from_hex(const std::string& hex);

/// Bytes of a std::string literal (for tests and tags).
Bytes bytes_of(const std::string& s);

}  // namespace bgla
