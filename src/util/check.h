// Lightweight precondition / invariant checking.
//
// BGLA_CHECK is always on (tests and protocol invariants rely on it); it
// throws bgla::CheckError so a violated invariant inside a simulated run
// surfaces as a test failure instead of UB.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bgla {

class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace bgla

#define BGLA_CHECK(expr)                                                \
  do {                                                                  \
    if (!(expr))                                                        \
      ::bgla::detail::check_failed(#expr, __FILE__, __LINE__, {});      \
  } while (false)

#define BGLA_CHECK_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream bgla_os_;                                      \
      bgla_os_ << msg;                                                  \
      ::bgla::detail::check_failed(#expr, __FILE__, __LINE__,           \
                                   bgla_os_.str());                     \
    }                                                                   \
  } while (false)
