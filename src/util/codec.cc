#include "util/codec.h"

#include "util/check.h"

namespace bgla {

void Encoder::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Encoder::put_bytes(BytesView data) {
  put_varint(data.size());
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void Encoder::put_string(const std::string& s) {
  put_varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

std::uint8_t Decoder::get_u8() {
  BGLA_CHECK_MSG(pos_ < data_.size(), "decoder underrun");
  return data_[pos_++];
}

std::uint32_t Decoder::get_u32() {
  const std::uint64_t v = get_varint();
  BGLA_CHECK_MSG(v <= 0xffffffffu, "u32 overflow in decode");
  return static_cast<std::uint32_t>(v);
}

std::uint64_t Decoder::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    BGLA_CHECK_MSG(pos_ < data_.size(), "decoder underrun in varint");
    const std::uint8_t b = data_[pos_++];
    BGLA_CHECK_MSG(shift < 64, "varint too long");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Bytes Decoder::get_bytes() {
  const std::uint64_t len = get_varint();
  BGLA_CHECK_MSG(len <= remaining(), "byte string length exceeds buffer");
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

std::string Decoder::get_string() {
  const Bytes b = get_bytes();
  return std::string(b.begin(), b.end());
}

}  // namespace bgla
