// Canonical binary encoding used for message digests and signatures.
//
// Every protocol message and lattice element has a canonical encoding so
// that (a) Bracha echo-matching can compare payloads by digest and (b) the
// signature-based algorithms of paper §8 sign well-defined byte strings.
//
// Format: unsigned LEB128 varints for integers, length-prefixed byte
// strings, and explicit list counts. Encoding is deterministic; containers
// must be iterated in a canonical (sorted) order by the caller.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace bgla {

class Encoder {
 public:
  Encoder() = default;

  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u32(std::uint32_t v) { put_varint(v); }
  void put_u64(std::uint64_t v) { put_varint(v); }
  void put_varint(std::uint64_t v);
  void put_bool(bool b) { put_u8(b ? 1 : 0); }
  void put_bytes(BytesView data);
  void put_string(const std::string& s);

  /// Appends raw bytes with no length prefix — for splicing an already
  /// canonically encoded fragment (e.g. a cached Elem encoding) into a
  /// larger encoding byte-identically to encoding it in place.
  void put_raw(BytesView data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

class Decoder {
 public:
  explicit Decoder(BytesView data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64() { return get_varint(); }
  std::uint64_t get_varint();
  bool get_bool() { return get_u8() != 0; }
  Bytes get_bytes();
  std::string get_string();

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  /// View of the not-yet-consumed suffix (valid while the underlying
  /// buffer lives) — for splicing an opaque tail through a re-encoder.
  BytesView rest() const { return data_.subspan(pos_); }
  void skip_rest() { pos_ = data_.size(); }

 private:
  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace bgla
