// Strict command-line flag parsing shared by the tools and benches.
//
// Every binary in this repository takes `--name value` / `--name` style
// flags; before this header each re-implemented the loop (and three of
// them carried identical copies of a digits-only `parse_count`, because
// std::stoul accepts junk suffixes and throws on garbage — a bad CLI value
// should print usage, not terminate()). FlagSet centralises that policy:
//
//   util::FlagSet flags("bench_sbs");
//   flags.add_size("jobs", &jobs, "worker threads (default: cores)");
//   flags.add_string("json", &json_path, "write BENCH JSON to this path");
//   flags.parse_or_exit(argc, argv);   // handles --help, exits 2 on error
//
// Numeric values are digits-only (doubles: digits with one optional dot);
// anything else — empty strings, trailing junk, overflow — is a usage
// error. Unknown flags and missing values are usage errors too.
#pragma once

#include <cstdint>
#include <functional>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace bgla::util {

/// Digits-only unsigned parser; rejects empty input, any non-digit
/// character, and values that overflow 64 bits.
inline bool parse_u64_strict(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    if (v > (std::numeric_limits<std::uint64_t>::max() - d) / 10) {
      return false;
    }
    v = v * 10 + d;
  }
  *out = v;
  return true;
}

/// Strict non-negative decimal: digits with at most one '.', e.g. "0.05".
inline bool parse_double_strict(const std::string& s, double* out) {
  if (s.empty() || s == ".") return false;
  bool seen_dot = false;
  for (const char c : s) {
    if (c == '.') {
      if (seen_dot) return false;
      seen_dot = true;
    } else if (c < '0' || c > '9') {
      return false;
    }
  }
  *out = std::stod(s);
  return true;
}

class FlagSet {
 public:
  explicit FlagSet(std::string program, std::string summary = {})
      : program_(std::move(program)), summary_(std::move(summary)) {}

  void add_string(const std::string& name, std::string* target,
                  const std::string& help) {
    add(name, true, help, [target](const std::string& v) {
      *target = v;
      return true;
    });
  }

  /// Repeatable: every `--name V` occurrence appends to *target.
  void add_string_list(const std::string& name,
                       std::vector<std::string>* target,
                       const std::string& help) {
    add(name, true, help, [target](const std::string& v) {
      target->push_back(v);
      return true;
    });
  }

  void add_u32(const std::string& name, std::uint32_t* target,
               const std::string& help) {
    add(name, true, help, [target](const std::string& v) {
      std::uint64_t u = 0;
      if (!parse_u64_strict(v, &u) ||
          u > std::numeric_limits<std::uint32_t>::max()) {
        return false;
      }
      *target = static_cast<std::uint32_t>(u);
      return true;
    });
  }

  void add_u64(const std::string& name, std::uint64_t* target,
               const std::string& help) {
    add(name, true, help,
        [target](const std::string& v) { return parse_u64_strict(v, target); });
  }

  void add_size(const std::string& name, std::size_t* target,
                const std::string& help) {
    add(name, true, help, [target](const std::string& v) {
      std::uint64_t u = 0;
      if (!parse_u64_strict(v, &u) ||
          u > std::numeric_limits<std::size_t>::max()) {
        return false;
      }
      *target = static_cast<std::size_t>(u);
      return true;
    });
  }

  void add_double(const std::string& name, double* target,
                  const std::string& help) {
    add(name, true, help, [target](const std::string& v) {
      return parse_double_strict(v, target);
    });
  }

  /// Presence flag: `--name` sets *target to true, takes no value.
  void add_bool(const std::string& name, bool* target,
                const std::string& help) {
    add(name, false, help, [target](const std::string&) {
      *target = true;
      return true;
    });
  }

  std::string usage() const {
    std::ostringstream os;
    os << "usage: " << program_ << " [options]";
    if (!summary_.empty()) os << "\n" << summary_;
    os << "\n";
    for (const Flag& f : flags_) {
      std::string head = "  --" + f.name + (f.takes_value ? " V" : "");
      os << head;
      for (std::size_t i = head.size(); i < 22; ++i) os << ' ';
      os << " " << f.help << "\n";
    }
    return os.str();
  }

  /// Parses argv; on any error prints the message and usage to `err` and
  /// returns false. `--help`/`-h` print usage to stdout and return false
  /// with *help_requested (if given) set.
  bool parse(int argc, char** argv, std::ostream& err = std::cerr,
             bool* help_requested = nullptr) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        if (help_requested != nullptr) *help_requested = true;
        std::cout << usage();
        return false;
      }
      Flag* flag = nullptr;
      if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
        for (Flag& f : flags_) {
          if (arg.compare(2, std::string::npos, f.name) == 0) {
            flag = &f;
            break;
          }
        }
      }
      if (flag == nullptr) {
        err << "error: unknown option '" << arg << "'\n\n" << usage();
        return false;
      }
      std::string value;
      if (flag->takes_value) {
        if (i + 1 >= argc) {
          err << "error: missing value for --" << flag->name << "\n\n"
              << usage();
          return false;
        }
        value = argv[++i];
      }
      if (!flag->set(value)) {
        err << "error: bad value '" << value << "' for --" << flag->name
            << "\n\n"
            << usage();
        return false;
      }
    }
    return true;
  }

  /// parse(), exiting 0 on --help and 2 on any parse error.
  void parse_or_exit(int argc, char** argv) {
    bool help = false;
    if (!parse(argc, argv, std::cerr, &help)) std::exit(help ? 0 : 2);
  }

  /// For post-parse validation (enum values etc.): print and exit 2.
  [[noreturn]] void fail(const std::string& msg) const {
    std::cerr << "error: " << msg << "\n\n" << usage();
    std::exit(2);
  }

 private:
  struct Flag {
    std::string name;
    bool takes_value = true;
    std::string help;
    std::function<bool(const std::string&)> set;
  };

  void add(const std::string& name, bool takes_value, const std::string& help,
           std::function<bool(const std::string&)> set) {
    flags_.push_back(Flag{name, takes_value, help, std::move(set)});
  }

  std::string program_;
  std::string summary_;
  std::vector<Flag> flags_;
};

}  // namespace bgla::util
