// Deterministic, platform-stable hashing for routing decisions.
//
// Shard routing (src/shard/) must map the same key to the same shard on
// every node of a deployment AND on every platform a transcript is
// replayed on — std::hash makes no such promise (its values legitimately
// differ across standard libraries and even process runs), which would
// break the byte-identical golden/seeded transcripts the test suite pins.
// FNV-1a is the classic fast, dependency-free choice with published test
// vectors; collisions only cost load skew, never correctness, so a
// non-cryptographic hash is exactly right here.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace bgla::util {

inline constexpr std::uint64_t kFnv1a64OffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1a64Prime = 1099511628211ull;

/// Folds one byte into a running FNV-1a state.
constexpr std::uint64_t fnv1a64_step(std::uint64_t state, std::uint8_t b) {
  return (state ^ b) * kFnv1a64Prime;
}

/// FNV-1a over a byte range (the published 64-bit variant; matches the
/// official test vectors, e.g. fnv1a64("") == kFnv1a64OffsetBasis).
constexpr std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t len,
                                std::uint64_t seed = kFnv1a64OffsetBasis) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) h = fnv1a64_step(h, data[i]);
  return h;
}

inline std::uint64_t fnv1a64(BytesView bytes,
                             std::uint64_t seed = kFnv1a64OffsetBasis) {
  return fnv1a64(bytes.data(), bytes.size(), seed);
}

/// Hashes a u64 by its 8 little-endian bytes (explicit byte order keeps
/// the value identical on every platform).
constexpr std::uint64_t fnv1a64_u64(std::uint64_t v,
                                    std::uint64_t seed = kFnv1a64OffsetBasis) {
  std::uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h = fnv1a64_step(h, static_cast<std::uint8_t>(v >> (8 * i)));
  }
  return h;
}

}  // namespace bgla::util
