// Shared identifier types.
#pragma once

#include <cstdint>
#include <limits>

namespace bgla {

/// Index of a process in the system (0..n-1). Channels are authenticated:
/// the network layer stamps the true ProcessId of the sender on every
/// delivery, so a Byzantine process cannot impersonate another.
using ProcessId = std::uint32_t;

inline constexpr ProcessId kNoProcess =
    std::numeric_limits<ProcessId>::max();

/// Client identifier for the RSM layer (distinct space from ProcessId).
using ClientId = std::uint32_t;

}  // namespace bgla
