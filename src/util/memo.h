// Lazy, thread-safe memoization of a canonical encoding and its SHA-256
// digest for immutable objects (lattice elements, wire messages).
//
// The cached object must be logically immutable: the fill function has to
// produce the same bytes on every call. The cache is deliberately NOT
// copied with its owner — a copy re-derives lazily — so adding a cache to
// a type never changes the semantics of copying it.
//
// Thread safety: fill-once is guarded by a per-object mutex so objects
// shared across threads (e.g. when independent simulations run on a
// thread pool) never race. After the first fill, readers still take the
// (uncontended) lock; this keeps the implementation trivially correct
// under TSan and costs nanoseconds against the hashing it saves.
#pragma once

#include <mutex>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace bgla::util {

class EncodingCache {
 public:
  EncodingCache() = default;
  // Copies and assignments drop the cache (see header comment).
  EncodingCache(const EncodingCache&) {}
  EncodingCache& operator=(const EncodingCache&) { return *this; }

  /// Returns the cached encoding, filling it (and the digest) on first
  /// use. `fill` must return the canonical bytes.
  template <typename Fill>
  const Bytes& encoded(Fill&& fill) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (!filled_) {
      bytes_ = fill();
      digest_ = crypto::Sha256::hash(bytes_);
      filled_ = true;
    }
    return bytes_;
  }

  template <typename Fill>
  const crypto::Digest& digest(Fill&& fill) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (!filled_) {
      bytes_ = fill();
      digest_ = crypto::Sha256::hash(bytes_);
      filled_ = true;
    }
    return digest_;
  }

 private:
  mutable std::mutex mu_;
  mutable bool filled_ = false;
  mutable Bytes bytes_;
  mutable crypto::Digest digest_{};
};

}  // namespace bgla::util
