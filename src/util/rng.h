// Deterministic pseudo-random number generation (SplitMix64).
//
// All randomness in the simulator flows from explicitly seeded Rng
// instances so every run is replayable from (parameters, seed).
#pragma once

#include <cstdint>

#include "util/check.h"

namespace bgla {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly distributed bits (SplitMix64 step).
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    BGLA_CHECK(lo <= hi);
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return next_u64();  // full range
    return lo + next_u64() % span;
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Derives an independent child generator (for per-link streams).
  Rng fork() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ull); }

 private:
  std::uint64_t state_;
};

}  // namespace bgla
