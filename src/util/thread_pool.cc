#include "util/thread_pool.h"

#include <algorithm>

namespace bgla::util {

ThreadPool::ThreadPool(std::size_t workers) {
  workers = std::max<std::size_t>(1, workers);
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t ThreadPool::default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace bgla::util
