// Fixed-size worker pool for fanning independent simulations across cores.
//
// The simulator itself is strictly single-threaded and deterministic; the
// pool parallelises only across *whole* runs (one Network, one
// SignatureAuthority, one RNG per task), so per-seed results stay
// bit-identical to a serial sweep. parallel_for_indexed() collects results
// by index, which lets callers print them in deterministic submission
// order regardless of completion order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bgla::util {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t workers() const { return threads_.size(); }

  /// hardware_concurrency(), with a fallback of 1 when it is unknown.
  static std::size_t default_workers();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;        // wakes workers
  std::condition_variable idle_cv_;   // wakes wait_idle
  std::queue<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Runs `fn(i)` for i in [0, count) on `pool`, storing each result at
/// index i; the output order is the input order, independent of which
/// worker finished first.
template <typename Result, typename Fn>
std::vector<Result> parallel_for_indexed(ThreadPool& pool, std::size_t count,
                                         Fn&& fn) {
  std::vector<Result> results(count);
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&results, &fn, i] { results[i] = fn(i); });
  }
  pool.wait_idle();
  return results;
}

}  // namespace bgla::util
