// net::Backoff: exponential growth, cap, jitter bounds, determinism
// under a fixed seed, and reset-on-success semantics.
#include <gtest/gtest.h>

#include <vector>

#include "net/backoff.h"

namespace bgla::net {
namespace {

Backoff::Params params(std::uint64_t seed) {
  Backoff::Params p;
  p.initial_ms = 50;
  p.max_ms = 2000;
  p.factor = 2.0;
  p.jitter = 0.2;
  p.seed = seed;
  return p;
}

TEST(Backoff, GrowsExponentiallyUpToCap) {
  Backoff b(params(7));
  // Pre-jitter bases: 50, 100, 200, 400, 800, 1600, 2000, 2000, ...
  std::vector<std::uint32_t> bases;
  for (int i = 0; i < 9; ++i) {
    bases.push_back(b.current_base_ms());
    b.next_ms();
  }
  EXPECT_EQ(bases, (std::vector<std::uint32_t>{50, 100, 200, 400, 800, 1600,
                                               2000, 2000, 2000}));
}

TEST(Backoff, JitterStaysWithinBand) {
  Backoff b(params(99));
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t base = b.current_base_ms();
    const std::uint32_t d = b.next_ms();
    EXPECT_GE(d, static_cast<std::uint32_t>(0.8 * base) - 1);
    EXPECT_LE(d, static_cast<std::uint32_t>(1.2 * base) + 1);
  }
}

TEST(Backoff, DeterministicUnderSeed) {
  Backoff a(params(1234));
  Backoff b(params(1234));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_ms(), b.next_ms());

  // A different seed produces a different jitter stream somewhere.
  Backoff c(params(1234));
  Backoff d(params(4321));
  bool differs = false;
  for (int i = 0; i < 32; ++i) {
    if (c.next_ms() != d.next_ms()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Backoff, ResetRestoresInitialDelayButNotTheJitterStream) {
  Backoff b(params(5));
  for (int i = 0; i < 5; ++i) b.next_ms();
  EXPECT_EQ(b.current_base_ms(), 1600u);
  EXPECT_EQ(b.attempts(), 5u);

  b.reset();
  EXPECT_EQ(b.current_base_ms(), 50u);
  EXPECT_EQ(b.attempts(), 0u);

  // After reset the schedule climbs again from the initial delay, and the
  // jitter stream has advanced: the post-reset draws need not replay the
  // pre-reset ones, but both stay inside the 50±20% band.
  const std::uint32_t first = b.next_ms();
  EXPECT_GE(first, 39u);
  EXPECT_LE(first, 61u);
  EXPECT_EQ(b.current_base_ms(), 100u);
}

TEST(Backoff, ZeroSeedAndZeroInitialAreSafe) {
  Backoff::Params p = params(0);  // seed 0 would stick xorshift at 0
  p.initial_ms = 0;
  Backoff b(p);
  for (int i = 0; i < 8; ++i) {
    EXPECT_GE(b.next_ms(), 1u);  // callers can always sleep the result
  }
}

}  // namespace
}  // namespace bgla::net
