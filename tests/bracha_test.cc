// Bracha reliable-broadcast tests: validity, no-duplication, agreement
// under origin equivocation, totality, forged-origin rejection, quorum
// arithmetic, and resistance to fabricated echo/ready floods.
#include <gtest/gtest.h>

#include "util/check.h"

#include <optional>

#include "bcast/bracha.h"
#include "sim/network.h"

namespace bgla::bcast {
namespace {

class PayloadMsg final : public sim::Message {
 public:
  explicit PayloadMsg(std::uint64_t v) : v(v) {}
  std::uint32_t type_id() const override { return 901; }
  sim::Layer layer() const override { return sim::Layer::kOther; }
  void encode_payload(Encoder& enc) const override { enc.put_u64(v); }
  std::string to_string() const override { return "PAYLOAD"; }
  std::uint64_t v;
};

/// Honest participant: endpoint + record of deliveries.
class RbNode : public sim::Process {
 public:
  RbNode(sim::Network& net, ProcessId id, std::uint32_t n, std::uint32_t f)
      : sim::Process(net, id),
        rb(id, n, f,
           [this](ProcessId to, sim::MessagePtr m) {
             send(to, std::move(m));
           },
           [this](ProcessId origin, std::uint64_t tag,
                  const sim::MessagePtr& inner) {
             deliveries.push_back({origin, tag, inner});
           }) {}

  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    rb.handle(from, msg);
  }

  struct Delivery {
    ProcessId origin;
    std::uint64_t tag;
    sim::MessagePtr inner;
  };

  BrachaEndpoint rb;
  std::vector<Delivery> deliveries;
};

struct Params {
  std::uint32_t n;
  std::uint32_t f;
};

class BrachaSweep
    : public ::testing::TestWithParam<std::tuple<Params, std::uint64_t>> {};

TEST_P(BrachaSweep, ValidityAndTotalityAllCorrect) {
  const auto [p, seed] = GetParam();
  sim::Network net(std::make_unique<sim::UniformDelay>(1, 20), seed, p.n);
  std::vector<std::unique_ptr<RbNode>> nodes;
  for (ProcessId id = 0; id < p.n; ++id) {
    nodes.push_back(std::make_unique<RbNode>(net, id, p.n, p.f));
  }
  net.run();  // attach everyone; start hooks empty

  // Every node broadcasts one payload.
  for (auto& node : nodes) {
    node->rb.broadcast(7, std::make_shared<PayloadMsg>(1000 + node->id()));
  }
  const auto rr = net.run();
  EXPECT_TRUE(rr.quiescent);

  for (auto& node : nodes) {
    ASSERT_EQ(node->deliveries.size(), p.n) << "node " << node->id();
    std::set<ProcessId> origins;
    for (const auto& d : node->deliveries) {
      origins.insert(d.origin);
      EXPECT_EQ(d.tag, 7u);
      const auto* pm = dynamic_cast<const PayloadMsg*>(d.inner.get());
      ASSERT_NE(pm, nullptr);
      EXPECT_EQ(pm->v, 1000 + d.origin);  // integrity
    }
    EXPECT_EQ(origins.size(), p.n);  // no duplication per origin
  }
}

TEST_P(BrachaSweep, ValidityWithMuteByzantines) {
  const auto [p, seed] = GetParam();
  if (p.f == 0) GTEST_SKIP();
  sim::Network net(std::make_unique<sim::UniformDelay>(1, 20), seed, p.n);
  std::vector<std::unique_ptr<RbNode>> correct;
  std::vector<std::unique_ptr<sim::Process>> mute;
  const std::uint32_t c = p.n - p.f;
  for (ProcessId id = 0; id < c; ++id) {
    correct.push_back(std::make_unique<RbNode>(net, id, p.n, p.f));
  }
  class Mute : public sim::Process {
   public:
    Mute(sim::Network& net, ProcessId id) : sim::Process(net, id) {}
    void on_message(ProcessId, const sim::MessagePtr&) override {}
  };
  for (ProcessId id = c; id < p.n; ++id) {
    mute.push_back(std::make_unique<Mute>(net, id));
  }
  net.run();
  correct[0]->rb.broadcast(1, std::make_shared<PayloadMsg>(5));
  net.run();
  for (auto& node : correct) {
    ASSERT_EQ(node->deliveries.size(), 1u);
    EXPECT_EQ(node->deliveries[0].origin, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BrachaSweep,
    ::testing::Combine(::testing::Values(Params{4, 1}, Params{7, 2},
                                         Params{10, 3}, Params{13, 4}),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(Bracha, AgreementUnderEquivocation) {
  // A Byzantine origin sends SEND(v1) to half, SEND(v2) to the rest.
  // Agreement: no two correct nodes deliver different payloads; with an
  // even split and echo quorum 3 of n=4, nobody delivers at all.
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    sim::Network net(std::make_unique<sim::UniformDelay>(1, 20), seed, 4);
    std::vector<std::unique_ptr<RbNode>> correct;
    for (ProcessId id = 0; id < 3; ++id) {
      correct.push_back(std::make_unique<RbNode>(net, id, 4, 1));
    }
    class Equivocator : public sim::Process {
     public:
      Equivocator(sim::Network& net, ProcessId id) : sim::Process(net, id) {}
      void on_start() override {
        const RbKey key{id(), 0};
        const auto m1 = std::make_shared<RbSendMsg>(
            key, std::make_shared<PayloadMsg>(111));
        const auto m2 = std::make_shared<RbSendMsg>(
            key, std::make_shared<PayloadMsg>(222));
        net().send(id(), 0, m1);
        net().send(id(), 1, m2);
        net().send(id(), 2, m1);
      }
      void on_message(ProcessId, const sim::MessagePtr&) override {}
    };
    Equivocator e(net, 3);
    net.run();

    std::optional<std::uint64_t> delivered;
    for (auto& node : correct) {
      for (const auto& d : node->deliveries) {
        const auto* pm = dynamic_cast<const PayloadMsg*>(d.inner.get());
        ASSERT_NE(pm, nullptr);
        if (delivered.has_value()) {
          EXPECT_EQ(*delivered, pm->v) << "agreement violated, seed " << seed;
        } else {
          delivered = pm->v;
        }
      }
    }
  }
}

TEST(Bracha, ForgedOriginSendDropped) {
  // Node 3 sends RB_SEND claiming origin 0; authenticated channels reveal
  // the true sender, so nothing is echoed and nothing delivers.
  sim::Network net(std::make_unique<sim::FixedDelay>(1), 1, 4);
  std::vector<std::unique_ptr<RbNode>> correct;
  for (ProcessId id = 0; id < 3; ++id) {
    correct.push_back(std::make_unique<RbNode>(net, id, 4, 1));
  }
  class Forger : public sim::Process {
   public:
    Forger(sim::Network& net, ProcessId id) : sim::Process(net, id) {}
    void on_start() override {
      const RbKey forged{/*origin=*/0, /*tag=*/9};
      const auto m = std::make_shared<RbSendMsg>(
          forged, std::make_shared<PayloadMsg>(666));
      for (ProcessId to = 0; to < 3; ++to) net().send(id(), to, m);
    }
    void on_message(ProcessId, const sim::MessagePtr&) override {}
  };
  Forger fg(net, 3);
  net.run();
  for (auto& node : correct) EXPECT_TRUE(node->deliveries.empty());
}

TEST(Bracha, ByzantineEchoFloodCannotForceDelivery) {
  // f = 1 Byzantine spams ECHO and READY for a payload whose origin never
  // sent it; deliver quorum 2f+1 = 3 cannot be met with one signer.
  sim::Network net(std::make_unique<sim::FixedDelay>(1), 1, 4);
  std::vector<std::unique_ptr<RbNode>> correct;
  for (ProcessId id = 0; id < 3; ++id) {
    correct.push_back(std::make_unique<RbNode>(net, id, 4, 1));
  }
  class Spammer : public sim::Process {
   public:
    Spammer(sim::Network& net, ProcessId id) : sim::Process(net, id) {}
    void on_start() override {
      const RbKey key{/*origin=*/3, /*tag=*/0};
      const auto payload = std::make_shared<PayloadMsg>(13);
      for (int round = 0; round < 5; ++round) {
        for (ProcessId to = 0; to < 3; ++to) {
          net().send(id(), to, std::make_shared<RbEchoMsg>(key, payload));
          net().send(id(), to, std::make_shared<RbReadyMsg>(key, payload));
        }
      }
    }
    void on_message(ProcessId, const sim::MessagePtr&) override {}
  };
  Spammer sp(net, 3);
  net.run();
  for (auto& node : correct) EXPECT_TRUE(node->deliveries.empty());
}

TEST(Bracha, ReadyAmplificationCompletesLaggards) {
  // With f = 1 and n = 4: if a correct node misses the SEND entirely
  // (simulated by a very slow origin link), the f+1 READY amplification
  // rule still gets it to deliver. We model it with targeted delays.
  auto victims = std::set<std::pair<ProcessId, ProcessId>>{{0, 2}};
  sim::Network net(
      std::make_unique<sim::TargetedDelay>(victims, 1, 100000), 1, 4);
  std::vector<std::unique_ptr<RbNode>> nodes;
  for (ProcessId id = 0; id < 4; ++id) {
    nodes.push_back(std::make_unique<RbNode>(net, id, 4, 1));
  }
  net.run();
  nodes[0]->rb.broadcast(0, std::make_shared<PayloadMsg>(50));
  net.run();
  // Node 2's SEND is stretched; it must still deliver via echo/ready.
  ASSERT_EQ(nodes[2]->deliveries.size(), 1u);
  const auto* pm =
      dynamic_cast<const PayloadMsg*>(nodes[2]->deliveries[0].inner.get());
  ASSERT_NE(pm, nullptr);
  EXPECT_EQ(pm->v, 50u);
}

TEST(Bracha, QuorumArithmetic) {
  for (std::uint32_t f = 1; f <= 10; ++f) {
    const std::uint32_t n = 3 * f + 1;
    sim::Network net(std::make_unique<sim::FixedDelay>(1), 1, 1);
    class Dummy : public sim::Process {
     public:
      Dummy(sim::Network& net, ProcessId id) : sim::Process(net, id) {}
      void on_message(ProcessId, const sim::MessagePtr&) override {}
    };
    Dummy d(net, 0);
    BrachaEndpoint ep(
        0, n, f, [](ProcessId, sim::MessagePtr) {},
        [](ProcessId, std::uint64_t, const sim::MessagePtr&) {});
    // Echo quorum > (n+f)/2; deliver quorum = 2f+1; both ≤ n−f so correct
    // processes alone can always meet them.
    EXPECT_EQ(ep.echo_quorum(), (n + f) / 2 + 1);
    EXPECT_EQ(ep.deliver_quorum(), 2 * f + 1);
    EXPECT_LE(ep.echo_quorum(), n - f);
    EXPECT_LE(ep.deliver_quorum(), n - f);
    EXPECT_EQ(ep.ready_amplify(), f + 1);
  }
}

TEST(Bracha, TagReuseRejected) {
  sim::Network net(std::make_unique<sim::FixedDelay>(1), 1, 4);
  std::vector<std::unique_ptr<RbNode>> nodes;
  for (ProcessId id = 0; id < 4; ++id) {
    nodes.push_back(std::make_unique<RbNode>(net, id, 4, 1));
  }
  nodes[0]->rb.broadcast(3, std::make_shared<PayloadMsg>(1));
  EXPECT_THROW(nodes[0]->rb.broadcast(3, std::make_shared<PayloadMsg>(2)),
               CheckError);
}

TEST(Bracha, RequiresMinimumResilience) {
  EXPECT_THROW(BrachaEndpoint(0, 3, 1, [](ProcessId, sim::MessagePtr) {},
                              [](ProcessId, std::uint64_t,
                                 const sim::MessagePtr&) {}),
               CheckError);
}

}  // namespace
}  // namespace bgla::bcast
