// Soundness of the three caching layers added for the crypto hot path:
//
//   (1) Elem / Message encoding+digest memoization — cached bytes must be
//       byte-identical to a fresh recomputation;
//   (2) the authority-level verified-MAC cache — tampered payloads and
//       forged MACs must still be rejected when the (signer, payload) pair
//       was verified before, and the cache must never change a verdict;
//   (3) the per-process verified-ack memo in AllSafe — adversarial
//       scenarios must produce identical decisions and pass the specs.
#include <gtest/gtest.h>

#include "harness/scenario.h"
#include "la/sbs.h"
#include "la/signed_value.h"
#include "lattice/set_elem.h"

using namespace bgla;
using crypto::Signature;
using crypto::SignatureAuthority;
using harness::Adversary;
using lattice::Elem;
using lattice::Item;
using lattice::make_set;

namespace {

Bytes bytes_of(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

// ------------------------------------------------- encoding memoization --

TEST(EncodingCache, CachedElemEncodingMatchesFreshRecomputation) {
  const Elem a = make_set({Item{0, 100, 0}, Item{1, 101, 2}});
  // First call fills the cache, second call serves from it.
  const Bytes first = a.encoded();
  const Bytes second = a.encoded();
  EXPECT_EQ(first, second);
  // A structurally equal Elem built from scratch encodes identically.
  const Elem b = make_set({Item{0, 100, 0}, Item{1, 101, 2}});
  EXPECT_EQ(b.encoded(), first);
  EXPECT_EQ(b.digest(), a.digest());
  EXPECT_EQ(a.digest(), crypto::Sha256::hash(first));
}

TEST(EncodingCache, JoinFastPathPreservesEncoding) {
  const Elem small = make_set({Item{0, 100, 0}});
  const Elem big = make_set({Item{0, 100, 0}, Item{1, 101, 0}});
  // small ≤ big, so join returns (a copy of) big's representation.
  const Elem joined = small.join(big);
  EXPECT_TRUE(joined == big);
  EXPECT_EQ(joined.encoded(), big.encoded());
  EXPECT_EQ(joined.digest(), big.digest());
  // And join with bottom / self keeps the value unchanged.
  EXPECT_EQ(Elem().join(big).encoded(), big.encoded());
  EXPECT_EQ(big.join(big).encoded(), big.encoded());
}

TEST(EncodingCache, FingerprintMemoTracksMutation) {
  SignatureAuthority auth(4, 7);
  la::SignedValueSet set;
  set.insert(la::make_signed_value(auth.signer_for(0),
                                   make_set({Item{0, 100, 0}})));
  const crypto::Digest fp1 = set.fingerprint();
  EXPECT_EQ(set.fingerprint(), fp1);  // memoized, stable
  // Mutation must invalidate the memo.
  set.insert(la::make_signed_value(auth.signer_for(1),
                                   make_set({Item{1, 101, 0}})));
  const crypto::Digest fp2 = set.fingerprint();
  EXPECT_NE(fp1, fp2);
  // A fresh set with the same entries fingerprints identically.
  la::SignedValueSet fresh;
  fresh.insert(la::make_signed_value(auth.signer_for(0),
                                     make_set({Item{0, 100, 0}})));
  fresh.insert(la::make_signed_value(auth.signer_for(1),
                                     make_set({Item{1, 101, 0}})));
  EXPECT_EQ(fresh.fingerprint(), fp2);
}

// ------------------------------------------------------ MAC cache layer --

TEST(VerifyCache, HitServesSameVerdictAndCountsIt) {
  SignatureAuthority auth(4, 99);
  const Bytes msg = bytes_of("payload");
  const Signature sig = auth.signer_for(1).sign(msg);
  auth.reset_counters();
  EXPECT_TRUE(auth.verify(sig, msg));  // sign_as seeded the cache
  EXPECT_TRUE(auth.verify(sig, msg));
  EXPECT_EQ(auth.counters().verify_cache_hits, 2u);
  EXPECT_EQ(auth.counters().macs_computed, 0u);
}

TEST(VerifyCache, TamperedPayloadStillRejectedAfterCaching) {
  SignatureAuthority auth(4, 99);
  const Bytes msg = bytes_of("original");
  const Signature sig = auth.signer_for(2).sign(msg);
  ASSERT_TRUE(auth.verify(sig, msg));  // cache the genuine pair
  EXPECT_FALSE(auth.verify(sig, bytes_of("originax")));
  EXPECT_FALSE(auth.verify(sig, bytes_of("original ")));
}

TEST(VerifyCache, ForgedMacRejectedOnCacheHit) {
  SignatureAuthority auth(4, 99);
  const Bytes msg = bytes_of("message");
  const Signature genuine = auth.signer_for(1).sign(msg);
  ASSERT_TRUE(auth.verify(genuine, msg));
  // Same (signer, payload) cache key, different MAC: the hit path must
  // compare MACs, not just trust the key.
  Signature forged = genuine;
  forged.mac[0] ^= 0xff;
  auth.reset_counters();
  EXPECT_FALSE(auth.verify(forged, msg));
  EXPECT_EQ(auth.counters().verify_cache_hits, 1u);
}

TEST(VerifyCache, SignerFieldForgeryRejectedWithCacheEnabled) {
  SignatureAuthority auth(4, 99);
  const Bytes msg = bytes_of("claim");
  Signature sig = auth.signer_for(3).sign(msg);
  ASSERT_TRUE(auth.verify(sig, msg));
  sig.signer = 2;  // equivocating attribution: same MAC, different signer
  EXPECT_FALSE(auth.verify(sig, msg));
}

TEST(VerifyCache, DisabledCacheGivesSameVerdicts) {
  SignatureAuthority cached(4, 123);
  SignatureAuthority uncached(4, 123, /*cache_capacity=*/0);
  const Bytes msg = bytes_of("identical-keys");
  const Signature a = cached.signer_for(0).sign(msg);
  const Signature b = uncached.signer_for(0).sign(msg);
  EXPECT_EQ(a, b);  // same seed -> same keys -> same MAC
  for (int round = 0; round < 2; ++round) {
    EXPECT_EQ(cached.verify(a, msg), uncached.verify(a, msg));
    Signature bad = a;
    bad.mac[5] ^= 1;
    EXPECT_EQ(cached.verify(bad, msg), uncached.verify(bad, msg));
  }
  EXPECT_EQ(uncached.counters().verify_cache_hits, 0u);
  EXPECT_GT(uncached.counters().macs_computed, 0u);
}

TEST(VerifyCache, NeverCachesFailures) {
  SignatureAuthority auth(4, 5);
  const Bytes msg = bytes_of("no-poison");
  Signature bad = auth.signer_for(0).sign(msg);
  bad.mac[0] ^= 1;
  EXPECT_FALSE(auth.verify(bad, msg));
  // The genuine signature must still verify — a failed attempt must not
  // have poisoned the (signer, digest) slot.
  EXPECT_TRUE(auth.verify(auth.signer_for(0).sign(msg), msg));
}

// --------------------------------------- scenario-level cache soundness --

TEST(CachedScenarios, EquivocatorRunsDeterministicAndSpecOk) {
  harness::SbsScenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.byz_count = 2;
  sc.adversary = Adversary::kEquivocator;
  sc.seed = 11;
  const auto a = harness::run_sbs(sc);
  const auto b = harness::run_sbs(sc);
  EXPECT_TRUE(a.completed);
  EXPECT_TRUE(a.spec.ok()) << a.spec.diagnostic;
  // Bit-identical re-run: caching must not leak state across runs.
  EXPECT_EQ(a.total_msgs, b.total_msgs);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.max_msgs_per_correct, b.max_msgs_per_correct);
  EXPECT_EQ(a.max_bytes_per_correct, b.max_bytes_per_correct);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.crypto.macs_computed, b.crypto.macs_computed);
  EXPECT_EQ(a.crypto.verify_cache_hits, b.crypto.verify_cache_hits);
  // The caches were actually exercised on this adversarial workload.
  EXPECT_GT(a.crypto.verify_cache_hits, 0u);
  EXPECT_GT(a.crypto.verifies_skipped, 0u);
}

TEST(CachedScenarios, FakeConflictAckerStillRejectedWithCaches) {
  harness::SbsScenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.byz_count = 2;
  sc.adversary = Adversary::kStaleNacker;  // fake-conflict acceptor
  sc.seed = 3;
  const auto rep = harness::run_sbs(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
}

TEST(CachedScenarios, GsbsEquivocatorDeterministicAndSpecOk) {
  harness::GsbsScenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.byz_count = 2;
  sc.adversary = Adversary::kEquivocator;
  sc.seed = 21;
  const auto a = harness::run_gsbs(sc);
  const auto b = harness::run_gsbs(sc);
  EXPECT_TRUE(a.spec.ok()) << a.spec.diagnostic;
  EXPECT_EQ(a.total_msgs, b.total_msgs);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.total_decisions, b.total_decisions);
  EXPECT_EQ(a.crypto.macs_computed, b.crypto.macs_computed);
  EXPECT_GT(a.crypto.verify_cache_hits, 0u);
}

}  // namespace
