// Certificate-based reliable broadcast tests: the four RB properties,
// forgery/tamper resistance, equivocation behaviour, and WTS running on
// top of it (including the message-complexity advantage over Bracha).
#include <gtest/gtest.h>

#include "util/check.h"

#include "bcast/cert_rb.h"
#include "harness/scenario.h"
#include "la/spec.h"
#include "la/wts.h"
#include "lattice/set_elem.h"
#include "sim/network.h"

namespace bgla::bcast {
namespace {

class PayloadMsg final : public sim::Message {
 public:
  explicit PayloadMsg(std::uint64_t v) : v(v) {}
  std::uint32_t type_id() const override { return 902; }
  sim::Layer layer() const override { return sim::Layer::kOther; }
  void encode_payload(Encoder& enc) const override { enc.put_u64(v); }
  std::string to_string() const override { return "PAYLOAD"; }
  std::uint64_t v;
};

class CrbNode : public sim::Process {
 public:
  CrbNode(sim::Network& net, ProcessId id, std::uint32_t n, std::uint32_t f,
          const crypto::SignatureAuthority& auth)
      : sim::Process(net, id),
        rb(id, n, f, auth,
           [this](ProcessId to, sim::MessagePtr m) {
             send(to, std::move(m));
           },
           [this](ProcessId origin, std::uint64_t tag,
                  const sim::MessagePtr& inner) {
             deliveries.push_back({origin, tag, inner});
           }) {}

  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    rb.handle(from, msg);
  }

  struct Delivery {
    ProcessId origin;
    std::uint64_t tag;
    sim::MessagePtr inner;
  };
  CertRbEndpoint rb;
  std::vector<Delivery> deliveries;
};

struct Rig {
  Rig(std::uint32_t n, std::uint32_t f, std::uint32_t correct,
      std::uint64_t seed)
      : auth(n, seed ^ 0xce57), net(std::make_unique<sim::UniformDelay>(1, 15),
                                    seed, n) {
    for (ProcessId id = 0; id < correct; ++id) {
      nodes.push_back(std::make_unique<CrbNode>(net, id, n, f, auth));
    }
  }
  crypto::SignatureAuthority auth;
  sim::Network net;
  std::vector<std::unique_ptr<CrbNode>> nodes;
};

TEST(CertRb, ValidityAndTotalityAllCorrect) {
  for (std::uint64_t seed : {1, 2, 3}) {
    Rig rig(7, 2, 7, seed);
    rig.net.run();
    for (auto& node : rig.nodes) {
      node->rb.broadcast(9, std::make_shared<PayloadMsg>(node->id()));
    }
    const auto rr = rig.net.run();
    EXPECT_TRUE(rr.quiescent);
    for (auto& node : rig.nodes) {
      ASSERT_EQ(node->deliveries.size(), 7u);
      std::set<ProcessId> origins;
      for (const auto& d : node->deliveries) {
        origins.insert(d.origin);
        const auto* pm = dynamic_cast<const PayloadMsg*>(d.inner.get());
        ASSERT_NE(pm, nullptr);
        EXPECT_EQ(pm->v, d.origin);  // integrity
      }
      EXPECT_EQ(origins.size(), 7u);  // no duplication
    }
  }
}

TEST(CertRb, ValidityWithMuteByzantines) {
  Rig rig(7, 2, 5, 4);  // ids 5,6 never attach: fully silent
  class Mute : public sim::Process {
   public:
    Mute(sim::Network& net, ProcessId id) : sim::Process(net, id) {}
    void on_message(ProcessId, const sim::MessagePtr&) override {}
  };
  Mute m5(rig.net, 5), m6(rig.net, 6);
  rig.net.run();
  rig.nodes[0]->rb.broadcast(1, std::make_shared<PayloadMsg>(5));
  rig.net.run();
  for (auto& node : rig.nodes) {
    ASSERT_EQ(node->deliveries.size(), 1u);
  }
}

TEST(CertRb, EquivocationYieldsAtMostOneDelivery) {
  // Byzantine origin sends SEND(v1)/SEND(v2) to different halves: echo
  // quorum 3 of n=4 cannot form for both; agreement holds (and with a
  // 2|1 split, nothing may deliver at all — also fine).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rig rig(4, 1, 3, seed);
    class Equivocator : public sim::Process {
     public:
      Equivocator(sim::Network& net, ProcessId id,
                  const crypto::SignatureAuthority& auth)
          : sim::Process(net, id), auth_(auth) {}
      void on_start() override {
        const CrbKey key{id(), 0};
        net().send(id(), 0,
                   std::make_shared<CrbSendMsg>(
                       key, std::make_shared<PayloadMsg>(111)));
        net().send(id(), 1,
                   std::make_shared<CrbSendMsg>(
                       key, std::make_shared<PayloadMsg>(222)));
        net().send(id(), 2,
                   std::make_shared<CrbSendMsg>(
                       key, std::make_shared<PayloadMsg>(111)));
      }
      void on_message(ProcessId from, const sim::MessagePtr& msg) override {
        // Collect echoes and try to build a cert for EACH payload.
        if (const auto* e = dynamic_cast<const CrbEchoMsg*>(msg.get())) {
          echoes_[e->digest].push_back(e->sig);
          for (auto& [digest, sigs] : echoes_) {
            if (sigs.size() >= 3) {
              // Can only finalize the payload matching this digest.
              const auto payload = std::make_shared<PayloadMsg>(
                  digest == PayloadMsg(111).digest() ? 111 : 222);
              const auto final = std::make_shared<CrbFinalMsg>(
                  CrbKey{id(), 0}, payload, sigs);
              for (ProcessId to = 0; to < 3; ++to) {
                net().send(id(), to, final);
              }
            }
          }
        }
        (void)from;
      }

     private:
      const crypto::SignatureAuthority& auth_;
      std::map<crypto::Digest, std::vector<crypto::Signature>> echoes_;
    };
    Equivocator e(rig.net, 3, rig.auth);
    rig.net.run();

    std::set<std::uint64_t> delivered;
    for (auto& node : rig.nodes) {
      for (const auto& d : node->deliveries) {
        delivered.insert(
            dynamic_cast<const PayloadMsg*>(d.inner.get())->v);
      }
    }
    EXPECT_LE(delivered.size(), 1u) << "agreement violated, seed " << seed;
  }
}

TEST(CertRb, ForgedCertificateRejected) {
  Rig rig(4, 1, 3, 9);
  class Forger : public sim::Process {
   public:
    Forger(sim::Network& net, ProcessId id,
           const crypto::SignatureAuthority& auth)
        : sim::Process(net, id), auth_(auth) {}
    void on_start() override {
      const CrbKey key{id(), 0};
      const auto payload = std::make_shared<PayloadMsg>(66);
      // Certificate of self-signatures only (can't forge others'): three
      // entries but one distinct signer.
      const auto echo = auth_.signer_for(id()).sign(
          crb_echo_payload(key, payload->digest()));
      std::vector<crypto::Signature> cert = {echo, echo, echo};
      const auto final = std::make_shared<CrbFinalMsg>(key, payload, cert);
      for (ProcessId to = 0; to < 3; ++to) net().send(id(), to, final);
      // Also: signatures claiming other signers but MAC'd by us.
      std::vector<crypto::Signature> forged = {echo, echo, echo};
      forged[1].signer = 0;
      forged[2].signer = 1;
      const auto final2 =
          std::make_shared<CrbFinalMsg>(key, payload, forged);
      for (ProcessId to = 0; to < 3; ++to) net().send(id(), to, final2);
    }
    void on_message(ProcessId, const sim::MessagePtr&) override {}

   private:
    const crypto::SignatureAuthority& auth_;
  };
  Forger fg(rig.net, 3, rig.auth);
  rig.net.run();
  for (auto& node : rig.nodes) EXPECT_TRUE(node->deliveries.empty());
}

TEST(CertRb, WellFormedChecks) {
  crypto::SignatureAuthority auth(7, 3);
  const CrbKey key{0, 5};
  const auto payload = std::make_shared<PayloadMsg>(1);
  const Bytes echo_bytes = crb_echo_payload(key, payload->digest());
  std::vector<crypto::Signature> cert;
  for (ProcessId p = 0; p < 5; ++p) {
    cert.push_back(auth.signer_for(p).sign(echo_bytes));
  }
  EXPECT_TRUE(CrbFinalMsg(key, payload, cert).well_formed(auth, 5));
  // Sub-quorum.
  EXPECT_FALSE(CrbFinalMsg(key, payload, cert).well_formed(auth, 6));
  // Tampered payload.
  EXPECT_FALSE(CrbFinalMsg(key, std::make_shared<PayloadMsg>(2), cert)
                   .well_formed(auth, 5));
  // Duplicate signer.
  auto dup = cert;
  dup[1] = dup[0];
  EXPECT_FALSE(CrbFinalMsg(key, payload, dup).well_formed(auth, 5));
  // Wrong key (tag).
  EXPECT_FALSE(
      CrbFinalMsg(CrbKey{0, 6}, payload, cert).well_formed(auth, 5));
}

TEST(CertRb, TagReuseRejected) {
  Rig rig(4, 1, 3, 2);
  class Mute : public sim::Process {
   public:
    Mute(sim::Network& net, ProcessId id) : sim::Process(net, id) {}
    void on_message(ProcessId, const sim::MessagePtr&) override {}
  };
  Mute m3(rig.net, 3);
  rig.nodes[0]->rb.broadcast(3, std::make_shared<PayloadMsg>(1));
  EXPECT_THROW(
      rig.nodes[0]->rb.broadcast(3, std::make_shared<PayloadMsg>(2)),
      CheckError);
}

// ---- WTS over CertRb ----

class WtsOverCertRb : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WtsOverCertRb, FullSpecHolds) {
  la::LaConfig cfg;
  cfg.n = 7;
  cfg.f = 2;
  const crypto::SignatureAuthority auth(cfg.n, GetParam() ^ 0xbeef);
  cfg.rb_impl = la::LaConfig::RbImpl::kSignedCert;
  cfg.authority = &auth;

  sim::Network net(std::make_unique<sim::UniformDelay>(1, 15), GetParam(),
                   cfg.n);
  std::vector<std::unique_ptr<la::WtsProcess>> correct;
  for (ProcessId id = 0; id < 5; ++id) {
    correct.push_back(std::make_unique<la::WtsProcess>(
        net, id, cfg, lattice::make_set({lattice::Item{id, 100 + id, 0}})));
  }
  class Mute : public sim::Process {
   public:
    Mute(sim::Network& net, ProcessId id) : sim::Process(net, id) {}
    void on_message(ProcessId, const sim::MessagePtr&) override {}
  };
  Mute m5(net, 5), m6(net, 6);
  const auto rr = net.run();
  EXPECT_TRUE(rr.quiescent);

  std::vector<la::LaView> views;
  for (const auto& p : correct) {
    ASSERT_TRUE(p->decided());
    la::LaView v;
    v.id = p->id();
    v.proposal = p->proposal();
    v.decision = p->decision().value;
    v.svs = p->svs();
    views.push_back(std::move(v));
  }
  const auto res = la::check_la(views, {5, 6}, cfg.f);
  EXPECT_TRUE(res.ok()) << res.diagnostic;
}

INSTANTIATE_TEST_SUITE_P(Seeds, WtsOverCertRb,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(WtsOverCertRbCost, FewerMessagesThanBracha) {
  auto run = [](la::LaConfig::RbImpl impl, std::uint64_t seed) {
    la::LaConfig cfg;
    cfg.n = 16;
    cfg.f = 1;
    static const crypto::SignatureAuthority auth(16, 1);
    cfg.rb_impl = impl;
    cfg.authority = &auth;
    sim::Network net(std::make_unique<sim::UniformDelay>(1, 10), seed, 16);
    std::vector<std::unique_ptr<la::WtsProcess>> procs;
    for (ProcessId id = 0; id < 16; ++id) {
      procs.push_back(std::make_unique<la::WtsProcess>(
          net, id, cfg,
          lattice::make_set({lattice::Item{id, 100 + id, 0}})));
    }
    net.run();
    std::uint64_t max_msgs = 0;
    for (const auto& p : procs) {
      BGLA_CHECK(p->decided());
      max_msgs =
          std::max(max_msgs, net.metrics().messages_sent(p->id()));
    }
    return max_msgs;
  };
  const auto bracha = run(la::LaConfig::RbImpl::kBracha, 3);
  const auto cert = run(la::LaConfig::RbImpl::kSignedCert, 3);
  // Forwarding keeps the total O(n²) (totality!), but the constant is
  // roughly halved: ~n+2 broadcast-layer sends per process per instance
  // vs Bracha's ~2n. Measured at n = 16: ≈345 vs ≈555.
  EXPECT_LT(static_cast<double>(cert) * 1.3,
            static_cast<double>(bracha))
      << "certificate RB should beat Bracha clearly at n=16";
}

}  // namespace
}  // namespace bgla::bcast

namespace bgla {
namespace {

class GwtsOverCertRb : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GwtsOverCertRb, GeneralizedSpecHolds) {
  harness::GwtsScenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.byz_count = 2;
  sc.adversary = harness::Adversary::kMute;
  sc.signed_rb = true;
  sc.seed = GetParam();
  sc.target_decisions = 3;
  const auto rep = harness::run_gwts(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GwtsOverCertRb,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(GwtsOverCertRbCost, CheaperPerDecisionThanBracha) {
  harness::GwtsScenario a;
  a.n = 10;
  a.f = 1;
  a.byz_count = 1;
  a.adversary = harness::Adversary::kMute;
  a.target_decisions = 3;
  a.seed = 2;
  const auto bracha = harness::run_gwts(a);
  a.signed_rb = true;
  const auto cert = harness::run_gwts(a);
  ASSERT_TRUE(bracha.completed && cert.completed);
  EXPECT_LT(cert.msgs_per_decision_per_proposer * 1.2,
            bracha.msgs_per_decision_per_proposer);
}

}  // namespace
}  // namespace bgla
