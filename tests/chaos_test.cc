// Chaos tests: heterogeneous adversary mixes (every Byzantine slot runs a
// *different* strategy simultaneously) across schedules and seeds — closer
// to a real adversary than homogeneous fleets.
#include <gtest/gtest.h>

#include "harness/scenario.h"

namespace bgla {
namespace {

using harness::Adversary;
using harness::Sched;

const std::vector<std::vector<Adversary>> kWtsMixes = {
    {Adversary::kEquivocator, Adversary::kStaleNacker},
    {Adversary::kEquivocator, Adversary::kLyingAcker},
    {Adversary::kStaleNacker, Adversary::kFlooder},
    {Adversary::kInvalidValue, Adversary::kEquivocator},
    {Adversary::kMute, Adversary::kStaleNacker},
    {Adversary::kEquivocator, Adversary::kStaleNacker,
     Adversary::kLyingAcker},
    {Adversary::kInvalidValue, Adversary::kFlooder, Adversary::kMute},
    {Adversary::kEquivocator, Adversary::kEquivocator,
     Adversary::kStaleNacker},
};

class WtsChaos
    : public ::testing::TestWithParam<std::tuple<std::size_t,       // mix
                                                 std::uint64_t>> {  // seed
};

TEST_P(WtsChaos, MixedAdversariesCannotBreakWts) {
  const auto [mix_idx, seed] = GetParam();
  const auto& mix = kWtsMixes[mix_idx];
  const auto f = static_cast<std::uint32_t>(mix.size());

  harness::WtsScenario sc;
  sc.n = 3 * f + 1;
  sc.f = f;
  sc.mixed = mix;
  sc.sched = seed % 2 == 0 ? Sched::kUniform : Sched::kJitter;
  sc.seed = seed;
  const auto rep = harness::run_wts(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
  EXPECT_LE(rep.max_depth, 3 * f + 5);
  EXPECT_LE(rep.max_refinements, f);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, WtsChaos,
    ::testing::Combine(::testing::Range<std::size_t>(0, kWtsMixes.size()),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4)));

const std::vector<std::vector<Adversary>> kGwtsMixes = {
    {Adversary::kStaleNacker, Adversary::kRoundRusher},
    {Adversary::kEquivocator, Adversary::kStaleNacker},
    {Adversary::kRoundRusher, Adversary::kFlooder},
    {Adversary::kMute, Adversary::kRoundRusher},
    {Adversary::kStaleNacker, Adversary::kStaleNacker,
     Adversary::kRoundRusher},
    {Adversary::kEquivocator, Adversary::kRoundRusher,
     Adversary::kFlooder},
};

class GwtsChaos
    : public ::testing::TestWithParam<std::tuple<std::size_t,
                                                 std::uint64_t>> {};

TEST_P(GwtsChaos, MixedAdversariesCannotBreakGwts) {
  const auto [mix_idx, seed] = GetParam();
  const auto& mix = kGwtsMixes[mix_idx];
  const auto f = static_cast<std::uint32_t>(mix.size());

  harness::GwtsScenario sc;
  sc.n = 3 * f + 1;
  sc.f = f;
  sc.mixed = mix;
  sc.sched = seed % 2 == 0 ? Sched::kUniform : Sched::kJitter;
  sc.seed = seed;
  sc.target_decisions = 3;
  sc.submissions_per_proc = 2;
  const auto rep = harness::run_gwts(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
  EXPECT_LE(rep.max_round_refinements, f);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, GwtsChaos,
    ::testing::Combine(::testing::Range<std::size_t>(0, kGwtsMixes.size()),
                       ::testing::Values<std::uint64_t>(5, 6, 7)));

}  // namespace
}  // namespace bgla
