// Crypto substrate tests: SHA-256 against FIPS/NIST vectors, HMAC-SHA256
// against RFC 4231 vectors, and the simulated signature authority.
#include <gtest/gtest.h>

#include "util/check.h"

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/signature.h"
#include "util/bytes.h"

namespace bgla::crypto {
namespace {

std::string sha_hex(const std::string& input) {
  return digest_hex(Sha256::hash(bytes_of(input)));
}

TEST(Sha256, NistVectorEmpty) {
  EXPECT_EQ(
      sha_hex(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, NistVectorAbc) {
  EXPECT_EQ(
      sha_hex("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, NistVectorTwoBlocks) {
  EXPECT_EQ(
      sha_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, NistVectorLong) {
  // 1,000,000 × 'a'.
  Bytes data(1000000, 'a');
  EXPECT_EQ(
      digest_hex(Sha256::hash(data)),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64-byte input forces the padding into a second block.
  Bytes data(64, 'x');
  const Digest one_shot = Sha256::hash(data);
  Sha256 h;
  h.update(BytesView(data.data(), 32));
  h.update(BytesView(data.data() + 32, 32));
  EXPECT_EQ(h.finish(), one_shot);
}

TEST(Sha256, FiftyFiveAndFiftySixBytePadEdge) {
  // 55 bytes: padding fits in one block; 56 bytes: it does not.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u}) {
    Bytes data(len, 'q');
    Sha256 h;
    for (std::size_t i = 0; i < len; ++i) {
      h.update(BytesView(data.data() + i, 1));
    }
    EXPECT_EQ(h.finish(), Sha256::hash(data)) << "len=" << len;
  }
}

TEST(Sha256, IncrementalMatchesOneShotRandomSplits) {
  Bytes data;
  for (int i = 0; i < 1000; ++i) {
    data.push_back(static_cast<std::uint8_t>(i * 37));
  }
  const Digest expect = Sha256::hash(data);
  for (std::size_t split = 1; split < data.size(); split += 97) {
    Sha256 h;
    h.update(BytesView(data.data(), split));
    h.update(BytesView(data.data() + split, data.size() - split));
    EXPECT_EQ(h.finish(), expect);
  }
}

TEST(Sha256, ReuseAfterFinishRejected) {
  Sha256 h;
  h.update(bytes_of("abc"));
  h.finish();
  EXPECT_THROW(h.update(bytes_of("x")), CheckError);
  EXPECT_THROW(h.finish(), CheckError);
  h.reset();
  h.update(bytes_of("abc"));
  EXPECT_EQ(digest_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// RFC 4231 test case 1.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Digest mac = hmac_sha256(key, bytes_of("Hi There"));
  EXPECT_EQ(
      digest_hex(mac),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(Hmac, Rfc4231Case2) {
  const Digest mac =
      hmac_sha256(bytes_of("Jefe"), bytes_of("what do ya want for nothing?"));
  EXPECT_EQ(
      digest_hex(mac),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20×0xaa key, 50×0xdd data.
TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(
      digest_hex(hmac_sha256(key, data)),
      "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 4: 25-byte incrementing key, 50×0xcd data.
TEST(Hmac, Rfc4231Case4) {
  Bytes key(25);
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i + 1);
  }
  const Bytes data(50, 0xcd);
  EXPECT_EQ(
      digest_hex(hmac_sha256(key, data)),
      "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

// RFC 4231 test case 7: both key and data larger than one block.
TEST(Hmac, Rfc4231Case7LongKeyLongData) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      digest_hex(hmac_sha256(
          key,
          bytes_of("This is a test using a larger than block-size key and "
                   "a larger than block-size data. The key needs to be "
                   "hashed before being used by the HMAC algorithm."))),
      "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

// RFC 4231 test case 6: 131-byte key (> block size, must be hashed first).
TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      digest_hex(hmac_sha256(
          key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key "
                        "First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Signature, SignVerifyRoundtrip) {
  SignatureAuthority auth(4, 99);
  const Signer s1 = auth.signer_for(1);
  const Bytes msg = bytes_of("commit {1,2}");
  const Signature sig = s1.sign(msg);
  EXPECT_EQ(sig.signer, 1u);
  EXPECT_TRUE(auth.verify(sig, msg));
}

TEST(Signature, TamperedMessageRejected) {
  SignatureAuthority auth(4, 99);
  const Signature sig = auth.signer_for(2).sign(bytes_of("original"));
  EXPECT_FALSE(auth.verify(sig, bytes_of("tampered")));
}

TEST(Signature, SignerFieldForgeryRejected) {
  // A Byzantine process can flip the claimed signer id, but verification
  // recomputes under that id's key and fails.
  SignatureAuthority auth(4, 99);
  Signature sig = auth.signer_for(3).sign(bytes_of("msg"));
  sig.signer = 0;
  EXPECT_FALSE(auth.verify(sig, bytes_of("msg")));
}

TEST(Signature, UnknownSignerRejected) {
  SignatureAuthority auth(4, 99);
  Signature sig = auth.signer_for(0).sign(bytes_of("m"));
  sig.signer = 77;
  EXPECT_FALSE(auth.verify(sig, bytes_of("m")));
}

TEST(Signature, DistinctKeysPerProcess) {
  SignatureAuthority auth(4, 99);
  const Bytes msg = bytes_of("same message");
  const Signature a = auth.signer_for(0).sign(msg);
  const Signature b = auth.signer_for(1).sign(msg);
  EXPECT_NE(a.mac, b.mac);
}

TEST(Signature, DeterministicAcrossInstancesWithSameSeed) {
  SignatureAuthority auth1(4, 123), auth2(4, 123);
  const Bytes msg = bytes_of("replay");
  EXPECT_EQ(auth1.signer_for(2).sign(msg).mac,
            auth2.signer_for(2).sign(msg).mac);
}

TEST(Signature, CrossAuthorityRejected) {
  SignatureAuthority auth1(4, 1), auth2(4, 2);
  const Bytes msg = bytes_of("m");
  const Signature sig = auth1.signer_for(0).sign(msg);
  EXPECT_FALSE(auth2.verify(sig, msg));
}

TEST(Signature, SignerForUnknownIdThrows) {
  SignatureAuthority auth(4, 1);
  EXPECT_THROW(auth.signer_for(9), CheckError);
}

}  // namespace
}  // namespace bgla::crypto
