// Typed data-type layer tests: counter and g-set workload builders and
// read-value interpreters over full RSM runs.
#include <gtest/gtest.h>

#include "rsm/byz_rsm.h"
#include "rsm/client.h"
#include "rsm/datatypes.h"
#include "rsm/replica.h"
#include "sim/network.h"

namespace bgla {
namespace {

struct RsmRig {
  explicit RsmRig(std::uint64_t seed, std::uint32_t clients_count) {
    cfg.n = 4;
    cfg.f = 1;
    net = std::make_unique<sim::Network>(
        std::make_unique<sim::UniformDelay>(1, 10), seed,
        cfg.n + clients_count);
    for (ProcessId id = 0; id < cfg.n; ++id) {
      replicas.push_back(std::make_unique<rsm::Replica>(
          *net, id, cfg, cfg.n, clients_count));
    }
  }

  void add_client(std::vector<rsm::Op> script) {
    const ProcessId id = cfg.n + static_cast<ProcessId>(clients.size());
    clients.push_back(std::make_unique<rsm::Client>(
        *net, id, cfg.n, cfg.f, std::move(script)));
  }

  void run() {
    for (auto& c : clients) {
      c->set_op_hook([this](const rsm::Client&, const rsm::OpRecord&) {
        for (auto& q : clients) {
          if (!q->done()) return;
        }
        net->request_stop();
      });
    }
    net->run(40'000'000);
  }

  la::LaConfig cfg;
  std::unique_ptr<sim::Network> net;
  std::vector<std::unique_ptr<rsm::Replica>> replicas;
  std::vector<std::unique_ptr<rsm::Client>> clients;
};

TEST(Datatypes, CounterWorkloadAccumulates) {
  RsmRig rig(3, 1);
  rig.add_client(
      rsm::CounterWorkload().add(5).read().add(7).read().script());
  rig.run();

  const auto& hist = rig.clients[0]->history();
  ASSERT_EQ(hist.size(), 4u);
  ASSERT_TRUE(hist[1].completed && hist[3].completed);
  EXPECT_EQ(rsm::CounterWorkload::value_of(hist[1]), 5u);
  EXPECT_EQ(rsm::CounterWorkload::value_of(hist[3]), 12u);
}

TEST(Datatypes, CounterMergesAcrossClients) {
  RsmRig rig(5, 2);
  rig.add_client(rsm::CounterWorkload().add(10).read().read().script());
  rig.add_client(rsm::CounterWorkload().add(32).read().read().script());
  rig.run();

  // The final reads of both clients agree on the total.
  const auto& a = rig.clients[0]->history().back();
  const auto& b = rig.clients[1]->history().back();
  ASSERT_TRUE(a.completed && b.completed);
  EXPECT_EQ(rsm::CounterWorkload::value_of(a), 42u);
  EXPECT_EQ(rsm::CounterWorkload::value_of(b), 42u);
}

TEST(Datatypes, GSetMembership) {
  RsmRig rig(7, 1);
  rig.add_client(
      rsm::GSetWorkload().add(11).add(22).read().script());
  rig.run();

  const auto& read = rig.clients[0]->history().back();
  ASSERT_TRUE(read.completed);
  EXPECT_TRUE(rsm::GSetWorkload::contains(read, 11));
  EXPECT_TRUE(rsm::GSetWorkload::contains(read, 22));
  EXPECT_FALSE(rsm::GSetWorkload::contains(read, 33));
  EXPECT_EQ(rsm::GSetWorkload::elements_of(read),
            (std::set<std::uint64_t>{11, 22}));
}

TEST(Datatypes, GSetGrowsMonotonically) {
  RsmRig rig(9, 2);
  rig.add_client(rsm::GSetWorkload().add(1).read().add(2).read().script());
  rig.add_client(rsm::GSetWorkload().add(3).read().read().script());
  rig.run();

  for (const auto& c : rig.clients) {
    std::set<std::uint64_t> prev;
    for (const auto& rec : c->history()) {
      if (rec.op.kind != rsm::Op::Kind::kRead) continue;
      ASSERT_TRUE(rec.completed);
      const auto cur = rsm::GSetWorkload::elements_of(rec);
      EXPECT_TRUE(std::includes(cur.begin(), cur.end(), prev.begin(),
                                prev.end()));
      prev = cur;
    }
  }
}

}  // namespace
}  // namespace bgla

namespace bgla {
namespace {

TEST(Datatypes, ORSetAddRemoveRoundtrip) {
  RsmRig rig(11, 1);
  // add(5), read (observe), then remove via hook, then read again.
  rig.add_client(rsm::ORSetWorkload().add(5).read().script());
  bool removed = false;
  rig.clients[0]->set_op_hook(
      [&](const rsm::Client& c, const rsm::OpRecord& rec) {
        if (rec.op.kind == rsm::Op::Kind::kRead && !removed) {
          removed = true;
          auto ops = rsm::ORSetWorkload::removes_for(rec, 5);
          ops.push_back(rsm::Op::read());
          rig.clients[0]->append_ops(std::move(ops));
          return;
        }
        if (c.done()) rig.net->request_stop();
      });
  rig.net->run(40'000'000);
  ASSERT_TRUE(rig.clients[0]->done());

  const auto& hist = rig.clients[0]->history();
  // First read observes {5}; final read observes {} (tag removed).
  std::vector<const rsm::OpRecord*> reads;
  for (const auto& r : hist) {
    if (r.op.kind == rsm::Op::Kind::kRead) reads.push_back(&r);
  }
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_TRUE(rsm::ORSetWorkload::contains(*reads[0], 5));
  EXPECT_FALSE(rsm::ORSetWorkload::contains(*reads[1], 5));
}

TEST(Datatypes, ORSetConcurrentAddWinsOverUnobservingRemove) {
  // Client B removes element 9 based on a read that observed only A's
  // first add; A's second add(9) (a fresh tag) survives the remove.
  RsmRig rig(13, 2);
  rig.add_client(rsm::ORSetWorkload().add(9).read().script());  // A
  rig.add_client(rsm::ORSetWorkload().read().script());         // B

  auto& A = *rig.clients[0];
  auto& B = *rig.clients[1];
  int phase = 0;
  B.set_op_hook([&](const rsm::Client&, const rsm::OpRecord& rec) {
    if (rec.op.kind != rsm::Op::Kind::kRead) {
      if (B.done() && A.done()) rig.net->request_stop();
      return;
    }
    if (phase == 0 && rsm::ORSetWorkload::contains(rec, 9)) {
      phase = 1;
      // Remove all observed tags of 9 AND let A concurrently re-add it.
      auto ops = rsm::ORSetWorkload::removes_for(rec, 9);
      B.append_ops(std::move(ops));
      A.append_ops(rsm::ORSetWorkload().add(9).read().script());
      B.append_ops({rsm::Op::read()});
      return;
    }
    if (B.done() && A.done()) rig.net->request_stop();
  });
  A.set_op_hook([&](const rsm::Client&, const rsm::OpRecord&) {
    if (B.done() && A.done()) rig.net->request_stop();
  });
  rig.net->run(60'000'000);
  ASSERT_TRUE(A.done() && B.done());

  // A's final read must still contain 9 (its re-add has a fresh tag the
  // remove never referenced).
  const auto& final_read = A.history().back();
  ASSERT_EQ(final_read.op.kind, rsm::Op::Kind::kRead);
  EXPECT_TRUE(rsm::ORSetWorkload::contains(final_read, 9));
}

TEST(Datatypes, ORSetPackUnpack) {
  const auto op = rsm::ORSetWorkload::pack_remove(7, 42);
  const lattice::Item cmd{1, 1, op};
  EXPECT_TRUE(rsm::ORSetWorkload::is_remove(cmd));
  const auto [c, s] = rsm::ORSetWorkload::removed_tag(cmd);
  EXPECT_EQ(c, 7u);
  EXPECT_EQ(s, 42u);
  EXPECT_FALSE(rsm::ORSetWorkload::is_remove(lattice::Item{1, 2, 9}));
}

}  // namespace
}  // namespace bgla
