// DeltaTransport equivalence and fault-path tests.
//
// Equivalence: every protocol run over the delta-encoding decorator must
// decide exactly what the direct-on-sim run decides — the decorator
// reconstructs each message byte-identically from wrapper bytes, so the
// protocols cannot tell the difference. Fault paths: out-of-order
// wrappers park in the holdback buffer, duplicates drop, a corrupted
// wrapper triggers the full-state reset protocol, and reset_peer()
// re-baselines after a simulated peer restart.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "harness/throughput.h"
#include "la/messages.h"
#include "lattice/set_elem.h"
#include "net/delta_transport.h"
#include "net/wire.h"

namespace bgla {
namespace {

using harness::ThroughputProtocol;
using harness::ThroughputScenario;
using harness::run_throughput;
using lattice::Elem;
using lattice::Item;
using lattice::make_set;

Bytes enc(const Elem& e) {
  Encoder en;
  e.encode(en);
  return en.take();
}

ThroughputScenario base_scenario(ThroughputProtocol proto) {
  ThroughputScenario sc;
  sc.protocol = proto;
  sc.n = proto == ThroughputProtocol::kFaleiro ? 3 : 4;
  sc.f = 1;
  sc.batch.max_batch = 8;
  sc.commands_per_proc = 48;
  sc.window = 8;
  sc.seed = 1234;
  return sc;
}

class DeltaEquivalenceTest
    : public ::testing::TestWithParam<ThroughputProtocol> {};

TEST_P(DeltaEquivalenceTest, DeltaRunDecidesSameAsDirectRun) {
  ThroughputScenario direct = base_scenario(GetParam());
  ThroughputScenario delta = direct;
  delta.wire = ThroughputScenario::WireMode::kDelta;

  const auto a = run_throughput(direct);
  const auto b = run_throughput(delta);

  EXPECT_TRUE(a.completed);
  EXPECT_TRUE(b.completed);
  EXPECT_TRUE(a.spec.ok()) << a.spec.diagnostic;
  EXPECT_TRUE(b.spec.ok()) << b.spec.diagnostic;
  EXPECT_EQ(a.commands, b.commands);
  EXPECT_EQ(enc(a.decided_frontier), enc(b.decided_frontier));

  // The run must actually have exercised the codec, cleanly.
  EXPECT_GT(b.wire.msgs_delta, 0u);
  EXPECT_EQ(b.wire.resets_sent, 0u);
  EXPECT_EQ(b.wire.reconstruct_failures, 0u);
  // Deltas must beat shipping full states on the wrapped traffic.
  EXPECT_LT(b.wire.wire_bytes_delta, b.wire.logical_bytes);
}

TEST_P(DeltaEquivalenceTest, MeterModeIsPurePassthrough) {
  ThroughputScenario direct = base_scenario(GetParam());
  ThroughputScenario meter = direct;
  meter.wire = ThroughputScenario::WireMode::kMeter;

  const auto a = run_throughput(direct);
  const auto b = run_throughput(meter);

  EXPECT_TRUE(b.spec.ok()) << b.spec.diagnostic;
  EXPECT_EQ(a.commands, b.commands);
  EXPECT_EQ(enc(a.decided_frontier), enc(b.decided_frontier));
  EXPECT_EQ(b.wire.msgs_delta, 0u);
  EXPECT_GT(b.wire.msgs_passthrough, 0u);
  EXPECT_GT(b.bytes_per_command, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, DeltaEquivalenceTest,
    ::testing::Values(ThroughputProtocol::kFaleiro, ThroughputProtocol::kGwts,
                      ThroughputProtocol::kGsbs),
    [](const auto& info) {
      switch (info.param) {
        case ThroughputProtocol::kFaleiro: return std::string("Faleiro");
        case ThroughputProtocol::kGwts: return std::string("Gwts");
        case ThroughputProtocol::kGsbs: return std::string("Gsbs");
      }
      return std::string("Unknown");
    });

// ---------------------------------------------------------------------------
// Fault-path tests against a hand-pumped inner transport.

struct Captured {
  ProcessId from;
  ProcessId to;
  sim::MessagePtr msg;
};

/// Inner transport the test pumps by hand: sends are captured, delivery
/// order (reorder, duplicate, drop) is entirely the test's choice.
class ManualTransport final : public net::Transport {
 public:
  ProcessId attach(net::Endpoint& e) override {
    eps_[e.id()] = &e;
    return e.id();
  }
  void detach(ProcessId id) override { eps_.erase(id); }
  void send(ProcessId from, ProcessId to, sim::MessagePtr msg) override {
    sent.push_back({from, to, std::move(msg)});
  }
  net::Time now() const override { return 0; }
  std::uint64_t current_depth() const override { return 0; }
  void request_stop() override {}

  /// Hands one captured message to the registered endpoint (the
  /// DeltaTransport proxy) as if the network delivered it.
  void deliver(const Captured& c) {
    const auto it = eps_.find(c.to);
    ASSERT_NE(it, eps_.end());
    it->second->on_message(c.from, c.msg);
  }

  std::vector<Captured> sent;

 private:
  std::map<ProcessId, net::Endpoint*> eps_;
};

/// Outer endpoint recording everything the decorator delivers.
class Sink final : public net::Endpoint {
 public:
  Sink(net::Transport& t, ProcessId id) : net::Endpoint(t, id) {}
  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    received.push_back({from, id(), msg});
  }
  std::vector<Captured> received;
};

std::shared_ptr<la::DisclosureMsg> disclosure(std::uint64_t hi) {
  // 8 items per step: step k's delta (8 new items) is strictly smaller
  // than its full encoding (8*k items), so size assertions are
  // meaningful from the second message on.
  std::set<Item> items;
  for (std::uint64_t k = 1; k <= hi * 8; ++k) items.insert(Item{1, k, 1});
  return std::make_shared<la::DisclosureMsg>(make_set(std::move(items)));
}

class DeltaFaultTest : public ::testing::Test {
 protected:
  DeltaFaultTest() : dt_(inner_), a_(dt_, 0), b_(dt_, 1) {}

  /// Sends `n` growing disclosures 0 -> 1 and returns the captured
  /// wrappers (clearing the capture buffer first).
  std::vector<Captured> send_chain(std::uint64_t n) {
    inner_.sent.clear();
    for (std::uint64_t k = 1; k <= n; ++k) {
      dt_.send(0, 1, disclosure(k));
    }
    return inner_.sent;
  }

  ManualTransport inner_;
  net::DeltaTransport dt_;
  Sink a_;
  Sink b_;
};

TEST_F(DeltaFaultTest, InOrderChainReconstructsByteIdentically) {
  const auto wrapped = send_chain(3);
  ASSERT_EQ(wrapped.size(), 3u);
  // Second and third ride the chain as deltas: strictly smaller than
  // their own full encodings even with the wrapper header on top.
  EXPECT_LT(wrapped[1].msg->encoded().size(), disclosure(2)->encoded().size());
  EXPECT_LT(wrapped[2].msg->encoded().size(), disclosure(3)->encoded().size());
  for (const auto& c : wrapped) {
    EXPECT_EQ(c.msg->type_id(), 90u);
    inner_.deliver(c);
  }
  ASSERT_EQ(b_.received.size(), 3u);
  for (std::uint64_t k = 1; k <= 3; ++k) {
    EXPECT_EQ(b_.received[k - 1].msg->encoded(), disclosure(k)->encoded());
  }
}

TEST_F(DeltaFaultTest, OutOfOrderWrappersParkInHoldback) {
  const auto wrapped = send_chain(3);
  ASSERT_EQ(wrapped.size(), 3u);
  inner_.deliver(wrapped[2]);  // seq 3: parked
  inner_.deliver(wrapped[1]);  // seq 2: parked
  EXPECT_TRUE(b_.received.empty());
  inner_.deliver(wrapped[0]);  // seq 1: drains all three in order
  ASSERT_EQ(b_.received.size(), 3u);
  for (std::uint64_t k = 1; k <= 3; ++k) {
    EXPECT_EQ(b_.received[k - 1].msg->encoded(), disclosure(k)->encoded());
  }
  EXPECT_EQ(dt_.stats().held_peak, 2u);
  EXPECT_EQ(dt_.stats().resets_sent, 0u);
}

TEST_F(DeltaFaultTest, DuplicateWrapperIsDropped) {
  const auto wrapped = send_chain(2);
  inner_.deliver(wrapped[0]);
  inner_.deliver(wrapped[0]);  // duplicate: dropped, chain undisturbed
  inner_.deliver(wrapped[1]);
  ASSERT_EQ(b_.received.size(), 2u);
  EXPECT_EQ(b_.received[1].msg->encoded(), disclosure(2)->encoded());
}

TEST_F(DeltaFaultTest, CorruptedWrapperTriggersResetAndRecovers) {
  const auto wrapped = send_chain(2);
  inner_.deliver(wrapped[0]);
  // Corrupt the second wrapper's payload: reconstruct must fail loudly.
  auto w = std::dynamic_pointer_cast<const la::DeltaWrapMsg>(wrapped[1].msg);
  ASSERT_NE(w, nullptr);
  Bytes garbled = w->payload;
  ASSERT_FALSE(garbled.empty());
  garbled.back() ^= 0xFF;
  auto bad = std::make_shared<la::DeltaWrapMsg>(w->epoch, w->seq,
                                                w->inner_type, garbled);
  inner_.sent.clear();
  inner_.deliver({0, 1, bad});
  EXPECT_EQ(dt_.stats().reconstruct_failures, 1u);
  EXPECT_EQ(dt_.stats().resets_sent, 1u);
  // The receiver pushed a DeltaResetMsg back to the sender.
  ASSERT_EQ(inner_.sent.size(), 1u);
  EXPECT_EQ(inner_.sent[0].msg->type_id(), 91u);
  EXPECT_EQ(inner_.sent[0].to, 0u);
  inner_.deliver(inner_.sent[0]);
  EXPECT_EQ(dt_.stats().resets_received, 1u);
  // Post-reset traffic restarts from a full encoding in a fresh epoch and
  // reconstructs again.
  const auto fresh = send_chain(1);
  ASSERT_EQ(fresh.size(), 1u);
  inner_.deliver(fresh[0]);
  ASSERT_EQ(b_.received.size(), 2u);
  EXPECT_EQ(b_.received.back().msg->encoded(), disclosure(1)->encoded());
}

TEST_F(DeltaFaultTest, ResetPeerRebaselinesBothDirections) {
  const auto before = send_chain(2);
  for (const auto& c : before) inner_.deliver(c);
  ASSERT_EQ(b_.received.size(), 2u);
  // Peer 1 "restarted": its decorator state is gone. Ours must forget
  // every baseline negotiated with it.
  dt_.reset_peer(1);
  const auto after = send_chain(2);
  ASSERT_EQ(after.size(), 2u);
  auto w = std::dynamic_pointer_cast<const la::DeltaWrapMsg>(after[0].msg);
  ASSERT_NE(w, nullptr);
  EXPECT_GT(w->epoch, 1u);  // fresh epoch, so a fresh receiver accepts it
  for (const auto& c : after) inner_.deliver(c);
  ASSERT_EQ(b_.received.size(), 4u);
  EXPECT_EQ(b_.received[2].msg->encoded(), disclosure(1)->encoded());
  EXPECT_EQ(b_.received[3].msg->encoded(), disclosure(2)->encoded());
}

TEST_F(DeltaFaultTest, StaleEpochWrapperIsDiscarded) {
  const auto old_epoch = send_chain(1);
  dt_.reset_peer(1);
  const auto new_epoch = send_chain(1);
  inner_.deliver(new_epoch[0]);
  ASSERT_EQ(b_.received.size(), 1u);
  inner_.deliver(old_epoch[0]);  // stale epoch: silently dropped
  EXPECT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(dt_.stats().resets_sent, 0u);
}

TEST_F(DeltaFaultTest, IneligibleTrafficPassesThroughUnwrapped) {
  inner_.sent.clear();
  dt_.send(0, 1, std::make_shared<la::CatchupReqMsg>(7));
  ASSERT_EQ(inner_.sent.size(), 1u);
  EXPECT_EQ(inner_.sent[0].msg->type_id(), 70u);
  inner_.deliver(inner_.sent[0]);
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(dt_.stats().msgs_passthrough, 1u);
}

}  // namespace
}  // namespace bgla
