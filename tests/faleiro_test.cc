// Crash-stop baseline (Faleiro et al., PODC 2012) tests: correctness under
// crash faults within the bound, liveness loss beyond it, and — the point
// of bench T7 — demonstrable safety violations under Byzantine behaviour,
// which WTS survives in the identical setting.
#include <gtest/gtest.h>

#include "harness/scenario.h"
#include "la/faleiro_la.h"
#include "lattice/set_elem.h"

namespace bgla {
namespace {

using harness::FaleiroScenario;
using harness::Sched;
using lattice::Item;
using lattice::make_set;

class FaleiroSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,  // n
                                                 std::uint32_t,  // crashes
                                                 std::uint64_t>> {};

TEST_P(FaleiroSweep, CrashStopSpecHolds) {
  const auto [n, crashes, seed] = GetParam();
  FaleiroScenario sc;
  sc.n = n;
  sc.f = (n - 1) / 2;
  sc.crash_count = crashes;
  sc.seed = seed;
  sc.submissions_per_proc = 2;
  const auto rep = harness::run_faleiro(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, FaleiroSweep,
    ::testing::Combine(::testing::Values<std::uint32_t>(3, 5, 7, 9),
                       ::testing::Values<std::uint32_t>(0, 1),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(Faleiro, ToleratesCrashesUpToMinority) {
  FaleiroScenario sc;
  sc.n = 7;
  sc.f = 3;
  sc.crash_count = 3;  // exactly the bound
  sc.seed = 5;
  const auto rep = harness::run_faleiro(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
}

TEST(Faleiro, LosesLivenessBeyondMajorityCrashes) {
  // With ⌈n/2⌉ processes crashed from (almost) the start, the majority
  // quorum is unreachable and proposals stall. The run must terminate
  // (quiesce) without the live processes completing their decisions.
  la::CrashConfig cfg;
  cfg.n = 5;
  cfg.f = 2;
  sim::Network net(std::make_unique<sim::UniformDelay>(5, 20), 3, 5);
  std::vector<std::unique_ptr<la::FaleiroProcess>> procs;
  for (ProcessId id = 0; id < 5; ++id) {
    procs.push_back(std::make_unique<la::FaleiroProcess>(
        net, id, cfg, make_set({Item{id, 1, 0}})));
    if (id >= 2) procs.back()->crash_at(1);  // 3 of 5 crash immediately
  }
  const auto rr = net.run();
  EXPECT_TRUE(rr.quiescent);
  for (ProcessId id = 0; id < 2; ++id) {
    EXPECT_TRUE(procs[id]->decisions().empty())
        << "p" << id << " decided without a majority";
  }
}

TEST(Faleiro, ByzantineBreaksComparability) {
  // The T7 violation: one lying acker + an adversarial schedule makes two
  // correct processes decide incomparable values at n = 3 (crash-quorum 2).
  FaleiroScenario sc;
  sc.n = 3;
  sc.f = 1;
  sc.byz_lying_acker = true;
  sc.sched = Sched::kTargeted;
  sc.seed = 1;
  const auto rep = harness::run_faleiro(sc);
  EXPECT_FALSE(rep.spec.comparability)
      << "expected the crash-stop protocol to be broken by a Byzantine";
}

TEST(Faleiro, WtsSurvivesTheSameAttackShape) {
  // Contrast for T7: WTS at n = 4 (= 3f+1) with a lying acker and the
  // same targeted schedule keeps every property.
  harness::WtsScenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.adversary = harness::Adversary::kLyingAcker;
  sc.sched = Sched::kTargeted;
  sc.seed = 1;
  const auto rep = harness::run_wts(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
}

TEST(Faleiro, ByzantineViolationAcrossSeeds) {
  // The violation is schedule-dependent but must be reproducible across
  // several seeds under the targeted schedule.
  int violations = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    FaleiroScenario sc;
    sc.n = 3;
    sc.f = 1;
    sc.byz_lying_acker = true;
    sc.sched = Sched::kTargeted;
    sc.seed = seed;
    const auto rep = harness::run_faleiro(sc);
    if (!rep.spec.comparability) ++violations;
  }
  EXPECT_GE(violations, 4);
}

TEST(Faleiro, GeneralizedStreamingDecisions) {
  FaleiroScenario sc;
  sc.n = 5;
  sc.f = 2;
  sc.submissions_per_proc = 4;
  sc.seed = 9;
  const auto rep = harness::run_faleiro(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
  EXPECT_GE(rep.total_decisions, 5u);  // several batches decided
}

TEST(Faleiro, DeterministicReplay) {
  FaleiroScenario sc;
  sc.n = 5;
  sc.f = 2;
  sc.crash_count = 1;
  sc.seed = 4;
  const auto a = harness::run_faleiro(sc);
  const auto b = harness::run_faleiro(sc);
  EXPECT_EQ(a.total_msgs, b.total_msgs);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(Faleiro, RequiresMajority) {
  la::CrashConfig cfg;
  cfg.n = 4;
  cfg.f = 2;  // 2f+1 > 4
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(Faleiro, CheaperThanGwtsPerDecision) {
  // T6 shape: Byzantine tolerance costs at least an order of magnitude in
  // messages per decision (reliable broadcasts of disclosures and acks).
  FaleiroScenario fsc;
  fsc.n = 7;
  fsc.f = 3;
  fsc.submissions_per_proc = 3;
  fsc.seed = 2;
  const auto base = harness::run_faleiro(fsc);

  harness::GwtsScenario gsc;
  gsc.n = 7;
  gsc.f = 2;
  gsc.adversary = harness::Adversary::kNone;
  gsc.target_decisions = 3;
  gsc.submissions_per_proc = 3;
  gsc.seed = 2;
  const auto byzt = harness::run_gwts(gsc);

  ASSERT_TRUE(base.completed && byzt.completed);
  EXPECT_GT(byzt.msgs_per_decision_per_proposer,
            5.0 * base.msgs_per_decision_per_proposer);
}

}  // namespace
}  // namespace bgla
