// Protocol fuzzing: a Byzantine process that sprays structurally valid
// but randomly-filled protocol messages (all types, random lattice
// elements including wrong families, random timestamps/rounds/tags/fake
// origins) at every process. Correct processes must neither crash nor
// lose safety, and liveness must survive — for every seed.
#include <gtest/gtest.h>

#include <fstream>

#include "bcast/bracha.h"
#include "la/gwts.h"
#include "la/messages.h"
#include "la/recovery.h"
#include "la/spec.h"
#include "la/wts.h"
#include "lattice/maxint_elem.h"
#include "lattice/set_elem.h"
#include "net/delta_codec.h"
#include "net/shard_envelope.h"
#include "net/wire.h"
#include "rsm/msgs.h"
#include "sim/network.h"
#include "store/replica_store.h"
#include "util/check.h"
#include "util/rng.h"

namespace bgla {
namespace {

using la::Elem;
using lattice::Item;
using lattice::make_set;

/// Generates a random lattice element: usually a small set, sometimes the
/// wrong family, sometimes bottom.
Elem random_elem(Rng& rng) {
  const auto kind = rng.uniform(0, 9);
  if (kind == 0) return Elem();                          // bottom
  if (kind == 1) return lattice::make_maxint(rng.next_u64());  // wrong kind
  std::set<Item> items;
  const std::size_t k = rng.uniform(0, 4);
  for (std::size_t i = 0; i < k; ++i) {
    items.insert(Item{rng.uniform(0, 8), rng.uniform(0, 2000),
                      rng.uniform(0, 2)});
  }
  return make_set(std::move(items));
}

/// A structurally valid protocol message with randomly-filled content —
/// shared between the in-sim Byzantine sprayer and the wire-decoder fuzz.
sim::MessagePtr random_message(Rng& rng, std::uint32_t n) {
  switch (rng.uniform(0, 12)) {
    case 0:
      return std::make_shared<la::DisclosureMsg>(random_elem(rng));
    case 1:
      return std::make_shared<la::AckReqMsg>(random_elem(rng),
                                             rng.uniform(0, 5));
    case 2:
      return std::make_shared<la::AckMsg>(random_elem(rng),
                                          rng.uniform(0, 5));
    case 3:
      return std::make_shared<la::NackMsg>(random_elem(rng),
                                           rng.uniform(0, 5));
    case 4:
      return std::make_shared<la::GAckReqMsg>(
          random_elem(rng), rng.uniform(0, 5), rng.uniform(0, 6));
    case 5:
      return std::make_shared<la::GAckMsg>(
          random_elem(rng), static_cast<ProcessId>(rng.uniform(0, 7)),
          static_cast<ProcessId>(rng.uniform(0, 7)), rng.uniform(0, 5),
          rng.uniform(0, 6));
    case 6:
      return std::make_shared<la::GNackMsg>(
          random_elem(rng), rng.uniform(0, 5), rng.uniform(0, 6));
    case 7: {
      const bcast::RbKey key{static_cast<ProcessId>(rng.uniform(0, n)),
                             rng.uniform(0, 8)};
      return std::make_shared<bcast::RbSendMsg>(
          key, std::make_shared<la::DisclosureMsg>(random_elem(rng)));
    }
    case 8: {
      const bcast::RbKey key{static_cast<ProcessId>(rng.uniform(0, n)),
                             rng.uniform(0, 8)};
      return std::make_shared<bcast::RbEchoMsg>(
          key, std::make_shared<la::GDisclosureMsg>(random_elem(rng),
                                                    rng.uniform(0, 4)));
    }
    case 9:
      // Backpressure nack (25): a hostile nack for a value never
      // submitted, or from a fake replica id, must be ignored cleanly.
      return std::make_shared<la::SubmitNackMsg>(
          random_elem(rng), rng.uniform(0, 100),
          static_cast<ProcessId>(rng.uniform(0, 7)));
    case 11:
      // Shard envelope (80): random shard ids — usually out of range of
      // any real deployment — around a recursively random inner message.
      // Sharded and unsharded endpoints alike must shrug these off.
      return std::make_shared<net::ShardEnvelopeMsg>(
          static_cast<std::uint32_t>(rng.uniform(0, 12)),
          random_message(rng, n));
    case 10: {
      // Batched client updates (64), random length including empty.
      std::vector<Item> cmds;
      const std::size_t k = rng.uniform(0, 5);
      for (std::size_t i = 0; i < k; ++i) {
        cmds.push_back(Item{rng.uniform(0, 8), rng.uniform(0, 2000),
                            rng.uniform(0, 2)});
      }
      return std::make_shared<rsm::BatchUpdateMsg>(std::move(cmds));
    }
    default: {
      const bcast::RbKey key{static_cast<ProcessId>(rng.uniform(0, n)),
                             rng.uniform(0, 8)};
      return std::make_shared<bcast::RbReadyMsg>(
          key, std::make_shared<la::SubmitMsg>(random_elem(rng)));
    }
  }
}

class FuzzByz : public sim::Process {
 public:
  FuzzByz(sim::Network& net, ProcessId id, std::uint32_t n,
          std::uint64_t seed, std::uint32_t budget)
      : sim::Process(net, id), n_(n), rng_(seed), budget_(budget) {}

  void on_start() override { spray(8); }
  void on_message(ProcessId, const sim::MessagePtr&) override { spray(2); }

 private:
  void spray(std::uint32_t count) {
    for (std::uint32_t i = 0; i < count && sent_ < budget_; ++i, ++sent_) {
      send(static_cast<ProcessId>(rng_.uniform(0, n_ - 1)),
           random_message(rng_, n_));
    }
  }

  std::uint32_t n_;
  Rng rng_;
  std::uint32_t budget_;
  std::uint32_t sent_ = 0;
};

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, WtsSurvivesRandomGarbage) {
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  sim::Network net(std::make_unique<sim::UniformDelay>(1, 10), GetParam(),
                   4);
  std::vector<std::unique_ptr<la::WtsProcess>> correct;
  for (ProcessId id = 0; id < 3; ++id) {
    correct.push_back(std::make_unique<la::WtsProcess>(
        net, id, cfg, make_set({Item{id, 100 + id, 0}})));
  }
  FuzzByz fuzzer(net, 3, 4, GetParam() * 31 + 7, /*budget=*/600);
  const auto rr = net.run(5'000'000);
  EXPECT_TRUE(rr.quiescent);

  std::vector<la::LaView> views;
  for (const auto& p : correct) {
    ASSERT_TRUE(p->decided()) << "fuzzer blocked liveness, p" << p->id();
    la::LaView v;
    v.id = p->id();
    v.proposal = p->proposal();
    v.decision = p->decision().value;
    v.svs = p->svs();
    views.push_back(std::move(v));
  }
  const auto res = la::check_la(views, {3}, cfg.f);
  EXPECT_TRUE(res.ok()) << res.diagnostic;
}

TEST_P(FuzzSweep, GwtsSurvivesRandomGarbage) {
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  sim::Network net(std::make_unique<sim::UniformDelay>(1, 10), GetParam(),
                   4);
  std::vector<std::unique_ptr<la::GwtsProcess>> correct;
  for (ProcessId id = 0; id < 3; ++id) {
    correct.push_back(std::make_unique<la::GwtsProcess>(net, id, cfg));
  }
  FuzzByz fuzzer(net, 3, 4, GetParam() * 17 + 3, /*budget=*/600);
  for (auto& p : correct) {
    p->set_decide_hook(
        [&](const la::GwtsProcess&, const la::DecisionRecord&) {
          for (auto& q : correct) {
            if (q->decisions().size() < 4) return;
          }
          net.request_stop();
        });
  }
  net.inject(0, 0,
             std::make_shared<la::SubmitMsg>(make_set({Item{0, 1, 0}})),
             25);
  const auto rr = net.run(10'000'000);
  EXPECT_TRUE(rr.stopped) << "fuzzer blocked GWTS liveness";

  std::vector<la::GlaView> views;
  Elem byz_disclosed;
  for (const auto& p : correct) {
    la::GlaView v;
    v.id = p->id();
    v.submitted = p->submitted();
    for (const auto& d : p->decisions()) v.decisions.push_back(d.value);
    for (const auto& [origin, value] : p->disclosed_by()) {
      if (origin == 3) byz_disclosed = byz_disclosed.join(value);
    }
    views.push_back(std::move(v));
  }
  const auto res = la::check_gla(views, byz_disclosed, 4);
  EXPECT_TRUE(res.ok()) << res.diagnostic;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

// The wire decoder faces the same hostile universe as the protocols: the
// sprayer's randomly-filled messages (wrong lattice families, bottoms,
// fake origins) must round-trip canonically, and random byte corruptions
// of their encodings must be rejected — or re-canonicalized into a stable
// encoding (set re-sorting etc.; digests then diverge and the protocol
// layer rejects, see net/wire.h), never accepted in a form the decoder
// itself would re-encode differently.
TEST_P(FuzzSweep, WireDecoderSurvivesFuzzedMessages) {
  Rng rng(GetParam() * 77 + 13);
  for (int i = 0; i < 400; ++i) {
    const sim::MessagePtr msg = random_message(rng, 4);
    const Bytes& bytes = msg->encoded();
    const sim::MessagePtr d = net::decode_message(bytes);
    ASSERT_NE(d, nullptr) << msg->to_string();
    EXPECT_EQ(d->encoded(), bytes) << msg->to_string();

    Bytes mutated = bytes;
    mutated[rng.uniform(0, mutated.size() - 1)] ^=
        static_cast<std::uint8_t>(rng.uniform(1, 255));
    const sim::MessagePtr md = net::decode_message(mutated);
    if (md != nullptr) {
      // Canonical fixpoint: whatever the decoder accepted, its own
      // re-encoding must decode back to the identical byte string.
      const sim::MessagePtr md2 = net::decode_message(md->encoded());
      ASSERT_NE(md2, nullptr) << msg->to_string();
      EXPECT_EQ(md2->encoded(), md->encoded()) << msg->to_string();
    }
  }
}

// The optional trace-context tail widens the decode surface of the
// allowlisted types (net/wire.cc): random trailing bytes must either be
// rejected or decode into a valid context whose re-encoding is canonical
// — and a tail glued onto a non-allowlisted type must always reject.
TEST_P(FuzzSweep, WireDecoderSurvivesFuzzedTraceContextTails) {
  Rng rng(GetParam() * 131 + 7);
  for (int i = 0; i < 400; ++i) {
    const sim::MessagePtr msg = random_message(rng, 4);
    Bytes bytes = msg->encoded();
    const std::size_t tail_len = rng.uniform(1, 10);
    for (std::size_t b = 0; b < tail_len; ++b) {
      bytes.push_back(static_cast<std::uint8_t>(rng.uniform(0, 255)));
    }
    const sim::MessagePtr d = net::decode_message(bytes);
    if (d != nullptr) {
      // Only an allowlisted type can absorb trailing bytes, and then only
      // as a well-formed context (nonzero trace id).
      EXPECT_TRUE(d->trace_ctx().valid() || bytes == msg->encoded())
          << msg->to_string();
      const sim::MessagePtr d2 = net::decode_message(d->encoded());
      ASSERT_NE(d2, nullptr) << msg->to_string();
      EXPECT_EQ(d2->encoded(), d->encoded()) << msg->to_string();
    }
  }
}

// ----------------------------------------------------- durable-state fuzz --
// The store decoders face a weaker adversary than the wire (a disk, not a
// Byzantine peer) but the same contract: arbitrary bytes must yield clean,
// reported errors — truncated torn tails, quarantined corrupt suffixes —
// never UB. These sweeps randomize what store_test pins down case by case.

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const Bytes& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Applies one random corruption: torn tail, bit flip, a record-length
/// bomb appended at the end, or wholesale replacement with garbage.
void corrupt(Rng& rng, Bytes* file) {
  switch (rng.uniform(0, 3)) {
    case 0:
      file->resize(file->empty() ? 0 : rng.uniform(0, file->size() - 1));
      break;
    case 1:
      if (!file->empty()) {
        (*file)[rng.uniform(0, file->size() - 1)] ^=
            static_cast<std::uint8_t>(rng.uniform(1, 255));
      }
      break;
    case 2:
      for (int i = 0; i < 8; ++i) file->push_back(0xff);  // length bomb
      break;
    default: {
      file->resize(rng.uniform(0, 64));
      for (auto& b : *file) {
        b = static_cast<std::uint8_t>(rng.uniform(0, 255));
      }
      break;
    }
  }
}

TEST_P(FuzzSweep, WalRecoverySurvivesArbitraryCorruption) {
  Rng rng(GetParam() * 101 + 29);
  const std::string dir = store::make_temp_dir("bgla-fuzz-wal-");
  for (int iter = 0; iter < 30; ++iter) {
    const std::string path =
        dir + "/wal" + std::to_string(iter) + ".log";
    std::vector<Bytes> originals;
    {
      store::WalWriter w;
      w.open(path);
      const std::uint64_t nrec = rng.uniform(1, 5);
      for (std::uint64_t r = 0; r < nrec; ++r) {
        Bytes payload(rng.uniform(0, 200));
        for (auto& b : payload) {
          b = static_cast<std::uint8_t>(rng.uniform(0, 255));
        }
        w.append(BytesView(payload));
        originals.push_back(std::move(payload));
      }
    }
    Bytes file = read_file(path);
    corrupt(rng, &file);
    write_file(path, file);

    // Recovery must not throw on content, and whatever survives must be
    // an unmodified prefix of what was written.
    const store::WalRecovery rec = store::recover_wal(path);
    ASSERT_LE(rec.records.size(), originals.size());
    for (std::size_t i = 0; i < rec.records.size(); ++i) {
      EXPECT_EQ(rec.records[i], originals[i]);
    }
    // The in-place repair is a fixpoint: a second pass finds a clean log
    // with the same records.
    const store::WalRecovery rec2 = store::recover_wal(path);
    EXPECT_TRUE(rec2.clean()) << rec2.detail;
    EXPECT_EQ(rec2.records.size(), rec.records.size());
  }
}

TEST_P(FuzzSweep, SnapshotReadSurvivesArbitraryCorruption) {
  Rng rng(GetParam() * 137 + 41);
  const std::string dir = store::make_temp_dir("bgla-fuzz-snap-");
  for (int iter = 0; iter < 30; ++iter) {
    const std::string path =
        dir + "/snap" + std::to_string(iter) + ".bin";
    Bytes payload(rng.uniform(0, 300));
    for (auto& b : payload) {
      b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    store::write_snapshot(path, BytesView(payload));
    Bytes file = read_file(path);
    corrupt(rng, &file);
    write_file(path, file);

    // Either the corruption missed the covered region (impossible for
    // these mutations except a no-op flip race, so: full round-trip) or
    // the snapshot is rejected and quarantined — never garbage accepted.
    const store::SnapshotRead r = store::read_snapshot(path);
    if (r.found && r.valid) {
      EXPECT_EQ(r.payload, payload);
    }
    const store::SnapshotRead r2 = store::read_snapshot(path);
    EXPECT_FALSE(r2.found && !r2.valid) << "quarantine was not sticky";
  }
}

// Durable state blobs (la/recovery.h): a real GWTS export mutated by the
// same corruption ops must either import/summarize successfully or throw
// CheckError — anything else (a crash, UB, a foreign exception) fails.
TEST_P(FuzzSweep, StateBlobDecodersSurviveFuzz) {
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  sim::Network net(std::make_unique<sim::UniformDelay>(1, 10), GetParam(),
                   4);
  std::vector<std::unique_ptr<la::GwtsProcess>> procs;
  for (ProcessId id = 0; id < 4; ++id) {
    procs.push_back(std::make_unique<la::GwtsProcess>(net, id, cfg));
    procs[id]->submit(make_set({Item{id, 500 + id, 0}}));
  }
  net.run(2'000'000);
  Encoder enc;
  procs[0]->export_state(enc);
  const Bytes blob = enc.bytes();
  EXPECT_NO_THROW(la::summarize_state(BytesView(blob)));

  Rng rng(GetParam() * 211 + 5);
  for (int i = 0; i < 150; ++i) {
    Bytes m = blob;
    corrupt(rng, &m);
    try {
      la::summarize_state(BytesView(m));
    } catch (const CheckError&) {
      // clean rejection is the contract
    }
  }
  for (int i = 0; i < 20; ++i) {
    Bytes m = blob;
    corrupt(rng, &m);
    sim::Network net2(std::make_unique<sim::UniformDelay>(1, 10), 1, 4);
    la::GwtsProcess p(net2, 0, cfg);
    try {
      Decoder dec{BytesView(m)};
      p.import_state(dec);
    } catch (const CheckError&) {
    }
  }
}

// Compacted (v3, folded) blobs fuzz the same surface with the fold
// counters live: the summarizer and importer must reject corruption of
// the folded form as cleanly as the unfolded one, and a clean compacted
// blob must round-trip through import → export byte-identically.
TEST_P(FuzzSweep, CompactedStateBlobSurvivesFuzz) {
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  sim::Network net(std::make_unique<sim::UniformDelay>(1, 10), GetParam(),
                   4);
  std::vector<std::unique_ptr<la::GwtsProcess>> procs;
  for (ProcessId id = 0; id < 4; ++id) {
    procs.push_back(std::make_unique<la::GwtsProcess>(net, id, cfg));
    for (std::uint64_t k = 0; k < 4; ++k) {
      procs[id]->submit(make_set({Item{id, 700 + 8 * k + id, 0}}));
    }
  }
  net.run(4'000'000);
  procs[0]->compact_decided_prefix(/*keep_tail=*/1);
  Encoder enc;
  procs[0]->export_state(enc);
  const Bytes blob = enc.bytes();

  const la::StateSummary sum = la::summarize_state(BytesView(blob));
  EXPECT_EQ(sum.folded_submitted, procs[0]->folded_submitted());
  EXPECT_EQ(sum.folded_decisions, procs[0]->folded_decisions());

  {
    sim::Network net2(std::make_unique<sim::UniformDelay>(1, 10), 1, 4);
    la::GwtsProcess p(net2, 0, cfg);
    Decoder dec{BytesView(blob)};
    p.import_state(dec);
    EXPECT_EQ(p.folded_submitted(), procs[0]->folded_submitted());
    Encoder re;
    p.export_state(re);
    EXPECT_EQ(re.bytes(), blob);
  }

  Rng rng(GetParam() * 223 + 9);
  for (int i = 0; i < 150; ++i) {
    Bytes m = blob;
    corrupt(rng, &m);
    try {
      la::summarize_state(BytesView(m));
    } catch (const CheckError&) {
    }
    sim::Network net2(std::make_unique<sim::UniformDelay>(1, 10), 1, 4);
    la::GwtsProcess p(net2, 0, cfg);
    try {
      Decoder dec{BytesView(m)};
      p.import_state(dec);
    } catch (const CheckError&) {
    }
  }
}

// Delta-codec payload surface: structurally valid wrapped payloads,
// then corrupted ones, against both synced and fresh receiver chains.
// The contract is throw-or-reconstruct — never crash, never silently
// deliver bytes that don't decode as a wire message.
TEST_P(FuzzSweep, DeltaPayloadDecoderSurvivesFuzz) {
  Rng rng(GetParam() * 313 + 3);
  std::map<std::uint64_t, net::SendChain> send;
  std::map<std::uint64_t, net::RecvChain> recv;
  for (int i = 0; i < 300; ++i) {
    const sim::MessagePtr msg = random_message(rng, 4);
    if (!net::delta_eligible(msg->type_id())) continue;
    std::uint64_t stream = 0, seq = 0;
    Bytes payload;
    if (!net::encode_delta(*msg, send, &stream, &seq, &payload)) continue;

    // Corrupted copy first, against a throwaway chain clone semantics:
    // a fresh chain must reject or reconstruct *something decodable*.
    Bytes m = payload;
    corrupt(rng, &m);
    net::RecvChain scratch;
    try {
      net::decode_delta(msg->type_id(), BytesView(m), scratch);
    } catch (const CheckError&) {
    }

    // The intact payload must keep the live chain in lockstep.
    const Bytes rebuilt =
        net::decode_delta(msg->type_id(), BytesView(payload), recv[stream]);
    Encoder framed;
    framed.put_u32(msg->type_id());
    framed.put_raw(BytesView(rebuilt));
    EXPECT_EQ(framed.bytes(), msg->encoded()) << msg->to_string();
  }
}

}  // namespace
}  // namespace bgla
