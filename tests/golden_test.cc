// Golden regression tests: pin exact, bit-deterministic outcomes of fixed
// (parameters, seed) runs. Any change to protocol logic, message routing,
// RNG consumption order, or event scheduling shows up here first — and the
// pinned values double as documented reference runs.
//
// If a deliberate behavioural change breaks these, re-pin the constants in
// the same commit and say why in the commit message.
#include <gtest/gtest.h>

#include "harness/scenario.h"

namespace bgla {
namespace {

using harness::Adversary;
using harness::Sched;

TEST(Golden, WtsReferenceRun) {
  harness::WtsScenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.byz_count = 2;
  sc.adversary = Adversary::kEquivocator;
  sc.sched = Sched::kUniform;
  sc.seed = 42;
  const auto rep = harness::run_wts(sc);
  ASSERT_TRUE(rep.completed);
  ASSERT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;

  const auto again = harness::run_wts(sc);
  EXPECT_EQ(rep.total_msgs, again.total_msgs);
  EXPECT_EQ(rep.end_time, again.end_time);
  EXPECT_EQ(rep.max_depth, again.max_depth);

  // Pinned reference values (seed 42).
  EXPECT_EQ(rep.total_msgs, 452u);
  EXPECT_EQ(rep.end_time, 89u);
  EXPECT_EQ(rep.max_depth, 6u);
  EXPECT_EQ(rep.max_refinements, 0u);
}

TEST(Golden, GwtsReferenceRun) {
  harness::GwtsScenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.adversary = Adversary::kStaleNacker;
  sc.sched = Sched::kUniform;
  sc.seed = 7;
  sc.target_decisions = 3;
  const auto rep = harness::run_gwts(sc);
  ASSERT_TRUE(rep.completed);
  ASSERT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;

  EXPECT_EQ(rep.total_msgs, 1047u);
  EXPECT_EQ(rep.end_time, 210u);
  EXPECT_EQ(rep.total_decisions, 9u);
}

TEST(Golden, SbsReferenceRun) {
  harness::SbsScenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.byz_count = 2;
  sc.adversary = Adversary::kEquivocator;
  sc.seed = 5;
  const auto rep = harness::run_sbs(sc);
  ASSERT_TRUE(rep.completed);
  ASSERT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;

  EXPECT_EQ(rep.total_msgs, 212u);
  EXPECT_EQ(rep.max_depth, 7u);
}

TEST(Golden, FaleiroViolationReferenceRun) {
  harness::FaleiroScenario sc;
  sc.n = 3;
  sc.f = 1;
  sc.byz_lying_acker = true;
  sc.sched = Sched::kTargeted;
  sc.seed = 1;
  const auto rep = harness::run_faleiro(sc);
  EXPECT_FALSE(rep.spec.comparability);  // the pinned T7 violation
  EXPECT_NE(rep.spec.diagnostic.find("incomparable"), std::string::npos);
}

TEST(Golden, RsmReferenceRun) {
  harness::RsmScenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.byz_replicas = 1;
  sc.with_byz_client = true;
  sc.num_clients = 2;
  sc.ops_per_client = 4;
  sc.seed = 11;
  const auto rep = harness::run_rsm(sc);
  ASSERT_TRUE(rep.completed);
  ASSERT_TRUE(rep.check.ok()) << rep.check.diagnostic;
  ASSERT_TRUE(rep.linearization.linearizable);

  EXPECT_EQ(rep.ops_completed, 8u);
  const auto again = harness::run_rsm(sc);
  EXPECT_EQ(rep.total_msgs, again.total_msgs);
  EXPECT_EQ(rep.end_time, again.end_time);
}

}  // namespace
}  // namespace bgla
