// Golden regression tests: pin exact, bit-deterministic outcomes of fixed
// (parameters, seed) runs. Any change to protocol logic, message routing,
// RNG consumption order, or event scheduling shows up here first — and the
// pinned values double as documented reference runs.
//
// If a deliberate behavioural change breaks these, re-pin the constants in
// the same commit and say why in the commit message.
#include <gtest/gtest.h>

#include "harness/scenario.h"
#include "harness/throughput.h"

namespace bgla {
namespace {

using harness::Adversary;
using harness::Sched;

TEST(Golden, WtsReferenceRun) {
  harness::WtsScenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.byz_count = 2;
  sc.adversary = Adversary::kEquivocator;
  sc.sched = Sched::kUniform;
  sc.seed = 42;
  const auto rep = harness::run_wts(sc);
  ASSERT_TRUE(rep.completed);
  ASSERT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;

  const auto again = harness::run_wts(sc);
  EXPECT_EQ(rep.total_msgs, again.total_msgs);
  EXPECT_EQ(rep.end_time, again.end_time);
  EXPECT_EQ(rep.max_depth, again.max_depth);

  // Pinned reference values (seed 42).
  EXPECT_EQ(rep.total_msgs, 452u);
  EXPECT_EQ(rep.end_time, 89u);
  EXPECT_EQ(rep.max_depth, 6u);
  EXPECT_EQ(rep.max_refinements, 0u);
}

TEST(Golden, GwtsReferenceRun) {
  harness::GwtsScenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.adversary = Adversary::kStaleNacker;
  sc.sched = Sched::kUniform;
  sc.seed = 7;
  sc.target_decisions = 3;
  const auto rep = harness::run_gwts(sc);
  ASSERT_TRUE(rep.completed);
  ASSERT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;

  EXPECT_EQ(rep.total_msgs, 1047u);
  EXPECT_EQ(rep.end_time, 210u);
  EXPECT_EQ(rep.total_decisions, 9u);
}

TEST(Golden, SbsReferenceRun) {
  harness::SbsScenario sc;
  sc.n = 7;
  sc.f = 2;
  sc.byz_count = 2;
  sc.adversary = Adversary::kEquivocator;
  sc.seed = 5;
  const auto rep = harness::run_sbs(sc);
  ASSERT_TRUE(rep.completed);
  ASSERT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;

  EXPECT_EQ(rep.total_msgs, 212u);
  EXPECT_EQ(rep.max_depth, 7u);
}

TEST(Golden, FaleiroViolationReferenceRun) {
  harness::FaleiroScenario sc;
  sc.n = 3;
  sc.f = 1;
  sc.byz_lying_acker = true;
  sc.sched = Sched::kTargeted;
  sc.seed = 1;
  const auto rep = harness::run_faleiro(sc);
  EXPECT_FALSE(rep.spec.comparability);  // the pinned T7 violation
  EXPECT_NE(rep.spec.diagnostic.find("incomparable"), std::string::npos);
}

// Batch size 1 must be indistinguishable from the neutral (historical)
// config whenever at most one value is pending per round start — here
// submissions are spaced wider than a round, so the batcher never has two
// values to coalesce and the transcripts must match tick for tick. (The
// neutral config itself reproducing the pre-batching goldens is what the
// untouched pins in the reference runs above verify.)
TEST(Golden, GwtsBatchSizeOneMatchesNeutralWhenSpaced) {
  harness::GwtsScenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.adversary = harness::Adversary::kStaleNacker;
  sc.sched = Sched::kUniform;
  sc.seed = 7;
  sc.target_decisions = 3;
  sc.submission_spacing = 100;  // wider than any round at n=4
  const auto neutral = harness::run_gwts(sc);
  ASSERT_TRUE(neutral.completed);
  ASSERT_TRUE(neutral.spec.ok()) << neutral.spec.diagnostic;

  sc.batch.max_batch = 1;
  const auto batch1 = harness::run_gwts(sc);
  ASSERT_TRUE(batch1.completed);
  ASSERT_TRUE(batch1.spec.ok()) << batch1.spec.diagnostic;

  EXPECT_EQ(batch1.total_msgs, neutral.total_msgs);
  EXPECT_EQ(batch1.end_time, neutral.end_time);
  EXPECT_EQ(batch1.total_decisions, neutral.total_decisions);

  // Pinned reference values (seed 7, spacing 100), shared by both runs.
  EXPECT_EQ(neutral.total_msgs, 2040u);
  EXPECT_EQ(neutral.end_time, 426u);
  EXPECT_EQ(neutral.total_decisions, 18u);
}

// Batched reference run: submissions arrive faster than rounds complete,
// so the batcher genuinely coalesces; same seed + same batch config must
// be byte-identical run to run, and these pins document the reference.
TEST(Golden, GwtsBatchedReferenceRun) {
  harness::GwtsScenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.adversary = harness::Adversary::kNone;
  sc.byz_count = 0;
  sc.sched = Sched::kUniform;
  sc.seed = 7;
  sc.target_decisions = 3;
  sc.submissions_per_proc = 8;
  sc.submission_spacing = 2;  // flood: several values pending per round
  sc.batch.max_batch = 4;
  sc.batch.max_queue = 16;
  const auto rep = harness::run_gwts(sc);
  ASSERT_TRUE(rep.completed);
  ASSERT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;

  const auto again = harness::run_gwts(sc);
  EXPECT_EQ(rep.total_msgs, again.total_msgs);
  EXPECT_EQ(rep.end_time, again.end_time);
  EXPECT_EQ(rep.total_decisions, again.total_decisions);

  // Pinned reference values (seed 7, batch=4/queue=16).
  EXPECT_EQ(rep.total_msgs, 1952u);
  EXPECT_EQ(rep.end_time, 232u);
  EXPECT_EQ(rep.total_decisions, 12u);
}

// Pipelined batched run through the closed-loop throughput harness: the
// pre-disclosure path consumes RNG and schedules messages differently from
// the unpipelined path, so its determinism needs its own golden.
TEST(Golden, ThroughputPipelinedReferenceRun) {
  harness::ThroughputScenario sc;
  sc.protocol = harness::ThroughputProtocol::kGwts;
  sc.n = 4;
  sc.f = 1;
  sc.batch.max_batch = 8;
  sc.batch.pipeline = true;
  sc.commands_per_proc = 24;
  sc.window = 16;
  sc.seed = 3;
  const auto rep = harness::run_throughput(sc);
  ASSERT_TRUE(rep.completed);
  ASSERT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;

  const auto again = harness::run_throughput(sc);
  EXPECT_EQ(rep.total_msgs, again.total_msgs);
  EXPECT_EQ(rep.end_time, again.end_time);
  EXPECT_EQ(rep.total_decisions, again.total_decisions);

  // Pinned reference values (seed 3, batch=8, pipeline on).
  EXPECT_EQ(rep.commands, 96u);
  EXPECT_EQ(rep.total_msgs, 2072u);
  EXPECT_EQ(rep.end_time, 168u);
}

// Same scenario over the delta wire decorator. Reconstruction is
// byte-identical and resets never fire on a clean run, but the proxy
// endpoints re-attach to the inner network, which changes same-tick
// delivery order — so the run takes a slightly different (equally
// valid) trajectory and gets its own pins. What must hold regardless:
// every command decides, the spec checker is green, no resets fire,
// and the delta encoding beats the logical bytes.
TEST(Golden, ThroughputDeltaWireReferenceRun) {
  harness::ThroughputScenario sc;
  sc.protocol = harness::ThroughputProtocol::kGwts;
  sc.n = 4;
  sc.f = 1;
  sc.batch.max_batch = 8;
  sc.batch.pipeline = true;
  sc.commands_per_proc = 24;
  sc.window = 16;
  sc.seed = 3;
  sc.wire = harness::ThroughputScenario::WireMode::kDelta;
  const auto rep = harness::run_throughput(sc);
  ASSERT_TRUE(rep.completed);
  ASSERT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;

  // Pinned reference values (seed 3, batch=8, pipeline on, delta wire).
  EXPECT_EQ(rep.commands, 96u);
  EXPECT_EQ(rep.total_msgs, 2083u);
  EXPECT_EQ(rep.end_time, 192u);
  EXPECT_EQ(rep.wire.resets_sent, 0u);
  EXPECT_EQ(rep.wire.reconstruct_failures, 0u);

  // Wire accounting is deterministic per seed: pin it.
  const auto again = harness::run_throughput(sc);
  EXPECT_EQ(rep.wire.msgs_delta, again.wire.msgs_delta);
  EXPECT_EQ(rep.wire.wire_bytes_delta, again.wire.wire_bytes_delta);
  EXPECT_EQ(rep.wire.logical_bytes, again.wire.logical_bytes);
  EXPECT_GT(rep.wire.msgs_delta, 0u);
  EXPECT_LT(rep.wire.wire_bytes_delta, rep.wire.logical_bytes);
}

TEST(Golden, RsmReferenceRun) {
  harness::RsmScenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.byz_replicas = 1;
  sc.with_byz_client = true;
  sc.num_clients = 2;
  sc.ops_per_client = 4;
  sc.seed = 11;
  const auto rep = harness::run_rsm(sc);
  ASSERT_TRUE(rep.completed);
  ASSERT_TRUE(rep.check.ok()) << rep.check.diagnostic;
  ASSERT_TRUE(rep.linearization.linearizable);

  EXPECT_EQ(rep.ops_completed, 8u);
  const auto again = harness::run_rsm(sc);
  EXPECT_EQ(rep.total_msgs, again.total_msgs);
  EXPECT_EQ(rep.end_time, again.end_time);
}

}  // namespace
}  // namespace bgla
