// GSbS (§8.2) tests: generalised spec sweeps, round-trust via DECIDED
// certificates, certificate well-formedness against tampering, and the
// message-complexity advantage over GWTS.
#include <gtest/gtest.h>

#include "harness/scenario.h"
#include "la/gsbs.h"
#include "lattice/set_elem.h"

namespace bgla {
namespace {

using harness::Adversary;
using harness::GsbsScenario;
using harness::Sched;
using lattice::Item;
using lattice::make_set;

struct SweepParam {
  std::uint32_t n;
  std::uint32_t f;
  Adversary adversary;
  Sched sched;
  std::uint64_t seed;
};

class GsbsSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(GsbsSweep, GeneralizedSpecHolds) {
  const SweepParam p = GetParam();
  GsbsScenario sc;
  sc.n = p.n;
  sc.f = p.f;
  sc.byz_count = p.f;
  sc.adversary = p.adversary;
  sc.sched = p.sched;
  sc.seed = p.seed;
  sc.target_decisions = 4;
  const auto rep = harness::run_gsbs(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
}

INSTANTIATE_TEST_SUITE_P(
    NoFault, GsbsSweep,
    ::testing::Values(
        SweepParam{4, 1, Adversary::kNone, Sched::kUniform, 1},
        SweepParam{4, 1, Adversary::kNone, Sched::kFixed, 2},
        SweepParam{4, 1, Adversary::kNone, Sched::kJitter, 3},
        SweepParam{7, 2, Adversary::kNone, Sched::kUniform, 4},
        SweepParam{7, 2, Adversary::kNone, Sched::kTargeted, 5},
        SweepParam{10, 3, Adversary::kNone, Sched::kUniform, 6}));

INSTANTIATE_TEST_SUITE_P(
    Adversarial, GsbsSweep,
    ::testing::Values(
        SweepParam{4, 1, Adversary::kMute, Sched::kUniform, 10},
        SweepParam{4, 1, Adversary::kEquivocator, Sched::kUniform, 11},
        SweepParam{4, 1, Adversary::kEquivocator, Sched::kJitter, 12},
        SweepParam{4, 1, Adversary::kFlooder, Sched::kUniform, 13},
        SweepParam{7, 2, Adversary::kMute, Sched::kTargeted, 14},
        SweepParam{7, 2, Adversary::kEquivocator, Sched::kUniform, 15}));

class GsbsSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GsbsSeedSweep, StableUnderSeeds) {
  GsbsScenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.adversary = Adversary::kEquivocator;
  sc.seed = GetParam();
  sc.target_decisions = 3;
  const auto rep = harness::run_gsbs(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GsbsSeedSweep,
                         ::testing::Range<std::uint64_t>(400, 408));

TEST(Gsbs, FewerMessagesPerDecisionThanGwts) {
  // §8.2: replacing reliably broadcast acks with signed point-to-point
  // acks + one DECIDED certificate broadcast cuts the per-decision
  // message complexity from O(f·n²) to O(f·n).
  harness::GwtsScenario g;
  g.n = 10;
  g.f = 1;
  g.byz_count = 1;
  g.adversary = Adversary::kMute;
  g.target_decisions = 4;
  g.seed = 6;
  const auto gwts = harness::run_gwts(g);

  GsbsScenario s;
  s.n = 10;
  s.f = 1;
  s.byz_count = 1;
  s.adversary = Adversary::kMute;
  s.target_decisions = 4;
  s.seed = 6;
  const auto gsbs = harness::run_gsbs(s);

  ASSERT_TRUE(gwts.completed && gsbs.completed);
  EXPECT_TRUE(gwts.spec.ok());
  EXPECT_TRUE(gsbs.spec.ok());
  EXPECT_LT(gsbs.msgs_per_decision_per_proposer,
            gwts.msgs_per_decision_per_proposer / 2.0)
      << "GSbS should be far cheaper in messages per decision";
}

TEST(Gsbs, DeterministicReplay) {
  GsbsScenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.adversary = Adversary::kEquivocator;
  sc.seed = 33;
  sc.target_decisions = 3;
  const auto a = harness::run_gsbs(sc);
  const auto b = harness::run_gsbs(sc);
  EXPECT_EQ(a.total_msgs, b.total_msgs);
  EXPECT_EQ(a.end_time, b.end_time);
}

// ---- DECIDED certificate validation ----

class CertTest : public ::testing::Test {
 protected:
  CertTest() : auth_(8, 13) {
    cfg_.n = 7;
    cfg_.f = 2;
  }

  la::SafeBatchSet make_decided_set(ProcessId signer) {
    // A singleton proposal with a genuine proof of safety.
    const auto batch = la::make_signed_batch(
        auth_.signer_for(signer), make_set({Item{signer, 1, 0}}), 0);
    la::SignedBatchSet sbset;
    sbset.insert(batch);
    std::vector<la::GSafeAckPtr> proof;
    for (ProcessId a = 0; a < cfg_.quorum(); ++a) {
      const auto sig = auth_.signer_for(a).sign(
          la::GSSafeAckMsg::signed_payload(sbset, {}, a, 0));
      proof.push_back(std::make_shared<la::GSSafeAckMsg>(
          sbset, std::vector<std::pair<la::SignedBatch, la::SignedBatch>>{},
          a, 0, sig));
    }
    la::SafeBatchSet out;
    out.insert(la::SafeBatch{batch, proof});
    return out;
  }

  std::vector<std::shared_ptr<const la::GSAckMsg>> make_acks(
      const la::SafeBatchSet& set, ProcessId decider, std::uint64_t ts,
      std::uint64_t round, std::uint32_t count) {
    std::vector<std::shared_ptr<const la::GSAckMsg>> acks;
    const crypto::Digest fp = set.fingerprint();
    for (ProcessId a = 0; a < count; ++a) {
      const auto sig = auth_.signer_for(a).sign(
          la::GSAckMsg::signed_payload(fp, decider, ts, round));
      acks.push_back(
          std::make_shared<la::GSAckMsg>(fp, decider, ts, round, sig));
    }
    return acks;
  }

  la::LaConfig cfg_;
  crypto::SignatureAuthority auth_;
};

TEST_F(CertTest, GenuineCertificateWellFormed) {
  const auto set = make_decided_set(0);
  const auto acks = make_acks(set, /*decider=*/3, 1, 0, cfg_.quorum());
  la::GSDecidedMsg cert(set, 3, 1, 0, acks);
  EXPECT_TRUE(cert.well_formed(auth_, cfg_.quorum()));
}

TEST_F(CertTest, RejectsSubQuorum) {
  const auto set = make_decided_set(0);
  const auto acks = make_acks(set, 3, 1, 0, cfg_.quorum() - 1);
  la::GSDecidedMsg cert(set, 3, 1, 0, acks);
  EXPECT_FALSE(cert.well_formed(auth_, cfg_.quorum()));
}

TEST_F(CertTest, RejectsTamperedSet) {
  const auto set = make_decided_set(0);
  const auto acks = make_acks(set, 3, 1, 0, cfg_.quorum());
  const auto other_set = make_decided_set(1);  // different content
  la::GSDecidedMsg cert(other_set, 3, 1, 0, acks);  // acks don't match set
  EXPECT_FALSE(cert.well_formed(auth_, cfg_.quorum()));
}

TEST_F(CertTest, RejectsWrongRoundOrTs) {
  const auto set = make_decided_set(0);
  const auto acks = make_acks(set, 3, /*ts=*/1, /*round=*/0, cfg_.quorum());
  la::GSDecidedMsg wrong_ts(set, 3, /*ts=*/2, 0, acks);
  EXPECT_FALSE(wrong_ts.well_formed(auth_, cfg_.quorum()));
  la::GSDecidedMsg wrong_round(set, 3, 1, /*round=*/1, acks);
  EXPECT_FALSE(wrong_round.well_formed(auth_, cfg_.quorum()));
}

TEST_F(CertTest, RejectsDuplicateAckSigners) {
  const auto set = make_decided_set(0);
  auto acks = make_acks(set, 3, 1, 0, cfg_.quorum() - 1);
  acks.push_back(acks.front());  // pad with a duplicate
  la::GSDecidedMsg cert(set, 3, 1, 0, acks);
  EXPECT_FALSE(cert.well_formed(auth_, cfg_.quorum()));
}

TEST_F(CertTest, RejectsAcksForAnotherDecider) {
  const auto set = make_decided_set(0);
  const auto acks = make_acks(set, /*decider=*/2, 1, 0, cfg_.quorum());
  la::GSDecidedMsg cert(set, /*decider=*/3, 1, 0, acks);  // stolen cert
  EXPECT_FALSE(cert.well_formed(auth_, cfg_.quorum()));
}

TEST_F(CertTest, RoundBoundSignaturePreventsBatchReplay) {
  // A batch signed for round 0 cannot masquerade as a round-1 batch.
  const auto batch = la::make_signed_batch(
      auth_.signer_for(0), make_set({Item{0, 1, 0}}), 0);
  la::SignedBatch replayed = batch;
  replayed.round = 1;
  EXPECT_TRUE(batch.verify(auth_));
  EXPECT_FALSE(replayed.verify(auth_));
}

TEST_F(CertTest, BatchConflictRequiresSameRound) {
  const auto b0 = la::make_signed_batch(auth_.signer_for(0),
                                        make_set({Item{0, 1, 0}}), 0);
  const auto b0b = la::make_signed_batch(auth_.signer_for(0),
                                         make_set({Item{0, 2, 0}}), 0);
  const auto b1 = la::make_signed_batch(auth_.signer_for(0),
                                        make_set({Item{0, 2, 0}}), 1);
  EXPECT_TRUE(la::batches_conflict(b0, b0b, auth_));
  EXPECT_FALSE(la::batches_conflict(b0, b1, auth_));  // different rounds
}

}  // namespace
}  // namespace bgla
