// GWTS (Algorithms 3-4) tests: the §6.1 generalised spec under sizes,
// schedules and adversaries; Safe_r round-trust gating against round
// rushing; per-round refinement bounds (Lemma 10); decide-by-adoption;
// and streaming inclusivity.
#include <gtest/gtest.h>

#include "byz/strategies.h"
#include "harness/scenario.h"
#include "la/gwts.h"
#include "lattice/chain.h"
#include "lattice/set_elem.h"
#include "lattice/vclock_elem.h"

namespace bgla {
namespace {

using harness::Adversary;
using harness::GwtsScenario;
using harness::Sched;
using lattice::Item;
using lattice::make_set;

struct SweepParam {
  std::uint32_t n;
  std::uint32_t f;
  Adversary adversary;
  Sched sched;
  std::uint64_t seed;
};

class GwtsSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(GwtsSweep, GeneralizedSpecHolds) {
  const SweepParam p = GetParam();
  GwtsScenario sc;
  sc.n = p.n;
  sc.f = p.f;
  sc.byz_count = p.f;
  sc.adversary = p.adversary;
  sc.sched = p.sched;
  sc.seed = p.seed;
  sc.target_decisions = 4;
  sc.submissions_per_proc = 3;
  const auto rep = harness::run_gwts(sc);

  EXPECT_TRUE(rep.completed) << "run did not reach the decision target";
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
  // Lemma 10: at most f proposal refinements per round.
  EXPECT_LE(rep.max_round_refinements, p.f);
}

INSTANTIATE_TEST_SUITE_P(
    NoFault, GwtsSweep,
    ::testing::Values(
        SweepParam{4, 1, Adversary::kNone, Sched::kUniform, 1},
        SweepParam{4, 1, Adversary::kNone, Sched::kFixed, 2},
        SweepParam{4, 1, Adversary::kNone, Sched::kJitter, 3},
        SweepParam{7, 2, Adversary::kNone, Sched::kUniform, 4},
        SweepParam{7, 2, Adversary::kNone, Sched::kTargeted, 5},
        SweepParam{10, 3, Adversary::kNone, Sched::kUniform, 6},
        SweepParam{13, 4, Adversary::kNone, Sched::kUniform, 7}));

INSTANTIATE_TEST_SUITE_P(
    Adversarial, GwtsSweep,
    ::testing::Values(
        SweepParam{4, 1, Adversary::kMute, Sched::kUniform, 10},
        SweepParam{4, 1, Adversary::kEquivocator, Sched::kUniform, 11},
        SweepParam{4, 1, Adversary::kInvalidValue, Sched::kUniform, 12},
        SweepParam{4, 1, Adversary::kStaleNacker, Sched::kUniform, 13},
        SweepParam{4, 1, Adversary::kRoundRusher, Sched::kUniform, 14},
        SweepParam{4, 1, Adversary::kFlooder, Sched::kUniform, 15},
        SweepParam{7, 2, Adversary::kMute, Sched::kJitter, 16},
        SweepParam{7, 2, Adversary::kStaleNacker, Sched::kTargeted, 17},
        SweepParam{7, 2, Adversary::kRoundRusher, Sched::kJitter, 18},
        SweepParam{7, 2, Adversary::kEquivocator, Sched::kUniform, 19},
        SweepParam{10, 3, Adversary::kStaleNacker, Sched::kUniform, 20},
        SweepParam{10, 3, Adversary::kRoundRusher, Sched::kUniform, 21}));

class GwtsSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GwtsSeedSweep, RoundRusherCannotRushTrust) {
  GwtsScenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.adversary = Adversary::kRoundRusher;
  sc.seed = GetParam();
  sc.target_decisions = 3;
  const auto rep = harness::run_gwts(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GwtsSeedSweep,
                         ::testing::Range<std::uint64_t>(200, 210));

TEST(Gwts, DeterministicReplay) {
  GwtsScenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.adversary = Adversary::kStaleNacker;
  sc.seed = 7;
  sc.target_decisions = 3;
  const auto a = harness::run_gwts(sc);
  const auto b = harness::run_gwts(sc);
  EXPECT_EQ(a.total_msgs, b.total_msgs);
  EXPECT_EQ(a.total_decisions, b.total_decisions);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(Gwts, DecisionsPerProcessReachTarget) {
  GwtsScenario sc;
  sc.n = 4;
  sc.f = 1;
  sc.adversary = Adversary::kNone;
  sc.target_decisions = 6;
  sc.seed = 5;
  const auto rep = harness::run_gwts(sc);
  EXPECT_TRUE(rep.completed);
  // 4 correct processes × ≥ 6 decisions each.
  EXPECT_GE(rep.total_decisions, 4u * 6u);
}

// Direct process-level tests (no harness).

class GwtsDirect : public ::testing::Test {
 protected:
  void build(std::uint32_t n, std::uint32_t f, std::uint64_t seed) {
    cfg_.n = n;
    cfg_.f = f;
    net_ = std::make_unique<sim::Network>(
        std::make_unique<sim::UniformDelay>(1, 10), seed, n);
    for (ProcessId id = 0; id < n; ++id) {
      procs_.push_back(std::make_unique<la::GwtsProcess>(*net_, id, cfg_));
    }
  }

  la::LaConfig cfg_;
  std::unique_ptr<sim::Network> net_;
  std::vector<std::unique_ptr<la::GwtsProcess>> procs_;
};

TEST_F(GwtsDirect, SafeRoundNeverExceedsLegitimateRounds) {
  build(4, 1, 3);
  // Stop after round 2 everywhere.
  for (auto& p : procs_) {
    p->set_decide_hook([this](const la::GwtsProcess& gp,
                              const la::DecisionRecord&) {
      if (gp.decisions().size() >= 3) net_->request_stop();
    });
  }
  procs_[0]->submit(make_set({Item{0, 1, 0}}));
  net_->run();
  for (auto& p : procs_) {
    // Safe_r trails the highest legitimately ended round: never beyond
    // the round currently being executed plus one.
    EXPECT_LE(p->safe_round(), p->round() + 1);
  }
}

TEST_F(GwtsDirect, LocalStabilityOfDecisionSequences) {
  build(4, 1, 11);
  for (auto& p : procs_) {
    p->set_decide_hook([this](const la::GwtsProcess& gp,
                              const la::DecisionRecord&) {
      if (gp.decisions().size() >= 4) net_->request_stop();
    });
  }
  for (ProcessId id = 0; id < 4; ++id) {
    net_->inject(id, id,
                 std::make_shared<la::SubmitMsg>(make_set({Item{id, 1, 0}})),
                 30);
    net_->inject(id, id,
                 std::make_shared<la::SubmitMsg>(make_set({Item{id, 2, 0}})),
                 90);
  }
  net_->run();
  for (auto& p : procs_) {
    const auto& decs = p->decisions();
    for (std::size_t i = 1; i < decs.size(); ++i) {
      EXPECT_TRUE(decs[i - 1].value.leq(decs[i].value))
          << "p" << p->id() << " decision " << i << " shrank";
    }
    // Rounds recorded monotonically.
    for (std::size_t i = 1; i < decs.size(); ++i) {
      EXPECT_LT(decs[i - 1].round, decs[i].round);
    }
  }
}

TEST_F(GwtsDirect, EmptyBatchesStillDecide) {
  // No submissions at all: rounds with empty batches must still turn over
  // (Liveness does not depend on input arrival).
  build(4, 1, 13);
  for (auto& p : procs_) {
    p->set_decide_hook([this](const la::GwtsProcess&,
                              const la::DecisionRecord&) {
      for (auto& q : procs_) {
        if (q->decisions().size() < 3) return;
      }
      net_->request_stop();
    });
  }
  const auto rr = net_->run(5'000'000);
  EXPECT_TRUE(rr.stopped);
  for (auto& p : procs_) EXPECT_GE(p->decisions().size(), 3u);
}

TEST_F(GwtsDirect, SubmittedValueReachesEveryProcess) {
  build(4, 1, 17);
  const auto target = make_set({Item{2, 77, 0}});
  for (auto& p : procs_) {
    p->set_decide_hook([this, target](const la::GwtsProcess&,
                                      const la::DecisionRecord&) {
      bool everywhere = true;
      for (auto& q : procs_) {
        if (q->decisions().empty() ||
            !target.leq(q->decisions().back().value)) {
          everywhere = false;
          break;
        }
      }
      if (everywhere) net_->request_stop();
    });
  }
  net_->inject(2, 2, std::make_shared<la::SubmitMsg>(target), 25);
  const auto rr = net_->run(5'000'000);
  EXPECT_TRUE(rr.stopped) << "value never reached all decisions";
}

TEST_F(GwtsDirect, DecideByAdoptionKeepsProcessesInLockstep) {
  // All correct processes make the same number of decisions ±1 — nobody
  // can fall behind, because committed proposals are adopted (L39-43).
  build(7, 2, 23);
  for (auto& p : procs_) {
    p->set_decide_hook([this](const la::GwtsProcess& gp,
                              const la::DecisionRecord&) {
      if (gp.decisions().size() >= 5) net_->request_stop();
    });
  }
  net_->run(10'000'000);
  std::size_t max_d = 0, min_d = SIZE_MAX;
  for (auto& p : procs_) {
    max_d = std::max(max_d, p->decisions().size());
    min_d = std::min(min_d, p->decisions().size());
  }
  EXPECT_GE(min_d + 2, max_d);  // rounds proceed together
}

TEST_F(GwtsDirect, SubmitRejectsInadmissible) {
  cfg_.is_admissible = [](const lattice::Elem& e) {
    return lattice::all_items(
        e, [](const lattice::Item& it) { return it.b < 10; });
  };
  build(4, 1, 29);
  EXPECT_THROW(procs_[0]->submit(make_set({Item{0, 50, 0}})), CheckError);
  procs_[0]->submit(make_set({Item{0, 5, 0}}));  // fine
}

}  // namespace
}  // namespace bgla

namespace bgla {
namespace {

TEST(GwtsGc, StateStaysBoundedOverManyRounds) {
  // GWTS runs an infinite sequence of rounds; per-round SvS maps and
  // Ack_history must not accumulate without bound (the memory concern the
  // paper's related work [6] raises for GLA-based RSMs). Run 40+ rounds
  // and check the retained state after round 10 never grows past a fixed
  // multiple of its level at round 10.
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  sim::Network net(std::make_unique<sim::UniformDelay>(1, 6), 3, 4);
  std::vector<std::unique_ptr<la::GwtsProcess>> procs;
  for (ProcessId id = 0; id < 4; ++id) {
    procs.push_back(std::make_unique<la::GwtsProcess>(net, id, cfg));
  }
  std::map<ProcessId, std::size_t> at_round10;
  std::size_t max_after = 0;
  for (auto& p : procs) {
    p->set_decide_hook([&](const la::GwtsProcess& gp,
                           const la::DecisionRecord& rec) {
      if (rec.round == 10) {
        at_round10[gp.id()] = gp.retained_state();
      } else if (rec.round > 10) {
        max_after = std::max(max_after, gp.retained_state());
      }
      bool done = true;
      for (auto& q : procs) done = done && q->decisions().size() >= 45;
      if (done) net.request_stop();
    });
  }
  // A trickle of submissions so rounds are not all empty.
  for (std::uint64_t k = 0; k < 12; ++k) {
    net.inject(k % 4, k % 4,
               std::make_shared<la::SubmitMsg>(
                   make_set({Item{k % 4, 500 + k, 0}})),
               50 * (k + 1));
  }
  const auto rr = net.run(80'000'000);
  ASSERT_TRUE(rr.stopped);
  std::size_t baseline = 0;
  for (const auto& [id, v] : at_round10) baseline = std::max(baseline, v);
  ASSERT_GT(baseline, 0u);
  EXPECT_LE(max_after, baseline * 3)
      << "retained state grows with round count — GC regression";
}

TEST(GwtsGc, DisclosedByExactAfterPruning) {
  // disclosed_by() must still attribute every disclosure even after the
  // per-round SvS maps were collected.
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  sim::Network net(std::make_unique<sim::UniformDelay>(1, 6), 5, 4);
  std::vector<std::unique_ptr<la::GwtsProcess>> procs;
  for (ProcessId id = 0; id < 4; ++id) {
    procs.push_back(std::make_unique<la::GwtsProcess>(net, id, cfg));
  }
  for (auto& p : procs) {
    p->set_decide_hook([&](const la::GwtsProcess&,
                           const la::DecisionRecord&) {
      bool done = true;
      for (auto& q : procs) done = done && q->decisions().size() >= 12;
      if (done) net.request_stop();
    });
  }
  const auto marker = make_set({Item{2, 77, 0}});
  net.inject(2, 2, std::make_shared<la::SubmitMsg>(marker), 20);
  const auto rr = net.run(40'000'000);
  ASSERT_TRUE(rr.stopped);
  for (auto& p : procs) {
    const auto by = p->disclosed_by();
    const auto it = by.find(2);
    ASSERT_NE(it, by.end());
    EXPECT_TRUE(marker.leq(it->second))
        << "p" << p->id() << " lost the attribution after GC";
  }
}

}  // namespace
}  // namespace bgla

namespace bgla {
namespace {

TEST(GwtsGenerality, RunsOnVectorClockLattice) {
  // Lattice generality for the generalised protocol: GWTS streaming over
  // the vector-clock family (G-Counter state lattice) — the identical
  // protocol code, different Elem family.
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.expected_kind = "vclock";
  sim::Network net(std::make_unique<sim::UniformDelay>(1, 8), 9, 4);
  std::vector<std::unique_ptr<la::GwtsProcess>> procs;
  for (ProcessId id = 0; id < 4; ++id) {
    procs.push_back(std::make_unique<la::GwtsProcess>(net, id, cfg));
  }
  const auto target =
      lattice::make_vclock({{0, 2}, {1, 2}, {2, 2}, {3, 2}});
  for (auto& p : procs) {
    p->set_decide_hook(
        [&](const la::GwtsProcess&, const la::DecisionRecord&) {
          for (auto& q : procs) {
            if (q->decisions().size() < 4) return;
            if (!target.leq(q->decisions().back().value)) return;
          }
          net.request_stop();
        });
  }
  // Each process increments its own G-Counter component twice.
  for (ProcessId id = 0; id < 4; ++id) {
    net.inject(id, id,
               std::make_shared<la::SubmitMsg>(
                   lattice::make_vclock({{id, 1}})),
               20 + 10 * id);
    net.inject(id, id,
               std::make_shared<la::SubmitMsg>(
                   lattice::make_vclock({{id, 2}})),
               120 + 10 * id);
  }
  const auto rr = net.run(20'000'000);
  ASSERT_TRUE(rr.stopped);

  // Final decisions agree on the pointwise-max clock [0:2,1:2,2:2,3:2],
  // i.e. the G-Counter reads 8 everywhere, and all decision sequences are
  // chains in the vclock order.
  for (auto& p : procs) {
    const auto& decs = p->decisions();
    for (std::size_t i = 1; i < decs.size(); ++i) {
      EXPECT_TRUE(decs[i - 1].value.leq(decs[i].value));
    }
    EXPECT_EQ(lattice::vclock_sum(decs.back().value), 8u);
  }
  // Cross-process comparability.
  std::vector<lattice::Elem> all;
  for (auto& p : procs) {
    for (const auto& d : p->decisions()) all.push_back(d.value);
  }
  EXPECT_TRUE(lattice::is_chain(all));
}

}  // namespace
}  // namespace bgla
