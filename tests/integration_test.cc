// Cross-protocol integration matrix: every protocol × every applicable
// adversary × schedules × seeds, asserting the full executable spec on
// each run. This is the widest net in the suite — several hundred
// end-to-end runs.
#include <gtest/gtest.h>

#include "harness/scenario.h"
#include "la/gwts.h"
#include "la/wts.h"
#include "lattice/set_elem.h"

namespace bgla {
namespace {

using harness::Adversary;
using harness::Sched;

struct MatrixParam {
  std::uint32_t n;
  std::uint32_t f;
  Adversary adversary;
  Sched sched;
  std::uint64_t seed;
};

std::vector<MatrixParam> matrix(std::initializer_list<Adversary> advs) {
  std::vector<MatrixParam> out;
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> sizes = {
      {4, 1}, {7, 2}, {10, 3}};
  const std::vector<Sched> scheds = {Sched::kUniform, Sched::kJitter};
  std::uint64_t seed = 1000;
  for (const auto& [n, f] : sizes) {
    for (Adversary a : advs) {
      for (Sched s : scheds) {
        for (int k = 0; k < 2; ++k) {
          out.push_back(MatrixParam{n, f, a, s, seed++});
        }
      }
    }
  }
  return out;
}

class WtsMatrix : public ::testing::TestWithParam<MatrixParam> {};
TEST_P(WtsMatrix, Holds) {
  const auto p = GetParam();
  harness::WtsScenario sc;
  sc.n = p.n;
  sc.f = p.f;
  sc.byz_count = p.f;
  sc.adversary = p.adversary;
  sc.sched = p.sched;
  sc.seed = p.seed;
  const auto rep = harness::run_wts(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
}
INSTANTIATE_TEST_SUITE_P(
    M, WtsMatrix,
    ::testing::ValuesIn(matrix({Adversary::kNone, Adversary::kMute,
                                Adversary::kEquivocator,
                                Adversary::kInvalidValue,
                                Adversary::kStaleNacker,
                                Adversary::kLyingAcker,
                                Adversary::kFlooder})));

class GwtsMatrix : public ::testing::TestWithParam<MatrixParam> {};
TEST_P(GwtsMatrix, Holds) {
  const auto p = GetParam();
  harness::GwtsScenario sc;
  sc.n = p.n;
  sc.f = p.f;
  sc.byz_count = p.f;
  sc.adversary = p.adversary;
  sc.sched = p.sched;
  sc.seed = p.seed;
  sc.target_decisions = 3;
  sc.submissions_per_proc = 2;
  const auto rep = harness::run_gwts(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
}
INSTANTIATE_TEST_SUITE_P(
    M, GwtsMatrix,
    ::testing::ValuesIn(matrix({Adversary::kNone, Adversary::kMute,
                                Adversary::kEquivocator,
                                Adversary::kStaleNacker,
                                Adversary::kRoundRusher,
                                Adversary::kFlooder})));

class SbsMatrix : public ::testing::TestWithParam<MatrixParam> {};
TEST_P(SbsMatrix, Holds) {
  const auto p = GetParam();
  harness::SbsScenario sc;
  sc.n = p.n;
  sc.f = p.f;
  sc.byz_count = p.f;
  sc.adversary = p.adversary;
  sc.sched = p.sched;
  sc.seed = p.seed;
  const auto rep = harness::run_sbs(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
}
INSTANTIATE_TEST_SUITE_P(
    M, SbsMatrix,
    ::testing::ValuesIn(matrix({Adversary::kNone, Adversary::kMute,
                                Adversary::kEquivocator,
                                Adversary::kStaleNacker,
                                Adversary::kFlooder})));

class GsbsMatrix : public ::testing::TestWithParam<MatrixParam> {};
TEST_P(GsbsMatrix, Holds) {
  const auto p = GetParam();
  harness::GsbsScenario sc;
  sc.n = p.n;
  sc.f = p.f;
  sc.byz_count = p.f;
  sc.adversary = p.adversary;
  sc.sched = p.sched;
  sc.seed = p.seed;
  sc.target_decisions = 3;
  sc.submissions_per_proc = 2;
  const auto rep = harness::run_gsbs(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.spec.ok()) << rep.spec.diagnostic;
}
INSTANTIATE_TEST_SUITE_P(
    M, GsbsMatrix,
    ::testing::ValuesIn(matrix({Adversary::kNone, Adversary::kMute,
                                Adversary::kEquivocator,
                                Adversary::kFlooder})));

class RsmMatrix : public ::testing::TestWithParam<MatrixParam> {};
TEST_P(RsmMatrix, Holds) {
  const auto p = GetParam();
  harness::RsmScenario sc;
  sc.n = p.n;
  sc.f = p.f;
  // Map the adversary slot onto the RSM fault dimensions.
  sc.byz_replicas = p.adversary == Adversary::kNone ? 0 : p.f;
  sc.with_byz_client = p.adversary == Adversary::kFlooder;
  sc.sched = p.sched;
  sc.seed = p.seed;
  sc.num_clients = 2;
  sc.ops_per_client = 4;
  const auto rep = harness::run_rsm(sc);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.check.ok()) << rep.check.diagnostic;
}
INSTANTIATE_TEST_SUITE_P(
    M, RsmMatrix,
    ::testing::ValuesIn(matrix(
        {Adversary::kNone, Adversary::kMute, Adversary::kFlooder})));

// Ablation-flag regressions: the ablated configurations stay *safe* even
// where they lose liveness or efficiency.
TEST(Ablations, PlainDisclosureStillSafeWithoutByz) {
  la::LaConfig base;
  base.n = 4;
  base.f = 1;
  base.reliable_disclosure = false;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    sim::Network net(std::make_unique<sim::UniformDelay>(1, 10), seed, 4);
    std::vector<std::unique_ptr<la::WtsProcess>> procs;
    for (ProcessId id = 0; id < 4; ++id) {
      procs.push_back(std::make_unique<la::WtsProcess>(
          net, id, base, lattice::make_singleton(100 + id)));
    }
    net.run();
    std::vector<la::LaView> views;
    for (const auto& p : procs) {
      EXPECT_TRUE(p->decided());
      la::LaView v;
      v.id = p->id();
      v.proposal = p->proposal();
      if (p->decided()) v.decision = p->decision().value;
      v.svs = p->svs();
      views.push_back(std::move(v));
    }
    const auto res = la::check_la(views, {}, base.f);
    EXPECT_TRUE(res.ok()) << res.diagnostic;
  }
}

TEST(Ablations, NoAdoptionStillMeetsGlaSpec) {
  la::LaConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.decide_by_adoption = false;
  sim::Network net(std::make_unique<sim::UniformDelay>(1, 10), 5, 4);
  std::vector<std::unique_ptr<la::GwtsProcess>> procs;
  for (ProcessId id = 0; id < 4; ++id) {
    procs.push_back(std::make_unique<la::GwtsProcess>(net, id, cfg));
  }
  for (auto& p : procs) {
    p->set_decide_hook(
        [&](const la::GwtsProcess&, const la::DecisionRecord&) {
          for (auto& q : procs) {
            if (q->decisions().size() < 3) return;
          }
          net.request_stop();
        });
  }
  net.inject(0, 0,
             std::make_shared<la::SubmitMsg>(lattice::make_singleton(7)),
             20);
  const auto rr = net.run(10'000'000);
  EXPECT_TRUE(rr.stopped);
  std::vector<la::GlaView> views;
  for (const auto& p : procs) {
    la::GlaView v;
    v.id = p->id();
    v.submitted = p->submitted();
    for (const auto& d : p->decisions()) v.decisions.push_back(d.value);
    views.push_back(std::move(v));
  }
  const auto res = la::check_gla(views, lattice::Elem(), 3);
  EXPECT_TRUE(res.ok()) << res.diagnostic;
}

}  // namespace
}  // namespace bgla
